package mvpp

import (
	"io"
	"log/slog"

	"github.com/warehousekit/mvpp/internal/obs"
)

// The observability surface of the designer. The implementation lives in
// internal/obs (so the internal pipeline packages can emit into it); these
// aliases expose it to library users, who set Options.Observer and read
// back metrics and traces.

// Observer receives spans, events, and hosts the metrics registry for one
// design run. A nil Observer — the default — disables instrumentation:
// every pipeline call site guards with a single nil check.
type Observer = obs.Observer

// Span is one timed region of the pipeline. A Span is itself an Observer,
// so child spans and events nest under it.
type Span = obs.Span

// Attr is one key/value annotation on a span or event.
type Attr = obs.Attr

// EventKind tags a pipeline event; see the Ev* constants.
type EventKind = obs.EventKind

// Registry is the atomic counter/gauge registry observers share.
type Registry = obs.Registry

// Counter is one atomic counter of a Registry.
type Counter = obs.Counter

// TraceRecorder is an Observer recording the full span tree, events, and
// final metric values, serializable as a JSON trace.
type TraceRecorder = obs.Recorder

// Trace is the parsed form of a recorded JSON trace.
type Trace = obs.Trace

// TraceSpan is one span of a Trace.
type TraceSpan = obs.TraceSpan

// TraceEvent is one event of a Trace.
type TraceEvent = obs.TraceEvent

// The pipeline's event taxonomy (see the internal/obs documentation for
// each kind's attributes).
const (
	EvPlanChosen        = obs.EvPlanChosen
	EvCandidate         = obs.EvCandidate
	EvCandidateDedup    = obs.EvCandidateDedup
	EvSelectStep        = obs.EvSelectStep
	EvSafeguard         = obs.EvSafeguard
	EvMaintPlan         = obs.EvMaintPlan
	EvCosts             = obs.EvCosts
	EvEngineOp          = obs.EvEngineOp
	EvServeEpoch        = obs.EvServeEpoch
	EvServeAdvice       = obs.EvServeAdvice
	EvServeSwap         = obs.EvServeSwap
	EvFault             = obs.EvFault
	EvServeRetry        = obs.EvServeRetry
	EvServeFallback     = obs.EvServeFallback
	EvServeBreaker      = obs.EvServeBreaker
	EvServeDegraded     = obs.EvServeDegraded
	EvServeJournal      = obs.EvServeJournal
	EvServeQuery        = obs.EvServeQuery
	EvCostDrift         = obs.EvCostDrift
	EvServeRecalibrated = obs.EvServeRecalibrated
)

// Canonical counter names the pipeline maintains.
const (
	CtrPlansEnumerated     = obs.CtrPlansEnumerated
	CtrEstimatorCalls      = obs.CtrEstimatorCalls
	CtrMemoHits            = obs.CtrMemoHits
	CtrMergeAttempts       = obs.CtrMergeAttempts
	CtrCandidates          = obs.CtrCandidates
	CtrGreedyIterations    = obs.CtrGreedyIterations
	CtrSafeguardSubs       = obs.CtrSafeguardSubs
	CtrIncrementalWins     = obs.CtrIncrementalWins
	CtrEvaluateCalls       = obs.CtrEvaluateCalls
	CtrEngineBlockReads    = obs.CtrEngineBlockReads
	CtrEngineBlockWrites   = obs.CtrEngineBlockWrites
	CtrServeQueries        = obs.CtrServeQueries
	CtrServeCacheHits      = obs.CtrServeCacheHits
	CtrServeCacheMisses    = obs.CtrServeCacheMisses
	CtrServeRejected       = obs.CtrServeRejected
	CtrServeEpochs         = obs.CtrServeEpochs
	CtrServeDeltaRows      = obs.CtrServeDeltaRows
	CtrFaultsInjected      = obs.CtrFaultsInjected
	CtrServeRetries        = obs.CtrServeRetries
	CtrServeRefreshFails   = obs.CtrServeRefreshFailures
	CtrServeFallbacks      = obs.CtrServeFallbacks
	CtrServeBreakerTrips   = obs.CtrServeBreakerTrips
	CtrServeDegraded       = obs.CtrServeDegraded
	CtrServePanics         = obs.CtrServePanics
	CtrServeReplayed       = obs.CtrServeReplayedRows
	CtrCostObservations    = obs.CtrCostObservations
	CtrCostDrifts          = obs.CtrCostDrifts
	CtrServeRecalibrations = obs.CtrServeRecalibrations
)

// NewRegistry creates an empty metrics registry, to be shared across
// observers combined with TeeObservers.
func NewRegistry() *Registry { return obs.NewRegistry() }

// NewLogObserver builds an Observer rendering spans and events through the
// slog logger: spans at Debug, design-level summary events at Info. reg
// may be nil, in which case the observer owns a fresh registry. A nil
// logger yields a nil (disabled) Observer.
func NewLogObserver(logger *slog.Logger, reg *Registry) Observer {
	return obs.NewLogObserver(logger, reg)
}

// NewTraceRecorder builds an Observer recording the run in memory for
// export as a JSON trace via its WriteJSON method. reg may be nil, in
// which case the recorder owns a fresh registry.
func NewTraceRecorder(reg *Registry) *TraceRecorder { return obs.NewRecorder(reg) }

// TeeObservers fans out to every non-nil observer (e.g. log + trace at
// once); it returns nil when none remain. Construct the backends over one
// shared Registry so they report consistent counters.
func TeeObservers(observers ...Observer) Observer { return obs.Tee(observers...) }

// ParseTrace reads a JSON trace written by TraceRecorder.WriteJSON.
func ParseTrace(r io.Reader) (*Trace, error) { return obs.ParseTrace(r) }
