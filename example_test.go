package mvpp_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"

	mvpp "github.com/warehousekit/mvpp"
	"github.com/warehousekit/mvpp/internal/telemetry"
)

// ExampleDesigner shows the minimal design flow: declare statistics,
// register a workload, and read the recommendation.
func ExampleDesigner() {
	cat := mvpp.NewCatalog()
	_ = cat.AddTable("Product", []mvpp.Column{
		{Name: "Pid", Type: mvpp.Int},
		{Name: "name", Type: mvpp.String},
		{Name: "Did", Type: mvpp.Int},
	}, mvpp.TableStats{Rows: 30000, Blocks: 3000, UpdateFrequency: 1,
		DistinctValues: map[string]float64{"Pid": 30000, "Did": 5000}})
	_ = cat.AddTable("Division", []mvpp.Column{
		{Name: "Did", Type: mvpp.Int},
		{Name: "name", Type: mvpp.String},
		{Name: "city", Type: mvpp.String},
	}, mvpp.TableStats{Rows: 5000, Blocks: 500, UpdateFrequency: 1,
		DistinctValues: map[string]float64{"Did": 5000, "city": 50}})
	_ = cat.PinSelectivity(`city = 'LA'`, 0.02, "Division")

	d := mvpp.NewDesigner(cat, mvpp.Options{})
	_ = d.AddQuery("Q1", `SELECT Product.name FROM Product, Division
		WHERE Division.city = 'LA' AND Product.Did = Division.Did`, 10)

	design, err := d.Design()
	if err != nil {
		fmt.Println("design failed:", err)
		return
	}
	for _, v := range design.Views() {
		fmt.Printf("materialize %s (used by %v)\n", v.Operation, v.UsedBy)
	}
	costs := design.Costs()
	fmt.Printf("saves %.0f%% vs all-virtual\n",
		100*(costs.AllVirtualTotal-costs.TotalCost)/costs.AllVirtualTotal)
	// Output:
	// materialize π Product.name (used by [Q1])
	// saves 90% vs all-virtual
}

// ExampleDesign_EvaluateStrategy prices a hand-picked alternative against
// the recommendation.
func ExampleDesign_EvaluateStrategy() {
	cat := mvpp.NewCatalog()
	_ = cat.AddTable("Sales", []mvpp.Column{
		{Name: "id", Type: mvpp.Int},
		{Name: "region", Type: mvpp.String},
		{Name: "amount", Type: mvpp.Int},
	}, mvpp.TableStats{Rows: 100000, Blocks: 10000, UpdateFrequency: 1,
		DistinctValues: map[string]float64{"id": 100000, "region": 10}})

	d := mvpp.NewDesigner(cat, mvpp.Options{})
	_ = d.AddQuery("west", `SELECT Sales.amount FROM Sales WHERE region = 'West'`, 100)
	design, _ := d.Design()

	_, _, recommended, _ := design.EvaluateStrategy(nil)
	fmt.Printf("all-virtual total: %.0f\n", recommended)
	// Output:
	// all-virtual total: 600000
}

// Example_liveTelemetry serves a design with the telemetry plane enabled
// and scrapes it the way Prometheus would. See examples/telemetry for the
// full walkthrough (windowed rates, /views, /traces under load).
func Example_liveTelemetry() {
	cat := mvpp.NewCatalog()
	_ = cat.AddTable("Product", []mvpp.Column{
		{Name: "Pid", Type: mvpp.Int},
		{Name: "name", Type: mvpp.String},
		{Name: "Did", Type: mvpp.Int},
	}, mvpp.TableStats{Rows: 30000, Blocks: 3000, UpdateFrequency: 1,
		DistinctValues: map[string]float64{"Pid": 30000, "Did": 5000}})
	_ = cat.AddTable("Division", []mvpp.Column{
		{Name: "Did", Type: mvpp.Int},
		{Name: "name", Type: mvpp.String},
		{Name: "city", Type: mvpp.String},
	}, mvpp.TableStats{Rows: 5000, Blocks: 500, UpdateFrequency: 1,
		DistinctValues: map[string]float64{"Did": 5000, "city": 50}})
	_ = cat.PinSelectivity(`city = 'LA'`, 0.02, "Division")

	d := mvpp.NewDesigner(cat, mvpp.Options{})
	_ = d.AddQuery("Q1", `SELECT Product.name FROM Product, Division
		WHERE Division.city = 'LA' AND Product.Did = Division.Did`, 10)
	design, err := d.Design()
	if err != nil {
		fmt.Println("design failed:", err)
		return
	}

	srv, err := design.NewServer(mvpp.ServeOptions{
		Scale: 0.02, Seed: 7,
		TelemetryAddr:    "127.0.0.1:0", // loopback, OS-assigned port
		TraceSampleEvery: 1,             // sample every query for the demo
	})
	if err != nil {
		fmt.Println("serve failed:", err)
		return
	}
	defer srv.Close()

	ctx := context.Background()
	_, _ = srv.Query(ctx, "Q1") // cold: engine execute
	_, _ = srv.Query(ctx, "Q1") // warm: result cache

	resp, err := http.Get("http://" + srv.TelemetryAddr() + "/metrics")
	if err != nil {
		fmt.Println("scrape failed:", err)
		return
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if _, err := telemetry.ValidateExposition(body); err != nil {
		fmt.Println("invalid exposition:", err)
		return
	}
	fmt.Println("/metrics is valid Prometheus exposition")
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "mvpp_serve_queries_total ") ||
			strings.HasPrefix(line, "mvpp_serve_cache_hits_total ") {
			fmt.Println(line)
		}
	}

	traces := srv.RecentTraces()
	last := traces[len(traces)-1]
	var stages []string
	for _, st := range last.Stages {
		stages = append(stages, st.Stage)
	}
	fmt.Printf("trace %d: %s\n", last.ID, strings.Join(stages, " -> "))
	// Output:
	// /metrics is valid Prometheus exposition
	// mvpp_serve_cache_hits_total 1
	// mvpp_serve_queries_total 2
	// trace 2: admit -> cache_hit -> reply
}
