// Quickstart: design materialized views for the paper's running example —
// five member-database relations, four warehouse queries — and print the
// recommended design.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	mvpp "github.com/warehousekit/mvpp"
	"github.com/warehousekit/mvpp/internal/cli"
)

func main() {
	logger := cli.DefaultLogger()
	cat := mvpp.NewCatalog()

	// Table 1 of the paper: relation sizes, block counts, update
	// frequencies, and attribute statistics.
	must := func(err error) {
		if err != nil {
			cli.Fatal(logger, "building the catalog or workload failed", err)
		}
	}
	must(cat.AddTable("Product", []mvpp.Column{
		{Name: "Pid", Type: mvpp.Int},
		{Name: "name", Type: mvpp.String},
		{Name: "Did", Type: mvpp.Int},
	}, mvpp.TableStats{Rows: 30000, Blocks: 3000, UpdateFrequency: 1,
		DistinctValues: map[string]float64{"Pid": 30000, "Did": 5000}}))

	must(cat.AddTable("Division", []mvpp.Column{
		{Name: "Did", Type: mvpp.Int},
		{Name: "name", Type: mvpp.String},
		{Name: "city", Type: mvpp.String},
	}, mvpp.TableStats{Rows: 5000, Blocks: 500, UpdateFrequency: 1,
		DistinctValues: map[string]float64{"Did": 5000, "city": 50}}))

	must(cat.AddTable("Order", []mvpp.Column{
		{Name: "Pid", Type: mvpp.Int},
		{Name: "Cid", Type: mvpp.Int},
		{Name: "quantity", Type: mvpp.Int},
		{Name: "date", Type: mvpp.Date},
	}, mvpp.TableStats{Rows: 50000, Blocks: 6000, UpdateFrequency: 1,
		DistinctValues: map[string]float64{"Pid": 30000, "Cid": 20000},
		IntRanges:      map[string][2]int64{"quantity": {1, 200}}}))

	must(cat.AddTable("Customer", []mvpp.Column{
		{Name: "Cid", Type: mvpp.Int},
		{Name: "name", Type: mvpp.String},
		{Name: "city", Type: mvpp.String},
	}, mvpp.TableStats{Rows: 20000, Blocks: 2000, UpdateFrequency: 1,
		DistinctValues: map[string]float64{"Cid": 20000, "city": 50}}))

	must(cat.AddTable("Part", []mvpp.Column{
		{Name: "Tid", Type: mvpp.Int},
		{Name: "name", Type: mvpp.String},
		{Name: "Pid", Type: mvpp.Int},
		{Name: "supplier", Type: mvpp.String},
	}, mvpp.TableStats{Rows: 80000, Blocks: 10000, UpdateFrequency: 1,
		DistinctValues: map[string]float64{"Tid": 80000, "Pid": 30000}}))

	// The paper pins these selectivities in Table 1.
	must(cat.PinSelectivity(`city = 'LA'`, 0.02, "Division"))
	must(cat.PinSelectivity(`date > 7/1/96`, 0.5, "Order"))
	must(cat.PinSelectivity(`quantity > 100`, 0.5, "Order"))

	// The four warehouse queries of §2 with their access frequencies.
	d := mvpp.NewDesigner(cat, mvpp.Options{})
	must(d.AddQuery("Q1",
		`SELECT Product.name FROM Product, Division
		 WHERE Division.city = 'LA' AND Product.Did = Division.Did`, 10))
	must(d.AddQuery("Q2",
		`SELECT Part.name FROM Product, Part, Division
		 WHERE Division.city = 'LA' AND Product.Did = Division.Did AND Part.Pid = Product.Pid`, 0.5))
	must(d.AddQuery("Q3",
		`SELECT Customer.name, Product.name, quantity FROM Product, Division, Order, Customer
		 WHERE Division.city = 'LA' AND Product.Did = Division.Did
		   AND Product.Pid = Order.Pid AND Order.Cid = Customer.Cid AND date > 7/1/96`, 0.8))
	must(d.AddQuery("Q4",
		`SELECT Customer.city, date FROM Order, Customer
		 WHERE quantity > 100 AND Order.Cid = Customer.Cid`, 5))

	design, err := d.Design()
	if err != nil {
		cli.Fatal(logger, "design failed", err)
	}
	fmt.Print(design.Report())

	fmt.Println("\nselection trace (the paper's Figure 9 heuristic):")
	fmt.Print(design.Trace())
}
