// Distributed warehouse: the member databases live on three remote sites,
// so every virtual-view query ships base-relation blocks to the warehouse.
// The paper's §4.1 notes that the cost model "should incorporate the costs
// of data transferring among different sites" — this example shows how
// transfer costs shift the design toward more materialization.
//
//	go run ./examples/distributed_warehouse
package main

import (
	"fmt"

	mvpp "github.com/warehousekit/mvpp"
	"github.com/warehousekit/mvpp/internal/cli"
)

func buildCatalog() (*mvpp.Catalog, error) {
	cat := mvpp.NewCatalog()
	steps := []error{
		cat.AddTable("Shipment", []mvpp.Column{
			{Name: "ship_id", Type: mvpp.Int},
			{Name: "route_id", Type: mvpp.Int},
			{Name: "carrier_id", Type: mvpp.Int},
			{Name: "weight", Type: mvpp.Int},
			{Name: "shipped", Type: mvpp.Date},
		}, mvpp.TableStats{Rows: 500_000, Blocks: 50_000, UpdateFrequency: 2,
			DistinctValues: map[string]float64{
				"ship_id": 500_000, "route_id": 2_000, "carrier_id": 150,
			},
			IntRanges: map[string][2]int64{"weight": {1, 5000}}}),
		cat.AddTable("Route", []mvpp.Column{
			{Name: "route_id", Type: mvpp.Int},
			{Name: "origin", Type: mvpp.String},
			{Name: "destination", Type: mvpp.String},
		}, mvpp.TableStats{Rows: 2_000, Blocks: 200, UpdateFrequency: 0.1,
			DistinctValues: map[string]float64{"route_id": 2_000, "origin": 40, "destination": 40}}),
		cat.AddTable("Carrier", []mvpp.Column{
			{Name: "carrier_id", Type: mvpp.Int},
			{Name: "name", Type: mvpp.String},
			{Name: "mode", Type: mvpp.String},
		}, mvpp.TableStats{Rows: 150, Blocks: 15, UpdateFrequency: 0.05,
			DistinctValues: map[string]float64{"carrier_id": 150, "mode": 4}}),
	}
	for _, err := range steps {
		if err != nil {
			return nil, err
		}
	}
	return cat, nil
}

func designWith(opts mvpp.Options) (*mvpp.Design, error) {
	cat, err := buildCatalog()
	if err != nil {
		return nil, err
	}
	d := mvpp.NewDesigner(cat, opts)
	queries := []struct {
		name string
		sql  string
		freq float64
	}{
		{"hamburg_out", `SELECT Route.destination, weight FROM Shipment, Route
			WHERE Route.origin = 'Hamburg' AND Shipment.route_id = Route.route_id`, 20},
		{"hamburg_air", `SELECT Carrier.name, weight FROM Shipment, Route, Carrier
			WHERE Route.origin = 'Hamburg' AND Carrier.mode = 'Air'
			  AND Shipment.route_id = Route.route_id AND Shipment.carrier_id = Carrier.carrier_id`, 6},
		{"heavy_recent", `SELECT Route.origin, Route.destination FROM Shipment, Route
			WHERE weight > 4000 AND shipped > '2026-01-01'
			  AND Shipment.route_id = Route.route_id`, 9},
	}
	for _, q := range queries {
		if err := d.AddQuery(q.name, q.sql, q.freq); err != nil {
			return nil, fmt.Errorf("%s: %w", q.name, err)
		}
	}
	return d.Design()
}

func main() {
	logger := cli.DefaultLogger()
	local, err := designWith(mvpp.Options{})
	if err != nil {
		cli.Fatal(logger, "co-located design failed", err)
	}
	remote, err := designWith(mvpp.Options{
		Distribution: &mvpp.Distribution{
			SiteOf: map[string]string{
				"Shipment": "logistics-dc",
				"Route":    "planning-db",
				"Carrier":  "partner-registry",
			},
			BlockTransferCost: 4, // shipping one block costs 4 block-access units
		},
	})
	if err != nil {
		cli.Fatal(logger, "distributed design failed", err)
	}

	fmt.Println("co-located warehouse:")
	fmt.Printf("  design total:        %.4g\n", local.Costs().TotalCost)
	fmt.Printf("  all-virtual total:   %.4g\n", local.Costs().AllVirtualTotal)
	fmt.Printf("  materialized views:  %d\n\n", len(local.Views()))

	fmt.Println("distributed warehouse (transfer cost 4 per block):")
	fmt.Printf("  design total:        %.4g\n", remote.Costs().TotalCost)
	fmt.Printf("  all-virtual total:   %.4g\n", remote.Costs().AllVirtualTotal)
	fmt.Printf("  materialized views:  %d\n\n", len(remote.Views()))

	localSaving := local.Costs().AllVirtualTotal - local.Costs().TotalCost
	remoteSaving := remote.Costs().AllVirtualTotal - remote.Costs().TotalCost
	fmt.Printf("materialization saves %.4g locally and %.4g distributed —\n", localSaving, remoteSaving)
	fmt.Println("shipping base relations per query makes views proportionally more valuable.")

	fmt.Println("\ndistributed design report:")
	fmt.Print(remote.Report())
}
