// Retail star schema: a Sales fact table referencing Store, Item, Promo
// and Day dimensions, with a ten-query reporting workload whose queries
// overlap heavily — the situation the MVPP framework is built for.
// The example designs the views, compares hand-picked strategies, and
// emits Graphviz DOT for the chosen MVPP.
//
//	go run ./examples/retail_star
package main

import (
	"fmt"

	mvpp "github.com/warehousekit/mvpp"
	"github.com/warehousekit/mvpp/internal/cli"
)

func buildCatalog() (*mvpp.Catalog, error) {
	cat := mvpp.NewCatalog()
	steps := []error{
		cat.AddTable("Sales", []mvpp.Column{
			{Name: "sid", Type: mvpp.Int},
			{Name: "store_id", Type: mvpp.Int},
			{Name: "item_id", Type: mvpp.Int},
			{Name: "promo_id", Type: mvpp.Int},
			{Name: "day_id", Type: mvpp.Int},
			{Name: "amount", Type: mvpp.Int},
		}, mvpp.TableStats{Rows: 2_000_000, Blocks: 250_000, UpdateFrequency: 1,
			DistinctValues: map[string]float64{
				"sid": 2_000_000, "store_id": 500, "item_id": 40_000,
				"promo_id": 300, "day_id": 730,
			},
			IntRanges: map[string][2]int64{"amount": {1, 1000}}}),
		cat.AddTable("Store", []mvpp.Column{
			{Name: "store_id", Type: mvpp.Int},
			{Name: "name", Type: mvpp.String},
			{Name: "region", Type: mvpp.String},
		}, mvpp.TableStats{Rows: 500, Blocks: 50, UpdateFrequency: 0.01,
			DistinctValues: map[string]float64{"store_id": 500, "region": 10}}),
		cat.AddTable("Item", []mvpp.Column{
			{Name: "item_id", Type: mvpp.Int},
			{Name: "name", Type: mvpp.String},
			{Name: "category", Type: mvpp.String},
		}, mvpp.TableStats{Rows: 40_000, Blocks: 4_000, UpdateFrequency: 0.1,
			DistinctValues: map[string]float64{"item_id": 40_000, "category": 80}}),
		cat.AddTable("Promo", []mvpp.Column{
			{Name: "promo_id", Type: mvpp.Int},
			{Name: "name", Type: mvpp.String},
			{Name: "kind", Type: mvpp.String},
		}, mvpp.TableStats{Rows: 300, Blocks: 30, UpdateFrequency: 0.05,
			DistinctValues: map[string]float64{"promo_id": 300, "kind": 6}}),
		cat.AddTable("Day", []mvpp.Column{
			{Name: "day_id", Type: mvpp.Int},
			{Name: "date", Type: mvpp.Date},
			{Name: "quarter", Type: mvpp.String},
		}, mvpp.TableStats{Rows: 730, Blocks: 40, UpdateFrequency: 0,
			DistinctValues: map[string]float64{"day_id": 730, "quarter": 8}}),
	}
	for _, err := range steps {
		if err != nil {
			return nil, err
		}
	}
	return cat, nil
}

func main() {
	logger := cli.DefaultLogger()
	cat, err := buildCatalog()
	if err != nil {
		cli.Fatal(logger, "building the catalog failed", err)
	}

	// Ten reporting queries. The region='West' sales slice and the
	// category='Grocery' slice recur across them with different frequency
	// weights.
	queries := []struct {
		name string
		sql  string
		freq float64
	}{
		{"west_sales", `SELECT Store.name, amount FROM Sales, Store
			WHERE Store.region = 'West' AND Sales.store_id = Store.store_id`, 40},
		{"west_by_item", `SELECT Item.name, amount FROM Sales, Store, Item
			WHERE Store.region = 'West' AND Sales.store_id = Store.store_id
			  AND Sales.item_id = Item.item_id`, 15},
		{"west_grocery", `SELECT Store.name, Item.name, amount FROM Sales, Store, Item
			WHERE Store.region = 'West' AND Item.category = 'Grocery'
			  AND Sales.store_id = Store.store_id AND Sales.item_id = Item.item_id`, 12},
		{"grocery_all", `SELECT Item.name, amount FROM Sales, Item
			WHERE Item.category = 'Grocery' AND Sales.item_id = Item.item_id`, 10},
		{"promo_flash", `SELECT Promo.name, amount FROM Sales, Promo
			WHERE Promo.kind = 'Flash' AND Sales.promo_id = Promo.promo_id`, 8},
		{"promo_by_store", `SELECT Store.name, Promo.name, amount FROM Sales, Store, Promo
			WHERE Promo.kind = 'Flash' AND Sales.store_id = Store.store_id
			  AND Sales.promo_id = Promo.promo_id`, 4},
		{"q1_sales", `SELECT Day.quarter, amount FROM Sales, Day
			WHERE Day.quarter = '2026Q1' AND Sales.day_id = Day.day_id`, 6},
		{"q1_west", `SELECT Store.name, amount FROM Sales, Store, Day
			WHERE Day.quarter = '2026Q1' AND Store.region = 'West'
			  AND Sales.store_id = Store.store_id AND Sales.day_id = Day.day_id`, 5},
		{"big_tickets", `SELECT Store.name, amount FROM Sales, Store
			WHERE amount > 900 AND Sales.store_id = Store.store_id`, 3},
		{"grocery_promo", `SELECT Item.name, Promo.name, amount FROM Sales, Item, Promo
			WHERE Item.category = 'Grocery' AND Promo.kind = 'Flash'
			  AND Sales.item_id = Item.item_id AND Sales.promo_id = Promo.promo_id`, 2},
	}

	d := mvpp.NewDesigner(cat, mvpp.Options{Rotations: 4})
	for _, q := range queries {
		if err := d.AddQuery(q.name, q.sql, q.freq); err != nil {
			cli.Fatal(logger, "adding query "+q.name+" failed", err)
		}
	}
	design, err := d.Design()
	if err != nil {
		cli.Fatal(logger, "design failed", err)
	}
	fmt.Print(design.Report())

	// Compare the recommendation against two hand-picked strategies a DBA
	// might try.
	fmt.Println("\nwhat-if strategies:")
	for _, views := range [][]string{nil, design.VertexNames()[:1]} {
		q, m, total, err := design.EvaluateStrategy(views)
		if err != nil {
			cli.Fatal(logger, "pricing a what-if strategy failed", err)
		}
		label := fmt.Sprintf("%v", views)
		if views == nil {
			label = "nothing materialized"
		}
		fmt.Printf("  %-28s query %.3g, maintenance %.3g, total %.3g\n", label, q, m, total)
	}

	fmt.Println("\nGraphviz DOT of the chosen MVPP (pipe into `dot -Tsvg`):")
	fmt.Print(design.DOT())
}
