// Serving: a designed warehouse put behind the concurrent serving layer.
// The paper's pipeline picks the views; this example then runs them live —
// concurrent clients answer the workload through the query router and
// result cache while the maintenance scheduler ingests deltas and
// refreshes the views in epochs. When the live query mix drifts away from
// the design-time frequencies, the advisor re-runs the Figure 9 selection
// on the observed frequencies and hot-swaps the revised view set without
// stopping the clients.
//
//	go run ./examples/serving
package main

import (
	"context"
	"fmt"
	"sort"
	"sync"

	mvpp "github.com/warehousekit/mvpp"
	"github.com/warehousekit/mvpp/internal/cli"
)

func paperDesigner() (*mvpp.Designer, error) {
	cat := mvpp.NewCatalog()
	add := func(name string, cols []mvpp.Column, stats mvpp.TableStats) error {
		return cat.AddTable(name, cols, stats)
	}
	steps := []func() error{
		func() error {
			return add("Product", []mvpp.Column{
				{Name: "Pid", Type: mvpp.Int}, {Name: "name", Type: mvpp.String}, {Name: "Did", Type: mvpp.Int},
			}, mvpp.TableStats{Rows: 30000, Blocks: 3000, UpdateFrequency: 1,
				DistinctValues: map[string]float64{"Pid": 30000, "Did": 5000}})
		},
		func() error {
			return add("Division", []mvpp.Column{
				{Name: "Did", Type: mvpp.Int}, {Name: "name", Type: mvpp.String}, {Name: "city", Type: mvpp.String},
			}, mvpp.TableStats{Rows: 5000, Blocks: 500, UpdateFrequency: 1,
				DistinctValues: map[string]float64{"Did": 5000, "city": 50}})
		},
		func() error {
			return add("Order", []mvpp.Column{
				{Name: "Pid", Type: mvpp.Int}, {Name: "Cid", Type: mvpp.Int},
				{Name: "quantity", Type: mvpp.Int}, {Name: "date", Type: mvpp.Date},
			}, mvpp.TableStats{Rows: 50000, Blocks: 6000, UpdateFrequency: 1,
				DistinctValues: map[string]float64{"Pid": 30000, "Cid": 20000},
				IntRanges:      map[string][2]int64{"quantity": {1, 200}}})
		},
		func() error {
			return add("Customer", []mvpp.Column{
				{Name: "Cid", Type: mvpp.Int}, {Name: "name", Type: mvpp.String}, {Name: "city", Type: mvpp.String},
			}, mvpp.TableStats{Rows: 20000, Blocks: 2000, UpdateFrequency: 1,
				DistinctValues: map[string]float64{"Cid": 20000, "city": 50}})
		},
		func() error {
			return add("Part", []mvpp.Column{
				{Name: "Tid", Type: mvpp.Int}, {Name: "name", Type: mvpp.String},
				{Name: "Pid", Type: mvpp.Int}, {Name: "supplier", Type: mvpp.String},
			}, mvpp.TableStats{Rows: 80000, Blocks: 10000, UpdateFrequency: 1,
				DistinctValues: map[string]float64{"Tid": 80000, "Pid": 30000}})
		},
		func() error { return cat.PinSelectivity(`city = 'LA'`, 0.02, "Division") },
		func() error { return cat.PinSelectivity(`date > 7/1/96`, 0.5, "Order") },
		func() error { return cat.PinSelectivity(`quantity > 100`, 0.5, "Order") },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return nil, err
		}
	}

	d := mvpp.NewDesigner(cat, mvpp.Options{})
	queries := []struct {
		name string
		sql  string
		freq float64
	}{
		{"Q1", `SELECT Product.name FROM Product, Division WHERE Division.city = 'LA' AND Product.Did = Division.Did`, 10},
		{"Q2", `SELECT Part.name FROM Product, Part, Division WHERE Division.city = 'LA' AND Product.Did = Division.Did AND Part.Pid = Product.Pid`, 0.5},
		{"Q3", `SELECT Customer.name, Product.name, quantity FROM Product, Division, Order, Customer WHERE Division.city = 'LA' AND Product.Did = Division.Did AND Product.Pid = Order.Pid AND Order.Cid = Customer.Cid AND date > 7/1/96`, 0.8},
		{"Q4", `SELECT Customer.city, date FROM Order, Customer WHERE quantity > 100 AND Order.Cid = Customer.Cid`, 5},
	}
	for _, q := range queries {
		if err := d.AddQuery(q.name, q.sql, q.freq); err != nil {
			return nil, err
		}
	}
	return d, nil
}

func main() {
	logger := cli.DefaultLogger()
	designer, err := paperDesigner()
	if err != nil {
		cli.Fatal(logger, "building the paper workload failed", err)
	}
	design, err := designer.Design()
	if err != nil {
		cli.Fatal(logger, "design failed", err)
	}
	srv, err := design.NewServer(mvpp.ServeOptions{Scale: 0.02, Seed: 11, Workers: 4})
	if err != nil {
		cli.Fatal(logger, "starting the server failed", err)
	}
	defer srv.Close()

	queries := design.Queries()
	fmt.Printf("serving the paper workload from views %v\n\n", srv.Views())

	// Cold vs cached: the second identical query is answered from the
	// result cache at zero I/O.
	ctx := context.Background()
	cold, err := srv.Query(ctx, "Q1")
	if err != nil {
		cli.Fatal(logger, "Q1 failed", err)
	}
	warm, err := srv.Query(ctx, "Q1")
	if err != nil {
		cli.Fatal(logger, "Q1 repeat failed", err)
	}
	fmt.Printf("Q1 cold: %d rows, %d block reads\n", cold.NumRows(), cold.Reads)
	fmt.Printf("Q1 warm: %d rows, %d block reads (cached=%v)\n\n", warm.NumRows(), warm.Reads, warm.Cached)

	// Concurrent clients hammer the designed mix while the maintenance
	// scheduler lands insert deltas in refresh epochs.
	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := srv.Query(ctx, queries[(c+i)%len(queries)]); err != nil {
					logger.Error("client query failed", "client", c, "err", err)
					return
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if _, err := srv.InjectDeltas(0.02); err != nil {
				logger.Error("delta injection failed", "err", err)
				return
			}
			if err := srv.Flush(); err != nil {
				logger.Error("flush failed", "err", err)
				return
			}
		}
	}()
	wg.Wait()

	stats := srv.Stats()
	fmt.Println("after the concurrent run:")
	fmt.Printf("  queries served:   %d (cache hit rate %.1f%%)\n", stats.Queries, 100*stats.CacheHitRate())
	fmt.Printf("  refresh epochs:   %d (%d incremental, %d recomputed, %d delta rows)\n",
		stats.Epochs, stats.IncrementalRefreshes, stats.Recomputes, stats.DeltaRows)
	fmt.Printf("  latency p50/p99:  %v / %v\n\n", stats.P50, stats.P99)

	// Drift: the live mix turns all-Q4; the advisor re-runs the paper's
	// selection under the observed frequencies and swaps the views live.
	// The drift volume has to drown out the mixed run above — most of these
	// are cache hits, so the flood is cheap.
	for i := 0; i < 20000; i++ {
		if _, err := srv.Query(ctx, "Q4"); err != nil {
			cli.Fatal(logger, "drift query failed", err)
		}
	}
	obsFq := srv.ObservedFrequencies()
	names := make([]string, 0, len(obsFq))
	for q := range obsFq {
		names = append(names, q)
	}
	sort.Strings(names)
	fmt.Println("the live mix drifts to Q4; observed frequencies (scaled):")
	for _, q := range names {
		fmt.Printf("  %-4s %.2f\n", q, obsFq[q])
	}
	advice, err := srv.Advise()
	if err != nil {
		cli.Fatal(logger, "advisor failed", err)
	}
	fmt.Printf("advisor: keep %v, add %v, drop %v\n", advice.Keep, advice.Add, advice.Drop)
	fmt.Printf("advisor: %.0f -> %.0f predicted blocks under the observed load\n",
		advice.CurrentTotal, advice.ProposedTotal)
	if advice.Changed() {
		if err := srv.ApplyAdvice(advice); err != nil {
			cli.Fatal(logger, "applying advice failed", err)
		}
		fmt.Printf("applied live: views now %v\n", srv.Views())
		res, err := srv.Query(ctx, "Q4")
		if err != nil {
			cli.Fatal(logger, "Q4 after swap failed", err)
		}
		fmt.Printf("Q4 after the swap: %d rows, %d block reads\n", res.NumRows(), res.Reads)
	}
}
