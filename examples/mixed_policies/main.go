// Mixed refresh policies: one warehouse, a spectrum of refresh
// disciplines. The paper's pipeline picks the views; this example then
// tags them with per-view refresh policies — a manual view refreshed only
// on demand and a nightly-style scheduled summary, with any further views
// staying on-commit — while deltas arrive both directly and through the
// CDC streaming-ingest path (bounded buffer, group commit, monotone
// watermarks). A freshness SLO shows the degrade/recover cycle: once the
// manual view is stale past the SLO its queries fall back to base
// relations (always fresh, never wrong), and an explicit refresh brings
// it back to VALID.
//
//	go run ./examples/mixed_policies
package main

import (
	"context"
	"fmt"
	"sort"
	"time"

	mvpp "github.com/warehousekit/mvpp"
	"github.com/warehousekit/mvpp/internal/cli"
)

func paperDesigner() (*mvpp.Designer, error) {
	cat := mvpp.NewCatalog()
	add := func(name string, cols []mvpp.Column, stats mvpp.TableStats) error {
		return cat.AddTable(name, cols, stats)
	}
	steps := []func() error{
		func() error {
			return add("Product", []mvpp.Column{
				{Name: "Pid", Type: mvpp.Int}, {Name: "name", Type: mvpp.String}, {Name: "Did", Type: mvpp.Int},
			}, mvpp.TableStats{Rows: 30000, Blocks: 3000, UpdateFrequency: 1,
				DistinctValues: map[string]float64{"Pid": 30000, "Did": 5000}})
		},
		func() error {
			return add("Division", []mvpp.Column{
				{Name: "Did", Type: mvpp.Int}, {Name: "name", Type: mvpp.String}, {Name: "city", Type: mvpp.String},
			}, mvpp.TableStats{Rows: 5000, Blocks: 500, UpdateFrequency: 1,
				DistinctValues: map[string]float64{"Did": 5000, "city": 50}})
		},
		func() error {
			return add("Order", []mvpp.Column{
				{Name: "Pid", Type: mvpp.Int}, {Name: "Cid", Type: mvpp.Int},
				{Name: "quantity", Type: mvpp.Int}, {Name: "date", Type: mvpp.Date},
			}, mvpp.TableStats{Rows: 50000, Blocks: 6000, UpdateFrequency: 1,
				DistinctValues: map[string]float64{"Pid": 30000, "Cid": 20000},
				IntRanges:      map[string][2]int64{"quantity": {1, 200}}})
		},
		func() error {
			return add("Customer", []mvpp.Column{
				{Name: "Cid", Type: mvpp.Int}, {Name: "name", Type: mvpp.String}, {Name: "city", Type: mvpp.String},
			}, mvpp.TableStats{Rows: 20000, Blocks: 2000, UpdateFrequency: 1,
				DistinctValues: map[string]float64{"Cid": 20000, "city": 50}})
		},
		func() error { return cat.PinSelectivity(`city = 'LA'`, 0.02, "Division") },
		func() error { return cat.PinSelectivity(`date > 7/1/96`, 0.5, "Order") },
		func() error { return cat.PinSelectivity(`quantity > 100`, 0.5, "Order") },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return nil, err
		}
	}

	d := mvpp.NewDesigner(cat, mvpp.Options{})
	queries := []struct {
		name string
		sql  string
		freq float64
	}{
		{"Q1", `SELECT Product.name FROM Product, Division WHERE Division.city = 'LA' AND Product.Did = Division.Did`, 10},
		{"Q3", `SELECT Customer.name, Product.name, quantity FROM Product, Division, Order, Customer WHERE Division.city = 'LA' AND Product.Did = Division.Did AND Product.Pid = Order.Pid AND Order.Cid = Customer.Cid AND date > 7/1/96`, 0.8},
		{"Q4", `SELECT Customer.city, date FROM Order, Customer WHERE quantity > 100 AND Order.Cid = Customer.Cid`, 5},
	}
	for _, q := range queries {
		if err := d.AddQuery(q.name, q.sql, q.freq); err != nil {
			return nil, err
		}
	}
	return d, nil
}

func printViews(srv *mvpp.Server) {
	stale := srv.Staleness()
	names := make([]string, 0, len(stale))
	for name := range stale {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := stale[name]
		slo := ""
		if st.SLOViolated {
			slo = "  SLO VIOLATED"
		}
		fmt.Printf("  %-10s %-8s policy %-14s lag %3d rows, stale %d epochs%s\n",
			name, st.Status, st.Policy, st.LagRows, st.StaleEpochs, slo)
	}
}

func main() {
	logger := cli.DefaultLogger()
	designer, err := paperDesigner()
	if err != nil {
		cli.Fatal(logger, "building the paper workload failed", err)
	}
	design, err := designer.Design()
	if err != nil {
		cli.Fatal(logger, "design failed", err)
	}

	// Spread the refresh-policy spectrum over the design's views: sorted
	// names cycle through manual, scheduled, streaming; everything else
	// stays on-commit (the default).
	views := design.Views()
	names := make([]string, 0, len(views))
	for _, v := range views {
		names = append(names, v.Name)
	}
	sort.Strings(names)
	policies := map[string]string{}
	cycle := []string{"manual", "scheduled:200ms", "streaming"}
	for i, name := range names {
		if i < len(cycle) {
			policies[name] = cycle[i]
			if err := design.SetRefreshPolicy(name, cycle[i]); err != nil {
				cli.Fatal(logger, "setting refresh policy failed", err)
			}
		}
	}

	srv, err := design.NewServer(mvpp.ServeOptions{
		Scale: 0.02, Seed: 17, Workers: 4,
		// Any view stale for more than two landed epochs violates its SLO.
		DefaultSLO: mvpp.FreshnessSLO{MaxLagEpochs: 2},
	})
	if err != nil {
		cli.Fatal(logger, "starting the server failed", err)
	}
	defer srv.Close()

	fmt.Printf("serving from views %v with policies %v\n\n", srv.Views(), policies)
	fmt.Println("before any deltas (everything VALID):")
	printViews(srv)

	// Land a few epochs of deltas: on-commit and streaming views refresh
	// every epoch, the scheduled view refreshes when its interval elapses,
	// the manual view only accrues lag.
	ctx := context.Background()
	for epoch := 0; epoch < 4; epoch++ {
		if _, err := srv.InjectDeltas(0.02); err != nil {
			cli.Fatal(logger, "delta injection failed", err)
		}
		if _, err := srv.StreamDeltas(0.01); err != nil {
			cli.Fatal(logger, "streaming ingestion failed", err)
		}
		if err := srv.Flush(); err != nil {
			cli.Fatal(logger, "flush failed", err)
		}
	}
	fmt.Println("\nafter 4 delta epochs (manual lags, scheduled catches up on its interval):")
	printViews(srv)
	accepted, committed := srv.IngestWatermarks()
	st := srv.Stats()
	fmt.Printf("\nstreaming ingest: %d rows in %d group commits, watermarks %d/%d, commit lag p99 %v\n",
		st.StreamRows, st.StreamGroups, accepted, committed, st.IngestLagP99)

	// The manual view has now been stale past its SLO: its queries degrade
	// to base relations — fresh answers at base-table cost.
	time.Sleep(250 * time.Millisecond) // let the scheduled interval elapse
	if err := srv.Flush(); err != nil {
		cli.Fatal(logger, "flush failed", err)
	}
	var degradedQuery string
	for _, q := range design.Queries() {
		res, err := srv.Query(ctx, q)
		if err != nil {
			cli.Fatal(logger, "query failed", err)
		}
		if res.Degraded {
			degradedQuery = q
		}
	}
	fmt.Println("\nthe manual view breaches its SLO (stale > 2 epochs):")
	printViews(srv)
	if degradedQuery != "" {
		fmt.Printf("  %s degraded to base relations while the SLO is violated\n", degradedQuery)
	}

	// RefreshView is the manual policy's refresh button: the view catches
	// up, the SLO episode ends, and the status returns to VALID.
	if err := srv.RefreshAllViews(); err != nil {
		cli.Fatal(logger, "manual refresh failed", err)
	}
	fmt.Println("\nafter RefreshAllViews (the manual view recovers):")
	printViews(srv)
	fmt.Printf("\nSLO violations this run: %d\n", srv.Stats().SLOViolations)
}
