// Engine simulation: validate a design by actually running it. The design
// is computed analytically from statistics; Simulate then generates
// synthetic data consistent with those statistics, executes every query in
// the embedded block-counting engine with and without the recommended
// views, and reports measured block I/O — closing the loop between the
// paper's cost model and observable behaviour.
//
//	go run ./examples/engine_simulation
package main

import (
	"fmt"

	mvpp "github.com/warehousekit/mvpp"
	"github.com/warehousekit/mvpp/internal/cli"
)

func main() {
	logger := cli.DefaultLogger()
	cat := mvpp.NewCatalog()
	must := func(err error) {
		if err != nil {
			cli.Fatal(logger, "building the catalog or workload failed", err)
		}
	}
	must(cat.AddTable("Ticket", []mvpp.Column{
		{Name: "tid", Type: mvpp.Int},
		{Name: "agent_id", Type: mvpp.Int},
		{Name: "queue_id", Type: mvpp.Int},
		{Name: "minutes", Type: mvpp.Int},
	}, mvpp.TableStats{Rows: 80_000, Blocks: 8_000, UpdateFrequency: 1,
		DistinctValues: map[string]float64{"tid": 80_000, "agent_id": 900, "queue_id": 60},
		IntRanges:      map[string][2]int64{"minutes": {1, 600}}}))
	must(cat.AddTable("Agent", []mvpp.Column{
		{Name: "agent_id", Type: mvpp.Int},
		{Name: "name", Type: mvpp.String},
		{Name: "team", Type: mvpp.String},
	}, mvpp.TableStats{Rows: 900, Blocks: 90, UpdateFrequency: 0.1,
		DistinctValues: map[string]float64{"agent_id": 900, "team": 30}}))
	must(cat.AddTable("Queue", []mvpp.Column{
		{Name: "queue_id", Type: mvpp.Int},
		{Name: "name", Type: mvpp.String},
		{Name: "tier", Type: mvpp.String},
	}, mvpp.TableStats{Rows: 60, Blocks: 6, UpdateFrequency: 0.05,
		DistinctValues: map[string]float64{"queue_id": 60, "tier": 3}}))

	d := mvpp.NewDesigner(cat, mvpp.Options{})
	must(d.AddQuery("platinum_load",
		`SELECT Agent.name, minutes FROM Ticket, Agent, Queue
		 WHERE Queue.tier = 'Platinum' AND Ticket.agent_id = Agent.agent_id
		   AND Ticket.queue_id = Queue.queue_id`, 30))
	must(d.AddQuery("platinum_slow",
		`SELECT Agent.name, Queue.name FROM Ticket, Agent, Queue
		 WHERE Queue.tier = 'Platinum' AND minutes > 500
		   AND Ticket.agent_id = Agent.agent_id AND Ticket.queue_id = Queue.queue_id`, 12))
	must(d.AddQuery("team_volume",
		`SELECT Agent.team, minutes FROM Ticket, Agent
		 WHERE Agent.team = 'Escalations' AND Ticket.agent_id = Agent.agent_id`, 8))

	design, err := d.Design()
	if err != nil {
		cli.Fatal(logger, "design failed", err)
	}
	fmt.Print(design.Report())

	fmt.Println("\nrunning the design on synthetic data (embedded engine):")
	sim, err := design.Simulate(mvpp.SimOptions{Scale: 0.05, Seed: 2026})
	if err != nil {
		cli.Fatal(logger, "simulation failed", err)
	}
	fmt.Printf("%-16s %14s %14s %8s\n", "query", "direct reads", "with views", "rows")
	for _, q := range []string{"platinum_load", "platinum_slow", "team_volume"} {
		s := sim.PerQuery[q]
		fmt.Printf("%-16s %14d %14d %8d\n", q, s.DirectReads, s.RewrittenReads, s.Rows)
	}
	fmt.Printf("\nweighted query I/O: %.0f blocks direct, %.0f with views (%.1fx speedup)\n",
		sim.WeightedDirect, sim.WeightedRewritten, sim.Speedup())
	fmt.Printf("one-time materialization: %d blocks; one refresh epoch: %d blocks\n",
		sim.MaterializeIO, sim.RefreshIO)
}
