// Incremental maintenance: on an update-heavy warehouse the paper's
// recompute-on-refresh policy makes materialized views expensive to keep,
// so the designer materializes little and the workload stays slow. Pricing
// incremental (delta-propagation) maintenance — only the small per-epoch
// insert delta flows through each view's plan — cuts Cm, changes which
// views the Figure 9 heuristic picks, and lowers the predicted total. The
// engine simulation then measures both maintenance paths on synthetic data
// to confirm the prediction.
//
//	go run ./examples/incremental_maintenance
package main

import (
	"fmt"

	mvpp "github.com/warehousekit/mvpp"
	"github.com/warehousekit/mvpp/internal/cli"
)

func buildDesigner(opts mvpp.Options) *mvpp.Designer {
	cat := mvpp.NewCatalog()
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	// An update-heavy sales feed: Sale receives inserts all day, so its
	// update frequency dwarfs the query frequencies.
	must(cat.AddTable("Sale", []mvpp.Column{
		{Name: "sid", Type: mvpp.Int},
		{Name: "store_id", Type: mvpp.Int},
		{Name: "item_id", Type: mvpp.Int},
		{Name: "amount", Type: mvpp.Int},
	}, mvpp.TableStats{Rows: 120_000, Blocks: 12_000, UpdateFrequency: 60,
		DistinctValues: map[string]float64{"sid": 120_000, "store_id": 400, "item_id": 3_000},
		IntRanges:      map[string][2]int64{"amount": {1, 900}}}))
	must(cat.AddTable("Store", []mvpp.Column{
		{Name: "store_id", Type: mvpp.Int},
		{Name: "name", Type: mvpp.String},
		{Name: "region", Type: mvpp.String},
	}, mvpp.TableStats{Rows: 400, Blocks: 40, UpdateFrequency: 2,
		DistinctValues: map[string]float64{"store_id": 400, "region": 8}}))
	must(cat.AddTable("Item", []mvpp.Column{
		{Name: "item_id", Type: mvpp.Int},
		{Name: "name", Type: mvpp.String},
		{Name: "category", Type: mvpp.String},
	}, mvpp.TableStats{Rows: 3_000, Blocks: 300, UpdateFrequency: 4,
		DistinctValues: map[string]float64{"item_id": 3_000, "category": 40}}))

	d := mvpp.NewDesigner(cat, opts)
	must(d.AddQuery("west_revenue",
		`SELECT Store.name, amount FROM Sale, Store
		 WHERE Store.region = 'West' AND Sale.store_id = Store.store_id`, 20))
	must(d.AddQuery("west_big_tickets",
		`SELECT Store.name, Item.name FROM Sale, Store, Item
		 WHERE Store.region = 'West' AND amount > 800
		   AND Sale.store_id = Store.store_id AND Sale.item_id = Item.item_id`, 10))
	must(d.AddQuery("grocery_volume",
		`SELECT Item.name, amount FROM Sale, Item
		 WHERE Item.category = 'cat-7' AND Sale.item_id = Item.item_id`, 8))
	return d
}

func main() {
	logger := cli.DefaultLogger()

	// Each maintenance epoch inserts about 1% of every base relation.
	const insertFraction = 0.01

	recompute, err := buildDesigner(mvpp.Options{}).Design()
	if err != nil {
		cli.Fatal(logger, "recompute-only design failed", err)
	}
	incremental, err := buildDesigner(mvpp.Options{
		Delta: &mvpp.DeltaOptions{DefaultFraction: insertFraction},
	}).Design()
	if err != nil {
		cli.Fatal(logger, "incremental design failed", err)
	}

	rc, ic := recompute.Costs(), incremental.Costs()
	fmt.Println("maintenance policy comparison (predicted block accesses per period):")
	fmt.Printf("%-22s %9s %14s %14s %14s\n", "policy", "views", "query", "maintenance", "total")
	fmt.Printf("%-22s %9d %14.0f %14.0f %14.0f\n", "recompute-only",
		len(recompute.Views()), rc.QueryCost, rc.MaintenanceCost, rc.TotalCost)
	fmt.Printf("%-22s %9d %14.0f %14.0f %14.0f\n", "with incremental",
		len(incremental.Views()), ic.QueryCost, ic.MaintenanceCost, ic.TotalCost)
	if ic.TotalCost < rc.TotalCost {
		fmt.Printf("incremental maintenance saves %.1f%% of the total\n",
			100*(rc.TotalCost-ic.TotalCost)/rc.TotalCost)
	}

	fmt.Println("\nchosen views and their maintenance plans:")
	for _, v := range incremental.Views() {
		fmt.Printf("  %-10s %-40s maintained by %s\n", v.Name, v.Operation, v.MaintenanceStrategy)
	}

	fmt.Println("\nmeasuring both maintenance paths in the embedded engine:")
	sim, err := incremental.Simulate(mvpp.SimOptions{
		Scale: 0.05, Seed: 2026, DeltaFraction: insertFraction,
	})
	if err != nil {
		cli.Fatal(logger, "simulation failed", err)
	}
	fmt.Printf("  inserted delta rows:            %d\n", sim.DeltaRows)
	fmt.Printf("  recompute refresh epoch:        %d blocks\n", sim.RefreshIO)
	fmt.Printf("  incremental maintenance epoch:  %d blocks\n", sim.IncrementalRefreshIO)
	if sim.RefreshIO > 0 {
		fmt.Printf("  measured maintenance saving:    %.1f%%\n",
			100*float64(sim.RefreshIO-sim.IncrementalRefreshIO)/float64(sim.RefreshIO))
	}
}
