// Summary tables: the classic warehouse pattern — dashboards hammer
// GROUP BY queries whose results are tiny, so materializing the summaries
// (not the detail joins) wins by orders of magnitude. Aggregation is the
// paper's first stated piece of future work; this example designs summary
// tables with the extended framework and validates the design in the
// embedded engine.
//
//	go run ./examples/summary_tables
package main

import (
	"fmt"

	mvpp "github.com/warehousekit/mvpp"
	"github.com/warehousekit/mvpp/internal/cli"
)

func main() {
	logger := cli.DefaultLogger()
	cat := mvpp.NewCatalog()
	must := func(err error) {
		if err != nil {
			cli.Fatal(logger, "building the catalog or workload failed", err)
		}
	}
	must(cat.AddTable("PageView", []mvpp.Column{
		{Name: "vid", Type: mvpp.Int},
		{Name: "page_id", Type: mvpp.Int},
		{Name: "country_id", Type: mvpp.Int},
		{Name: "ms", Type: mvpp.Int},
		{Name: "day", Type: mvpp.Date},
	}, mvpp.TableStats{Rows: 1_500_000, Blocks: 150_000, UpdateFrequency: 1,
		DistinctValues: map[string]float64{"vid": 1_500_000, "page_id": 8_000, "country_id": 120},
		IntRanges:      map[string][2]int64{"ms": {1, 30_000}}}))
	must(cat.AddTable("Page", []mvpp.Column{
		{Name: "page_id", Type: mvpp.Int},
		{Name: "path", Type: mvpp.String},
		{Name: "section", Type: mvpp.String},
	}, mvpp.TableStats{Rows: 8_000, Blocks: 800, UpdateFrequency: 0.2,
		DistinctValues: map[string]float64{"page_id": 8_000, "section": 25}}))
	must(cat.AddTable("Country", []mvpp.Column{
		{Name: "country_id", Type: mvpp.Int},
		{Name: "name", Type: mvpp.String},
		{Name: "region", Type: mvpp.String},
	}, mvpp.TableStats{Rows: 120, Blocks: 12, UpdateFrequency: 0,
		DistinctValues: map[string]float64{"country_id": 120, "region": 6}}))

	d := mvpp.NewDesigner(cat, mvpp.Options{DiscountedMaintenance: true})
	// Dashboard queries: very frequent, tiny grouped results.
	must(d.AddQuery("views_by_section",
		`SELECT Page.section, COUNT(*) AS views, SUM(ms) AS total_ms
		 FROM PageView, Page
		 WHERE PageView.page_id = Page.page_id
		 GROUP BY Page.section`, 200))
	must(d.AddQuery("views_by_region",
		`SELECT Country.region, COUNT(*) AS views
		 FROM PageView, Country
		 WHERE PageView.country_id = Country.country_id
		 GROUP BY Country.region`, 120))
	must(d.AddQuery("slow_pages",
		`SELECT Page.path, AVG(ms) AS avg_ms
		 FROM PageView, Page
		 WHERE PageView.page_id = Page.page_id AND ms > 10000
		 GROUP BY Page.path`, 30))
	// One detail query keeps the base join relevant.
	must(d.AddQuery("drilldown",
		`SELECT Page.path, Country.name, ms FROM PageView, Page, Country
		 WHERE ms > 25000 AND PageView.page_id = Page.page_id
		   AND PageView.country_id = Country.country_id`, 2))

	design, err := d.Design()
	if err != nil {
		cli.Fatal(logger, "design failed", err)
	}
	fmt.Print(design.Report())

	fmt.Println("\nrunning on synthetic data:")
	sim, err := design.Simulate(mvpp.SimOptions{Scale: 0.01, Seed: 4})
	if err != nil {
		cli.Fatal(logger, "simulation failed", err)
	}
	fmt.Printf("%-18s %14s %14s %8s\n", "query", "direct reads", "with views", "rows")
	for _, q := range []string{"views_by_section", "views_by_region", "slow_pages", "drilldown"} {
		s := sim.PerQuery[q]
		fmt.Printf("%-18s %14d %14d %8d\n", q, s.DirectReads, s.RewrittenReads, s.Rows)
	}
	fmt.Printf("\nweighted I/O: %.0f → %.0f blocks (%.0fx speedup); refresh epoch %d blocks\n",
		sim.WeightedDirect, sim.WeightedRewritten, sim.Speedup(), sim.RefreshIO)
}
