// What-if tuning: how the recommended materialization changes as workload
// parameters move. The example sweeps (a) a query's access frequency and
// (b) the base relations' update frequency, and prints the recommended
// view set at each point — reproducing the paper's core intuition that the
// design flips between "leave virtual", "share intermediate results", and
// "materialize the query" as fq/fu shifts.
//
//	go run ./examples/whatif_tuning
package main

import (
	"fmt"
	"strings"

	mvpp "github.com/warehousekit/mvpp"
	"github.com/warehousekit/mvpp/internal/cli"
)

func buildCatalog(updateFreq float64) (*mvpp.Catalog, error) {
	cat := mvpp.NewCatalog()
	steps := []error{
		cat.AddTable("Reading", []mvpp.Column{
			{Name: "sensor_id", Type: mvpp.Int},
			{Name: "station_id", Type: mvpp.Int},
			{Name: "value", Type: mvpp.Int},
			{Name: "taken", Type: mvpp.Date},
		}, mvpp.TableStats{Rows: 300_000, Blocks: 30_000, UpdateFrequency: updateFreq,
			DistinctValues: map[string]float64{"sensor_id": 5_000, "station_id": 400},
			IntRanges:      map[string][2]int64{"value": {0, 1000}}}),
		cat.AddTable("Station", []mvpp.Column{
			{Name: "station_id", Type: mvpp.Int},
			{Name: "name", Type: mvpp.String},
			{Name: "basin", Type: mvpp.String},
		}, mvpp.TableStats{Rows: 400, Blocks: 40, UpdateFrequency: 0.01,
			DistinctValues: map[string]float64{"station_id": 400, "basin": 12}}),
	}
	for _, err := range steps {
		if err != nil {
			return nil, err
		}
	}
	return cat, nil
}

func design(queryFreq, updateFreq float64) ([]string, float64, error) {
	cat, err := buildCatalog(updateFreq)
	if err != nil {
		return nil, 0, err
	}
	d := mvpp.NewDesigner(cat, mvpp.Options{})
	err = d.AddQuery("rhine_high",
		`SELECT Station.name, value FROM Reading, Station
		 WHERE Station.basin = 'Rhine' AND value > 900
		   AND Reading.station_id = Station.station_id`, queryFreq)
	if err != nil {
		return nil, 0, err
	}
	err = d.AddQuery("rhine_all",
		`SELECT Station.name, value, taken FROM Reading, Station
		 WHERE Station.basin = 'Rhine' AND Reading.station_id = Station.station_id`, 2)
	if err != nil {
		return nil, 0, err
	}
	dsg, err := d.Design()
	if err != nil {
		return nil, 0, err
	}
	var names []string
	for _, v := range dsg.Views() {
		names = append(names, v.Name)
	}
	return names, dsg.Costs().TotalCost, nil
}

func main() {
	logger := cli.DefaultLogger()
	fmt.Println("sweep 1: query frequency of rhine_high (updates fixed at 1/period)")
	fmt.Printf("%10s  %-34s %s\n", "fq", "materialized set", "total cost")
	for _, fq := range []float64{0.001, 0.01, 0.1, 1, 10, 100} {
		views, total, err := design(fq, 1)
		if err != nil {
			cli.Fatal(logger, "frequency-sweep design failed", err)
		}
		fmt.Printf("%10g  %-34s %.4g\n", fq, setLabel(views), total)
	}

	fmt.Println("\nsweep 2: update frequency of Reading (rhine_high fixed at fq=10)")
	fmt.Printf("%10s  %-34s %s\n", "fu", "materialized set", "total cost")
	for _, fu := range []float64{0.01, 0.1, 1, 10, 100, 1000} {
		views, total, err := design(10, fu)
		if err != nil {
			cli.Fatal(logger, "update-sweep design failed", err)
		}
		fmt.Printf("%10g  %-34s %.4g\n", fu, setLabel(views), total)
	}

	fmt.Println("\nreading the sweeps: materialization grows with query frequency and")
	fmt.Println("shrinks back toward virtual views as base updates get more frequent —")
	fmt.Println("the trade-off the paper's total-cost objective balances.")
}

func setLabel(views []string) string {
	if len(views) == 0 {
		return "(nothing — all virtual)"
	}
	return strings.Join(views, ", ")
}
