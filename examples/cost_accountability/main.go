// Cost accountability: the serving layer auditing its own cost model.
// Every §4.1 prediction the designer made becomes a live ledger entry the
// engine's measured block I/O is joined against — per query class and per
// view refresh — with an EWMA calibration ratio saying how honest the
// model is. The program drives traffic, prints the ledger and an
// EXPLAIN annotated with actuals, scrapes /costmodel, and then forces a
// skewed cost model to show the drift flag tripping and the advisor
// re-selecting views with recalibrated weights.
//
//	go run ./examples/cost_accountability
package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"

	mvpp "github.com/warehousekit/mvpp"
	"github.com/warehousekit/mvpp/internal/cli"
)

func paperDesigner() (*mvpp.Designer, error) {
	cat := mvpp.NewCatalog()
	steps := []error{
		cat.AddTable("Product", []mvpp.Column{
			{Name: "Pid", Type: mvpp.Int}, {Name: "name", Type: mvpp.String}, {Name: "Did", Type: mvpp.Int},
		}, mvpp.TableStats{Rows: 30000, Blocks: 3000, UpdateFrequency: 1,
			DistinctValues: map[string]float64{"Pid": 30000, "Did": 5000}}),
		cat.AddTable("Division", []mvpp.Column{
			{Name: "Did", Type: mvpp.Int}, {Name: "name", Type: mvpp.String}, {Name: "city", Type: mvpp.String},
		}, mvpp.TableStats{Rows: 5000, Blocks: 500, UpdateFrequency: 1,
			DistinctValues: map[string]float64{"Did": 5000, "city": 50}}),
		cat.AddTable("Order", []mvpp.Column{
			{Name: "Pid", Type: mvpp.Int}, {Name: "Cid", Type: mvpp.Int},
			{Name: "quantity", Type: mvpp.Int}, {Name: "date", Type: mvpp.Date},
		}, mvpp.TableStats{Rows: 50000, Blocks: 6000, UpdateFrequency: 1,
			DistinctValues: map[string]float64{"Pid": 30000, "Cid": 20000},
			IntRanges:      map[string][2]int64{"quantity": {1, 200}}}),
		cat.AddTable("Customer", []mvpp.Column{
			{Name: "Cid", Type: mvpp.Int}, {Name: "name", Type: mvpp.String}, {Name: "city", Type: mvpp.String},
		}, mvpp.TableStats{Rows: 20000, Blocks: 2000, UpdateFrequency: 1,
			DistinctValues: map[string]float64{"Cid": 20000, "city": 50}}),
		cat.PinSelectivity(`city = 'LA'`, 0.02, "Division"),
		cat.PinSelectivity(`date > 7/1/96`, 0.5, "Order"),
		cat.PinSelectivity(`quantity > 100`, 0.5, "Order"),
	}
	for _, err := range steps {
		if err != nil {
			return nil, err
		}
	}
	d := mvpp.NewDesigner(cat, mvpp.Options{})
	queries := []struct {
		name string
		sql  string
		freq float64
	}{
		{"Q1", `SELECT Product.name FROM Product, Division WHERE Division.city = 'LA' AND Product.Did = Division.Did`, 10},
		{"Q3", `SELECT Customer.name, Product.name, quantity FROM Product, Division, Order, Customer WHERE Division.city = 'LA' AND Product.Did = Division.Did AND Product.Pid = Order.Pid AND Order.Cid = Customer.Cid AND date > 7/1/96`, 0.8},
		{"Q4", `SELECT Customer.city, date FROM Order, Customer WHERE quantity > 100 AND Order.Cid = Customer.Cid`, 5},
	}
	for _, q := range queries {
		if err := d.AddQuery(q.name, q.sql, q.freq); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// epoch drives one round of traffic and maintenance: every query once
// against a cold cache, then a delta batch and a refresh.
func epoch(srv *mvpp.Server, queries []string) error {
	ctx := context.Background()
	for _, q := range queries {
		if _, err := srv.Query(ctx, q); err != nil {
			return err
		}
	}
	if _, err := srv.InjectDeltas(0.02); err != nil {
		return err
	}
	return srv.Flush()
}

func printLedger(rep mvpp.CostReport) {
	fmt.Printf("  %-11s %-8s %10s %10s %7s %s\n", "kind", "name", "predicted", "actual", "ratio", "")
	for _, e := range rep.Entries {
		drift := ""
		if e.Drifted {
			drift = "  <- DRIFTED"
		}
		fmt.Printf("  %-11s %-8s %10.1f %10.0f %7.2f%s\n",
			e.Kind, e.Name, e.PredictedBlocks, e.LastActualBlocks, e.Ratio, drift)
	}
}

func main() {
	logger := cli.DefaultLogger()
	designer, err := paperDesigner()
	if err != nil {
		cli.Fatal(logger, "building the paper workload failed", err)
	}
	design, err := designer.Design()
	if err != nil {
		cli.Fatal(logger, "design failed", err)
	}

	// Act 1: an honest cost model. The ledger is on by default.
	srv, err := design.NewServer(mvpp.ServeOptions{
		Scale: 0.05, Seed: 11, TelemetryAddr: "127.0.0.1:0",
	})
	if err != nil {
		cli.Fatal(logger, "starting the server failed", err)
	}
	defer srv.Close()
	queries := design.Queries()
	for i := 0; i < 3; i++ {
		if err := epoch(srv, queries); err != nil {
			cli.Fatal(logger, "driving traffic failed", err)
		}
	}

	fmt.Println("predicted vs actual block I/O after 3 epochs (ratio = actual/predicted):")
	printLedger(srv.CostReport())

	fmt.Println("\nEXPLAIN Q3 — the rewritten plan, priced per operator, joined with actuals:")
	plan, err := srv.Explain("Q3")
	if err != nil {
		cli.Fatal(logger, "explain failed", err)
	}
	fmt.Print(plan)

	// The same ledger as a scrape target.
	resp, err := http.Get("http://" + srv.TelemetryAddr() + "/metrics")
	if err != nil {
		cli.Fatal(logger, "scraping /metrics failed", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		cli.Fatal(logger, "scraping /metrics failed", err)
	}
	fmt.Println("\ncalibration gauges on /metrics:")
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "mv_cost_calibration_ratio{") {
			fmt.Printf("  %s\n", line)
		}
	}

	// Act 2: a lying cost model. Every prediction is skewed 8x high, so the
	// smoothed ratios collapse toward 0.125, cross the drift bound (2.5),
	// and the scheduler re-runs Figure 9 selection with the observed
	// frequencies recalibrated by the measured ratios.
	skewed, err := design.NewServer(mvpp.ServeOptions{
		Scale: 0.05, Seed: 11,
		CostAudit: mvpp.CostAuditOptions{SkewPredictions: 8},
	})
	if err != nil {
		cli.Fatal(logger, "starting the skewed server failed", err)
	}
	defer skewed.Close()
	for i := 0; i < 4; i++ {
		if err := epoch(skewed, queries); err != nil {
			cli.Fatal(logger, "driving the skewed server failed", err)
		}
	}
	fmt.Println("\nwith predictions skewed 8x (a deliberately mis-calibrated model):")
	printLedger(skewed.CostReport())
	st := skewed.Stats()
	fmt.Printf("\ndrift events: %d, advisor recalibrations: %d\n", st.CostDrifts, st.Recalibrations)
	if recal := skewed.LastRecalibration(); recal != nil {
		fmt.Printf("recalibrated selection: keep %v, add %v, drop %v (%.0f -> %.0f blocks under recalibrated weights)\n",
			recal.Keep, recal.Add, recal.Drop, recal.CurrentTotal, recal.ProposedTotal)
	}
}
