// Telemetry: the designed warehouse served live with the telemetry plane
// switched on. The server binds an admin HTTP listener and this program
// plays Prometheus against itself: it drives concurrent clients and delta
// ingestion, then scrapes /metrics (text exposition with latency buckets
// and per-view staleness gauges), /healthz, /views, and /traces — where a
// single query ID correlates one query's admission → cache/engine → reply
// lifecycle.
//
//	go run ./examples/telemetry
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"

	mvpp "github.com/warehousekit/mvpp"
	"github.com/warehousekit/mvpp/internal/cli"
	"github.com/warehousekit/mvpp/internal/telemetry"
)

func paperDesigner() (*mvpp.Designer, error) {
	cat := mvpp.NewCatalog()
	add := func(name string, cols []mvpp.Column, stats mvpp.TableStats) error {
		return cat.AddTable(name, cols, stats)
	}
	steps := []func() error{
		func() error {
			return add("Product", []mvpp.Column{
				{Name: "Pid", Type: mvpp.Int}, {Name: "name", Type: mvpp.String}, {Name: "Did", Type: mvpp.Int},
			}, mvpp.TableStats{Rows: 30000, Blocks: 3000, UpdateFrequency: 1,
				DistinctValues: map[string]float64{"Pid": 30000, "Did": 5000}})
		},
		func() error {
			return add("Division", []mvpp.Column{
				{Name: "Did", Type: mvpp.Int}, {Name: "name", Type: mvpp.String}, {Name: "city", Type: mvpp.String},
			}, mvpp.TableStats{Rows: 5000, Blocks: 500, UpdateFrequency: 1,
				DistinctValues: map[string]float64{"Did": 5000, "city": 50}})
		},
		func() error {
			return add("Order", []mvpp.Column{
				{Name: "Pid", Type: mvpp.Int}, {Name: "Cid", Type: mvpp.Int},
				{Name: "quantity", Type: mvpp.Int}, {Name: "date", Type: mvpp.Date},
			}, mvpp.TableStats{Rows: 50000, Blocks: 6000, UpdateFrequency: 1,
				DistinctValues: map[string]float64{"Pid": 30000, "Cid": 20000},
				IntRanges:      map[string][2]int64{"quantity": {1, 200}}})
		},
		func() error {
			return add("Customer", []mvpp.Column{
				{Name: "Cid", Type: mvpp.Int}, {Name: "name", Type: mvpp.String}, {Name: "city", Type: mvpp.String},
			}, mvpp.TableStats{Rows: 20000, Blocks: 2000, UpdateFrequency: 1,
				DistinctValues: map[string]float64{"Cid": 20000, "city": 50}})
		},
		func() error { return cat.PinSelectivity(`city = 'LA'`, 0.02, "Division") },
		func() error { return cat.PinSelectivity(`date > 7/1/96`, 0.5, "Order") },
		func() error { return cat.PinSelectivity(`quantity > 100`, 0.5, "Order") },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return nil, err
		}
	}

	d := mvpp.NewDesigner(cat, mvpp.Options{})
	queries := []struct {
		name string
		sql  string
		freq float64
	}{
		{"Q1", `SELECT Product.name FROM Product, Division WHERE Division.city = 'LA' AND Product.Did = Division.Did`, 10},
		{"Q3", `SELECT Customer.name, Product.name, quantity FROM Product, Division, Order, Customer WHERE Division.city = 'LA' AND Product.Did = Division.Did AND Product.Pid = Order.Pid AND Order.Cid = Customer.Cid AND date > 7/1/96`, 0.8},
		{"Q4", `SELECT Customer.city, date FROM Order, Customer WHERE quantity > 100 AND Order.Cid = Customer.Cid`, 5},
	}
	for _, q := range queries {
		if err := d.AddQuery(q.name, q.sql, q.freq); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// get fetches one admin endpoint and returns the body.
func get(addr, path string) ([]byte, int, error) {
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return body, resp.StatusCode, err
}

func main() {
	logger := cli.DefaultLogger()
	designer, err := paperDesigner()
	if err != nil {
		cli.Fatal(logger, "building the paper workload failed", err)
	}
	design, err := designer.Design()
	if err != nil {
		cli.Fatal(logger, "design failed", err)
	}

	// TelemetryAddr switches the plane on; TraceSampleEvery: 1 samples
	// every query so /traces is populated immediately. Production would
	// sample sparsely (the default keeps 1 in 16).
	srv, err := design.NewServer(mvpp.ServeOptions{
		Scale: 0.02, Seed: 11, Workers: 4,
		TelemetryAddr:    "127.0.0.1:0",
		TraceSampleEvery: 1,
	})
	if err != nil {
		cli.Fatal(logger, "starting the server failed", err)
	}
	defer srv.Close()
	addr := srv.TelemetryAddr()
	fmt.Printf("telemetry plane listening on %s (/metrics /healthz /views /traces /debug/pprof)\n\n", addr)

	// Drive traffic: concurrent clients on the designed mix while the
	// scheduler lands an insert batch in a refresh epoch.
	ctx := context.Background()
	queries := design.Queries()
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := srv.Query(ctx, queries[(c+i)%len(queries)]); err != nil {
					logger.Error("client query failed", "client", c, "err", err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if _, err := srv.InjectDeltas(0.02); err != nil {
		cli.Fatal(logger, "delta injection failed", err)
	}
	if err := srv.Flush(); err != nil {
		cli.Fatal(logger, "flush failed", err)
	}

	// Scrape /metrics the way Prometheus would and validate the exposition.
	body, _, err := get(addr, "/metrics")
	if err != nil {
		cli.Fatal(logger, "scraping /metrics failed", err)
	}
	samples, err := telemetry.ValidateExposition(body)
	if err != nil {
		cli.Fatal(logger, "/metrics exposition invalid", err)
	}
	fmt.Printf("/metrics: valid Prometheus exposition, %d samples; highlights:\n", samples)
	for _, line := range strings.Split(string(body), "\n") {
		for _, want := range []string{
			"mvpp_serve_queries_total ", "mvpp_serve_cache_hits_total ",
			"mvpp_serve_window_qps ", "mvpp_serve_latency_seconds_count ",
		} {
			if strings.HasPrefix(line, want) {
				fmt.Printf("  %s\n", line)
			}
		}
	}

	// /healthz: liveness plus the windowed view of the last minute.
	hbody, code, err := get(addr, "/healthz")
	if err != nil {
		cli.Fatal(logger, "scraping /healthz failed", err)
	}
	var health struct {
		Status string `json:"status"`
		Epoch  uint64 `json:"epoch"`
		Views  int    `json:"views"`
	}
	if err := json.Unmarshal(hbody, &health); err != nil {
		cli.Fatal(logger, "parsing /healthz failed", err)
	}
	fmt.Printf("\n/healthz: HTTP %d, status=%s epoch=%d views=%d\n", code, health.Status, health.Epoch, health.Views)

	// /views: per-view staleness, strategy, and breaker state.
	vbody, _, err := get(addr, "/views")
	if err != nil {
		cli.Fatal(logger, "scraping /views failed", err)
	}
	var views struct {
		Views map[string]struct {
			Strategy string `json:"strategy"`
			Epoch    uint64 `json:"epoch"`
			LagRows  int64  `json:"lag_rows"`
		} `json:"views"`
	}
	if err := json.Unmarshal(vbody, &views); err != nil {
		cli.Fatal(logger, "parsing /views failed", err)
	}
	names := make([]string, 0, len(views.Views))
	for name := range views.Views {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Println("\n/views:")
	for _, name := range names {
		v := views.Views[name]
		fmt.Printf("  %-28s strategy=%-11s epoch=%d lag_rows=%d\n", name, v.Strategy, v.Epoch, v.LagRows)
	}

	// /traces: one sampled query's full lifecycle under a single ID.
	traces := srv.RecentTraces()
	if len(traces) == 0 {
		cli.Fatal(logger, "no sampled traces", fmt.Errorf("trace ring empty"))
	}
	tr := traces[len(traces)-1]
	fmt.Printf("\n/traces: query %q, id=%d, correlated chain:\n", tr.Query, tr.ID)
	for _, st := range tr.Stages {
		fmt.Printf("  +%6dus %s\n", st.AtUS, st.Stage)
	}
}
