// Chaos serving: the fault-tolerant serving layer under injected failures.
// Two identical warehouses serve the paper's workload; one has a fault
// injector forcing every view refresh to fail. Its circuit breakers trip
// and queries degrade to base relations — answers stay correct (bit-for-bit
// equal to the healthy server's) because degraded plans bypass the stale
// views entirely. Disarming the injector lets the breakers probe half-open
// and recover. Finally a crash-safe delta journal demonstrates that deltas
// accepted before a crash are replayed, not lost, when the server restarts.
//
//	go run ./examples/chaos_serving
package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	mvpp "github.com/warehousekit/mvpp"
	"github.com/warehousekit/mvpp/internal/cli"
)

func paperDesigner() (*mvpp.Designer, error) {
	cat := mvpp.NewCatalog()
	add := func(name string, cols []mvpp.Column, stats mvpp.TableStats) error {
		return cat.AddTable(name, cols, stats)
	}
	steps := []func() error{
		func() error {
			return add("Product", []mvpp.Column{
				{Name: "Pid", Type: mvpp.Int}, {Name: "name", Type: mvpp.String}, {Name: "Did", Type: mvpp.Int},
			}, mvpp.TableStats{Rows: 30000, Blocks: 3000, UpdateFrequency: 1,
				DistinctValues: map[string]float64{"Pid": 30000, "Did": 5000}})
		},
		func() error {
			return add("Division", []mvpp.Column{
				{Name: "Did", Type: mvpp.Int}, {Name: "name", Type: mvpp.String}, {Name: "city", Type: mvpp.String},
			}, mvpp.TableStats{Rows: 5000, Blocks: 500, UpdateFrequency: 1,
				DistinctValues: map[string]float64{"Did": 5000, "city": 50}})
		},
		func() error {
			return add("Customer", []mvpp.Column{
				{Name: "Cid", Type: mvpp.Int}, {Name: "name", Type: mvpp.String}, {Name: "city", Type: mvpp.String},
			}, mvpp.TableStats{Rows: 20000, Blocks: 2000, UpdateFrequency: 1,
				DistinctValues: map[string]float64{"Cid": 20000, "city": 50}})
		},
		func() error { return cat.PinSelectivity(`city = 'LA'`, 0.02, "Division") },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return nil, err
		}
	}

	d := mvpp.NewDesigner(cat, mvpp.Options{})
	queries := []struct {
		name string
		sql  string
		freq float64
	}{
		{"Q1", `SELECT Product.name FROM Product, Division WHERE Division.city = 'LA' AND Product.Did = Division.Did`, 10},
		{"Q2", `SELECT Customer.name FROM Customer WHERE Customer.city = 'LA'`, 5},
	}
	for _, q := range queries {
		if err := d.AddQuery(q.name, q.sql, q.freq); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// fingerprint renders a result's rows order-independently so two servers'
// answers can be compared bit-for-bit.
func fingerprint(res *mvpp.QueryResult) []string {
	rows := res.Values()
	out := make([]string, len(rows))
	for i, row := range rows {
		parts := make([]string, len(row))
		for c, v := range row {
			parts[c] = fmt.Sprint(v)
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

func same(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func main() {
	logger := cli.DefaultLogger()
	designer, err := paperDesigner()
	if err != nil {
		cli.Fatal(logger, "building the paper workload failed", err)
	}
	design, err := designer.Design()
	if err != nil {
		cli.Fatal(logger, "design failed", err)
	}
	ctx := context.Background()

	// Twin servers over identical synthetic data (same seed): one healthy,
	// one with an injector forcing every refresh attempt to fail. The
	// chaotic breaker trips on the first persistent failure and probes
	// half-open almost immediately once faults stop.
	healthy, err := design.NewServer(mvpp.ServeOptions{Scale: 0.02, Seed: 7})
	if err != nil {
		cli.Fatal(logger, "starting the healthy server failed", err)
	}
	defer healthy.Close()

	inj := mvpp.NewFaultInjector(7, mvpp.FaultPlan{
		mvpp.FaultSiteEngineRefresh:            {ErrProb: 1},
		mvpp.FaultSiteEngineIncrementalRefresh: {ErrProb: 1},
	})
	chaotic, err := design.NewServer(mvpp.ServeOptions{
		Scale: 0.02, Seed: 7,
		Injector: inj,
		Breaker:  mvpp.BreakerPolicy{FailureThreshold: 1, Cooldown: time.Millisecond},
	})
	if err != nil {
		cli.Fatal(logger, "starting the chaotic server failed", err)
	}
	defer chaotic.Close()

	fmt.Printf("twin servers over views %v; chaos: every refresh fails\n\n", healthy.Views())

	// Same deltas into both; the healthy server refreshes its views, the
	// chaotic one fails every refresh, trips its breakers, and accumulates
	// lag (rows applied to base tables its views do not reflect).
	for _, srv := range []*mvpp.Server{healthy, chaotic} {
		if _, err := srv.InjectDeltas(0.05); err != nil {
			cli.Fatal(logger, "delta injection failed", err)
		}
		// Per-view refresh failures do not abort the epoch: the chaotic
		// flush returns nil, records the failures, and trips the breakers.
		if err := srv.Flush(); err != nil {
			cli.Fatal(logger, "flush failed", err)
		}
	}
	for view, h := range chaotic.Health() {
		fmt.Printf("chaotic %s: breaker %s, %d rows lag, degrading=%v\n",
			view, h.State, h.LagRows, h.Degrading)
	}

	// Degraded queries bypass the stale views and answer from base
	// relations — correct (identical to the healthy server) but pricier.
	hres, err := healthy.Query(ctx, "Q1")
	if err != nil {
		cli.Fatal(logger, "healthy Q1 failed", err)
	}
	cres, err := chaotic.Query(ctx, "Q1")
	if err != nil {
		cli.Fatal(logger, "chaotic Q1 failed", err)
	}
	fmt.Printf("\nQ1 healthy: %d rows, %d reads, degraded=%v\n", hres.NumRows(), hres.Reads, hres.Degraded)
	fmt.Printf("Q1 chaotic: %d rows, %d reads, degraded=%v\n", cres.NumRows(), cres.Reads, cres.Degraded)
	if !cres.Degraded {
		cli.Fatal(logger, "chaotic Q1 was not degraded", nil)
	}
	if !same(fingerprint(hres), fingerprint(cres)) {
		cli.Fatal(logger, "degraded answer differs from the healthy one", nil)
	}
	fmt.Println("degraded answer is bit-for-bit identical to the healthy server's")

	// Recovery: disarm the injector; the next epoch probes the open
	// breakers half-open, the recomputes succeed, and serving returns to
	// the materialized views.
	inj.Disarm()
	time.Sleep(5 * time.Millisecond) // let the breaker cooldown elapse
	if err := chaotic.Flush(); err != nil {
		cli.Fatal(logger, "recovery flush failed", err)
	}
	rres, err := chaotic.Query(ctx, "Q1")
	if err != nil {
		cli.Fatal(logger, "recovered Q1 failed", err)
	}
	stats := chaotic.Stats()
	fmt.Printf("\nafter disarm: Q1 degraded=%v; retries=%d, breaker trips=%d, degraded queries=%d\n",
		rres.Degraded, stats.Retries, stats.BreakerTrips, stats.DegradedQueries)

	// Crash safety: a server with a file journal accepts deltas, then
	// closes before any epoch lands (the crash). A new server over the
	// same journal replays them; after one flush it matches a control
	// server that never crashed.
	dir, err := os.MkdirTemp("", "chaos-serving-*")
	if err != nil {
		cli.Fatal(logger, "temp dir failed", err)
	}
	defer os.RemoveAll(dir)
	journal := filepath.Join(dir, "deltas.journal")

	crashed, err := design.NewServer(mvpp.ServeOptions{Scale: 0.02, Seed: 21, JournalPath: journal})
	if err != nil {
		cli.Fatal(logger, "starting the journaled server failed", err)
	}
	ingested, err := crashed.InjectDeltas(0.05)
	if err != nil {
		cli.Fatal(logger, "journaled delta injection failed", err)
	}
	crashed.Close() // crash: accepted deltas never flushed

	reborn, err := design.NewServer(mvpp.ServeOptions{Scale: 0.02, Seed: 21, JournalPath: journal})
	if err != nil {
		cli.Fatal(logger, "restarting over the journal failed", err)
	}
	defer reborn.Close()
	replayed := reborn.Stats().ReplayedDeltaRows
	fmt.Printf("\ncrash: %d delta rows accepted, server closed unflushed\n", ingested)
	fmt.Printf("restart: %d delta rows replayed from the journal\n", replayed)
	if replayed == 0 {
		cli.Fatal(logger, "journal replay recovered nothing", nil)
	}
	if err := reborn.Flush(); err != nil {
		cli.Fatal(logger, "post-replay flush failed", err)
	}

	control, err := design.NewServer(mvpp.ServeOptions{Scale: 0.02, Seed: 21})
	if err != nil {
		cli.Fatal(logger, "starting the control server failed", err)
	}
	defer control.Close()
	if _, err := control.InjectDeltas(0.05); err != nil {
		cli.Fatal(logger, "control delta injection failed", err)
	}
	if err := control.Flush(); err != nil {
		cli.Fatal(logger, "control flush failed", err)
	}
	q1r, err := reborn.Query(ctx, "Q1")
	if err != nil {
		cli.Fatal(logger, "replayed Q1 failed", err)
	}
	q1c, err := control.Query(ctx, "Q1")
	if err != nil {
		cli.Fatal(logger, "control Q1 failed", err)
	}
	if !same(fingerprint(q1r), fingerprint(q1c)) {
		cli.Fatal(logger, "replayed warehouse differs from the control", nil)
	}
	fmt.Println("replayed warehouse matches a control that never crashed: no deltas lost")
}
