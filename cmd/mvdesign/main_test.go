package main

import (
	"flag"
	"os"
	"strings"
	"testing"
)

// runCLI invokes run() with fresh flag state and the given arguments,
// capturing stdout.
func runCLI(t *testing.T, args ...string) (string, int) {
	t.Helper()
	oldArgs, oldFlags := os.Args, flag.CommandLine
	oldStdout := os.Stdout
	defer func() {
		os.Args, flag.CommandLine = oldArgs, oldFlags
		os.Stdout = oldStdout
	}()
	flag.CommandLine = flag.NewFlagSet("mvdesign", flag.ContinueOnError)
	os.Args = append([]string{"mvdesign"}, args...)

	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	code := run()
	w.Close()
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	r.Close()
	return string(buf[:n]), code
}

func TestCLIMissingFlags(t *testing.T) {
	_, code := runCLI(t)
	if code == 0 {
		t.Error("missing flags accepted")
	}
}

func TestCLIUnknownModel(t *testing.T) {
	_, code := runCLI(t, "-catalog", "testdata/catalog.json", "-workload", "testdata/workload.json", "-model", "quantum")
	if code == 0 {
		t.Error("unknown model accepted")
	}
}

func TestCLIMissingFile(t *testing.T) {
	_, code := runCLI(t, "-catalog", "testdata/nope.json", "-workload", "testdata/workload.json")
	if code == 0 {
		t.Error("missing catalog file accepted")
	}
}

func TestCLIReport(t *testing.T) {
	out, code := runCLI(t, "-catalog", "testdata/catalog.json", "-workload", "testdata/workload.json", "-trace")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	for _, want := range []string{"MATERIALIZED VIEW DESIGN", "recommended materialized views", "selection trace"} {
		if !contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestCLIExplain(t *testing.T) {
	out, code := runCLI(t, "-catalog", "testdata/catalog.json", "-workload", "testdata/workload.json", "-explain", "all")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	for _, want := range []string{"blocks under the design", "● materialized", "└── "} {
		if !contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
	if _, code := runCLI(t, "-catalog", "testdata/catalog.json", "-workload", "testdata/workload.json", "-explain", "Q99"); code == 0 {
		t.Error("unknown explain query accepted")
	}
}

func TestCLIPaperSizes(t *testing.T) {
	out, code := runCLI(t, "-catalog", "testdata/catalog.json", "-workload", "testdata/workload.json", "-paper-sizes", "-exhaustive")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !contains(out, "predicted cost per period") {
		t.Errorf("report missing cost section:\n%s", out)
	}
}

func TestCLIDOT(t *testing.T) {
	out, code := runCLI(t, "-catalog", "testdata/catalog.json", "-workload", "testdata/workload.json", "-dot")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !contains(out, "digraph mvpp") {
		t.Errorf("DOT output malformed:\n%s", out)
	}
}

func TestCLIJSON(t *testing.T) {
	out, code := runCLI(t, "-catalog", "testdata/catalog.json", "-workload", "testdata/workload.json", "-json")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !contains(out, `"vertices"`) || !contains(out, `"materialized"`) {
		t.Errorf("JSON output malformed:\n%s", out)
	}
}

func TestCLISimulate(t *testing.T) {
	out, code := runCLI(t, "-catalog", "testdata/catalog.json", "-workload", "testdata/workload.json",
		"-simulate", "-sim-scale", "0.005")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !contains(out, "engine simulation") || !contains(out, "speedup") {
		t.Errorf("simulation section missing:\n%s", out)
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
