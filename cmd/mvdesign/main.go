// Command mvdesign designs the materialized views for a warehouse: it
// reads a catalog (schema + statistics) and a workload (SQL queries +
// frequencies) in JSON and prints the recommended design.
//
// Usage:
//
//	mvdesign -catalog schema.json -workload queries.json [flags]
//
// Flags select the cost model, enable paper-faithful size pinning,
// exhaustive selection, push-down variants, DOT output, and an engine
// simulation of the design on synthetic data.
package main

import (
	"flag"
	"fmt"
	"os"

	mvpp "github.com/warehousekit/mvpp"
	"github.com/warehousekit/mvpp/internal/cli"
)

func main() {
	os.Exit(run())
}

func run() (status int) {
	var (
		catalogPath  = flag.String("catalog", "", "path to the catalog JSON (required)")
		workloadPath = flag.String("workload", "", "path to the workload JSON (required)")
		model        = flag.String("model", "paper-nlj", "cost model: paper-nlj, block-nlj, hash-join, sort-merge")
		paperSizes   = flag.Bool("paper-sizes", false, "pin join result sizes from the catalog's joinSizes entries")
		exhaustive   = flag.Bool("exhaustive", false, "select views by exhaustive search instead of the greedy heuristic")
		discounted   = flag.Bool("discounted-maintenance", false, "price candidate maintenance given already-chosen views (heuristic extension)")
		indexed      = flag.Bool("indexed-views", false, "price selective filters over materialized views as index lookups")
		rotations    = flag.Int("rotations", 0, "limit MVPP merge-order rotations (0 = one per query)")
		disjunctions = flag.Bool("push-disjunctions", false, "push disjunctive filters onto shared scans")
		projections  = flag.Bool("push-projections", false, "push column-pruning projections onto scans")
		dot          = flag.Bool("dot", false, "print the chosen MVPP as Graphviz DOT instead of the report")
		explain      = flag.String("explain", "", "print the named query's priced plan tree after the report (\"all\" = every query)")
		jsonOut      = flag.Bool("json", false, "print the design as machine-readable JSON instead of the report")
		trace        = flag.Bool("trace", false, "print the selection heuristic's trace after the report")
		simulate     = flag.Bool("simulate", false, "run the design on synthetic data in the embedded engine")
		simScale     = flag.Float64("sim-scale", 0.01, "simulation data scale relative to catalog statistics")
		simSeed      = flag.Int64("sim-seed", 1, "simulation data seed")
		delta        = flag.Float64("delta", 0, "price incremental maintenance for this per-epoch insert fraction (0 = recompute-only)")
		logLevel     = flag.String("log-level", "", "log pipeline spans and events to stderr at this level (debug, info, warn, error)")
		traceOut     = flag.String("trace-out", "", "write a JSON trace of the design run to this file")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	if *catalogPath == "" || *workloadPath == "" {
		fmt.Fprintln(os.Stderr, "mvdesign: -catalog and -workload are required")
		flag.Usage()
		return 2
	}
	obsy, err := cli.Setup(*logLevel, *traceOut, *pprofAddr, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvdesign:", err)
		return 2
	}
	defer func() {
		if err := obsy.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "mvdesign: writing trace:", err)
			if status == 0 {
				status = 1
			}
		}
	}()
	kind, ok := map[string]mvpp.ModelKind{
		"paper-nlj":  mvpp.ModelPaperNLJ,
		"block-nlj":  mvpp.ModelBlockNLJ,
		"hash-join":  mvpp.ModelHashJoin,
		"sort-merge": mvpp.ModelSortMerge,
	}[*model]
	if !ok {
		fmt.Fprintf(os.Stderr, "mvdesign: unknown model %q\n", *model)
		return 2
	}

	catFile, err := os.Open(*catalogPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvdesign:", err)
		return 1
	}
	defer catFile.Close()
	cat, err := mvpp.LoadCatalog(catFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvdesign:", err)
		return 1
	}

	wlFile, err := os.Open(*workloadPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvdesign:", err)
		return 1
	}
	defer wlFile.Close()
	opts := mvpp.Options{
		Model:                 kind,
		PaperSizes:            *paperSizes,
		Exhaustive:            *exhaustive,
		DiscountedMaintenance: *discounted,
		IndexedViews:          *indexed,
		Rotations:             *rotations,
		PushDisjunctions:      *disjunctions,
		PushProjections:       *projections,
		Observer:              obsy.Observer,
	}
	if *delta > 0 {
		opts.Delta = &mvpp.DeltaOptions{DefaultFraction: *delta}
	}
	designer, err := mvpp.LoadWorkload(wlFile, cat, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvdesign:", err)
		return 1
	}

	design, err := designer.Design()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvdesign:", err)
		return 1
	}

	if *dot {
		fmt.Print(design.DOT())
		return 0
	}
	if *jsonOut {
		if err := design.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "mvdesign:", err)
			return 1
		}
		return 0
	}
	fmt.Print(design.Report())
	if *explain != "" {
		names := design.Queries()
		if *explain != "all" {
			names = []string{*explain}
		}
		for _, q := range names {
			out, err := design.Explain(q)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mvdesign:", err)
				return 1
			}
			fmt.Println()
			fmt.Print(out)
		}
	}
	if *trace {
		fmt.Println("\nselection trace:")
		fmt.Print(design.Trace())
	}
	if *simulate {
		sim, err := design.Simulate(mvpp.SimOptions{Scale: *simScale, Seed: *simSeed, DeltaFraction: *delta})
		if err != nil {
			fmt.Fprintln(os.Stderr, "mvdesign: simulation:", err)
			return 1
		}
		fmt.Printf("\nengine simulation (scale %g, seed %d):\n", *simScale, *simSeed)
		fmt.Printf("  weighted query I/O without views: %.0f blocks\n", sim.WeightedDirect)
		fmt.Printf("  weighted query I/O with views:    %.0f blocks\n", sim.WeightedRewritten)
		fmt.Printf("  one recompute refresh epoch:      %d blocks\n", sim.RefreshIO)
		if *delta > 0 {
			fmt.Printf("  one incremental epoch (%d Δ rows): %d blocks\n", sim.DeltaRows, sim.IncrementalRefreshIO)
		}
		fmt.Printf("  measured workload speedup:        %.2fx\n", sim.Speedup())
	}
	return 0
}
