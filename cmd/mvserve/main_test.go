package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI invokes run() with fresh flag state and the given arguments,
// capturing stdout.
func runCLI(t *testing.T, args ...string) (string, int) {
	t.Helper()
	oldArgs, oldFlags := os.Args, flag.CommandLine
	oldStdout := os.Stdout
	defer func() {
		os.Args, flag.CommandLine = oldArgs, oldFlags
		os.Stdout = oldStdout
	}()
	flag.CommandLine = flag.NewFlagSet("mvserve", flag.ContinueOnError)
	os.Args = append([]string{"mvserve"}, args...)

	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	code := run()
	w.Close()
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	r.Close()
	return string(buf[:n]), code
}

func TestCLIMissingFlags(t *testing.T) {
	_, code := runCLI(t)
	if code == 0 {
		t.Error("missing flags accepted")
	}
}

func TestCLIUnknownModel(t *testing.T) {
	_, code := runCLI(t, "-catalog", "testdata/catalog.json", "-workload", "testdata/workload.json", "-model", "quantum")
	if code == 0 {
		t.Error("unknown model accepted")
	}
}

func TestCLIUnknownDriftQuery(t *testing.T) {
	_, code := runCLI(t, "-catalog", "testdata/catalog.json", "-workload", "testdata/workload.json",
		"-clients", "1", "-requests", "2", "-drift", "Q99")
	if code == 0 {
		t.Error("unknown drift query accepted")
	}
}

func TestCLIServeReport(t *testing.T) {
	out, code := runCLI(t, "-catalog", "testdata/catalog.json", "-workload", "testdata/workload.json",
		"-clients", "2", "-requests", "20", "-epochs", "2", "-scale", "0.005")
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, out)
	}
	for _, want := range []string{
		"serving report:", "queries served:", "cache hit rate:",
		"latency p50/p95/p99", "refresh epochs:", "view staleness:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLITelemetry(t *testing.T) {
	out, code := runCLI(t, "-catalog", "testdata/catalog.json", "-workload", "testdata/workload.json",
		"-clients", "2", "-requests", "20", "-epochs", "1", "-scale", "0.005",
		"-telemetry", "127.0.0.1:0")
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, out)
	}
	for _, want := range []string{
		"telemetry: listening on 127.0.0.1:",
		"telemetry: /metrics valid Prometheus exposition",
		"telemetry: /healthz ok",
		"telemetry: /traces holds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLICostReportAndExplain(t *testing.T) {
	out, code := runCLI(t, "-catalog", "testdata/catalog.json", "-workload", "testdata/workload.json",
		"-clients", "2", "-requests", "20", "-epochs", "2", "-scale", "0.005",
		"-telemetry", "127.0.0.1:0", "-explain", "Q1")
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, out)
	}
	for _, want := range []string{
		"cost accountability (predicted vs actual block I/O):",
		"recompute", "samples",
		"query Q1", "predicted",
		"telemetry: /costmodel holds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLICostSkewTripsDrift(t *testing.T) {
	out, code := runCLI(t, "-catalog", "testdata/catalog.json", "-workload", "testdata/workload.json",
		"-clients", "1", "-requests", "4", "-epochs", "4", "-scale", "0.005",
		"-cost-skew", "16")
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, out)
	}
	if !strings.Contains(out, "DRIFTED") {
		t.Errorf("16x cost skew never flagged drift:\n%s", out)
	}
}

func TestCLICostAuditDisabled(t *testing.T) {
	out, code := runCLI(t, "-catalog", "testdata/catalog.json", "-workload", "testdata/workload.json",
		"-clients", "1", "-requests", "4", "-epochs", "1", "-scale", "0.005",
		"-no-cost-audit")
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, out)
	}
	if strings.Contains(out, "cost accountability") {
		t.Errorf("-no-cost-audit still printed the ledger:\n%s", out)
	}
}

func TestCLIChaosReport(t *testing.T) {
	out, code := runCLI(t, "-catalog", "testdata/catalog.json", "-workload", "testdata/workload.json",
		"-clients", "2", "-requests", "20", "-epochs", "3", "-scale", "0.005",
		"-chaos", "0.5")
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, out)
	}
	for _, want := range []string{
		"chaos: injecting faults", "fault tolerance:", "retries / refresh failures:",
		"breaker trips / degraded:", "view health:", "breaker",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIJournalReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "deltas.journal")
	// -chaos 1 makes every delta application fail persistently, so the
	// first run's journaled batches are never acknowledged and survive its
	// Close (a simulated crash with un-applied work).
	out, code := runCLI(t, "-catalog", "testdata/catalog.json", "-workload", "testdata/workload.json",
		"-clients", "1", "-requests", "5", "-epochs", "2", "-scale", "0.005",
		"-chaos", "1", "-journal", path)
	if code != 0 {
		t.Fatalf("first run exit code %d:\n%s", code, out)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("journal not created: %v", err)
	}
	out, code = runCLI(t, "-catalog", "testdata/catalog.json", "-workload", "testdata/workload.json",
		"-clients", "1", "-requests", "5", "-epochs", "1", "-scale", "0.005",
		"-journal", path)
	if code != 0 {
		t.Fatalf("second run exit code %d:\n%s", code, out)
	}
	if !strings.Contains(out, "journal: replayed") {
		t.Errorf("second run did not replay the journal:\n%s", out)
	}
}

func TestCLIDriftAndApply(t *testing.T) {
	out, code := runCLI(t, "-catalog", "testdata/catalog.json", "-workload", "testdata/workload.json",
		"-clients", "2", "-requests", "50", "-epochs", "1", "-scale", "0.005",
		"-drift", "Q4", "-apply")
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, out)
	}
	for _, want := range []string{"drift: load shifts entirely to Q4", "observed frequencies", "advisor:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
