// Command mvserve runs a designed warehouse as a live serving process: it
// designs the views for a catalog + workload (like mvdesign), builds the
// synthetic warehouse, and then drives it with concurrent clients while a
// background scheduler ingests deltas and refreshes the views.
//
// Usage:
//
//	mvserve -catalog schema.json -workload queries.json [flags]
//
// The run prints a serving report: throughput, cache hit rate, latency
// quantiles, maintenance epochs, and per-view staleness. With -drift the
// client load shifts to one query mid-run and the advisor re-selects the
// views for the observed frequencies (applied live with -apply).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	mvpp "github.com/warehousekit/mvpp"
	"github.com/warehousekit/mvpp/internal/cli"
	"github.com/warehousekit/mvpp/internal/telemetry"
)

func main() {
	os.Exit(run())
}

func run() (status int) {
	var (
		catalogPath   = flag.String("catalog", "", "path to the catalog JSON (required)")
		workloadPath  = flag.String("workload", "", "path to the workload JSON (required)")
		model         = flag.String("model", "paper-nlj", "cost model: paper-nlj, block-nlj, hash-join, sort-merge")
		scale         = flag.Float64("scale", 0.01, "synthetic data scale relative to catalog statistics")
		seed          = flag.Int64("seed", 1, "synthetic data seed")
		workers       = flag.Int("workers", 0, "query worker pool size (0 = default)")
		queue         = flag.Int("queue", 0, "admission queue depth (0 = default)")
		cache         = flag.Int("cache", 0, "result cache capacity in entries (0 = default, negative disables)")
		batch         = flag.Int("batch", 0, "delta rows per maintenance epoch (0 = default)")
		clients       = flag.Int("clients", 4, "concurrent client goroutines")
		requests      = flag.Int("requests", 100, "queries per client")
		delta         = flag.Float64("delta", 0.02, "per-epoch synthetic insert fraction (0 disables maintenance load)")
		epochs        = flag.Int("epochs", 4, "maintenance epochs to run during the load")
		policies      = flag.String("policies", "", "per-view refresh policies, \"view=spec,view=spec\" with spec one of manual | on-commit | scheduled:<duration> | streaming")
		defPolicy     = flag.String("default-policy", "", "refresh policy for views not named in -policies (default on-commit)")
		sloMaxLag     = flag.Duration("slo-max-lag", 0, "freshness SLO: longest a view may stay stale before its queries degrade (0 = no wall-clock SLO)")
		sloMaxEpochs  = flag.Int("slo-max-epochs", 0, "freshness SLO: most maintenance epochs a view may stay stale (0 = no epoch SLO)")
		stream        = flag.Bool("stream", false, "push the delta load through the CDC streaming-ingest path (group commit, backpressure) instead of direct ingestion")
		drift         = flag.String("drift", "", "after the main load, re-run the load all on this query and consult the advisor")
		explain       = flag.String("explain", "", "after the load, print this query's plan annotated with predicted and measured block costs (\"all\" = every query)")
		noAudit       = flag.Bool("no-cost-audit", false, "disable the predicted-vs-actual cost ledger")
		skew          = flag.Float64("cost-skew", 0, "multiply every registered cost prediction by this factor (test hook for forcing calibration drift; 0 = off)")
		apply         = flag.Bool("apply", false, "apply the advisor's proposal live and re-run the load")
		chaos         = flag.Float64("chaos", 0, "fault injection probability: refresh errors at this rate, plus slow queries and worker panics at lower rates (0 disables)")
		journalPath   = flag.String("journal", "", "crash-safe delta journal path; un-applied deltas from a previous run are replayed on startup")
		snapshotDir   = flag.String("snapshot-dir", "", "durable snapshot directory; boot restores the newest consistent snapshot and checkpoints land there while serving")
		snapInterval  = flag.Duration("snapshot-interval", 0, "wall-clock checkpoint period (0 keeps only the epoch-count trigger)")
		snapRetain    = flag.Int("snapshot-retain", 0, "snapshot generations retention GC keeps (0 = default 3)")
		telemetryAddr = flag.String("telemetry", "", "serve the live telemetry plane on this address (/metrics, /healthz, /views, /traces, /lineage, /flight, /debug/pprof); the run self-scrapes it after the load")
		flightDir     = flag.String("flight-dir", "", "write flight-recorder dumps to this directory when an SLO breach, breaker trip, checkpoint error, or recovery corruption latches (default $MVPP_FLIGHT_DIR)")
		logLevel      = flag.String("log-level", "", "log serving spans and events to stderr at this level (debug, info, warn, error)")
		traceOut      = flag.String("trace-out", "", "write a JSON trace of the serving run to this file")
		pprofAddr     = flag.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	if *catalogPath == "" || *workloadPath == "" {
		fmt.Fprintln(os.Stderr, "mvserve: -catalog and -workload are required")
		flag.Usage()
		return 2
	}
	obsy, err := cli.Setup(*logLevel, *traceOut, *pprofAddr, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvserve:", err)
		return 2
	}
	defer func() {
		if err := obsy.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "mvserve: writing trace:", err)
			if status == 0 {
				status = 1
			}
		}
	}()
	kind, ok := map[string]mvpp.ModelKind{
		"paper-nlj":  mvpp.ModelPaperNLJ,
		"block-nlj":  mvpp.ModelBlockNLJ,
		"hash-join":  mvpp.ModelHashJoin,
		"sort-merge": mvpp.ModelSortMerge,
	}[*model]
	if !ok {
		fmt.Fprintf(os.Stderr, "mvserve: unknown model %q\n", *model)
		return 2
	}

	catFile, err := os.Open(*catalogPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvserve:", err)
		return 1
	}
	defer catFile.Close()
	cat, err := mvpp.LoadCatalog(catFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvserve:", err)
		return 1
	}
	wlFile, err := os.Open(*workloadPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvserve:", err)
		return 1
	}
	defer wlFile.Close()
	designer, err := mvpp.LoadWorkload(wlFile, cat, mvpp.Options{Model: kind, Observer: obsy.Observer})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvserve:", err)
		return 1
	}
	design, err := designer.Design()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvserve:", err)
		return 1
	}

	policyMap, err := parsePolicies(*policies)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvserve:", err)
		return 2
	}

	opts := mvpp.ServeOptions{
		Scale: *scale, Seed: *seed,
		Workers: *workers, QueueDepth: *queue, CacheCapacity: *cache, DeltaBatch: *batch,
		JournalPath: *journalPath,
		SnapshotDir: *snapshotDir, SnapshotInterval: *snapInterval, SnapshotRetain: *snapRetain,
		TelemetryAddr: *telemetryAddr,
		FlightDir:     *flightDir,
		Observer:      obsy.Observer,
		CostAudit:     mvpp.CostAuditOptions{Disable: *noAudit, SkewPredictions: *skew},
		Policies:      policyMap,
		DefaultPolicy: *defPolicy,
		DefaultSLO:    mvpp.FreshnessSLO{MaxLagEpochs: *sloMaxEpochs, MaxLag: *sloMaxLag},
	}
	if *chaos > 0 {
		opts.Injector = mvpp.NewFaultInjector(*seed, mvpp.FaultPlan{
			mvpp.FaultSiteEngineRefresh:            {ErrProb: *chaos},
			mvpp.FaultSiteEngineIncrementalRefresh: {ErrProb: *chaos},
			mvpp.FaultSiteEngineApplyDeltas:        {ErrProb: *chaos},
			mvpp.FaultSiteEngineExecute:            {SlowProb: *chaos / 2, Delay: 200 * time.Microsecond},
			mvpp.FaultSiteServeWorker:              {PanicProb: *chaos / 10},
		})
		// Under chaos, trip breakers quickly and probe often so the run
		// exercises the degrade/recover cycle.
		opts.Breaker = mvpp.BreakerPolicy{FailureThreshold: 2, Cooldown: 100 * time.Millisecond}
	}
	srv, err := design.NewServer(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvserve:", err)
		return 1
	}
	defer srv.Close()

	queries := design.Queries()
	fmt.Printf("serving %d queries over views %v (scale %g, seed %d)\n",
		len(queries), srv.Views(), *scale, *seed)
	if replayed := srv.Stats().ReplayedDeltaRows; replayed > 0 {
		fmt.Printf("journal: replayed %d delta rows from %s\n", replayed, *journalPath)
	}
	if ss := srv.SnapshotStats(); ss.Configured && ss.Recovery != nil {
		if r := ss.Recovery; r.Cold {
			fmt.Printf("snapshot: cold boot, no usable snapshot in %s (%d views recomputed)\n",
				*snapshotDir, r.ViewsRecomputed)
		} else {
			fmt.Printf("snapshot: restored generation %d from %s (%d base tables, %d/%d views from segments, %d bytes, %v)\n",
				r.Generation, *snapshotDir, r.BaseRestored, r.ViewsRestored,
				r.ViewsRestored+r.ViewsRecomputed, r.Bytes, r.Duration.Round(time.Millisecond))
		}
	}
	if *chaos > 0 {
		fmt.Printf("chaos: injecting faults at probability %g (refresh errors, slow queries, worker panics)\n", *chaos)
	}
	if addr := srv.TelemetryAddr(); addr != "" {
		fmt.Printf("telemetry: listening on %s (/metrics /healthz /views /traces /lineage /flight /debug/pprof)\n", addr)
	}

	tolerant := *chaos > 0
	pick := func(c, i int) string { return queries[(c+i)%len(queries)] }
	if err := drive(srv, *clients, *requests, *delta, *epochs, tolerant, *stream, pick); err != nil {
		fmt.Fprintln(os.Stderr, "mvserve:", err)
		return 1
	}
	report(srv)
	costReport(srv)
	if ss := srv.SnapshotStats(); ss.Configured {
		if _, err := srv.Checkpoint(); err != nil {
			fmt.Fprintln(os.Stderr, "mvserve: final checkpoint:", err)
		}
		ss = srv.SnapshotStats()
		fmt.Printf("snapshot: %d checkpoints this run (%d skipped, %d failed), generation %d, %d bytes, %d generations aged out\n",
			ss.Checkpoints, ss.Skipped, ss.Failures, ss.Generation, ss.LastBytes, ss.AgedOut)
	}
	if *explain != "" {
		names := queries
		if *explain != "all" {
			names = []string{*explain}
		}
		for _, q := range names {
			out, err := srv.Explain(q)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mvserve:", err)
				return 1
			}
			fmt.Println()
			fmt.Print(out)
		}
	}
	if addr := srv.TelemetryAddr(); addr != "" {
		// Self-scrape: validate the exposition and summarize the live
		// endpoints, so a smoke run proves the plane works end to end.
		if err := scrapeReport(addr); err != nil {
			fmt.Fprintln(os.Stderr, "mvserve:", err)
			return 1
		}
	}

	if *drift != "" {
		found := false
		for _, q := range queries {
			if q == *drift {
				found = true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "mvserve: unknown drift query %q\n", *drift)
			return 2
		}
		fmt.Printf("\ndrift: load shifts entirely to %s\n", *drift)
		if err := drive(srv, *clients, *requests, *delta, 0, tolerant, *stream, func(int, int) string { return *drift }); err != nil {
			fmt.Fprintln(os.Stderr, "mvserve:", err)
			return 1
		}
		obsFq := srv.ObservedFrequencies()
		names := make([]string, 0, len(obsFq))
		for q := range obsFq {
			names = append(names, q)
		}
		sort.Strings(names)
		fmt.Println("observed frequencies (scaled to design-time volume):")
		for _, q := range names {
			fmt.Printf("  %-4s %.2f\n", q, obsFq[q])
		}
		advice, err := srv.Advise()
		if err != nil {
			fmt.Fprintln(os.Stderr, "mvserve:", err)
			return 1
		}
		fmt.Printf("advisor: keep %v, add %v, drop %v (cost %0.f -> %0.f blocks under observed load)\n",
			advice.Keep, advice.Add, advice.Drop, advice.CurrentTotal, advice.ProposedTotal)
		if !advice.Changed() {
			fmt.Println("advisor: current view set already optimal for the observed load")
		} else if *apply {
			if err := srv.ApplyAdvice(advice); err != nil {
				fmt.Fprintln(os.Stderr, "mvserve:", err)
				return 1
			}
			fmt.Printf("applied: views now %v\n", srv.Views())
			if err := drive(srv, *clients, *requests, *delta, *epochs, tolerant, *stream, func(int, int) string { return *drift }); err != nil {
				fmt.Fprintln(os.Stderr, "mvserve:", err)
				return 1
			}
			report(srv)
		}
	}
	return 0
}

// scrapeReport GETs the telemetry endpoints of a live server, validates
// the /metrics exposition, and prints a one-line summary per endpoint.
func scrapeReport(addr string) error {
	get := func(path string) (int, []byte, error) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			return 0, nil, fmt.Errorf("telemetry: GET %s: %w", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return 0, nil, fmt.Errorf("telemetry: GET %s: %w", path, err)
		}
		return resp.StatusCode, body, nil
	}

	code, body, err := get("/metrics")
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("telemetry: /metrics returned HTTP %d", code)
	}
	samples, err := telemetry.ValidateExposition(body)
	if err != nil {
		return fmt.Errorf("telemetry: /metrics: %w", err)
	}
	fmt.Printf("telemetry: /metrics valid Prometheus exposition, %d samples\n", samples)

	code, body, err = get("/healthz")
	if err != nil {
		return err
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		return fmt.Errorf("telemetry: /healthz: %w", err)
	}
	fmt.Printf("telemetry: /healthz %s (HTTP %d)\n", health.Status, code)

	if _, body, err = get("/traces"); err != nil {
		return err
	}
	var traces struct {
		Sampled int `json:"sampled"`
	}
	if err := json.Unmarshal(body, &traces); err != nil {
		return fmt.Errorf("telemetry: /traces: %w", err)
	}
	fmt.Printf("telemetry: /traces holds %d sampled query lifecycles\n", traces.Sampled)

	if _, body, err = get("/lineage"); err != nil {
		return err
	}
	var lineage struct {
		Views map[string]json.RawMessage `json:"views"`
	}
	if err := json.Unmarshal(body, &lineage); err != nil {
		return fmt.Errorf("telemetry: /lineage: %w", err)
	}
	fmt.Printf("telemetry: /lineage tracks %d views\n", len(lineage.Views))

	if _, body, err = get("/flight"); err != nil {
		return err
	}
	var flight struct {
		Dumps int `json:"dumps"`
	}
	if err := json.Unmarshal(body, &flight); err != nil {
		return fmt.Errorf("telemetry: /flight: %w", err)
	}
	fmt.Printf("telemetry: /flight holds %d episode dumps\n", flight.Dumps)

	code, body, err = get("/costmodel")
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("telemetry: /costmodel returned HTTP %d", code)
	}
	var costmodel struct {
		Entries []struct {
			Kind string `json:"kind"`
		} `json:"entries"`
		Drifted int `json:"drifted_entries"`
	}
	if err := json.Unmarshal(body, &costmodel); err != nil {
		return fmt.Errorf("telemetry: /costmodel: %w", err)
	}
	fmt.Printf("telemetry: /costmodel holds %d ledger entries (%d drifted)\n",
		len(costmodel.Entries), costmodel.Drifted)
	return nil
}

// costReport prints the predicted-vs-actual cost ledger: per query class
// and per view refresh, the §4.1 prediction, the measured block I/O, and
// the EWMA calibration ratio. Silent when the ledger is disabled or empty.
func costReport(srv *mvpp.Server) {
	rep := srv.CostReport()
	if len(rep.Entries) == 0 {
		return
	}
	fmt.Println("\ncost accountability (predicted vs actual block I/O):")
	fmt.Printf("  %-12s %-10s %12s %12s %12s %8s %7s\n",
		"kind", "name", "predicted", "last actual", "mean actual", "ratio", "samples")
	for _, e := range rep.Entries {
		drift := ""
		if e.Drifted {
			drift = "  DRIFTED"
		}
		fmt.Printf("  %-12s %-10s %12.1f %12.0f %12.1f %8.2f %7d%s\n",
			e.Kind, e.Name, e.PredictedBlocks, e.LastActualBlocks, e.MeanActualBlocks,
			e.Ratio, e.Samples, drift)
	}
	if rep.DriftedEntries > 0 {
		fmt.Printf("  %d entries drifted beyond the calibration band\n", rep.DriftedEntries)
	}
	if recal := srv.LastRecalibration(); recal != nil {
		fmt.Printf("  advisor recalibrated on drift: keep %v, add %v, drop %v (cost %.0f -> %.0f blocks)\n",
			recal.Keep, recal.Add, recal.Drop, recal.CurrentTotal, recal.ProposedTotal)
	}
}

// parsePolicies parses the -policies flag: "view=spec,view=spec", each
// spec validated as a refresh policy.
func parsePolicies(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]string)
	for _, pair := range strings.Split(s, ",") {
		view, spec, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || view == "" {
			return nil, fmt.Errorf("bad -policies entry %q (want view=spec)", pair)
		}
		if _, err := mvpp.ParseRefreshPolicy(spec); err != nil {
			return nil, fmt.Errorf("-policies %s: %v", view, err)
		}
		out[view] = spec
	}
	return out, nil
}

// drive runs clients×requests queries through the server with pick
// choosing each client's next query, while a maintenance goroutine runs
// the requested number of inject+flush epochs. When tolerant (a chaos
// run), injected query failures and maintenance failures are counted and
// reported instead of aborting the load — fault tolerance is the point.
func drive(srv *mvpp.Server, clients, requests int, delta float64, epochs int, tolerant, stream bool, pick func(c, i int) string) error {
	ctx := context.Background()
	errs := make(chan error, clients+1)
	var failed atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < requests; i++ {
				if _, err := srv.Query(ctx, pick(c, i)); err != nil {
					if tolerant {
						failed.Add(1)
						continue
					}
					errs <- fmt.Errorf("client %d: %w", c, err)
					return
				}
			}
		}(c)
	}
	if delta > 0 && epochs > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			inject := srv.InjectDeltas
			if stream {
				inject = srv.StreamDeltas
			}
			for i := 0; i < epochs; i++ {
				if _, err := inject(delta); err != nil {
					// A shed streaming batch is backpressure working, not a
					// failed run: the rows were refused, not lost.
					if stream && errors.Is(err, mvpp.ErrBackpressure) {
						fmt.Println("stream: batch shed by backpressure")
						continue
					}
					errs <- fmt.Errorf("maintenance: %w", err)
					return
				}
				if err := srv.Flush(); err != nil {
					// Under chaos a flush can fail persistently; the deltas
					// stay buffered (and journaled) for a later epoch.
					if tolerant {
						continue
					}
					errs <- fmt.Errorf("maintenance: %w", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	if n := failed.Load(); n > 0 {
		fmt.Printf("chaos: %d queries failed with injected faults\n", n)
	}
	return nil
}

func report(srv *mvpp.Server) {
	s := srv.Stats()
	fmt.Println("\nserving report:")
	fmt.Printf("  queries served:     %d (%.0f/sec)\n", s.Queries, s.QPS)
	fmt.Printf("  cache hit rate:     %.1f%% (%d hits, %d misses, %d entries)\n",
		100*s.CacheHitRate(), s.CacheHits, s.CacheMisses, s.CacheEntries)
	fmt.Printf("  latency p50/p95/p99: %v / %v / %v\n", s.P50, s.P95, s.P99)
	fmt.Printf("  rejected / backpressured: %d / %d\n", s.Rejected, s.Backpressured)
	fmt.Printf("  refresh epochs:     %d (%d incremental, %d recomputed, %d delta rows)\n",
		s.Epochs, s.IncrementalRefreshes, s.Recomputes, s.DeltaRows)
	fmt.Printf("  refresh I/O:        %d reads, %d writes\n", s.RefreshReads, s.RefreshWrites)
	if s.Retries+s.RefreshFailures+s.BreakerTrips+s.DegradedQueries+s.PanicsRecovered+s.ReplayedDeltaRows > 0 {
		fmt.Println("  fault tolerance:")
		fmt.Printf("    retries / refresh failures: %d / %d\n", s.Retries, s.RefreshFailures)
		fmt.Printf("    incremental fallbacks:      %d\n", s.IncrementalFallbacks)
		fmt.Printf("    breaker trips / degraded:   %d / %d\n", s.BreakerTrips, s.DegradedQueries)
		fmt.Printf("    panics recovered:           %d\n", s.PanicsRecovered)
		fmt.Printf("    journal rows replayed:      %d\n", s.ReplayedDeltaRows)
	}
	stale := srv.Staleness()
	health := srv.Health()
	views := make([]string, 0, len(stale))
	for v := range stale {
		views = append(views, v)
	}
	sort.Strings(views)
	if s.StreamRows > 0 || s.StreamShed > 0 || s.StreamBlocked > 0 {
		fmt.Println("  streaming ingest:")
		fmt.Printf("    rows / group commits:       %d / %d\n", s.StreamRows, s.StreamGroups)
		fmt.Printf("    blocked / shed:             %d / %d\n", s.StreamBlocked, s.StreamShed)
		fmt.Printf("    commit lag p50/p95/p99:     %v / %v / %v\n", s.IngestLagP50, s.IngestLagP95, s.IngestLagP99)
		accepted, committed := srv.IngestWatermarks()
		fmt.Printf("    watermarks:                 %d accepted, %d committed\n", accepted, committed)
	}
	if s.SLOViolations > 0 {
		fmt.Printf("  freshness SLO violations: %d\n", s.SLOViolations)
	}
	fmt.Println("  view staleness:")
	for _, v := range views {
		st := stale[v]
		slo := ""
		if st.SLOViolated {
			slo = ", SLO VIOLATED"
		}
		fmt.Printf("    %-10s %s, policy %s, epoch %d, %d rows pending (%s)%s\n",
			v, st.Status, st.Policy, st.Epoch, st.PendingRows, st.Strategy, slo)
	}
	fmt.Println("  view health:")
	for _, v := range views {
		h := health[v]
		line := fmt.Sprintf("    %-10s breaker %s, %d rows lag", v, h.State, h.LagRows)
		if h.Degrading {
			line += ", DEGRADING to base relations"
		}
		if h.LastError != "" {
			line += fmt.Sprintf(" (last error: %s)", h.LastError)
		}
		fmt.Println(line)
	}
}
