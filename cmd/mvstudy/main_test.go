package main

import (
	"flag"
	"os"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, int) {
	t.Helper()
	oldArgs, oldFlags := os.Args, flag.CommandLine
	oldStdout := os.Stdout
	defer func() {
		os.Args, flag.CommandLine = oldArgs, oldFlags
		os.Stdout = oldStdout
	}()
	flag.CommandLine = flag.NewFlagSet("mvstudy", flag.ContinueOnError)
	os.Args = append([]string{"mvstudy"}, args...)

	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	code := run()
	w.Close()
	var out strings.Builder
	buf := make([]byte, 1<<16)
	for {
		n, err := r.Read(buf)
		out.Write(buf[:n])
		if err != nil {
			break
		}
	}
	r.Close()
	return out.String(), code
}

func TestStudySingleSweep(t *testing.T) {
	out, code := runCLI(t, "-sweep", "skew", "-queries", "4")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(out, "sweep: query skew") {
		t.Errorf("output malformed:\n%s", out)
	}
	if strings.Contains(out, "update rate") {
		t.Error("other sweeps ran despite -sweep")
	}
}

func TestStudyUnknownSweep(t *testing.T) {
	_, code := runCLI(t, "-sweep", "bogus")
	if code == 0 {
		t.Error("unknown sweep accepted")
	}
}
