// Command mvstudy runs the analytical environment study (the paper's
// future-work item): parameter sweeps over synthetic star-schema workloads
// showing how the recommended materialization and its payoff react to
// update rates, query skew, summary-query share, and workload size.
//
// Usage:
//
//	mvstudy [-dims N] [-queries N] [-seed N] [-sweep name] [-delta F]
//
// Sweeps: update, skew, mix, size, delta (default: all).
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/warehousekit/mvpp/internal/cli"
	"github.com/warehousekit/mvpp/internal/study"
)

func main() {
	os.Exit(run())
}

func run() (status int) {
	var (
		dims      = flag.Int("dims", 5, "star-schema dimension count")
		queries   = flag.Int("queries", 8, "workload size (non-size sweeps)")
		seed      = flag.Int64("seed", 11, "workload generation seed")
		sweep     = flag.String("sweep", "", "run only one sweep: update, skew, mix, size, delta")
		delta     = flag.Float64("delta", 0, "price incremental maintenance for this per-epoch insert fraction in the non-delta sweeps")
		logLevel  = flag.String("log-level", "", "log pipeline spans and events to stderr at this level (debug, info, warn, error)")
		traceOut  = flag.String("trace-out", "", "write a JSON trace of the sweeps to this file")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof and expvar on this address")
	)
	flag.Parse()

	obsy, err := cli.Setup(*logLevel, *traceOut, *pprofAddr, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvstudy:", err)
		return 2
	}
	defer func() {
		if err := obsy.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "mvstudy: writing trace:", err)
			if status == 0 {
				status = 1
			}
		}
	}()

	env := study.DefaultEnv()
	env.Dims = *dims
	env.Queries = *queries
	env.Seed = *seed
	env.Delta = *delta
	env.Obs = obsy.Observer

	type runner struct {
		name string
		fn   func() (study.Sweep, error)
	}
	runners := []runner{
		{"update", func() (study.Sweep, error) {
			return study.UpdateRateSweep(env, []float64{0.1, 0.5, 1, 5, 25, 125})
		}},
		{"skew", func() (study.Sweep, error) {
			return study.SkewSweep(env, []float64{0, 0.5, 1, 2})
		}},
		{"mix", func() (study.Sweep, error) {
			return study.MixSweep(env, []float64{0, 0.25, 0.5, 0.75, 1})
		}},
		{"size", func() (study.Sweep, error) {
			return study.SizeSweep(env, []int{2, 4, 8, 12, 16})
		}},
		{"delta", func() (study.Sweep, error) {
			return study.DeltaSweep(env, []float64{0.001, 0.01, 0.05, 0.2})
		}},
	}
	matched := false
	for _, r := range runners {
		if *sweep != "" && r.name != *sweep {
			continue
		}
		matched = true
		s, err := r.fn()
		if err != nil {
			fmt.Fprintln(os.Stderr, "mvstudy:", err)
			return 1
		}
		fmt.Println(study.Render(s))
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "mvstudy: unknown sweep %q (update, skew, mix, size, delta)\n", *sweep)
		return 2
	}
	return 0
}
