package main

import (
	"flag"
	"os"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, int) {
	t.Helper()
	oldArgs, oldFlags := os.Args, flag.CommandLine
	oldStdout := os.Stdout
	defer func() {
		os.Args, flag.CommandLine = oldArgs, oldFlags
		os.Stdout = oldStdout
	}()
	flag.CommandLine = flag.NewFlagSet("paperrepro", flag.ContinueOnError)
	os.Args = append([]string{"paperrepro"}, args...)

	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	code := run()
	w.Close()
	var out strings.Builder
	buf := make([]byte, 1<<16)
	for {
		n, err := r.Read(buf)
		out.Write(buf[:n])
		if err != nil {
			break
		}
	}
	r.Close()
	return out.String(), code
}

func TestList(t *testing.T) {
	out, code := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	for _, id := range []string{"table1", "table2", "fig2", "fig3", "fig5", "fig6", "fig7-8", "fig9"} {
		if !strings.Contains(out, id) {
			t.Errorf("list missing %s", id)
		}
	}
}

func TestOnly(t *testing.T) {
	out, code := runCLI(t, "-only", "table2")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(out, "Table 2") || !strings.Contains(out, "tmp2, tmp4") {
		t.Errorf("table2 output malformed:\n%s", out)
	}
	if strings.Contains(out, "Figure 5") {
		t.Error("-only printed other artifacts")
	}
}

func TestOnlyUnknown(t *testing.T) {
	_, code := runCLI(t, "-only", "fig99")
	if code == 0 {
		t.Error("unknown artifact accepted")
	}
}

func TestAllArtifacts(t *testing.T) {
	out, code := runCLI(t)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	for _, want := range []string{"==== table1", "==== fig9", "35.25k", "materialize"} {
		if !strings.Contains(out, want) {
			t.Errorf("full output missing %q", want)
		}
	}
}
