// Command paperrepro regenerates every table and figure of the paper's
// evaluation (Yang, Karlapalem & Li, ICDCS 1997) and prints them to
// stdout.
//
// Usage:
//
//	paperrepro            # print everything, paper order
//	paperrepro -only fig3 # one artifact: table1, table2, fig2, fig3,
//	                      # fig5, fig6, fig7-8, fig9
//	paperrepro -list      # list artifact ids
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/warehousekit/mvpp/internal/repro"
)

func main() {
	os.Exit(run())
}

func run() int {
	only := flag.String("only", "", "print only the artifact with this id")
	list := flag.Bool("list", false, "list artifact ids and exit")
	flag.Parse()

	exps, err := repro.All()
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperrepro:", err)
		return 1
	}
	if *list {
		for _, e := range exps {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return 0
	}
	found := false
	for _, e := range exps {
		if *only != "" && e.ID != *only {
			continue
		}
		found = true
		fmt.Printf("==== %s — %s ====\n\n%s\n", e.ID, e.Title, e.Text)
	}
	if !found {
		fmt.Fprintf(os.Stderr, "paperrepro: unknown artifact %q (try -list)\n", *only)
		return 1
	}
	return 0
}
