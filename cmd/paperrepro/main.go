// Command paperrepro regenerates every table and figure of the paper's
// evaluation (Yang, Karlapalem & Li, ICDCS 1997) and prints them to
// stdout.
//
// Usage:
//
//	paperrepro            # print everything, paper order
//	paperrepro -only fig3 # one artifact: table1, table2, fig2, fig3,
//	                      # fig5, fig6, fig7-8, fig9
//	paperrepro -list      # list artifact ids
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/warehousekit/mvpp/internal/cli"
	"github.com/warehousekit/mvpp/internal/repro"
)

func main() {
	os.Exit(run())
}

func run() (status int) {
	only := flag.String("only", "", "print only the artifact with this id")
	list := flag.Bool("list", false, "list artifact ids and exit")
	logLevel := flag.String("log-level", "", "log pipeline spans and events to stderr at this level (debug, info, warn, error)")
	traceOut := flag.String("trace-out", "", "write a JSON trace of the artifact runs to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and expvar on this address")
	flag.Parse()

	obsy, err := cli.Setup(*logLevel, *traceOut, *pprofAddr, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperrepro:", err)
		return 2
	}
	defer func() {
		if err := obsy.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "paperrepro: writing trace:", err)
			if status == 0 {
				status = 1
			}
		}
	}()

	exps, err := repro.All(obsy.Observer)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperrepro:", err)
		return 1
	}
	if *list {
		for _, e := range exps {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return 0
	}
	found := false
	for _, e := range exps {
		if *only != "" && e.ID != *only {
			continue
		}
		found = true
		fmt.Printf("==== %s — %s ====\n\n%s\n", e.ID, e.Title, e.Text)
	}
	if !found {
		fmt.Fprintf(os.Stderr, "paperrepro: unknown artifact %q (try -list)\n", *only)
		return 1
	}
	return 0
}
