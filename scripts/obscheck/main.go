// Command obscheck keeps the observability taxonomy and its documentation
// in lock step: every Ev*, Ctr*, and Gauge* constant declared in
// internal/obs/obs.go must appear (by its string value, e.g. `serve.epoch`)
// in DESIGN.md's event/metric tables. New instrumentation without
// documentation — or documentation for names that no longer exist — fails
// the build, so the tables in DESIGN §15 can be trusted.
//
//	go run ./scripts/obscheck
//
// Exit status 0 when the taxonomy and the docs agree, 1 on drift, 2 on
// usage or parse errors.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		obsPath = flag.String("obs", "internal/obs/obs.go", "path to the obs taxonomy source")
		docPath = flag.String("doc", "DESIGN.md", "path to the design document the taxonomy must be listed in")
	)
	flag.Parse()

	consts, err := taxonomy(*obsPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "obscheck:", err)
		return 2
	}
	if len(consts) == 0 {
		fmt.Fprintf(os.Stderr, "obscheck: no Ev*/Ctr*/Gauge* constants found in %s\n", *obsPath)
		return 2
	}
	doc, err := os.ReadFile(*docPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "obscheck:", err)
		return 2
	}
	text := string(doc)

	var missing []string
	for _, c := range consts {
		// The doc must name the wire value (the stable identifier users see
		// on /metrics and in traces), not the Go constant.
		if !strings.Contains(text, "`"+c.value+"`") {
			missing = append(missing, fmt.Sprintf("%s = %q", c.name, c.value))
		}
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "obscheck: %d taxonomy entries missing from %s (document them in the DESIGN event/metric tables):\n", len(missing), *docPath)
		for _, m := range missing {
			fmt.Fprintln(os.Stderr, "  "+m)
		}
		return 1
	}
	fmt.Printf("obscheck: %d taxonomy entries (events, counters, gauges) all documented in %s\n", len(consts), *docPath)
	return 0
}

type entry struct{ name, value string }

// taxonomy parses the obs source file and returns every top-level constant
// whose name starts with Ev, Ctr, or Gauge together with its string value.
func taxonomy(path string) ([]entry, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return nil, err
	}
	var out []entry
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if !taxonomyName(name.Name) {
					continue
				}
				if i >= len(vs.Values) {
					continue
				}
				lit, ok := vs.Values[i].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					continue
				}
				val, err := strconv.Unquote(lit.Value)
				if err != nil {
					return nil, fmt.Errorf("%s: unquoting %s: %w", path, name.Name, err)
				}
				out = append(out, entry{name: name.Name, value: val})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out, nil
}

func taxonomyName(s string) bool {
	for _, prefix := range []string{"Ev", "Ctr", "Gauge"} {
		if strings.HasPrefix(s, prefix) && len(s) > len(prefix) {
			return true
		}
	}
	return false
}
