// Command benchjson measures the Design() benchmarks and writes the result
// as JSON — the BENCH_design.json baseline regression checks diff against.
// The no-observer run is the number guarded by the "<2% overhead" budget
// for the instrumentation layer; the observed run prices a full trace
// recording for reference.
//
//	go run ./scripts/benchjson -out BENCH_design.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	mvpp "github.com/warehousekit/mvpp"
	"github.com/warehousekit/mvpp/internal/obs"
	"github.com/warehousekit/mvpp/internal/telemetry"
)

func paperDesigner(opts mvpp.Options) (*mvpp.Designer, error) {
	cat := mvpp.NewCatalog()
	steps := []error{
		cat.AddTable("Product", []mvpp.Column{
			{Name: "Pid", Type: mvpp.Int}, {Name: "name", Type: mvpp.String}, {Name: "Did", Type: mvpp.Int},
		}, mvpp.TableStats{Rows: 30000, Blocks: 3000, UpdateFrequency: 1,
			DistinctValues: map[string]float64{"Pid": 30000, "Did": 5000}}),
		cat.AddTable("Division", []mvpp.Column{
			{Name: "Did", Type: mvpp.Int}, {Name: "name", Type: mvpp.String}, {Name: "city", Type: mvpp.String},
		}, mvpp.TableStats{Rows: 5000, Blocks: 500, UpdateFrequency: 1,
			DistinctValues: map[string]float64{"Did": 5000, "city": 50}}),
		cat.AddTable("Order", []mvpp.Column{
			{Name: "Pid", Type: mvpp.Int}, {Name: "Cid", Type: mvpp.Int},
			{Name: "quantity", Type: mvpp.Int}, {Name: "date", Type: mvpp.Date},
		}, mvpp.TableStats{Rows: 50000, Blocks: 6000, UpdateFrequency: 1,
			DistinctValues: map[string]float64{"Pid": 30000, "Cid": 20000},
			IntRanges:      map[string][2]int64{"quantity": {1, 200}}}),
		cat.AddTable("Customer", []mvpp.Column{
			{Name: "Cid", Type: mvpp.Int}, {Name: "name", Type: mvpp.String}, {Name: "city", Type: mvpp.String},
		}, mvpp.TableStats{Rows: 20000, Blocks: 2000, UpdateFrequency: 1,
			DistinctValues: map[string]float64{"Cid": 20000, "city": 50}}),
		cat.AddTable("Part", []mvpp.Column{
			{Name: "Tid", Type: mvpp.Int}, {Name: "name", Type: mvpp.String},
			{Name: "Pid", Type: mvpp.Int}, {Name: "supplier", Type: mvpp.String},
		}, mvpp.TableStats{Rows: 80000, Blocks: 10000, UpdateFrequency: 1,
			DistinctValues: map[string]float64{"Tid": 80000, "Pid": 30000}}),
		cat.PinSelectivity(`city = 'LA'`, 0.02, "Division"),
		cat.PinSelectivity(`date > 7/1/96`, 0.5, "Order"),
		cat.PinSelectivity(`quantity > 100`, 0.5, "Order"),
	}
	for _, err := range steps {
		if err != nil {
			return nil, err
		}
	}
	d := mvpp.NewDesigner(cat, opts)
	queries := []mvpp.Query{
		{Name: "Q1", Frequency: 10, SQL: `SELECT Product.name FROM Product, Division WHERE Division.city = 'LA' AND Product.Did = Division.Did`},
		{Name: "Q2", Frequency: 0.5, SQL: `SELECT Part.name FROM Product, Part, Division WHERE Division.city = 'LA' AND Product.Did = Division.Did AND Part.Pid = Product.Pid`},
		{Name: "Q3", Frequency: 0.8, SQL: `SELECT Customer.name, Product.name, quantity FROM Product, Division, Order, Customer WHERE Division.city = 'LA' AND Product.Did = Division.Did AND Product.Pid = Order.Pid AND Order.Cid = Customer.Cid AND date > 7/1/96`},
		{Name: "Q4", Frequency: 5, SQL: `SELECT Customer.city, date FROM Order, Customer WHERE quantity > 100 AND Order.Cid = Customer.Cid`},
	}
	for _, q := range queries {
		if err := d.AddQuery(q.Name, q.SQL, q.Frequency); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// measureDesign times repeated Design() calls on one pre-bound designer —
// the pure-pipeline regression number.
func measureDesign() (testing.BenchmarkResult, error) {
	d, err := paperDesigner(mvpp.Options{})
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	var runErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := d.Design(); err != nil {
				runErr = err
				b.FailNow()
			}
		}
	})
	return res, runErr
}

// measureSimulateDelta times one synthetic delta-maintenance epoch through
// the engine (mirrors BenchmarkSimulateDelta) and captures the measured
// incremental vs recompute epoch I/O for the baseline file.
func measureSimulateDelta() (testing.BenchmarkResult, int64, int64, error) {
	d, err := paperDesigner(mvpp.Options{Delta: &mvpp.DeltaOptions{DefaultFraction: 0.01}})
	if err != nil {
		return testing.BenchmarkResult{}, 0, 0, err
	}
	design, err := d.Design()
	if err != nil {
		return testing.BenchmarkResult{}, 0, 0, err
	}
	var runErr error
	var incIO, fullIO int64
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sim, err := design.Simulate(mvpp.SimOptions{Scale: 0.005, Seed: 11, DeltaFraction: 0.01})
			if err != nil {
				runErr = err
				b.FailNow()
			}
			incIO, fullIO = sim.IncrementalRefreshIO, sim.RefreshIO
		}
	})
	return res, incIO, fullIO, runErr
}

// measureExecMode times one Simulate pass at a scale where the executor
// dominates the wall clock (at tiny scales the fixed designer/build work
// drowns it out), on either the vectorized batch executor or the
// row-at-a-time reference executor. The batch/row pairs it produces are
// the ≥5x speedup acceptance numbers: deltaFraction 0 prices the
// recompute/Simulate path, a non-zero fraction prices the incremental
// refresh path on top.
func measureExecMode(rowExec bool, deltaFraction float64) (testing.BenchmarkResult, error) {
	d, err := paperDesigner(mvpp.Options{})
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	design, err := d.Design()
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	var runErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, err := design.Simulate(mvpp.SimOptions{
				Scale: 0.02, Seed: 11, DeltaFraction: deltaFraction, RowExec: rowExec,
			})
			if err != nil {
				runErr = err
				b.FailNow()
			}
		}
	})
	return res, runErr
}

// measureEndToEnd rebuilds the designer every iteration (a fresh trace
// recorder each time when mkObs is non-nil), so the observed run is not
// skewed by one recorder accumulating every previous iteration's trace.
func measureEndToEnd(mkObs func() mvpp.Observer) (testing.BenchmarkResult, error) {
	var runErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			opts := mvpp.Options{}
			if mkObs != nil {
				opts.Observer = mkObs()
			}
			d, err := paperDesigner(opts)
			if err == nil {
				_, err = d.Design()
			}
			if err != nil {
				runErr = err
				b.FailNow()
			}
		}
	})
	return res, runErr
}

// measureServe drives the serving layer with parallel clients round-robining
// the workload (mirrors BenchmarkServeWorkload) and captures its
// throughput-side metrics for the baseline file.
func measureServe(auditOff bool) (testing.BenchmarkResult, mvpp.ServeStats, error) {
	d, err := paperDesigner(mvpp.Options{})
	if err != nil {
		return testing.BenchmarkResult{}, mvpp.ServeStats{}, err
	}
	design, err := d.Design()
	if err != nil {
		return testing.BenchmarkResult{}, mvpp.ServeStats{}, err
	}
	var runErr error
	var stats mvpp.ServeStats
	res := testing.Benchmark(func(b *testing.B) {
		srv, err := design.NewServer(mvpp.ServeOptions{
			Scale: 0.01, Seed: 7,
			CostAudit: mvpp.CostAuditOptions{Disable: auditOff},
		})
		if err != nil {
			runErr = err
			b.FailNow()
		}
		defer srv.Close()
		queries := design.Queries()
		ctx := context.Background()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if _, err := srv.Query(ctx, queries[i%len(queries)]); err != nil {
					runErr = err
					b.FailNow()
				}
				i++
			}
		})
		b.StopTimer()
		stats = srv.Stats()
	})
	return res, stats, runErr
}

// measureChaosServe drives the serving layer with a fault injector failing
// 10% of refresh attempts while deltas flow — the number that prices the
// fault-tolerance machinery (retries, breaker checks, journaling) under
// load. Worker faults are off so queries themselves never error.
func measureChaosServe() (testing.BenchmarkResult, mvpp.ServeStats, error) {
	d, err := paperDesigner(mvpp.Options{})
	if err != nil {
		return testing.BenchmarkResult{}, mvpp.ServeStats{}, err
	}
	design, err := d.Design()
	if err != nil {
		return testing.BenchmarkResult{}, mvpp.ServeStats{}, err
	}
	var runErr error
	var stats mvpp.ServeStats
	res := testing.Benchmark(func(b *testing.B) {
		inj := mvpp.NewFaultInjector(7, mvpp.FaultPlan{
			mvpp.FaultSiteEngineRefresh:            {ErrProb: 0.1},
			mvpp.FaultSiteEngineIncrementalRefresh: {ErrProb: 0.1},
		})
		srv, err := design.NewServer(mvpp.ServeOptions{
			Scale: 0.01, Seed: 7,
			Injector: inj,
			Journal:  mvpp.NewMemJournal(),
			Breaker:  mvpp.BreakerPolicy{FailureThreshold: 2, Cooldown: time.Millisecond},
			Retry:    mvpp.RetryPolicy{MaxAttempts: 3, BaseDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond},
		})
		if err != nil {
			runErr = err
			b.FailNow()
		}
		defer srv.Close()
		queries := design.Queries()
		ctx := context.Background()
		stop := make(chan struct{})
		maintDone := make(chan struct{})
		go func() {
			defer close(maintDone)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := srv.InjectDeltas(0.005); err != nil {
					return
				}
				_ = srv.Flush() // chaos: per-view failures are the point
				time.Sleep(500 * time.Microsecond)
			}
		}()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if _, err := srv.Query(ctx, queries[i%len(queries)]); err != nil {
					runErr = err
					b.FailNow()
				}
				i++
			}
		})
		b.StopTimer()
		close(stop)
		<-maintDone
		stats = srv.Stats()
	})
	return res, stats, runErr
}

// measureTelemetryScrape prices one full /metrics scrape — HTTP GET plus
// Prometheus exposition rendering — against a primed live server, and
// asserts every scrape parses. The server first answers the whole workload
// once so counters, per-view gauges, and both latency histograms are
// populated; the windowed rates from its Stats() go into the baseline too.
func measureTelemetryScrape() (testing.BenchmarkResult, int, mvpp.ServeStats, error) {
	d, err := paperDesigner(mvpp.Options{})
	if err != nil {
		return testing.BenchmarkResult{}, 0, mvpp.ServeStats{}, err
	}
	design, err := d.Design()
	if err != nil {
		return testing.BenchmarkResult{}, 0, mvpp.ServeStats{}, err
	}
	srv, err := design.NewServer(mvpp.ServeOptions{
		Scale: 0.01, Seed: 7, TelemetryAddr: "127.0.0.1:0",
	})
	if err != nil {
		return testing.BenchmarkResult{}, 0, mvpp.ServeStats{}, err
	}
	defer srv.Close()
	ctx := context.Background()
	for _, q := range design.Queries() {
		for i := 0; i < 8; i++ {
			if _, err := srv.Query(ctx, q); err != nil {
				return testing.BenchmarkResult{}, 0, mvpp.ServeStats{}, err
			}
		}
	}
	url := "http://" + srv.TelemetryAddr() + "/metrics"
	var runErr error
	var samples int
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			resp, err := http.Get(url)
			if err != nil {
				runErr = err
				b.FailNow()
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err == nil {
				samples, err = telemetry.ValidateExposition(body)
			}
			if err != nil {
				runErr = fmt.Errorf("scrape did not parse: %w", err)
				b.FailNow()
			}
		}
	})
	if runErr == nil {
		runErr = validateCostModel(srv.TelemetryAddr())
	}
	return res, samples, srv.Stats(), runErr
}

// measureStreamingIngest prices the CDC streaming-ingest path end to end:
// synthetic delta batches pushed through StreamDeltas — bounded change
// feed, group commit, write-ahead journal append — against a live server.
// Each benchmark op is one StreamDeltas call; the sustained row throughput
// and the accepted→group-committed lag p99 go into the baseline.
func measureStreamingIngest() (rowsPerSec float64, lagP99 time.Duration, err error) {
	d, err := paperDesigner(mvpp.Options{})
	if err != nil {
		return 0, 0, err
	}
	design, err := d.Design()
	if err != nil {
		return 0, 0, err
	}
	var runErr error
	var stats mvpp.ServeStats
	res := testing.Benchmark(func(b *testing.B) {
		srv, err := design.NewServer(mvpp.ServeOptions{
			Scale: 0.01, Seed: 7,
			Journal: mvpp.NewMemJournal(),
		})
		if err != nil {
			runErr = err
			b.FailNow()
		}
		defer srv.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := srv.StreamDeltas(0.01); err != nil {
				runErr = err
				b.FailNow()
			}
		}
		b.StopTimer()
		if err := srv.Flush(); err != nil {
			runErr = err
			b.FailNow()
		}
		stats = srv.Stats()
	})
	if runErr != nil {
		return 0, 0, runErr
	}
	if secs := res.T.Seconds(); secs > 0 {
		rowsPerSec = float64(stats.StreamRows) / secs
	}
	return rowsPerSec, stats.IngestLagP99, nil
}

// measureTraceOverhead prices the causal tracing plane on the serving hot
// path: the same parallel-client load as measureServe once with pipeline
// tracing armed at the default production stride (TraceSampleEvery 16,
// what setting TelemetryAddr arms) and once with tracing forced off. The
// QPS gap between the pair is the tracing budget — acceptance is within
// 10%. Unsampled queries pay one counter increment and a modulo; sampled
// ones allocate the trace entry, spans, and exemplar.
func measureTraceOverhead() (onQPS, offQPS float64, err error) {
	d, err := paperDesigner(mvpp.Options{})
	if err != nil {
		return 0, 0, err
	}
	design, err := d.Design()
	if err != nil {
		return 0, 0, err
	}
	run := func(sampleEvery int) (float64, error) {
		var runErr error
		var stats mvpp.ServeStats
		testing.Benchmark(func(b *testing.B) {
			srv, err := design.NewServer(mvpp.ServeOptions{
				Scale: 0.01, Seed: 7,
				TraceSampleEvery: sampleEvery,
			})
			if err != nil {
				runErr = err
				b.FailNow()
			}
			defer srv.Close()
			queries := design.Queries()
			ctx := context.Background()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, err := srv.Query(ctx, queries[i%len(queries)]); err != nil {
						runErr = err
						b.FailNow()
					}
					i++
				}
			})
			b.StopTimer()
			stats = srv.Stats()
		})
		return stats.QPS, runErr
	}
	// Three interleaved rounds, each running the off and on arms
	// back-to-back, reporting the round with the median gap: the gap
	// should price tracing, not the slow drift of a shared box, and
	// pairing the arms inside one round cancels that drift.
	type round struct{ off, on float64 }
	rounds := make([]round, 0, 3)
	for i := 0; i < 3; i++ {
		off, err := run(-1)
		if err != nil {
			return 0, 0, err
		}
		on, err := run(16)
		if err != nil {
			return 0, 0, err
		}
		rounds = append(rounds, round{off: off, on: on})
	}
	sort.Slice(rounds, func(i, j int) bool {
		return rounds[i].off-rounds[i].on < rounds[j].off-rounds[j].on
	})
	mid := rounds[len(rounds)/2]
	return mid.on, mid.off, nil
}

// measureMultiProducerIngest prices the CDC streaming path under
// contention: four concurrent producers push StreamDeltas batches at the
// same bounded change feed for a fixed window. The sustained aggregate
// row throughput and the min/max per-producer fairness ratio (1.0 =
// perfectly fair group commit, small = one producer starved) go into the
// baseline.
func measureMultiProducerIngest() (rowsPerSec, fairness float64, err error) {
	const producers = 4
	d, err := paperDesigner(mvpp.Options{})
	if err != nil {
		return 0, 0, err
	}
	design, err := d.Design()
	if err != nil {
		return 0, 0, err
	}
	srv, err := design.NewServer(mvpp.ServeOptions{
		Scale: 0.01, Seed: 7,
		Journal: mvpp.NewMemJournal(),
	})
	if err != nil {
		return 0, 0, err
	}
	defer srv.Close()

	var perProducer [producers]int64
	var firstErr error
	var errMu sync.Mutex
	deadline := time.Now().Add(500 * time.Millisecond)
	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				rows, err := srv.StreamDeltas(0.002)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				perProducer[p] += int64(rows)
			}
		}(p)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return 0, 0, firstErr
	}
	if err := srv.Flush(); err != nil {
		return 0, 0, err
	}
	var total, minRows, maxRows int64
	for p, rows := range perProducer {
		total += rows
		if p == 0 || rows < minRows {
			minRows = rows
		}
		if rows > maxRows {
			maxRows = rows
		}
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rowsPerSec = float64(total) / secs
	}
	if maxRows > 0 {
		fairness = float64(minRows) / float64(maxRows)
	}
	return rowsPerSec, fairness, nil
}

// measureFlightDump prices one flight-recorder episode dump: a full
// 1024-record ring snapshotted, sorted, and written to disk — the cost the
// serving layer pays at the moment an SLO breach or breaker trip latches.
func measureFlightDump() (int64, error) {
	dir, err := os.MkdirTemp("", "mvpp-flight-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	rec := obs.NewFlightRecorder(1024, dir)
	ctx := obs.NewTraceContext()
	base := time.Now()
	for i := 0; i < 1024; i++ {
		rec.RecordSpan(ctx.NewChild(), "bench.fill", base, time.Millisecond,
			obs.Int("i", int64(i)))
	}
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if rec.Dump("bench", obs.Int("i", int64(i))) == nil {
				b.FailNow()
			}
		}
	})
	return res.NsPerOp(), nil
}

// validateCostModel parse-validates one /costmodel scrape the way the
// /metrics exposition is validated: the endpoint must answer valid JSON
// with a ledger entry per workload query class.
func validateCostModel(addr string) error {
	resp, err := http.Get("http://" + addr + "/costmodel")
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	var out struct {
		Entries []struct {
			Kind string `json:"kind"`
			Name string `json:"name"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return fmt.Errorf("/costmodel did not parse: %w", err)
	}
	queries := 0
	for _, e := range out.Entries {
		if e.Kind == "query" {
			queries++
		}
	}
	if queries == 0 {
		return fmt.Errorf("/costmodel holds no query entries: %s", body)
	}
	return nil
}

// measureColdStart prices a warehouse boot at 10x the serving-bench scale
// with and without a durable snapshot generation on disk. The snapshot run
// restores base tables and views from columnar segments and replays an
// empty journal suffix; the recompute run rebuilds the synthetic warehouse
// and materializes every view from scratch. Their ratio is the snapshot
// store's acceptance number.
func measureColdStart() (snapNs, recomputeNs, snapshotBytes int64, err error) {
	d, err := paperDesigner(mvpp.Options{})
	if err != nil {
		return 0, 0, 0, err
	}
	design, err := d.Design()
	if err != nil {
		return 0, 0, 0, err
	}
	dir, err := os.MkdirTemp("", "mvpp-coldstart-*")
	if err != nil {
		return 0, 0, 0, err
	}
	defer os.RemoveAll(dir)
	warm := mvpp.ServeOptions{
		Scale: 0.1, Seed: 7,
		SnapshotDir: dir + "/snaps",
		JournalPath: dir + "/deltas.journal",
	}

	// Seed one committed generation, then verify a boot over it is warm.
	seed, err := design.NewServer(warm)
	if err != nil {
		return 0, 0, 0, err
	}
	ckpt, err := seed.Checkpoint()
	if err == nil {
		err = seed.Close()
	}
	if err != nil {
		return 0, 0, 0, err
	}
	snapshotBytes = ckpt.Bytes
	probe, err := design.NewServer(warm)
	if err != nil {
		return 0, 0, 0, err
	}
	rs := probe.SnapshotStats().Recovery
	if err := probe.Close(); err != nil {
		return 0, 0, 0, err
	}
	if rs == nil || rs.Cold {
		return 0, 0, 0, fmt.Errorf("cold-start bench: boot over a committed generation went cold: %+v", rs)
	}

	var runErr error
	boot := func(opts mvpp.ServeOptions) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				srv, err := design.NewServer(opts)
				if err != nil {
					runErr = err
					b.FailNow()
				}
				if err := srv.Close(); err != nil {
					runErr = err
					b.FailNow()
				}
			}
		})
	}
	snap := boot(warm)
	recompute := boot(mvpp.ServeOptions{Scale: 0.1, Seed: 7})
	return snap.NsPerOp(), recompute.NsPerOp(), snapshotBytes, runErr
}

// environment captures the machine the baseline was measured on, so a
// regression diff can tell a code change from a hardware change.
type environment struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// CPUModel is best-effort (from /proc/cpuinfo); empty where unreadable.
	CPUModel string `json:"cpu_model,omitempty"`
}

func captureEnvironment() environment {
	env := environment{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	if data, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if rest, ok := strings.CutPrefix(line, "model name"); ok {
				if _, val, found := strings.Cut(rest, ":"); found {
					env.CPUModel = strings.TrimSpace(val)
					break
				}
			}
		}
	}
	return env
}

type report struct {
	Benchmark string `json:"benchmark"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// Environment pins the full machine fingerprint of the run, so baseline
	// diffs can tell code regressions from hardware or toolchain changes.
	Environment      environment `json:"environment"`
	Iterations       int         `json:"iterations"`
	NsPerOp          int64       `json:"ns_per_op"`
	AllocsPerOp      int64       `json:"allocs_per_op"`
	BytesPerOp       int64       `json:"bytes_per_op"`
	EndToEndNsPerOp  int64       `json:"end_to_end_ns_per_op"`
	ObservedNsPerOp  int64       `json:"observed_end_to_end_ns_per_op"`
	ObservedOverhead string      `json:"observed_overhead"`
	// SimulateDelta tracks the engine's delta-propagation maintenance
	// path (BenchmarkSimulateDelta): runtime of one simulated epoch plus
	// the measured incremental vs full-recompute refresh I/O.
	SimulateDeltaNsPerOp   int64 `json:"simulate_delta_ns_per_op"`
	IncrementalEpochBlocks int64 `json:"incremental_epoch_blocks"`
	RecomputeEpochBlocks   int64 `json:"recompute_epoch_blocks"`
	// Batch-vs-row executor pairs, measured at Scale 0.02 where the
	// executor dominates the wall clock. The speedups are the vectorized
	// engine's acceptance numbers: the simulate pair is the recompute
	// path, the refresh pair runs the same epoch with a 1% delta so the
	// incremental maintenance path is in the loop too.
	BatchSimulateNsPerOp  int64   `json:"batch_simulate_ns_per_op"`
	RowSimulateNsPerOp    int64   `json:"row_simulate_ns_per_op"`
	RowVsBatchSpeedup     float64 `json:"row_vs_batch_speedup"`
	BatchRefreshNsPerOp   int64   `json:"batch_refresh_ns_per_op"`
	RowRefreshNsPerOp     int64   `json:"row_refresh_ns_per_op"`
	RowVsBatchRefreshGain float64 `json:"row_vs_batch_refresh_speedup"`
	// Serve tracks the serving layer (BenchmarkServeWorkload): per-query
	// latency of the router path under parallel clients, sustained
	// throughput, the result cache's hit rate, and tail latency.
	ServeNsPerOp      int64   `json:"serve_ns_per_op"`
	ServeQPS          float64 `json:"serve_qps"`
	ServeCacheHitRate float64 `json:"serve_cache_hit_rate"`
	ServeP99Micros    int64   `json:"serve_p99_us"`
	// ServeAuditOffQPS is the same serving run with the predicted-vs-actual
	// cost ledger disabled — the pair that bounds the ledger's overhead.
	ServeAuditOffQPS float64 `json:"serve_audit_off_qps"`
	// ChaosServe tracks the same serving path with 10% of refresh attempts
	// failing and a delta journal armed: what fault tolerance costs, and
	// how often it engages.
	ChaosServeQPS     float64 `json:"chaos_serve_qps"`
	ChaosServeP99     int64   `json:"chaos_serve_p99_us"`
	ChaosDegraded     int64   `json:"chaos_degraded_queries"`
	ChaosBreakerTrips int64   `json:"chaos_breaker_trips"`
	ChaosRetries      int64   `json:"chaos_retries"`
	// Telemetry tracks the admin plane: the cost of one full /metrics
	// scrape (HTTP GET + exposition render + parse check) on a primed
	// server, how many samples that scrape carried, and the rolling-window
	// rates the plane derives from the last minute of traffic.
	TelemetryScrapeNsPerOp int64   `json:"telemetry_scrape_ns_per_op"`
	TelemetryScrapeSamples int     `json:"telemetry_scrape_samples"`
	ServeWindowQPS         float64 `json:"serve_window_qps"`
	ServeWindowHitRate     float64 `json:"serve_window_hit_rate"`
	// Cold start pairs boot-to-serving time at 10x the serving-bench scale:
	// restoring from a committed snapshot generation vs recomputing the
	// warehouse and every view from scratch. The speedup is the snapshot
	// subsystem's acceptance number; snapshot_bytes sizes the generation
	// those boots restore from.
	ColdStartSnapshotNs  int64   `json:"cold_start_snapshot_ns"`
	ColdStartRecomputeNs int64   `json:"cold_start_recompute_ns"`
	ColdStartSpeedup     float64 `json:"cold_start_speedup"`
	SnapshotBytes        int64   `json:"snapshot_bytes"`
	// StreamingIngest prices the CDC streaming path end to end: sustained
	// rows/sec through StreamDeltas (bounded change feed → group commit →
	// journal append) and the accepted→group-committed lag p99.
	StreamingIngestRowsPerSec float64 `json:"streaming_ingest_rows_per_sec"`
	IngestLagP99Ms            float64 `json:"ingest_lag_p99_ms"`
	// MultiProducer prices the streaming path under contention: four
	// concurrent producers at the same change feed. Fairness is the
	// min/max per-producer row ratio (1.0 = perfectly fair group commit).
	MultiProducerRowsPerSec float64 `json:"streaming_ingest_multiproducer_rows_per_sec"`
	MultiProducerFairness   float64 `json:"streaming_ingest_producer_fairness"`
	// TraceOverheadPct is the serving-QPS cost of the causal tracing
	// plane: ((off - on) / off) × 100 with TraceSampleEvery 1 vs tracing
	// forced off. Acceptance keeps it under 10%.
	TraceOverheadPct float64 `json:"trace_overhead_pct"`
	// FlightDumpNs prices one flight-recorder episode dump: a full
	// 1024-record ring snapshotted, sorted, and written to disk.
	FlightDumpNs int64 `json:"flight_dump_ns"`
}

func main() {
	out := flag.String("out", "BENCH_design.json", "output file ('-' for stdout)")
	flag.Parse()

	fail := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	design, err := measureDesign()
	fail(err)
	plain, err := measureEndToEnd(nil)
	fail(err)
	observed, err := measureEndToEnd(func() mvpp.Observer { return mvpp.NewTraceRecorder(nil) })
	fail(err)
	deltaSim, incIO, fullIO, err := measureSimulateDelta()
	fail(err)
	batchSim, err := measureExecMode(false, 0)
	fail(err)
	rowSim, err := measureExecMode(true, 0)
	fail(err)
	batchRefresh, err := measureExecMode(false, 0.01)
	fail(err)
	rowRefresh, err := measureExecMode(true, 0.01)
	fail(err)
	serveRes, serveStats, err := measureServe(false)
	fail(err)
	_, auditOffStats, err := measureServe(true)
	fail(err)
	_, chaosStats, err := measureChaosServe()
	fail(err)
	scrapeRes, scrapeSamples, scrapeStats, err := measureTelemetryScrape()
	fail(err)
	coldSnapNs, coldRecomputeNs, snapBytes, err := measureColdStart()
	fail(err)
	streamRows, streamLagP99, err := measureStreamingIngest()
	fail(err)
	multiRows, multiFairness, err := measureMultiProducerIngest()
	fail(err)
	traceOnQPS, traceOffQPS, err := measureTraceOverhead()
	fail(err)
	flightDumpNs, err := measureFlightDump()
	fail(err)

	r := report{
		Benchmark:       "BenchmarkDesign",
		GoVersion:       runtime.Version(),
		GOOS:            runtime.GOOS,
		GOARCH:          runtime.GOARCH,
		Environment:     captureEnvironment(),
		Iterations:      design.N,
		NsPerOp:         design.NsPerOp(),
		AllocsPerOp:     design.AllocsPerOp(),
		BytesPerOp:      design.AllocedBytesPerOp(),
		EndToEndNsPerOp: plain.NsPerOp(),
		ObservedNsPerOp: observed.NsPerOp(),
		ObservedOverhead: fmt.Sprintf("%+.1f%%",
			100*(float64(observed.NsPerOp())-float64(plain.NsPerOp()))/float64(plain.NsPerOp())),
		SimulateDeltaNsPerOp:   deltaSim.NsPerOp(),
		IncrementalEpochBlocks: incIO,
		RecomputeEpochBlocks:   fullIO,
		BatchSimulateNsPerOp:   batchSim.NsPerOp(),
		RowSimulateNsPerOp:     rowSim.NsPerOp(),
		RowVsBatchSpeedup:      float64(rowSim.NsPerOp()) / float64(batchSim.NsPerOp()),
		BatchRefreshNsPerOp:    batchRefresh.NsPerOp(),
		RowRefreshNsPerOp:      rowRefresh.NsPerOp(),
		RowVsBatchRefreshGain:  float64(rowRefresh.NsPerOp()) / float64(batchRefresh.NsPerOp()),
		ServeNsPerOp:           serveRes.NsPerOp(),
		ServeQPS:               serveStats.QPS,
		ServeCacheHitRate:      serveStats.CacheHitRate(),
		ServeP99Micros:         serveStats.P99.Microseconds(),
		ServeAuditOffQPS:       auditOffStats.QPS,
		ChaosServeQPS:          chaosStats.QPS,
		ChaosServeP99:          chaosStats.P99.Microseconds(),
		ChaosDegraded:          chaosStats.DegradedQueries,
		ChaosBreakerTrips:      chaosStats.BreakerTrips,
		ChaosRetries:           chaosStats.Retries,
		TelemetryScrapeNsPerOp: scrapeRes.NsPerOp(),
		TelemetryScrapeSamples: scrapeSamples,
		ServeWindowQPS:         scrapeStats.WindowQPS,
		ServeWindowHitRate:     scrapeStats.WindowHitRate,
		ColdStartSnapshotNs:    coldSnapNs,
		ColdStartRecomputeNs:   coldRecomputeNs,
		ColdStartSpeedup:       float64(coldRecomputeNs) / float64(coldSnapNs),
		SnapshotBytes:          snapBytes,

		StreamingIngestRowsPerSec: streamRows,
		IngestLagP99Ms:            float64(streamLagP99.Microseconds()) / 1000,
		MultiProducerRowsPerSec:   multiRows,
		MultiProducerFairness:     multiFairness,
		TraceOverheadPct:          100 * (traceOffQPS - traceOnQPS) / traceOffQPS,
		FlightDumpNs:              flightDumpNs,
	}
	data, err := json.MarshalIndent(r, "", "  ")
	fail(err)
	data = append(data, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(data)
		fail(err)
		return
	}
	fail(os.WriteFile(*out, data, 0o644))
}
