//go:build race

package mvpp_test

// raceEnabled reports whether this test binary was built with the race
// detector; timing-comparison guards skip themselves under its
// instrumentation overhead.
const raceEnabled = true
