package mvpp

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/cost"
	"github.com/warehousekit/mvpp/internal/costaudit"
	"github.com/warehousekit/mvpp/internal/engine"
	"github.com/warehousekit/mvpp/internal/obs"
	"github.com/warehousekit/mvpp/internal/optimizer"
	"github.com/warehousekit/mvpp/internal/serve"
	"github.com/warehousekit/mvpp/internal/snapshot"
	"github.com/warehousekit/mvpp/internal/sqlparse"
	"github.com/warehousekit/mvpp/internal/telemetry"
)

// ServeOptions configures Design.NewServer.
type ServeOptions struct {
	// Scale sizes the synthetic warehouse relative to the catalog
	// statistics (0 defaults to 0.01, like Simulate).
	Scale float64
	// Seed drives the deterministic data generator.
	Seed int64
	// Workers is the query router's worker-pool size (0 → default).
	Workers int
	// QueueDepth bounds the admission queue (0 → default).
	QueueDepth int
	// CacheCapacity bounds the result cache in entries (0 → default,
	// negative disables caching).
	CacheCapacity int
	// DeltaBatch is how many ingested delta rows trigger a maintenance
	// epoch (0 → default).
	DeltaBatch int
	// RefreshInterval, when positive, also fires maintenance epochs
	// periodically.
	RefreshInterval time.Duration
	// Observer receives serving spans, events, counters and gauges; nil
	// falls back to the designer's observer.
	Observer Observer
	// Retry bounds the retry-with-exponential-backoff loop around every
	// refresh step of a maintenance epoch. Zero values take defaults.
	Retry RetryPolicy
	// Breaker configures the per-view circuit breaker that degrades queries
	// to base relations while a view cannot be kept fresh. Zero values take
	// defaults (StalenessBound 0 disables the bound).
	Breaker BreakerPolicy
	// Policies maps view name → refresh-policy spec ("manual", "on-commit",
	// "scheduled:<duration>", "streaming"), overriding any policy the
	// design set with SetRefreshPolicy. Views listed nowhere take
	// DefaultPolicy.
	Policies map[string]string
	// DefaultPolicy is the refresh-policy spec for views with no explicit
	// policy ("" → on-commit, the legacy behavior).
	DefaultPolicy string
	// SLOs maps view name → freshness SLO; views not listed take
	// DefaultSLO. A breached SLO marks the view STALE, degrades its queries
	// to base relations, and counts a violation.
	SLOs map[string]FreshnessSLO
	// DefaultSLO is the freshness SLO for views not in SLOs (zero → no
	// SLO).
	DefaultSLO FreshnessSLO
	// Ingest tunes the CDC streaming-ingest path behind StreamDeltas
	// (bounded buffer, block deadline, group commit). Zero values take
	// defaults.
	Ingest IngestConfig
	// Injector, when set, arms deterministic fault injection at the engine
	// and serving-layer sites (chaos testing). Nil injects nothing.
	Injector *FaultInjector
	// Journal, when set, write-ahead-logs every ingested delta batch so a
	// crashed server replays un-applied deltas on restart. The caller owns
	// its lifetime. Mutually exclusive with JournalPath.
	Journal DeltaJournal
	// JournalPath, when non-empty, opens (or resumes) the crash-safe
	// file-backed delta journal at that path; the Server owns it and closes
	// it on Close. Mutually exclusive with Journal.
	JournalPath string
	// SnapshotDir, when non-empty, arms the durable snapshot store at that
	// directory. On boot the newest consistent snapshot generation is
	// restored — views whose definitions changed or whose segments are
	// corrupt fall back to recomputation, never a failed boot — and only
	// the journal suffix past the snapshot watermark is replayed. While
	// serving, checkpoints fire on epoch count and wall-clock interval,
	// compact the delta journal up to the acked watermark, and age out old
	// generations. Empty keeps snapshots off.
	SnapshotDir string
	// SnapshotInterval is the wall-clock checkpoint trigger period (0
	// disables the timer; the epoch-count trigger still fires).
	SnapshotInterval time.Duration
	// SnapshotEveryEpochs checkpoints after that many landed maintenance
	// epochs (0 → 8).
	SnapshotEveryEpochs int
	// SnapshotRetain is how many committed snapshot generations retention
	// GC keeps (0 → 3).
	SnapshotRetain int
	// TelemetryAddr, when non-empty, starts the live telemetry plane on
	// that address (":9090", "127.0.0.1:0", ...): /metrics in Prometheus
	// text exposition, /healthz and /views JSON, /traces with sampled
	// query lifecycles, and /debug/pprof. Empty keeps everything off — no
	// listener, no goroutines, no hot-path cost.
	TelemetryAddr string
	// TraceSampleEvery samples every Nth query's lifecycle into the trace
	// ring behind /traces (1 = every query). 0 defaults to 16 when
	// TelemetryAddr is set and stays off otherwise; negative forces
	// sampling off even with telemetry on. Sampling also arms causal
	// pipeline tracing: sampled StreamDeltas batches mint a trace ID that
	// follows the delta through group commit, journal append, the
	// maintenance epoch, and per-view refresh into the same /traces ring.
	TraceSampleEvery int
	// FlightDir, when non-empty, is where the SLO flight recorder writes
	// its dump files (flight-<seq>-<reason>.json) when an episode latches:
	// an SLO breach, a circuit breaker opening, a checkpoint error, or
	// recovery-time corruption. Setting it arms the flight recorder even
	// with trace sampling off. Empty with sampling on keeps dumps
	// in-memory only (see Server.FlightDumps). Defaults from the
	// MVPP_FLIGHT_DIR environment variable when unset.
	FlightDir string
	// FlightRecorderSize bounds the flight recorder's span/event ring (0
	// → 1024).
	FlightRecorderSize int
	// CostAudit tunes the cost-accountability ledger. Auditing is on by
	// default (set CostAudit.Disable to turn it off): every query class and
	// view carries a §4.1 predicted cost, cache-miss executions and view
	// refreshes record their measured block I/O against it, and calibration
	// drift triggers advisor re-selection.
	CostAudit CostAuditOptions
	// RowExec serves queries on the row-at-a-time reference executor
	// instead of the vectorized batch executor. Block I/O — and with it
	// every cost-ledger ratio — is identical either way; only wall-clock
	// differs, so this exists for the row-vs-batch benchmarks.
	RowExec bool
}

// CostAuditOptions configures the serving layer's predicted-vs-actual cost
// ledger (see Server.CostReport, Server.Explain, and the /costmodel
// telemetry endpoint). The zero value means auditing on with defaults.
type CostAuditOptions struct {
	// Disable turns the ledger off entirely: no predictions, no
	// observations, empty CostReport, no drift-triggered recalibration.
	Disable bool
	// Alpha is the EWMA smoothing factor for calibration ratios in (0, 1]
	// (0 → 0.3).
	Alpha float64
	// DriftBound d flags an entry as drifted when its smoothed calibration
	// ratio leaves [1/d, d] (0 → 2.5).
	DriftBound float64
	// MinSamples is how many observations an entry needs before drift can
	// be flagged (0 → 3).
	MinSamples int
	// SkewPredictions multiplies every registered prediction — a test hook
	// simulating a miscalibrated cost model (0 → 1, no skew).
	SkewPredictions float64
	// SkewViews multiplies only the named views' refresh predictions
	// (recompute and incremental), on top of SkewPredictions — a test hook
	// simulating a cost model whose constants drifted for some operators
	// but not others. Drift precision tests use it to assert that only the
	// genuinely skewed views get flagged.
	SkewViews map[string]float64
	// AutoApply lets a drift-triggered recalibration hot-swap its advised
	// view set into the running warehouse; off, the advice is only recorded
	// (see Server.LastRecalibration).
	AutoApply bool
}

// defaultTraceSample is the sampling stride when telemetry is on and the
// caller did not choose one.
const defaultTraceSample = 16

// ServeStats is a point-in-time snapshot of the serving counters.
type ServeStats = serve.Stats

// SnapshotStats reports the durable-snapshot plane's state: last
// checkpoint, per-view segment status, and the recovery that booted this
// server.
type SnapshotStats = serve.SnapshotStats

// ViewSnapshotInfo is one view's durable-snapshot status inside
// SnapshotStats.
type ViewSnapshotInfo = serve.ViewSnapshotInfo

// RecoveryStats reports how a snapshot-armed server booted: what was
// restored from segments vs recomputed, and the journal watermark replay
// resumed from.
type RecoveryStats = snapshot.RecoveryStats

// CheckpointResult describes one committed snapshot generation.
type CheckpointResult = snapshot.CheckpointResult

// ViewStaleness reports one maintained view's lag behind ingested deltas.
type ViewStaleness = serve.Staleness

// Advice is the serving advisor's proposal: what the paper's selection
// would materialize for the observed workload.
type Advice = serve.Advice

// QueryTrace is one sampled pipeline lifecycle in the /traces ring: a
// query's admission → cache/execute → reply stages, or (Kind "ingest",
// "epoch", "checkpoint") a write-path operation's causal span tree.
type QueryTrace = serve.QueryTrace

// PipelineSpan is one causal span of a QueryTrace: a timed region of the
// write path (ingest.stream, journal.append, serve.epoch,
// refresh.incremental, ...) linked to its parent span by ID.
type PipelineSpan = serve.PipelineSpan

// ViewLineage is one view's refresh lineage: which epochs over which
// journal LSN ranges produced its current contents, plus the live
// fingerprint of those contents.
type ViewLineage = serve.ViewLineage

// LineageEntry is one epoch's contribution to a view's lineage.
type LineageEntry = serve.LineageEntry

// LatencyExemplar links one serve-latency histogram bucket to a sampled
// trace that landed in it — rendered as OpenMetrics exemplars on
// /metrics.
type LatencyExemplar = serve.LatencyExemplar

// FlightDump is one flight-recorder episode dump: the recent span/event
// ring captured when an SLO breach, breaker trip, checkpoint error, or
// recovery corruption latched.
type FlightDump = obs.FlightDump

// FlightRecord is one span or event inside a FlightDump.
type FlightRecord = obs.FlightRecord

// CostReport is a point-in-time snapshot of the cost-accountability
// ledger: predicted vs measured block costs per query class and view.
type CostReport = costaudit.Report

// CostEntry is one ledger row of a CostReport.
type CostEntry = costaudit.Entry

// QueryResult is one answered query.
type QueryResult struct {
	// Reads is the block-read cost of the execution (0 on a cache hit).
	Reads int64
	// Cached reports whether the result came from the result cache.
	Cached bool
	// Degraded reports that the query was answered from base relations
	// because a materialized view it would normally use is unhealthy (open
	// circuit breaker or staleness bound exceeded). Degraded results are
	// always fresh — they bypass the stale view entirely.
	Degraded bool
	// Epoch is the refresh epoch the result was computed under.
	Epoch uint64
	// Latency is submission-to-answer wall-clock time.
	Latency time.Duration

	table *engine.Table
}

// NumRows returns the result cardinality.
func (r *QueryResult) NumRows() int { return r.table.NumRows() }

// Values converts the result rows to plain Go values (int64, float64,
// string) — a copy, so callers may mutate freely.
func (r *QueryResult) Values() [][]any {
	out := make([][]any, r.table.NumRows())
	for i := range out {
		row := r.table.Row(i)
		vals := make([]any, len(row.Values))
		for c, v := range row.Values {
			switch v.Kind {
			case algebra.TypeInt, algebra.TypeDate:
				vals[c] = v.Int
			case algebra.TypeFloat:
				vals[c] = v.Float
			default:
				vals[c] = v.Str
			}
		}
		out[i] = vals
	}
	return out
}

// Columns returns the result's column names.
func (r *QueryResult) Columns() []string {
	cols := make([]string, r.table.Schema.Len())
	for i, c := range r.table.Schema.Columns {
		cols[i] = c.Name
	}
	return cols
}

// Server runs a finished design as a live warehouse: synthetic data is
// generated at the configured scale, the design's views are materialized,
// and the serving layer (query router + result cache + maintenance
// scheduler + advisor) starts. All methods are safe for concurrent use.
type Server struct {
	d     *Design
	db    *engine.DB
	inner *serve.Server
	scale float64
	seed  atomic.Int64

	// journal is the file journal opened from ServeOptions.JournalPath (nil
	// when the caller supplied their own or none); the Server closes it.
	journal DeltaJournal
	// tele is the telemetry plane (nil when TelemetryAddr was empty); the
	// Server stops it on Close, after the serving layer so late scrapes see
	// "closed" instead of a reset connection.
	tele      *telemetry.Server
	closeOnce sync.Once
	closeErr  error

	// sqlMu serializes ad-hoc SQL planning (the estimator's memo table is
	// not goroutine-safe).
	sqlMu sync.Mutex
	opt   *optimizer.Optimizer
}

// NewServer builds the warehouse and starts serving. Close it when done.
func (d *Design) NewServer(opts ServeOptions) (*Server, error) {
	if d.catalog == nil {
		return nil, fmt.Errorf("mvpp: design has no catalog attached")
	}
	scale := opts.Scale
	if scale <= 0 {
		scale = 0.01
	}
	observer := opts.Observer
	if observer == nil {
		observer = d.obsv
	}
	if observer == nil && opts.TelemetryAddr != "" {
		// The telemetry plane serves the registry's counters and gauges;
		// with no observer configured anywhere, give it a metrics-only one
		// so /metrics is populated instead of empty.
		observer = obs.MetricsOnly(nil)
	}

	defaultPolicy, err := serve.ParsePolicy(opts.DefaultPolicy)
	if err != nil {
		return nil, fmt.Errorf("mvpp: default policy: %w", err)
	}

	// Assemble the design's views once for both recovery and the serving
	// layer; vertex order is topological, so views over views compose.
	// Per-view refresh policies resolve ServeOptions.Policies over the
	// design's SetRefreshPolicy tags over DefaultPolicy.
	var viewDefs []snapshot.ViewDef
	var views []serve.ViewSpec
	for _, v := range d.mvpp.Vertices {
		if !d.selection.Materialized[v.ID] {
			continue
		}
		spec := opts.Policies[v.Name]
		if spec == "" {
			spec = d.policies[v.Name]
		}
		policy, err := serve.ParsePolicy(spec)
		if err != nil {
			return nil, fmt.Errorf("mvpp: policy of %s: %w", v.Name, err)
		}
		if spec == "" {
			policy = RefreshPolicy{} // zero → serve's DefaultPolicy
		}
		viewDefs = append(viewDefs, snapshot.ViewDef{Name: v.Name, Plan: v.Op, Policy: spec})
		views = append(views, serve.ViewSpec{
			Name:     v.Name,
			Strategy: d.selection.Plans[v.Name],
			Policy:   policy,
			SLO:      opts.SLOs[v.Name],
		})
	}

	var snapStore *snapshot.Store
	if opts.SnapshotDir != "" {
		st, err := snapshot.Open(opts.SnapshotDir)
		if err != nil {
			return nil, fmt.Errorf("mvpp: opening snapshot store: %w", err)
		}
		st.SetObserver(observer)
		if opts.Injector != nil {
			opts.Injector.SetObserver(observer)
			st.SetInjector(opts.Injector)
		}
		snapStore = st
	}

	// Boot the database: from the newest consistent snapshot when one is
	// armed and usable, otherwise by generating synthetic data and
	// recomputing every view (exactly the snapshotless path).
	cold := func() (*engine.DB, error) { return d.buildSyntheticDB(scale, opts.Seed) }
	prep := func(db *engine.DB) {
		if opts.RowExec {
			db.SetExecMode(engine.ExecRow)
		}
		db.SetObserver(observer)
		if opts.Injector != nil {
			opts.Injector.SetObserver(observer)
			db.SetInjector(opts.Injector)
		}
		if snapStore != nil {
			db.SetSnapshotStore(snapStore)
		}
	}
	db, recovery, err := snapshot.Recover(snapStore, cold, prep, viewDefs, d.catalog.inner.Relations(), engine.DefaultBlockRows)
	if err != nil {
		return nil, fmt.Errorf("mvpp: %w", err)
	}
	if snapStore == nil {
		// Without a store there is no watermark to resume from; the serving
		// layer keeps its legacy full-journal replay.
		recovery = nil
	}

	queries := make([]serve.QuerySpec, 0, len(d.queries))
	for _, q := range d.queries {
		root, ok := d.mvpp.Roots[q.Name]
		if !ok {
			return nil, fmt.Errorf("mvpp: query %s has no root in the MVPP", q.Name)
		}
		queries = append(queries, serve.QuerySpec{Name: q.Name, Plan: root.Op, Frequency: q.Frequency})
	}

	journal := opts.Journal
	var ownedJournal DeltaJournal
	if opts.JournalPath != "" {
		if journal != nil {
			return nil, fmt.Errorf("mvpp: Journal and JournalPath are mutually exclusive")
		}
		fj, err := engine.OpenFileJournal(opts.JournalPath)
		if err != nil {
			return nil, fmt.Errorf("mvpp: opening delta journal: %w", err)
		}
		if opts.Injector != nil {
			fj.SetInjector(opts.Injector)
		}
		journal = fj
		ownedJournal = fj
	}

	sampleEvery := opts.TraceSampleEvery
	if sampleEvery == 0 && opts.TelemetryAddr != "" {
		sampleEvery = defaultTraceSample
	}
	if sampleEvery < 0 {
		sampleEvery = 0
	}
	flightDir := opts.FlightDir
	if flightDir == "" {
		flightDir = os.Getenv("MVPP_FLIGHT_DIR")
	}

	var ledger *costaudit.Ledger
	if !opts.CostAudit.Disable {
		ledger = costaudit.NewLedger(costaudit.Config{
			Alpha:      opts.CostAudit.Alpha,
			DriftBound: opts.CostAudit.DriftBound,
			MinSamples: opts.CostAudit.MinSamples,
		})
	}

	inner, err := serve.New(serve.Config{
		DB:                  db,
		Queries:             queries,
		Views:               views,
		MVPP:                d.mvpp,
		Model:               d.model,
		Workers:             opts.Workers,
		QueueDepth:          opts.QueueDepth,
		CacheCapacity:       opts.CacheCapacity,
		DeltaBatch:          opts.DeltaBatch,
		RefreshInterval:     opts.RefreshInterval,
		Retry:               opts.Retry,
		Breaker:             opts.Breaker,
		DefaultPolicy:       defaultPolicy,
		DefaultSLO:          opts.DefaultSLO,
		Ingest:              opts.Ingest,
		Injector:            opts.Injector,
		Journal:             journal,
		Snapshots:           snapStore,
		SnapshotEveryEpochs: opts.SnapshotEveryEpochs,
		SnapshotInterval:    opts.SnapshotInterval,
		SnapshotRetain:      opts.SnapshotRetain,
		Recovery:            recovery,
		TraceSampleEvery:    sampleEvery,
		FlightDir:           flightDir,
		FlightRecorderSize:  opts.FlightRecorderSize,
		Obs:                 observer,
		Audit:               ledger,
		AuditAutoApply:      opts.CostAudit.AutoApply,
		AuditSkew:           opts.CostAudit.SkewPredictions,
		AuditSkewViews:      opts.CostAudit.SkewViews,
	})
	if err != nil {
		if ownedJournal != nil {
			ownedJournal.Close()
		}
		return nil, fmt.Errorf("mvpp: %w", err)
	}

	var tele *telemetry.Server
	if opts.TelemetryAddr != "" {
		tele, err = telemetry.Serve(telemetry.Config{
			Addr:     opts.TelemetryAddr,
			Registry: obs.RegistryOf(observer),
			Source:   inner,
		})
		if err != nil {
			inner.Close()
			if ownedJournal != nil {
				ownedJournal.Close()
			}
			return nil, fmt.Errorf("mvpp: %w", err)
		}
	}

	est := cost.NewEstimator(d.catalog.inner, cost.DefaultOptions())
	est.Instrument(obs.RegistryOf(observer))
	s := &Server{
		d:       d,
		db:      db,
		inner:   inner,
		scale:   scale,
		journal: ownedJournal,
		tele:    tele,
		opt:     optimizer.New(est, d.model, optimizer.Options{}),
	}
	s.seed.Store(opts.Seed + 1)
	return s, nil
}

// Query answers one named workload query.
func (s *Server) Query(ctx context.Context, name string) (*QueryResult, error) {
	res, err := s.inner.Query(ctx, name)
	if err != nil {
		return nil, err
	}
	return wrapResult(res), nil
}

// QuerySQL plans and answers an ad-hoc SQL query against the design's
// catalog. Like named queries it runs through the router and profits from
// the materialized views (including predicate subsumption) and the result
// cache; unlike them it does not count toward the advisor's observed
// frequencies.
func (s *Server) QuerySQL(ctx context.Context, sql string) (*QueryResult, error) {
	s.sqlMu.Lock()
	bound, err := sqlparse.BindQuery(s.d.catalog.inner, "adhoc", sql)
	if err != nil {
		s.sqlMu.Unlock()
		return nil, fmt.Errorf("mvpp: %w", err)
	}
	plan, _, err := s.opt.Optimize(bound)
	s.sqlMu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("mvpp: %w", err)
	}
	res, err := s.inner.Submit(ctx, plan)
	if err != nil {
		return nil, err
	}
	return wrapResult(res), nil
}

func wrapResult(res *serve.Result) *QueryResult {
	return &QueryResult{
		Reads:    res.Reads,
		Cached:   res.Cached,
		Degraded: res.Degraded,
		Epoch:    res.Epoch,
		Latency:  res.Latency,
		table:    res.Table,
	}
}

// InjectDeltas generates one epoch's worth of synthetic base-table inserts
// (about fraction·rows per table, from the same generators as the initial
// data) and ingests them into the maintenance scheduler. Returns how many
// rows were ingested. The rows become visible when the next maintenance
// epoch lands (batch filled, timer, or Flush).
func (s *Server) InjectDeltas(fraction float64) (int, error) {
	if fraction <= 0 {
		return 0, fmt.Errorf("mvpp: delta fraction must be positive")
	}
	seed := s.seed.Add(1)
	rows, total, err := s.d.syntheticDeltaRows(s.db, s.scale, fraction, seed)
	if err != nil {
		return 0, err
	}
	for _, name := range s.d.catalog.inner.Relations() {
		if len(rows[name]) == 0 {
			continue
		}
		if err := s.inner.Ingest(name, rows[name]...); err != nil {
			return 0, err
		}
	}
	return total, nil
}

// StreamDeltas generates one epoch's worth of synthetic base-table inserts
// (like InjectDeltas) but pushes them through the CDC streaming-ingest
// path: each table's rows enter the bounded change feed, group-commit into
// the journal, and return only once durable. Returns how many rows were
// accepted; under sustained overload the feed sheds with ErrBackpressure
// (check errors.Is) and reports the rows accepted before the shed.
func (s *Server) StreamDeltas(fraction float64) (int, error) {
	if fraction <= 0 {
		return 0, fmt.Errorf("mvpp: delta fraction must be positive")
	}
	seed := s.seed.Add(1)
	rows, _, err := s.d.syntheticDeltaRows(s.db, s.scale, fraction, seed)
	if err != nil {
		return 0, err
	}
	accepted := 0
	for _, name := range s.d.catalog.inner.Relations() {
		if len(rows[name]) == 0 {
			continue
		}
		if err := s.inner.StreamIngest(name, rows[name]...); err != nil {
			return accepted, err
		}
		accepted += len(rows[name])
	}
	return accepted, nil
}

// RefreshView forces one maintenance refresh of the named view now,
// regardless of its refresh policy — the way manual-policy views are
// brought up to date.
func (s *Server) RefreshView(name string) error { return s.inner.RefreshView(name) }

// RefreshAllViews forces a full refresh of every maintained view now,
// regardless of policy.
func (s *Server) RefreshAllViews() error { return s.inner.RefreshAllViews() }

// IngestWatermarks reports the CDC change feed's monotone watermarks: the
// last batch sequence accepted into the feed and the last one
// group-committed (journaled and staged). Equal watermarks mean nothing is
// in flight.
func (s *Server) IngestWatermarks() (accepted, committed uint64) {
	return s.inner.IngestWatermarks()
}

// Flush synchronously runs one maintenance epoch over everything ingested
// so far.
func (s *Server) Flush() error { return s.inner.Flush() }

// Epoch returns the current refresh epoch.
func (s *Server) Epoch() uint64 { return s.inner.Epoch() }

// Views returns the currently materialized view names, sorted.
func (s *Server) Views() []string { return s.inner.Views() }

// Staleness reports each maintained view's lag behind ingested deltas.
func (s *Server) Staleness() map[string]ViewStaleness { return s.inner.Staleness() }

// Health reports each maintained view's fault-tolerance status: circuit
// breaker position, consecutive refresh failures, unreflected lag, and
// whether its queries are currently degraded to base relations.
func (s *Server) Health() map[string]ViewHealth { return s.inner.Health() }

// Stats snapshots the serving counters (throughput, cache hit rate,
// latency quantiles, maintenance work).
func (s *Server) Stats() ServeStats { return s.inner.Stats() }

// Checkpoint persists a consistent snapshot generation now: every base
// table plus every healthy, fully-caught-up view, stamped with the
// journal watermark of the last landed epoch, then compacts the delta
// journal and ages out old generations. Returns (nil, nil) when the
// warehouse is mid-epoch — the next trigger after the epoch lands will
// succeed. Errors with serve.ErrNoSnapshots when SnapshotDir was not set.
func (s *Server) Checkpoint() (*CheckpointResult, error) { return s.inner.Checkpoint() }

// SnapshotStats reports the durable-snapshot plane's state: last
// checkpoint, per-view segment status, and the recovery that booted this
// server (nil Recovery when SnapshotDir was not set).
func (s *Server) SnapshotStats() SnapshotStats { return s.inner.SnapshotStats() }

// ObservedFrequencies returns the per-query frequencies the server has
// observed, scaled to the design-time workload volume.
func (s *Server) ObservedFrequencies() map[string]float64 {
	return s.inner.ObservedFrequencies()
}

// Advise re-runs the paper's view selection under the observed query
// frequencies and reports what should change.
func (s *Server) Advise() (*Advice, error) { return s.inner.Advise() }

// AdviseCalibrated re-runs the selection with the observed frequencies
// recalibrated by the cost ledger's per-query calibration ratios, so the
// Figure 9 weights approximate measured rather than predicted cost.
func (s *Server) AdviseCalibrated() (*Advice, error) { return s.inner.AdviseCalibrated() }

// ApplyAdvice hot-swaps the advised view set into the running warehouse.
func (s *Server) ApplyAdvice(a *Advice) error { return s.inner.ApplyAdvice(a) }

// CostReport snapshots the cost-accountability ledger: per query class and
// per view, the §4.1 predicted block cost, last and mean measured actuals,
// the EWMA calibration ratio, sample count, and drift flag. Empty when
// auditing is disabled.
func (s *Server) CostReport() CostReport { return s.inner.CostReport() }

// Explain renders the named workload query's plan as the server would run
// it right now — rewritten over the materialized views — priced per
// operator and annotated with the ledger's observed actuals.
func (s *Server) Explain(name string) (string, error) { return s.inner.Explain(name) }

// LastRecalibration returns the advice produced by the most recent
// drift-triggered re-selection, or nil if no drift has fired.
func (s *Server) LastRecalibration() *Advice { return s.inner.LastRecalibration() }

// Close stops the server. It is idempotent and safe to race with queries
// and ingestion: in-flight work is answered with ErrServerClosed. Pending
// ingested deltas are not flushed (call Flush first if they must land) but
// journaled deltas survive — a new server over the same journal replays
// them.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		// Serving layer first: from this instant /healthz answers "closed".
		// The telemetry listener stops next, so a scrape racing the close
		// gets the closed answer rather than a hung or reset connection;
		// the journal last, once nothing can append to it.
		s.closeErr = s.inner.Close()
		if s.tele != nil {
			if err := s.tele.Close(); s.closeErr == nil {
				s.closeErr = err
			}
		}
		if s.journal != nil {
			if err := s.journal.Close(); s.closeErr == nil {
				s.closeErr = err
			}
		}
	})
	return s.closeErr
}

// TelemetryAddr returns the telemetry plane's bound listen address (with
// the real port when ServeOptions asked for ":0"), or "" when telemetry is
// off.
func (s *Server) TelemetryAddr() string {
	if s.tele == nil {
		return ""
	}
	return s.tele.Addr()
}

// RecentTraces returns the sampled query traces currently in the /traces
// ring, oldest first — nil when trace sampling is off.
func (s *Server) RecentTraces() []QueryTrace { return s.inner.RecentTraces() }

// Lineage returns every maintained view's refresh lineage: the recent
// epochs, journal LSN ranges, and refresh modes that produced its current
// contents, plus a live fingerprint of those contents. Also served as
// JSON on the telemetry plane's /lineage endpoint.
func (s *Server) Lineage() map[string]ViewLineage { return s.inner.Lineage() }

// FlightDumps returns the retained flight-recorder dumps, oldest first —
// nil when the flight recorder is off (neither trace sampling nor
// FlightDir armed it). Also served on the telemetry plane's /flight
// endpoint.
func (s *Server) FlightDumps() []FlightDump { return s.inner.FlightDumps() }

// LatencyExemplars returns the current latency-histogram exemplars: for
// each serve-latency bucket, a recent sampled trace whose latency landed
// in it. Rendered as OpenMetrics exemplars on /metrics.
func (s *Server) LatencyExemplars() []LatencyExemplar { return s.inner.LatencyExemplars() }
