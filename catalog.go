// Package mvpp is a materialized-view design toolkit for data warehouses,
// implementing the MVPP (Multiple View Processing Plan) framework of
// J. Yang, K. Karlapalem and Q. Li, "A Framework for Designing Materialized
// Views in Data Warehousing Environment" (ICDCS 1997).
//
// Given the statistics of a set of base relations (with update
// frequencies) and a set of frequently asked SPJ queries (with access
// frequencies), the toolkit:
//
//  1. optimizes each query individually (join-order dynamic programming
//     under a block-access cost model);
//  2. merges the optimal plans into candidate MVPP DAGs, sharing common
//     subexpressions, rotating the merge seed, and pushing common
//     selections and projections down (the paper's Figure 4 algorithm);
//  3. selects the set of intermediate results to materialize so that
//     total cost — frequency-weighted query processing plus
//     frequency-weighted view maintenance — is minimized (the paper's
//     Figure 9 greedy heuristic, with an exhaustive-search option);
//  4. reports the design: chosen views, per-query and per-view costs,
//     ASCII and Graphviz renderings, and baseline comparisons.
//
// The minimal flow:
//
//	cat := mvpp.NewCatalog()
//	_ = cat.AddTable("Division", []mvpp.Column{
//	    {Name: "Did", Type: mvpp.Int}, {Name: "city", Type: mvpp.String},
//	}, mvpp.TableStats{Rows: 5000, Blocks: 500, UpdateFrequency: 1,
//	    DistinctValues: map[string]float64{"Did": 5000, "city": 50}})
//	// ... more tables ...
//	d := mvpp.NewDesigner(cat, mvpp.Options{})
//	_ = d.AddQuery("Q1", `SELECT ... FROM ... WHERE ...`, 10)
//	design, _ := d.Design()
//	fmt.Println(design.Report())
package mvpp

import (
	"fmt"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/catalog"
	"github.com/warehousekit/mvpp/internal/sqlparse"
)

// Type is a column type.
type Type int

// Column types.
const (
	Int Type = iota + 1
	Float
	String
	Date
)

func (t Type) internal() (algebra.Type, error) {
	switch t {
	case Int:
		return algebra.TypeInt, nil
	case Float:
		return algebra.TypeFloat, nil
	case String:
		return algebra.TypeString, nil
	case Date:
		return algebra.TypeDate, nil
	default:
		return 0, fmt.Errorf("mvpp: unknown column type %d", int(t))
	}
}

// Column declares one attribute of a table.
type Column struct {
	Name string
	Type Type
}

// TableStats carries the statistics the cost model needs for one table.
type TableStats struct {
	// Rows is the table cardinality.
	Rows float64
	// Blocks is the table's size in disk blocks.
	Blocks float64
	// UpdateFrequency is how many times per costing period the table is
	// updated (the paper's fu).
	UpdateFrequency float64
	// DistinctValues maps column name to its number of distinct values,
	// used for equality and join selectivities. Optional.
	DistinctValues map[string]float64
	// IntRanges maps column name to [min, max] bounds for range-predicate
	// interpolation. Optional.
	IntRanges map[string][2]int64
}

// Catalog holds table definitions and statistics.
type Catalog struct {
	inner *catalog.Catalog
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{inner: catalog.New()}
}

// AddTable registers a table with its schema and statistics.
func (c *Catalog) AddTable(name string, cols []Column, stats TableStats) error {
	if len(cols) == 0 {
		return fmt.Errorf("mvpp: table %s has no columns", name)
	}
	acols := make([]algebra.Column, len(cols))
	for i, col := range cols {
		at, err := col.Type.internal()
		if err != nil {
			return fmt.Errorf("mvpp: table %s column %s: %w", name, col.Name, err)
		}
		acols[i] = algebra.Column{Relation: name, Name: col.Name, Type: at}
	}
	attrs := make(map[string]catalog.AttrStats)
	for col, ndv := range stats.DistinctValues {
		a := attrs[col]
		a.DistinctValues = ndv
		attrs[col] = a
	}
	for col, r := range stats.IntRanges {
		a := attrs[col]
		a.Min = algebra.IntVal(r[0])
		a.Max = algebra.IntVal(r[1])
		attrs[col] = a
	}
	return c.inner.AddRelation(&catalog.Relation{
		Name:            name,
		Schema:          algebra.NewSchema(acols...),
		Rows:            stats.Rows,
		Blocks:          stats.Blocks,
		UpdateFrequency: stats.UpdateFrequency,
		Attrs:           attrs,
	})
}

// Tables returns the registered table names in registration order.
func (c *Catalog) Tables() []string { return c.inner.Relations() }

// PinSelectivity fixes the selectivity of a condition written in SQL (e.g.
// `city = 'LA'`), resolved against the listed tables. Pinned values
// override statistics-derived estimates.
func (c *Catalog) PinSelectivity(cond string, s float64, tables ...string) error {
	pred, err := sqlparse.ParseCondition(c.inner, tables, cond)
	if err != nil {
		return fmt.Errorf("mvpp: %w", err)
	}
	return c.inner.SetPredicateSelectivity(pred, s)
}

// PinJoinSize fixes the size of any join result covering exactly the given
// tables (used by paper-faithful reproductions; most designs rely on
// statistics instead).
func (c *Catalog) PinJoinSize(tables []string, rows, blocks float64) error {
	return c.inner.PinJoinSize(tables, catalog.JoinSize{Rows: rows, Blocks: blocks})
}
