package mvpp_test

import (
	"fmt"
	"math/rand"
	"testing"

	mvpp "github.com/warehousekit/mvpp"
)

// randomDesigner builds a three-table workload whose statistics and
// frequencies are drawn from the seed, exercising the facade the way a
// caller with an arbitrary warehouse would.
func randomDesigner(t testing.TB, seed int64, opts mvpp.Options) *mvpp.Designer {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	fail := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	cat := mvpp.NewCatalog()
	factRows := float64(20_000 + r.Intn(200_000))
	fail(cat.AddTable("Fact", []mvpp.Column{
		{Name: "fk1", Type: mvpp.Int},
		{Name: "fk2", Type: mvpp.Int},
		{Name: "v", Type: mvpp.Int},
	}, mvpp.TableStats{Rows: factRows, Blocks: factRows / 10,
		UpdateFrequency: 0.5 + 20*r.Float64(),
		DistinctValues:  map[string]float64{"fk1": 200, "fk2": 500},
		IntRanges:       map[string][2]int64{"v": {1, 1000}}}))
	fail(cat.AddTable("DimA", []mvpp.Column{
		{Name: "fk1", Type: mvpp.Int},
		{Name: "label", Type: mvpp.String},
	}, mvpp.TableStats{Rows: 200, Blocks: 20, UpdateFrequency: 0.1 + 2*r.Float64(),
		DistinctValues: map[string]float64{"fk1": 200, "label": 10}}))
	fail(cat.AddTable("DimB", []mvpp.Column{
		{Name: "fk2", Type: mvpp.Int},
		{Name: "label", Type: mvpp.String},
	}, mvpp.TableStats{Rows: 500, Blocks: 50, UpdateFrequency: 0.1 + 2*r.Float64(),
		DistinctValues: map[string]float64{"fk2": 500, "label": 25}}))

	d := mvpp.NewDesigner(cat, opts)
	freq := func() float64 { return float64(1 + r.Intn(40)) }
	fail(d.AddQuery("qa",
		`SELECT DimA.label, v FROM Fact, DimA
		 WHERE DimA.label = 'label-3' AND Fact.fk1 = DimA.fk1`, freq()))
	fail(d.AddQuery("qb",
		`SELECT DimB.label, v FROM Fact, DimB
		 WHERE v > 900 AND Fact.fk2 = DimB.fk2`, freq()))
	fail(d.AddQuery("qc",
		`SELECT DimA.label, DimB.label FROM Fact, DimA, DimB
		 WHERE DimA.label = 'label-3' AND Fact.fk1 = DimA.fk1 AND Fact.fk2 = DimB.fk2`, freq()))
	return d
}

// TestDesignNeverWorseThanBaselines: through the public API, on randomized
// workloads, with and without incremental maintenance pricing, the design
// never costs more than materializing nothing or everything.
func TestDesignNeverWorseThanBaselines(t *testing.T) {
	for _, delta := range []*mvpp.DeltaOptions{nil, {DefaultFraction: 0.02}} {
		for seed := int64(1); seed <= 6; seed++ {
			t.Run(fmt.Sprintf("seed%d_delta%v", seed, delta != nil), func(t *testing.T) {
				d := randomDesigner(t, seed, mvpp.Options{Delta: delta})
				design, err := d.Design()
				if err != nil {
					t.Fatal(err)
				}
				c := design.Costs()
				if c.TotalCost > c.AllVirtualTotal+1e-9 {
					t.Errorf("design %v worse than all-virtual %v", c.TotalCost, c.AllVirtualTotal)
				}
				if c.TotalCost > c.AllMaterializedTotal+1e-9 {
					t.Errorf("design %v worse than all-materialized %v", c.TotalCost, c.AllMaterializedTotal)
				}
				for _, v := range design.Views() {
					if v.MaintenanceStrategy != "recompute" && v.MaintenanceStrategy != "incremental" {
						t.Errorf("view %s: bad maintenance strategy %q", v.Name, v.MaintenanceStrategy)
					}
					if delta == nil && v.MaintenanceStrategy == "incremental" {
						t.Errorf("view %s: incremental strategy without delta pricing", v.Name)
					}
				}
			})
		}
	}
}

// updateHeavyDesigner is a workload dominated by base-table inserts: under
// recompute-only maintenance the views are barely worth keeping.
func updateHeavyDesigner(t testing.TB, opts mvpp.Options) *mvpp.Designer {
	t.Helper()
	cat := mvpp.NewCatalog()
	fail := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	fail(cat.AddTable("Sale", []mvpp.Column{
		{Name: "sid", Type: mvpp.Int},
		{Name: "store_id", Type: mvpp.Int},
		{Name: "amount", Type: mvpp.Int},
	}, mvpp.TableStats{Rows: 120_000, Blocks: 12_000, UpdateFrequency: 60,
		DistinctValues: map[string]float64{"sid": 120_000, "store_id": 400},
		IntRanges:      map[string][2]int64{"amount": {1, 900}}}))
	fail(cat.AddTable("Store", []mvpp.Column{
		{Name: "store_id", Type: mvpp.Int},
		{Name: "name", Type: mvpp.String},
		{Name: "region", Type: mvpp.String},
	}, mvpp.TableStats{Rows: 400, Blocks: 40, UpdateFrequency: 2,
		DistinctValues: map[string]float64{"store_id": 400, "region": 8}}))
	d := mvpp.NewDesigner(cat, opts)
	fail(d.AddQuery("west_revenue",
		`SELECT Store.name, amount FROM Sale, Store
		 WHERE Store.region = 'West' AND Sale.store_id = Store.store_id`, 20))
	fail(d.AddQuery("west_big",
		`SELECT Store.name, amount FROM Sale, Store
		 WHERE Store.region = 'West' AND amount > 800 AND Sale.store_id = Store.store_id`, 10))
	return d
}

// TestIncrementalBeatsRecomputeOnUpdateHeavyWorkload is the PR's
// acceptance criterion: on an update-heavy workload, enabling incremental
// maintenance pricing yields a strictly cheaper design, and the winning
// views report the incremental strategy through every surface (Views,
// Export).
func TestIncrementalBeatsRecomputeOnUpdateHeavyWorkload(t *testing.T) {
	recompute, err := updateHeavyDesigner(t, mvpp.Options{}).Design()
	if err != nil {
		t.Fatal(err)
	}
	incremental, err := updateHeavyDesigner(t, mvpp.Options{
		Delta: &mvpp.DeltaOptions{DefaultFraction: 0.01},
	}).Design()
	if err != nil {
		t.Fatal(err)
	}
	rc, ic := recompute.Costs(), incremental.Costs()
	if ic.TotalCost >= rc.TotalCost {
		t.Fatalf("incremental-enabled total %v not strictly below recompute-only %v",
			ic.TotalCost, rc.TotalCost)
	}
	views := incremental.Views()
	if len(views) == 0 {
		t.Fatal("incremental design materialized nothing")
	}
	wins := 0
	for _, v := range views {
		if v.MaintenanceStrategy == "incremental" {
			wins++
		}
	}
	if wins == 0 {
		t.Error("no view won with the incremental strategy")
	}
	for _, ev := range incremental.Export().Vertices {
		if ev.Materialized && ev.MaintenanceStrategy == "" {
			t.Errorf("exported vertex %s: materialized but no maintenance strategy", ev.Name)
		}
		if !ev.Materialized && ev.MaintenanceStrategy != "" {
			t.Errorf("exported vertex %s: strategy %q on unmaterialized vertex", ev.Name, ev.MaintenanceStrategy)
		}
	}
}

// TestDeltaPerRelationOverrides: relation-specific fractions flow through
// Options.Delta. A spec with no nonzero fraction carries no delta
// information and must leave the recompute-only pricing untouched, while a
// single per-relation override is enough to enable incremental wins.
func TestDeltaPerRelationOverrides(t *testing.T) {
	zero, err := updateHeavyDesigner(t, mvpp.Options{
		Delta: &mvpp.DeltaOptions{DefaultFraction: 0},
	}).Design()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range zero.Views() {
		if v.MaintenanceStrategy == "incremental" {
			t.Errorf("view %s won incrementally under an empty delta spec", v.Name)
		}
	}

	perRel, err := updateHeavyDesigner(t, mvpp.Options{
		Delta: &mvpp.DeltaOptions{
			DefaultFraction: 0,
			PerRelation:     map[string]float64{"Sale": 0.01, "Store": 0.01},
		},
	}).Design()
	if err != nil {
		t.Fatal(err)
	}
	wins := 0
	for _, v := range perRel.Views() {
		if v.MaintenanceStrategy == "incremental" {
			wins++
		}
	}
	if wins == 0 {
		t.Error("per-relation fractions produced no incremental win on the update-heavy workload")
	}
}
