package mvpp_test

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"

	mvpp "github.com/warehousekit/mvpp"
	"github.com/warehousekit/mvpp/internal/telemetry"
)

// auditEpoch drives one epoch of traffic: every workload query executes at
// least once against a cold cache (the flush that ends the epoch
// invalidates cached results), then deltas land and the views refresh.
func auditEpoch(t *testing.T, design *mvpp.Design, srv *mvpp.Server, fraction float64) {
	t.Helper()
	ctx := context.Background()
	for _, q := range design.Queries() {
		if _, err := srv.Query(ctx, q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	if _, err := srv.InjectDeltas(fraction); err != nil {
		t.Fatal(err)
	}
	if err := srv.Flush(); err != nil {
		t.Fatal(err)
	}
}

// The pinned calibration band for view-refresh predictions on the paper
// workload. Originally [0.5, 2.0]; re-validated and tightened after the
// engine moved to vectorized batch execution — block I/O is
// executor-invariant (the batch-vs-row differential suite asserts the
// counters bit for bit), so the measured ratios did not move, and three
// epochs of EWMA smoothing keep them comfortably inside [0.6, 1.75].
const (
	calibBandLo = 0.6
	calibBandHi = 1.75
)

// TestCostAuditCalibrationBand is the accountability acceptance check: on
// the paper workload every materialized view's calibration ratio lands in
// the pinned band — the §4.1 predictions agree with the engine's measured
// block I/O — after one epoch of traffic, and the ledger's sample counts
// grow monotonically across epochs.
func TestCostAuditCalibrationBand(t *testing.T) {
	design, srv := paperServer(t, mvpp.ServeOptions{Scale: 0.05})

	auditEpoch(t, design, srv, 0.02)
	rep := srv.CostReport()
	if len(rep.Entries) == 0 {
		t.Fatal("cost ledger empty after an epoch of traffic")
	}
	views := 0
	samples := make(map[string]int64, len(rep.Entries))
	for _, e := range rep.Entries {
		t.Logf("%-10s %-8s predicted %8.1f  actual %6.0f  ratio %.3f  samples %d",
			e.Kind, e.Name, e.PredictedBlocks, e.LastActualBlocks, e.Ratio, e.Samples)
		if e.Samples == 0 {
			continue
		}
		samples[e.Kind+"/"+e.Name] = e.Samples
		if math.IsNaN(e.Ratio) || math.IsInf(e.Ratio, 0) || e.Ratio < 0 {
			t.Errorf("%s %s: calibration ratio %v not finite and non-negative", e.Kind, e.Name, e.Ratio)
		}
		if e.Kind == "query" {
			continue
		}
		views++
		// The acceptance band: view refresh predictions inside the pinned
		// calibration band after the first epoch.
		if e.Ratio < calibBandLo || e.Ratio > calibBandHi {
			t.Errorf("%s %s: calibration ratio %.3f outside [%g, %g] (predicted %.1f, actual %.0f)",
				e.Kind, e.Name, e.Ratio, calibBandLo, calibBandHi, e.PredictedBlocks, e.LastActualBlocks)
		}
	}
	if views == 0 {
		t.Fatal("no view refresh entries in the ledger")
	}

	// Two more epochs: sample counts only grow, ratios stay in band.
	auditEpoch(t, design, srv, 0.02)
	auditEpoch(t, design, srv, 0.02)
	for _, e := range srv.CostReport().Entries {
		if before, ok := samples[e.Kind+"/"+e.Name]; ok && e.Samples < before {
			t.Errorf("%s %s: samples shrank %d -> %d", e.Kind, e.Name, before, e.Samples)
		}
		if e.Samples > 0 && e.Kind != "query" && (e.Ratio < calibBandLo || e.Ratio > calibBandHi) {
			t.Errorf("%s %s: ratio %.3f left [%g, %g] after 3 epochs", e.Kind, e.Name, e.Ratio, calibBandLo, calibBandHi)
		}
		if e.Drifted {
			t.Errorf("%s %s: drifted on an un-skewed run (ratio %.3f)", e.Kind, e.Name, e.Ratio)
		}
	}
	if st := srv.Stats(); st.CostObservations == 0 {
		t.Error("Stats().CostObservations = 0 after three epochs")
	}
}

// TestCostAuditSkewTripsDriftAndRecalibration forces a cost-model skew —
// every prediction multiplied 8× — and checks the loop closes: the drift
// flag trips once enough samples accumulate, and the server re-runs the
// Figure 9 selection with recalibrated weights.
func TestCostAuditSkewTripsDriftAndRecalibration(t *testing.T) {
	design, srv := paperServer(t, mvpp.ServeOptions{
		Scale:     0.05,
		CostAudit: mvpp.CostAuditOptions{SkewPredictions: 8},
	})
	// MinSamples defaults to 3: three epochs of refreshes trip the flag.
	for i := 0; i < 4; i++ {
		auditEpoch(t, design, srv, 0.02)
	}
	rep := srv.CostReport()
	if rep.DriftedEntries == 0 {
		for _, e := range rep.Entries {
			t.Logf("%-10s %-8s ratio %.3f samples %d drifted %v", e.Kind, e.Name, e.Ratio, e.Samples, e.Drifted)
		}
		t.Fatal("8x-skewed predictions never tripped the drift flag")
	}
	st := srv.Stats()
	if st.CostDrifts == 0 {
		t.Error("Stats().CostDrifts = 0 despite drifted ledger entries")
	}
	if st.Recalibrations == 0 {
		t.Error("drift did not trigger an advisor recalibration")
	}
	if srv.LastRecalibration() == nil {
		t.Error("LastRecalibration() = nil after drift-triggered re-selection")
	}
}

// TestCostAuditDriftNamesOnlySkewedView is the drift-precision regression
// check: when the cost constants of exactly one view's refresh
// predictions move (an 8× per-view skew), the ledger must flag that view
// and nothing else — no collateral drift on the other views or on the
// query entries, whose constants did not change.
func TestCostAuditDriftNamesOnlySkewedView(t *testing.T) {
	design, err := paperDesigner(t, mvpp.Options{}).Design()
	if err != nil {
		t.Fatal(err)
	}
	views := design.Views()
	if len(views) < 2 {
		t.Skipf("need at least two materialized views to test drift precision, have %d", len(views))
	}
	skewed := views[0].Name
	srv, err := design.NewServer(mvpp.ServeOptions{
		Scale: 0.05,
		Seed:  7,
		CostAudit: mvpp.CostAuditOptions{
			SkewViews: map[string]float64{skewed: 8},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// MinSamples defaults to 3: four epochs give every refresh entry
	// enough observations to be eligible for the drift flag.
	for i := 0; i < 4; i++ {
		auditEpoch(t, design, srv, 0.02)
	}

	rep := srv.CostReport()
	sawSkewedDrift := false
	for _, e := range rep.Entries {
		isRefresh := e.Kind != "query"
		switch {
		case isRefresh && e.Name == skewed:
			if e.Samples > 0 && !e.Drifted {
				t.Errorf("%s %s: 8x-skewed constants never tripped drift (ratio %.3f, samples %d)",
					e.Kind, e.Name, e.Ratio, e.Samples)
			}
			sawSkewedDrift = sawSkewedDrift || e.Drifted
		case e.Drifted:
			t.Errorf("%s %s: drifted but its constants never moved (ratio %.3f)",
				e.Kind, e.Name, e.Ratio)
		}
	}
	if !sawSkewedDrift {
		t.Fatalf("no refresh entry for the skewed view %s was flagged", skewed)
	}
	if got := srv.Stats().CostDrifts; got == 0 {
		t.Error("Stats().CostDrifts = 0 despite the skewed view drifting")
	}
}

// TestCostAuditConcurrentWithScrapes races queries and maintenance against
// live /costmodel and /metrics scrapes — the ledger's locking discipline
// under the race detector — and parse-validates both endpoints.
func TestCostAuditConcurrentWithScrapes(t *testing.T) {
	design, srv := paperServer(t, mvpp.ServeOptions{TelemetryAddr: "127.0.0.1:0"})
	addr := srv.TelemetryAddr()
	ctx := context.Background()
	queries := design.Queries()

	get := func(path string) []byte {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Errorf("GET %s: %v", path, err)
			return nil
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Errorf("GET %s: %v", path, err)
			return nil
		}
		return body
	}

	const clients, rounds, scrapes = 4, 20, 10
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := srv.Query(ctx, queries[(c+i)%len(queries)]); err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if _, err := srv.InjectDeltas(0.01); err != nil {
				t.Error(err)
				return
			}
			if err := srv.Flush(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < scrapes; i++ {
			if body := get("/costmodel"); body != nil {
				var out struct {
					Entries []mvpp.CostEntry `json:"entries"`
				}
				if err := json.Unmarshal(body, &out); err != nil {
					t.Errorf("/costmodel did not parse: %v", err)
				}
			}
			if body := get("/metrics"); body != nil {
				if _, err := telemetry.ValidateExposition(body); err != nil {
					t.Errorf("/metrics invalid mid-load: %v", err)
				}
			}
		}
	}()
	wg.Wait()

	// After the load, the exposition carries the cost families.
	body := get("/metrics")
	for _, want := range []string{
		"mv_cost_predicted_blocks", "mv_cost_actual_blocks", "mv_cost_calibration_ratio",
		"go_goroutines ", "mvpp_build_info{",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q after load", want)
		}
	}
	var cm struct {
		Epoch   uint64           `json:"epoch"`
		Entries []mvpp.CostEntry `json:"entries"`
	}
	if err := json.Unmarshal(get("/costmodel"), &cm); err != nil {
		t.Fatal(err)
	}
	if len(cm.Entries) == 0 {
		t.Fatal("/costmodel empty after load")
	}
	for _, e := range cm.Entries {
		if e.Samples > 0 && (math.IsNaN(e.Ratio) || math.IsInf(e.Ratio, 0) || e.Ratio < 0) {
			t.Errorf("%s %s: ratio %v not finite and non-negative", e.Kind, e.Name, e.Ratio)
		}
	}
}
