package mvpp_test

import (
	"strings"
	"testing"

	mvpp "github.com/warehousekit/mvpp"
)

const catalogDoc = `{
  "tables": [
    {
      "name": "Division",
      "columns": [
        {"name": "Did", "type": "int"},
        {"name": "name", "type": "string"},
        {"name": "city", "type": "string"}
      ],
      "rows": 5000, "blocks": 500, "updateFrequency": 1,
      "distinctValues": {"Did": 5000, "city": 50}
    },
    {
      "name": "Product",
      "columns": [
        {"name": "Pid", "type": "int"},
        {"name": "name", "type": "string"},
        {"name": "Did", "type": "int"}
      ],
      "rows": 30000, "blocks": 3000, "updateFrequency": 1,
      "distinctValues": {"Pid": 30000, "Did": 5000}
    }
  ],
  "selectivities": [
    {"condition": "city = 'LA'", "tables": ["Division"], "value": 0.02}
  ],
  "joinSizes": [
    {"tables": ["Product", "Division"], "rows": 30000, "blocks": 5000}
  ]
}`

const workloadDoc = `{
  "queries": [
    {
      "name": "Q1",
      "sql": "SELECT Product.name FROM Product, Division WHERE Division.city = 'LA' AND Product.Did = Division.Did",
      "frequency": 10
    }
  ]
}`

func TestLoadCatalogAndWorkload(t *testing.T) {
	cat, err := mvpp.LoadCatalog(strings.NewReader(catalogDoc))
	if err != nil {
		t.Fatal(err)
	}
	if got := cat.Tables(); len(got) != 2 {
		t.Fatalf("tables = %v", got)
	}
	d, err := mvpp.LoadWorkload(strings.NewReader(workloadDoc), cat, mvpp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	design, err := d.Design()
	if err != nil {
		t.Fatal(err)
	}
	if design.Costs().TotalCost <= 0 {
		t.Error("design has no cost")
	}
}

func TestLoadCatalogErrors(t *testing.T) {
	tests := []struct {
		name, doc string
	}{
		{"invalid json", `{`},
		{"no tables", `{"tables": []}`},
		{"bad type", `{"tables": [{"name": "T", "columns": [{"name": "a", "type": "blob"}], "rows": 1, "blocks": 1}]}`},
		{"unknown field", `{"tablez": []}`},
		{"bad selectivity table", `{"tables": [{"name": "T", "columns": [{"name": "a", "type": "int"}], "rows": 1, "blocks": 1}],
			"selectivities": [{"condition": "a = 1", "tables": ["Ghost"], "value": 0.5}]}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := mvpp.LoadCatalog(strings.NewReader(tt.doc)); err == nil {
				t.Error("LoadCatalog succeeded")
			}
		})
	}
}

func TestLoadWorkloadErrors(t *testing.T) {
	cat, err := mvpp.LoadCatalog(strings.NewReader(catalogDoc))
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range []string{
		`{`,
		`{"queries": []}`,
		`{"queries": [{"name": "Q", "sql": "SELECT x FROM Ghost", "frequency": 1}]}`,
	} {
		if _, err := mvpp.LoadWorkload(strings.NewReader(doc), cat, mvpp.Options{}); err == nil {
			t.Errorf("LoadWorkload accepted %q", doc)
		}
	}
}
