package mvpp

import (
	"fmt"

	"github.com/warehousekit/mvpp/internal/core"
	"github.com/warehousekit/mvpp/internal/cost"
	"github.com/warehousekit/mvpp/internal/obs"
	"github.com/warehousekit/mvpp/internal/optimizer"
	"github.com/warehousekit/mvpp/internal/sqlparse"
)

// ModelKind selects the cost model.
type ModelKind int

// Cost models.
const (
	// ModelPaperNLJ is the paper's model: half-scan linear-search
	// selection, nested-loop join at blocks(outer)·blocks(inner) plus
	// output. The default.
	ModelPaperNLJ ModelKind = iota
	// ModelBlockNLJ is the textbook block nested-loop model.
	ModelBlockNLJ
	// ModelHashJoin prices joins as Grace hash joins.
	ModelHashJoin
	// ModelSortMerge prices joins as sort-merge joins.
	ModelSortMerge
)

func (k ModelKind) model() (cost.Model, error) {
	switch k {
	case ModelPaperNLJ:
		return &cost.PaperModel{}, nil
	case ModelBlockNLJ:
		return &cost.BlockNLJModel{}, nil
	case ModelHashJoin:
		return &cost.HashJoinModel{}, nil
	case ModelSortMerge:
		return &cost.SortMergeModel{}, nil
	default:
		return nil, fmt.Errorf("mvpp: unknown cost model %d", int(k))
	}
}

// Options configures the designer; the zero value follows the paper's
// algorithms with statistics-derived sizes.
type Options struct {
	// Model selects the cost model (default ModelPaperNLJ).
	Model ModelKind
	// PaperSizes pins join-result sizes to the catalog's PinJoinSize
	// entries, reproducing the paper's arithmetic.
	PaperSizes bool
	// Rotations limits how many merge-order rotations the MVPP generator
	// tries; 0 means one rotation per query (the paper's full rotation).
	Rotations int
	// PushDisjunctions pushes disjunctive filters onto shared scans when
	// queries restrict a relation differently.
	PushDisjunctions bool
	// PushProjections inserts column-pruning projections above scans.
	PushProjections bool
	// NoPushdown leaves all selections above the joins (diagnostic).
	NoPushdown bool
	// LeftDeepPlans restricts single-query optimization to left-deep join
	// trees.
	LeftDeepPlans bool
	// Exhaustive selects the materialized set by exhaustive search instead
	// of the Figure 9 heuristic (exponential; refused for large MVPPs).
	Exhaustive bool
	// DiscountedMaintenance improves the greedy heuristic's maintenance
	// term: a candidate's refresh is priced given the views already chosen
	// (the paper's formula always charges a full from-base recompute, which
	// undervalues summary tables stacked on materialized joins).
	DiscountedMaintenance bool
	// IndexedViews prices selective filters over materialized views as
	// index lookups instead of scans (§3.2's "we can establish a proper
	// index on it afterwards").
	IndexedViews bool
	// Delta enables incremental (delta-propagation) maintenance pricing:
	// each candidate view's maintenance cost becomes the cheaper of a full
	// recompute and propagating the configured per-relation insert deltas
	// through its plan. Nil — the default — keeps the paper's
	// recompute-only policy.
	Delta *DeltaOptions
	// Distribution places tables on remote sites; nil means co-located.
	Distribution *Distribution
	// Observer receives spans, events, and counters from the whole design
	// pipeline (see NewLogObserver, NewTraceRecorder, TeeObservers). Nil —
	// the default — disables instrumentation entirely: the pipeline then
	// pays only nil checks.
	Observer Observer
}

// DeltaOptions describes the insert volume of one maintenance epoch for
// incremental maintenance pricing: each base relation is expected to gain
// about fraction · rows new tuples per epoch.
type DeltaOptions struct {
	// DefaultFraction applies to every relation without a PerRelation
	// entry. A typical warehouse value is small, e.g. 0.01.
	DefaultFraction float64
	// PerRelation overrides the fraction per relation name.
	PerRelation map[string]float64
}

func (o *DeltaOptions) spec() *cost.DeltaSpec {
	if o == nil {
		return nil
	}
	return &cost.DeltaSpec{DefaultFraction: o.DefaultFraction, PerRelation: o.PerRelation}
}

// Distribution describes a distributed warehouse: base tables live on
// member sites and shipping one block to the warehouse costs
// BlockTransferCost.
type Distribution struct {
	// SiteOf maps table name to site name; unlisted tables are co-located
	// with the warehouse.
	SiteOf map[string]string
	// BlockTransferCost is the per-block shipping cost between any two
	// distinct sites.
	BlockTransferCost float64
}

// Query is one warehouse query with its access frequency.
type Query struct {
	Name      string
	SQL       string
	Frequency float64
}

// Designer accumulates a workload and produces a Design.
type Designer struct {
	cat     *Catalog
	opts    Options
	queries []Query
	// bound caches each query's parse-and-bind result from AddQuery, so
	// Design and Simulate never re-parse SQL already validated at
	// registration. bound[i] corresponds to queries[i].
	bound []*sqlparse.Query
}

// NewDesigner creates a designer over the catalog.
func NewDesigner(cat *Catalog, opts Options) *Designer {
	return &Designer{cat: cat, opts: opts}
}

// AddQuery registers a query. The SQL is parsed and bound immediately so
// errors surface at registration; the bound form is cached for Design.
func (d *Designer) AddQuery(name, sql string, frequency float64) error {
	if frequency < 0 {
		return fmt.Errorf("mvpp: query %s has negative frequency", name)
	}
	for _, q := range d.queries {
		if q.Name == name {
			return fmt.Errorf("mvpp: duplicate query name %q", name)
		}
	}
	bound, err := sqlparse.BindQuery(d.cat.inner, name, sql)
	if err != nil {
		return fmt.Errorf("mvpp: %w", err)
	}
	d.queries = append(d.queries, Query{Name: name, SQL: sql, Frequency: frequency})
	d.bound = append(d.bound, bound)
	return nil
}

// Queries returns the registered workload.
func (d *Designer) Queries() []Query {
	out := make([]Query, len(d.queries))
	copy(out, d.queries)
	return out
}

// Design runs the full pipeline: per-query optimization, multiple-MVPP
// generation, and view selection on every candidate; the best candidate
// becomes the design.
func (d *Designer) Design() (*Design, error) {
	if len(d.queries) == 0 {
		return nil, fmt.Errorf("mvpp: no queries registered")
	}
	model, err := d.opts.Model.model()
	if err != nil {
		return nil, err
	}
	dsp := obs.Start(d.opts.Observer, "design",
		obs.Int("queries", int64(len(d.queries))))
	defer obs.End(dsp)
	dobs := obs.From(dsp)

	estOpts := cost.DefaultOptions()
	if d.opts.PaperSizes {
		estOpts = cost.PaperOptions()
	}
	est := cost.NewEstimator(d.cat.inner, estOpts)
	est.Instrument(obs.RegistryOf(dobs))

	osp := obs.Start(dobs, "optimize")
	opt := optimizer.New(est, model, optimizer.Options{
		LeftDeepOnly: d.opts.LeftDeepPlans,
		Obs:          obs.From(osp),
	})
	plans := make([]core.QueryPlan, len(d.queries))
	for i, q := range d.queries {
		plan, _, err := opt.Optimize(d.bound[i])
		if err != nil {
			obs.End(osp)
			return nil, fmt.Errorf("mvpp: %w", err)
		}
		plans[i] = core.QueryPlan{Name: q.Name, Freq: q.Frequency, Plan: plan}
	}
	obs.End(osp)

	selOpts := core.SelectOptions{DiscountedMaintenance: d.opts.DiscountedMaintenance}
	cands, err := core.Generate(est, model, plans, core.GenOptions{
		MaxRotations:     d.opts.Rotations,
		PushDisjunctions: d.opts.PushDisjunctions,
		PushProjections:  d.opts.PushProjections,
		NoPushdown:       d.opts.NoPushdown,
		Delta:            d.opts.Delta.spec(),
		Select:           selOpts,
		Obs:              dobs,
	})
	if err != nil {
		return nil, fmt.Errorf("mvpp: %w", err)
	}

	// Apply the distribution (if any) to every candidate, then re-select on
	// the final cost structure.
	esp := obs.Start(dobs, "evaluate", obs.Int("candidates", int64(len(cands))))
	eobs := obs.From(esp)
	selOpts.Obs = eobs
	for _, c := range cands {
		c.MVPP.SetObserver(eobs)
		if d.opts.IndexedViews {
			c.MVPP.SetIndexedViews(true)
			// Re-select so the heuristic's evaluation sees indexed costs.
			c.Selection = c.MVPP.SelectViews(model, selOpts)
		}
		if d.opts.Distribution != nil {
			dist := core.Distribution{
				SiteOf:    d.opts.Distribution.SiteOf,
				Warehouse: "warehouse",
				CostPerBlock: func(_, _ string) float64 {
					return d.opts.Distribution.BlockTransferCost
				},
			}
			if err := c.MVPP.ApplyDistribution(dist); err != nil {
				obs.End(esp)
				return nil, fmt.Errorf("mvpp: %w", err)
			}
		}
		if d.opts.Exhaustive {
			opt, err := c.MVPP.ExhaustiveOptimal(model)
			if err != nil {
				obs.End(esp)
				return nil, fmt.Errorf("mvpp: %w", err)
			}
			c.Selection = &core.SelectionResult{
				Materialized: opt.Materialized,
				Costs:        opt.Costs,
				Plans:        c.MVPP.MaintenancePlans(opt.Materialized),
			}
		} else if d.opts.Distribution != nil {
			// Re-run the heuristic so its evaluation reflects transfer
			// costs.
			c.Selection = c.MVPP.SelectViews(model, selOpts)
		}
		safeguardSelection(c, model, eobs)
	}
	obs.End(esp)

	best := core.Best(cands)
	if dsp != nil {
		virtual := best.MVPP.AllVirtual(model)
		allMat := best.MVPP.AllQueriesMaterialized(model)
		dsp.Annotate(obs.Int("views", int64(len(best.Selection.Materialized))),
			obs.Float("total", best.Selection.Costs.Total))
		dsp.Event(obs.EvCosts,
			obs.Float("query_cost", best.Selection.Costs.Query),
			obs.Float("maintenance_cost", best.Selection.Costs.Maintenance),
			obs.Float("total", best.Selection.Costs.Total),
			obs.Float("all_virtual", virtual.Total),
			obs.Float("all_materialized", allMat.Total))
	}
	return &Design{
		mvpp:       best.MVPP,
		model:      model,
		selection:  best.Selection,
		candidates: cands,
		queries:    d.Queries(),
		bound:      append([]*sqlparse.Query(nil), d.bound...),
		catalog:    d.cat,
		obsv:       d.opts.Observer,
	}, nil
}

// safeguardSelection is an extension over the paper: the greedy Figure 9
// heuristic can underperform the trivial extremes on skewed workloads
// (e.g. materializing a huge shared unfiltered join), so the designer also
// prices "materialize nothing" and "materialize every query result" and
// keeps the cheapest. The selection trace records the substitution.
func safeguardSelection(c *core.Candidate, model cost.Model, o obs.Observer) {
	m := c.MVPP
	subs := obs.CounterOf(o, obs.CtrSafeguardSubs)
	type alt struct {
		name string
		mat  core.VertexSet
	}
	roots := make(core.VertexSet, len(m.Roots))
	for _, r := range m.Roots {
		roots[r.ID] = true
	}
	for _, a := range []alt{
		{"all-virtual", core.VertexSet{}},
		{"all-query-results", roots},
	} {
		costs := m.Evaluate(model, a.mat)
		if costs.Total < c.Selection.Costs.Total {
			subs.Add(1)
			obs.Emit(o, obs.EvSafeguard,
				obs.String("strategy", a.name),
				obs.Float("greedy_total", c.Selection.Costs.Total),
				obs.Float("baseline_total", costs.Total))
			c.Selection.Materialized = a.mat
			c.Selection.Costs = costs
			c.Selection.Plans = m.MaintenancePlans(a.mat)
			c.Selection.Trace = append(c.Selection.Trace, core.TraceStep{
				Vertex: "(design)",
				Action: core.ActionSafeguard,
				Note:   "baseline strategy " + a.name + " beat the greedy choice",
			})
		}
	}
}
