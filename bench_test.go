// Benchmarks regenerating the paper's evaluation artifacts (one per table
// and figure), plus the ablation and scaling studies DESIGN.md calls out.
// Cost results are attached as custom metrics (blocks-total etc.) so
// `go test -bench . -benchmem` reproduces the evaluation's numbers
// alongside the runtime of our implementations of the paper's algorithms.
package mvpp_test

import (
	"fmt"
	"testing"

	mvpp "github.com/warehousekit/mvpp"
	"github.com/warehousekit/mvpp/internal/core"
	"github.com/warehousekit/mvpp/internal/cost"
	"github.com/warehousekit/mvpp/internal/optimizer"
	"github.com/warehousekit/mvpp/internal/paper"
	"github.com/warehousekit/mvpp/internal/repro"
	"github.com/warehousekit/mvpp/internal/sqlparse"
	"github.com/warehousekit/mvpp/internal/workload"
)

// benchFigure3 builds the paper MVPP once per iteration set.
func benchFigure3(b *testing.B) (*core.MVPP, cost.Model) {
	b.Helper()
	m, model, err := repro.Figure3()
	if err != nil {
		b.Fatal(err)
	}
	return m, model
}

// BenchmarkTable1Catalog regenerates Table 1 (catalog construction with
// the paper's statistics).
func BenchmarkTable1Catalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := paper.NewCatalog(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Strategies regenerates Table 2: evaluating the paper's
// five materialization strategies on the Figure 3 MVPP.
func BenchmarkTable2Strategies(b *testing.B) {
	m, model := benchFigure3(b)
	var total float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ref := range repro.Table2Reference {
			if ref.Views == nil {
				total = m.AllVirtual(model).Total
				continue
			}
			c, err := m.EvaluateNames(model, ref.Views)
			if err != nil {
				b.Fatal(err)
			}
			total = c.Total
		}
	}
	b.ReportMetric(total, "blocks-last-total")
}

// BenchmarkFigure2Merge regenerates Figure 2: merging Q1 and Q2 on their
// common subexpression.
func BenchmarkFigure2Merge(b *testing.B) {
	ex, err := paper.Load()
	if err != nil {
		b.Fatal(err)
	}
	plans, err := paper.Figure3Plans(ex.Catalog)
	if err != nil {
		b.Fatal(err)
	}
	model := repro.Model()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est := cost.NewEstimator(ex.Catalog, cost.PaperOptions())
		builder := core.NewBuilder(est, model)
		for _, s := range plans[:2] {
			if err := builder.AddQuery(s.Name, s.Freq, s.Plan); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := builder.Build(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3MVPP regenerates Figure 3: building and annotating the
// full four-query MVPP.
func BenchmarkFigure3MVPP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := repro.Figure3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5IndividualPlans regenerates Figure 5: per-query optimal
// plans via join-order dynamic programming.
func BenchmarkFigure5IndividualPlans(b *testing.B) {
	ex, err := paper.Load()
	if err != nil {
		b.Fatal(err)
	}
	model := repro.Model()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est := cost.NewEstimator(ex.Catalog, cost.PaperOptions())
		opt := optimizer.New(est, model, optimizer.Options{})
		if _, _, err := opt.OptimizeAll(ex.Queries); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6Generation regenerates Figure 6: the rotation merge
// producing multiple MVPPs (Figure 4's algorithm).
func BenchmarkFigure6Generation(b *testing.B) {
	ex, err := paper.Load()
	if err != nil {
		b.Fatal(err)
	}
	est := cost.NewEstimator(ex.Catalog, cost.PaperOptions())
	model := repro.Model()
	opt := optimizer.New(est, model, optimizer.Options{})
	var plans []core.QueryPlan
	for _, q := range ex.Queries {
		p, _, err := opt.Optimize(q)
		if err != nil {
			b.Fatal(err)
		}
		plans = append(plans, core.QueryPlan{Name: q.Name, Freq: ex.Frequencies[q.Name], Plan: p})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Generate(est, model, plans, core.GenOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7and8Pushdown regenerates Figures 7–8: MVPP generation
// without and with selection/projection push-down.
func BenchmarkFigure7and8Pushdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := repro.Figure7and8(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure9Selection regenerates the Figure 9 heuristic's traced
// run on the paper MVPP.
func BenchmarkFigure9Selection(b *testing.B) {
	m, model := benchFigure3(b)
	var total float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := m.SelectViews(model, core.SelectOptions{})
		total = res.Costs.Total
	}
	b.ReportMetric(total, "blocks-total")
}

// BenchmarkExhaustiveSelection prices the 2^11 exhaustive search on the
// paper MVPP — the ground truth the heuristic is judged against.
func BenchmarkExhaustiveSelection(b *testing.B) {
	m, model := benchFigure3(b)
	var total float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := m.ExhaustiveOptimal(model)
		if err != nil {
			b.Fatal(err)
		}
		total = res.Costs.Total
	}
	b.ReportMetric(total, "blocks-total")
}

// BenchmarkHeuristicVsExhaustive reports the heuristic's quality gap
// (heuristic total / optimal total) as a metric while timing both.
func BenchmarkHeuristicVsExhaustive(b *testing.B) {
	m, model := benchFigure3(b)
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		heur := m.SelectViews(model, core.SelectOptions{})
		opt, err := m.ExhaustiveOptimal(model)
		if err != nil {
			b.Fatal(err)
		}
		ratio = heur.Costs.Total / opt.Costs.Total
	}
	b.ReportMetric(ratio, "heuristic/optimal")
}

// BenchmarkDesignEndToEnd times the whole public-API pipeline on the paper
// workload.
func BenchmarkDesignEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := benchPaperDesigner(b)
		if _, err := d.Design(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDesign times Design() alone (workload pre-bound) with no
// observer attached — the baseline the instrumentation overhead guard in
// observe_test.go and scripts/benchjson compare against.
func BenchmarkDesign(b *testing.B) {
	d := benchPaperDesigner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Design(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDesignObserved is BenchmarkDesignEndToEnd with a fresh trace
// recorder per iteration, to price the instrumented path (rebuilding per
// iteration keeps one recorder from accumulating every prior trace).
func BenchmarkDesignObserved(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := benchPaperDesignerOpts(b, mvpp.Options{Observer: mvpp.NewTraceRecorder(nil)})
		if _, err := d.Design(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDesignScaling grows the workload on a star schema — the
// scalability study the paper's future work calls for.
func BenchmarkDesignScaling(b *testing.B) {
	for _, n := range []int{2, 4, 8, 12, 16} {
		b.Run(fmt.Sprintf("queries=%d", n), func(b *testing.B) {
			spec := workload.DefaultStar(6)
			cat, err := workload.Star(spec)
			if err != nil {
				b.Fatal(err)
			}
			queries, err := workload.Queries(cat, spec, workload.DefaultQueries(spec), n, 7)
			if err != nil {
				b.Fatal(err)
			}
			freqs := workload.ZipfFrequencies(n, 1, 20)
			model := repro.Model()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				est := cost.NewEstimator(cat, cost.DefaultOptions())
				opt := optimizer.New(est, model, optimizer.Options{})
				plans := make([]core.QueryPlan, n)
				for j, q := range queries {
					p, _, err := opt.Optimize(q)
					if err != nil {
						b.Fatal(err)
					}
					plans[j] = core.QueryPlan{Name: q.Name, Freq: freqs[j], Plan: p}
				}
				cands, err := core.Generate(est, model, plans, core.GenOptions{MaxRotations: 3})
				if err != nil {
					b.Fatal(err)
				}
				core.Best(cands)
			}
		})
	}
}

// BenchmarkDesignScalingAggregates repeats the scaling study on a mixed
// detail/summary workload (40% aggregate queries).
func BenchmarkDesignScalingAggregates(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("queries=%d", n), func(b *testing.B) {
			spec := workload.DefaultStar(6)
			cat, err := workload.Star(spec)
			if err != nil {
				b.Fatal(err)
			}
			qs := workload.DefaultQueries(spec)
			qs.AggregateProb = 0.4
			queries, err := workload.Queries(cat, spec, qs, n, 23)
			if err != nil {
				b.Fatal(err)
			}
			freqs := workload.ZipfFrequencies(n, 1, 20)
			model := repro.Model()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				est := cost.NewEstimator(cat, cost.DefaultOptions())
				opt := optimizer.New(est, model, optimizer.Options{})
				plans := make([]core.QueryPlan, n)
				for j, q := range queries {
					p, _, err := opt.Optimize(q)
					if err != nil {
						b.Fatal(err)
					}
					plans[j] = core.QueryPlan{Name: q.Name, Freq: freqs[j], Plan: p}
				}
				cands, err := core.Generate(est, model, plans, core.GenOptions{MaxRotations: 3})
				if err != nil {
					b.Fatal(err)
				}
				core.Best(cands)
			}
		})
	}
}

// BenchmarkAblationJoinModel regenerates the design under each join cost
// model; the chosen-set total shows how much of the benefit is NLJ-bound.
func BenchmarkAblationJoinModel(b *testing.B) {
	for _, kind := range []struct {
		name  string
		model cost.Model
	}{
		{"paper-nlj", &cost.PaperModel{}},
		{"block-nlj", &cost.BlockNLJModel{}},
		{"hash-join", &cost.HashJoinModel{}},
		{"sort-merge", &cost.SortMergeModel{}},
	} {
		b.Run(kind.name, func(b *testing.B) {
			ex, err := paper.Load()
			if err != nil {
				b.Fatal(err)
			}
			plans, err := paper.Figure3Plans(ex.Catalog)
			if err != nil {
				b.Fatal(err)
			}
			var total float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				est := cost.NewEstimator(ex.Catalog, cost.PaperOptions())
				builder := core.NewBuilder(est, kind.model)
				for _, s := range plans {
					if err := builder.AddQuery(s.Name, s.Freq, s.Plan); err != nil {
						b.Fatal(err)
					}
				}
				m, err := builder.Build()
				if err != nil {
					b.Fatal(err)
				}
				res := m.SelectViews(kind.model, core.SelectOptions{})
				total = res.Costs.Total
			}
			b.ReportMetric(total, "blocks-total")
		})
	}
}

// BenchmarkAblationPruning contrasts the Figure 9 heuristic with and
// without step 7's same-branch pruning.
func BenchmarkAblationPruning(b *testing.B) {
	m, model := benchFigure3(b)
	for _, variant := range []struct {
		name string
		opts core.SelectOptions
	}{
		{"with-pruning", core.SelectOptions{}},
		{"no-pruning", core.SelectOptions{NoBranchPruning: true}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				res := m.SelectViews(model, variant.opts)
				total = res.Costs.Total
			}
			b.ReportMetric(total, "blocks-total")
		})
	}
}

// BenchmarkAblationSelection contrasts the paper's greedy heuristic, the
// discounted-maintenance extension, and the exhaustive optimum on a
// summary-table workload where the paper's Cs formula undervalues stacked
// materialization.
func BenchmarkAblationSelection(b *testing.B) {
	ex, err := paper.Load()
	if err != nil {
		b.Fatal(err)
	}
	est := cost.NewEstimator(ex.Catalog, cost.DefaultOptions())
	model := repro.Model()
	opt := optimizer.New(est, model, optimizer.Options{})
	sqls := map[string]struct {
		sql  string
		freq float64
	}{
		"citySales": {`SELECT Customer.city, SUM(quantity) AS total FROM Order, Customer
			WHERE Order.Cid = Customer.Cid GROUP BY Customer.city`, 20},
		"cityOrders": {`SELECT Customer.city, COUNT(*) AS n FROM Order, Customer
			WHERE Order.Cid = Customer.Cid GROUP BY Customer.city`, 10},
		"bigOrders": {`SELECT Customer.name, quantity FROM Order, Customer
			WHERE quantity > 100 AND Order.Cid = Customer.Cid`, 2},
	}
	var plans []core.QueryPlan
	for name, s := range sqls {
		q, err := sqlparse.BindQuery(ex.Catalog, name, s.sql)
		if err != nil {
			b.Fatal(err)
		}
		p, _, err := opt.Optimize(q)
		if err != nil {
			b.Fatal(err)
		}
		plans = append(plans, core.QueryPlan{Name: name, Freq: s.freq, Plan: p})
	}
	cands, err := core.Generate(est, model, plans, core.GenOptions{MaxRotations: 1})
	if err != nil {
		b.Fatal(err)
	}
	m := cands[0].MVPP

	b.Run("paper-greedy", func(b *testing.B) {
		var total float64
		for i := 0; i < b.N; i++ {
			total = m.SelectViews(model, core.SelectOptions{}).Costs.Total
		}
		b.ReportMetric(total, "blocks-total")
	})
	b.Run("discounted-maintenance", func(b *testing.B) {
		var total float64
		for i := 0; i < b.N; i++ {
			total = m.SelectViews(model, core.SelectOptions{DiscountedMaintenance: true}).Costs.Total
		}
		b.ReportMetric(total, "blocks-total")
	})
	b.Run("exhaustive", func(b *testing.B) {
		var total float64
		for i := 0; i < b.N; i++ {
			res, err := m.ExhaustiveOptimal(model)
			if err != nil {
				b.Fatal(err)
			}
			total = res.Costs.Total
		}
		b.ReportMetric(total, "blocks-total")
	})
}

// BenchmarkAblationRotation contrasts a single merge order with the full
// rotation of Figure 4 step 4.5.
func BenchmarkAblationRotation(b *testing.B) {
	ex, err := paper.Load()
	if err != nil {
		b.Fatal(err)
	}
	est := cost.NewEstimator(ex.Catalog, cost.PaperOptions())
	model := repro.Model()
	opt := optimizer.New(est, model, optimizer.Options{})
	var plans []core.QueryPlan
	for _, q := range ex.Queries {
		p, _, err := opt.Optimize(q)
		if err != nil {
			b.Fatal(err)
		}
		plans = append(plans, core.QueryPlan{Name: q.Name, Freq: ex.Frequencies[q.Name], Plan: p})
	}
	for _, variant := range []struct {
		name      string
		rotations int
	}{
		{"first-seed-only", 1},
		{"full-rotation", 0},
	} {
		b.Run(variant.name, func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				cands, err := core.Generate(est, model, plans, core.GenOptions{MaxRotations: variant.rotations})
				if err != nil {
					b.Fatal(err)
				}
				total = core.Best(cands).Selection.Costs.Total
			}
			b.ReportMetric(total, "blocks-total")
		})
	}
}

// BenchmarkAblationPushdown contrasts the push-down variants of Figure 4
// steps 5–6.
func BenchmarkAblationPushdown(b *testing.B) {
	ex, err := paper.Load()
	if err != nil {
		b.Fatal(err)
	}
	est := cost.NewEstimator(ex.Catalog, cost.PaperOptions())
	model := repro.Model()
	opt := optimizer.New(est, model, optimizer.Options{})
	var plans []core.QueryPlan
	for _, q := range ex.Queries {
		p, _, err := opt.Optimize(q)
		if err != nil {
			b.Fatal(err)
		}
		plans = append(plans, core.QueryPlan{Name: q.Name, Freq: ex.Frequencies[q.Name], Plan: p})
	}
	for _, variant := range []struct {
		name string
		opts core.GenOptions
	}{
		{"no-pushdown", core.GenOptions{NoPushdown: true}},
		{"common-only", core.GenOptions{}},
		{"disjunction+projection", core.GenOptions{PushDisjunctions: true, PushProjections: true}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				cands, err := core.Generate(est, model, plans, variant.opts)
				if err != nil {
					b.Fatal(err)
				}
				total = core.Best(cands).Selection.Costs.Total
			}
			b.ReportMetric(total, "blocks-total")
		})
	}
}

// BenchmarkAblationMaintenance contrasts the paper's recompute maintenance
// with the incremental-delta extension on the Figure 3 MVPP.
func BenchmarkAblationMaintenance(b *testing.B) {
	m, model := benchFigure3(b)
	mat, err := m.VertexByName("tmp2")
	if err != nil {
		b.Fatal(err)
	}
	tmp4, err := m.VertexByName("tmp4")
	if err != nil {
		b.Fatal(err)
	}
	set := core.NewVertexSet(mat, tmp4)
	b.Run("recompute", func(b *testing.B) {
		m.SetMaintenancePolicy(core.PolicyRecompute, 0)
		var maint float64
		for i := 0; i < b.N; i++ {
			maint = m.Evaluate(model, set).Maintenance
		}
		b.ReportMetric(maint, "blocks-maintenance")
	})
	for _, delta := range []float64{0.01, 0.1} {
		b.Run(fmt.Sprintf("incremental-delta=%g", delta), func(b *testing.B) {
			m.SetMaintenancePolicy(core.PolicyIncremental, delta)
			defer m.SetMaintenancePolicy(core.PolicyRecompute, 0)
			var maint float64
			for i := 0; i < b.N; i++ {
				maint = m.Evaluate(model, set).Maintenance
			}
			b.ReportMetric(maint, "blocks-maintenance")
		})
	}
}

// BenchmarkEngineSimulation times the end-to-end engine validation of a
// design (synthetic data, direct vs rewritten execution, refresh).
func BenchmarkEngineSimulation(b *testing.B) {
	d := benchPaperDesigner(b)
	design, err := d.Design()
	if err != nil {
		b.Fatal(err)
	}
	var speedup float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := design.Simulate(mvpp.SimOptions{Scale: 0.005, Seed: 11})
		if err != nil {
			b.Fatal(err)
		}
		speedup = sim.Speedup()
	}
	b.ReportMetric(speedup, "io-speedup")
}

// BenchmarkEngineSimulationRowExec is BenchmarkEngineSimulation pinned to
// the row-at-a-time reference executor — the denominator of the
// vectorization speedup scripts/benchjson reports. Block I/O (and so the
// io-speedup metric) is identical to the batch run by construction; only
// the wall-clock differs.
func BenchmarkEngineSimulationRowExec(b *testing.B) {
	d := benchPaperDesigner(b)
	design, err := d.Design()
	if err != nil {
		b.Fatal(err)
	}
	var speedup float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := design.Simulate(mvpp.SimOptions{Scale: 0.005, Seed: 11, RowExec: true})
		if err != nil {
			b.Fatal(err)
		}
		speedup = sim.Speedup()
	}
	b.ReportMetric(speedup, "io-speedup")
}

// BenchmarkSimulateDelta times the engine's delta-propagation maintenance
// path: one synthetic-insert epoch applied to every view incrementally. The
// reported metrics compare the measured incremental epoch against a full
// recompute epoch, so BENCH_design.json tracks the maintenance path too.
func BenchmarkSimulateDelta(b *testing.B) {
	d := benchPaperDesignerOpts(b, mvpp.Options{Delta: &mvpp.DeltaOptions{DefaultFraction: 0.01}})
	design, err := d.Design()
	if err != nil {
		b.Fatal(err)
	}
	var incIO, fullIO int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := design.Simulate(mvpp.SimOptions{Scale: 0.005, Seed: 11, DeltaFraction: 0.01})
		if err != nil {
			b.Fatal(err)
		}
		incIO, fullIO = sim.IncrementalRefreshIO, sim.RefreshIO
	}
	b.ReportMetric(float64(incIO), "blocks-incremental-epoch")
	b.ReportMetric(float64(fullIO), "blocks-recompute-epoch")
}

// BenchmarkSimulateDeltaRowExec is BenchmarkSimulateDelta on the row
// executor — the reference wall-clock for the delta-maintenance speedup.
func BenchmarkSimulateDeltaRowExec(b *testing.B) {
	d := benchPaperDesignerOpts(b, mvpp.Options{Delta: &mvpp.DeltaOptions{DefaultFraction: 0.01}})
	design, err := d.Design()
	if err != nil {
		b.Fatal(err)
	}
	var incIO, fullIO int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := design.Simulate(mvpp.SimOptions{Scale: 0.005, Seed: 11, DeltaFraction: 0.01, RowExec: true})
		if err != nil {
			b.Fatal(err)
		}
		incIO, fullIO = sim.IncrementalRefreshIO, sim.RefreshIO
	}
	b.ReportMetric(float64(incIO), "blocks-incremental-epoch")
	b.ReportMetric(float64(fullIO), "blocks-recompute-epoch")
}

// benchPaperDesigner builds the paper workload through the public API.
func benchPaperDesigner(b testing.TB) *mvpp.Designer {
	b.Helper()
	return benchPaperDesignerOpts(b, mvpp.Options{})
}

// paperDesigner is benchPaperDesigner with caller-chosen options (tests use
// it to attach an Observer).
func benchPaperDesignerOpts(b testing.TB, opts mvpp.Options) *mvpp.Designer {
	b.Helper()
	cat := mvpp.NewCatalog()
	fail := func(err error) {
		if err != nil {
			b.Fatal(err)
		}
	}
	fail(cat.AddTable("Product", []mvpp.Column{
		{Name: "Pid", Type: mvpp.Int}, {Name: "name", Type: mvpp.String}, {Name: "Did", Type: mvpp.Int},
	}, mvpp.TableStats{Rows: 30000, Blocks: 3000, UpdateFrequency: 1,
		DistinctValues: map[string]float64{"Pid": 30000, "Did": 5000}}))
	fail(cat.AddTable("Division", []mvpp.Column{
		{Name: "Did", Type: mvpp.Int}, {Name: "name", Type: mvpp.String}, {Name: "city", Type: mvpp.String},
	}, mvpp.TableStats{Rows: 5000, Blocks: 500, UpdateFrequency: 1,
		DistinctValues: map[string]float64{"Did": 5000, "city": 50}}))
	fail(cat.AddTable("Order", []mvpp.Column{
		{Name: "Pid", Type: mvpp.Int}, {Name: "Cid", Type: mvpp.Int},
		{Name: "quantity", Type: mvpp.Int}, {Name: "date", Type: mvpp.Date},
	}, mvpp.TableStats{Rows: 50000, Blocks: 6000, UpdateFrequency: 1,
		DistinctValues: map[string]float64{"Pid": 30000, "Cid": 20000},
		IntRanges:      map[string][2]int64{"quantity": {1, 200}}}))
	fail(cat.AddTable("Customer", []mvpp.Column{
		{Name: "Cid", Type: mvpp.Int}, {Name: "name", Type: mvpp.String}, {Name: "city", Type: mvpp.String},
	}, mvpp.TableStats{Rows: 20000, Blocks: 2000, UpdateFrequency: 1,
		DistinctValues: map[string]float64{"Cid": 20000, "city": 50}}))
	fail(cat.AddTable("Part", []mvpp.Column{
		{Name: "Tid", Type: mvpp.Int}, {Name: "name", Type: mvpp.String},
		{Name: "Pid", Type: mvpp.Int}, {Name: "supplier", Type: mvpp.String},
	}, mvpp.TableStats{Rows: 80000, Blocks: 10000, UpdateFrequency: 1,
		DistinctValues: map[string]float64{"Tid": 80000, "Pid": 30000}}))
	fail(cat.PinSelectivity(`city = 'LA'`, 0.02, "Division"))
	fail(cat.PinSelectivity(`date > 7/1/96`, 0.5, "Order"))
	fail(cat.PinSelectivity(`quantity > 100`, 0.5, "Order"))

	d := mvpp.NewDesigner(cat, opts)
	fail(d.AddQuery("Q1", `SELECT Product.name FROM Product, Division WHERE Division.city = 'LA' AND Product.Did = Division.Did`, 10))
	fail(d.AddQuery("Q2", `SELECT Part.name FROM Product, Part, Division WHERE Division.city = 'LA' AND Product.Did = Division.Did AND Part.Pid = Product.Pid`, 0.5))
	fail(d.AddQuery("Q3", `SELECT Customer.name, Product.name, quantity FROM Product, Division, Order, Customer WHERE Division.city = 'LA' AND Product.Did = Division.Did AND Product.Pid = Order.Pid AND Order.Cid = Customer.Cid AND date > 7/1/96`, 0.8))
	fail(d.AddQuery("Q4", `SELECT Customer.city, date FROM Order, Customer WHERE quantity > 100 AND Order.Cid = Customer.Cid`, 5))
	return d
}
