package mvpp_test

import (
	"bytes"
	"encoding/json"
	"testing"

	mvpp "github.com/warehousekit/mvpp"
)

func TestExportJSON(t *testing.T) {
	design, err := paperDesigner(t, mvpp.Options{}).Design()
	if err != nil {
		t.Fatal(err)
	}
	exp := design.Export()
	if len(exp.Queries) != 4 {
		t.Fatalf("queries = %d", len(exp.Queries))
	}
	if exp.Costs.Total != exp.Costs.Query+exp.Costs.Maintenance {
		t.Errorf("cost identity violated: %+v", exp.Costs)
	}

	kinds := map[string]int{}
	materialized := 0
	byName := map[string]mvpp.ExportVertex{}
	for _, v := range exp.Vertices {
		kinds[v.Kind]++
		if v.Materialized {
			materialized++
		}
		byName[v.Name] = v
	}
	if kinds["base"] != 5 {
		t.Errorf("base vertices = %d, want 5", kinds["base"])
	}
	if kinds["query"] != 4 {
		t.Errorf("query vertices = %d, want 4", kinds["query"])
	}
	if materialized != len(design.Views()) {
		t.Errorf("materialized flags = %d, views = %d", materialized, len(design.Views()))
	}
	// Inputs reference existing vertex names.
	for _, v := range exp.Vertices {
		for _, in := range v.Inputs {
			if _, ok := byName[in]; !ok {
				t.Errorf("%s references unknown input %s", v.Name, in)
			}
		}
		if v.Kind == "base" && (v.ComputeCost != 0 || len(v.Inputs) != 0) {
			t.Errorf("base vertex %s has compute cost %v / inputs %v", v.Name, v.ComputeCost, v.Inputs)
		}
	}

	// WriteJSON emits valid, decodable JSON.
	var buf bytes.Buffer
	if err := design.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var roundTrip mvpp.ExportJSON
	if err := json.Unmarshal(buf.Bytes(), &roundTrip); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(roundTrip.Vertices) != len(exp.Vertices) {
		t.Errorf("round trip lost vertices: %d vs %d", len(roundTrip.Vertices), len(exp.Vertices))
	}
}
