package mvpp_test

import (
	"context"
	"encoding/json"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	mvpp "github.com/warehousekit/mvpp"
)

// policyCycle spreads the full refresh-policy spectrum over the design's
// views: sorted names cycle through all four policies.
func policyCycle(views []string) map[string]string {
	cycle := []string{"on-commit", "manual", "scheduled:50ms", "streaming"}
	out := make(map[string]string, len(views))
	for i, name := range views {
		out[name] = cycle[i%len(cycle)]
	}
	return out
}

// TestChaosMixedPolicyRecovery is the crash-restart-verify cycle with the
// policy spectrum live: views on all four refresh policies, deltas arriving
// both directly and through the CDC streaming path, a checkpoint killed at
// each injected crash point — and the restarted warehouse must converge to
// bit-identical answers with zero lost deltas, streamed ones included.
func TestChaosMixedPolicyRecovery(t *testing.T) {
	cases := []struct {
		name           string
		site           mvpp.FaultSite
		checkpointErrs bool
		// committed: the crash landed after the manifest rename point of no
		// return, so the restart recovers generation 2 and replays nothing.
		committed bool
	}{
		{name: "mid-segment write", site: mvpp.FaultSiteSnapshotSegmentWrite, checkpointErrs: true},
		{name: "pre-manifest rename", site: mvpp.FaultSiteSnapshotManifestWrite, checkpointErrs: true},
		{name: "post-manifest rename", site: mvpp.FaultSiteSnapshotManifestRename, checkpointErrs: true, committed: true},
		{name: "mid-journal compaction", site: mvpp.FaultSiteJournalTruncate, committed: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			opts := mvpp.ServeOptions{
				Seed:        21,
				SnapshotDir: filepath.Join(dir, "snaps"),
				JournalPath: filepath.Join(dir, "deltas.journal"),
			}

			// Boot A: discover the view set, spread the policy spectrum over
			// it, lay down one good generation, die cleanly.
			design, a := paperServer(t, opts)
			opts.Policies = policyCycle(a.Views())
			if err := a.Close(); err != nil {
				t.Fatal(err)
			}
			_, a = paperServer(t, opts)
			if _, err := a.InjectDeltas(0.05); err != nil {
				t.Fatal(err)
			}
			if err := a.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := a.RefreshAllViews(); err != nil {
				t.Fatal(err)
			}
			if _, err := a.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if err := a.Close(); err != nil {
				t.Fatal(err)
			}

			// Boot B: more deltas through both ingestion paths, refresh the
			// whole spectrum to a converged state, then crash at the injected
			// point of the next checkpoint.
			armed := opts
			armed.Injector = mvpp.NewFaultInjector(1, mvpp.FaultPlan{
				tc.site: {ErrProb: 1},
			})
			_, b := paperServer(t, armed)
			injected, err := b.InjectDeltas(0.05)
			if err != nil {
				t.Fatal(err)
			}
			streamed, err := b.StreamDeltas(0.02)
			if err != nil {
				t.Fatal(err)
			}
			if streamed == 0 {
				t.Fatal("the streaming path accepted no rows")
			}
			if acc, com := b.IngestWatermarks(); acc != com {
				t.Fatalf("watermarks diverge after StreamDeltas returned: %d/%d", acc, com)
			}
			if err := b.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := b.RefreshAllViews(); err != nil {
				t.Fatal(err)
			}
			want := snapshotFingerprint(t, design, b)
			_, cerr := b.Checkpoint()
			if tc.checkpointErrs && cerr == nil {
				t.Fatal("injected crash point did not surface from Checkpoint")
			}
			if !tc.checkpointErrs && cerr != nil {
				t.Fatal(cerr)
			}
			if err := b.Close(); err != nil {
				t.Fatal(err)
			}

			// Boot C: clean restart over the crash debris, policies intact.
			_, c := paperServer(t, opts)
			ss := c.SnapshotStats()
			if ss.Recovery == nil || ss.Recovery.Cold {
				t.Fatalf("restart after crash went cold: %+v", ss.Recovery)
			}
			wantGen := uint64(1)
			if tc.committed {
				wantGen = 2
			}
			if ss.Recovery.Generation != wantGen {
				t.Errorf("recovered generation %d, want %d", ss.Recovery.Generation, wantGen)
			}
			// Zero lost deltas, streamed included: everything B ingested past
			// the surviving watermark replays; a committed generation 2
			// already contains it all and replays nothing.
			replayed := c.Stats().ReplayedDeltaRows
			if tc.committed {
				if replayed != 0 {
					t.Errorf("replayed %d rows despite a committed checkpoint", replayed)
				}
			} else if replayed != int64(injected+streamed) {
				t.Errorf("replayed %d rows, want %d (%d injected + %d streamed)",
					replayed, injected+streamed, injected, streamed)
			}
			// Converge the spectrum (manual and scheduled views catch up) and
			// verify bit-identity with the pre-crash warehouse.
			if err := c.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := c.RefreshAllViews(); err != nil {
				t.Fatal(err)
			}
			requireSameFingerprint(t, snapshotFingerprint(t, design, c), want)
		})
	}
}

// TestPolicyTelemetryEndToEnd drives an SLO violation end to end and
// asserts the admin plane shows it: /views carries policy, status, and the
// violation; /metrics carries the view-status one-hot and the streaming
// ingest families.
func TestPolicyTelemetryEndToEnd(t *testing.T) {
	design, probe := paperServer(t, mvpp.ServeOptions{})
	views := probe.Views()
	if err := probe.Close(); err != nil {
		t.Fatal(err)
	}
	policies := make(map[string]string, len(views))
	for _, v := range views {
		policies[v] = "manual"
	}
	_, srv := paperServer(t, mvpp.ServeOptions{
		TelemetryAddr: "127.0.0.1:0",
		Policies:      policies,
		DefaultSLO:    mvpp.FreshnessSLO{MaxLagEpochs: 1},
		DeltaBatch:    1 << 20,
	})
	addr := srv.TelemetryAddr()
	if addr == "" {
		t.Fatal("telemetry enabled but no address bound")
	}

	// Two landed epochs with every view manual: stale past the one-epoch
	// budget — SLO violated, queries degraded.
	for i := 0; i < 2; i++ {
		if _, err := srv.InjectDeltas(0.02); err != nil {
			t.Fatal(err)
		}
		if _, err := srv.StreamDeltas(0.01); err != nil {
			t.Fatal(err)
		}
		if err := srv.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	var degraded bool
	for _, q := range design.Queries() {
		res, err := srv.Query(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		degraded = degraded || res.Degraded
	}
	if !degraded {
		t.Fatal("no query degraded while every view violates its SLO")
	}

	// The SLO breach latches exactly one flight-recorder dump, and its ring
	// must contain the refresh decisions (here: policy deferrals) that let
	// every breaching view fall behind.
	var sloDumps []mvpp.FlightDump
	for _, d := range srv.FlightDumps() {
		if d.Reason == "slo_breach" {
			sloDumps = append(sloDumps, d)
		}
	}
	if len(sloDumps) != 1 {
		t.Fatalf("SLO breach produced %d flight dumps, want exactly 1", len(sloDumps))
	}
	dump := sloDumps[0]
	named, _ := dump.Attrs["views"].(string)
	refreshed := make(map[string]bool)
	for _, r := range dump.Records {
		if strings.HasPrefix(r.Name, "refresh.") {
			if v, ok := r.Attrs["view"].(string); ok {
				refreshed[v] = true
			}
		}
	}
	for _, v := range views {
		if !strings.Contains(named, v) {
			t.Errorf("flight dump does not name breaching view %s (views=%q)", v, named)
		}
		if !refreshed[v] {
			t.Errorf("flight dump holds no refresh span for breaching view %s", v)
		}
	}

	code, body := telemetryGet(t, addr, "/views")
	if code != http.StatusOK {
		t.Fatalf("/views status %d", code)
	}
	var reply struct {
		Views map[string]struct {
			Policy        string `json:"policy"`
			Status        string `json:"status"`
			SLOViolated   bool   `json:"slo_violated"`
			SLOViolations int64  `json:"slo_violations"`
			StaleEpochs   int    `json:"stale_epochs"`
		} `json:"views"`
	}
	if err := json.Unmarshal(body, &reply); err != nil {
		t.Fatalf("parsing /views: %v\n%s", err, body)
	}
	if len(reply.Views) != len(views) {
		t.Fatalf("/views lists %d views, want %d", len(reply.Views), len(views))
	}
	for name, v := range reply.Views {
		if v.Policy != "manual" {
			t.Errorf("%s policy = %q, want manual", name, v.Policy)
		}
		if v.Status != "STALE" || !v.SLOViolated || v.SLOViolations == 0 || v.StaleEpochs < 2 {
			t.Errorf("%s = %+v, want a stale, SLO-violating view", name, v)
		}
	}

	code, mbody := telemetryGet(t, addr, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	exposition := string(mbody)
	for _, want := range []string{
		`mv_view_status{view=`,
		`status="STALE"} 1`,
		"mv_ingest_stream_rows_total",
		"mv_ingest_group_commits_total",
		"mv_ingest_backpressure_blocked_total",
		"mv_ingest_backpressure_shed_total",
		"mv_slo_violations_total",
		"mvpp_view_slo_violated",
		"mvpp_view_stale_epochs",
		"mv_ingest_lag_p99_seconds",
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("/metrics is missing %q", want)
		}
	}

	// RefreshAllViews ends the episode: the plane flips back to VALID.
	if err := srv.RefreshAllViews(); err != nil {
		t.Fatal(err)
	}
	_, body = telemetryGet(t, addr, "/views")
	if err := json.Unmarshal(body, &reply); err != nil {
		t.Fatal(err)
	}
	for name, v := range reply.Views {
		if v.Status != "VALID" || v.SLOViolated {
			t.Errorf("%s after RefreshAllViews = %+v, want VALID", name, v)
		}
	}

	// The spectrum is also part of the design export.
	for _, name := range views {
		if err := design.SetRefreshPolicy(name, "scheduled:1h"); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range design.Export().Vertices {
		if v.Materialized && v.RefreshPolicy != "scheduled:1h" {
			t.Errorf("exported %s policy = %q, want scheduled:1h", v.Name, v.RefreshPolicy)
		}
	}
}
