package mvpp_test

import (
	"context"
	"sort"
	"sync"
	"testing"

	mvpp "github.com/warehousekit/mvpp"
)

func paperServer(t *testing.T, opts mvpp.ServeOptions) (*mvpp.Design, *mvpp.Server) {
	t.Helper()
	design, err := paperDesigner(t, mvpp.Options{}).Design()
	if err != nil {
		t.Fatal(err)
	}
	if opts.Scale == 0 {
		opts.Scale = 0.01
	}
	if opts.Seed == 0 {
		opts.Seed = 7
	}
	srv, err := design.NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return design, srv
}

func TestServeCacheSpeedup(t *testing.T) {
	design, srv := paperServer(t, mvpp.ServeOptions{})
	if len(srv.Views()) == 0 {
		t.Fatal("server started with no materialized views")
	}
	ctx := context.Background()
	for _, q := range design.Queries() {
		first, err := srv.Query(ctx, q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if first.Cached {
			t.Errorf("%s: first execution reported cached", q)
		}
		second, err := srv.Query(ctx, q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if !second.Cached {
			t.Errorf("%s: repeat execution missed the cache", q)
		}
		if second.Reads != 0 {
			t.Errorf("%s: cache hit cost %d reads", q, second.Reads)
		}
		if first.NumRows() != second.NumRows() {
			t.Errorf("%s: cached rows %d != executed rows %d", q, second.NumRows(), first.NumRows())
		}
	}
	stats := srv.Stats()
	if stats.CacheHits < int64(len(design.Queries())) {
		t.Errorf("cache hits = %d, want >= %d", stats.CacheHits, len(design.Queries()))
	}
	if stats.Queries != int64(2*len(design.Queries())) {
		t.Errorf("queries = %d, want %d", stats.Queries, 2*len(design.Queries()))
	}
	if rate := stats.CacheHitRate(); rate < 0.5 {
		t.Errorf("cache hit rate = %.2f, want >= 0.5", rate)
	}
}

func TestServeDeltasAdvanceEpochAndInvalidate(t *testing.T) {
	design, srv := paperServer(t, mvpp.ServeOptions{})
	ctx := context.Background()
	q := design.Queries()[0]
	if _, err := srv.Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	n, err := srv.InjectDeltas(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatalf("injected %d delta rows", n)
	}
	stale := srv.Staleness()
	pending := 0
	for _, st := range stale {
		pending += st.PendingRows
	}
	if err := srv.Flush(); err != nil {
		t.Fatal(err)
	}
	if srv.Epoch() == 0 {
		t.Error("epoch did not advance after flush")
	}
	for name, st := range srv.Staleness() {
		if st.PendingRows != 0 {
			t.Errorf("%s: %d rows still pending after flush", name, st.PendingRows)
		}
	}
	res, err := srv.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Error("stale cache entry served after refresh epoch")
	}
	if res.Epoch != srv.Epoch() {
		t.Errorf("result epoch %d, server epoch %d", res.Epoch, srv.Epoch())
	}
	_ = pending // pre-flush staleness may be zero if no view depends on the touched tables
}

func TestServeConcurrentClientsStayConsistent(t *testing.T) {
	design, srv := paperServer(t, mvpp.ServeOptions{Workers: 4, QueueDepth: 16})
	ctx := context.Background()
	queries := design.Queries()

	// Reference row counts before any concurrency.
	want := make(map[string]int, len(queries))
	for _, q := range queries {
		res, err := srv.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		want[q] = res.NumRows()
	}

	const clients, rounds = 6, 25
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				q := queries[(c+i)%len(queries)]
				if _, err := srv.Query(ctx, q); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	// Maintenance churns concurrently with the readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			if _, err := srv.InjectDeltas(0.02); err != nil {
				errs <- err
				return
			}
			if err := srv.Flush(); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	stats := srv.Stats()
	if got := int64(clients*rounds + len(queries)); stats.Queries < got {
		t.Errorf("queries served = %d, want >= %d", stats.Queries, got)
	}
	if stats.Epochs < 4 {
		t.Errorf("maintenance epochs = %d, want >= 4", stats.Epochs)
	}
	// Deltas only insert rows, so row counts may grow but never shrink.
	for _, q := range queries {
		res, err := srv.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if res.NumRows() < want[q] {
			t.Errorf("%s: rows shrank from %d to %d across refreshes", q, want[q], res.NumRows())
		}
	}
}

func TestServeAdvisorReselectsUnderDrift(t *testing.T) {
	design, srv := paperServer(t, mvpp.ServeOptions{})
	ctx := context.Background()
	queries := design.Queries()

	baseline := make(map[string]int, len(queries))
	for _, q := range queries {
		res, err := srv.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		baseline[q] = res.NumRows()
	}

	// Drift: the live workload is overwhelmingly Q4, which the design-time
	// frequencies (Q1 dominant) never anticipated. The volume must drown out
	// the baseline round above, which also counted one of each query.
	for i := 0; i < 400; i++ {
		if _, err := srv.Query(ctx, "Q4"); err != nil {
			t.Fatal(err)
		}
	}
	obs := srv.ObservedFrequencies()
	for _, q := range queries {
		if q == "Q4" {
			continue
		}
		if obs[q] >= obs["Q4"] {
			t.Fatalf("observed frequencies do not reflect drift: %v", obs)
		}
	}

	advice, err := srv.Advise()
	if err != nil {
		t.Fatal(err)
	}
	if !advice.Changed() {
		t.Fatalf("all-Q4 drift should change the selection; advice: keep=%v add=%v drop=%v",
			advice.Keep, advice.Add, advice.Drop)
	}
	if advice.ProposedTotal > advice.CurrentTotal+1e-6 {
		t.Errorf("proposed set costs %v under observed frequencies, current %v",
			advice.ProposedTotal, advice.CurrentTotal)
	}
	if err := srv.ApplyAdvice(advice); err != nil {
		t.Fatal(err)
	}
	gotViews := srv.Views()
	wantViews := append([]string(nil), advice.Proposed...)
	sort.Strings(wantViews)
	if len(gotViews) != len(wantViews) {
		t.Fatalf("views after swap = %v, want %v", gotViews, wantViews)
	}
	for i := range gotViews {
		if gotViews[i] != wantViews[i] {
			t.Fatalf("views after swap = %v, want %v", gotViews, wantViews)
		}
	}
	// Answers must be unchanged by the hot swap — the data didn't move.
	for _, q := range queries {
		res, err := srv.Query(ctx, q)
		if err != nil {
			t.Fatalf("%s after swap: %v", q, err)
		}
		if res.NumRows() != baseline[q] {
			t.Errorf("%s: rows after swap = %d, want %d", q, res.NumRows(), baseline[q])
		}
	}
}

func TestServeQuerySQL(t *testing.T) {
	_, srv := paperServer(t, mvpp.ServeOptions{})
	ctx := context.Background()
	const sql = `SELECT Product.name FROM Product, Division WHERE Division.city = 'LA' AND Product.Did = Division.Did`
	adhoc, err := srv.QuerySQL(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	named, err := srv.Query(ctx, "Q1")
	if err != nil {
		t.Fatal(err)
	}
	if adhoc.NumRows() != named.NumRows() {
		t.Errorf("ad-hoc rows = %d, named Q1 rows = %d", adhoc.NumRows(), named.NumRows())
	}
	if len(adhoc.Columns()) == 0 {
		t.Error("ad-hoc result has no columns")
	}
	if rows := adhoc.Values(); len(rows) != adhoc.NumRows() {
		t.Errorf("Values() returned %d rows, NumRows %d", len(rows), adhoc.NumRows())
	}
	again, err := srv.QuerySQL(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("identical ad-hoc SQL missed the result cache")
	}
	if _, err := srv.QuerySQL(ctx, `SELECT nope FROM Ghost`); err == nil {
		t.Error("bad ad-hoc SQL accepted")
	}
}

func TestServeOptionsValidation(t *testing.T) {
	design, srv := paperServer(t, mvpp.ServeOptions{})
	if _, err := srv.InjectDeltas(0); err == nil {
		t.Error("zero delta fraction accepted")
	}
	if err := srv.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if _, err := srv.Query(context.Background(), design.Queries()[0]); err == nil {
		t.Error("query accepted after close")
	}
}

// BenchmarkServeWorkload drives the serving layer with parallel clients
// round-robining the paper workload while reporting throughput-side
// metrics (cache hit rate, tail latency) for BENCH_design.json.
func BenchmarkServeWorkload(b *testing.B) {
	design, err := benchPaperDesigner(b).Design()
	if err != nil {
		b.Fatal(err)
	}
	srv, err := design.NewServer(mvpp.ServeOptions{Scale: 0.01, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	queries := design.Queries()
	ctx := context.Background()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := srv.Query(ctx, queries[i%len(queries)]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
	b.StopTimer()
	stats := srv.Stats()
	b.ReportMetric(stats.QPS, "queries/sec")
	b.ReportMetric(stats.CacheHitRate(), "cache-hit-rate")
	b.ReportMetric(float64(stats.P99.Microseconds()), "p99-us")
}
