package mvpp_test

import (
	"strings"
	"testing"

	mvpp "github.com/warehousekit/mvpp"
)

// paperCatalog rebuilds the paper's Table 1 through the public API.
func paperCatalog(t *testing.T) *mvpp.Catalog {
	t.Helper()
	cat := mvpp.NewCatalog()
	add := func(name string, cols []mvpp.Column, stats mvpp.TableStats) {
		t.Helper()
		if err := cat.AddTable(name, cols, stats); err != nil {
			t.Fatalf("AddTable(%s): %v", name, err)
		}
	}
	add("Product", []mvpp.Column{
		{Name: "Pid", Type: mvpp.Int}, {Name: "name", Type: mvpp.String}, {Name: "Did", Type: mvpp.Int},
	}, mvpp.TableStats{Rows: 30000, Blocks: 3000, UpdateFrequency: 1,
		DistinctValues: map[string]float64{"Pid": 30000, "Did": 5000}})
	add("Division", []mvpp.Column{
		{Name: "Did", Type: mvpp.Int}, {Name: "name", Type: mvpp.String}, {Name: "city", Type: mvpp.String},
	}, mvpp.TableStats{Rows: 5000, Blocks: 500, UpdateFrequency: 1,
		DistinctValues: map[string]float64{"Did": 5000, "city": 50}})
	add("Order", []mvpp.Column{
		{Name: "Pid", Type: mvpp.Int}, {Name: "Cid", Type: mvpp.Int},
		{Name: "quantity", Type: mvpp.Int}, {Name: "date", Type: mvpp.Date},
	}, mvpp.TableStats{Rows: 50000, Blocks: 6000, UpdateFrequency: 1,
		DistinctValues: map[string]float64{"Pid": 30000, "Cid": 20000, "quantity": 200},
		IntRanges:      map[string][2]int64{"quantity": {1, 200}}})
	add("Customer", []mvpp.Column{
		{Name: "Cid", Type: mvpp.Int}, {Name: "name", Type: mvpp.String}, {Name: "city", Type: mvpp.String},
	}, mvpp.TableStats{Rows: 20000, Blocks: 2000, UpdateFrequency: 1,
		DistinctValues: map[string]float64{"Cid": 20000, "city": 50}})
	add("Part", []mvpp.Column{
		{Name: "Tid", Type: mvpp.Int}, {Name: "name", Type: mvpp.String},
		{Name: "Pid", Type: mvpp.Int}, {Name: "supplier", Type: mvpp.String},
	}, mvpp.TableStats{Rows: 80000, Blocks: 10000, UpdateFrequency: 1,
		DistinctValues: map[string]float64{"Tid": 80000, "Pid": 30000}})
	if err := cat.PinSelectivity(`city = 'LA'`, 0.02, "Division"); err != nil {
		t.Fatal(err)
	}
	if err := cat.PinSelectivity(`date > 7/1/96`, 0.5, "Order"); err != nil {
		t.Fatal(err)
	}
	if err := cat.PinSelectivity(`quantity > 100`, 0.5, "Order"); err != nil {
		t.Fatal(err)
	}
	return cat
}

func paperDesigner(t *testing.T, opts mvpp.Options) *mvpp.Designer {
	t.Helper()
	d := mvpp.NewDesigner(paperCatalog(t), opts)
	queries := []mvpp.Query{
		{Name: "Q1", Frequency: 10, SQL: `SELECT Product.name FROM Product, Division WHERE Division.city = 'LA' AND Product.Did = Division.Did`},
		{Name: "Q2", Frequency: 0.5, SQL: `SELECT Part.name FROM Product, Part, Division WHERE Division.city = 'LA' AND Product.Did = Division.Did AND Part.Pid = Product.Pid`},
		{Name: "Q3", Frequency: 0.8, SQL: `SELECT Customer.name, Product.name, quantity FROM Product, Division, Order, Customer WHERE Division.city = 'LA' AND Product.Did = Division.Did AND Product.Pid = Order.Pid AND Order.Cid = Customer.Cid AND date > 7/1/96`},
		{Name: "Q4", Frequency: 5, SQL: `SELECT Customer.city, date FROM Order, Customer WHERE quantity > 100 AND Order.Cid = Customer.Cid`},
	}
	for _, q := range queries {
		if err := d.AddQuery(q.Name, q.SQL, q.Frequency); err != nil {
			t.Fatalf("AddQuery(%s): %v", q.Name, err)
		}
	}
	return d
}

func TestDesignEndToEnd(t *testing.T) {
	d := paperDesigner(t, mvpp.Options{})
	design, err := d.Design()
	if err != nil {
		t.Fatal(err)
	}
	costs := design.Costs()
	if costs.TotalCost <= 0 {
		t.Errorf("total cost = %v", costs.TotalCost)
	}
	if costs.TotalCost > costs.AllVirtualTotal {
		t.Errorf("design %v worse than all-virtual %v", costs.TotalCost, costs.AllVirtualTotal)
	}
	if costs.TotalCost > costs.AllMaterializedTotal {
		t.Errorf("design %v worse than all-materialized %v", costs.TotalCost, costs.AllMaterializedTotal)
	}
	if len(costs.PerQuery) != 4 {
		t.Errorf("per-query entries = %d", len(costs.PerQuery))
	}
	if design.Candidates() == 0 {
		t.Error("no candidates evaluated")
	}
	views := design.Views()
	if len(views) == 0 {
		t.Error("paper workload should materialize something")
	}
	for _, v := range views {
		if v.Name == "" || v.Definition == "" || len(v.UsedBy) == 0 {
			t.Errorf("incomplete view %+v", v)
		}
	}
}

func TestDesignReportRendering(t *testing.T) {
	d := paperDesigner(t, mvpp.Options{})
	design, err := d.Design()
	if err != nil {
		t.Fatal(err)
	}
	report := design.Report()
	for _, want := range []string{
		"MATERIALIZED VIEW DESIGN", "recommended materialized views",
		"query processing", "vs all-virtual", "MVPP",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if !strings.Contains(design.DOT(), "digraph mvpp") {
		t.Error("DOT output malformed")
	}
	if !strings.Contains(design.Trace(), "materialize") {
		t.Error("trace output malformed")
	}
	if len(design.VertexNames()) == 0 {
		t.Error("no vertex names")
	}
}

func TestDesignEvaluateStrategy(t *testing.T) {
	d := paperDesigner(t, mvpp.Options{})
	design, err := d.Design()
	if err != nil {
		t.Fatal(err)
	}
	names := design.VertexNames()
	q, m, total, err := design.EvaluateStrategy(names[:1])
	if err != nil {
		t.Fatal(err)
	}
	if total != q+m {
		t.Errorf("total %v != query %v + maintenance %v", total, q, m)
	}
	if _, _, _, err := design.EvaluateStrategy([]string{"ghost"}); err == nil {
		t.Error("unknown strategy vertex accepted")
	}
}

func TestDesignerValidation(t *testing.T) {
	cat := paperCatalog(t)
	d := mvpp.NewDesigner(cat, mvpp.Options{})
	if _, err := d.Design(); err == nil {
		t.Error("empty workload accepted")
	}
	if err := d.AddQuery("Q", `SELECT nope FROM Ghost`, 1); err == nil {
		t.Error("bad SQL accepted")
	}
	if err := d.AddQuery("Q", `SELECT Division.name FROM Division`, -1); err == nil {
		t.Error("negative frequency accepted")
	}
	if err := d.AddQuery("Q", `SELECT Division.name FROM Division`, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.AddQuery("Q", `SELECT Division.name FROM Division`, 1); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestCatalogValidation(t *testing.T) {
	cat := mvpp.NewCatalog()
	if err := cat.AddTable("T", nil, mvpp.TableStats{}); err == nil {
		t.Error("empty column list accepted")
	}
	if err := cat.AddTable("T", []mvpp.Column{{Name: "a", Type: mvpp.Type(99)}}, mvpp.TableStats{}); err == nil {
		t.Error("bad type accepted")
	}
	if err := cat.AddTable("T", []mvpp.Column{{Name: "a", Type: mvpp.Int}}, mvpp.TableStats{Rows: 10, Blocks: 1}); err != nil {
		t.Fatal(err)
	}
	if got := cat.Tables(); len(got) != 1 || got[0] != "T" {
		t.Errorf("Tables = %v", got)
	}
	if err := cat.PinSelectivity(`a = 1`, 0.5, "T"); err != nil {
		t.Errorf("PinSelectivity: %v", err)
	}
	if err := cat.PinSelectivity(`bogus ===`, 0.5, "T"); err == nil {
		t.Error("bad condition accepted")
	}
	if err := cat.PinJoinSize([]string{"T"}, 1, 1); err == nil {
		t.Error("single-table join size accepted")
	}
}

func TestDesignWithDistribution(t *testing.T) {
	local, err := paperDesigner(t, mvpp.Options{}).Design()
	if err != nil {
		t.Fatal(err)
	}
	remoteOpts := mvpp.Options{Distribution: &mvpp.Distribution{
		SiteOf: map[string]string{
			"Product": "siteA", "Division": "siteA",
			"Order": "siteB", "Customer": "siteB", "Part": "siteC",
		},
		BlockTransferCost: 2,
	}}
	remote, err := paperDesigner(t, remoteOpts).Design()
	if err != nil {
		t.Fatal(err)
	}
	if remote.Costs().AllVirtualTotal <= local.Costs().AllVirtualTotal {
		t.Errorf("distribution should raise the all-virtual baseline: %v vs %v",
			remote.Costs().AllVirtualTotal, local.Costs().AllVirtualTotal)
	}
}

func TestDesignExhaustiveNoWorseThanHeuristic(t *testing.T) {
	heur, err := paperDesigner(t, mvpp.Options{}).Design()
	if err != nil {
		t.Fatal(err)
	}
	exact, err := paperDesigner(t, mvpp.Options{Exhaustive: true}).Design()
	if err != nil {
		t.Fatal(err)
	}
	if exact.Costs().TotalCost > heur.Costs().TotalCost+1e-6 {
		t.Errorf("exhaustive %v worse than heuristic %v",
			exact.Costs().TotalCost, heur.Costs().TotalCost)
	}
}

func TestDesignModelVariants(t *testing.T) {
	for _, kind := range []mvpp.ModelKind{
		mvpp.ModelPaperNLJ, mvpp.ModelBlockNLJ, mvpp.ModelHashJoin, mvpp.ModelSortMerge,
	} {
		design, err := paperDesigner(t, mvpp.Options{Model: kind}).Design()
		if err != nil {
			t.Fatalf("model %d: %v", kind, err)
		}
		if design.Costs().TotalCost <= 0 {
			t.Errorf("model %d: total = %v", kind, design.Costs().TotalCost)
		}
	}
}

func TestDesignPaperSizesMode(t *testing.T) {
	cat := paperCatalog(t)
	for _, pin := range []struct {
		tables       []string
		rows, blocks float64
	}{
		{[]string{"Product", "Division"}, 30000, 5000},
		{[]string{"Product", "Division", "Part"}, 80000, 20000},
		{[]string{"Order", "Customer"}, 25000, 5000},
		{[]string{"Product", "Division", "Order", "Customer"}, 25000, 5000},
	} {
		if err := cat.PinJoinSize(pin.tables, pin.rows, pin.blocks); err != nil {
			t.Fatal(err)
		}
	}
	d := mvpp.NewDesigner(cat, mvpp.Options{PaperSizes: true})
	if err := d.AddQuery("Q1", `SELECT Product.name FROM Product, Division WHERE Division.city = 'LA' AND Product.Did = Division.Did`, 10); err != nil {
		t.Fatal(err)
	}
	design, err := d.Design()
	if err != nil {
		t.Fatal(err)
	}
	if design.Costs().TotalCost <= 0 {
		t.Error("paper-sizes design has zero cost")
	}
}

func TestExplainQuery(t *testing.T) {
	design, err := paperDesigner(t, mvpp.Options{}).Design()
	if err != nil {
		t.Fatal(err)
	}
	out, err := design.ExplainQuery("Q1")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"π", "⋈", "Division"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
	// Q1 shares its join with Q2/Q3 in every sensible design — the tree
	// must mark at least one shared vertex.
	if !strings.Contains(out, "shared") {
		t.Errorf("no shared marker in explain:\n%s", out)
	}
	if _, err := design.ExplainQuery("ghost"); err == nil {
		t.Error("unknown query explained")
	}
}
