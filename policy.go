package mvpp

import (
	"time"

	"github.com/warehousekit/mvpp/internal/serve"
)

// The refresh-policy surface of the serving layer. The implementation lives
// in internal/serve; these aliases expose it to library users, who tag
// views with policies at design time (Design.SetRefreshPolicy) or serve
// time (ServeOptions.Policies) and read statuses back from Staleness.

// RefreshPolicy is one view's refresh discipline: when the maintenance
// scheduler is allowed to fold landed deltas into the stored view. The
// zero value means "use the configured default" (on-commit unless
// ServeOptions.DefaultPolicy says otherwise).
type RefreshPolicy = serve.RefreshPolicy

// FreshnessSLO bounds how stale a view may get before its queries degrade
// to base relations and the violation is reported; the zero value means no
// SLO.
type FreshnessSLO = serve.FreshnessSLO

// IngestConfig tunes the CDC streaming-ingest path (bounded change-feed
// buffer, block deadline, group-commit thresholds).
type IngestConfig = serve.IngestConfig

// ViewStatus is one view's lifecycle position: ViewValid, ViewStale,
// ViewBuilding, or ViewError.
type ViewStatus = serve.ViewStatus

// View lifecycle positions reported by Staleness (as strings) and the
// /views telemetry endpoint.
const (
	ViewValid    = serve.StatusValid
	ViewStale    = serve.StatusStale
	ViewBuilding = serve.StatusBuilding
	ViewError    = serve.StatusError
)

// ErrBackpressure reports a shed StreamDeltas call: the change-feed buffer
// stayed full past the block deadline and nothing was accepted. Check with
// errors.Is.
var ErrBackpressure = serve.ErrBackpressure

// ManualPolicy defers all maintenance until RefreshView/RefreshAllViews.
func ManualPolicy() RefreshPolicy { return serve.ManualPolicy() }

// OnCommitPolicy refreshes on every maintenance epoch (the legacy
// behavior, and the default).
func OnCommitPolicy() RefreshPolicy { return serve.OnCommitPolicy() }

// ScheduledPolicy refreshes at most once per interval; between refreshes
// landed deltas accrue as lag.
func ScheduledPolicy(every time.Duration) RefreshPolicy { return serve.ScheduledPolicy(every) }

// StreamingPolicy refreshes on every epoch and marks the view as fed by
// the CDC streaming path.
func StreamingPolicy() RefreshPolicy { return serve.StreamingPolicy() }

// ParseRefreshPolicy parses a policy spec: "manual", "on-commit",
// "scheduled:<duration>" (e.g. "scheduled:30s"), or "streaming". The empty
// string parses as on-commit.
func ParseRefreshPolicy(s string) (RefreshPolicy, error) { return serve.ParsePolicy(s) }
