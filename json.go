package mvpp

import (
	"encoding/json"
	"fmt"
	"io"
)

// CatalogJSON is the serialized schema-and-statistics format consumed by
// LoadCatalog and the mvdesign CLI.
type CatalogJSON struct {
	Tables        []TableJSON       `json:"tables"`
	Selectivities []SelectivityJSON `json:"selectivities,omitempty"`
	JoinSizes     []JoinSizeJSON    `json:"joinSizes,omitempty"`
}

// TableJSON declares one table.
type TableJSON struct {
	Name            string              `json:"name"`
	Columns         []ColumnJSON        `json:"columns"`
	Rows            float64             `json:"rows"`
	Blocks          float64             `json:"blocks"`
	UpdateFrequency float64             `json:"updateFrequency"`
	DistinctValues  map[string]float64  `json:"distinctValues,omitempty"`
	IntRanges       map[string][2]int64 `json:"intRanges,omitempty"`
}

// ColumnJSON declares one column; type is "int", "float", "string" or
// "date".
type ColumnJSON struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// SelectivityJSON pins a predicate selectivity.
type SelectivityJSON struct {
	Condition string   `json:"condition"`
	Tables    []string `json:"tables"`
	Value     float64  `json:"value"`
}

// JoinSizeJSON pins a join-result size.
type JoinSizeJSON struct {
	Tables []string `json:"tables"`
	Rows   float64  `json:"rows"`
	Blocks float64  `json:"blocks"`
}

// WorkloadJSON is the serialized query-workload format.
type WorkloadJSON struct {
	Queries []QueryJSON `json:"queries"`
}

// QueryJSON declares one query.
type QueryJSON struct {
	Name      string  `json:"name"`
	SQL       string  `json:"sql"`
	Frequency float64 `json:"frequency"`
}

func parseType(s string) (Type, error) {
	switch s {
	case "int":
		return Int, nil
	case "float":
		return Float, nil
	case "string":
		return String, nil
	case "date":
		return Date, nil
	default:
		return 0, fmt.Errorf("mvpp: unknown column type %q", s)
	}
}

// LoadCatalog reads a CatalogJSON document and builds the catalog.
func LoadCatalog(r io.Reader) (*Catalog, error) {
	var doc CatalogJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("mvpp: parsing catalog: %w", err)
	}
	if len(doc.Tables) == 0 {
		return nil, fmt.Errorf("mvpp: catalog defines no tables")
	}
	cat := NewCatalog()
	for _, t := range doc.Tables {
		cols := make([]Column, len(t.Columns))
		for i, c := range t.Columns {
			ct, err := parseType(c.Type)
			if err != nil {
				return nil, fmt.Errorf("mvpp: table %s: %w", t.Name, err)
			}
			cols[i] = Column{Name: c.Name, Type: ct}
		}
		err := cat.AddTable(t.Name, cols, TableStats{
			Rows:            t.Rows,
			Blocks:          t.Blocks,
			UpdateFrequency: t.UpdateFrequency,
			DistinctValues:  t.DistinctValues,
			IntRanges:       t.IntRanges,
		})
		if err != nil {
			return nil, err
		}
	}
	for _, s := range doc.Selectivities {
		if err := cat.PinSelectivity(s.Condition, s.Value, s.Tables...); err != nil {
			return nil, err
		}
	}
	for _, j := range doc.JoinSizes {
		if err := cat.PinJoinSize(j.Tables, j.Rows, j.Blocks); err != nil {
			return nil, err
		}
	}
	return cat, nil
}

// LoadWorkload reads a WorkloadJSON document and registers its queries on
// a fresh designer over the catalog.
func LoadWorkload(r io.Reader, cat *Catalog, opts Options) (*Designer, error) {
	var doc WorkloadJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("mvpp: parsing workload: %w", err)
	}
	if len(doc.Queries) == 0 {
		return nil, fmt.Errorf("mvpp: workload defines no queries")
	}
	d := NewDesigner(cat, opts)
	for _, q := range doc.Queries {
		if err := d.AddQuery(q.Name, q.SQL, q.Frequency); err != nil {
			return nil, err
		}
	}
	return d, nil
}
