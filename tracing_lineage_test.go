package mvpp_test

import (
	"context"
	"encoding/json"
	"net/http"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	mvpp "github.com/warehousekit/mvpp"
)

// detailInt reads a numeric span attribute regardless of whether the trace
// came from memory (int64) or over the wire (float64).
func detailInt(v any) int64 {
	switch n := v.(type) {
	case int64:
		return n
	case float64:
		return int64(n)
	}
	return 0
}

// spanNames collects the span names of one trace-ring entry.
func spanNames(tr mvpp.QueryTrace) map[string]int {
	out := make(map[string]int, len(tr.Spans))
	for _, sp := range tr.Spans {
		out[sp.Name]++
	}
	return out
}

// TestPipelineTraceEndToEnd follows a single trace ID from a StreamDeltas
// batch through group commit, journal append, the maintenance epoch, and
// per-view refresh to the query that read the refreshed contents — the
// causal chain the tracing plane exists to reconstruct. The full span tree
// must be retrievable both from Server.RecentTraces and over /traces.
func TestPipelineTraceEndToEnd(t *testing.T) {
	design, srv := paperServer(t, mvpp.ServeOptions{
		TraceSampleEvery: 1,
		TelemetryAddr:    "127.0.0.1:0",
		Journal:          mvpp.NewMemJournal(),
		DeltaBatch:       1 << 20, // epochs only on Flush: one deterministic epoch
	})

	rows, err := srv.StreamDeltas(0.02)
	if err != nil {
		t.Fatal(err)
	}
	if rows == 0 {
		t.Fatal("the streaming path accepted no rows")
	}
	if err := srv.Flush(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, q := range design.Queries() {
		if _, err := srv.Query(ctx, q); err != nil {
			t.Fatal(err)
		}
	}

	traces := srv.RecentTraces()
	var epochEntry *mvpp.QueryTrace
	for i := range traces {
		if traces[i].Kind == "epoch" {
			epochEntry = &traces[i]
		}
	}
	if epochEntry == nil {
		t.Fatalf("no epoch entry in the trace ring (%d entries)", len(traces))
	}
	if epochEntry.TraceID == 0 {
		t.Fatal("epoch entry has no causal trace ID")
	}
	// The epoch adopts the trace of the first sampled ingest batch it
	// landed: exactly one ingest entry shares its trace ID, and that entry
	// is the delta whose path we follow end to end.
	var ingestEntry *mvpp.QueryTrace
	for i := range traces {
		if traces[i].Kind == "ingest" && traces[i].TraceID == epochEntry.TraceID {
			ingestEntry = &traces[i]
		}
	}
	if ingestEntry == nil {
		t.Fatalf("no ingest entry shares the epoch's trace ID %d", epochEntry.TraceID)
	}

	ingestSpans := spanNames(*ingestEntry)
	for _, want := range []string{"ingest.stream", "ingest.accept", "ingest.group_commit", "journal.append", "epoch.landed"} {
		if ingestSpans[want] == 0 {
			t.Errorf("ingest entry is missing a %s span (has %v)", want, ingestSpans)
		}
	}
	epochSpans := spanNames(*epochEntry)
	for _, want := range []string{"serve.epoch", "epoch.apply", "journal.commit", "query.read"} {
		if epochSpans[want] == 0 {
			t.Errorf("epoch entry is missing a %s span (has %v)", want, epochSpans)
		}
	}
	if epochSpans["refresh.incremental"]+epochSpans["refresh.recompute"] == 0 {
		t.Errorf("epoch entry refreshed no view (has %v)", epochSpans)
	}
	// The journal append and the epoch's commit must name the same LSN
	// range end: the delta's journal position is part of the chain.
	var appendLSN, commitLSN int64
	for _, sp := range ingestEntry.Spans {
		if sp.Name == "journal.append" {
			appendLSN = detailInt(sp.Detail["lsn"])
		}
	}
	for _, sp := range epochEntry.Spans {
		if sp.Name == "journal.commit" {
			commitLSN = detailInt(sp.Detail["lsn"])
		}
	}
	if appendLSN == 0 || commitLSN < appendLSN {
		t.Errorf("journal LSNs do not chain: append %v, commit %v", appendLSN, commitLSN)
	}

	// Lineage names the epoch and the journal LSN range, stamped with the
	// same causal trace ID.
	lineage := srv.Lineage()
	if len(lineage) == 0 {
		t.Fatal("no lineage for any view")
	}
	traced := 0
	for name, vl := range lineage {
		if len(vl.Entries) == 0 {
			t.Errorf("%s: no lineage entries", name)
			continue
		}
		last := vl.Entries[len(vl.Entries)-1]
		if last.Epoch == 0 || last.LSNHi == 0 || last.LSNLo >= last.LSNHi {
			t.Errorf("%s: lineage names no epoch/LSN range: %+v", name, last)
		}
		if vl.Fingerprint == "" {
			t.Errorf("%s: no live fingerprint", name)
		}
		if last.TraceID == epochEntry.TraceID {
			traced++
		}
	}
	if traced == 0 {
		t.Errorf("no lineage entry carries the epoch's trace ID %d", epochEntry.TraceID)
	}

	// The same span tree must come back over the wire.
	addr := srv.TelemetryAddr()
	code, body := telemetryGet(t, addr, "/traces")
	if code != http.StatusOK {
		t.Fatalf("/traces status %d", code)
	}
	var wire struct {
		Traces []mvpp.QueryTrace `json:"traces"`
	}
	if err := json.Unmarshal(body, &wire); err != nil {
		t.Fatalf("parsing /traces: %v", err)
	}
	found := false
	for _, tr := range wire.Traces {
		if tr.Kind == "epoch" && tr.TraceID == epochEntry.TraceID && len(tr.Spans) >= len(epochEntry.Spans) {
			found = true
		}
	}
	if !found {
		t.Error("/traces does not carry the epoch's span tree")
	}
	code, body = telemetryGet(t, addr, "/lineage")
	if code != http.StatusOK {
		t.Fatalf("/lineage status %d", code)
	}
	var wireLineage struct {
		Views map[string]mvpp.ViewLineage `json:"views"`
	}
	if err := json.Unmarshal(body, &wireLineage); err != nil {
		t.Fatalf("parsing /lineage: %v", err)
	}
	if len(wireLineage.Views) != len(lineage) {
		t.Errorf("/lineage lists %d views, want %d", len(wireLineage.Views), len(lineage))
	}

	// Latency exemplars link histogram buckets back to sampled trace IDs,
	// and /metrics renders them OpenMetrics-style.
	exemplars := srv.LatencyExemplars()
	if len(exemplars) == 0 {
		t.Fatal("no latency exemplars after sampled queries")
	}
	for _, ex := range exemplars {
		if ex.TraceID == 0 {
			t.Errorf("exemplar without a trace ID: %+v", ex)
		}
	}
	_, mbody := telemetryGet(t, addr, "/metrics")
	if !strings.Contains(string(mbody), `# {trace_id="`) {
		t.Error("/metrics renders no exemplars on the latency histogram")
	}
}

// TestSpanTreeInvariants hammers the tracing plane with concurrent
// producers and readers (meant for -race) and then checks the structural
// invariants: every span's parent exists within its trace, and every
// view's lineage LSN ranges are ordered and non-overlapping.
func TestSpanTreeInvariants(t *testing.T) {
	design, srv := paperServer(t, mvpp.ServeOptions{
		TraceSampleEvery: 1,
		Journal:          mvpp.NewMemJournal(),
		DeltaBatch:       1 << 20,
	})
	ctx := context.Background()
	queries := design.Queries()

	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if _, err := srv.Query(ctx, queries[(c+i)%len(queries)]); err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if _, err := srv.StreamDeltas(0.01); err != nil {
				t.Error(err)
				return
			}
			if err := srv.Flush(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	// Spans of one trace may be spread over several ring entries (the
	// ingest batch, the epoch that landed it): resolve parents across all
	// entries sharing the trace ID.
	traces := srv.RecentTraces()
	spansByTrace := make(map[uint64]map[uint64]bool)
	for _, tr := range traces {
		for _, sp := range tr.Spans {
			if tr.TraceID == 0 {
				t.Fatalf("entry %s/%d carries spans but no trace ID", tr.Kind, tr.ID)
			}
			if spansByTrace[tr.TraceID] == nil {
				spansByTrace[tr.TraceID] = make(map[uint64]bool)
			}
			if sp.SpanID == 0 {
				t.Fatalf("span %s of trace %d has no span ID", sp.Name, tr.TraceID)
			}
			if spansByTrace[tr.TraceID][sp.SpanID] {
				t.Fatalf("span ID %d duplicated within trace %d", sp.SpanID, tr.TraceID)
			}
			spansByTrace[tr.TraceID][sp.SpanID] = true
		}
	}
	total := 0
	for _, tr := range traces {
		for _, sp := range tr.Spans {
			total++
			if sp.Parent == 0 {
				continue
			}
			if !spansByTrace[tr.TraceID][sp.Parent] {
				t.Errorf("trace %d: span %s (%d) has missing parent %d",
					tr.TraceID, sp.Name, sp.SpanID, sp.Parent)
			}
		}
	}
	if total == 0 {
		t.Fatal("no spans recorded")
	}

	// Lineage LSN ranges partition the journal per view: each entry is a
	// well-formed (lo, hi] range and consecutive entries never overlap.
	for name, vl := range srv.Lineage() {
		entries := vl.Entries
		for i, e := range entries {
			if e.LSNLo > e.LSNHi {
				t.Errorf("%s entry %d: inverted LSN range %d > %d", name, i, e.LSNLo, e.LSNHi)
			}
			if i > 0 && e.LSNLo < entries[i-1].LSNHi {
				t.Errorf("%s: entries %d and %d overlap: (%d,%d] then (%d,%d]",
					name, i-1, i, entries[i-1].LSNLo, entries[i-1].LSNHi, e.LSNLo, e.LSNHi)
			}
			if i > 0 && e.Epoch < entries[i-1].Epoch {
				t.Errorf("%s: epochs regress: %d then %d", name, entries[i-1].Epoch, e.Epoch)
			}
		}
	}
}

// lineageFingerprints reduces a Lineage export to view → live content
// fingerprint.
func lineageFingerprints(lineage map[string]mvpp.ViewLineage) map[string]string {
	out := make(map[string]string, len(lineage))
	for name, vl := range lineage {
		out[name] = vl.Fingerprint
	}
	return out
}

// TestLineageSurvivesCrashRestart runs the chaos crash-restart cycle at
// each injected crash point and requires every view's lineage to come back
// bit-identically: the restarted warehouse's live content fingerprints
// match the pre-crash ones, recovery seeds a lineage entry for every view,
// and the LSN ranges stay ordered across the restart boundary.
func TestLineageSurvivesCrashRestart(t *testing.T) {
	cases := []struct {
		name           string
		site           mvpp.FaultSite
		checkpointErrs bool
		committed      bool
	}{
		{name: "mid-segment write", site: mvpp.FaultSiteSnapshotSegmentWrite, checkpointErrs: true},
		{name: "pre-manifest rename", site: mvpp.FaultSiteSnapshotManifestWrite, checkpointErrs: true},
		{name: "post-manifest rename", site: mvpp.FaultSiteSnapshotManifestRename, checkpointErrs: true, committed: true},
		{name: "mid-journal compaction", site: mvpp.FaultSiteJournalTruncate, committed: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			opts := mvpp.ServeOptions{
				Seed:        21,
				SnapshotDir: filepath.Join(dir, "snaps"),
				JournalPath: filepath.Join(dir, "deltas.journal"),
			}

			// Boot A: one good generation on disk.
			_, a := paperServer(t, opts)
			if _, err := a.InjectDeltas(0.05); err != nil {
				t.Fatal(err)
			}
			if err := a.Flush(); err != nil {
				t.Fatal(err)
			}
			if _, err := a.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if err := a.Close(); err != nil {
				t.Fatal(err)
			}

			// Boot B: more deltas through both paths, then crash the next
			// checkpoint at the injected point.
			armed := opts
			armed.Injector = mvpp.NewFaultInjector(1, mvpp.FaultPlan{
				tc.site: {ErrProb: 1},
			})
			_, b := paperServer(t, armed)
			if _, err := b.InjectDeltas(0.05); err != nil {
				t.Fatal(err)
			}
			if _, err := b.StreamDeltas(0.02); err != nil {
				t.Fatal(err)
			}
			if err := b.Flush(); err != nil {
				t.Fatal(err)
			}
			want := lineageFingerprints(b.Lineage())
			_, cerr := b.Checkpoint()
			if tc.checkpointErrs && cerr == nil {
				t.Fatal("injected crash point did not surface from Checkpoint")
			}
			if !tc.checkpointErrs && cerr != nil {
				t.Fatal(cerr)
			}
			if err := b.Close(); err != nil {
				t.Fatal(err)
			}

			// Boot C: restart over the debris. Recovery must seed a lineage
			// entry for every view before any new epoch runs.
			_, c := paperServer(t, opts)
			if ss := c.SnapshotStats(); ss.Recovery == nil || ss.Recovery.Cold {
				t.Fatalf("restart after crash went cold: %+v", ss.Recovery)
			}
			booted := c.Lineage()
			for name, vl := range booted {
				if len(vl.Entries) == 0 {
					t.Fatalf("%s: recovery seeded no lineage", name)
				}
				first := vl.Entries[0]
				if first.Mode != "restored" && first.Mode != "recovered-recompute" {
					t.Errorf("%s: recovery entry mode %q", name, first.Mode)
				}
				if tc.committed && first.Mode == "restored" && first.Fingerprint != want[name] {
					// Generation 2 committed before the crash: the manifest's
					// lineage watermark is the pre-crash state, bit-identical.
					t.Errorf("%s: restored fingerprint %s, want pre-crash %s",
						name, first.Fingerprint, want[name])
				}
			}

			// Replay the journal suffix and converge, then every view's live
			// fingerprint must match the pre-crash warehouse bit for bit.
			if err := c.Flush(); err != nil {
				t.Fatal(err)
			}
			got := lineageFingerprints(c.Lineage())
			names := make([]string, 0, len(want))
			for name := range want {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				if got[name] != want[name] {
					t.Errorf("%s: post-recovery fingerprint %s, want %s", name, got[name], want[name])
				}
			}

			// The restart boundary must not break the lineage ordering
			// invariants either.
			for name, vl := range c.Lineage() {
				for i, e := range vl.Entries {
					if e.LSNLo > e.LSNHi {
						t.Errorf("%s entry %d: inverted LSN range %d > %d", name, i, e.LSNLo, e.LSNHi)
					}
					if i > 0 && e.LSNLo < vl.Entries[i-1].LSNHi {
						t.Errorf("%s: lineage overlaps across restart: %+v then %+v",
							name, vl.Entries[i-1], e)
					}
				}
			}
		})
	}
}
