package mvpp_test

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	mvpp "github.com/warehousekit/mvpp"
)

// resultRows renders a result order-independently for comparison.
func resultRows(res *mvpp.QueryResult) []string {
	rows := res.Values()
	out := make([]string, len(rows))
	for i, row := range rows {
		parts := make([]string, len(row))
		for c, v := range row {
			parts[c] = fmt.Sprint(v)
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

func TestServerClosedErr(t *testing.T) {
	_, srv := paperServer(t, mvpp.ServeOptions{})
	if err := srv.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := srv.Query(context.Background(), "Q1"); !errors.Is(err, mvpp.ErrServerClosed) {
		t.Errorf("Query after Close = %v, want ErrServerClosed", err)
	}
	if _, err := srv.InjectDeltas(0.01); !errors.Is(err, mvpp.ErrServerClosed) {
		t.Errorf("InjectDeltas after Close = %v, want ErrServerClosed", err)
	}
	if err := srv.Flush(); !errors.Is(err, mvpp.ErrServerClosed) {
		t.Errorf("Flush after Close = %v, want ErrServerClosed", err)
	}
}

func TestServerDegradesUnderInjectedFaults(t *testing.T) {
	inj := mvpp.NewFaultInjector(5, mvpp.FaultPlan{
		mvpp.FaultSiteEngineRefresh:            {ErrProb: 1},
		mvpp.FaultSiteEngineIncrementalRefresh: {ErrProb: 1},
	})
	design, srv := paperServer(t, mvpp.ServeOptions{
		Injector: inj,
		Retry:    mvpp.RetryPolicy{MaxAttempts: 2, BaseDelay: 50 * time.Microsecond, MaxDelay: time.Millisecond},
		Breaker:  mvpp.BreakerPolicy{FailureThreshold: 1, Cooldown: time.Millisecond},
	})
	// The healthy twin answers the same workload from intact views.
	_, healthy := paperServer(t, mvpp.ServeOptions{})

	for _, s := range []*mvpp.Server{srv, healthy} {
		if _, err := s.InjectDeltas(0.05); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	health := srv.Health()
	if len(health) == 0 {
		t.Fatal("no view health reported")
	}
	degrading := 0
	for view, h := range health {
		if h.State != mvpp.BreakerOpen {
			t.Errorf("%s: breaker %v, want open", view, h.State)
		}
		if h.Degrading {
			degrading++
		}
		if h.LagRows == 0 {
			t.Errorf("%s: lag 0 after failed refresh", view)
		}
	}
	if degrading == 0 {
		t.Fatal("no view degrading with all breakers open")
	}

	ctx := context.Background()
	for _, q := range design.Queries() {
		got, err := srv.Query(ctx, q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		want, err := healthy.Query(ctx, q)
		if err != nil {
			t.Fatalf("%s healthy: %v", q, err)
		}
		a, b := resultRows(got), resultRows(want)
		if len(a) != len(b) {
			t.Fatalf("%s: degraded rows %d != healthy rows %d", q, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: degraded row %d = %q, healthy %q", q, i, a[i], b[i])
			}
		}
	}
	stats := srv.Stats()
	if stats.DegradedQueries == 0 {
		t.Error("no degraded queries counted")
	}
	if stats.BreakerTrips == 0 {
		t.Error("no breaker trips counted")
	}

	// Disarm, wait out the cooldown, and the next epoch recovers.
	inj.Disarm()
	time.Sleep(5 * time.Millisecond)
	if err := srv.Flush(); err != nil {
		t.Fatal(err)
	}
	for view, h := range srv.Health() {
		if h.State != mvpp.BreakerClosed || h.LagRows != 0 || h.Degrading {
			t.Errorf("%s after recovery: %+v", view, h)
		}
	}
}

func TestServerJournalReplayAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "deltas.journal")
	_, crashed := paperServer(t, mvpp.ServeOptions{Seed: 21, JournalPath: path})
	ingested, err := crashed.InjectDeltas(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if ingested == 0 {
		t.Fatal("no deltas ingested")
	}
	if err := crashed.Close(); err != nil { // crash: nothing flushed
		t.Fatal(err)
	}

	design, reborn := paperServer(t, mvpp.ServeOptions{Seed: 21, JournalPath: path})
	if got := reborn.Stats().ReplayedDeltaRows; got != int64(ingested) {
		t.Fatalf("replayed %d rows, want %d", got, ingested)
	}
	if err := reborn.Flush(); err != nil {
		t.Fatal(err)
	}

	// A control that ingested the same deltas (same seed) without crashing
	// must agree on every query.
	_, control := paperServer(t, mvpp.ServeOptions{Seed: 21})
	if _, err := control.InjectDeltas(0.05); err != nil {
		t.Fatal(err)
	}
	if err := control.Flush(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, q := range design.Queries() {
		a, err := reborn.Query(ctx, q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		b, err := control.Query(ctx, q)
		if err != nil {
			t.Fatalf("%s control: %v", q, err)
		}
		ra, rb := resultRows(a), resultRows(b)
		if len(ra) != len(rb) {
			t.Fatalf("%s: replayed rows %d != control rows %d", q, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("%s: replayed row %d = %q, control %q", q, i, ra[i], rb[i])
			}
		}
	}
}

func TestServeJournalAndPathExclusive(t *testing.T) {
	design, err := paperDesigner(t, mvpp.Options{}).Design()
	if err != nil {
		t.Fatal(err)
	}
	_, err = design.NewServer(mvpp.ServeOptions{
		Scale:       0.01,
		Journal:     mvpp.NewMemJournal(),
		JournalPath: filepath.Join(t.TempDir(), "j"),
	})
	if err == nil {
		t.Fatal("Journal+JournalPath accepted")
	}
}
