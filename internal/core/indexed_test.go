package core_test

import (
	"testing"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/core"
	"github.com/warehousekit/mvpp/internal/cost"
	"github.com/warehousekit/mvpp/internal/paper"
)

// TestIndexedViewsLowerSelectiveFilterCost exercises §3.2's index argument
// with a *selective* predicate (s = 0.02) applied above a shared,
// materialized Order⋈Customer join: an index lookup beats re-scanning the
// stored view. The Figure 3 filters (s = 0.5) correctly gain nothing — an
// index that matches half the blocks is no better than the paper's
// half-scan (see TestIndexedViewsNeverWorse).
func TestIndexedViewsLowerSelectiveFilterCost(t *testing.T) {
	ex, err := paper.Load()
	if err != nil {
		t.Fatal(err)
	}
	ord, _ := ex.Catalog.Scan("Order")
	cust, _ := ex.Catalog.Scan("Customer")
	join := algebra.NewJoin(ord, cust, []algebra.JoinCond{
		{Left: algebra.Ref("Order", "Cid"), Right: algebra.Ref("Customer", "Cid")}})
	// Customer.city has NDV 50 → s = 0.02.
	la := algebra.NewSelect(join, algebra.Eq(algebra.Ref("Customer", "city"), algebra.StringVal("LA")))
	qa := algebra.NewProject(la, []algebra.ColumnRef{algebra.Ref("Customer", "name"), algebra.Ref("Order", "quantity")})
	qb := algebra.NewProject(join, []algebra.ColumnRef{algebra.Ref("Customer", "city"), algebra.Ref("Order", "date")})

	est := cost.NewEstimator(ex.Catalog, cost.PaperOptions())
	model := &cost.PaperModel{}
	b := core.NewBuilder(est, model)
	if err := b.AddQuery("QA", 10, qa); err != nil {
		t.Fatal(err)
	}
	if err := b.AddQuery("QB", 1, qb); err != nil {
		t.Fatal(err)
	}
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	joinV, err := m.VertexByName("tmp1")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := joinV.Op.(*algebra.Join); !ok {
		t.Fatalf("tmp1 is %T, expected the shared join", joinV.Op)
	}
	mat := core.NewVertexSet(joinV)

	plain := m.Evaluate(model, mat)
	m.SetIndexedViews(true)
	defer m.SetIndexedViews(false)
	indexed := m.Evaluate(model, mat)

	if !(indexed.PerQuery["QA"] < plain.PerQuery["QA"]) {
		t.Errorf("QA with index %v not below scan %v", indexed.PerQuery["QA"], plain.PerQuery["QA"])
	}
	// QB has no selection over the view — unaffected.
	if indexed.PerQuery["QB"] != plain.PerQuery["QB"] {
		t.Errorf("QB changed: %v vs %v", indexed.PerQuery["QB"], plain.PerQuery["QB"])
	}
	if indexed.Maintenance != plain.Maintenance {
		t.Errorf("maintenance changed: %v vs %v", indexed.Maintenance, plain.Maintenance)
	}
}

// TestIndexedViewsNeverWorse: index pricing takes the cheaper of lookup
// and scan, so enabling it can only lower totals, for any subset.
func TestIndexedViewsNeverWorse(t *testing.T) {
	m, model := figure3(t)
	for mask := uint64(0); mask < 1<<11; mask += 37 {
		set := randomSubset(m, mask)
		plain := m.Evaluate(model, set)
		m.SetIndexedViews(true)
		indexed := m.Evaluate(model, set)
		m.SetIndexedViews(false)
		if indexed.Total > plain.Total+1e-9 {
			t.Fatalf("mask %d: indexed %v worse than plain %v", mask, indexed.Total, plain.Total)
		}
	}
}

// TestIndexedViewsOnlyAffectsSelectionsOverViews: a selection over a
// non-materialized input keeps its scan cost.
func TestIndexedViewsOnlyAffectsSelectionsOverViews(t *testing.T) {
	m, model := figure3(t)
	m.SetIndexedViews(true)
	defer m.SetIndexedViews(false)
	// Nothing materialized → identical to the plain all-virtual cost.
	indexed := m.AllVirtual(model)
	m.SetIndexedViews(false)
	plain := m.AllVirtual(model)
	if indexed.Total != plain.Total {
		t.Errorf("all-virtual changed with indexing: %v vs %v", indexed.Total, plain.Total)
	}
}
