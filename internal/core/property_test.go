package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/warehousekit/mvpp/internal/core"
	"github.com/warehousekit/mvpp/internal/cost"
	"github.com/warehousekit/mvpp/internal/optimizer"
	"github.com/warehousekit/mvpp/internal/workload"
)

// randomSubset picks a vertex subset of the inner vertices from a bitmask.
func randomSubset(m *core.MVPP, mask uint64) core.VertexSet {
	set := make(core.VertexSet)
	for i, v := range m.InnerVertices() {
		if mask&(1<<uint(i%64)) != 0 && i < 64 {
			set[v.ID] = true
		}
	}
	return set
}

// Property: Total = Query + Maintenance for every subset; maintenance is
// never negative; the empty set has zero maintenance.
func TestEvaluateAccountingIdentity(t *testing.T) {
	m, model := figure3(t)
	f := func(mask uint64) bool {
		c := m.Evaluate(model, randomSubset(m, mask))
		if c.Maintenance < 0 || c.Query < 0 {
			return false
		}
		return c.Total == c.Query+c.Maintenance
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: query cost is monotone — materializing more can only lower (or
// keep) each query's cost.
func TestEvaluateQueryMonotonicity(t *testing.T) {
	m, model := figure3(t)
	f := func(mask uint64, extraIdx uint8) bool {
		base := randomSubset(m, mask)
		inner := m.InnerVertices()
		extra := inner[int(extraIdx)%len(inner)]
		bigger := base.Clone()
		bigger[extra.ID] = true

		cBase := m.Evaluate(model, base)
		cBig := m.Evaluate(model, bigger)
		for q, qc := range cBig.PerQuery {
			if qc > cBase.PerQuery[q]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Evaluate is deterministic.
func TestEvaluateDeterministic(t *testing.T) {
	m, model := figure3(t)
	f := func(mask uint64) bool {
		set := randomSubset(m, mask)
		a := m.Evaluate(model, set)
		b := m.Evaluate(model, set)
		return a.Total == b.Total && a.Query == b.Query && a.Maintenance == b.Maintenance
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the heuristic's reported costs equal an independent Evaluate of
// its chosen set, under both selection variants.
func TestSelectionCostsConsistent(t *testing.T) {
	m, model := figure3(t)
	for _, opts := range []core.SelectOptions{
		{},
		{NoBranchPruning: true},
		{DiscountedMaintenance: true},
	} {
		res := m.SelectViews(model, opts)
		check := m.Evaluate(model, res.Materialized)
		if res.Costs.Total != check.Total {
			t.Errorf("opts %+v: reported %v, evaluated %v", opts, res.Costs.Total, check.Total)
		}
	}
}

// Property: on random star workloads the whole pipeline maintains its
// invariants — candidates valid, best no worse than any candidate, design
// no worse than all-virtual.
func TestPipelineInvariantsOnRandomWorkloads(t *testing.T) {
	model := &cost.PaperModel{}
	for seed := int64(1); seed <= 6; seed++ {
		spec := workload.DefaultStar(4 + int(seed)%3)
		cat, err := workload.Star(spec)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(seed))
		nq := 3 + r.Intn(5)
		queries, err := workload.Queries(cat, spec, workload.DefaultQueries(spec), nq, seed*13)
		if err != nil {
			t.Fatal(err)
		}
		freqs := workload.ZipfFrequencies(nq, 1, 10)
		est := cost.NewEstimator(cat, cost.DefaultOptions())
		opt := optimizer.New(est, model, optimizer.Options{})
		plans := make([]core.QueryPlan, nq)
		for i, q := range queries {
			p, _, err := opt.Optimize(q)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, q.Name, err)
			}
			plans[i] = core.QueryPlan{Name: q.Name, Freq: freqs[i], Plan: p}
		}
		cands, err := core.Generate(est, model, plans, core.GenOptions{MaxRotations: 2})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		best := core.Best(cands)
		for _, c := range cands {
			if err := c.MVPP.Validate(); err != nil {
				t.Errorf("seed %d: invalid candidate: %v", seed, err)
			}
			if best.Selection.Costs.Total > c.Selection.Costs.Total+1e-9 {
				t.Errorf("seed %d: best not best", seed)
			}
			virtual := c.MVPP.AllVirtual(model)
			if c.Selection.Costs.Total > virtual.Total+1e-9 {
				t.Errorf("seed %d: selection %v worse than all-virtual %v",
					seed, c.Selection.Costs.Total, virtual.Total)
			}
		}
	}
}

// Property: weights agree with their definition for every vertex.
func TestWeightDefinition(t *testing.T) {
	m, _ := figure3(t)
	for _, v := range m.InnerVertices() {
		saving := 0.0
		for _, q := range m.QueriesUsing(v) {
			saving += m.Fq[q] * v.Ca
		}
		want := saving - m.MaintenanceFrequency(v)*v.Cm
		if v.Weight != want {
			t.Errorf("%s: weight %v, want %v", v.Name, v.Weight, want)
		}
	}
}

// Property: IncrementalGain with an empty set equals the weight.
func TestIncrementalGainMatchesWeightOnEmptySet(t *testing.T) {
	m, _ := figure3(t)
	for _, v := range m.InnerVertices() {
		if got := m.IncrementalGain(v, core.VertexSet{}); got != v.Weight {
			t.Errorf("%s: Cs(∅) = %v, weight = %v", v.Name, got, v.Weight)
		}
	}
}
