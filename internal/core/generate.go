package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/cost"
	"github.com/warehousekit/mvpp/internal/obs"
)

// QueryPlan pairs a query with its individually optimal plan — the inputs
// of the multiple-MVPP generation algorithm (paper Figure 4, step 1).
type QueryPlan struct {
	Name string
	Freq float64
	Plan algebra.Node
}

// GenOptions configures MVPP generation; the zero value follows the paper.
type GenOptions struct {
	// MaxRotations limits how many seed rotations are generated; 0 means
	// all k (paper step 4.5 rotates each plan to the front once).
	MaxRotations int
	// PushDisjunctions additionally pushes the disjunction of the queries'
	// differing leaf-local selections onto shared scans (paper step 5's
	// general case). Each query still re-applies its own selection above
	// the shared subplan, preserving semantics.
	PushDisjunctions bool
	// PushProjections inserts projections above leaves keeping the union of
	// the attributes any query needs plus join attributes (paper step 6).
	PushProjections bool
	// NoPushdown skips steps 5–6 entirely, yielding MVPPs in the
	// selections-above-joins form of the paper's Figure 7 — an ablation
	// knob.
	NoPushdown bool
	// Delta, when non-nil, installs delta-propagation maintenance pricing
	// on every candidate before view selection: each vertex's Cm becomes
	// min(recompute, incremental) under these per-relation delta fractions.
	Delta *cost.DeltaSpec
	// Select configures the view-selection heuristic run on each candidate.
	Select SelectOptions
	// Obs receives the generation span, one child span per rotation,
	// per-candidate events with their selected costs, and the merge/
	// candidate counters. Nil disables instrumentation.
	Obs obs.Observer
}

// Candidate is one generated MVPP with its heuristic materialization choice.
type Candidate struct {
	MVPP *MVPP
	// Selection is the Figure 9 heuristic's result on this MVPP.
	Selection *SelectionResult
	// SeedOrder is the query merge order that produced the MVPP.
	SeedOrder []string
	// Signature identifies the MVPP's vertex structure; rotations that
	// produce identical DAGs share a signature.
	Signature string
}

// prepared is a query plan with its pushed-up decomposition and merge rank.
type prepared struct {
	QueryPlan
	dec  *algebra.Decomposed
	rank float64 // fq · Ca
}

// Generate runs the Figure 4 algorithm: normalize each optimal plan to a
// join skeleton (push selections/projections up), order plans by descending
// fq·Ca, merge them into a shared DAG seeded by each rotation of that order,
// push common selections and projections back down, and return one evaluated
// candidate per distinct resulting MVPP.
func Generate(est *cost.Estimator, model cost.Model, plans []QueryPlan, opts GenOptions) ([]*Candidate, error) {
	if len(plans) == 0 {
		return nil, fmt.Errorf("core: no query plans to generate MVPPs from")
	}
	gsp := obs.Start(opts.Obs, "generate", obs.Int("queries", int64(len(plans))))
	defer obs.End(gsp)
	genObs := obs.From(gsp)
	prep := make([]prepared, len(plans))
	for i, qp := range plans {
		if err := algebra.Validate(qp.Plan); err != nil {
			return nil, fmt.Errorf("core: query %s: %w", qp.Name, err)
		}
		dec, err := algebra.Decompose(qp.Plan)
		if err != nil {
			return nil, fmt.Errorf("core: query %s: %w", qp.Name, err)
		}
		ca, err := est.PlanCost(model, qp.Plan)
		if err != nil {
			return nil, fmt.Errorf("core: query %s: %w", qp.Name, err)
		}
		prep[i] = prepared{QueryPlan: qp, dec: dec, rank: qp.Freq * ca}
	}
	// Step 3: descending fq·Ca.
	sort.SliceStable(prep, func(i, j int) bool { return prep[i].rank > prep[j].rank })

	k := len(prep)
	rotations := k
	if opts.MaxRotations > 0 && opts.MaxRotations < k {
		rotations = opts.MaxRotations
	}

	// Rotations are independent; build and evaluate them in parallel. The
	// estimator is concurrency-safe, the prepared decompositions are
	// read-only, and each rotation builds its own plan trees.
	results := make([]*Candidate, rotations)
	errs := make([]error, rotations)
	var wg sync.WaitGroup
	for r := 0; r < rotations; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			order := make([]prepared, 0, k)
			order = append(order, prep[r:]...)
			order = append(order, prep[:r]...)
			rsp := obs.Start(genObs, "rotation", obs.Int("rotation", int64(r)),
				obs.String("seed", order[0].Name))
			results[r], errs[r] = buildRotation(est, model, order, opts, obs.From(rsp))
			obs.End(rsp)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Deterministic dedup in rotation order.
	candidates := obs.CounterOf(genObs, obs.CtrCandidates)
	var out []*Candidate
	seen := make(map[string]bool)
	for r, c := range results {
		if seen[c.Signature] {
			obs.Emit(genObs, obs.EvCandidateDedup,
				obs.Int("rotation", int64(r)),
				obs.String("seed_order", strings.Join(c.SeedOrder, ",")))
			continue
		}
		seen[c.Signature] = true
		candidates.Add(1)
		obs.Emit(genObs, obs.EvCandidate,
			obs.Int("rotation", int64(r)),
			obs.String("seed_order", strings.Join(c.SeedOrder, ",")),
			obs.Int("vertices", int64(len(c.MVPP.Vertices))),
			obs.Int("views", int64(len(c.Selection.Materialized))),
			obs.Float("query_cost", c.Selection.Costs.Query),
			obs.Float("maintenance_cost", c.Selection.Costs.Maintenance),
			obs.Float("total", c.Selection.Costs.Total))
		out = append(out, c)
	}
	return out, nil
}

// buildRotation produces one rotation's candidate: merge skeletons in
// order (step 4), push selections/projections down and assemble plans
// (steps 5–6), build and validate the DAG, run view selection. ro is the
// rotation's observer (nil when instrumentation is off).
func buildRotation(est *cost.Estimator, model cost.Model, order []prepared, opts GenOptions, ro obs.Observer) (*Candidate, error) {
	k := len(order)
	merges := obs.CounterOf(ro, obs.CtrMergeAttempts)
	sm := newSkeletonMerger()
	skeletons := make([]algebra.Node, k)
	decs := make([]*algebra.Decomposed, k)
	names := make([]string, k)
	for i, p := range order {
		merges.Add(1)
		skel, err := sm.merge(p.dec.JoinTree, treeJoinConds(p.dec.JoinTree))
		if err != nil {
			return nil, fmt.Errorf("core: query %s: %w", p.Name, err)
		}
		skeletons[i] = skel
		decs[i] = p.dec
		names[i] = p.Name
	}

	finals, err := assemblePlans(decs, skeletons, opts)
	if err != nil {
		return nil, err
	}

	b := NewBuilder(est, model)
	for i, p := range order {
		if err := b.AddQuery(p.Name, p.Freq, finals[i]); err != nil {
			return nil, err
		}
	}
	m, err := b.Build()
	if err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("core: generated MVPP invalid: %w", err)
	}
	if opts.Delta != nil {
		de := cost.NewDeltaEstimator(est, *opts.Delta)
		if err := m.ApplyDeltaMaintenance(de, model); err != nil {
			return nil, err
		}
	}
	m.SetObserver(ro)
	sel := opts.Select
	sel.Obs = ro
	sig := mvppSignature(m)
	return &Candidate{
		MVPP:      m,
		Selection: m.SelectViews(model, sel),
		SeedOrder: names,
		Signature: sig,
	}, nil
}

// Best returns the candidate whose selected design has the lowest total
// cost (paper: "compare the total cost of each MVPP, and select the one
// with the lowest cost").
func Best(cands []*Candidate) *Candidate {
	var best *Candidate
	for _, c := range cands {
		if best == nil || c.Selection.Costs.Total < best.Selection.Costs.Total {
			best = c
		}
	}
	return best
}

// mvppSignature fingerprints the vertex structure of an MVPP.
func mvppSignature(m *MVPP) string {
	keys := make([]string, len(m.Vertices))
	for i, v := range m.Vertices {
		keys[i] = v.Key
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

// --- Step 4: merging join skeletons ------------------------------------

// poolEntry is a reusable join pattern already present in the growing MVPP.
type poolEntry struct {
	node    algebra.Node
	leafSet map[string]bool
	conds   map[string]bool // canonical strings of internal join conditions
	order   int             // insertion order, for deterministic tie-breaks
}

// treeJoinConds collects every join condition of a join tree.
func treeJoinConds(n algebra.Node) []algebra.JoinCond {
	var out []algebra.JoinCond
	algebra.Walk(n, func(m algebra.Node) {
		if j, ok := m.(*algebra.Join); ok {
			out = append(out, j.On...)
		}
	})
	return out
}

// skeletonMerger carries the pattern pool across plans (Figure 4 step 4:
// each plan reuses the largest existing join patterns compatible with its
// own conditions and contributes its new join nodes to the pool).
type skeletonMerger struct {
	pool   []*poolEntry
	byKey  map[string]*poolEntry
	leaves map[string]algebra.Node
}

func newSkeletonMerger() *skeletonMerger {
	return &skeletonMerger{
		byKey:  make(map[string]*poolEntry),
		leaves: make(map[string]algebra.Node),
	}
}

// condStrings collects the canonical join-condition strings of a skeleton.
func condStrings(n algebra.Node) map[string]bool {
	out := make(map[string]bool)
	algebra.Walk(n, func(m algebra.Node) {
		if j, ok := m.(*algebra.Join); ok {
			for _, c := range j.On {
				out[c.CanonicalString()] = true
			}
		}
	})
	return out
}

// condsWithin returns the subset of conds whose endpoint relations are both
// inside the leaf set.
func condsWithin(conds []algebra.JoinCond, leafSet map[string]bool) map[string]bool {
	out := make(map[string]bool)
	for _, c := range conds {
		if leafSet[c.Left.Relation] && leafSet[c.Right.Relation] {
			out[c.CanonicalString()] = true
		}
	}
	return out
}

func setEqual(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// register interns every join subtree (and leaf) of a skeleton into the
// pool.
func (sm *skeletonMerger) register(n algebra.Node) {
	switch v := n.(type) {
	case *algebra.Scan:
		if _, ok := sm.leaves[v.Relation]; !ok {
			sm.leaves[v.Relation] = v
		}
	case *algebra.Join:
		sm.register(v.Left)
		sm.register(v.Right)
		key := algebra.StructuralKey(v)
		if _, ok := sm.byKey[key]; ok {
			return
		}
		leafSet := make(map[string]bool)
		for _, l := range algebra.Leaves(v) {
			leafSet[l] = true
		}
		e := &poolEntry{node: v, leafSet: leafSet, conds: condStrings(v), order: len(sm.pool)}
		sm.byKey[key] = e
		sm.pool = append(sm.pool, e)
	default:
		for _, c := range n.Children() {
			sm.register(c)
		}
	}
}

// merge incorporates one plan's join skeleton, reusing pooled patterns, and
// returns the plan's (possibly rewritten) skeleton root.
func (sm *skeletonMerger) merge(joinTree algebra.Node, joinConds []algebra.JoinCond) (algebra.Node, error) {
	leaves := algebra.Leaves(joinTree)
	if len(leaves) == 1 {
		// Single-relation query: share the scan.
		if l, ok := sm.leaves[leaves[0]]; ok {
			return l, nil
		}
		sm.register(joinTree)
		return joinTree, nil
	}

	remaining := make(map[string]bool, len(leaves))
	for _, l := range leaves {
		remaining[l] = true
	}

	// Step 4.3.1: choose maximal reusable patterns. A pooled pattern is
	// compatible when its leaves are all unclaimed leaves of this plan and
	// its internal conditions are exactly this plan's conditions restricted
	// to those leaves.
	entries := make([]*poolEntry, len(sm.pool))
	copy(entries, sm.pool)
	sort.SliceStable(entries, func(i, j int) bool {
		if len(entries[i].leafSet) != len(entries[j].leafSet) {
			return len(entries[i].leafSet) > len(entries[j].leafSet)
		}
		return entries[i].order < entries[j].order
	})
	var pieces []algebra.Node
	for _, e := range entries {
		ok := true
		for l := range e.leafSet {
			if !remaining[l] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if !setEqual(e.conds, condsWithin(joinConds, e.leafSet)) {
			continue
		}
		pieces = append(pieces, e.node)
		for l := range e.leafSet {
			delete(remaining, l)
		}
	}
	// Singleton leaves for whatever is left, shared with the pool.
	leafOrder := leafPositions(joinTree)
	for _, l := range leaves {
		if !remaining[l] {
			continue
		}
		scan := sm.leaves[l]
		if scan == nil {
			scan = findScan(joinTree, l)
			sm.leaves[l] = scan
		}
		pieces = append(pieces, scan)
	}

	// Step 4.3.2: join the pieces, preserving the source plan's leaf order
	// (pieces are ordered by their first leaf's position in the plan).
	sort.SliceStable(pieces, func(i, j int) bool {
		return firstLeafPos(pieces[i], leafOrder) < firstLeafPos(pieces[j], leafOrder)
	})
	acc := pieces[0]
	pending := pieces[1:]
	for len(pending) > 0 {
		progressed := false
		for i, p := range pending {
			conds := connectingConds(acc, p, joinConds)
			if len(conds) == 0 {
				continue
			}
			acc = algebra.NewJoin(acc, p, conds)
			pending = append(pending[:i], pending[i+1:]...)
			progressed = true
			break
		}
		if !progressed {
			return nil, fmt.Errorf("core: join graph disconnected while merging skeleton")
		}
	}
	sm.register(acc)
	return acc, nil
}

// connectingConds returns the plan conditions linking the two pieces,
// oriented left-side-first.
func connectingConds(left, right algebra.Node, conds []algebra.JoinCond) []algebra.JoinCond {
	ls, rs := left.Schema(), right.Schema()
	var out []algebra.JoinCond
	for _, c := range conds {
		switch {
		case ls.Has(c.Left) && rs.Has(c.Right):
			out = append(out, c)
		case ls.Has(c.Right) && rs.Has(c.Left):
			out = append(out, algebra.JoinCond{Left: c.Right, Right: c.Left})
		}
	}
	return out
}

// leafPositions maps each relation to its left-to-right position in the
// join tree.
func leafPositions(n algebra.Node) map[string]int {
	pos := make(map[string]int)
	algebra.Walk(n, func(m algebra.Node) {
		if s, ok := m.(*algebra.Scan); ok {
			if _, seen := pos[s.Relation]; !seen {
				pos[s.Relation] = len(pos)
			}
		}
	})
	return pos
}

func firstLeafPos(n algebra.Node, pos map[string]int) int {
	min := int(^uint(0) >> 1)
	for _, l := range algebra.Leaves(n) {
		if p, ok := pos[l]; ok && p < min {
			min = p
		}
	}
	return min
}

func findScan(n algebra.Node, relation string) algebra.Node {
	var out algebra.Node
	algebra.Walk(n, func(m algebra.Node) {
		if s, ok := m.(*algebra.Scan); ok && s.Relation == relation && out == nil {
			out = s
		}
	})
	return out
}
