package core_test

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/core"
	"github.com/warehousekit/mvpp/internal/cost"
	"github.com/warehousekit/mvpp/internal/datagen"
	"github.com/warehousekit/mvpp/internal/engine"
	"github.com/warehousekit/mvpp/internal/optimizer"
	"github.com/warehousekit/mvpp/internal/paper"
	"github.com/warehousekit/mvpp/internal/sqlparse"
)

// TestGenerateDifferential: for random workloads over the paper schema,
// every candidate MVPP's per-query root must compute exactly the rows the
// query's individually optimized plan computes — executed on real data.
// This exercises skeleton merging, common/disjunctive selection push-down,
// projection push-down, and residual placement in one shot.
func TestGenerateDifferential(t *testing.T) {
	ex, err := paper.Load()
	if err != nil {
		t.Fatal(err)
	}
	db, err := datagen.PaperDB(8, 0.004, 777)
	if err != nil {
		t.Fatal(err)
	}

	// A pool of query templates with varying overlap.
	templates := []string{
		`SELECT Product.name FROM Product, Division WHERE Division.city = '%s' AND Product.Did = Division.Did`,
		`SELECT Part.name FROM Product, Part, Division WHERE Division.city = '%s' AND Product.Did = Division.Did AND Part.Pid = Product.Pid`,
		`SELECT Customer.name, quantity FROM Order, Customer WHERE quantity > %d AND Order.Cid = Customer.Cid`,
		`SELECT Customer.city, date FROM Order, Customer WHERE date > 7/1/96 AND Order.Cid = Customer.Cid`,
		`SELECT Customer.name, Product.name, quantity FROM Product, Division, Order, Customer WHERE Division.city = '%s' AND Product.Did = Division.Did AND Product.Pid = Order.Pid AND Order.Cid = Customer.Cid`,
		`SELECT Customer.city, SUM(quantity) AS total FROM Order, Customer WHERE Order.Cid = Customer.Cid GROUP BY Customer.city`,
		`SELECT Division.city, COUNT(*) AS n FROM Product, Division WHERE Product.Did = Division.Did GROUP BY Division.city`,
	}
	cities := []string{"LA", "SF"}
	quantities := []int{50, 100, 150}

	r := rand.New(rand.NewSource(42))
	genOptVariants := []core.GenOptions{
		{},
		{PushDisjunctions: true},
		{PushProjections: true},
		{PushDisjunctions: true, PushProjections: true},
		{NoPushdown: true},
	}

	for trial := 0; trial < 8; trial++ {
		// Pick 3..5 random (possibly overlapping) queries.
		n := 3 + r.Intn(3)
		var plans []core.QueryPlan
		est := cost.NewEstimator(ex.Catalog, cost.DefaultOptions())
		model := &cost.PaperModel{}
		opt := optimizer.New(est, model, optimizer.Options{})
		reference := make(map[string]string) // query name → result key
		for i := 0; i < n; i++ {
			tmpl := templates[r.Intn(len(templates))]
			var sql string
			switch {
			case contains(tmpl, "%s"):
				sql = fmt.Sprintf(tmpl, cities[r.Intn(len(cities))])
			case contains(tmpl, "%d"):
				sql = fmt.Sprintf(tmpl, quantities[r.Intn(len(quantities))])
			default:
				sql = tmpl
			}
			name := fmt.Sprintf("T%dQ%d", trial, i)
			q, err := sqlparse.BindQuery(ex.Catalog, name, sql)
			if err != nil {
				t.Fatal(err)
			}
			plan, _, err := opt.Optimize(q)
			if err != nil {
				t.Fatal(err)
			}
			plans = append(plans, core.QueryPlan{Name: name, Freq: 1 + float64(r.Intn(10)), Plan: plan})
			res, err := db.Execute(plan)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			reference[name] = multisetKey(t, res, plan.Schema())
		}

		opts := genOptVariants[trial%len(genOptVariants)]
		cands, err := core.Generate(est, model, plans, opts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, c := range cands {
			for name, root := range c.MVPP.Roots {
				res, err := db.Execute(root.Op)
				if err != nil {
					t.Fatalf("trial %d %s (opts %+v): %v\n%s", trial, name, opts, err, root.Op.Canonical())
				}
				if got := multisetKey(t, res, root.Op.Schema()); got != reference[name] {
					t.Fatalf("trial %d (opts %+v): %s returns different rows through the merged MVPP\nplan: %s",
						trial, opts, name, root.Op.Canonical())
				}
			}
		}
	}
}

// multisetKey renders the result rows (schema-ordered, sorted) for
// comparison.
func multisetKey(t *testing.T, res *engine.Result, schema *algebra.Schema) string {
	t.Helper()
	rows := make([]string, 0, res.Table.NumRows())
	for i := 0; i < res.Table.NumRows(); i++ {
		row := res.Table.Row(i)
		vals := make([]string, schema.Len())
		for ci, col := range schema.Columns {
			v, ok := row.ColumnValue(algebra.Ref(col.Relation, col.Name))
			if !ok {
				t.Fatalf("column %s missing", col.QualifiedName())
			}
			vals[ci] = v.String()
		}
		rows = append(rows, fmt.Sprint(vals))
	}
	sort.Strings(rows)
	return fmt.Sprint(rows)
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
