package core_test

import (
	"math"
	"math/rand"
	"testing"

	"github.com/warehousekit/mvpp/internal/core"
	"github.com/warehousekit/mvpp/internal/cost"
	"github.com/warehousekit/mvpp/internal/optimizer"
	"github.com/warehousekit/mvpp/internal/workload"
)

// independentTotal re-derives Σ fq·Ca(q | mat) + Σ fu·Cm(v | mat) from the
// MVPP's annotations alone, mirroring the documented accounting (recursive
// compute cost cut at materialized vertices; recompute epochs shared per
// maintenance frequency; incremental-strategy views priced per vertex). It
// deliberately does not call Evaluate, so a bookkeeping bug there cannot
// cancel itself out.
func independentTotal(m *core.MVPP, model cost.Model, mat core.VertexSet) float64 {
	memo := map[int]float64{}
	var compute func(v *core.Vertex) float64
	compute = func(v *core.Vertex) float64 {
		if v.IsLeaf() || mat[v.ID] {
			return 0
		}
		if c, ok := memo[v.ID]; ok {
			return c
		}
		total := v.CaSelf
		for _, in := range v.In {
			total += compute(in)
		}
		memo[v.ID] = total
		return total
	}

	total := 0.0
	for _, q := range m.QueryOrder {
		r := m.Roots[q]
		if mat[r.ID] {
			total += m.Fq[q] * model.ReadCost(r.Est)
		} else {
			total += m.Fq[q] * compute(r)
		}
	}

	groups := map[float64][]*core.Vertex{}
	for _, v := range m.Vertices {
		if !mat[v.ID] || v.IsLeaf() {
			continue
		}
		f := m.MaintenanceFrequency(v)
		if v.MaintStrategy == core.MaintIncremental {
			total += f * v.CmIncremental
			continue
		}
		groups[f] = append(groups[f], v)
	}
	for f, views := range groups {
		total += f * epochCost(views, mat)
	}
	return total
}

// epochCost prices one shared recompute epoch: every vertex in the union of
// the group's recomputation DAGs executes once; materialized vertices
// outside the group are read, not recomputed.
func epochCost(views []*core.Vertex, mat core.VertexSet) float64 {
	inGroup := map[int]bool{}
	for _, v := range views {
		inGroup[v.ID] = true
	}
	seen := map[int]bool{}
	total := 0.0
	var acc func(v *core.Vertex)
	acc = func(v *core.Vertex) {
		if seen[v.ID] || v.IsLeaf() {
			seen[v.ID] = true
			return
		}
		seen[v.ID] = true
		total += v.CaSelf
		for _, in := range v.In {
			if mat[in.ID] {
				continue
			}
			acc(in)
		}
	}
	for _, v := range views {
		if seen[v.ID] {
			continue
		}
		seen[v.ID] = true
		total += v.CaSelf
		for _, in := range v.In {
			if mat[in.ID] {
				continue
			}
			acc(in)
		}
	}
	return total
}

// randomStarCandidates designs random star workloads, optionally with
// incremental maintenance pricing, and hands each candidate to check.
func randomStarCandidates(t *testing.T, seed int64, delta *cost.DeltaSpec,
	check func(seed int64, c *core.Candidate, model cost.Model)) {
	t.Helper()
	model := &cost.PaperModel{}
	spec := workload.DefaultStar(4 + int(seed)%3)
	cat, err := workload.Star(spec)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(seed))
	nq := 3 + r.Intn(5)
	queries, err := workload.Queries(cat, spec, workload.DefaultQueries(spec), nq, seed*17)
	if err != nil {
		t.Fatal(err)
	}
	freqs := workload.ZipfFrequencies(nq, 1, 10)
	est := cost.NewEstimator(cat, cost.DefaultOptions())
	opt := optimizer.New(est, model, optimizer.Options{})
	plans := make([]core.QueryPlan, nq)
	for i, q := range queries {
		p, _, err := opt.Optimize(q)
		if err != nil {
			t.Fatalf("seed %d %s: %v", seed, q.Name, err)
		}
		plans[i] = core.QueryPlan{Name: q.Name, Freq: freqs[i], Plan: p}
	}
	cands, err := core.Generate(est, model, plans, core.GenOptions{MaxRotations: 2, Delta: delta})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	for _, c := range cands {
		check(seed, c, model)
	}
}

// TestEvaluateMatchesIndependentRecomputation: on random workloads, with
// and without delta pricing, the selection's reported total equals an
// independent re-derivation of Σ fq·Ca(q) + Σ fu·Cm(v).
func TestEvaluateMatchesIndependentRecomputation(t *testing.T) {
	for _, delta := range []*cost.DeltaSpec{nil, {DefaultFraction: 0.02}} {
		for seed := int64(1); seed <= 5; seed++ {
			randomStarCandidates(t, seed, delta, func(seed int64, c *core.Candidate, model cost.Model) {
				got := c.Selection.Costs.Total
				want := independentTotal(c.MVPP, model, c.Selection.Materialized)
				if math.Abs(got-want) > 1e-6*math.Max(1, math.Abs(want)) {
					t.Errorf("seed %d delta=%v: reported total %v, independent %v",
						seed, delta != nil, got, want)
				}
				// And the randomized subsets, not just the chosen one.
				r := rand.New(rand.NewSource(seed * 31))
				inner := c.MVPP.InnerVertices()
				for trial := 0; trial < 8; trial++ {
					mat := core.VertexSet{}
					for _, v := range inner {
						if r.Intn(2) == 0 {
							mat[v.ID] = true
						}
					}
					ev := c.MVPP.Evaluate(model, mat)
					want := independentTotal(c.MVPP, model, mat)
					if math.Abs(ev.Total-want) > 1e-6*math.Max(1, math.Abs(want)) {
						t.Errorf("seed %d delta=%v trial %d: Evaluate %v, independent %v",
							seed, delta != nil, trial, ev.Total, want)
					}
				}
			})
		}
	}
}

// TestIncrementalMaintenancePerVertexInvariants: with delta pricing on,
// every vertex's effective Cm is the min of the two strategies and the
// recorded strategy matches the winner.
func TestIncrementalMaintenancePerVertexInvariants(t *testing.T) {
	delta := &cost.DeltaSpec{DefaultFraction: 0.01}
	for seed := int64(1); seed <= 5; seed++ {
		randomStarCandidates(t, seed, delta, func(seed int64, c *core.Candidate, model cost.Model) {
			if !c.MVPP.DeltaEnabled() {
				t.Fatalf("seed %d: delta pricing not applied", seed)
			}
			for _, v := range c.MVPP.InnerVertices() {
				if v.Cm > v.CmRecompute+1e-9 {
					t.Errorf("seed %d %s: Cm %v exceeds recompute %v", seed, v.Name, v.Cm, v.CmRecompute)
				}
				want := math.Min(v.CmRecompute, v.CmIncremental)
				if math.Abs(v.Cm-want) > 1e-9*math.Max(1, want) {
					t.Errorf("seed %d %s: Cm %v, want min(%v, %v)", seed, v.Name, v.Cm, v.CmRecompute, v.CmIncremental)
				}
				wantStrat := core.MaintRecompute
				if v.CmIncremental < v.CmRecompute {
					wantStrat = core.MaintIncremental
				}
				if v.MaintStrategy != wantStrat {
					t.Errorf("seed %d %s: strategy %v, want %v (rec %v, inc %v)",
						seed, v.Name, v.MaintStrategy, wantStrat, v.CmRecompute, v.CmIncremental)
				}
			}
		})
	}
}

// TestGreedyNeverWorseThanMaterializeNothing: with and without delta
// pricing, the selection never costs more than leaving every view virtual.
func TestGreedyNeverWorseThanMaterializeNothing(t *testing.T) {
	for _, delta := range []*cost.DeltaSpec{nil, {DefaultFraction: 0.05}} {
		for seed := int64(1); seed <= 5; seed++ {
			randomStarCandidates(t, seed, delta, func(seed int64, c *core.Candidate, model cost.Model) {
				virtual := c.MVPP.AllVirtual(model)
				if c.Selection.Costs.Total > virtual.Total+1e-9 {
					t.Errorf("seed %d delta=%v: selection %v worse than all-virtual %v",
						seed, delta != nil, c.Selection.Costs.Total, virtual.Total)
				}
			})
		}
	}
}

// TestDeltaPricingNeverRaisesTheTotal: pricing the extra maintenance
// option can only keep or lower the chosen design's predicted total on the
// same MVPP (the recompute plan is always still available).
func TestDeltaPricingNeverRaisesTheTotal(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		totals := map[bool]float64{}
		for _, withDelta := range []bool{false, true} {
			var delta *cost.DeltaSpec
			if withDelta {
				delta = &cost.DeltaSpec{DefaultFraction: 0.01}
			}
			best := 0.0
			randomStarCandidates(t, seed, delta, func(seed int64, c *core.Candidate, model cost.Model) {
				if best == 0 || c.Selection.Costs.Total < best {
					best = c.Selection.Costs.Total
				}
			})
			totals[withDelta] = best
		}
		if totals[true] > totals[false]+1e-9 {
			t.Errorf("seed %d: delta-enabled best %v worse than recompute-only best %v",
				seed, totals[true], totals[false])
		}
	}
}
