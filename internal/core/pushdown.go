package core

import (
	"fmt"
	"sort"

	"github.com/warehousekit/mvpp/internal/algebra"
)

// assemblePlans implements Figure 4 steps 5–6 plus final plan assembly.
//
// Step 5 (selections): for each base relation, the conjuncts that every
// query using the relation applies identically are pushed onto the shared
// scan; with PushDisjunctions, the disjunction of the queries' differing
// leaf-local restrictions is additionally pushed (each query re-applies its
// own restriction above, preserving semantics — the disjunctive filter
// shrinks the shared intermediate results).
//
// Step 6 (projections): with PushProjections, a projection keeping the
// union of the attributes any query needs — output attributes, join
// attributes, and attributes of still-unpushed selections — is inserted
// above each (possibly filtered) scan.
//
// The remaining per-query conjuncts are then placed as deep as possible
// without crossing into a subtree shared with a query that lacks the
// conjunct: a private filter wraps the highest shared vertex it would
// otherwise have to enter. This is exactly the shape of the paper's
// Figure 3, where σ date>7/1/96 (tmp5) sits above the shared
// Order⋈Customer (tmp4) rather than on the Order scan.
func assemblePlans(decs []*algebra.Decomposed, skeletons []algebra.Node, opts GenOptions) ([]algebra.Node, error) {
	k := len(decs)

	// Residual conjuncts per query, keyed for removal by canonical string.
	residual := make([][]algebra.Predicate, k)
	for i, d := range decs {
		residual[i] = append(residual[i], d.Selections...)
	}

	if !opts.NoPushdown {
		leafRepl := planLeafPushdown(decs, skeletons, residual, opts)
		// Apply the same leaf replacement in every query's skeleton.
		for i := range skeletons {
			skeletons[i] = algebra.Transform(skeletons[i], func(n algebra.Node) algebra.Node {
				if s, ok := n.(*algebra.Scan); ok {
					if repl, ok := leafRepl[s.Relation]; ok {
						return repl
					}
				}
				return n
			})
		}
	}

	// Shared-vertex detection: a structural key used by two or more
	// queries is a sharing boundary for private filters.
	usage := make(map[string]int)
	for _, skel := range skeletons {
		seen := make(map[string]bool)
		algebra.Walk(skel, func(n algebra.Node) {
			seen[algebra.StructuralKey(n)] = true
		})
		for key := range seen {
			usage[key]++
		}
	}
	shared := make(map[string]bool, len(usage))
	for key, n := range usage {
		if n >= 2 {
			shared[key] = true
		}
	}

	out := make([]algebra.Node, k)
	for i, d := range decs {
		plan := skeletons[i]
		if opts.NoPushdown {
			// Figure 7 form: all selections in one block above the joins.
			if pred := algebra.NewAnd(residual[i]...); pred != nil {
				plan = algebra.NewSelect(plan, pred)
			}
		} else {
			plan = placeResiduals(plan, residual[i], shared)
		}
		switch {
		case d.TopAgg != nil:
			plan = algebra.NewAggregate(plan, d.TopAgg.GroupBy, d.TopAgg.Aggs)
		case d.Output != nil:
			plan = algebra.NewProject(plan, d.Output)
		}
		if err := algebra.Validate(plan); err != nil {
			return nil, fmt.Errorf("core: assembled plan invalid: %w", err)
		}
		out[i] = plan
	}
	return out, nil
}

// planLeafPushdown computes, per relation, the subplan replacing its scan,
// and removes pushed conjuncts from the queries' residual lists (which it
// mutates).
func planLeafPushdown(decs []*algebra.Decomposed, skeletons []algebra.Node, residual [][]algebra.Predicate, opts GenOptions) map[string]algebra.Node {
	// users[R] = query indexes whose skeleton reads R.
	users := make(map[string][]int)
	for i, skel := range skeletons {
		for _, rel := range algebra.Leaves(skel) {
			users[rel] = append(users[rel], i)
		}
	}
	rels := make([]string, 0, len(users))
	for rel := range users {
		rels = append(rels, rel)
	}
	sort.Strings(rels)

	leafRepl := make(map[string]algebra.Node, len(rels))
	for _, rel := range rels {
		scan := findScan(skeletons[users[rel][0]], rel)
		schema := scan.Schema()

		// Leaf-local conjuncts per user.
		local := make(map[int][]algebra.Predicate)
		for _, qi := range users[rel] {
			for _, p := range residual[qi] {
				if resolvesAll(schema, p) {
					local[qi] = append(local[qi], p)
				}
			}
		}

		// Common part: conjuncts every user applies (by canonical form).
		counts := make(map[string]int)
		byKey := make(map[string]algebra.Predicate)
		for _, qi := range users[rel] {
			seen := make(map[string]bool)
			for _, p := range local[qi] {
				key := p.String()
				if !seen[key] {
					seen[key] = true
					counts[key]++
					byKey[key] = p
				}
			}
		}
		var common []algebra.Predicate
		commonKeys := make(map[string]bool)
		for key, n := range counts {
			if n == len(users[rel]) {
				common = append(common, byKey[key])
				commonKeys[key] = true
			}
		}
		sort.Slice(common, func(i, j int) bool { return common[i].String() < common[j].String() })

		// Remove pushed conjuncts from residual lists.
		for _, qi := range users[rel] {
			var kept []algebra.Predicate
			for _, p := range residual[qi] {
				if resolvesAll(schema, p) && commonKeys[p.String()] {
					continue
				}
				kept = append(kept, p)
			}
			residual[qi] = kept
		}

		pushed := algebra.NewAnd(common...)

		// Disjunctive pushdown of the differing parts (step 5's general
		// case). Sound only when every user restricts the relation; each
		// user keeps its own restriction above.
		if opts.PushDisjunctions && len(users[rel]) >= 2 {
			var perUser []algebra.Predicate
			all := true
			for _, qi := range users[rel] {
				var rest []algebra.Predicate
				for _, p := range local[qi] {
					if !commonKeys[p.String()] {
						rest = append(rest, p)
					}
				}
				if len(rest) == 0 {
					all = false
					break
				}
				perUser = append(perUser, algebra.NewAnd(rest...))
			}
			if all {
				if dis := algebra.Disjoin(perUser); dis != nil {
					pushed = algebra.NewAnd(pushed, dis)
				}
			}
		}

		var repl algebra.Node = scan
		if pushed != nil {
			repl = algebra.NewSelect(repl, pushed)
		}

		if opts.PushProjections {
			need := neededColumns(rel, schema, users[rel], decs, skeletons, residual)
			if len(need) > 0 && len(need) < schema.Len() {
				repl = algebra.NewProject(repl, need)
			}
		}
		if _, isScan := repl.(*algebra.Scan); !isScan {
			leafRepl[rel] = repl
		}
	}
	return leafRepl
}

// neededColumns computes the union over users of the attributes of rel they
// still need above the leaf: output attributes, join attributes, and
// attributes of unpushed selections (paper step 6).
func neededColumns(rel string, schema *algebra.Schema, userIdx []int, decs []*algebra.Decomposed, skeletons []algebra.Node, residual [][]algebra.Predicate) []algebra.ColumnRef {
	needed := make(map[int]bool)
	addRef := func(ref algebra.ColumnRef) {
		if i := schema.IndexOf(ref); i >= 0 && (ref.Relation == rel || ref.Relation == "") {
			needed[i] = true
		}
	}
	for _, qi := range userIdx {
		for _, ref := range decs[qi].Output {
			addRef(ref)
		}
		if decs[qi].TopAgg != nil {
			for _, ref := range decs[qi].TopAgg.RequiredByAggregate() {
				addRef(ref)
			}
		}
		for _, c := range treeJoinConds(skeletons[qi]) {
			addRef(c.Left)
			addRef(c.Right)
		}
		for _, p := range residual[qi] {
			for _, ref := range p.Columns() {
				addRef(ref)
			}
		}
	}
	idx := make([]int, 0, len(needed))
	for i := range needed {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	out := make([]algebra.ColumnRef, len(idx))
	for i, j := range idx {
		c := schema.Columns[j]
		out[i] = algebra.ColumnRef{Relation: c.Relation, Name: c.Name}
	}
	return out
}

// placeResiduals sinks a query's remaining conjuncts as deep as possible,
// wrapping (rather than entering) subtrees shared with other queries.
func placeResiduals(node algebra.Node, preds []algebra.Predicate, shared map[string]bool) algebra.Node {
	if len(preds) == 0 {
		return node
	}
	if j, ok := node.(*algebra.Join); ok && !shared[algebra.StructuralKey(node)] {
		ls, rs := j.Left.Schema(), j.Right.Schema()
		var left, right, here []algebra.Predicate
		for _, p := range preds {
			switch {
			case resolvesAll(ls, p):
				left = append(left, p)
			case resolvesAll(rs, p):
				right = append(right, p)
			default:
				here = append(here, p)
			}
		}
		n := algebra.Node(algebra.NewJoin(
			placeResiduals(j.Left, left, shared),
			placeResiduals(j.Right, right, shared),
			j.On,
		))
		if pred := algebra.NewAnd(here...); pred != nil {
			n = algebra.NewSelect(n, pred)
		}
		return n
	}
	return algebra.NewSelect(node, algebra.NewAnd(preds...))
}

// resolvesAll reports whether every column of the predicate resolves in the
// schema.
func resolvesAll(s *algebra.Schema, p algebra.Predicate) bool {
	for _, ref := range p.Columns() {
		if !s.Has(ref) {
			return false
		}
	}
	return true
}
