// Package core implements the paper's primary contribution: the Multiple
// View Processing Plan (MVPP) and the materialized-view design algorithms
// built on it.
//
// An MVPP is a labeled DAG M = (V, A, R, Ca, Cm, fq, fu) — paper §3.1 —
// whose leaf vertices are base relations annotated with update frequencies
// fu, whose root vertices are warehouse queries annotated with access
// frequencies fq, and whose inner vertices are relational operations.
// Ca(v) is the cost of computing v's relation from base relations and Cm(v)
// the cost of maintaining v if materialized.
//
// The package provides:
//
//   - Builder / MVPP: DAG construction by hash-consing plan subtrees on
//     their structural keys, so common subexpressions across queries merge
//     into shared vertices (§3.1 problem 1);
//   - Generate: the multiple-MVPP generation algorithm of Figure 4
//     (push-up, rotation merge on shared join patterns, push-down of common
//     selections and projections);
//   - SelectViews: the greedy view-selection heuristic of Figure 9, with a
//     step-by-step trace, plus an exhaustive-search baseline;
//   - Evaluate: the total-cost model Σ fq·C(query) + Σ fu·C(maintenance)
//     of §4.1 for any candidate set of materialized views.
package core

import (
	"fmt"
	"math"
	"sort"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/cost"
	"github.com/warehousekit/mvpp/internal/obs"
)

// Vertex is one node of an MVPP.
type Vertex struct {
	// ID is the vertex's position in MVPP.Vertices (topological order:
	// every vertex appears after its inputs).
	ID int
	// Op is the relational operation computing the vertex's relation R(v);
	// a *algebra.Scan for leaves.
	Op algebra.Node
	// Key is the structural key of Op — the identity under which common
	// subexpressions were merged.
	Key string
	// In lists the operand vertices (S(v)), in operand order.
	In []*Vertex
	// Out lists the consuming vertices (D(v)).
	Out []*Vertex
	// Queries lists the names of queries whose result this vertex is
	// (non-empty only for roots).
	Queries []string
	// Relation is the base relation name (non-empty only for leaves).
	Relation string
	// Name is the display label assigned at build time: the relation name
	// for leaves, "resultN" for query roots, "tmpN" for inner vertices.
	Name string

	// Est is the estimated size of R(v).
	Est cost.Estimate
	// CaSelf is the incremental cost of executing just this operation given
	// its inputs.
	CaSelf float64
	// Ca is the cumulative cost of computing R(v) from base relations
	// (each shared descendant counted once). Ca = 0 for leaves.
	Ca float64
	// Cm is the effective cost of maintaining the vertex if materialized:
	// the cheaper of CmRecompute and CmIncremental. Without delta
	// maintenance (ApplyDeltaMaintenance) it equals CmRecompute, the
	// paper's policy (§2: "re-computing is used whenever an update of
	// involved base relation occurs").
	Cm float64
	// CmRecompute is the from-base recomputation maintenance cost (= Ca).
	CmRecompute float64
	// CmIncremental is the delta-propagation maintenance cost, +Inf when
	// delta maintenance is off or the plan is not incrementally
	// maintainable (see cost.Incrementable).
	CmIncremental float64
	// MaintStrategy records which maintenance plan Cm reflects.
	MaintStrategy MaintenanceStrategy
	// MaintFreq is how many times per period the vertex is recomputed if
	// materialized (derived from the fu of the base relations below it).
	MaintFreq float64
	// Weight is the paper's w(v) ranking value.
	Weight float64
}

// IsLeaf reports whether the vertex is a base relation.
func (v *Vertex) IsLeaf() bool { return v.Relation != "" }

// IsRoot reports whether the vertex is a query result.
func (v *Vertex) IsRoot() bool { return len(v.Queries) > 0 }

// Label returns a short human-readable description of the vertex.
func (v *Vertex) Label() string {
	if v.IsLeaf() {
		return v.Relation
	}
	return v.Name + ": " + v.Op.Label()
}

// MVPP is the multiple view processing plan DAG.
type MVPP struct {
	// Vertices in topological order (inputs before consumers).
	Vertices []*Vertex
	// Roots maps query name to its root vertex.
	Roots map[string]*Vertex
	// Leaves maps base relation name to its leaf vertex.
	Leaves map[string]*Vertex
	// Fq maps query name to access frequency.
	Fq map[string]float64
	// Fu maps base relation name to update frequency.
	Fu map[string]float64
	// QueryOrder preserves the order queries were added in.
	QueryOrder []string
	// Transfer holds the per-block shipping cost of each base relation
	// whose site differs from the warehouse (nil when co-located). Set via
	// ApplyDistribution; used by Evaluate.
	Transfer map[string]float64

	// maintPolicy and deltaFraction configure refresh pricing; see
	// SetMaintenancePolicy.
	maintPolicy   MaintenancePolicy
	deltaFraction float64
	// delta is the per-vertex delta-propagation estimator installed by
	// ApplyDeltaMaintenance (nil when delta maintenance is off).
	delta *cost.DeltaEstimator
	// indexedViews prices selections over materialized views as index
	// lookups; see SetIndexedViews.
	indexedViews bool
	// evalCalls counts Evaluate invocations; see SetObserver. Nil (a no-op)
	// when observability is off.
	evalCalls *obs.Counter
}

// SetObserver wires the MVPP's evaluation counter into the observer's
// registry. A nil observer disables instrumentation again. Like the other
// MVPP knobs this is not safe to call concurrently with Evaluate.
func (m *MVPP) SetObserver(o obs.Observer) {
	m.evalCalls = obs.CounterOf(o, obs.CtrEvaluateCalls)
}

// Builder constructs an MVPP from per-query plans by hash-consing subtrees
// on their structural keys.
type Builder struct {
	est    *cost.Estimator
	model  cost.Model
	byKey  map[string]*Vertex
	order  []*Vertex
	roots  map[string]*Vertex
	leaves map[string]*Vertex
	fq     map[string]float64
	qorder []string
	err    error
}

// NewBuilder returns a builder that annotates vertices using the estimator
// and cost model.
func NewBuilder(est *cost.Estimator, model cost.Model) *Builder {
	return &Builder{
		est:    est,
		model:  model,
		byKey:  make(map[string]*Vertex),
		roots:  make(map[string]*Vertex),
		leaves: make(map[string]*Vertex),
		fq:     make(map[string]float64),
	}
}

// AddQuery merges the plan for the named query into the DAG. Equal subtrees
// (by structural key) from different queries become shared vertices.
func (b *Builder) AddQuery(name string, freq float64, plan algebra.Node) error {
	if b.err != nil {
		return b.err
	}
	if name == "" {
		return fmt.Errorf("core: query must have a name")
	}
	if _, dup := b.roots[name]; dup {
		return fmt.Errorf("core: duplicate query name %q", name)
	}
	if freq < 0 {
		return fmt.Errorf("core: query %s has negative frequency", name)
	}
	if err := algebra.Validate(plan); err != nil {
		return fmt.Errorf("core: query %s: %w", name, err)
	}
	root := b.intern(plan)
	if b.err != nil {
		return b.err
	}
	root.Queries = append(root.Queries, name)
	b.roots[name] = root
	b.fq[name] = freq
	b.qorder = append(b.qorder, name)
	return nil
}

// intern returns the vertex for the subtree, creating it (and its operand
// vertices) on first sight.
func (b *Builder) intern(n algebra.Node) *Vertex {
	key := algebra.StructuralKey(n)
	if v, ok := b.byKey[key]; ok {
		return v
	}
	var in []*Vertex
	for _, child := range n.Children() {
		cv := b.intern(child)
		if b.err != nil {
			return nil
		}
		in = append(in, cv)
	}
	est, err := b.est.Estimate(n)
	if err != nil {
		b.err = fmt.Errorf("core: %w", err)
		return nil
	}
	caSelf, err := b.est.OpCost(b.model, n)
	if err != nil {
		b.err = fmt.Errorf("core: %w", err)
		return nil
	}
	v := &Vertex{
		Op:     n,
		Key:    key,
		In:     in,
		Est:    est,
		CaSelf: caSelf,
	}
	if s, ok := n.(*algebra.Scan); ok {
		v.Relation = s.Relation
		if prev, dup := b.leaves[s.Relation]; dup && prev != v {
			// Two scans of one relation with different schemas would be a
			// catalog inconsistency; structural keys make this impossible,
			// but keep the invariant explicit.
			b.err = fmt.Errorf("core: relation %s interned twice", s.Relation)
			return nil
		}
		b.leaves[s.Relation] = v
	}
	for _, cv := range in {
		cv.Out = append(cv.Out, v)
	}
	b.byKey[key] = v
	b.order = append(b.order, v)
	return v
}

// Build finalizes the DAG: assigns IDs and names, pulls update frequencies
// from the catalog, and computes the cumulative-cost and weight annotations.
func (b *Builder) Build() (*MVPP, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.roots) == 0 {
		return nil, fmt.Errorf("core: MVPP has no queries")
	}
	m := &MVPP{
		Vertices:   b.order,
		Roots:      b.roots,
		Leaves:     b.leaves,
		Fq:         b.fq,
		Fu:         make(map[string]float64, len(b.leaves)),
		QueryOrder: b.qorder,
	}
	for rel := range b.leaves {
		m.Fu[rel] = b.est.Catalog().UpdateFrequency(rel)
	}
	tmpN, resN := 0, 0
	for i, v := range m.Vertices {
		v.ID = i
		switch {
		case v.IsLeaf():
			v.Name = v.Relation
		case v.IsRoot():
			resN++
			v.Name = fmt.Sprintf("result%d", resN)
		default:
			tmpN++
			v.Name = fmt.Sprintf("tmp%d", tmpN)
		}
	}
	m.annotate()
	return m, nil
}

// annotate computes Ca, Cm, MaintFreq and Weight for every vertex. Vertices
// are already in topological order.
func (m *MVPP) annotate() {
	// Ca: cumulative cost, each shared descendant counted once.
	for _, v := range m.Vertices {
		v.CmIncremental = math.Inf(1)
		v.MaintStrategy = MaintRecompute
		if v.IsLeaf() {
			v.Ca, v.Cm, v.CmRecompute = 0, 0, 0
			continue
		}
		seen := make(map[int]bool)
		total := 0.0
		var acc func(u *Vertex)
		acc = func(u *Vertex) {
			if seen[u.ID] {
				return
			}
			seen[u.ID] = true
			total += u.CaSelf
			for _, in := range u.In {
				acc(in)
			}
		}
		acc(v)
		v.Ca = total
		v.CmRecompute = total
		v.Cm = total // recompute maintenance until ApplyDeltaMaintenance
	}
	for _, v := range m.Vertices {
		v.MaintFreq = m.MaintenanceFrequency(v)
		v.Weight = m.WeightOf(v)
	}
}

// MaintenanceFrequency returns how often per period a materialized v is
// recomputed: the maximum update frequency among the base relations below
// it (batch recompute per update epoch — the reading under which the
// paper's own arithmetic is consistent; see EXPERIMENTS.md).
func (m *MVPP) MaintenanceFrequency(v *Vertex) float64 {
	max := 0.0
	for _, rel := range m.BaseRelationsUnder(v) {
		if f := m.Fu[rel]; f > max {
			max = f
		}
	}
	return max
}

// WeightOf computes the paper's ranking weight
//
//	w(v) = Σ_{q ∈ O_v} fq(q)·Ca(v) − fu(v)·Cm(v)
//
// where O_v is the set of queries using v and fu(v) is the vertex's
// maintenance frequency.
func (m *MVPP) WeightOf(v *Vertex) float64 {
	if v.IsLeaf() {
		return 0
	}
	saving := 0.0
	for _, q := range m.QueriesUsing(v) {
		saving += m.Fq[q] * v.Ca
	}
	return saving - m.MaintenanceFrequency(v)*v.Cm
}

// Ancestors returns D*{v}: every vertex reachable from v via out-edges.
func (m *MVPP) Ancestors(v *Vertex) []*Vertex {
	return m.reach(v, func(u *Vertex) []*Vertex { return u.Out })
}

// Descendants returns S*{v}: every vertex reachable from v via in-edges.
func (m *MVPP) Descendants(v *Vertex) []*Vertex {
	return m.reach(v, func(u *Vertex) []*Vertex { return u.In })
}

func (m *MVPP) reach(v *Vertex, next func(*Vertex) []*Vertex) []*Vertex {
	seen := map[int]bool{v.ID: true}
	var out []*Vertex
	stack := append([]*Vertex(nil), next(v)...)
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[u.ID] {
			continue
		}
		seen[u.ID] = true
		out = append(out, u)
		stack = append(stack, next(u)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// QueriesUsing returns O_v: the names of queries whose result depends on v
// (including queries rooted at v itself), sorted.
func (m *MVPP) QueriesUsing(v *Vertex) []string {
	var out []string
	out = append(out, v.Queries...)
	for _, a := range m.Ancestors(v) {
		out = append(out, a.Queries...)
	}
	sort.Strings(out)
	return out
}

// BaseRelationsUnder returns I_v: the base relations v is computed from,
// sorted. For a leaf this is the relation itself.
func (m *MVPP) BaseRelationsUnder(v *Vertex) []string {
	if v.IsLeaf() {
		return []string{v.Relation}
	}
	var out []string
	for _, d := range m.Descendants(v) {
		if d.IsLeaf() {
			out = append(out, d.Relation)
		}
	}
	sort.Strings(out)
	return out
}

// VertexByName finds a vertex by its display name ("tmp2", "result1",
// "Division", ...).
func (m *MVPP) VertexByName(name string) (*Vertex, error) {
	for _, v := range m.Vertices {
		if v.Name == name {
			return v, nil
		}
	}
	return nil, fmt.Errorf("core: no vertex named %q", name)
}

// InnerVertices returns the non-leaf vertices (materialization candidates),
// in topological order. Query roots are included: materializing a whole
// query result is one of the paper's strategies.
func (m *MVPP) InnerVertices() []*Vertex {
	var out []*Vertex
	for _, v := range m.Vertices {
		if !v.IsLeaf() {
			out = append(out, v)
		}
	}
	return out
}

// Validate checks DAG invariants: topological order, edge symmetry, roots
// reachable, leaves are scans.
func (m *MVPP) Validate() error {
	pos := make(map[*Vertex]int, len(m.Vertices))
	for i, v := range m.Vertices {
		if v.ID != i {
			return fmt.Errorf("core: vertex %s has ID %d at position %d", v.Name, v.ID, i)
		}
		pos[v] = i
	}
	for _, v := range m.Vertices {
		for _, in := range v.In {
			j, ok := pos[in]
			if !ok {
				return fmt.Errorf("core: vertex %s has foreign input", v.Name)
			}
			if j >= v.ID {
				return fmt.Errorf("core: vertex %s input %s violates topological order", v.Name, in.Name)
			}
			if !containsVertex(in.Out, v) {
				return fmt.Errorf("core: edge %s→%s missing reverse link", in.Name, v.Name)
			}
		}
		for _, out := range v.Out {
			if !containsVertex(out.In, v) {
				return fmt.Errorf("core: edge %s→%s missing forward link", v.Name, out.Name)
			}
		}
		if v.IsLeaf() {
			if len(v.In) != 0 {
				return fmt.Errorf("core: leaf %s has inputs", v.Name)
			}
		} else if len(v.In) == 0 {
			return fmt.Errorf("core: inner vertex %s has no inputs", v.Name)
		}
	}
	for q, r := range m.Roots {
		if _, ok := pos[r]; !ok {
			return fmt.Errorf("core: root of %s not in vertex list", q)
		}
	}
	return nil
}

func containsVertex(vs []*Vertex, v *Vertex) bool {
	for _, u := range vs {
		if u == v {
			return true
		}
	}
	return false
}
