package core_test

import (
	"testing"

	"github.com/warehousekit/mvpp/internal/core"
)

func TestUniformDistribution(t *testing.T) {
	d := core.UniformDistribution([]string{"Order", "Customer"}, 2)
	if d.SiteOf["Order"] == d.Warehouse {
		t.Error("relation placed at warehouse")
	}
	if got := d.CostPerBlock("a", "b"); got != 2 {
		t.Errorf("CostPerBlock = %v", got)
	}
}

func TestApplyDistribution(t *testing.T) {
	m, _ := figure3(t)
	if err := m.ApplyDistribution(core.UniformDistribution([]string{"Order"}, 3)); err != nil {
		t.Fatal(err)
	}
	if len(m.Transfer) != 1 || m.Transfer["Order"] != 3 {
		t.Errorf("Transfer = %v", m.Transfer)
	}
	if got := m.TransferSites(); len(got) != 1 || got[0] != "Order" {
		t.Errorf("TransferSites = %v", got)
	}
	// Clearing.
	if err := m.ApplyDistribution(core.Distribution{}); err != nil {
		t.Fatal(err)
	}
	if m.Transfer != nil {
		t.Errorf("Transfer not cleared: %v", m.Transfer)
	}
	// Missing cost function.
	if err := m.ApplyDistribution(core.Distribution{SiteOf: map[string]string{"Order": "s"}}); err == nil {
		t.Error("distribution without CostPerBlock accepted")
	}
	// Negative cost.
	bad := core.Distribution{
		SiteOf:       map[string]string{"Order": "s"},
		Warehouse:    "w",
		CostPerBlock: func(_, _ string) float64 { return -1 },
	}
	if err := m.ApplyDistribution(bad); err == nil {
		t.Error("negative transfer cost accepted")
	}
}

func TestDistributionRaisesVirtualQueryCost(t *testing.T) {
	m, model := figure3(t)
	local := m.AllVirtual(model)

	if err := m.ApplyDistribution(core.UniformDistribution(
		[]string{"Product", "Division", "Order", "Customer", "Part"}, 1)); err != nil {
		t.Fatal(err)
	}
	remote := m.AllVirtual(model)
	if remote.Query <= local.Query {
		t.Errorf("distributed virtual query cost %v not above local %v", remote.Query, local.Query)
	}
	// Q4 (fq=5) reads Order (6k) + Customer (2k) per execution: surcharge
	// 5 × 8000.
	wantQ4 := local.PerQuery["Q4"] + 5*8000
	if got := remote.PerQuery["Q4"]; got != wantQ4 {
		t.Errorf("Q4 distributed = %v, want %v", got, wantQ4)
	}
}

func TestDistributionMakesMaterializationMoreAttractive(t *testing.T) {
	m, model := figure3(t)
	localVirtual := m.AllVirtual(model)
	localDesign, err := m.EvaluateNames(model, []string{"tmp2", "tmp4"})
	if err != nil {
		t.Fatal(err)
	}
	localGain := localVirtual.Total - localDesign.Total

	if err := m.ApplyDistribution(core.UniformDistribution(
		[]string{"Product", "Division", "Order", "Customer", "Part"}, 5)); err != nil {
		t.Fatal(err)
	}
	remoteVirtual := m.AllVirtual(model)
	remoteDesign, err := m.EvaluateNames(model, []string{"tmp2", "tmp4"})
	if err != nil {
		t.Fatal(err)
	}
	remoteGain := remoteVirtual.Total - remoteDesign.Total
	if remoteGain <= localGain {
		t.Errorf("distribution should increase the materialization gain: local %v, remote %v",
			localGain, remoteGain)
	}
}

func TestDistributionChargesMaintenanceTransferOncePerEpoch(t *testing.T) {
	m, model := figure3(t)
	base, err := m.EvaluateNames(model, []string{"tmp4"})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ApplyDistribution(core.UniformDistribution([]string{"Order", "Customer"}, 1)); err != nil {
		t.Fatal(err)
	}
	dist, err := m.EvaluateNames(model, []string{"tmp4"})
	if err != nil {
		t.Fatal(err)
	}
	// Refreshing tmp4 ships Order (6k) + Customer (2k) once.
	want := base.Maintenance + 8000
	if dist.Maintenance != want {
		t.Errorf("distributed maintenance = %v, want %v", dist.Maintenance, want)
	}
	// Queries Q3 also pays transfer for the virtual parts it still reads
	// (Product, Division are co-located here, Order/Customer are behind
	// tmp4 which is materialized → no transfer for Q3's tmp4 path).
	if dist.PerQuery["Q4"] != base.PerQuery["Q4"] {
		t.Errorf("Q4 reads materialized tmp4; transfer should not apply: %v vs %v",
			dist.PerQuery["Q4"], base.PerQuery["Q4"])
	}
}

func TestDistributedSelectionPrefersMoreMaterialization(t *testing.T) {
	// Under heavy transfer costs the heuristic should still produce a
	// design no worse than all-virtual, and its query cost must absorb the
	// transfer savings.
	m, model := figure3(t)
	if err := m.ApplyDistribution(core.UniformDistribution(
		[]string{"Product", "Division", "Order", "Customer", "Part"}, 10)); err != nil {
		t.Fatal(err)
	}
	res := m.SelectViews(model, core.SelectOptions{})
	if v := m.AllVirtual(model); res.Costs.Total > v.Total {
		t.Errorf("distributed design %v worse than all-virtual %v", res.Costs.Total, v.Total)
	}
}
