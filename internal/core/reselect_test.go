package core_test

import (
	"testing"

	"github.com/warehousekit/mvpp/internal/core"
	"github.com/warehousekit/mvpp/internal/cost"
)

// selectionNames renders a selection as a sorted name list.
func selectionNames(m *core.MVPP, sel *core.SelectionResult) []string {
	return sel.Materialized.Names(m)
}

func sameNames(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestReselectSameFrequenciesIsStable re-selecting under the design-time
// frequencies must reproduce the design-time selection and leave the MVPP
// untouched.
func TestReselectSameFrequenciesIsStable(t *testing.T) {
	est, plans := paperQueryPlans(t, cost.PaperOptions())
	_ = est
	cands, err := core.Generate(est, &cost.PaperModel{}, plans, core.GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	best := core.Best(cands)
	m := best.MVPP
	model := &cost.PaperModel{}

	savedFq := make(map[string]float64, len(m.Fq))
	for q, f := range m.Fq {
		savedFq[q] = f
	}
	savedWeights := make(map[string]float64, len(m.Vertices))
	for _, v := range m.Vertices {
		savedWeights[v.Name] = v.Weight
	}

	again, err := m.ReselectFrequencies(model, savedFq, core.SelectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := selectionNames(m, again), selectionNames(m, best.Selection); !sameNames(got, want) {
		t.Errorf("re-selection under unchanged fq differs: got %v want %v", got, want)
	}

	for q, f := range savedFq {
		if m.Fq[q] != f {
			t.Errorf("Fq[%s] not restored: %g != %g", q, m.Fq[q], f)
		}
	}
	for _, v := range m.Vertices {
		if v.Weight != savedWeights[v.Name] {
			t.Errorf("weight of %s not restored: %g != %g", v.Name, v.Weight, savedWeights[v.Name])
		}
	}
}

// TestReselectDriftChangesSelection: concentrating the whole workload on
// Q4 (the Order⋈Customer query sharing nothing with the LA-division
// queries) must change what the heuristic materializes — the reselection
// entry point actually responds to observed drift.
func TestReselectDriftChangesSelection(t *testing.T) {
	est, plans := paperQueryPlans(t, cost.PaperOptions())
	_ = est
	cands, err := core.Generate(est, &cost.PaperModel{}, plans, core.GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	best := core.Best(cands)
	m := best.MVPP
	model := &cost.PaperModel{}

	drifted := map[string]float64{"Q1": 0, "Q2": 0, "Q3": 0, "Q4": 100}
	sel, err := m.ReselectFrequencies(model, drifted, core.SelectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, was := selectionNames(m, sel), selectionNames(m, best.Selection); sameNames(got, was) {
		t.Errorf("selection unchanged under total drift to Q4: %v", got)
	}
	// The drifted selection must price at most the all-virtual baseline
	// under the drifted frequencies (the safeguard guarantees it).
	check, err := m.ReselectFrequencies(model, drifted, core.SelectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if check.Costs.Total > sel.Costs.Total {
		t.Errorf("reselect not deterministic: %g vs %g", check.Costs.Total, sel.Costs.Total)
	}
}

// TestReselectValidatesInput: unknown query names and negative
// frequencies are rejected.
func TestReselectValidatesInput(t *testing.T) {
	est, plans := paperQueryPlans(t, cost.PaperOptions())
	_ = est
	cands, err := core.Generate(est, &cost.PaperModel{}, plans, core.GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := core.Best(cands).MVPP
	model := &cost.PaperModel{}
	if _, err := m.ReselectFrequencies(model, map[string]float64{"nope": 1}, core.SelectOptions{}); err == nil {
		t.Error("unknown query accepted")
	}
	if _, err := m.ReselectFrequencies(model, map[string]float64{"Q1": -1}, core.SelectOptions{}); err == nil {
		t.Error("negative frequency accepted")
	}
}
