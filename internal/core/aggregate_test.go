package core_test

import (
	"strings"
	"testing"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/core"
	"github.com/warehousekit/mvpp/internal/cost"
	"github.com/warehousekit/mvpp/internal/optimizer"
	"github.com/warehousekit/mvpp/internal/paper"
)

// aggregateWorkload builds a mixed workload: two aggregate queries and one
// SPJ query, all over the Order⋈Customer join.
func aggregateWorkload(t *testing.T) (*cost.Estimator, []core.QueryPlan) {
	t.Helper()
	ex, err := paper.Load()
	if err != nil {
		t.Fatal(err)
	}
	est := cost.NewEstimator(ex.Catalog, cost.DefaultOptions())
	opt := optimizer.New(est, &cost.PaperModel{}, optimizer.Options{})

	sqls := []struct {
		name string
		sql  string
		freq float64
	}{
		{"citySales", `SELECT Customer.city, SUM(quantity) AS total FROM Order, Customer
			WHERE Order.Cid = Customer.Cid GROUP BY Customer.city`, 20},
		{"cityOrders", `SELECT Customer.city, COUNT(*) AS n FROM Order, Customer
			WHERE Order.Cid = Customer.Cid GROUP BY Customer.city`, 10},
		{"bigOrders", `SELECT Customer.name, quantity FROM Order, Customer
			WHERE quantity > 100 AND Order.Cid = Customer.Cid`, 2},
	}
	var plans []core.QueryPlan
	for _, s := range sqls {
		q := bindQuery(t, ex, s.name, s.sql)
		p, _, err := opt.Optimize(q)
		if err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		plans = append(plans, core.QueryPlan{Name: s.name, Freq: s.freq, Plan: p})
	}
	return est, plans
}

func TestAggregateQueriesShareJoinInMVPP(t *testing.T) {
	est, plans := aggregateWorkload(t)
	model := &cost.PaperModel{}
	cands, err := core.Generate(est, model, plans, core.GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	best := core.Best(cands)
	if err := best.MVPP.Validate(); err != nil {
		t.Fatal(err)
	}
	// The Order⋈Customer join must be shared by at least the two aggregate
	// queries.
	sharedJoin := false
	for _, v := range best.MVPP.InnerVertices() {
		if _, ok := v.Op.(*algebra.Join); !ok {
			continue
		}
		if len(best.MVPP.QueriesUsing(v)) >= 2 {
			sharedJoin = true
		}
	}
	if !sharedJoin {
		t.Error("no shared join vertex across aggregate queries")
	}
	// Aggregate vertices appear as roots.
	aggRoots := 0
	for _, q := range []string{"citySales", "cityOrders"} {
		if _, ok := best.MVPP.Roots[q].Op.(*algebra.Aggregate); ok {
			aggRoots++
		}
	}
	if aggRoots != 2 {
		t.Errorf("aggregate roots = %d, want 2", aggRoots)
	}
}

func TestAggregateSummaryMaterialization(t *testing.T) {
	est, plans := aggregateWorkload(t)
	model := &cost.PaperModel{}
	cands, err := core.Generate(est, model, plans, core.GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	best := core.Best(cands)
	res := best.Selection
	if len(res.Materialized) == 0 {
		t.Fatal("nothing materialized for a heavily-aggregating workload")
	}
	// The frequent aggregate results are tiny (≤50 city groups) and cheap
	// to store — the design should beat all-virtual decisively.
	virtual := best.MVPP.AllVirtual(model)
	if res.Costs.Total > virtual.Total/2 {
		t.Errorf("design %v not decisively below all-virtual %v", res.Costs.Total, virtual.Total)
	}

	// The paper's Cs charges candidates their full from-base recompute, so
	// the greedy pass stops at the shared join. Both the exhaustive optimum
	// and the discounted-maintenance extension go further and materialize a
	// summary table.
	hasSummary := func(mat core.VertexSet) bool {
		for _, v := range best.MVPP.Vertices {
			if !mat[v.ID] {
				continue
			}
			if _, ok := v.Op.(*algebra.Aggregate); ok {
				return true
			}
		}
		return false
	}
	opt, err := best.MVPP.ExhaustiveOptimal(model)
	if err != nil {
		t.Fatal(err)
	}
	if !hasSummary(opt.Materialized) {
		t.Errorf("exhaustive optimum has no summary table: %v", opt.Materialized.Names(best.MVPP))
	}
	disc := best.MVPP.SelectViews(model, core.SelectOptions{DiscountedMaintenance: true})
	if !hasSummary(disc.Materialized) {
		t.Errorf("discounted heuristic has no summary table: %v", disc.Materialized.Names(best.MVPP))
	}
	// The discounted extension must close (part of) the gap to optimal.
	if disc.Costs.Total > res.Costs.Total+1e-6 {
		t.Errorf("discounted heuristic %v worse than paper heuristic %v", disc.Costs.Total, res.Costs.Total)
	}
	if opt.Costs.Total > disc.Costs.Total+1e-6 {
		t.Errorf("optimum %v worse than discounted heuristic %v", opt.Costs.Total, disc.Costs.Total)
	}
}

func TestAggregateVertexCostsAnnotated(t *testing.T) {
	est, plans := aggregateWorkload(t)
	model := &cost.PaperModel{}
	b := core.NewBuilder(est, model)
	for _, p := range plans {
		if err := b.AddQuery(p.Name, p.Freq, p.Plan); err != nil {
			t.Fatal(err)
		}
	}
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range m.InnerVertices() {
		if _, ok := v.Op.(*algebra.Aggregate); !ok {
			continue
		}
		if v.Ca <= 0 || v.Est.Rows <= 0 {
			t.Errorf("aggregate vertex %s: Ca=%v rows=%v", v.Name, v.Ca, v.Est.Rows)
		}
		if v.Est.Rows > 50 {
			t.Errorf("aggregate vertex %s: %v groups, want ≤ 50 (city NDV)", v.Name, v.Est.Rows)
		}
	}
}

func TestAggregateLabelsInRendering(t *testing.T) {
	est, plans := aggregateWorkload(t)
	model := &cost.PaperModel{}
	b := core.NewBuilder(est, model)
	for _, p := range plans {
		if err := b.AddQuery(p.Name, p.Freq, p.Plan); err != nil {
			t.Fatal(err)
		}
	}
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range m.InnerVertices() {
		if strings.Contains(v.Op.Label(), "γ") {
			found = true
		}
	}
	if !found {
		t.Error("no aggregation label in the MVPP")
	}
}
