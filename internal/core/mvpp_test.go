package core_test

import (
	"math"
	"testing"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/core"
	"github.com/warehousekit/mvpp/internal/cost"
	"github.com/warehousekit/mvpp/internal/paper"
)

// figure3 builds the paper's Figure 3 MVPP in paper-mode estimation.
func figure3(t *testing.T) (*core.MVPP, cost.Model) {
	t.Helper()
	ex, err := paper.Load()
	if err != nil {
		t.Fatal(err)
	}
	plans, err := paper.Figure3Plans(ex.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	est := cost.NewEstimator(ex.Catalog, cost.PaperOptions())
	model := &cost.PaperModel{}
	b := core.NewBuilder(est, model)
	for _, s := range plans {
		if err := b.AddQuery(s.Name, s.Freq, s.Plan); err != nil {
			t.Fatal(err)
		}
	}
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m, model
}

func TestFigure3VertexNames(t *testing.T) {
	m, _ := figure3(t)
	// Adding queries in paper order reproduces the paper's vertex naming.
	want := map[string]string{
		"tmp1":    `σ Division.city = "LA"`,
		"tmp2":    "⋈ Division.Did = Product.Did",
		"tmp3":    "⋈ Part.Pid = Product.Pid",
		"tmp4":    "⋈ Customer.Cid = Order.Cid",
		"tmp5":    "σ Order.date > 1996-07-01",
		"tmp6":    "⋈ Order.Pid = Product.Pid",
		"tmp7":    "σ Order.quantity > 100",
		"result1": "π Product.name",
	}
	for name, label := range want {
		v, err := m.VertexByName(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if got := v.Op.Label(); got != label {
			t.Errorf("%s label = %q, want %q", name, got, label)
		}
	}
	if got := len(m.Vertices); got != 16 {
		// 5 leaves + tmp1..tmp7 + result1..result4
		t.Errorf("vertex count = %d, want 16", got)
	}
}

func TestFigure3Sharing(t *testing.T) {
	m, _ := figure3(t)
	tests := []struct {
		vertex  string
		queries []string
	}{
		{"tmp1", []string{"Q1", "Q2", "Q3"}},
		{"tmp2", []string{"Q1", "Q2", "Q3"}},
		{"tmp3", []string{"Q2"}},
		{"tmp4", []string{"Q3", "Q4"}},
		{"tmp5", []string{"Q3"}},
		{"tmp7", []string{"Q4"}},
		{"Order", []string{"Q3", "Q4"}},
		{"Division", []string{"Q1", "Q2", "Q3"}},
	}
	for _, tt := range tests {
		v, err := m.VertexByName(tt.vertex)
		if err != nil {
			t.Fatal(err)
		}
		got := m.QueriesUsing(v)
		if len(got) != len(tt.queries) {
			t.Errorf("%s: O_v = %v, want %v", tt.vertex, got, tt.queries)
			continue
		}
		for i := range got {
			if got[i] != tt.queries[i] {
				t.Errorf("%s: O_v = %v, want %v", tt.vertex, got, tt.queries)
				break
			}
		}
	}
}

func TestFigure3BaseRelations(t *testing.T) {
	m, _ := figure3(t)
	v, err := m.VertexByName("tmp4")
	if err != nil {
		t.Fatal(err)
	}
	got := m.BaseRelationsUnder(v)
	if len(got) != 2 || got[0] != "Customer" || got[1] != "Order" {
		t.Errorf("I(tmp4) = %v", got)
	}
	v, err = m.VertexByName("tmp6")
	if err != nil {
		t.Fatal(err)
	}
	if got := m.BaseRelationsUnder(v); len(got) != 4 {
		t.Errorf("I(tmp6) = %v", got)
	}
	leaf, err := m.VertexByName("Order")
	if err != nil {
		t.Fatal(err)
	}
	if got := m.BaseRelationsUnder(leaf); len(got) != 1 || got[0] != "Order" {
		t.Errorf("I(Order) = %v", got)
	}
}

// TestFigure3PaperCosts checks the headline cost annotations against the
// paper's Figure 3 labels.
func TestFigure3PaperCosts(t *testing.T) {
	m, _ := figure3(t)
	tests := []struct {
		vertex string
		ca     float64
		within float64 // relative tolerance
	}{
		{"tmp1", 250, 0},           // paper: 0.25k
		{"tmp2", 35250, 0},         // paper: 35.25k (0.25k + 3k·10 + 5k)
		{"tmp4", 12.005e6, 0.005},  // paper: 12.035m
		{"tmp3", 50.055e6, 0.001},  // paper labels tmp3 cumulatively at 50.06m
		{"result2", 50.075e6, 0.1}, // paper: 50.082m Ca for Q2
	}
	for _, tt := range tests {
		v, err := m.VertexByName(tt.vertex)
		if err != nil {
			t.Fatal(err)
		}
		if tt.within == 0 {
			if v.Ca != tt.ca {
				t.Errorf("Ca(%s) = %v, want %v", tt.vertex, v.Ca, tt.ca)
			}
			continue
		}
		if rel := math.Abs(v.Ca-tt.ca) / tt.ca; rel > tt.within {
			t.Errorf("Ca(%s) = %v, want %v within %.1f%%", tt.vertex, v.Ca, tt.ca, tt.within*100)
		}
	}
}

func TestLeafAnnotations(t *testing.T) {
	m, _ := figure3(t)
	for _, rel := range []string{"Product", "Division", "Order", "Customer", "Part"} {
		v, err := m.VertexByName(rel)
		if err != nil {
			t.Fatal(err)
		}
		if !v.IsLeaf() || v.Ca != 0 || v.Cm != 0 {
			t.Errorf("%s: leaf=%v Ca=%v Cm=%v", rel, v.IsLeaf(), v.Ca, v.Cm)
		}
		if m.Fu[rel] != 1 {
			t.Errorf("fu(%s) = %v", rel, m.Fu[rel])
		}
	}
}

func TestFigure3Weights(t *testing.T) {
	m, _ := figure3(t)
	// w(tmp2) = (10 + 0.5 + 0.8)·35.25k − 1·35.25k = 363.075k — the exact
	// value the paper's trace reports.
	v, err := m.VertexByName("tmp2")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v.Weight-363075) > 1e-6 {
		t.Errorf("w(tmp2) = %v, want 363075", v.Weight)
	}
	// w(tmp4) = (0.8 + 5)·Ca − Ca = 4.8·12.005m
	v, err = m.VertexByName("tmp4")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v.Weight-4.8*12.005e6) > 1 {
		t.Errorf("w(tmp4) = %v, want %v", v.Weight, 4.8*12.005e6)
	}
	// Leaves weigh nothing.
	leaf, err := m.VertexByName("Order")
	if err != nil {
		t.Fatal(err)
	}
	if leaf.Weight != 0 {
		t.Errorf("w(Order) = %v", leaf.Weight)
	}
}

func TestAncestorsDescendants(t *testing.T) {
	m, _ := figure3(t)
	tmp4, err := m.VertexByName("tmp4")
	if err != nil {
		t.Fatal(err)
	}
	anc := m.Ancestors(tmp4)
	// tmp5, tmp6, tmp7, result3, result4
	if len(anc) != 5 {
		names := make([]string, len(anc))
		for i, a := range anc {
			names[i] = a.Name
		}
		t.Errorf("ancestors(tmp4) = %v", names)
	}
	desc := m.Descendants(tmp4)
	if len(desc) != 2 {
		t.Errorf("descendants(tmp4) = %d", len(desc))
	}
}

func TestBuilderErrors(t *testing.T) {
	ex, err := paper.Load()
	if err != nil {
		t.Fatal(err)
	}
	est := cost.NewEstimator(ex.Catalog, cost.PaperOptions())
	model := &cost.PaperModel{}

	b := core.NewBuilder(est, model)
	if err := b.AddQuery("", 1, nil); err == nil {
		t.Error("unnamed query accepted")
	}

	b = core.NewBuilder(est, model)
	div, _ := ex.Catalog.Scan("Division")
	plan := algebra.NewProject(div, []algebra.ColumnRef{algebra.Ref("Division", "name")})
	if err := b.AddQuery("Q", 1, plan); err != nil {
		t.Fatal(err)
	}
	if err := b.AddQuery("Q", 1, plan); err == nil {
		t.Error("duplicate query name accepted")
	}
	if err := b.AddQuery("Q2", -1, plan); err == nil {
		t.Error("negative frequency accepted")
	}
	if err := b.AddQuery("Q3", 1, algebra.NewSelect(div, nil)); err == nil {
		t.Error("invalid plan accepted")
	}

	empty := core.NewBuilder(est, model)
	if _, err := empty.Build(); err == nil {
		t.Error("empty MVPP accepted")
	}
}

func TestIdenticalQueriesShareRoot(t *testing.T) {
	ex, err := paper.Load()
	if err != nil {
		t.Fatal(err)
	}
	est := cost.NewEstimator(ex.Catalog, cost.PaperOptions())
	b := core.NewBuilder(est, &cost.PaperModel{})
	div, _ := ex.Catalog.Scan("Division")
	plan := algebra.NewProject(
		algebra.NewSelect(div, algebra.Eq(algebra.Ref("Division", "city"), algebra.StringVal("LA"))),
		[]algebra.ColumnRef{algebra.Ref("Division", "name")})
	if err := b.AddQuery("A", 1, plan); err != nil {
		t.Fatal(err)
	}
	if err := b.AddQuery("B", 2, algebra.Clone(plan)); err != nil {
		t.Fatal(err)
	}
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if m.Roots["A"] != m.Roots["B"] {
		t.Error("identical queries should share their root vertex")
	}
	if got := m.QueriesUsing(m.Roots["A"]); len(got) != 2 {
		t.Errorf("QueriesUsing(root) = %v", got)
	}
}

func TestVertexByNameMissing(t *testing.T) {
	m, _ := figure3(t)
	if _, err := m.VertexByName("tmp99"); err == nil {
		t.Error("missing vertex lookup succeeded")
	}
}

func TestInnerVerticesExcludeLeaves(t *testing.T) {
	m, _ := figure3(t)
	for _, v := range m.InnerVertices() {
		if v.IsLeaf() {
			t.Errorf("leaf %s in InnerVertices", v.Name)
		}
	}
	if got := len(m.InnerVertices()); got != 11 {
		t.Errorf("inner vertices = %d, want 11 (tmp1..7 + 4 results)", got)
	}
}
