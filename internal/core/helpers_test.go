package core_test

import (
	"testing"

	"github.com/warehousekit/mvpp/internal/paper"
	"github.com/warehousekit/mvpp/internal/sqlparse"
)

// bindQuery binds ad-hoc SQL against the paper catalog for tests.
func bindQuery(t *testing.T, ex *paper.Example, name, sql string) *sqlparse.Query {
	t.Helper()
	q, err := sqlparse.BindQuery(ex.Catalog, name, sql)
	if err != nil {
		t.Fatal(err)
	}
	return q
}
