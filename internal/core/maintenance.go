package core

import (
	"fmt"
	"math"
	"sort"

	"github.com/warehousekit/mvpp/internal/cost"
	"github.com/warehousekit/mvpp/internal/obs"
)

// MaintenanceStrategy is the per-vertex refresh plan behind the effective
// Cm: full recomputation from base relations, or insert-only delta
// propagation through the vertex's plan.
type MaintenanceStrategy int

// Maintenance strategies.
const (
	// MaintRecompute recomputes the view from base relations each epoch —
	// the paper's policy and the default.
	MaintRecompute MaintenanceStrategy = iota
	// MaintIncremental propagates base-relation deltas through the view's
	// plan and applies them to the stored view.
	MaintIncremental
)

// String returns the strategy's report spelling.
func (s MaintenanceStrategy) String() string {
	if s == MaintIncremental {
		return "incremental"
	}
	return "recompute"
}

// ApplyDeltaMaintenance re-prices every inner vertex's maintenance cost as
// the cheaper of full recomputation and delta propagation under the
// estimator's per-relation delta fractions, then re-derives the Figure 9
// weights — so SelectViews ranks and accepts candidates by the cheaper
// strategy. Vertices whose plan is not incrementally maintainable (see
// cost.Incrementable) keep CmIncremental = +Inf and the recompute plan.
// Calling with a nil estimator — or one whose spec holds no nonzero
// fraction, meaning no delta information at all — reverts to pure
// recompute maintenance.
func (m *MVPP) ApplyDeltaMaintenance(de *cost.DeltaEstimator, model cost.Model) error {
	if de != nil && !de.Spec().Enabled() {
		de = nil
	}
	m.delta = de
	for _, v := range m.Vertices {
		if v.IsLeaf() {
			continue
		}
		v.Cm = v.CmRecompute
		v.CmIncremental, v.MaintStrategy = math.Inf(1), MaintRecompute
		if de == nil {
			continue
		}
		inc, ok, err := de.MaintenanceCost(model, v.Op)
		if err != nil {
			return fmt.Errorf("core: delta maintenance for %s: %w", v.Name, err)
		}
		v.CmIncremental = inc
		if ok && inc < v.CmRecompute {
			v.Cm = inc
			v.MaintStrategy = MaintIncremental
		}
	}
	for _, v := range m.Vertices {
		v.Weight = m.WeightOf(v)
	}
	return nil
}

// DeltaEnabled reports whether delta maintenance pricing is installed.
func (m *MVPP) DeltaEnabled() bool { return m.delta != nil }

// DeltaSpec returns the installed delta fractions (zero value when delta
// maintenance is off).
func (m *MVPP) DeltaSpec() cost.DeltaSpec {
	if m.delta == nil {
		return cost.DeltaSpec{}
	}
	return m.delta.Spec()
}

// MaintenancePlans reports the winning maintenance strategy for each
// materialized view, keyed by vertex name.
func (m *MVPP) MaintenancePlans(mat VertexSet) map[string]MaintenanceStrategy {
	plans := make(map[string]MaintenanceStrategy, len(mat))
	for id, ok := range mat {
		if !ok || id >= len(m.Vertices) {
			continue
		}
		v := m.Vertices[id]
		if v.IsLeaf() {
			continue
		}
		plans[v.Name] = v.MaintStrategy
	}
	return plans
}

// emitMaintenancePlans surfaces the per-view strategy choice as events and
// bumps the incremental-wins counter. Called by SelectViews when delta
// maintenance is installed.
func (m *MVPP) emitMaintenancePlans(o obs.Observer, mat VertexSet) {
	if o == nil || m.delta == nil {
		return
	}
	wins := obs.CounterOf(o, obs.CtrIncrementalWins)
	names := mat.Names(m)
	sort.Strings(names)
	for _, name := range names {
		v, err := m.VertexByName(name)
		if err != nil {
			continue
		}
		obs.Emit(o, obs.EvMaintPlan,
			obs.String("vertex", v.Name),
			obs.String("strategy", v.MaintStrategy.String()),
			obs.Float("cm_recompute", v.CmRecompute),
			obs.Float("cm_incremental", v.CmIncremental))
		if v.MaintStrategy == MaintIncremental {
			wins.Add(1)
		}
	}
}

// deltaTransfer prices shipping one epoch's deltas of the base relations
// below v from their sites to the warehouse (the incremental analogue of
// shipping the full relations for a recompute epoch).
func (m *MVPP) deltaTransfer(v *Vertex) float64 {
	if len(m.Transfer) == 0 || m.delta == nil {
		return 0
	}
	spec := m.delta.Spec()
	total := 0.0
	for _, rel := range m.BaseRelationsUnder(v) {
		tc, ok := m.Transfer[rel]
		if !ok {
			continue
		}
		leaf := m.Leaves[rel]
		total += tc * leaf.Est.Blocks * spec.FractionOf(rel)
	}
	return total
}
