package core

import (
	"fmt"

	"github.com/warehousekit/mvpp/internal/cost"
)

// ReselectFrequencies re-runs the Figure 9 view selection under a revised
// set of query access frequencies — the serving layer's advisor loop: the
// live warehouse measures the fq the workload actually exhibits and asks
// what the paper's heuristic would materialize for it. The MVPP's Fq map
// and vertex weights are swapped to the observed frequencies for the
// selection and restored afterwards, so the call leaves the MVPP exactly
// as it found it. Like every MVPP mutation this is not safe to run
// concurrently with other MVPP use; callers serialize (the serve package
// guards it with the advisor mutex).
//
// Queries absent from fq keep frequency 0 (the workload stopped asking
// them); names in fq that are not workload queries are an error. The
// greedy result is safeguarded against the two trivial extremes exactly
// like the designer's initial selection.
func (m *MVPP) ReselectFrequencies(model cost.Model, fq map[string]float64, opts SelectOptions) (*SelectionResult, error) {
	var sel *SelectionResult
	err := m.withFrequencies(fq, func() {
		sel = m.SelectViews(model, opts)
		m.safeguard(model, sel)
	})
	if err != nil {
		return nil, err
	}
	return sel, nil
}

// EvaluateUnderFrequencies prices an arbitrary set of vertex names under a
// revised set of query frequencies — how much the *current* materialization
// would cost per period if the workload keeps behaving as observed. Like
// ReselectFrequencies it restores the MVPP's frequencies and weights before
// returning and must be serialized with other MVPP use.
func (m *MVPP) EvaluateUnderFrequencies(model cost.Model, fq map[string]float64, names []string) (Costs, error) {
	var costs Costs
	var evalErr error
	err := m.withFrequencies(fq, func() {
		costs, evalErr = m.EvaluateNames(model, names)
	})
	if err != nil {
		return Costs{}, err
	}
	return costs, evalErr
}

// withFrequencies validates fq, swaps it in as the MVPP's query frequencies
// (recomputing every vertex weight), runs fn, and restores the original
// frequencies and weights.
func (m *MVPP) withFrequencies(fq map[string]float64, fn func()) error {
	for name, f := range fq {
		if _, ok := m.Roots[name]; !ok {
			return fmt.Errorf("core: reselect: unknown query %q", name)
		}
		if f < 0 {
			return fmt.Errorf("core: reselect: negative frequency %g for %q", f, name)
		}
	}

	savedFq := m.Fq
	savedWeights := make([]float64, len(m.Vertices))
	for i, v := range m.Vertices {
		savedWeights[i] = v.Weight
	}
	defer func() {
		m.Fq = savedFq
		for i, v := range m.Vertices {
			v.Weight = savedWeights[i]
		}
	}()

	next := make(map[string]float64, len(m.Roots))
	for name := range m.Roots {
		next[name] = fq[name]
	}
	m.Fq = next
	for _, v := range m.Vertices {
		v.Weight = m.WeightOf(v)
	}

	fn()
	return nil
}

// safeguard replaces the greedy selection with a trivial extreme when one
// is cheaper — the same guard the designer applies to its initial
// selection, needed here because a drifted workload can push the greedy
// heuristic into the same skew it exhibits at design time.
func (m *MVPP) safeguard(model cost.Model, sel *SelectionResult) {
	roots := make(VertexSet, len(m.Roots))
	for _, r := range m.Roots {
		roots[r.ID] = true
	}
	for _, alt := range []struct {
		name string
		mat  VertexSet
	}{
		{"all-virtual", VertexSet{}},
		{"all-query-results", roots},
	} {
		costs := m.Evaluate(model, alt.mat)
		if costs.Total < sel.Costs.Total {
			sel.Materialized = alt.mat
			sel.Costs = costs
			sel.Plans = m.MaintenancePlans(alt.mat)
			sel.Trace = append(sel.Trace, TraceStep{
				Vertex: "(reselect)",
				Action: ActionSafeguard,
				Note:   "baseline strategy " + alt.name + " beat the greedy choice",
			})
		}
	}
}
