package core

import (
	"fmt"
	"math"
	"sort"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/cost"
)

// MaintenancePolicy selects how materialized views are refreshed.
type MaintenancePolicy int

// Maintenance policies.
const (
	// PolicyRecompute is the paper's policy: every refresh epoch recomputes
	// the view from base relations (sharing sub-results within the epoch).
	PolicyRecompute MaintenancePolicy = iota
	// PolicyIncremental is an extension: each epoch propagates only the
	// changed fraction of the base relations (DeltaFraction) through the
	// view's plan and rewrites the stored view — a coarse model of
	// delta-based incremental view maintenance.
	PolicyIncremental
)

// SetMaintenancePolicy switches the refresh model used by Evaluate.
// deltaFraction is the per-epoch changed fraction of each base relation
// (only meaningful for PolicyIncremental; clamped to [0, 1]).
func (m *MVPP) SetMaintenancePolicy(p MaintenancePolicy, deltaFraction float64) {
	if deltaFraction < 0 {
		deltaFraction = 0
	}
	if deltaFraction > 1 {
		deltaFraction = 1
	}
	m.maintPolicy = p
	m.deltaFraction = deltaFraction
}

// SetIndexedViews toggles §3.2's index argument: "while in our MVPP, if an
// intermediate result is materialized, we can establish a proper index on
// it afterwards". When enabled, a selection whose input is a materialized
// view is priced as an index lookup — traversal (log2 of the stored blocks)
// plus the matching fraction of the blocks — instead of a linear scan.
func (m *MVPP) SetIndexedViews(on bool) { m.indexedViews = on }

// VertexSet is a set of vertex IDs (a candidate materialization choice).
type VertexSet map[int]bool

// NewVertexSet builds a set from vertices.
func NewVertexSet(vs ...*Vertex) VertexSet {
	s := make(VertexSet, len(vs))
	for _, v := range vs {
		s[v.ID] = true
	}
	return s
}

// Clone copies the set.
func (s VertexSet) Clone() VertexSet {
	out := make(VertexSet, len(s))
	for id, ok := range s {
		if ok {
			out[id] = true
		}
	}
	return out
}

// Names renders the set as sorted vertex names for reporting.
func (s VertexSet) Names(m *MVPP) []string {
	var out []string
	for id, ok := range s {
		if ok && id < len(m.Vertices) {
			out = append(out, m.Vertices[id].Name)
		}
	}
	sort.Strings(out)
	return out
}

// Costs is the §4.1 cost breakdown of one materialization choice.
type Costs struct {
	// Query is Σ_i fq(qi)·C(mv→qi): total frequency-weighted query
	// processing cost.
	Query float64
	// Maintenance is Σ_j fu·C(base→mvj): total frequency-weighted view
	// maintenance cost, with recomputation streams shared between views
	// refreshed in the same epoch.
	Maintenance float64
	// Total = Query + Maintenance.
	Total float64
	// PerQuery breaks Query down by query name (frequency-weighted).
	PerQuery map[string]float64
	// PerView gives each materialized view's standalone maintenance cost
	// (frequency-weighted, without cross-view sharing); the sum can exceed
	// Maintenance when views share recomputation.
	PerView map[string]float64
}

// Evaluate prices a materialization choice on the MVPP.
//
// Query cost: a query rooted at a materialized vertex costs one read of the
// stored result; otherwise the root's operation cost plus the (recursive)
// compute cost of its non-materialized inputs — materialized inputs stream
// for free beyond the operator's own input-reading cost, which CaSelf
// already includes.
//
// Maintenance cost: views with the same maintenance frequency are refreshed
// in the same epoch and share recomputation of common sub-results; other
// materialized views are read, not recomputed. This is the accounting under
// which the paper's Table 2 numbers are internally consistent (see
// EXPERIMENTS.md).
func (m *MVPP) Evaluate(model cost.Model, mat VertexSet) Costs {
	m.evalCalls.Add(1)
	c := Costs{
		PerQuery: make(map[string]float64, len(m.Roots)),
		PerView:  make(map[string]float64, len(mat)),
	}

	memo := make(map[int]float64, len(m.Vertices))
	var compute func(v *Vertex) float64
	compute = func(v *Vertex) float64 {
		if v.IsLeaf() || mat[v.ID] {
			return 0
		}
		if got, ok := memo[v.ID]; ok {
			return got
		}
		total := m.opCost(v, mat)
		for _, in := range v.In {
			total += compute(in)
		}
		memo[v.ID] = total
		return total
	}

	for _, q := range m.QueryOrder {
		r := m.Roots[q]
		var qc float64
		if mat[r.ID] {
			qc = model.ReadCost(r.Est)
		} else {
			qc = compute(r) + m.transferForLeaves(m.reachedLeaves(r, mat))
		}
		weighted := m.Fq[q] * qc
		c.PerQuery[q] = weighted
		c.Query += weighted
	}

	// Group recompute-maintained views by maintenance frequency; each group
	// shares one recomputation pass per epoch. Views whose winning plan is
	// delta propagation (ApplyDeltaMaintenance) are priced individually:
	// each epoch propagates the base deltas through the view's own plan and
	// applies them, so there is no shared recomputation to pool.
	groups := make(map[float64][]*Vertex)
	for _, v := range m.Vertices {
		if !mat[v.ID] || v.IsLeaf() {
			continue
		}
		f := m.MaintenanceFrequency(v)
		if m.maintPolicy != PolicyIncremental && v.MaintStrategy == MaintIncremental {
			weighted := f * (v.CmIncremental + m.deltaTransfer(v))
			c.PerView[v.Name] = weighted
			c.Maintenance += weighted
			continue
		}
		groups[f] = append(groups[f], v)
		// Standalone per-view cost for reporting.
		rc := v.CaSelf
		for _, in := range v.In {
			rc += compute(in)
		}
		c.PerView[v.Name] = f * rc
	}
	// Iterate groups in ascending frequency: map order is random and
	// float summation is order-sensitive, so a fixed order keeps repeated
	// evaluations bit-identical.
	freqs := make([]float64, 0, len(groups))
	for f := range groups {
		freqs = append(freqs, f)
	}
	sort.Float64s(freqs)
	for _, f := range freqs {
		views := groups[f]
		if m.maintPolicy == PolicyIncremental {
			for _, v := range views {
				// Propagate the changed fraction through the view's plan,
				// then rewrite the stored view. Transfer applies to the
				// shipped deltas only.
				leaves := m.reachedLeaves(v, VertexSet{})
				c.Maintenance += f * (m.deltaFraction*(v.Ca+m.transferForLeaves(leaves)) + v.Est.Blocks)
			}
			continue
		}
		epoch, leaves := m.sharedRecompute(views, mat)
		c.Maintenance += f * (epoch + m.transferForLeaves(leaves))
	}
	c.Total = c.Query + c.Maintenance
	return c
}

// opCost prices executing v's operation given the materialized set: with
// indexed views enabled, a selection reading a materialized input becomes
// an index lookup (tree traversal + matching blocks) instead of a scan.
func (m *MVPP) opCost(v *Vertex, mat VertexSet) float64 {
	if !m.indexedViews {
		return v.CaSelf
	}
	if _, isSelect := v.Op.(*algebra.Select); !isSelect || len(v.In) != 1 || !mat[v.In[0].ID] {
		return v.CaSelf
	}
	in := v.In[0].Est
	traverse := 1.0
	if in.Blocks > 1 {
		traverse = math.Ceil(math.Log2(in.Blocks))
	}
	indexed := traverse + v.Est.Blocks
	if indexed < v.CaSelf {
		return indexed
	}
	return v.CaSelf
}

// sharedRecompute prices one refresh epoch for a group of views: every
// vertex in the union of their recomputation DAGs executes once;
// materialized vertices outside the group are read, not recomputed. The
// second result is the set of leaf vertices the epoch reads (shipped once
// each when the warehouse is distributed).
func (m *MVPP) sharedRecompute(views []*Vertex, mat VertexSet) (float64, map[int]bool) {
	inGroup := make(map[int]bool, len(views))
	for _, v := range views {
		inGroup[v.ID] = true
	}
	seen := make(map[int]bool)
	leaves := make(map[int]bool)
	total := 0.0
	var acc func(v *Vertex)
	acc = func(v *Vertex) {
		if seen[v.ID] {
			return
		}
		seen[v.ID] = true
		if v.IsLeaf() {
			leaves[v.ID] = true
			return
		}
		total += v.CaSelf
		for _, in := range v.In {
			if mat[in.ID] && !inGroup[in.ID] {
				continue // read the other materialized view
			}
			if mat[in.ID] && inGroup[in.ID] {
				// Refreshed in this same epoch; its recomputation is
				// accounted once via its own traversal below, after which
				// this consumer reads it.
				continue
			}
			acc(in)
		}
	}
	for _, v := range views {
		if seen[v.ID] {
			continue
		}
		// The view itself is always recomputed, even though it is
		// materialized.
		seen[v.ID] = true
		total += v.CaSelf
		for _, in := range v.In {
			if mat[in.ID] {
				continue
			}
			acc(in)
		}
	}
	return total, leaves
}

// EvaluateNames is Evaluate over vertex display names — convenient for
// reproducing the paper's Table 2 strategies.
func (m *MVPP) EvaluateNames(model cost.Model, names []string) (Costs, error) {
	mat := make(VertexSet, len(names))
	for _, n := range names {
		v, err := m.VertexByName(n)
		if err != nil {
			return Costs{}, err
		}
		if v.IsLeaf() {
			return Costs{}, fmt.Errorf("core: %s is a base relation, not a materialization candidate", n)
		}
		mat[v.ID] = true
	}
	return m.Evaluate(model, mat), nil
}
