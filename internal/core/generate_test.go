package core_test

import (
	"strings"
	"testing"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/core"
	"github.com/warehousekit/mvpp/internal/cost"
	"github.com/warehousekit/mvpp/internal/optimizer"
	"github.com/warehousekit/mvpp/internal/paper"
)

// paperQueryPlans optimizes the four paper queries individually.
func paperQueryPlans(t *testing.T, estOpts cost.Options) (*cost.Estimator, []core.QueryPlan) {
	t.Helper()
	ex, err := paper.Load()
	if err != nil {
		t.Fatal(err)
	}
	est := cost.NewEstimator(ex.Catalog, estOpts)
	opt := optimizer.New(est, &cost.PaperModel{}, optimizer.Options{})
	plans := make([]core.QueryPlan, len(ex.Queries))
	for i, q := range ex.Queries {
		p, _, err := opt.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		plans[i] = core.QueryPlan{Name: q.Name, Freq: ex.Frequencies[q.Name], Plan: p}
	}
	return est, plans
}

func TestGenerateProducesCandidates(t *testing.T) {
	est, plans := paperQueryPlans(t, cost.PaperOptions())
	cands, err := core.Generate(est, &cost.PaperModel{}, plans, core.GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates generated")
	}
	if len(cands) > 4 {
		t.Errorf("more candidates (%d) than rotations (4)", len(cands))
	}
	for _, c := range cands {
		if err := c.MVPP.Validate(); err != nil {
			t.Errorf("candidate %v invalid: %v", c.SeedOrder, err)
		}
		if len(c.MVPP.Roots) != 4 {
			t.Errorf("candidate %v has %d roots", c.SeedOrder, len(c.MVPP.Roots))
		}
		if c.Selection == nil {
			t.Errorf("candidate %v not evaluated", c.SeedOrder)
		}
	}
	// Signatures are distinct by construction.
	seen := map[string]bool{}
	for _, c := range cands {
		if seen[c.Signature] {
			t.Error("duplicate candidate signature survived deduplication")
		}
		seen[c.Signature] = true
	}
}

func TestGenerateSharesCommonSubexpressions(t *testing.T) {
	est, plans := paperQueryPlans(t, cost.PaperOptions())
	cands, err := core.Generate(est, &cost.PaperModel{}, plans, core.GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	best := core.Best(cands)
	// Q1 and Q2 share the Product⋈σ(Division) pattern in every sensible
	// merge: some non-leaf vertex must serve ≥ 2 queries.
	sharedFound := false
	for _, v := range best.MVPP.InnerVertices() {
		if len(best.MVPP.QueriesUsing(v)) >= 2 {
			sharedFound = true
			break
		}
	}
	if !sharedFound {
		t.Error("no shared inner vertex in the best candidate")
	}
	// The pushed-down LA selection must sit directly above Division,
	// shared by Q1, Q2, Q3.
	for _, v := range best.MVPP.InnerVertices() {
		if s, ok := v.Op.(*algebra.Select); ok {
			if sc, ok := s.Input.(*algebra.Scan); ok && sc.Relation == "Division" {
				if got := len(best.MVPP.QueriesUsing(v)); got != 3 {
					t.Errorf("σ(Division) used by %d queries, want 3", got)
				}
			}
		}
	}
}

func TestGenerateBestIsNoWorseThanOthers(t *testing.T) {
	est, plans := paperQueryPlans(t, cost.PaperOptions())
	cands, err := core.Generate(est, &cost.PaperModel{}, plans, core.GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	best := core.Best(cands)
	for _, c := range cands {
		if best.Selection.Costs.Total > c.Selection.Costs.Total {
			t.Errorf("Best returned %v, but %v is cheaper", best.Selection.Costs.Total, c.Selection.Costs.Total)
		}
	}
}

func TestGenerateRotationLimit(t *testing.T) {
	est, plans := paperQueryPlans(t, cost.PaperOptions())
	one, err := core.Generate(est, &cost.PaperModel{}, plans, core.GenOptions{MaxRotations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 {
		t.Errorf("MaxRotations=1 produced %d candidates", len(one))
	}
	all, err := core.Generate(est, &cost.PaperModel{}, plans, core.GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < len(one) {
		t.Errorf("full rotation produced fewer candidates (%d) than limited (%d)", len(all), len(one))
	}
}

func TestGenerateNoPushdownKeepsSelectionsHigh(t *testing.T) {
	est, plans := paperQueryPlans(t, cost.PaperOptions())
	cands, err := core.Generate(est, &cost.PaperModel{}, plans, core.GenOptions{NoPushdown: true, MaxRotations: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := cands[0].MVPP
	// Figure 7 form: no selection sits directly on a scan.
	for _, v := range m.InnerVertices() {
		if s, ok := v.Op.(*algebra.Select); ok {
			if _, onScan := s.Input.(*algebra.Scan); onScan {
				t.Errorf("selection %s sits on a scan despite NoPushdown", v.Name)
			}
		}
	}
}

func TestGeneratePushDisjunctions(t *testing.T) {
	// Give Q1 and Q2 different city predicates so the Division leaf gets a
	// disjunctive filter (Figure 8's σ city="LA" ∨ city="SF" ∨ name="Re").
	ex, err := paper.Load()
	if err != nil {
		t.Fatal(err)
	}
	est := cost.NewEstimator(ex.Catalog, cost.PaperOptions())
	opt := optimizer.New(est, &cost.PaperModel{}, optimizer.Options{})

	sqls := map[string]string{
		"QA": `SELECT Product.name FROM Product, Division WHERE Division.city = 'LA' AND Product.Did = Division.Did`,
		"QB": `SELECT Product.name FROM Product, Division WHERE Division.city = 'SF' AND Product.Did = Division.Did`,
	}
	var plans []core.QueryPlan
	for _, name := range []string{"QA", "QB"} {
		q := bindQuery(t, ex, name, sqls[name])
		p, _, err := opt.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		plans = append(plans, core.QueryPlan{Name: name, Freq: 1, Plan: p})
	}
	cands, err := core.Generate(est, &cost.PaperModel{}, plans, core.GenOptions{PushDisjunctions: true, MaxRotations: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := cands[0].MVPP
	foundDisjunction := false
	for _, v := range m.InnerVertices() {
		if s, ok := v.Op.(*algebra.Select); ok {
			if _, onScan := s.Input.(*algebra.Scan); onScan && strings.Contains(s.Pred.String(), "OR") {
				foundDisjunction = true
				// Both queries must share the disjunctive leaf filter.
				if got := len(m.QueriesUsing(v)); got != 2 {
					t.Errorf("disjunctive filter used by %d queries, want 2", got)
				}
			}
		}
	}
	if !foundDisjunction {
		t.Error("no disjunctive leaf filter generated")
	}
}

func TestGeneratePushProjections(t *testing.T) {
	est, plans := paperQueryPlans(t, cost.DefaultOptions())
	cands, err := core.Generate(est, &cost.PaperModel{}, plans, core.GenOptions{PushProjections: true, MaxRotations: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := cands[0].MVPP
	// Some leaf should have a projection above it (directly or above its
	// filter).
	found := false
	for _, v := range m.InnerVertices() {
		if p, ok := v.Op.(*algebra.Project); ok {
			switch p.Input.(type) {
			case *algebra.Scan, *algebra.Select:
				found = true
			}
		}
	}
	if !found {
		t.Error("no pushed-down projection found")
	}
}

func TestGenerateEmptyInput(t *testing.T) {
	ex, err := paper.Load()
	if err != nil {
		t.Fatal(err)
	}
	est := cost.NewEstimator(ex.Catalog, cost.PaperOptions())
	if _, err := core.Generate(est, &cost.PaperModel{}, nil, core.GenOptions{}); err == nil {
		t.Error("empty plan list accepted")
	}
}

// TestGenerateSemanticsPreserved: every generated candidate's per-query
// plans must compute the same relation as the input plans (same semantic
// key after full normalization is too strict across merge shapes, so we
// check leaves and output schema).
func TestGenerateSemanticsPreserved(t *testing.T) {
	est, plans := paperQueryPlans(t, cost.PaperOptions())
	byName := make(map[string]core.QueryPlan, len(plans))
	for _, p := range plans {
		byName[p.Name] = p
	}
	cands, err := core.Generate(est, &cost.PaperModel{}, plans, core.GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		for name, root := range c.MVPP.Roots {
			orig := byName[name]
			gotLeaves := algebra.Leaves(root.Op)
			wantLeaves := algebra.Leaves(orig.Plan)
			if len(gotLeaves) != len(wantLeaves) {
				t.Errorf("%s: leaves %v, want %v", name, gotLeaves, wantLeaves)
			}
			if !root.Op.Schema().Equal(orig.Plan.Schema()) {
				t.Errorf("%s: output schema %s, want %s", name, root.Op.Schema(), orig.Plan.Schema())
			}
		}
	}
}
