package core

import (
	"fmt"
	"sort"
)

// Distribution places base relations on member-database sites and prices
// shipping their blocks to the warehouse site. This implements the paper's
// §4.1 note: "in the distributed data warehouse environment, the cost C
// should incorporate the costs of data transferring among different sites."
//
// The model: queries and views execute at the warehouse. Whenever a base
// relation participates in computing a (virtual) query answer or refreshing
// a materialized view, its blocks are shipped from its site once per
// execution or refresh epoch; materialized views are stored at the
// warehouse and incur no transfer at query time — which is exactly why
// materialization pays off more in the distributed setting.
type Distribution struct {
	// SiteOf maps relation name to site name; relations absent from the map
	// are co-located with the warehouse.
	SiteOf map[string]string
	// Warehouse is the warehouse's site name.
	Warehouse string
	// CostPerBlock prices shipping one block between two sites; it is never
	// called with equal sites.
	CostPerBlock func(from, to string) float64
}

// UniformDistribution builds a distribution where every listed relation
// lives on its own site and shipping any block to the warehouse costs
// perBlock.
func UniformDistribution(relations []string, perBlock float64) Distribution {
	siteOf := make(map[string]string, len(relations))
	for _, r := range relations {
		siteOf[r] = "site-" + r
	}
	return Distribution{
		SiteOf:    siteOf,
		Warehouse: "warehouse",
		CostPerBlock: func(from, to string) float64 {
			return perBlock
		},
	}
}

// ApplyDistribution annotates the MVPP with per-relation transfer costs.
// Passing a zero-value Distribution clears the annotation.
func (m *MVPP) ApplyDistribution(d Distribution) error {
	if d.SiteOf == nil {
		m.Transfer = nil
		return nil
	}
	if d.CostPerBlock == nil {
		return fmt.Errorf("core: distribution has no CostPerBlock function")
	}
	transfer := make(map[string]float64, len(m.Leaves))
	for rel := range m.Leaves {
		site, ok := d.SiteOf[rel]
		if !ok || site == d.Warehouse {
			continue
		}
		c := d.CostPerBlock(site, d.Warehouse)
		if c < 0 {
			return fmt.Errorf("core: negative transfer cost for %s", rel)
		}
		if c > 0 {
			transfer[rel] = c
		}
	}
	m.Transfer = transfer
	return nil
}

// transferForLeaves prices shipping the given leaves' blocks once.
func (m *MVPP) transferForLeaves(leaves map[int]bool) float64 {
	if len(m.Transfer) == 0 || len(leaves) == 0 {
		return 0
	}
	// Sum in ascending ID order: float summation is order-sensitive, and
	// map iteration order would make repeated evaluations drift in the
	// last bits.
	ids := make([]int, 0, len(leaves))
	for id := range leaves {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	total := 0.0
	for _, id := range ids {
		v := m.Vertices[id]
		if tc, ok := m.Transfer[v.Relation]; ok {
			total += tc * v.Est.Blocks
		}
	}
	return total
}

// reachedLeaves returns the leaf vertices read when computing v with the
// given materialized set (descent stops at materialized vertices, which are
// stored locally at the warehouse).
func (m *MVPP) reachedLeaves(v *Vertex, mat VertexSet) map[int]bool {
	leaves := make(map[int]bool)
	seen := make(map[int]bool)
	var walk func(u *Vertex)
	walk = func(u *Vertex) {
		if seen[u.ID] {
			return
		}
		seen[u.ID] = true
		if u.IsLeaf() {
			leaves[u.ID] = true
			return
		}
		for _, in := range u.In {
			if mat[in.ID] {
				continue
			}
			walk(in)
		}
	}
	if !mat[v.ID] {
		walk(v)
	}
	return leaves
}

// TransferSites lists the relations with a non-zero transfer cost, sorted —
// mainly for reports.
func (m *MVPP) TransferSites() []string {
	out := make([]string, 0, len(m.Transfer))
	for rel := range m.Transfer {
		out = append(out, rel)
	}
	sort.Strings(out)
	return out
}
