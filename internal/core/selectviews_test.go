package core_test

import (
	"math"
	"testing"

	"github.com/warehousekit/mvpp/internal/core"
)

func traceFor(res *core.SelectionResult, vertex string) (core.TraceStep, bool) {
	for _, s := range res.Trace {
		if s.Vertex == vertex {
			return s, true
		}
	}
	return core.TraceStep{}, false
}

// TestFigure9TraceOnPaperExample replays the paper's traced run of the
// selection heuristic on the Figure 3 MVPP:
//
//	LV = <tmp4, result4, tmp7, tmp2, result1, tmp1>
//	tmp4 accepted, result4 rejected, tmp7 pruned (same branch), tmp2
//	accepted (Cs = 363.075k), tmp1 skipped (parent tmp2 materialized).
func TestFigure9TraceOnPaperExample(t *testing.T) {
	m, model := figure3(t)
	res := m.SelectViews(model, core.SelectOptions{})

	tmp4, ok := traceFor(res, "tmp4")
	if !ok || tmp4.Action != core.ActionMaterialize {
		t.Errorf("tmp4 trace = %+v, want materialize", tmp4)
	}
	// Cs(tmp4) = (0.8+5)·12.005m − 12.005m = 57.624m (paper: 57.744m with
	// its rounded 12.03m).
	if math.Abs(tmp4.Cs-57.624e6)/57.624e6 > 0.001 {
		t.Errorf("Cs(tmp4) = %v, want ≈57.624m", tmp4.Cs)
	}

	r4, ok := traceFor(res, "result4")
	if !ok || r4.Action != core.ActionReject {
		t.Errorf("result4 trace = %+v, want reject", r4)
	}
	tmp7, ok := traceFor(res, "tmp7")
	if !ok || tmp7.Action != core.ActionPruneBranch {
		t.Errorf("tmp7 trace = %+v, want prune-branch (same branch as result4)", tmp7)
	}

	tmp2, ok := traceFor(res, "tmp2")
	if !ok || tmp2.Action != core.ActionMaterialize {
		t.Errorf("tmp2 trace = %+v, want materialize", tmp2)
	}
	// The paper's exact value: Cs(tmp2) = 363.075k.
	if math.Abs(tmp2.Cs-363075) > 1e-6 {
		t.Errorf("Cs(tmp2) = %v, want 363075", tmp2.Cs)
	}

	tmp1, ok := traceFor(res, "tmp1")
	if !ok || tmp1.Action != core.ActionSkipAncestor {
		t.Errorf("tmp1 trace = %+v, want skip-ancestor", tmp1)
	}

	// The chosen set contains the paper's {tmp2, tmp4}.
	names := res.Materialized.Names(m)
	has := map[string]bool{}
	for _, n := range names {
		has[n] = true
	}
	if !has["tmp2"] || !has["tmp4"] {
		t.Errorf("materialized = %v, want ⊇ {tmp2, tmp4}", names)
	}
	if has["tmp1"] || has["tmp7"] {
		t.Errorf("materialized = %v, must not contain tmp1 or tmp7", names)
	}
}

// TestHeuristicBeatsExtremes: the heuristic's choice must cost no more than
// the all-virtual and all-queries-materialized baselines.
func TestHeuristicBeatsExtremes(t *testing.T) {
	m, model := figure3(t)
	res := m.SelectViews(model, core.SelectOptions{})
	if v := m.AllVirtual(model); res.Costs.Total > v.Total {
		t.Errorf("heuristic %v worse than all-virtual %v", res.Costs.Total, v.Total)
	}
	if q := m.AllQueriesMaterialized(model); res.Costs.Total > q.Total {
		t.Errorf("heuristic %v worse than all-materialized %v", res.Costs.Total, q.Total)
	}
}

// TestExhaustiveOptimalOnPaperExample: the exhaustive search must find a
// design at least as good as the heuristic, and the heuristic should be
// within a modest factor of optimal on the paper example.
func TestExhaustiveOptimalOnPaperExample(t *testing.T) {
	m, model := figure3(t)
	res := m.SelectViews(model, core.SelectOptions{})
	opt, err := m.ExhaustiveOptimal(model)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Costs.Total > res.Costs.Total+1e-6 {
		t.Errorf("exhaustive %v worse than heuristic %v", opt.Costs.Total, res.Costs.Total)
	}
	if res.Costs.Total > 1.2*opt.Costs.Total {
		t.Errorf("heuristic %v more than 20%% above optimal %v", res.Costs.Total, opt.Costs.Total)
	}
	if opt.Subsets != 1<<11 {
		t.Errorf("subsets evaluated = %d, want 2^11", opt.Subsets)
	}
	// The optimal design on the paper example includes the two shared
	// joins.
	names := opt.Materialized.Names(m)
	has := map[string]bool{}
	for _, n := range names {
		has[n] = true
	}
	if !has["tmp2"] || !has["tmp4"] {
		t.Errorf("optimal = %v, want ⊇ {tmp2, tmp4}", names)
	}
}

func TestIncrementalGainAccountsForMaterializedDescendants(t *testing.T) {
	m, _ := figure3(t)
	r4, err := m.VertexByName("result4")
	if err != nil {
		t.Fatal(err)
	}
	tmp4, err := m.VertexByName("tmp4")
	if err != nil {
		t.Fatal(err)
	}
	without := m.IncrementalGain(r4, core.VertexSet{})
	with := m.IncrementalGain(r4, core.NewVertexSet(tmp4))
	if with >= without {
		t.Errorf("gain with tmp4 materialized (%v) should drop below %v", with, without)
	}
	if with >= 0 {
		t.Errorf("Cs(result4 | tmp4 ∈ M) = %v, want negative (paper rejects result4)", with)
	}
}

func TestSelectOptionsNoBranchPruning(t *testing.T) {
	m, model := figure3(t)
	res := m.SelectViews(model, core.SelectOptions{NoBranchPruning: true})
	// tmp7 is no longer pruned; it gets its own considered step.
	step, ok := traceFor(res, "tmp7")
	if !ok {
		t.Fatal("tmp7 missing from trace")
	}
	if step.Action == core.ActionPruneBranch {
		t.Errorf("tmp7 pruned despite NoBranchPruning")
	}
	// The result is still a valid design no worse than all-virtual.
	if v := m.AllVirtual(model); res.Costs.Total > v.Total {
		t.Errorf("no-pruning heuristic %v worse than all-virtual %v", res.Costs.Total, v.Total)
	}
}

func TestStep9DropsFullyCoveredVertices(t *testing.T) {
	// Build a tiny MVPP where an intermediate's only consumer is a
	// materialized root: if the heuristic picks both, step 9 must drop the
	// intermediate.
	m, model := figure3(t)
	res := m.SelectViews(model, core.SelectOptions{})
	for _, v := range m.Vertices {
		if !res.Materialized[v.ID] || v.IsRoot() {
			continue
		}
		allOut := len(v.Out) > 0
		for _, o := range v.Out {
			if !res.Materialized[o.ID] {
				allOut = false
			}
		}
		if allOut {
			t.Errorf("%s survives with every consumer materialized", v.Name)
		}
	}
}

func TestExhaustiveRefusesLargeMVPPs(t *testing.T) {
	m, model := figure3(t)
	if len(m.InnerVertices()) > core.MaxExhaustiveCandidates {
		t.Skip("example too large")
	}
	// Construct the refusal case artificially by checking the guard
	// directly: the paper example is small, so just assert the API shape.
	if _, err := m.ExhaustiveOptimal(model); err != nil {
		t.Fatalf("exhaustive failed on small MVPP: %v", err)
	}
}
