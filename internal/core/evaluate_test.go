package core_test

import (
	"math"
	"testing"

	"github.com/warehousekit/mvpp/internal/core"
)

// TestTable2StrategyOrdering verifies the paper's Table 2 qualitative
// findings on the Figure 3 MVPP:
//
//   - materializing all query results gives the best query cost and the
//     worst maintenance cost;
//   - leaving everything virtual gives the worst query cost and zero
//     maintenance;
//   - the shared intermediate set {tmp2, tmp4} beats both on total cost.
func TestTable2StrategyOrdering(t *testing.T) {
	m, model := figure3(t)

	allVirtual := m.AllVirtual(model)
	allQueries := m.AllQueriesMaterialized(model)
	mixed, err := m.EvaluateNames(model, []string{"tmp2", "tmp4"})
	if err != nil {
		t.Fatal(err)
	}

	if allVirtual.Maintenance != 0 {
		t.Errorf("all-virtual maintenance = %v, want 0", allVirtual.Maintenance)
	}
	if !(allQueries.Query < mixed.Query && mixed.Query < allVirtual.Query) {
		t.Errorf("query cost ordering violated: allQ=%v mixed=%v virtual=%v",
			allQueries.Query, mixed.Query, allVirtual.Query)
	}
	if !(allQueries.Maintenance > mixed.Maintenance) {
		t.Errorf("maintenance ordering violated: allQ=%v mixed=%v",
			allQueries.Maintenance, mixed.Maintenance)
	}
	if !(mixed.Total < allVirtual.Total && mixed.Total < allQueries.Total) {
		t.Errorf("{tmp2,tmp4} not the winner: mixed=%v virtual=%v allQ=%v",
			mixed.Total, allVirtual.Total, allQueries.Total)
	}
}

// TestTable2AllVirtualMagnitude pins the all-virtual total near the paper's
// 95.671m (our consistent cost model lands within ~15%; EXPERIMENTS.md
// discusses the gap, which stems from the paper's inconsistent tmp2 size).
func TestTable2AllVirtualMagnitude(t *testing.T) {
	m, model := figure3(t)
	got := m.AllVirtual(model).Total
	paperValue := 95.671e6
	if rel := math.Abs(got-paperValue) / paperValue; rel > 0.15 {
		t.Errorf("all-virtual total = %v, paper 95.671m, off by %.1f%%", got, rel*100)
	}
}

// TestTable2MixedMagnitude pins the {tmp2, tmp4} strategy near the paper's
// 37.577m.
func TestTable2MixedMagnitude(t *testing.T) {
	m, model := figure3(t)
	mixed, err := m.EvaluateNames(model, []string{"tmp2", "tmp4"})
	if err != nil {
		t.Fatal(err)
	}
	paperValue := 37.577e6
	if rel := math.Abs(mixed.Total-paperValue) / paperValue; rel > 0.35 {
		t.Errorf("{tmp2,tmp4} total = %v, paper 37.577m, off by %.1f%%", mixed.Total, rel*100)
	}
	// Maintenance component: paper says 12.065m.
	if rel := math.Abs(mixed.Maintenance-12.065e6) / 12.065e6; rel > 0.05 {
		t.Errorf("{tmp2,tmp4} maintenance = %v, paper 12.065m, off by %.1f%%", mixed.Maintenance, rel*100)
	}
}

func TestEvaluateQueryCostFromMaterializedIntermediate(t *testing.T) {
	m, model := figure3(t)
	c, err := m.EvaluateNames(model, []string{"tmp2"})
	if err != nil {
		t.Fatal(err)
	}
	// With tmp2 materialized, Q1 costs fq·(projection over tmp2's 5k
	// blocks) = 10 × 5k.
	if got := c.PerQuery["Q1"]; got != 50000 {
		t.Errorf("Q1 cost with tmp2 materialized = %v, want 50000", got)
	}
	// Maintenance of tmp2 alone = 35.25k.
	if got := c.PerView["tmp2"]; got != 35250 {
		t.Errorf("tmp2 maintenance = %v, want 35250", got)
	}
	if c.Maintenance != 35250 {
		t.Errorf("total maintenance = %v, want 35250", c.Maintenance)
	}
}

func TestEvaluateMaterializedRootReadCost(t *testing.T) {
	m, model := figure3(t)
	r1, err := m.VertexByName("result1")
	if err != nil {
		t.Fatal(err)
	}
	c := m.Evaluate(model, core.NewVertexSet(r1))
	// Q1 reads the stored result: fq · blocks(result1).
	want := m.Fq["Q1"] * model.ReadCost(r1.Est)
	if math.Abs(c.PerQuery["Q1"]-want) > 1e-9 {
		t.Errorf("Q1 cost = %v, want %v", c.PerQuery["Q1"], want)
	}
	// Other queries unaffected.
	virgin := m.AllVirtual(model)
	if c.PerQuery["Q2"] != virgin.PerQuery["Q2"] {
		t.Errorf("Q2 cost changed: %v vs %v", c.PerQuery["Q2"], virgin.PerQuery["Q2"])
	}
}

func TestEvaluateSharedMaintenance(t *testing.T) {
	m, model := figure3(t)
	// result1 and result2 both recompute through the (unmaterialized)
	// tmp1/tmp2 chain; refreshing them in the same epoch recomputes that
	// chain once, so the shared cost is below the sum of standalone costs.
	c, err := m.EvaluateNames(model, []string{"result1", "result2"})
	if err != nil {
		t.Fatal(err)
	}
	standaloneSum := c.PerView["result1"] + c.PerView["result2"]
	if !(c.Maintenance < standaloneSum) {
		t.Errorf("shared maintenance %v not below standalone sum %v", c.Maintenance, standaloneSum)
	}
	// Materializing tmp2 as well lets both results read it instead of
	// recomputing the chain; total maintenance grows by no more than
	// tmp2's own refresh.
	c3, err := m.EvaluateNames(model, []string{"result1", "result2", "tmp2"})
	if err != nil {
		t.Fatal(err)
	}
	tmp2Standalone, err := m.EvaluateNames(model, []string{"tmp2"})
	if err != nil {
		t.Fatal(err)
	}
	if c3.Maintenance > c.Maintenance+tmp2Standalone.Maintenance+1e-9 {
		t.Errorf("adding tmp2 overcharged: %v vs %v + %v",
			c3.Maintenance, c.Maintenance, tmp2Standalone.Maintenance)
	}
}

func TestEvaluateMonotoneQueryCost(t *testing.T) {
	// Adding a materialized view can never increase any query's cost.
	m, model := figure3(t)
	base := m.AllVirtual(model)
	for _, v := range m.InnerVertices() {
		c := m.Evaluate(model, core.NewVertexSet(v))
		for q, qc := range c.PerQuery {
			if qc > base.PerQuery[q]+1e-9 {
				t.Errorf("materializing %s increased %s cost: %v > %v", v.Name, q, qc, base.PerQuery[q])
			}
		}
	}
}

func TestEvaluateNamesErrors(t *testing.T) {
	m, model := figure3(t)
	if _, err := m.EvaluateNames(model, []string{"nope"}); err == nil {
		t.Error("unknown vertex accepted")
	}
	if _, err := m.EvaluateNames(model, []string{"Division"}); err == nil {
		t.Error("base relation accepted as materialization candidate")
	}
}

func TestVertexSetHelpers(t *testing.T) {
	m, _ := figure3(t)
	tmp2, _ := m.VertexByName("tmp2")
	tmp4, _ := m.VertexByName("tmp4")
	s := core.NewVertexSet(tmp2, tmp4)
	names := s.Names(m)
	if len(names) != 2 || names[0] != "tmp2" || names[1] != "tmp4" {
		t.Errorf("Names = %v", names)
	}
	cl := s.Clone()
	delete(cl, tmp2.ID)
	if !s[tmp2.ID] {
		t.Error("Clone aliases the original set")
	}
}

func TestIncrementalMaintenancePolicy(t *testing.T) {
	m, model := figure3(t)
	recompute, err := m.EvaluateNames(model, []string{"tmp2", "tmp4"})
	if err != nil {
		t.Fatal(err)
	}
	m.SetMaintenancePolicy(core.PolicyIncremental, 0.01)
	defer m.SetMaintenancePolicy(core.PolicyRecompute, 0)
	incremental, err := m.EvaluateNames(model, []string{"tmp2", "tmp4"})
	if err != nil {
		t.Fatal(err)
	}
	// Small deltas make incremental maintenance far cheaper than full
	// recomputation; query costs are untouched.
	if incremental.Maintenance >= recompute.Maintenance {
		t.Errorf("incremental %v not below recompute %v", incremental.Maintenance, recompute.Maintenance)
	}
	if incremental.Query != recompute.Query {
		t.Errorf("query cost changed: %v vs %v", incremental.Query, recompute.Query)
	}
	// A full delta (δ=1) costs at least a recompute of each view plus the
	// rewrite, so it must exceed the shared recompute epoch.
	m.SetMaintenancePolicy(core.PolicyIncremental, 1)
	full, err := m.EvaluateNames(model, []string{"tmp2", "tmp4"})
	if err != nil {
		t.Fatal(err)
	}
	if full.Maintenance < recompute.Maintenance {
		t.Errorf("δ=1 incremental %v below recompute %v", full.Maintenance, recompute.Maintenance)
	}
	// Clamping.
	m.SetMaintenancePolicy(core.PolicyIncremental, -5)
	clamped, err := m.EvaluateNames(model, []string{"tmp2"})
	if err != nil {
		t.Fatal(err)
	}
	tmp2, _ := m.VertexByName("tmp2")
	if clamped.Maintenance != tmp2.Est.Blocks {
		t.Errorf("δ clamped to 0 should cost just the view rewrite: %v vs %v",
			clamped.Maintenance, tmp2.Est.Blocks)
	}
}

func TestEvaluateEmptyEqualsAllVirtual(t *testing.T) {
	m, model := figure3(t)
	a := m.Evaluate(model, core.VertexSet{})
	b := m.AllVirtual(model)
	if a.Total != b.Total || a.Query != b.Query {
		t.Errorf("empty set differs from AllVirtual: %+v vs %+v", a, b)
	}
}
