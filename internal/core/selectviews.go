package core

import (
	"fmt"
	"math/bits"
	"sort"

	"github.com/warehousekit/mvpp/internal/cost"
	"github.com/warehousekit/mvpp/internal/obs"
)

// TraceAction records what the selection heuristic did with a vertex.
type TraceAction string

// Actions appearing in a selection trace.
const (
	ActionMaterialize  TraceAction = "materialize"   // Cs > 0, added to M
	ActionReject       TraceAction = "reject"        // Cs ≤ 0
	ActionPruneBranch  TraceAction = "prune-branch"  // removed with a rejected same-branch vertex
	ActionDropCovered  TraceAction = "drop-covered"  // step 9: all consumers materialized
	ActionSkipAncestor TraceAction = "skip-ancestor" // a materialized ancestor already covers it
	ActionSafeguard    TraceAction = "safeguard"     // a baseline strategy replaced the greedy choice
)

// TraceStep is one decision of the Figure 9 heuristic.
type TraceStep struct {
	Vertex string
	Weight float64
	Cs     float64
	Action TraceAction
	Note   string
}

// SelectionResult is the outcome of the view-selection heuristic.
type SelectionResult struct {
	Materialized VertexSet
	Costs        Costs
	Trace        []TraceStep
	// Plans maps each materialized view's name to the maintenance strategy
	// behind its Cm (all-recompute unless ApplyDeltaMaintenance ran).
	Plans map[string]MaintenanceStrategy
}

// SelectOptions tunes the heuristic; the zero value is the paper algorithm.
type SelectOptions struct {
	// NoBranchPruning disables step 7 (removing same-branch successors of a
	// rejected vertex) — an ablation knob; the search then considers every
	// positive-weight vertex.
	NoBranchPruning bool
	// DiscountedMaintenance is an extension: the paper's Cs charges a
	// candidate its full from-base recompute cost even when its inputs are
	// already materialized, which makes the heuristic undervalue stacking a
	// cheap summary on top of a materialized join. With this option the
	// maintenance term is the recompute cost *given* the current M.
	DiscountedMaintenance bool
	// Obs receives the selection span, one EvSelectStep event per Figure 9
	// trace step, and the greedy-iterations counter. Nil disables
	// instrumentation.
	Obs obs.Observer
}

// SelectViews runs the greedy heuristic of paper Figure 9 on the MVPP:
// order candidate vertices by descending weight w(v); for each, compute the
// incremental gain Cs of materializing it given what is already in M;
// accept when Cs > 0; on rejection prune the not-yet-considered vertices on
// the same branch; finally drop vertices all of whose consumers are
// materialized.
func (m *MVPP) SelectViews(model cost.Model, opts SelectOptions) *SelectionResult {
	res := &SelectionResult{Materialized: make(VertexSet)}

	sp := obs.Start(opts.Obs, "select", obs.Int("vertices", int64(len(m.Vertices))))
	defer obs.End(sp)
	iterations := obs.CounterOf(opts.Obs, obs.CtrGreedyIterations)

	// Step 2: LV = positive-weight candidates in descending weight order.
	var lv []*Vertex
	for _, v := range m.InnerVertices() {
		if v.Weight > 0 {
			lv = append(lv, v)
		}
	}
	sort.SliceStable(lv, func(i, j int) bool { return lv[i].Weight > lv[j].Weight })

	removed := make(map[int]bool)
	for _, v := range lv {
		if removed[v.ID] {
			continue
		}
		iterations.Add(1)
		// Skip-ancestor refinement (paper's tmp1-vs-tmp2 example: "since its
		// parent tmp2 is already in M, tmp1 is ignored"): a vertex whose
		// every consumer path is already covered by a materialized ancestor
		// contributes nothing.
		if anc := m.materializedAncestorCovers(v, res.Materialized); anc != nil {
			res.Trace = append(res.Trace, TraceStep{
				Vertex: v.Name, Weight: v.Weight, Action: ActionSkipAncestor,
				Note: "covered by materialized " + anc.Name,
			})
			continue
		}
		cs := m.IncrementalGain(v, res.Materialized)
		if opts.DiscountedMaintenance {
			cs = m.incrementalGainDiscounted(v, res.Materialized)
		}
		if cs > 0 {
			res.Materialized[v.ID] = true
			res.Trace = append(res.Trace, TraceStep{Vertex: v.Name, Weight: v.Weight, Cs: cs, Action: ActionMaterialize})
			continue
		}
		res.Trace = append(res.Trace, TraceStep{Vertex: v.Name, Weight: v.Weight, Cs: cs, Action: ActionReject})
		if opts.NoBranchPruning {
			continue
		}
		// Step 7: drop later vertices on the same branch.
		sameBranch := make(map[int]bool)
		for _, u := range m.Ancestors(v) {
			sameBranch[u.ID] = true
		}
		for _, u := range m.Descendants(v) {
			sameBranch[u.ID] = true
		}
		for _, u := range lv {
			if u.Weight < v.Weight && sameBranch[u.ID] && !removed[u.ID] && !res.Materialized[u.ID] {
				removed[u.ID] = true
				res.Trace = append(res.Trace, TraceStep{
					Vertex: u.Name, Weight: u.Weight, Action: ActionPruneBranch,
					Note: "same branch as rejected " + v.Name,
				})
			}
		}
	}

	// Step 9: ∀v ∈ M, if D(v) ⊆ M then v is never read at query time nor
	// used for maintenance short-cuts — drop it.
	for changed := true; changed; {
		changed = false
		for _, v := range m.Vertices {
			if !res.Materialized[v.ID] || v.IsRoot() {
				continue
			}
			all := len(v.Out) > 0
			for _, out := range v.Out {
				if !res.Materialized[out.ID] {
					all = false
					break
				}
			}
			if all {
				delete(res.Materialized, v.ID)
				res.Trace = append(res.Trace, TraceStep{Vertex: v.Name, Action: ActionDropCovered,
					Note: "all consumers materialized"})
				changed = true
			}
		}
	}

	res.Costs = m.Evaluate(model, res.Materialized)
	res.Plans = m.MaintenancePlans(res.Materialized)
	m.emitMaintenancePlans(obs.From(sp), res.Materialized)
	if sp != nil {
		for _, step := range res.Trace {
			sp.Event(obs.EvSelectStep,
				obs.String("vertex", step.Vertex),
				obs.String("action", string(step.Action)),
				obs.Float("weight", step.Weight),
				obs.Float("cs", step.Cs),
				obs.String("note", step.Note))
		}
		sp.Annotate(obs.Int("materialized", int64(len(res.Materialized))),
			obs.Float("total", res.Costs.Total))
	}
	return res
}

// IncrementalGain computes the paper's Cs for vertex v given the current
// materialized set M:
//
//	Cs = Σ_{q ∈ O_v} fq(q)·(Ca(v) − Σ_{u ∈ S_v ∩ M} Ca(u)) − fu(v)·Cm(v)
//
// i.e. the frequency-weighted saving of answering v's queries from a
// materialized v rather than from its already-materialized descendants,
// minus v's maintenance cost.
func (m *MVPP) IncrementalGain(v *Vertex, mat VertexSet) float64 {
	replicated := 0.0
	for _, u := range m.Descendants(v) {
		if mat[u.ID] {
			replicated += u.Ca
		}
	}
	saving := 0.0
	for _, q := range m.QueriesUsing(v) {
		saving += m.Fq[q] * (v.Ca - replicated)
	}
	return saving - m.MaintenanceFrequency(v)*v.Cm
}

// incrementalGainDiscounted is IncrementalGain with the maintenance term
// priced as recomputation given the current materialized set (materialized
// descendants are read, not recomputed).
func (m *MVPP) incrementalGainDiscounted(v *Vertex, mat VertexSet) float64 {
	replicated := 0.0
	for _, u := range m.Descendants(v) {
		if mat[u.ID] {
			replicated += u.Ca
		}
	}
	saving := 0.0
	for _, q := range m.QueriesUsing(v) {
		saving += m.Fq[q] * (v.Ca - replicated)
	}
	// Recompute cost of v with mat's members readable.
	memo := make(map[int]float64)
	var compute func(u *Vertex) float64
	compute = func(u *Vertex) float64 {
		if u.IsLeaf() || mat[u.ID] {
			return 0
		}
		if c, ok := memo[u.ID]; ok {
			return c
		}
		c := u.CaSelf
		for _, in := range u.In {
			c += compute(in)
		}
		memo[u.ID] = c
		return c
	}
	rc := v.CaSelf
	for _, in := range v.In {
		rc += compute(in)
	}
	// With delta maintenance installed, the vertex would be refreshed by
	// whichever plan is cheaper — discounted recomputation or delta
	// propagation.
	if v.CmIncremental < rc {
		rc = v.CmIncremental
	}
	return saving - m.MaintenanceFrequency(v)*rc
}

// materializedAncestorCovers returns a materialized ancestor of v that is
// used by every query using v (so materializing v adds nothing), or nil.
func (m *MVPP) materializedAncestorCovers(v *Vertex, mat VertexSet) *Vertex {
	queries := m.QueriesUsing(v)
	for _, a := range m.Ancestors(v) {
		if !mat[a.ID] {
			continue
		}
		aq := make(map[string]bool)
		for _, q := range m.QueriesUsing(a) {
			aq[q] = true
		}
		all := true
		for _, q := range queries {
			if !aq[q] {
				all = false
				break
			}
		}
		if all {
			return a
		}
	}
	return nil
}

// MaxExhaustiveCandidates bounds the exhaustive search (2^n subsets).
const MaxExhaustiveCandidates = 22

// ExhaustiveResult is the outcome of the brute-force search.
type ExhaustiveResult struct {
	Materialized VertexSet
	Costs        Costs
	Subsets      int // how many subsets were evaluated
}

// ExhaustiveOptimal evaluates every subset of the inner vertices and
// returns a minimum-total-cost choice. It is exponential and refuses MVPPs
// with more than MaxExhaustiveCandidates inner vertices; it exists as the
// ground-truth baseline for the Figure 9 heuristic.
func (m *MVPP) ExhaustiveOptimal(model cost.Model) (*ExhaustiveResult, error) {
	cands := m.InnerVertices()
	if len(cands) > MaxExhaustiveCandidates {
		return nil, fmt.Errorf("core: %d candidates exceed the exhaustive-search bound %d",
			len(cands), MaxExhaustiveCandidates)
	}
	best := &ExhaustiveResult{}
	first := true
	total := uint32(1) << uint(len(cands))
	for mask := uint32(0); mask < total; mask++ {
		mat := make(VertexSet, bits.OnesCount32(mask))
		for i, v := range cands {
			if mask&(1<<uint(i)) != 0 {
				mat[v.ID] = true
			}
		}
		c := m.Evaluate(model, mat)
		if first || c.Total < best.Costs.Total {
			best.Materialized = mat
			best.Costs = c
			first = false
		}
	}
	best.Subsets = int(total)
	return best, nil
}

// AllVirtual returns the empty choice (paper Table 2 row 1: only base
// relations stored).
func (m *MVPP) AllVirtual(model cost.Model) Costs {
	return m.Evaluate(model, VertexSet{})
}

// AllQueriesMaterialized materializes every query root (Table 2 row 5).
func (m *MVPP) AllQueriesMaterialized(model cost.Model) Costs {
	mat := make(VertexSet, len(m.Roots))
	for _, r := range m.Roots {
		mat[r.ID] = true
	}
	return m.Evaluate(model, mat)
}
