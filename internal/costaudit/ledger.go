// Package costaudit is the cost-accountability plane of the serving layer:
// a live ledger joining the §4.1 predicted block-access costs against the
// engine's measured block I/O, per workload query class and per
// materialized view (separately for recompute and incremental refreshes).
//
// For every entry the ledger keeps the registered prediction, the last and
// mean observed actuals, a confidence count, and an EWMA calibration ratio
// (actual/predicted). An entry whose smoothed ratio leaves the configured
// calibration band after enough samples is flagged as drifted — the signal
// the serving layer's advisor uses to re-run view selection with
// recalibrated weights (see serve.Server).
//
// The ledger follows the observability layer's nil-off discipline: every
// method is a no-op on a nil *Ledger, so call sites hold one
// unconditionally and pay a single branch when auditing is off. Observe is
// one mutex acquisition on a per-entry lock striped by a read-locked map
// lookup; it is called only on cache-miss executions and view refreshes,
// never on the cache-hit fast path.
package costaudit

import (
	"sort"
	"sync"
)

// Kind distinguishes what an entry's costs describe.
type Kind string

// The ledger's entry kinds.
const (
	// KindQuery is one workload query class: predicted = the §4.1 price of
	// the view-rewritten plan, actual = measured execution I/O.
	KindQuery Kind = "query"
	// KindRecompute is one view's full recomputation refresh.
	KindRecompute Kind = "recompute"
	// KindIncremental is one view's delta-propagation refresh; its
	// prediction is re-registered every epoch from the pending delta sizes.
	KindIncremental Kind = "incremental"
)

// Defaults for the zero values of Config.
const (
	// DefaultAlpha is the EWMA smoothing factor for calibration ratios.
	DefaultAlpha = 0.3
	// DefaultDriftBound flags drift when the smoothed ratio leaves
	// [1/bound, bound]. It sits above the factor-2 agreement the engine's
	// differential tests establish for healthy calibration, so drift means
	// the estimates are worse than the model's known discretization error.
	DefaultDriftBound = 2.5
	// DefaultMinSamples is the confidence count required before an entry
	// can be flagged drifted.
	DefaultMinSamples = 3
)

// Config tunes the ledger's calibration arithmetic. The zero value takes
// every default.
type Config struct {
	// Alpha is the EWMA smoothing factor in (0, 1]: ratio ← α·(a/p) +
	// (1−α)·ratio. 0 takes DefaultAlpha.
	Alpha float64
	// DriftBound d flags an entry as drifted when its smoothed ratio
	// leaves [1/d, d]. 0 takes DefaultDriftBound.
	DriftBound float64
	// MinSamples is how many observations an entry needs before drift can
	// be flagged. 0 takes DefaultMinSamples.
	MinSamples int
}

func (c Config) withDefaults() Config {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = DefaultAlpha
	}
	if c.DriftBound <= 1 {
		c.DriftBound = DefaultDriftBound
	}
	if c.MinSamples <= 0 {
		c.MinSamples = DefaultMinSamples
	}
	return c
}

// Entry is one ledger row, as exported by Snapshot and the /costmodel
// endpoint.
type Entry struct {
	// Kind is the entry kind ("query", "recompute", "incremental").
	Kind string `json:"kind"`
	// Name is the query class or view name.
	Name string `json:"name"`
	// PredictedBlocks is the registered §4.1 prediction in block accesses.
	PredictedBlocks float64 `json:"predicted_blocks"`
	// LastActualBlocks and MeanActualBlocks summarize the observed I/O.
	LastActualBlocks float64 `json:"last_actual_blocks"`
	MeanActualBlocks float64 `json:"mean_actual_blocks"`
	// Ratio is the EWMA calibration ratio actual/predicted (0 until the
	// first observation with a positive prediction).
	Ratio float64 `json:"calibration_ratio"`
	// Samples is the confidence count (observations recorded).
	Samples int64 `json:"samples"`
	// Drifted reports whether the smoothed ratio is outside the
	// calibration band with at least MinSamples observations.
	Drifted bool `json:"drifted"`
}

// Report is a point-in-time ledger snapshot, ordered by (kind, name).
type Report struct {
	// Entries are the ledger rows.
	Entries []Entry `json:"entries"`
	// DriftedEntries counts the rows currently flagged as drifted.
	DriftedEntries int `json:"drifted_entries"`
}

// Observation is the outcome of recording one actual.
type Observation struct {
	// Ratio is the entry's updated EWMA calibration ratio.
	Ratio float64
	// Drifted reports the entry's drift flag after this observation;
	// NewlyDrifted is true only on the observation that tripped it.
	Drifted, NewlyDrifted bool
}

type entryKey struct {
	kind Kind
	name string
}

type entry struct {
	mu          sync.Mutex
	predicted   float64
	lastActual  float64
	totalActual float64
	ratio       float64
	samples     int64
	drifted     bool
}

// Ledger is the predicted-vs-actual cost ledger. A nil *Ledger is a valid
// disabled ledger whose methods are all no-ops. Create with NewLedger.
type Ledger struct {
	cfg Config

	mu      sync.RWMutex
	entries map[entryKey]*entry
}

// NewLedger builds an empty ledger.
func NewLedger(cfg Config) *Ledger {
	return &Ledger{cfg: cfg.withDefaults(), entries: make(map[entryKey]*entry)}
}

func (l *Ledger) entryFor(kind Kind, name string) *entry {
	key := entryKey{kind: kind, name: name}
	l.mu.RLock()
	e, ok := l.entries[key]
	l.mu.RUnlock()
	if ok {
		return e
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if e, ok = l.entries[key]; ok {
		return e
	}
	e = &entry{}
	l.entries[key] = e
	return e
}

// Predict registers (or re-registers) the §4.1 prediction for an entry.
// The entry's observation history is kept: after a re-prediction — a view
// swap re-pricing the workload, or a per-epoch incremental refresh price —
// subsequent ratios are computed against the new prediction and the EWMA
// converges at its usual rate. No-op on a nil ledger.
func (l *Ledger) Predict(kind Kind, name string, predicted float64) {
	if l == nil {
		return
	}
	e := l.entryFor(kind, name)
	e.mu.Lock()
	e.predicted = predicted
	e.mu.Unlock()
}

// Observe records one measured actual (block reads + writes) against the
// entry's registered prediction and updates the EWMA calibration ratio and
// the drift flag. Actuals arriving before any prediction (or against a
// non-positive one) still count samples but leave the ratio at zero.
// No-op on a nil ledger (zero Observation).
func (l *Ledger) Observe(kind Kind, name string, actual float64) Observation {
	if l == nil {
		return Observation{}
	}
	e := l.entryFor(kind, name)
	e.mu.Lock()
	defer e.mu.Unlock()
	e.lastActual = actual
	e.totalActual += actual
	e.samples++
	if e.predicted > 0 {
		r := actual / e.predicted
		if e.ratio == 0 {
			e.ratio = r
		} else {
			e.ratio = l.cfg.Alpha*r + (1-l.cfg.Alpha)*e.ratio
		}
	}
	wasDrifted := e.drifted
	e.drifted = e.samples >= int64(l.cfg.MinSamples) && e.ratio > 0 &&
		(e.ratio > l.cfg.DriftBound || e.ratio < 1/l.cfg.DriftBound)
	return Observation{
		Ratio:        e.ratio,
		Drifted:      e.drifted,
		NewlyDrifted: e.drifted && !wasDrifted,
	}
}

// Lookup returns the entry for (kind, name), reporting whether it exists.
// Safe on a nil ledger (not found).
func (l *Ledger) Lookup(kind Kind, name string) (Entry, bool) {
	if l == nil {
		return Entry{}, false
	}
	l.mu.RLock()
	e, ok := l.entries[entryKey{kind: kind, name: name}]
	l.mu.RUnlock()
	if !ok {
		return Entry{}, false
	}
	return e.export(kind, name), true
}

// DriftedViews lists the names of view entries (recompute or incremental)
// currently flagged as drifted, sorted and deduplicated. Safe on a nil
// ledger (empty).
func (l *Ledger) DriftedViews() []string {
	if l == nil {
		return nil
	}
	seen := map[string]bool{}
	l.mu.RLock()
	for key, e := range l.entries {
		if key.kind == KindQuery {
			continue
		}
		e.mu.Lock()
		drifted := e.drifted
		e.mu.Unlock()
		if drifted {
			seen[key.name] = true
		}
	}
	l.mu.RUnlock()
	if len(seen) == 0 {
		return nil
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Snapshot exports the whole ledger, ordered by (kind, name). Safe on a
// nil ledger (empty report with non-nil Entries).
func (l *Ledger) Snapshot() Report {
	rep := Report{Entries: []Entry{}}
	if l == nil {
		return rep
	}
	l.mu.RLock()
	keys := make([]entryKey, 0, len(l.entries))
	for key := range l.entries {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].kind != keys[j].kind {
			return keys[i].kind < keys[j].kind
		}
		return keys[i].name < keys[j].name
	})
	for _, key := range keys {
		e := l.entries[key]
		ent := e.export(key.kind, key.name)
		if ent.Drifted {
			rep.DriftedEntries++
		}
		rep.Entries = append(rep.Entries, ent)
	}
	l.mu.RUnlock()
	return rep
}

func (e *entry) export(kind Kind, name string) Entry {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := Entry{
		Kind:             string(kind),
		Name:             name,
		PredictedBlocks:  e.predicted,
		LastActualBlocks: e.lastActual,
		Ratio:            e.ratio,
		Samples:          e.samples,
		Drifted:          e.drifted,
	}
	if e.samples > 0 {
		out.MeanActualBlocks = e.totalActual / float64(e.samples)
	}
	return out
}
