package costaudit

import (
	"math"
	"sync"
	"testing"
)

func TestNilLedgerIsDisabled(t *testing.T) {
	var l *Ledger
	l.Predict(KindQuery, "q1", 10)
	if o := l.Observe(KindQuery, "q1", 12); o != (Observation{}) {
		t.Fatalf("nil ledger Observe = %+v, want zero", o)
	}
	if _, ok := l.Lookup(KindQuery, "q1"); ok {
		t.Fatal("nil ledger Lookup found an entry")
	}
	if v := l.DriftedViews(); v != nil {
		t.Fatalf("nil ledger DriftedViews = %v", v)
	}
	rep := l.Snapshot()
	if rep.Entries == nil || len(rep.Entries) != 0 {
		t.Fatalf("nil ledger Snapshot = %+v, want empty non-nil entries", rep)
	}
}

func TestEWMAAndMeans(t *testing.T) {
	l := NewLedger(Config{Alpha: 0.5, DriftBound: 10, MinSamples: 1})
	l.Predict(KindQuery, "q1", 100)

	o := l.Observe(KindQuery, "q1", 200)
	if o.Ratio != 2.0 {
		t.Fatalf("first ratio = %v, want 2.0 (seeded, not smoothed)", o.Ratio)
	}
	o = l.Observe(KindQuery, "q1", 100)
	if o.Ratio != 1.5 { // 0.5·1.0 + 0.5·2.0
		t.Fatalf("second ratio = %v, want 1.5", o.Ratio)
	}

	e, ok := l.Lookup(KindQuery, "q1")
	if !ok {
		t.Fatal("entry missing")
	}
	if e.Samples != 2 || e.LastActualBlocks != 100 || e.MeanActualBlocks != 150 {
		t.Fatalf("entry = %+v, want samples 2, last 100, mean 150", e)
	}
	if e.PredictedBlocks != 100 {
		t.Fatalf("predicted = %v, want 100", e.PredictedBlocks)
	}
}

func TestObserveWithoutPrediction(t *testing.T) {
	l := NewLedger(Config{})
	for i := 0; i < 10; i++ {
		o := l.Observe(KindRecompute, "v", 50)
		if o.Ratio != 0 || o.Drifted {
			t.Fatalf("observation without prediction = %+v, want zero ratio, no drift", o)
		}
	}
	e, _ := l.Lookup(KindRecompute, "v")
	if e.Samples != 10 || e.Drifted {
		t.Fatalf("entry = %+v, want 10 samples, not drifted", e)
	}
}

func TestDriftFlagRequiresMinSamples(t *testing.T) {
	l := NewLedger(Config{Alpha: 1, DriftBound: 2, MinSamples: 3})
	l.Predict(KindRecompute, "tmp2", 10)

	// Ratio 5 from the start, but drift may only trip at the third sample.
	for i := 1; i <= 3; i++ {
		o := l.Observe(KindRecompute, "tmp2", 50)
		wantDrift := i >= 3
		if o.Drifted != wantDrift {
			t.Fatalf("sample %d: drifted = %v, want %v", i, o.Drifted, wantDrift)
		}
		if o.NewlyDrifted != (i == 3) {
			t.Fatalf("sample %d: newlyDrifted = %v", i, o.NewlyDrifted)
		}
	}
	if got := l.DriftedViews(); len(got) != 1 || got[0] != "tmp2" {
		t.Fatalf("DriftedViews = %v, want [tmp2]", got)
	}

	// Query-kind drift never shows up in DriftedViews.
	l.Predict(KindQuery, "q9", 10)
	for i := 0; i < 3; i++ {
		l.Observe(KindQuery, "q9", 100)
	}
	if got := l.DriftedViews(); len(got) != 1 {
		t.Fatalf("DriftedViews after query drift = %v, want only tmp2", got)
	}
}

func TestDriftOnLowRatioAndRecovery(t *testing.T) {
	l := NewLedger(Config{Alpha: 1, DriftBound: 2, MinSamples: 1})
	l.Predict(KindIncremental, "v", 100)
	o := l.Observe(KindIncremental, "v", 10) // ratio 0.1 < 1/2
	if !o.Drifted || !o.NewlyDrifted {
		t.Fatalf("low ratio not flagged: %+v", o)
	}
	o = l.Observe(KindIncremental, "v", 100) // alpha 1 → ratio snaps to 1.0
	if o.Drifted {
		t.Fatalf("recovered ratio still drifted: %+v", o)
	}
	if got := l.DriftedViews(); got != nil {
		t.Fatalf("DriftedViews after recovery = %v", got)
	}
}

func TestSnapshotOrderingAndDriftCount(t *testing.T) {
	l := NewLedger(Config{Alpha: 1, DriftBound: 2, MinSamples: 1})
	l.Predict(KindRecompute, "b", 1)
	l.Predict(KindRecompute, "a", 1)
	l.Predict(KindQuery, "q1", 1)
	l.Observe(KindRecompute, "a", 10)

	rep := l.Snapshot()
	if len(rep.Entries) != 3 {
		t.Fatalf("entries = %d, want 3", len(rep.Entries))
	}
	order := []string{"incremental", "query", "recompute"} // kinds sort lexically
	_ = order
	if rep.Entries[0].Kind != "query" || rep.Entries[1].Name != "a" || rep.Entries[2].Name != "b" {
		t.Fatalf("unexpected order: %+v", rep.Entries)
	}
	if rep.DriftedEntries != 1 {
		t.Fatalf("drifted = %d, want 1", rep.DriftedEntries)
	}
}

func TestRepredictionKeepsHistory(t *testing.T) {
	l := NewLedger(Config{Alpha: 1, DriftBound: 10, MinSamples: 1})
	l.Predict(KindQuery, "q1", 100)
	l.Observe(KindQuery, "q1", 100)
	l.Predict(KindQuery, "q1", 50)
	o := l.Observe(KindQuery, "q1", 100)
	if o.Ratio != 2.0 {
		t.Fatalf("ratio after re-prediction = %v, want 2.0", o.Ratio)
	}
	e, _ := l.Lookup(KindQuery, "q1")
	if e.Samples != 2 {
		t.Fatalf("samples reset by Predict: %+v", e)
	}
}

func TestConcurrentObserve(t *testing.T) {
	l := NewLedger(Config{})
	l.Predict(KindQuery, "q1", 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Observe(KindQuery, "q1", 10)
				l.Predict(KindRecompute, "v", 5)
				l.Observe(KindRecompute, "v", 5)
				l.Snapshot()
				l.DriftedViews()
			}
		}()
	}
	wg.Wait()
	e, _ := l.Lookup(KindQuery, "q1")
	if e.Samples != 8*200 {
		t.Fatalf("samples = %d, want %d", e.Samples, 8*200)
	}
	if math.Abs(e.Ratio-1.0) > 1e-9 {
		t.Fatalf("ratio = %v, want 1.0", e.Ratio)
	}
}
