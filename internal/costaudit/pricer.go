package costaudit

import (
	"fmt"
	"math"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/cost"
)

// Pricer prices plans for the ledger: the §4.1 block formulas of a cost
// model, evaluated the way the operator-at-a-time engine executes them.
// Two adjustments make the prediction comparable to measured I/O instead
// of factor-of-two off by construction:
//
//   - block counts are ceil-rounded with a floor of one (a stored
//     intermediate occupies at least one block, however few rows the
//     estimator predicts), matching the engine's physical granularity at
//     small serving scales;
//   - Select and Project are charged their output write (the engine
//     materializes every operator's result; the streaming formulas price
//     reads only, while Join and Aggregate already include the write);
//   - a bare-Scan plan is charged one ReadCost pass, mirroring
//     engine.Execute's accounting for queries answered entirely by one
//     materialized view.
//
// What remains in the calibration ratio is exactly what the ledger is
// after: estimation error — stale statistics, drifting selectivities,
// wrong join-size guesses — rather than known model discretization.
type Pricer struct {
	est   *cost.Estimator
	model cost.Model
}

// NewPricer builds a pricer over the estimator (whose catalog must cover
// every relation the plans scan, views included — see
// engine.CatalogWithViews) and the model.
func NewPricer(est *cost.Estimator, m cost.Model) *Pricer {
	return &Pricer{est: est, model: m}
}

// Estimator exposes the backing estimator (e.g. to derive a delta
// estimator over the same catalog).
func (p *Pricer) Estimator() *cost.Estimator { return p.est }

// Model exposes the pricing model.
func (p *Pricer) Model() cost.Model { return p.model }

// rounded estimates n with the block count ceil-rounded to at least one —
// the size the engine actually stores.
func (p *Pricer) rounded(n algebra.Node) (cost.Estimate, error) {
	e, err := p.est.Estimate(n)
	if err != nil {
		return cost.Estimate{}, err
	}
	e.Blocks = math.Max(1, math.Ceil(e.Blocks))
	return e, nil
}

// PlanCost prices executing the whole plan, in predicted block accesses
// (reads + writes), under the engine's execution discipline.
func (p *Pricer) PlanCost(n algebra.Node) (float64, error) {
	total, err := p.walk(n)
	if err != nil {
		return 0, err
	}
	if _, ok := n.(*algebra.Scan); ok {
		e, err := p.rounded(n)
		if err != nil {
			return 0, err
		}
		total += p.model.ReadCost(e)
	}
	return total, nil
}

func (p *Pricer) walk(n algebra.Node) (float64, error) {
	total := 0.0
	for _, child := range n.Children() {
		c, err := p.walk(child)
		if err != nil {
			return 0, err
		}
		total += c
	}
	c, err := p.opCost(n)
	if err != nil {
		return 0, err
	}
	return total + c, nil
}

// OpCost prices one operator (not its subtree) over rounded input/output
// sizes — the per-node annotation EXPLAIN output renders. A bare-Scan
// root's read pass is part of PlanCost, not of the Scan's OpCost.
func (p *Pricer) OpCost(n algebra.Node) (float64, error) { return p.opCost(n) }

// opCost prices one operator over rounded input/output sizes.
func (p *Pricer) opCost(n algebra.Node) (float64, error) {
	switch v := n.(type) {
	case *algebra.Scan:
		// Reading inputs is charged by the consuming operator, like the
		// paper's Ca(leaf) = 0 convention and the engine's accounting.
		if _, err := p.est.Estimate(v); err != nil {
			return 0, err
		}
		return 0, nil
	case *algebra.Select:
		in, err := p.rounded(v.Input)
		if err != nil {
			return 0, err
		}
		out, err := p.rounded(v)
		if err != nil {
			return 0, err
		}
		return p.model.SelectCost(in) + out.Blocks, nil
	case *algebra.Project:
		in, err := p.rounded(v.Input)
		if err != nil {
			return 0, err
		}
		out, err := p.rounded(v)
		if err != nil {
			return 0, err
		}
		return p.model.ProjectCost(in) + out.Blocks, nil
	case *algebra.Join:
		outer, err := p.rounded(v.Left)
		if err != nil {
			return 0, err
		}
		inner, err := p.rounded(v.Right)
		if err != nil {
			return 0, err
		}
		out, err := p.rounded(v)
		if err != nil {
			return 0, err
		}
		return p.model.JoinCost(outer, inner, out), nil
	case *algebra.Aggregate:
		in, err := p.rounded(v.Input)
		if err != nil {
			return 0, err
		}
		out, err := p.rounded(v)
		if err != nil {
			return 0, err
		}
		return p.model.AggregateCost(in, out), nil
	default:
		return 0, fmt.Errorf("costaudit: cannot price node type %T", n)
	}
}
