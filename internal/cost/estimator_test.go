package cost

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/catalog"
)

// paperCatalog builds the Product/Division slice of the paper's Table 1.
func paperCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	rels := []*catalog.Relation{
		{
			Name: "Product",
			Schema: algebra.NewSchema(
				algebra.Column{Relation: "Product", Name: "Pid", Type: algebra.TypeInt},
				algebra.Column{Relation: "Product", Name: "name", Type: algebra.TypeString},
				algebra.Column{Relation: "Product", Name: "Did", Type: algebra.TypeInt},
			),
			Rows: 30000, Blocks: 3000, UpdateFrequency: 1,
			Attrs: map[string]catalog.AttrStats{
				"Pid": {DistinctValues: 30000},
				"Did": {DistinctValues: 5000},
			},
		},
		{
			Name: "Division",
			Schema: algebra.NewSchema(
				algebra.Column{Relation: "Division", Name: "Did", Type: algebra.TypeInt},
				algebra.Column{Relation: "Division", Name: "name", Type: algebra.TypeString},
				algebra.Column{Relation: "Division", Name: "city", Type: algebra.TypeString},
			),
			Rows: 5000, Blocks: 500, UpdateFrequency: 1,
			Attrs: map[string]catalog.AttrStats{
				"Did":  {DistinctValues: 5000},
				"city": {DistinctValues: 50},
			},
		},
	}
	for _, r := range rels {
		if err := c.AddRelation(r); err != nil {
			t.Fatal(err)
		}
	}
	la := algebra.Eq(algebra.Ref("Division", "city"), algebra.StringVal("LA"))
	if err := c.SetPredicateSelectivity(la, 0.02); err != nil {
		t.Fatal(err)
	}
	if err := c.PinJoinSize([]string{"Product", "Division"}, catalog.JoinSize{Rows: 30000, Blocks: 5000}); err != nil {
		t.Fatal(err)
	}
	return c
}

// tmp2Plan builds the paper's tmp2: Product ⋈ σ city="LA"(Division).
func tmp2Plan(t *testing.T) algebra.Node {
	t.Helper()
	c := paperCatalog(t)
	pd, err := c.Scan("Product")
	if err != nil {
		t.Fatal(err)
	}
	div, err := c.Scan("Division")
	if err != nil {
		t.Fatal(err)
	}
	tmp1 := algebra.NewSelect(div, algebra.Eq(algebra.Ref("Division", "city"), algebra.StringVal("LA")))
	return algebra.NewJoin(pd, tmp1, []algebra.JoinCond{
		{Left: algebra.Ref("Product", "Did"), Right: algebra.Ref("Division", "Did")},
	})
}

func TestScanEstimate(t *testing.T) {
	c := paperCatalog(t)
	e := NewEstimator(c, DefaultOptions())
	scan, _ := c.Scan("Division")
	est, err := e.Estimate(scan)
	if err != nil {
		t.Fatal(err)
	}
	if est.Rows != 5000 || est.Blocks != 500 || est.Width != 0.1 {
		t.Errorf("Estimate = %+v", est)
	}
}

func TestSelectEstimateAppliesSelectivity(t *testing.T) {
	c := paperCatalog(t)
	e := NewEstimator(c, DefaultOptions())
	div, _ := c.Scan("Division")
	sel := algebra.NewSelect(div, algebra.Eq(algebra.Ref("Division", "city"), algebra.StringVal("LA")))
	est, err := e.Estimate(sel)
	if err != nil {
		t.Fatal(err)
	}
	if est.Rows != 100 || est.Blocks != 10 {
		t.Errorf("σLA(Division) = %+v, want 100 rows / 10 blocks", est)
	}
}

func TestJoinEstimatePrincipled(t *testing.T) {
	c := paperCatalog(t)
	e := NewEstimator(c, DefaultOptions())
	est, err := e.Estimate(tmp2Plan(t))
	if err != nil {
		t.Fatal(err)
	}
	// 30000 × 100 × (1/5000) = 600 rows; width 0.1 + 0.1 = 0.2 → 120 blocks.
	if math.Abs(est.Rows-600) > 1e-9 || math.Abs(est.Blocks-120) > 1e-9 {
		t.Errorf("principled tmp2 = %+v, want 600 rows / 120 blocks", est)
	}
}

func TestJoinEstimatePinned(t *testing.T) {
	c := paperCatalog(t)
	e := NewEstimator(c, PaperOptions())
	est, err := e.Estimate(tmp2Plan(t))
	if err != nil {
		t.Fatal(err)
	}
	// Paper mode pins the Product⋈Division size from Table 1 regardless of
	// the selection below.
	if est.Rows != 30000 || est.Blocks != 5000 {
		t.Errorf("pinned tmp2 = %+v, want 30000 rows / 5000 blocks", est)
	}
}

func TestProjectionShrink(t *testing.T) {
	c := paperCatalog(t)
	div, _ := c.Scan("Division")
	proj := algebra.NewProject(div, []algebra.ColumnRef{algebra.Ref("Division", "Did")})

	shrink := NewEstimator(c, DefaultOptions())
	est, err := shrink.Estimate(proj)
	if err != nil {
		t.Fatal(err)
	}
	want := 500.0 / 3
	if math.Abs(est.Blocks-want) > 1e-9 {
		t.Errorf("shrinking projection blocks = %v, want %v", est.Blocks, want)
	}

	noShrink := NewEstimator(c, Options{ProjectionShrinks: false})
	est, err = noShrink.Estimate(proj)
	if err != nil {
		t.Fatal(err)
	}
	if est.Blocks != 500 {
		t.Errorf("no-shrink projection blocks = %v, want 500", est.Blocks)
	}
}

// TestPaperTmp2MaintenanceCost reproduces the paper's headline arithmetic:
// building tmp2 from base relations costs 35.25k block accesses
// (0.25k for σ city="LA"(Division) + 3k·10 + 5k for the join).
func TestPaperTmp2MaintenanceCost(t *testing.T) {
	c := paperCatalog(t)
	e := NewEstimator(c, PaperOptions())
	m := &PaperModel{}
	got, err := e.PlanCost(m, tmp2Plan(t))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-35250) > 1e-6 {
		t.Errorf("Ca(tmp2) = %v, want 35250 (paper: 35.25k)", got)
	}
}

func TestOpCostPerOperator(t *testing.T) {
	c := paperCatalog(t)
	e := NewEstimator(c, PaperOptions())
	m := &PaperModel{}
	div, _ := c.Scan("Division")
	pd, _ := c.Scan("Product")

	scanCost, err := e.OpCost(m, div)
	if err != nil || scanCost != 0 {
		t.Errorf("scan OpCost = %v, %v; want 0 (Ca(leaf)=0)", scanCost, err)
	}

	sel := algebra.NewSelect(div, algebra.Eq(algebra.Ref("Division", "city"), algebra.StringVal("LA")))
	selCost, err := e.OpCost(m, sel)
	if err != nil || selCost != 250 {
		t.Errorf("select OpCost = %v, %v; want 250 (half scan)", selCost, err)
	}

	proj := algebra.NewProject(pd, []algebra.ColumnRef{algebra.Ref("Product", "name")})
	projCost, err := e.OpCost(m, proj)
	if err != nil || projCost != 3000 {
		t.Errorf("project OpCost = %v, %v; want 3000", projCost, err)
	}
}

func TestFullScanSelectOption(t *testing.T) {
	c := paperCatalog(t)
	e := NewEstimator(c, PaperOptions())
	m := &PaperModel{FullScanSelect: true}
	div, _ := c.Scan("Division")
	sel := algebra.NewSelect(div, algebra.Eq(algebra.Ref("Division", "city"), algebra.StringVal("LA")))
	got, err := e.OpCost(m, sel)
	if err != nil || got != 500 {
		t.Errorf("full-scan select cost = %v, %v; want 500", got, err)
	}
}

func TestEstimateUnknownRelation(t *testing.T) {
	c := paperCatalog(t)
	e := NewEstimator(c, DefaultOptions())
	bad := algebra.NewScan("Ghost", algebra.NewSchema(
		algebra.Column{Relation: "Ghost", Name: "x", Type: algebra.TypeInt}))
	if _, err := e.Estimate(bad); err == nil || !strings.Contains(err.Error(), "unknown relation") {
		t.Errorf("Estimate(ghost) error = %v", err)
	}
	if _, err := e.PlanCost(&PaperModel{}, bad); err == nil {
		t.Error("PlanCost(ghost) should fail")
	}
}

func TestMemoizationSharesAcrossEquivalentShapes(t *testing.T) {
	c := paperCatalog(t)
	e := NewEstimator(c, DefaultOptions())
	a := tmp2Plan(t)
	// Same semantics, commuted join order.
	j := a.(*algebra.Join)
	b := algebra.NewJoin(j.Right, j.Left, []algebra.JoinCond{
		{Left: algebra.Ref("Division", "Did"), Right: algebra.Ref("Product", "Did")},
	})
	ea, err := e.Estimate(a)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := e.Estimate(b)
	if err != nil {
		t.Fatal(err)
	}
	if ea != eb {
		t.Errorf("commuted join estimated differently: %+v vs %+v", ea, eb)
	}
}

func TestModelNames(t *testing.T) {
	models := []Model{&PaperModel{}, &BlockNLJModel{}, &HashJoinModel{}, &SortMergeModel{}}
	seen := map[string]bool{}
	for _, m := range models {
		name := m.Name()
		if name == "" || seen[name] {
			t.Errorf("model name %q empty or duplicated", name)
		}
		seen[name] = true
	}
}

func TestJoinModelOrdering(t *testing.T) {
	// For large inputs, NLJ must dominate hash join which dominates nothing
	// smaller than a single pass.
	outer := Estimate{Rows: 1e5, Blocks: 1e4, Width: 0.1}
	inner := Estimate{Rows: 1e5, Blocks: 1e4, Width: 0.1}
	out := Estimate{Rows: 1e5, Blocks: 2e4, Width: 0.2}
	nlj := (&PaperModel{}).JoinCost(outer, inner, out)
	hash := (&HashJoinModel{}).JoinCost(outer, inner, out)
	merge := (&SortMergeModel{}).JoinCost(outer, inner, out)
	if !(nlj > merge && merge > hash) {
		t.Errorf("cost ordering violated: nlj=%v merge=%v hash=%v", nlj, merge, hash)
	}
	if hash < outer.Blocks+inner.Blocks {
		t.Errorf("hash join cheaper than reading its inputs: %v", hash)
	}
}

// Property: selection cost and estimate are monotone in selectivity, and
// estimates never go negative.
func TestSelectEstimateMonotoneProperty(t *testing.T) {
	c := paperCatalog(t)
	div, _ := c.Scan("Division")
	f := func(raw float64) bool {
		s := raw
		if s != s || s < 0 {
			s = 0
		}
		if s > 1 {
			s = 1 / s
		}
		pred := algebra.Eq(algebra.Ref("Division", "city"), algebra.StringVal("X"))
		if err := c.SetPredicateSelectivity(pred, s); err != nil {
			return false
		}
		e := NewEstimator(c, DefaultOptions()) // fresh memo per trial
		est, err := e.Estimate(algebra.NewSelect(div, pred))
		if err != nil {
			return false
		}
		return est.Rows >= 0 && est.Blocks >= 0 && est.Rows <= 5000 && est.Blocks <= 500
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: PlanCost is additive — the cost of a tree equals the sum of
// OpCost over its nodes.
func TestPlanCostAdditivity(t *testing.T) {
	c := paperCatalog(t)
	e := NewEstimator(c, PaperOptions())
	m := &PaperModel{}
	plan := algebra.NewProject(tmp2Plan(t), []algebra.ColumnRef{algebra.Ref("Product", "name")})
	total, err := e.PlanCost(m, plan)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	algebra.Walk(plan, func(n algebra.Node) {
		opc, err := e.OpCost(m, n)
		if err != nil {
			t.Fatalf("OpCost: %v", err)
		}
		sum += opc
	})
	if math.Abs(total-sum) > 1e-9 {
		t.Errorf("PlanCost = %v, Σ OpCost = %v", total, sum)
	}
}
