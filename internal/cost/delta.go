package cost

import (
	"fmt"
	"math"
	"sync"

	"github.com/warehousekit/mvpp/internal/algebra"
)

func errUnknownNode(n algebra.Node) error {
	return fmt.Errorf("cost: cannot price node type %T", n)
}

// DeltaSpec describes the expected insert volume of one maintenance epoch
// as a fraction of each base relation's current cardinality. A fraction of
// 0.01 on "Sales" means one epoch inserts about 1% of Sales' rows; the
// delta-propagation maintenance cost scales accordingly. Deltas are
// insert-only, matching the paper's append-mostly warehouse setting.
type DeltaSpec struct {
	// DefaultFraction applies to every relation without an explicit entry.
	DefaultFraction float64
	// PerRelation overrides the default per relation name.
	PerRelation map[string]float64
}

// FractionOf returns the delta fraction for the named relation.
func (s DeltaSpec) FractionOf(relation string) float64 {
	if f, ok := s.PerRelation[relation]; ok {
		return f
	}
	return s.DefaultFraction
}

// Enabled reports whether the spec describes any nonzero delta.
func (s DeltaSpec) Enabled() bool {
	if s.DefaultFraction > 0 {
		return true
	}
	for _, f := range s.PerRelation {
		if f > 0 {
			return true
		}
	}
	return false
}

// Incrementable reports whether the plan rooted at n can be maintained by
// insert-only delta propagation, and if not, why. The supported shape is
// select-project-join with at most one aggregation, at the root, using
// mergeable aggregate functions (COUNT, SUM, MIN, MAX — monotone under
// inserts). AVG is not mergeable from stored values, and an aggregate
// below other operators would emit group *updates*, not inserts.
func Incrementable(n algebra.Node) (bool, string) {
	if agg, ok := n.(*algebra.Aggregate); ok {
		for _, a := range agg.Aggs {
			if a.Func == algebra.AggAvg {
				return false, "AVG is not mergeable under insert-only deltas"
			}
		}
		n = agg.Input
	}
	var bad string
	var walk func(algebra.Node)
	walk = func(node algebra.Node) {
		if bad != "" {
			return
		}
		if _, ok := node.(*algebra.Aggregate); ok {
			bad = "aggregate below the plan root emits group updates, not inserts"
			return
		}
		for _, child := range node.Children() {
			walk(child)
		}
	}
	walk(n)
	if bad != "" {
		return false, bad
	}
	return true, ""
}

// DeltaEstimator prices incremental view maintenance by delta propagation:
// given per-base-relation delta fractions, it derives the size of Δn for
// every plan node (insert-only algebra: Δσ(S) = σ(ΔS), Δπ(S) = π(ΔS),
// Δ(L⋈R) = ΔL⋈R ∪ L⋈ΔR) and prices the propagation plus the final
// apply-to-view step under any cost Model. Like Estimator it memoizes by
// semantic key and is safe for concurrent use.
type DeltaEstimator struct {
	est  *Estimator
	spec DeltaSpec

	mu   sync.Mutex
	memo map[string]Estimate
}

// NewDeltaEstimator builds a delta estimator over the same catalog and
// options as est.
func NewDeltaEstimator(est *Estimator, spec DeltaSpec) *DeltaEstimator {
	return &DeltaEstimator{est: est, spec: spec, memo: make(map[string]Estimate)}
}

// Base exposes the wrapped full-size estimator.
func (d *DeltaEstimator) Base() *Estimator { return d.est }

// Spec exposes the delta fractions.
func (d *DeltaEstimator) Spec() DeltaSpec { return d.spec }

// DeltaEstimate returns the estimated size of Δn, the tuples one
// maintenance epoch adds to the relation computed by n.
func (d *DeltaEstimator) DeltaEstimate(n algebra.Node) (Estimate, error) {
	key := "Δ|" + algebra.SemanticKey(n)
	d.mu.Lock()
	est, ok := d.memo[key]
	d.mu.Unlock()
	if ok {
		return est, nil
	}
	est, err := d.deltaEstimate(n)
	if err != nil {
		return Estimate{}, err
	}
	d.mu.Lock()
	d.memo[key] = est
	d.mu.Unlock()
	return est, nil
}

func (d *DeltaEstimator) deltaEstimate(n algebra.Node) (Estimate, error) {
	switch v := n.(type) {
	case *algebra.Scan:
		full, err := d.est.Estimate(v)
		if err != nil {
			return Estimate{}, err
		}
		return scale(full, d.spec.FractionOf(v.Relation)), nil
	case *algebra.Select:
		din, err := d.DeltaEstimate(v.Input)
		if err != nil {
			return Estimate{}, err
		}
		s := d.est.Catalog().PredicateSelectivity(v.Pred)
		return Estimate{Rows: din.Rows * s, Blocks: din.Blocks * s, Width: din.Width}, nil
	case *algebra.Project:
		din, err := d.DeltaEstimate(v.Input)
		if err != nil {
			return Estimate{}, err
		}
		if !d.est.Options().ProjectionShrinks {
			return din, nil
		}
		inCols := v.Input.Schema().Len()
		if inCols == 0 {
			return din, nil
		}
		frac := float64(len(v.Cols)) / float64(inCols)
		return Estimate{Rows: din.Rows, Blocks: din.Blocks * frac, Width: din.Width * frac}, nil
	case *algebra.Join:
		outL, outR, err := d.deltaJoinParts(v)
		if err != nil {
			return Estimate{}, err
		}
		return Estimate{Rows: outL.Rows + outR.Rows, Blocks: outL.Blocks + outR.Blocks, Width: outL.Width}, nil
	case *algebra.Aggregate:
		din, err := d.DeltaEstimate(v.Input)
		if err != nil {
			return Estimate{}, err
		}
		out, err := d.est.Estimate(v)
		if err != nil {
			return Estimate{}, err
		}
		// Each delta row touches at most one group, and there are at most
		// out.Rows groups in total.
		rows := math.Min(out.Rows, din.Rows)
		return Estimate{Rows: rows, Blocks: rows * out.Width, Width: out.Width}, nil
	default:
		return Estimate{}, errUnknownNode(n)
	}
}

// deltaJoinParts sizes the two legs of Δ(L⋈R) = ΔL⋈R ∪ L⋈ΔR. Both legs
// are derived by scaling the full join result by the delta-to-full row
// ratio of the changing side, which keeps pinned join sizes consistent
// with the full-size estimator.
func (d *DeltaEstimator) deltaJoinParts(v *algebra.Join) (outL, outR Estimate, err error) {
	left, err := d.est.Estimate(v.Left)
	if err != nil {
		return Estimate{}, Estimate{}, err
	}
	right, err := d.est.Estimate(v.Right)
	if err != nil {
		return Estimate{}, Estimate{}, err
	}
	dl, err := d.DeltaEstimate(v.Left)
	if err != nil {
		return Estimate{}, Estimate{}, err
	}
	dr, err := d.DeltaEstimate(v.Right)
	if err != nil {
		return Estimate{}, Estimate{}, err
	}
	out, err := d.est.Estimate(v)
	if err != nil {
		return Estimate{}, Estimate{}, err
	}
	return scale(out, ratio(dl.Rows, left.Rows)), scale(out, ratio(dr.Rows, right.Rows)), nil
}

// PropagationCost prices computing Δn from the base-relation deltas: the
// delta stream flows through every operator of the plan, joins pair each
// side's delta against the other side's full (stored) relation.
func (d *DeltaEstimator) PropagationCost(m Model, n algebra.Node) (float64, error) {
	total := 0.0
	var walk func(algebra.Node) error
	walk = func(node algebra.Node) error {
		c, err := d.opDeltaCost(m, node)
		if err != nil {
			return err
		}
		total += c
		for _, child := range node.Children() {
			if err := walk(child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(n); err != nil {
		return 0, err
	}
	return total, nil
}

func (d *DeltaEstimator) opDeltaCost(m Model, n algebra.Node) (float64, error) {
	switch v := n.(type) {
	case *algebra.Scan:
		// Reading the delta is charged by the consuming operator, the same
		// convention as OpCost for full recomputation.
		return 0, nil
	case *algebra.Select:
		din, err := d.DeltaEstimate(v.Input)
		if err != nil {
			return 0, err
		}
		return m.SelectCost(din), nil
	case *algebra.Project:
		din, err := d.DeltaEstimate(v.Input)
		if err != nil {
			return 0, err
		}
		return m.ProjectCost(din), nil
	case *algebra.Join:
		left, err := d.est.Estimate(v.Left)
		if err != nil {
			return 0, err
		}
		right, err := d.est.Estimate(v.Right)
		if err != nil {
			return 0, err
		}
		dl, err := d.DeltaEstimate(v.Left)
		if err != nil {
			return 0, err
		}
		dr, err := d.DeltaEstimate(v.Right)
		if err != nil {
			return 0, err
		}
		outL, outR, err := d.deltaJoinParts(v)
		if err != nil {
			return 0, err
		}
		return m.JoinCost(dl, right, outL) + m.JoinCost(left, dr, outR), nil
	case *algebra.Aggregate:
		din, err := d.DeltaEstimate(v.Input)
		if err != nil {
			return 0, err
		}
		dout, err := d.DeltaEstimate(v)
		if err != nil {
			return 0, err
		}
		return m.AggregateCost(din, dout), nil
	default:
		return 0, errUnknownNode(n)
	}
}

// MaintenanceCost prices one incremental refresh of a materialized view
// defined by n: delta propagation plus applying Δn to the stored view
// (appending for select-project-join views, a read-merge-rewrite pass for
// aggregate views). ok is false — and the cost +Inf — when the plan cannot
// be maintained incrementally under insert-only deltas; callers fall back
// to recomputation.
func (d *DeltaEstimator) MaintenanceCost(m Model, n algebra.Node) (cost float64, ok bool, err error) {
	if can, _ := Incrementable(n); !can {
		return math.Inf(1), false, nil
	}
	prop, err := d.PropagationCost(m, n)
	if err != nil {
		return 0, false, err
	}
	droot, err := d.DeltaEstimate(n)
	if err != nil {
		return 0, false, err
	}
	apply := droot.Blocks // append the new tuples
	if _, isAgg := n.(*algebra.Aggregate); isAgg {
		// Merging into stored groups reads and rewrites the view.
		stored, err := d.est.Estimate(n)
		if err != nil {
			return 0, false, err
		}
		apply = 2*stored.Blocks + droot.Blocks
	}
	return prop + apply, true, nil
}

func scale(e Estimate, f float64) Estimate {
	return Estimate{Rows: e.Rows * f, Blocks: e.Blocks * f, Width: e.Width}
}

func ratio(part, whole float64) float64 {
	if whole <= 0 {
		return 0
	}
	return part / whole
}
