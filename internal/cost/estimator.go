package cost

import (
	"fmt"
	"math"
	"sync"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/catalog"
	"github.com/warehousekit/mvpp/internal/obs"
)

// Options configures size estimation.
type Options struct {
	// PinnedJoinSizes makes join-result sizes come from the catalog's
	// pinned Table-1 style entries (keyed by the set of base relations under
	// the join) when available, ignoring the effect of selections below the
	// join — this is what the paper's Figure 3 labels do. When off (the
	// default), sizes propagate multiplicatively through selectivities.
	PinnedJoinSizes bool
	// ProjectionShrinks scales a projection's width by the fraction of
	// columns kept. The paper never shrinks on projection, so paper-faithful
	// configurations turn this off.
	ProjectionShrinks bool
}

// DefaultOptions is the principled configuration used by the library.
func DefaultOptions() Options {
	return Options{PinnedJoinSizes: false, ProjectionShrinks: true}
}

// PaperOptions reproduces the paper's Figure 3 / Table 2 arithmetic: join
// result sizes come from Table 1's pinned rows. Projections still shrink —
// the paper's Table 2 row 5 prices reading the materialized query results
// at (small) result sizes, not at the full joined width.
func PaperOptions() Options {
	return Options{PinnedJoinSizes: true, ProjectionShrinks: true}
}

// Estimator derives sizes (Estimate) and costs for relational plan nodes
// from a catalog. Estimates are memoized by semantic key, so shared
// subexpressions across queries are estimated once. An Estimator is safe
// for concurrent use (the MVPP generator evaluates rotation candidates in
// parallel).
type Estimator struct {
	cat  *catalog.Catalog
	opts Options

	// calls and memoHits instrument the estimator (see Instrument); both
	// are nil — and their Add a no-op — when observability is off.
	calls    *obs.Counter
	memoHits *obs.Counter

	mu   sync.Mutex
	memo map[string]Estimate
}

// NewEstimator builds an estimator over the catalog.
func NewEstimator(cat *catalog.Catalog, opts Options) *Estimator {
	return &Estimator{cat: cat, opts: opts, memo: make(map[string]Estimate)}
}

// Instrument wires the estimator's call and memo-hit counters into the
// registry; a nil registry disables instrumentation again.
func (e *Estimator) Instrument(reg *obs.Registry) {
	if reg == nil {
		e.calls, e.memoHits = nil, nil
		return
	}
	e.calls = reg.Counter(obs.CtrEstimatorCalls)
	e.memoHits = reg.Counter(obs.CtrMemoHits)
}

// Catalog exposes the backing catalog.
func (e *Estimator) Catalog() *catalog.Catalog { return e.cat }

// Options exposes the estimation options.
func (e *Estimator) Options() Options { return e.opts }

// Estimate returns the size estimate for the relation computed by n.
func (e *Estimator) Estimate(n algebra.Node) (Estimate, error) {
	e.calls.Add(1)
	key := algebra.SemanticKey(n)
	e.mu.Lock()
	est, ok := e.memo[key]
	e.mu.Unlock()
	if ok {
		e.memoHits.Add(1)
		return est, nil
	}
	est, err := e.estimate(n)
	if err != nil {
		return Estimate{}, err
	}
	e.mu.Lock()
	e.memo[key] = est
	e.mu.Unlock()
	return est, nil
}

func (e *Estimator) estimate(n algebra.Node) (Estimate, error) {
	switch v := n.(type) {
	case *algebra.Scan:
		rel, err := e.cat.Relation(v.Relation)
		if err != nil {
			return Estimate{}, err
		}
		return Estimate{Rows: rel.Rows, Blocks: rel.Blocks, Width: rel.RowWidth()}, nil
	case *algebra.Select:
		in, err := e.Estimate(v.Input)
		if err != nil {
			return Estimate{}, err
		}
		s := e.cat.PredicateSelectivity(v.Pred)
		return Estimate{Rows: in.Rows * s, Blocks: in.Blocks * s, Width: in.Width}, nil
	case *algebra.Project:
		in, err := e.Estimate(v.Input)
		if err != nil {
			return Estimate{}, err
		}
		if !e.opts.ProjectionShrinks {
			return in, nil
		}
		inWidthCols := v.Input.Schema().Len()
		if inWidthCols == 0 {
			return in, nil
		}
		frac := float64(len(v.Cols)) / float64(inWidthCols)
		return Estimate{Rows: in.Rows, Blocks: in.Blocks * frac, Width: in.Width * frac}, nil
	case *algebra.Aggregate:
		in, err := e.Estimate(v.Input)
		if err != nil {
			return Estimate{}, err
		}
		// One output row per group: the product of the grouping columns'
		// distinct-value counts, capped by the input cardinality. Unknown
		// NDVs contribute a conservative square-root-of-input factor.
		groups := 1.0
		for _, ref := range v.GroupBy {
			if ndv, ok := e.cat.DistinctValues(ref); ok {
				groups *= ndv
			} else {
				groups *= math.Sqrt(in.Rows + 1)
			}
		}
		if groups > in.Rows && in.Rows > 0 {
			groups = in.Rows
		}
		inCols := v.Input.Schema().Len()
		width := in.Width
		if inCols > 0 {
			width = in.Width * float64(v.Schema().Len()) / float64(inCols)
		}
		return Estimate{Rows: groups, Blocks: groups * width, Width: width}, nil
	case *algebra.Join:
		left, err := e.Estimate(v.Left)
		if err != nil {
			return Estimate{}, err
		}
		right, err := e.Estimate(v.Right)
		if err != nil {
			return Estimate{}, err
		}
		if e.opts.PinnedJoinSizes {
			if sz, ok := e.cat.PinnedJoinSize(algebra.Leaves(v)); ok {
				width := 0.0
				if sz.Rows > 0 {
					width = sz.Blocks / sz.Rows
				}
				return Estimate{Rows: sz.Rows, Blocks: sz.Blocks, Width: width}, nil
			}
		}
		rows := left.Rows * right.Rows
		for _, c := range v.On {
			rows *= e.cat.JoinSelectivity(c)
		}
		width := left.Width + right.Width
		return Estimate{Rows: rows, Blocks: rows * width, Width: width}, nil
	default:
		return Estimate{}, fmt.Errorf("cost: cannot estimate node type %T", n)
	}
}

// OpCost prices executing just the operation at n, given that its inputs are
// available as streams or stored relations. Scans cost nothing themselves
// (the paper sets Ca(leaf) = 0; reading inputs is charged by the consuming
// operator).
func (e *Estimator) OpCost(m Model, n algebra.Node) (float64, error) {
	switch v := n.(type) {
	case *algebra.Scan:
		if _, err := e.cat.Relation(v.Relation); err != nil {
			return 0, err
		}
		return 0, nil
	case *algebra.Select:
		in, err := e.Estimate(v.Input)
		if err != nil {
			return 0, err
		}
		return m.SelectCost(in), nil
	case *algebra.Project:
		in, err := e.Estimate(v.Input)
		if err != nil {
			return 0, err
		}
		return m.ProjectCost(in), nil
	case *algebra.Join:
		outer, err := e.Estimate(v.Left)
		if err != nil {
			return 0, err
		}
		inner, err := e.Estimate(v.Right)
		if err != nil {
			return 0, err
		}
		out, err := e.Estimate(v)
		if err != nil {
			return 0, err
		}
		return m.JoinCost(outer, inner, out), nil
	case *algebra.Aggregate:
		in, err := e.Estimate(v.Input)
		if err != nil {
			return 0, err
		}
		out, err := e.Estimate(v)
		if err != nil {
			return 0, err
		}
		return m.AggregateCost(in, out), nil
	default:
		return 0, fmt.Errorf("cost: cannot price node type %T", n)
	}
}

// PlanCost prices computing n from base relations: the sum of OpCost over
// every node of the tree. This is the paper's Ca(v).
func (e *Estimator) PlanCost(m Model, n algebra.Node) (float64, error) {
	total := 0.0
	var walk func(algebra.Node) error
	walk = func(node algebra.Node) error {
		c, err := e.OpCost(m, node)
		if err != nil {
			return err
		}
		total += c
		for _, child := range node.Children() {
			if err := walk(child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(n); err != nil {
		return 0, err
	}
	return total, nil
}
