// Package cost implements the block-access cost model of the paper (§4.1)
// together with the size estimator that drives it, and alternative join cost
// models used for ablation studies.
//
// Conventions, reverse-engineered from the paper's Figure 3 labels and
// validated in EXPERIMENTS.md:
//
//   - selection by linear search reads half the input blocks on average
//     (the paper labels σ city="LA"(Division) with 0.25k for a 0.5k-block
//     relation);
//   - nested-loop join costs blocks(outer)·blocks(inner) plus writing the
//     output (tmp2: 3k·10 + 5k = 35k, matching the paper's 35.25k total
//     with the 0.25k selection);
//   - projection streams its input once;
//   - reading a materialized view costs its block count.
package cost

import "math"

// Model prices the relational operators in block accesses.
type Model interface {
	// Name identifies the model in benchmark output.
	Name() string
	// SelectCost is the cost of filtering a stream of in blocks.
	SelectCost(in Estimate) float64
	// ProjectCost is the cost of projecting a stream of in blocks.
	ProjectCost(in Estimate) float64
	// JoinCost is the cost of joining outer with inner producing out.
	JoinCost(outer, inner, out Estimate) float64
	// AggregateCost is the cost of grouping and aggregating a stream of in
	// blocks producing out.
	AggregateCost(in, out Estimate) float64
	// ReadCost is the cost of reading a stored relation or materialized
	// view of the given size.
	ReadCost(v Estimate) float64
}

// Estimate carries the estimated size of a (sub)relation. Width is the
// fraction of a block one row occupies, so Blocks ≈ Rows · Width. All fields
// use float64 because the paper's frequencies (e.g. fq = 0.5) make all cost
// arithmetic fractional.
type Estimate struct {
	Rows   float64
	Blocks float64
	Width  float64
}

// PaperModel is the cost model of the paper: linear-search selection at half
// a scan, block nested-loop join at blocks(outer)·blocks(inner) plus output
// write, projection at one scan.
type PaperModel struct {
	// FullScanSelect charges selections a full input scan instead of the
	// paper's half-scan average.
	FullScanSelect bool
}

var _ Model = (*PaperModel)(nil)

// Name implements Model.
func (m *PaperModel) Name() string { return "paper-nlj" }

// SelectCost implements Model.
func (m *PaperModel) SelectCost(in Estimate) float64 {
	if m.FullScanSelect {
		return in.Blocks
	}
	return in.Blocks / 2
}

// ProjectCost implements Model.
func (m *PaperModel) ProjectCost(in Estimate) float64 { return in.Blocks }

// AggregateCost implements Model: hash aggregation streams the input once
// and writes the (small) result.
func (m *PaperModel) AggregateCost(in, out Estimate) float64 { return in.Blocks + out.Blocks }

// JoinCost implements Model.
func (m *PaperModel) JoinCost(outer, inner, out Estimate) float64 {
	return outer.Blocks*inner.Blocks + out.Blocks
}

// ReadCost implements Model.
func (m *PaperModel) ReadCost(v Estimate) float64 { return v.Blocks }

// BlockNLJModel is the textbook block nested-loop join model with a buffer
// pass per outer block: blocks(outer) + blocks(outer)·blocks(inner), plus
// the output write. Selections scan their full input.
type BlockNLJModel struct{}

var _ Model = (*BlockNLJModel)(nil)

// Name implements Model.
func (m *BlockNLJModel) Name() string { return "block-nlj" }

// SelectCost implements Model.
func (m *BlockNLJModel) SelectCost(in Estimate) float64 { return in.Blocks }

// ProjectCost implements Model.
func (m *BlockNLJModel) ProjectCost(in Estimate) float64 { return in.Blocks }

// AggregateCost implements Model.
func (m *BlockNLJModel) AggregateCost(in, out Estimate) float64 { return in.Blocks + out.Blocks }

// JoinCost implements Model.
func (m *BlockNLJModel) JoinCost(outer, inner, out Estimate) float64 {
	return outer.Blocks + outer.Blocks*inner.Blocks + out.Blocks
}

// ReadCost implements Model.
func (m *BlockNLJModel) ReadCost(v Estimate) float64 { return v.Blocks }

// HashJoinModel is a Grace hash join: roughly three passes over both inputs
// plus the output write. With hash joins, intermediate-result sharing is far
// less valuable than under nested loops, which the ablation benchmarks
// demonstrate.
type HashJoinModel struct{}

var _ Model = (*HashJoinModel)(nil)

// Name implements Model.
func (m *HashJoinModel) Name() string { return "hash-join" }

// SelectCost implements Model.
func (m *HashJoinModel) SelectCost(in Estimate) float64 { return in.Blocks }

// ProjectCost implements Model.
func (m *HashJoinModel) ProjectCost(in Estimate) float64 { return in.Blocks }

// AggregateCost implements Model.
func (m *HashJoinModel) AggregateCost(in, out Estimate) float64 { return in.Blocks + out.Blocks }

// JoinCost implements Model.
func (m *HashJoinModel) JoinCost(outer, inner, out Estimate) float64 {
	return 3*(outer.Blocks+inner.Blocks) + out.Blocks
}

// ReadCost implements Model.
func (m *HashJoinModel) ReadCost(v Estimate) float64 { return v.Blocks }

// SortMergeModel is a sort-merge join: N·log2(N) sort cost per input (when
// not already sorted — we conservatively always charge it), one merge pass,
// plus the output write.
type SortMergeModel struct{}

var _ Model = (*SortMergeModel)(nil)

// Name implements Model.
func (m *SortMergeModel) Name() string { return "sort-merge" }

// SelectCost implements Model.
func (m *SortMergeModel) SelectCost(in Estimate) float64 { return in.Blocks }

// ProjectCost implements Model.
func (m *SortMergeModel) ProjectCost(in Estimate) float64 { return in.Blocks }

// AggregateCost implements Model: aggregation by sorting on the group key.
func (m *SortMergeModel) AggregateCost(in, out Estimate) float64 {
	return sortCost(in.Blocks) + in.Blocks + out.Blocks
}

// JoinCost implements Model.
func (m *SortMergeModel) JoinCost(outer, inner, out Estimate) float64 {
	return sortCost(outer.Blocks) + sortCost(inner.Blocks) + outer.Blocks + inner.Blocks + out.Blocks
}

// ReadCost implements Model.
func (m *SortMergeModel) ReadCost(v Estimate) float64 { return v.Blocks }

func sortCost(blocks float64) float64 {
	if blocks <= 1 {
		return blocks
	}
	return blocks * math.Log2(blocks)
}
