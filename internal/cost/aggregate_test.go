package cost

import (
	"math"
	"testing"

	"github.com/warehousekit/mvpp/internal/algebra"
)

func TestAggregateEstimate(t *testing.T) {
	c := paperCatalog(t)
	e := NewEstimator(c, DefaultOptions())
	div, _ := c.Scan("Division")

	// Grouping by city: 50 distinct values → 50 groups.
	agg := algebra.NewAggregate(div,
		[]algebra.ColumnRef{algebra.Ref("Division", "city")},
		[]algebra.Aggregation{{Func: algebra.AggCount, Alias: "n"}})
	est, err := e.Estimate(agg)
	if err != nil {
		t.Fatal(err)
	}
	if est.Rows != 50 {
		t.Errorf("groups = %v, want 50", est.Rows)
	}
	if est.Blocks <= 0 || est.Blocks >= 500 {
		t.Errorf("aggregate blocks = %v, want small positive", est.Blocks)
	}

	// Global aggregate → 1 row.
	global := algebra.NewAggregate(div, nil,
		[]algebra.Aggregation{{Func: algebra.AggCount, Alias: "n"}})
	est, err = e.Estimate(global)
	if err != nil {
		t.Fatal(err)
	}
	if est.Rows != 1 {
		t.Errorf("global groups = %v, want 1", est.Rows)
	}

	// Grouping by a key caps at input cardinality.
	byKey := algebra.NewAggregate(div,
		[]algebra.ColumnRef{algebra.Ref("Division", "Did")},
		[]algebra.Aggregation{{Func: algebra.AggCount, Alias: "n"}})
	est, err = e.Estimate(byKey)
	if err != nil {
		t.Fatal(err)
	}
	if est.Rows != 5000 {
		t.Errorf("key groups = %v, want 5000", est.Rows)
	}
}

func TestAggregateEstimateUnknownNDV(t *testing.T) {
	c := paperCatalog(t)
	e := NewEstimator(c, DefaultOptions())
	div, _ := c.Scan("Division")
	// Division.name has no statistics in the mini-catalog → sqrt fallback,
	// capped by input rows.
	agg := algebra.NewAggregate(div,
		[]algebra.ColumnRef{algebra.Ref("Division", "name")},
		[]algebra.Aggregation{{Func: algebra.AggCount, Alias: "n"}})
	est, err := e.Estimate(agg)
	if err != nil {
		t.Fatal(err)
	}
	if est.Rows <= 1 || est.Rows > 5000 {
		t.Errorf("fallback groups = %v", est.Rows)
	}
	if math.Abs(est.Rows-math.Sqrt(5001)) > 1 {
		t.Errorf("fallback groups = %v, want ≈ √5001", est.Rows)
	}
}

func TestAggregateOpCost(t *testing.T) {
	c := paperCatalog(t)
	e := NewEstimator(c, DefaultOptions())
	div, _ := c.Scan("Division")
	agg := algebra.NewAggregate(div,
		[]algebra.ColumnRef{algebra.Ref("Division", "city")},
		[]algebra.Aggregation{{Func: algebra.AggCount, Alias: "n"}})
	got, err := e.OpCost(&PaperModel{}, agg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Estimate(agg)
	if err != nil {
		t.Fatal(err)
	}
	want := 500 + out.Blocks // input scan + output write
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("AggregateCost = %v, want %v", got, want)
	}
	// Sort-merge model charges the sort.
	sm, err := e.OpCost(&SortMergeModel{}, agg)
	if err != nil {
		t.Fatal(err)
	}
	if sm <= got {
		t.Errorf("sort-merge aggregate %v should exceed hash aggregate %v", sm, got)
	}
}
