package viz_test

import (
	"strings"
	"testing"

	"github.com/warehousekit/mvpp/internal/core"
	"github.com/warehousekit/mvpp/internal/cost"
	"github.com/warehousekit/mvpp/internal/paper"
	"github.com/warehousekit/mvpp/internal/viz"
)

func figure3(t *testing.T) (*core.MVPP, cost.Model) {
	t.Helper()
	ex, err := paper.Load()
	if err != nil {
		t.Fatal(err)
	}
	plans, err := paper.Figure3Plans(ex.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	est := cost.NewEstimator(ex.Catalog, cost.PaperOptions())
	model := &cost.PaperModel{}
	b := core.NewBuilder(est, model)
	for _, s := range plans {
		if err := b.AddQuery(s.Name, s.Freq, s.Plan); err != nil {
			t.Fatal(err)
		}
	}
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m, model
}

func TestFormatCost(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{35250, "35.25k"},
		{12.035e6, "12.035m"},
		{250, "250"},
		{95.671e6, "95.671m"},
		{1000, "1k"},
		{0, "0"},
		{-25027625, "-25.028m"},
		{-250, "-250"},
	}
	for _, tt := range tests {
		if got := viz.FormatCost(tt.in); got != tt.want {
			t.Errorf("FormatCost(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestPlanASCII(t *testing.T) {
	ex, err := paper.Load()
	if err != nil {
		t.Fatal(err)
	}
	plans, err := paper.Figure3Plans(ex.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	out := viz.PlanASCII(plans[0].Plan)
	for _, want := range []string{"π Product.name", "⋈", `σ Division.city = "LA"`, "└── Division", "Product"} {
		if !strings.Contains(out, want) {
			t.Errorf("PlanASCII missing %q:\n%s", want, out)
		}
	}
	// The tree has 5 lines: π, ⋈, Product, σ, Division.
	if got := strings.Count(out, "\n"); got != 5 {
		t.Errorf("PlanASCII has %d lines:\n%s", got, out)
	}
}

func TestMVPPASCII(t *testing.T) {
	m, model := figure3(t)
	res := m.SelectViews(model, core.SelectOptions{})
	out := viz.MVPPASCII(m, res.Materialized)
	for _, want := range []string{"tmp2", "tmp4", "35.25k", "result1", "Q3,Q4", "●"} {
		if !strings.Contains(out, want) {
			t.Errorf("MVPPASCII missing %q:\n%s", want, out)
		}
	}
	// One row per vertex plus header.
	if got := strings.Count(out, "\n"); got != len(m.Vertices)+1 {
		t.Errorf("MVPPASCII rows = %d, want %d", got, len(m.Vertices)+1)
	}
}

func TestMVPPDOT(t *testing.T) {
	m, _ := figure3(t)
	tmp2, err := m.VertexByName("tmp2")
	if err != nil {
		t.Fatal(err)
	}
	out := viz.MVPPDOT(m, core.NewVertexSet(tmp2))
	for _, want := range []string{"digraph mvpp", "shape=box", "shape=doublecircle", "fillcolor=lightblue", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("MVPPDOT missing %q", want)
		}
	}
	// Every edge appears once: count "->" lines equals Σ in-degrees.
	edges := 0
	for _, v := range m.Vertices {
		edges += len(v.In)
	}
	if got := strings.Count(out, "->"); got != edges {
		t.Errorf("DOT edges = %d, want %d", got, edges)
	}
}

func TestPlanDOT(t *testing.T) {
	ex, err := paper.Load()
	if err != nil {
		t.Fatal(err)
	}
	plans, err := paper.Figure3Plans(ex.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	out := viz.PlanDOT(plans[3].Plan)
	if !strings.Contains(out, "digraph plan") || !strings.Contains(out, "shape=box") {
		t.Errorf("PlanDOT output malformed:\n%s", out)
	}
}

func TestCostTable(t *testing.T) {
	m, model := figure3(t)
	rows := []viz.CostRow{
		{Strategy: "all virtual", Costs: m.AllVirtual(model)},
		{Strategy: "all queries", Costs: m.AllQueriesMaterialized(model)},
	}
	out := viz.CostTable(rows)
	if !strings.Contains(out, "all virtual") || !strings.Contains(out, "Maintenance") {
		t.Errorf("CostTable malformed:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got != 3 {
		t.Errorf("CostTable rows = %d", got)
	}
}

func TestTraceASCII(t *testing.T) {
	m, model := figure3(t)
	res := m.SelectViews(model, core.SelectOptions{})
	out := viz.TraceASCII(res.Trace)
	for _, want := range []string{"materialize", "reject", "prune-branch", "tmp4", "tmp2"} {
		if !strings.Contains(out, want) {
			t.Errorf("TraceASCII missing %q:\n%s", want, out)
		}
	}
}
