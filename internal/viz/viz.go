// Package viz renders query plans and MVPPs as ASCII trees and Graphviz
// DOT, reproducing the paper's figures in text form: per-vertex cost labels
// (Figure 3), individual plan trees (Figures 2 and 5), and materialized-set
// highlighting.
package viz

import (
	"fmt"
	"sort"
	"strings"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/core"
)

// PlanASCII renders a plan tree with box-drawing indentation:
//
//	π Product.name
//	└── ⋈ Division.Did = Product.Did
//	    ├── Product
//	    └── σ Division.city = "LA"
//	        └── Division
func PlanASCII(n algebra.Node) string {
	var b strings.Builder
	b.WriteString(n.Label())
	b.WriteByte('\n')
	writeChildren(&b, n, "")
	return b.String()
}

func writeChildren(b *strings.Builder, n algebra.Node, prefix string) {
	children := n.Children()
	for i, c := range children {
		last := i == len(children)-1
		branch, cont := "├── ", "│   "
		if last {
			branch, cont = "└── ", "    "
		}
		b.WriteString(prefix)
		b.WriteString(branch)
		b.WriteString(c.Label())
		b.WriteByte('\n')
		writeChildren(b, c, prefix+cont)
	}
}

// QueryTreeASCII renders one query's plan inside the MVPP, marking each
// node that is a shared vertex (annotated with its vertex name) and each
// materialized vertex with ●. It is the "explain" view for a single query
// under a design.
func QueryTreeASCII(m *core.MVPP, query string, materialized core.VertexSet) (string, error) {
	root, ok := m.Roots[query]
	if !ok {
		return "", fmt.Errorf("viz: unknown query %q", query)
	}
	info := make(map[string]*core.Vertex, len(m.Vertices))
	for _, v := range m.Vertices {
		info[v.Key] = v
	}
	var render func(n algebra.Node) string
	render = func(n algebra.Node) string {
		label := n.Label()
		if v, ok := info[algebra.StructuralKey(n)]; ok && !v.IsLeaf() {
			mark := ""
			if materialized != nil && materialized[v.ID] {
				mark = " ●"
				if len(m.QueriesUsing(v)) > 1 {
					mark = " ● shared"
				}
			} else if len(m.QueriesUsing(v)) > 1 {
				mark = " (shared)"
			}
			label = fmt.Sprintf("%s [%s]%s", label, v.Name, mark)
		}
		return label
	}
	var b strings.Builder
	var walk func(n algebra.Node, prefix string)
	b.WriteString(render(root.Op))
	b.WriteByte('\n')
	walk = func(n algebra.Node, prefix string) {
		children := n.Children()
		for i, c := range children {
			last := i == len(children)-1
			branch, cont := "├── ", "│   "
			if last {
				branch, cont = "└── ", "    "
			}
			b.WriteString(prefix)
			b.WriteString(branch)
			b.WriteString(render(c))
			b.WriteByte('\n')
			walk(c, prefix+cont)
		}
	}
	walk(root.Op, "")
	return b.String(), nil
}

// FormatCost renders block-access costs the way the paper labels them:
// "35.25k", "12.035m".
func FormatCost(v float64) string {
	if v < 0 {
		return "-" + FormatCost(-v)
	}
	switch {
	case v >= 1e6:
		return trimZero(fmt.Sprintf("%.3f", v/1e6)) + "m"
	case v >= 1e3:
		return trimZero(fmt.Sprintf("%.3f", v/1e3)) + "k"
	default:
		return trimZero(fmt.Sprintf("%.2f", v))
	}
}

func trimZero(s string) string {
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// MVPPASCII renders the DAG as a topologically ordered vertex table with
// the paper's annotations: inputs, cost Ca, weight, the queries using each
// vertex, and a ● marker on materialized vertices.
func MVPPASCII(m *core.MVPP, materialized core.VertexSet) string {
	var b strings.Builder
	b.WriteString(fmt.Sprintf("%-3s %-10s %-42s %-12s %-12s %s\n",
		"", "vertex", "operation (inputs)", "Ca", "weight", "queries"))
	for _, v := range m.Vertices {
		mark := " "
		if materialized != nil && materialized[v.ID] {
			mark = "●"
		}
		var ins []string
		for _, in := range v.In {
			ins = append(ins, in.Name)
		}
		op := v.Op.Label()
		if len(ins) > 0 {
			op += " (" + strings.Join(ins, ", ") + ")"
		}
		if len(op) > 42 {
			op = op[:39] + "..."
		}
		ca, w := "-", "-"
		if !v.IsLeaf() {
			ca = FormatCost(v.Ca)
			w = FormatCost(v.Weight)
		}
		queries := strings.Join(m.QueriesUsing(v), ",")
		if v.IsRoot() {
			fq := m.Fq[v.Queries[0]]
			queries += fmt.Sprintf(" (fq=%g)", fq)
		}
		b.WriteString(fmt.Sprintf("%-3s %-10s %-42s %-12s %-12s %s\n", mark, v.Name, op, ca, w, queries))
	}
	return b.String()
}

// MVPPDOT renders the DAG in Graphviz DOT: leaves as boxes, queries as
// double circles, materialized vertices filled.
func MVPPDOT(m *core.MVPP, materialized core.VertexSet) string {
	var b strings.Builder
	b.WriteString("digraph mvpp {\n  rankdir=BT;\n  node [fontsize=10];\n")
	for _, v := range m.Vertices {
		attrs := []string{fmt.Sprintf("label=\"%s\"", dotEscape(dotLabel(m, v)))}
		switch {
		case v.IsLeaf():
			attrs = append(attrs, "shape=box")
		case v.IsRoot():
			attrs = append(attrs, "shape=doublecircle")
		default:
			attrs = append(attrs, "shape=ellipse")
		}
		if materialized != nil && materialized[v.ID] {
			attrs = append(attrs, "style=filled", "fillcolor=lightblue")
		}
		b.WriteString(fmt.Sprintf("  v%d [%s];\n", v.ID, strings.Join(attrs, ", ")))
	}
	for _, v := range m.Vertices {
		for _, in := range v.In {
			b.WriteString(fmt.Sprintf("  v%d -> v%d;\n", in.ID, v.ID))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// dotEscape escapes double quotes for a DOT quoted string while leaving
// intentional \n line-break sequences intact.
func dotEscape(s string) string {
	return strings.ReplaceAll(s, `"`, `\"`)
}

func dotLabel(m *core.MVPP, v *core.Vertex) string {
	if v.IsLeaf() {
		return v.Relation
	}
	label := v.Name + "\\n" + v.Op.Label()
	if v.IsRoot() {
		label += fmt.Sprintf("\\nfq=%g", m.Fq[v.Queries[0]])
	} else {
		label += "\\nCa=" + FormatCost(v.Ca)
	}
	return label
}

// PlanDOT renders a single plan tree as DOT.
func PlanDOT(n algebra.Node) string {
	var b strings.Builder
	b.WriteString("digraph plan {\n  rankdir=BT;\n  node [fontsize=10];\n")
	ids := map[algebra.Node]int{}
	var number func(algebra.Node)
	number = func(m algebra.Node) {
		if _, ok := ids[m]; ok {
			return
		}
		ids[m] = len(ids)
		for _, c := range m.Children() {
			number(c)
		}
	}
	number(n)
	type pair struct {
		node algebra.Node
		id   int
	}
	ordered := make([]pair, 0, len(ids))
	for node, id := range ids {
		ordered = append(ordered, pair{node, id})
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].id < ordered[j].id })
	for _, p := range ordered {
		shape := "ellipse"
		if _, ok := p.node.(*algebra.Scan); ok {
			shape = "box"
		}
		b.WriteString(fmt.Sprintf("  n%d [label=%q, shape=%s];\n", p.id, p.node.Label(), shape))
	}
	for _, p := range ordered {
		for _, c := range p.node.Children() {
			b.WriteString(fmt.Sprintf("  n%d -> n%d;\n", ids[c], p.id))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// CostTable renders a strategy-comparison table in the shape of the paper's
// Table 2.
func CostTable(rows []CostRow) string {
	var b strings.Builder
	b.WriteString(fmt.Sprintf("%-38s %14s %14s %14s\n",
		"Materialized views", "Query cost", "Maintenance", "Total"))
	for _, r := range rows {
		b.WriteString(fmt.Sprintf("%-38s %14s %14s %14s\n",
			r.Strategy, FormatCost(r.Costs.Query), FormatCost(r.Costs.Maintenance), FormatCost(r.Costs.Total)))
	}
	return b.String()
}

// CostRow is one strategy's evaluation.
type CostRow struct {
	Strategy string
	Costs    core.Costs
}

// TraceASCII renders a selection-heuristic trace in the style of the
// paper's §4.3 walk-through.
func TraceASCII(trace []core.TraceStep) string {
	var b strings.Builder
	for _, s := range trace {
		switch s.Action {
		case core.ActionMaterialize:
			b.WriteString(fmt.Sprintf("%-8s w=%-10s Cs=%-10s > 0  → materialize\n",
				s.Vertex, FormatCost(s.Weight), FormatCost(s.Cs)))
		case core.ActionReject:
			b.WriteString(fmt.Sprintf("%-8s w=%-10s Cs=%-10s ≤ 0  → reject\n",
				s.Vertex, FormatCost(s.Weight), FormatCost(s.Cs)))
		case core.ActionPruneBranch, core.ActionSkipAncestor, core.ActionDropCovered:
			b.WriteString(fmt.Sprintf("%-8s %s (%s)\n", s.Vertex, s.Action, s.Note))
		default:
			b.WriteString(fmt.Sprintf("%-8s %s\n", s.Vertex, s.Action))
		}
	}
	return b.String()
}
