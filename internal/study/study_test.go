package study_test

import (
	"strings"
	"testing"

	"github.com/warehousekit/mvpp/internal/study"
)

func TestMeasureInvariants(t *testing.T) {
	env := study.DefaultEnv()
	env.Queries = 5
	pt, err := study.Measure(env, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pt.DesignTotal <= 0 || pt.VirtualTotal <= 0 {
		t.Errorf("degenerate totals: %+v", pt)
	}
	if pt.DesignTotal > pt.VirtualTotal+1e-9 {
		t.Errorf("design %v worse than all-virtual %v", pt.DesignTotal, pt.VirtualTotal)
	}
	if pt.DesignTotal > pt.AllMatTotal+1e-9 {
		t.Errorf("design %v worse than all-materialized %v", pt.DesignTotal, pt.AllMatTotal)
	}
	if pt.Saving < 0 || pt.Saving > 1 {
		t.Errorf("saving = %v", pt.Saving)
	}
}

func TestUpdateRateSweepMonotoneStory(t *testing.T) {
	env := study.DefaultEnv()
	env.Queries = 5
	s, err := study.UpdateRateSweep(env, []float64{0.1, 1, 100, 10000})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 4 {
		t.Fatalf("points = %d", len(s.Points))
	}
	// The paper's central trade-off: savings shrink as updates speed up.
	first, last := s.Points[0], s.Points[len(s.Points)-1]
	if first.Saving <= last.Saving {
		t.Errorf("saving should shrink with update rate: %v → %v", first.Saving, last.Saving)
	}
	// At extreme update rates materialization (nearly) disappears.
	if last.Views > first.Views {
		t.Errorf("views grew with update rate: %d → %d", first.Views, last.Views)
	}
}

func TestSkewSweep(t *testing.T) {
	env := study.DefaultEnv()
	env.Queries = 5
	s, err := study.SkewSweep(env, []float64{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Points {
		if p.DesignTotal > p.VirtualTotal {
			t.Errorf("skew %v: design above virtual", p.Param)
		}
	}
}

func TestRender(t *testing.T) {
	env := study.DefaultEnv()
	env.Queries = 4
	s, err := study.MixSweep(env, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	out := study.Render(s)
	for _, want := range []string{"sweep: summary-query share", "views", "saving", "%"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "\n"); got != 4 { // title + header + 2 rows
		t.Errorf("lines = %d", got)
	}
}

func TestAllRunsEverySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full battery is slow")
	}
	env := study.DefaultEnv()
	env.Queries = 4
	sweeps, err := study.All(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweeps) != 5 {
		t.Fatalf("sweeps = %d", len(sweeps))
	}
	names := map[string]bool{}
	for _, s := range sweeps {
		names[s.Name] = true
		if len(s.Points) == 0 {
			t.Errorf("%s: no points", s.Name)
		}
	}
	for _, want := range []string{"update rate", "query skew", "summary-query share", "workload size", "delta fraction"} {
		if !names[want] {
			t.Errorf("missing sweep %q", want)
		}
	}
}
