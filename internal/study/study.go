// Package study implements the paper's last future-work item: "developing
// an analytical model for a multiple view processing environment ... a good
// analytical model will allow us to simulate various environments with
// different view mixes". It sweeps environment parameters — base-update
// rates, query skew, the share of summary queries, workload size — over
// synthetic star-schema workloads and reports how the recommended design
// and its payoff move.
package study

import (
	"fmt"
	"strings"

	"github.com/warehousekit/mvpp/internal/core"
	"github.com/warehousekit/mvpp/internal/cost"
	"github.com/warehousekit/mvpp/internal/obs"
	"github.com/warehousekit/mvpp/internal/optimizer"
	"github.com/warehousekit/mvpp/internal/viz"
	"github.com/warehousekit/mvpp/internal/workload"
)

// Point is one sweep measurement.
type Point struct {
	// Param is the swept parameter's value at this point.
	Param float64
	// Views is how many views the design materializes.
	Views int
	// IncViews is how many of them are maintained incrementally (always 0
	// when Env.Delta is unset).
	IncViews int
	// DesignTotal, VirtualTotal and AllMatTotal are the §4.1 totals of the
	// recommended design and the two extremes.
	DesignTotal, VirtualTotal, AllMatTotal float64
	// Saving is 1 − DesignTotal/VirtualTotal.
	Saving float64
}

// Env fixes the non-swept environment parameters.
type Env struct {
	Dims          int
	Queries       int
	Seed          int64
	ZipfSkew      float64
	UpdateScale   float64 // multiplies the star schema's update frequencies
	AggregateProb float64
	// Delta, when positive, prices incremental maintenance for a
	// per-epoch insert fraction of Delta on every base relation.
	Delta float64
	// Obs receives one span per measurement plus the design pipeline's
	// spans, events and counters. Nil disables instrumentation.
	Obs obs.Observer
}

// DefaultEnv is the baseline environment.
func DefaultEnv() Env {
	return Env{Dims: 5, Queries: 8, Seed: 11, ZipfSkew: 1, UpdateScale: 1, AggregateProb: 0.3}
}

// Measure designs views for the environment and reports the point with the
// given swept-parameter label value.
func Measure(env Env, param float64) (Point, error) {
	sp := obs.Start(env.Obs, "study.measure",
		obs.Float("param", param), obs.Int("queries", int64(env.Queries)))
	defer obs.End(sp)
	mobs := obs.From(sp)

	spec := workload.DefaultStar(env.Dims)
	spec.FactUpdateFreq *= env.UpdateScale
	spec.DimUpdateFreq *= env.UpdateScale
	cat, err := workload.Star(spec)
	if err != nil {
		return Point{}, err
	}
	qs := workload.DefaultQueries(spec)
	qs.AggregateProb = env.AggregateProb
	queries, err := workload.Queries(cat, spec, qs, env.Queries, env.Seed)
	if err != nil {
		return Point{}, err
	}
	freqs := workload.ZipfFrequencies(env.Queries, env.ZipfSkew, 50)

	model := &cost.PaperModel{}
	est := cost.NewEstimator(cat, cost.DefaultOptions())
	opt := optimizer.New(est, model, optimizer.Options{Obs: mobs})
	plans := make([]core.QueryPlan, len(queries))
	for i, q := range queries {
		p, _, err := opt.Optimize(q)
		if err != nil {
			return Point{}, fmt.Errorf("study: %s: %w", q.Name, err)
		}
		plans[i] = core.QueryPlan{Name: q.Name, Freq: freqs[i], Plan: p}
	}
	genOpts := core.GenOptions{
		MaxRotations: 3,
		Select:       core.SelectOptions{DiscountedMaintenance: true},
		Obs:          mobs,
	}
	if env.Delta > 0 {
		genOpts.Delta = &cost.DeltaSpec{DefaultFraction: env.Delta}
	}
	cands, err := core.Generate(est, model, plans, genOpts)
	if err != nil {
		return Point{}, err
	}
	best := core.Best(cands)
	virtual := best.MVPP.AllVirtual(model)
	allMat := best.MVPP.AllQueriesMaterialized(model)

	design := best.Selection.Costs
	// Safety net, mirroring the facade.
	if virtual.Total < design.Total {
		design = virtual
		best.Selection.Materialized = core.VertexSet{}
	}
	if allMat.Total < design.Total {
		design = allMat
	}
	p := Point{
		Param:        param,
		Views:        len(best.Selection.Materialized),
		DesignTotal:  design.Total,
		VirtualTotal: virtual.Total,
		AllMatTotal:  allMat.Total,
	}
	for _, strat := range best.MVPP.MaintenancePlans(best.Selection.Materialized) {
		if strat == core.MaintIncremental {
			p.IncViews++
		}
	}
	if virtual.Total > 0 {
		p.Saving = 1 - design.Total/virtual.Total
	}
	return p, nil
}

// Sweep is a named parameter sweep.
type Sweep struct {
	Name   string
	Param  string
	Points []Point
}

// UpdateRateSweep varies how often base relations change: frequent updates
// erode the value of materialization.
func UpdateRateSweep(env Env, scales []float64) (Sweep, error) {
	s := Sweep{Name: "update rate", Param: "fu multiplier"}
	for _, scale := range scales {
		e := env
		e.UpdateScale = scale
		pt, err := Measure(e, scale)
		if err != nil {
			return Sweep{}, err
		}
		s.Points = append(s.Points, pt)
	}
	return s, nil
}

// SkewSweep varies query-frequency skew: concentrated workloads reward
// materializing the hot queries' intermediates.
func SkewSweep(env Env, skews []float64) (Sweep, error) {
	s := Sweep{Name: "query skew", Param: "zipf s"}
	for _, skew := range skews {
		e := env
		e.ZipfSkew = skew
		pt, err := Measure(e, skew)
		if err != nil {
			return Sweep{}, err
		}
		s.Points = append(s.Points, pt)
	}
	return s, nil
}

// MixSweep varies the share of summary (aggregate) queries — the "view
// mixes" of the paper's future-work sentence.
func MixSweep(env Env, shares []float64) (Sweep, error) {
	s := Sweep{Name: "summary-query share", Param: "aggregate fraction"}
	for _, share := range shares {
		e := env
		e.AggregateProb = share
		pt, err := Measure(e, share)
		if err != nil {
			return Sweep{}, err
		}
		s.Points = append(s.Points, pt)
	}
	return s, nil
}

// DeltaSweep varies the per-epoch insert fraction under incremental
// maintenance pricing: small deltas make delta propagation win and lift
// the design's saving; large deltas push views back to recomputation.
func DeltaSweep(env Env, fractions []float64) (Sweep, error) {
	s := Sweep{Name: "delta fraction", Param: "insert fraction"}
	for _, f := range fractions {
		e := env
		e.Delta = f
		pt, err := Measure(e, f)
		if err != nil {
			return Sweep{}, err
		}
		s.Points = append(s.Points, pt)
	}
	return s, nil
}

// SizeSweep varies the workload size.
func SizeSweep(env Env, sizes []int) (Sweep, error) {
	s := Sweep{Name: "workload size", Param: "queries"}
	for _, n := range sizes {
		e := env
		e.Queries = n
		pt, err := Measure(e, float64(n))
		if err != nil {
			return Sweep{}, err
		}
		s.Points = append(s.Points, pt)
	}
	return s, nil
}

// Render prints a sweep as an aligned table.
func Render(s Sweep) string {
	var b strings.Builder
	b.WriteString(fmt.Sprintf("sweep: %s\n", s.Name))
	b.WriteString(fmt.Sprintf("%14s %7s %5s %14s %14s %14s %9s\n",
		s.Param, "views", "inc", "design", "all-virtual", "all-mat", "saving"))
	for _, p := range s.Points {
		b.WriteString(fmt.Sprintf("%14g %7d %5d %14s %14s %14s %8.1f%%\n",
			p.Param, p.Views, p.IncViews,
			viz.FormatCost(p.DesignTotal), viz.FormatCost(p.VirtualTotal),
			viz.FormatCost(p.AllMatTotal), 100*p.Saving))
	}
	return b.String()
}

// All runs the standard battery of sweeps.
func All(env Env) ([]Sweep, error) {
	var out []Sweep
	steps := []func() (Sweep, error){
		func() (Sweep, error) { return UpdateRateSweep(env, []float64{0.1, 0.5, 1, 5, 25, 125}) },
		func() (Sweep, error) { return SkewSweep(env, []float64{0, 0.5, 1, 2}) },
		func() (Sweep, error) { return MixSweep(env, []float64{0, 0.25, 0.5, 0.75, 1}) },
		func() (Sweep, error) { return SizeSweep(env, []int{2, 4, 8, 12, 16}) },
		func() (Sweep, error) { return DeltaSweep(env, []float64{0.001, 0.01, 0.05, 0.2}) },
	}
	for _, step := range steps {
		s, err := step()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
