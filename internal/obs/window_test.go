package obs

import (
	"sync"
	"testing"
	"time"
)

func TestWindowCounterNilSafe(t *testing.T) {
	var w *WindowCounter
	w.Add(10, 5)
	if got := w.Total(10); got != 0 {
		t.Errorf("nil Total = %d, want 0", got)
	}
	if got := w.Rate(10); got != 0 {
		t.Errorf("nil Rate = %g, want 0", got)
	}
	if got := w.WindowSeconds(); got != 0 {
		t.Errorf("nil WindowSeconds = %d, want 0", got)
	}
}

func TestWindowCounterExpiry(t *testing.T) {
	w := NewWindowCounter(10)
	base := time.Now().Unix()
	w.startSec = base // pin for deterministic rate math
	w.Add(base, 4)
	w.Add(base+1, 6)
	if got := w.Total(base + 1); got != 10 {
		t.Errorf("Total = %d, want 10", got)
	}
	// base falls out of the window at base+10 (window covers (now-10, now]).
	if got := w.Total(base + 10); got != 6 {
		t.Errorf("Total after first slot expired = %d, want 6", got)
	}
	if got := w.Total(base + 11); got != 0 {
		t.Errorf("Total after full expiry = %d, want 0", got)
	}
}

func TestWindowCounterSlotRecycling(t *testing.T) {
	w := NewWindowCounter(3) // 4 slots: seconds s and s+4 share a slot
	base := time.Now().Unix()
	w.Add(base, 100)
	w.Add(base+4, 1) // recycles base's slot
	if got := w.Total(base + 4); got != 1 {
		t.Errorf("Total after recycle = %d, want 1 (stale count must not leak)", got)
	}
}

func TestWindowCounterRateEarlyLife(t *testing.T) {
	w := NewWindowCounter(60)
	base := time.Now().Unix()
	w.startSec = base
	w.Add(base, 50)
	w.Add(base+1, 50)
	// Two seconds alive: 100 events over 2 seconds, not over 60.
	if got := w.Rate(base + 1); got != 50 {
		t.Errorf("early-life Rate = %g, want 50", got)
	}
}

func TestWindowHistSnapshotAndQuantile(t *testing.T) {
	h := NewWindowHist(10)
	base := time.Now().Unix()
	for i := 0; i < 90; i++ {
		h.Record(base, time.Microsecond) // bucket for ~1us
	}
	for i := 0; i < 10; i++ {
		h.Record(base+1, time.Millisecond)
	}
	snap := h.Snapshot(base + 1)
	if snap.Count != 100 {
		t.Fatalf("Count = %d, want 100", snap.Count)
	}
	wantSum := int64(90)*int64(time.Microsecond) + int64(10)*int64(time.Millisecond)
	if snap.Sum != wantSum {
		t.Errorf("Sum = %d, want %d", snap.Sum, wantSum)
	}
	if p50 := snap.Quantile(0.50); p50 > 10*time.Microsecond {
		t.Errorf("p50 = %v, want ~1us bucket bound", p50)
	}
	if p99 := snap.Quantile(0.99); p99 < 500*time.Microsecond {
		t.Errorf("p99 = %v, want ~1ms bucket bound", p99)
	}
	// Everything expires once the window slides past both seconds.
	if late := h.Snapshot(base + 20); late.Count != 0 {
		t.Errorf("Count after expiry = %d, want 0", late.Count)
	}
}

func TestWindowHistNilSafe(t *testing.T) {
	var h *WindowHist
	h.Record(5, time.Second)
	if snap := h.Snapshot(5); snap.Count != 0 {
		t.Errorf("nil Snapshot count = %d, want 0", snap.Count)
	}
}

func TestWindowConcurrentRecording(t *testing.T) {
	w := NewWindowCounter(5)
	h := NewWindowHist(5)
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				now := time.Now().Unix()
				w.Add(now, 1)
				h.Record(now, time.Duration(j)*time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	now := time.Now().Unix()
	// Slot-recycle races may shed a bounded number of observations, but the
	// bulk must land (the test runs in well under one window).
	if got := w.Total(now); got < workers*perWorker/2 {
		t.Errorf("Total = %d, want >= %d", got, workers*perWorker/2)
	}
	if snap := h.Snapshot(now); snap.Count < workers*perWorker/2 {
		t.Errorf("hist Count = %d, want >= %d", snap.Count, workers*perWorker/2)
	}
}
