package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// This file holds the time-windowed aggregation primitives behind the live
// telemetry plane: a rolling event counter (WindowCounter) and a rolling
// power-of-two histogram (WindowHist). Both bucket observations into
// per-second slots of a fixed ring indexed by wall-clock second; recording
// is a handful of atomic operations with no locks, so hot paths (the query
// router's submit, the scheduler's refresh accounting) pay nanoseconds.
//
// Slot recycling is optimistic: when a recorder finds its slot stamped with
// a stale second it CAS-claims the slot and zeroes it. A concurrent
// recorder racing that reset can lose its observation into the zeroing —
// the classic sliding-window trade, acceptable for monitoring-grade rates
// (the error is bounded by one slot transition per second). Counters
// exposed through the all-time Registry remain exact; the windows only
// answer "what happened over the last N seconds".

// winSlot is one second's event count.
type winSlot struct {
	sec atomic.Int64
	n   atomic.Int64
}

// WindowCounter counts events over a trailing window of whole seconds.
// A nil *WindowCounter is a valid disabled counter (Add is a no-op, rates
// are 0), mirroring the nil-off discipline of Counter and Gauge.
type WindowCounter struct {
	slots    []winSlot
	window   int64
	startSec int64
}

// NewWindowCounter builds a counter over a trailing window of the given
// number of seconds (minimum 1). One extra slot holds the current partial
// second.
func NewWindowCounter(windowSeconds int) *WindowCounter {
	if windowSeconds < 1 {
		windowSeconds = 1
	}
	return &WindowCounter{
		slots:    make([]winSlot, windowSeconds+1),
		window:   int64(windowSeconds),
		startSec: time.Now().Unix(),
	}
}

// Add records n events at the given wall-clock second (time.Now().Unix();
// callers on hot paths pass a second they already computed). No-op on a
// nil receiver.
func (w *WindowCounter) Add(nowSec, n int64) {
	if w == nil {
		return
	}
	s := &w.slots[nowSec%int64(len(w.slots))]
	if old := s.sec.Load(); old != nowSec {
		if s.sec.CompareAndSwap(old, nowSec) {
			s.n.Store(0)
		}
	}
	s.n.Add(n)
}

// Total returns the number of events recorded during the window ending at
// nowSec (inclusive).
func (w *WindowCounter) Total(nowSec int64) int64 {
	if w == nil {
		return 0
	}
	var total int64
	for i := range w.slots {
		sec := w.slots[i].sec.Load()
		if sec > nowSec-w.window && sec <= nowSec {
			total += w.slots[i].n.Load()
		}
	}
	return total
}

// Rate returns events per second over the window ending at nowSec. Early
// in the counter's life the divisor is the elapsed time, not the full
// window, so a freshly started server reports its true rate instead of a
// diluted one.
func (w *WindowCounter) Rate(nowSec int64) float64 {
	if w == nil {
		return 0
	}
	span := w.effectiveSpan(nowSec)
	return float64(w.Total(nowSec)) / float64(span)
}

func (w *WindowCounter) effectiveSpan(nowSec int64) int64 {
	span := w.window
	if alive := nowSec - w.startSec + 1; alive < span {
		span = alive
	}
	if span < 1 {
		span = 1
	}
	return span
}

// WindowSeconds returns the configured window length.
func (w *WindowCounter) WindowSeconds() int {
	if w == nil {
		return 0
	}
	return int(w.window)
}

// histBuckets is the bucket count of the power-of-two histograms: bucket i
// counts durations in [2^(i-1), 2^i) nanoseconds, the same layout the
// serving layer's all-time latency histogram uses.
const histBuckets = 64

// histSlot is one second's histogram.
type histSlot struct {
	sec     atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// reset re-stamps the slot for a new second, zeroing its contents. Only
// the CAS winner calls it.
func (s *histSlot) reset() {
	s.count.Store(0)
	s.sum.Store(0)
	for i := range s.buckets {
		s.buckets[i].Store(0)
	}
}

// WindowHist is a rolling power-of-two duration histogram over a trailing
// window of whole seconds. A nil *WindowHist is a valid disabled histogram.
type WindowHist struct {
	slots    []histSlot
	window   int64
	startSec int64
}

// NewWindowHist builds a histogram over a trailing window of the given
// number of seconds (minimum 1).
func NewWindowHist(windowSeconds int) *WindowHist {
	if windowSeconds < 1 {
		windowSeconds = 1
	}
	return &WindowHist{
		slots:    make([]histSlot, windowSeconds+1),
		window:   int64(windowSeconds),
		startSec: time.Now().Unix(),
	}
}

// Record adds one observation at the given wall-clock second. No-op on a
// nil receiver.
func (h *WindowHist) Record(nowSec int64, d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	s := &h.slots[nowSec%int64(len(h.slots))]
	if old := s.sec.Load(); old != nowSec {
		if s.sec.CompareAndSwap(old, nowSec) {
			s.reset()
		}
	}
	idx := bits.Len64(uint64(d))
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	s.buckets[idx].Add(1)
	s.count.Add(1)
	s.sum.Add(int64(d))
}

// HistSnapshot is a point-in-time aggregation of a windowed histogram.
type HistSnapshot struct {
	// Buckets[i] counts observations in [2^(i-1), 2^i) nanoseconds
	// (non-cumulative).
	Buckets [histBuckets]int64
	// Count and Sum are the observation count and summed nanoseconds.
	Count int64
	Sum   int64
}

// Quantile returns the q-quantile as the upper bound of the bucket the
// rank falls in (the same coarse-but-cheap answer the all-time histogram
// gives).
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q*float64(s.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range s.Buckets {
		cum += s.Buckets[i]
		if cum >= rank {
			if i == 0 {
				return 0
			}
			return time.Duration(int64(1)<<uint(i) - 1)
		}
	}
	return time.Duration(int64(1)<<62 - 1)
}

// Snapshot aggregates the live slots of the window ending at nowSec.
func (h *WindowHist) Snapshot(nowSec int64) HistSnapshot {
	var out HistSnapshot
	if h == nil {
		return out
	}
	for i := range h.slots {
		s := &h.slots[i]
		sec := s.sec.Load()
		if sec <= nowSec-h.window || sec > nowSec {
			continue
		}
		out.Count += s.count.Load()
		out.Sum += s.sum.Load()
		for b := range s.buckets {
			out.Buckets[b] += s.buckets[b].Load()
		}
	}
	return out
}

// WindowSeconds returns the configured window length.
func (h *WindowHist) WindowSeconds() int {
	if h == nil {
		return 0
	}
	return int(h.window)
}
