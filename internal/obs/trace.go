package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// TraceEvent is one recorded event in a JSON trace.
type TraceEvent struct {
	Kind  EventKind      `json:"kind"`
	AtUS  int64          `json:"at_us"` // microseconds since trace start
	Attrs map[string]any `json:"attrs,omitempty"`
}

// TraceSpan is one recorded span in a JSON trace.
type TraceSpan struct {
	Name       string         `json:"name"`
	StartUS    int64          `json:"start_us"`    // microseconds since trace start
	DurationUS int64          `json:"duration_us"` // -1 while unfinished
	Attrs      map[string]any `json:"attrs,omitempty"`
	Events     []TraceEvent   `json:"events,omitempty"`
	Children   []*TraceSpan   `json:"children,omitempty"`
}

// Trace is the serialized form of one recorded design run: the span tree,
// loose (span-less) events, and the final metric values.
type Trace struct {
	// StartedAt is the wall-clock time the recorder was created.
	StartedAt time.Time `json:"started_at"`
	// Spans are the top-level spans in start order.
	Spans []*TraceSpan `json:"spans"`
	// Events are events emitted outside any span.
	Events []TraceEvent `json:"events,omitempty"`
	// Counters and Gauges are the registry's final values.
	Counters map[string]int64   `json:"counters,omitempty"`
	Gauges   map[string]float64 `json:"gauges,omitempty"`
}

// FindSpan returns the first span with the given name in a pre-order walk
// of the trace, or nil.
func (t *Trace) FindSpan(name string) *TraceSpan {
	var walk func(spans []*TraceSpan) *TraceSpan
	walk = func(spans []*TraceSpan) *TraceSpan {
		for _, s := range spans {
			if s.Name == name {
				return s
			}
			if found := walk(s.Children); found != nil {
				return found
			}
		}
		return nil
	}
	return walk(t.Spans)
}

// EventsOfKind returns every event of the kind anywhere in the trace
// (loose events and span events, pre-order).
func (t *Trace) EventsOfKind(kind EventKind) []TraceEvent {
	var out []TraceEvent
	for _, e := range t.Events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	var walk func(spans []*TraceSpan)
	walk = func(spans []*TraceSpan) {
		for _, s := range spans {
			for _, e := range s.Events {
				if e.Kind == kind {
					out = append(out, e)
				}
			}
			walk(s.Children)
		}
	}
	walk(t.Spans)
	return out
}

// recEvent is the in-memory form of one recorded event. Attrs stay as the
// emitter's slice — no per-event map allocation on the hot path; the
// conversion to TraceEvent's map happens once, at snapshot time.
type recEvent struct {
	kind  EventKind
	atUS  int64
	attrs []Attr
}

func (e recEvent) export() TraceEvent {
	return TraceEvent{Kind: e.kind, AtUS: e.atUS, Attrs: attrMap(e.attrs)}
}

func exportEvents(events []recEvent) []TraceEvent {
	if len(events) == 0 {
		return nil
	}
	out := make([]TraceEvent, len(events))
	for i, e := range events {
		out[i] = e.export()
	}
	return out
}

// Recorder is an Observer that records the span tree and events in memory
// and exports them as a JSON trace. It is safe for concurrent use: the
// MVPP generator starts sibling spans from multiple goroutines.
type Recorder struct {
	mu    sync.Mutex
	start time.Time
	reg   *Registry
	spans []*recSpan
	loose []recEvent
}

// NewRecorder builds a recording observer. reg may be nil, in which case
// the recorder owns a fresh registry.
func NewRecorder(reg *Registry) *Recorder {
	if reg == nil {
		reg = NewRegistry()
	}
	return &Recorder{start: time.Now(), reg: reg}
}

func (r *Recorder) sinceUS() int64 { return time.Since(r.start).Microseconds() }

func (r *Recorder) StartSpan(name string, attrs ...Attr) Span {
	sp := &recSpan{
		rec: r,
		data: TraceSpan{
			Name:       name,
			StartUS:    r.sinceUS(),
			DurationUS: -1,
			Attrs:      attrMap(attrs),
		},
	}
	r.mu.Lock()
	r.spans = append(r.spans, sp)
	r.mu.Unlock()
	return sp
}

func (r *Recorder) Event(kind EventKind, attrs ...Attr) {
	ev := recEvent{kind: kind, atUS: r.sinceUS(), attrs: attrs}
	r.mu.Lock()
	r.loose = append(r.loose, ev)
	r.mu.Unlock()
}

func (r *Recorder) Metrics() *Registry { return r.reg }

// Trace snapshots the recording as a serializable Trace.
func (r *Recorder) Trace() *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := &Trace{StartedAt: r.start}
	t.Events = append(t.Events, exportEvents(r.loose)...)
	for _, sp := range r.spans {
		t.Spans = append(t.Spans, sp.snapshot())
	}
	t.Counters, t.Gauges = r.reg.Snapshot()
	if len(t.Counters) == 0 {
		t.Counters = nil
	}
	if len(t.Gauges) == 0 {
		t.Gauges = nil
	}
	return t
}

// WriteJSON serializes the recording as indented JSON.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.Trace()); err != nil {
		return fmt.Errorf("obs: writing trace: %w", err)
	}
	return nil
}

// ParseTrace reads a JSON trace produced by WriteJSON.
func ParseTrace(r io.Reader) (*Trace, error) {
	var t Trace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("obs: parsing trace: %w", err)
	}
	return &t, nil
}

// recSpan is a live recording span. Child spans and events lock the whole
// recorder — span starts are per pipeline phase, not per tuple, so the
// contention is negligible next to the work the spans measure.
type recSpan struct {
	rec      *Recorder
	data     TraceSpan
	events   []recEvent
	children []*recSpan
	ended    bool
}

func (s *recSpan) StartSpan(name string, attrs ...Attr) Span {
	child := &recSpan{
		rec: s.rec,
		data: TraceSpan{
			Name:       name,
			StartUS:    s.rec.sinceUS(),
			DurationUS: -1,
			Attrs:      attrMap(attrs),
		},
	}
	s.rec.mu.Lock()
	s.children = append(s.children, child)
	s.rec.mu.Unlock()
	return child
}

func (s *recSpan) Event(kind EventKind, attrs ...Attr) {
	ev := recEvent{kind: kind, atUS: s.rec.sinceUS(), attrs: attrs}
	s.rec.mu.Lock()
	s.events = append(s.events, ev)
	s.rec.mu.Unlock()
}

func (s *recSpan) Metrics() *Registry { return s.rec.reg }

func (s *recSpan) Annotate(attrs ...Attr) {
	s.rec.mu.Lock()
	if s.data.Attrs == nil {
		s.data.Attrs = make(map[string]any, len(attrs))
	}
	for _, a := range attrs {
		s.data.Attrs[a.Key] = a.Value
	}
	s.rec.mu.Unlock()
}

func (s *recSpan) End() {
	s.rec.mu.Lock()
	if !s.ended {
		s.ended = true
		s.data.DurationUS = s.rec.sinceUS() - s.data.StartUS
	}
	s.rec.mu.Unlock()
}

// snapshot deep-copies the span subtree; callers hold the recorder lock.
func (s *recSpan) snapshot() *TraceSpan {
	out := s.data
	out.Attrs = copyMap(s.data.Attrs)
	out.Events = exportEvents(s.events)
	for _, c := range s.children {
		out.Children = append(out.Children, c.snapshot())
	}
	return &out
}

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

func copyMap(m map[string]any) map[string]any {
	if m == nil {
		return nil
	}
	out := make(map[string]any, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
