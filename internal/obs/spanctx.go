package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// SpanContext is the causal identity of one pipeline span: which trace it
// belongs to, its own span ID, and the span it hangs under. It is a plain
// value — cheap to copy across channels and goroutines — so the write path
// (StreamIngest batch → group commit → journal append → epoch → per-view
// refresh) can carry causality without heap traffic. The zero SpanContext
// means "not traced": every propagation site guards with Valid(), keeping
// the nil-off discipline of the rest of the package.
type SpanContext struct {
	TraceID uint64 `json:"trace_id"`
	SpanID  uint64 `json:"span_id"`
	Parent  uint64 `json:"parent_span_id,omitempty"`
}

var (
	traceIDGen atomic.Uint64
	spanIDGen  atomic.Uint64
)

// NewTraceContext mints a fresh root context: a new trace ID with a new
// root span and no parent. IDs are process-unique, monotone, and never 0.
func NewTraceContext() SpanContext {
	return SpanContext{TraceID: traceIDGen.Add(1), SpanID: spanIDGen.Add(1)}
}

// NewChild mints a child context in the same trace, parented on c. A child
// of the zero context is itself a fresh root (so call sites do not need to
// branch on whether an upstream stage was sampled).
func (c SpanContext) NewChild() SpanContext {
	if !c.Valid() {
		return NewTraceContext()
	}
	return SpanContext{TraceID: c.TraceID, SpanID: spanIDGen.Add(1), Parent: c.SpanID}
}

// Valid reports whether the context identifies a sampled trace.
func (c SpanContext) Valid() bool { return c.TraceID != 0 }

// AttrMap renders an attribute list as a JSON-friendly map.
func AttrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// FlightRecord is one entry of the flight recorder: a completed span or a
// point event, stamped with its causal context.
type FlightRecord struct {
	Seq        uint64         `json:"seq"`
	Kind       string         `json:"kind"` // "span" | "event"
	Name       string         `json:"name"`
	TraceID    uint64         `json:"trace_id,omitempty"`
	SpanID     uint64         `json:"span_id,omitempty"`
	Parent     uint64         `json:"parent_span_id,omitempty"`
	AtUnixNS   int64          `json:"at_unix_ns"`
	DurationNS int64          `json:"duration_ns,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
}

// FlightDump is one forensic dump: the recorder ring at the moment an
// episode (SLO breach, breaker open, checkpoint corruption) latched.
type FlightDump struct {
	Seq      uint64         `json:"seq"`
	Reason   string         `json:"reason"`
	AtUnixNS int64          `json:"at_unix_ns"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Records  []FlightRecord `json:"records"`
	Path     string         `json:"path,omitempty"`
}

// FlightRecorder is a bounded lock-free ring of recent spans and events,
// kept always-on (recording is two atomic ops and one small allocation) so
// that when an episode latches, the recent past is already captured. Dump
// snapshots the ring, retains the dump in memory for the /flight endpoint,
// and — when a directory is configured — writes it to disk as JSON.
//
// Writers never block: Record claims a slot with an atomic increment and
// stores a pointer; concurrent readers see each slot atomically (a snapshot
// racing a wrapping writer may observe a slightly newer record in an old
// slot, which the per-record Seq makes detectable and ordering-safe).
type FlightRecorder struct {
	slots []atomic.Pointer[FlightRecord]
	cur   atomic.Uint64
	dir   string

	mu      sync.Mutex
	dumpSeq uint64
	dumps   []FlightDump // most recent last, bounded by maxDumps
}

// maxDumps bounds the in-memory dump history served on /flight.
const maxDumps = 8

// NewFlightRecorder builds a recorder holding the last size records
// (default 1024 when size ≤ 0). dir is where dumps are written; empty
// keeps dumps in memory only.
func NewFlightRecorder(size int, dir string) *FlightRecorder {
	if size <= 0 {
		size = 1024
	}
	return &FlightRecorder{slots: make([]atomic.Pointer[FlightRecord], size), dir: dir}
}

// RecordSpan records one completed span. No-op on a nil recorder.
func (f *FlightRecorder) RecordSpan(ctx SpanContext, name string, start time.Time, dur time.Duration, attrs ...Attr) {
	if f == nil {
		return
	}
	f.record(&FlightRecord{
		Kind: "span", Name: name,
		TraceID: ctx.TraceID, SpanID: ctx.SpanID, Parent: ctx.Parent,
		AtUnixNS: start.UnixNano(), DurationNS: int64(dur),
		Attrs: AttrMap(attrs),
	})
}

// RecordEvent records one point event. No-op on a nil recorder.
func (f *FlightRecorder) RecordEvent(ctx SpanContext, kind EventKind, attrs ...Attr) {
	if f == nil {
		return
	}
	f.record(&FlightRecord{
		Kind: "event", Name: string(kind),
		TraceID: ctx.TraceID, SpanID: ctx.SpanID, Parent: ctx.Parent,
		AtUnixNS: time.Now().UnixNano(),
		Attrs:    AttrMap(attrs),
	})
}

func (f *FlightRecorder) record(rec *FlightRecord) {
	seq := f.cur.Add(1)
	rec.Seq = seq
	f.slots[(seq-1)%uint64(len(f.slots))].Store(rec)
}

// Snapshot returns the ring's current records, oldest first.
func (f *FlightRecorder) Snapshot() []FlightRecord {
	if f == nil {
		return nil
	}
	out := make([]FlightRecord, 0, len(f.slots))
	for i := range f.slots {
		if r := f.slots[i].Load(); r != nil {
			out = append(out, *r)
		}
	}
	// Seq is the claim order; sort restores it across the wrap point.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Seq < out[j-1].Seq; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Dump snapshots the ring into a retained FlightDump and, when a dump
// directory is configured, writes it to disk as flight-<seq>-<reason>.json.
// Disk failures are reported on the dump's Attrs (key "write_error") rather
// than failing the dump — forensics must never take the server down. Nil
// recorders return nil.
func (f *FlightRecorder) Dump(reason string, attrs ...Attr) *FlightDump {
	if f == nil {
		return nil
	}
	d := FlightDump{
		Reason:   reason,
		AtUnixNS: time.Now().UnixNano(),
		Attrs:    AttrMap(attrs),
		Records:  f.Snapshot(),
	}
	f.mu.Lock()
	f.dumpSeq++
	d.Seq = f.dumpSeq
	if f.dir != "" {
		d.Path = filepath.Join(f.dir, fmt.Sprintf("flight-%d-%s.json", d.Seq, sanitizeReason(reason)))
	}
	if f.dir != "" {
		if err := writeDump(f.dir, d.Path, &d); err != nil {
			if d.Attrs == nil {
				d.Attrs = map[string]any{}
			}
			d.Attrs["write_error"] = err.Error()
			d.Path = ""
		}
	}
	f.dumps = append(f.dumps, d)
	if len(f.dumps) > maxDumps {
		f.dumps = f.dumps[len(f.dumps)-maxDumps:]
	}
	f.mu.Unlock()
	return &d
}

// Dumps returns the retained dumps, oldest first.
func (f *FlightRecorder) Dumps() []FlightDump {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	out := make([]FlightDump, len(f.dumps))
	copy(out, f.dumps)
	f.mu.Unlock()
	return out
}

// DumpCount returns how many dumps have been taken over the recorder's
// lifetime (retention may have evicted older ones from Dumps).
func (f *FlightRecorder) DumpCount() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	n := f.dumpSeq
	f.mu.Unlock()
	return n
}

func sanitizeReason(reason string) string {
	b := []byte(reason)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

func writeDump(dir, path string, d *FlightDump) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
