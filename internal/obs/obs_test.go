package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"sync"
	"testing"
)

// TestNilSafety: the disabled path — nil observer, nil span, nil counter —
// must be a no-op everywhere, because every pipeline call site relies on it.
func TestNilSafety(t *testing.T) {
	sp := Start(nil, "x", String("k", "v"))
	if sp != nil {
		t.Fatalf("Start(nil) = %v, want nil", sp)
	}
	End(nil)
	if From(nil) != nil {
		t.Fatal("From(nil) should be nil")
	}
	Emit(nil, EvCandidate, Int("i", 1))
	c := CounterOf(nil, CtrCandidates)
	if c != nil {
		t.Fatalf("CounterOf(nil) = %v, want nil", c)
	}
	c.Add(5) // must not panic
	c.Inc()
	if got := c.Value(); got != 0 {
		t.Fatalf("nil counter value = %d, want 0", got)
	}
	var g *Gauge
	g.Set(1.5)
	if got := g.Value(); got != 0 {
		t.Fatalf("nil gauge value = %g, want 0", got)
	}
	if RegistryOf(nil) != nil {
		t.Fatal("RegistryOf(nil) should be nil")
	}
}

func TestRegistryCountersAndGauges(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("a")
	if c2 := reg.Counter("a"); c2 != c {
		t.Fatal("Counter not stable across lookups")
	}
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	g := reg.Gauge("g")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %g, want 2.5", got)
	}
	counters, gauges := reg.Snapshot()
	if counters["a"] != 4 || gauges["g"] != 2.5 {
		t.Fatalf("snapshot = %v %v", counters, gauges)
	}
}

// TestRegistryConcurrency hammers one counter from many goroutines; run
// with -race this also proves the registry's get-or-create is safe.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				reg.Counter("shared").Inc()
				reg.Gauge("last").Set(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("shared").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

func TestRecorderSpanNesting(t *testing.T) {
	rec := NewRecorder(nil)
	root := rec.StartSpan("design", Int("queries", 4))
	child := root.StartSpan("optimize")
	grand := child.StartSpan("optimize.query", String("query", "Q1"))
	grand.Event(EvPlanChosen, Float("cost", 10.5))
	grand.End()
	child.End()
	root.Annotate(Float("total", 99))
	root.End()
	rec.Event(EvCosts, Float("total", 99)) // loose event

	tr := rec.Trace()
	if len(tr.Spans) != 1 || tr.Spans[0].Name != "design" {
		t.Fatalf("top-level spans = %+v", tr.Spans)
	}
	if tr.Spans[0].Attrs["total"] != 99.0 {
		t.Fatalf("root attrs = %v", tr.Spans[0].Attrs)
	}
	opt := tr.FindSpan("optimize")
	if opt == nil || len(opt.Children) != 1 {
		t.Fatalf("optimize span missing or wrong children: %+v", opt)
	}
	q := tr.FindSpan("optimize.query")
	if q == nil || q.Attrs["query"] != "Q1" {
		t.Fatalf("optimize.query span = %+v", q)
	}
	if q.DurationUS < 0 {
		t.Fatalf("ended span has duration %d", q.DurationUS)
	}
	events := tr.EventsOfKind(EvPlanChosen)
	if len(events) != 1 || events[0].Attrs["cost"] != 10.5 {
		t.Fatalf("EvPlanChosen events = %+v", events)
	}
	if loose := tr.EventsOfKind(EvCosts); len(loose) != 1 {
		t.Fatalf("loose events = %+v", loose)
	}
}

// TestRecorderConcurrentChildren mirrors the generator's rotation fan-out:
// sibling child spans start and end from parallel goroutines.
func TestRecorderConcurrentChildren(t *testing.T) {
	rec := NewRecorder(nil)
	root := rec.StartSpan("generate")
	var wg sync.WaitGroup
	for r := 0; r < 16; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sp := root.StartSpan("rotation", Int("rotation", int64(r)))
			sp.Event(EvCandidate, Int("rotation", int64(r)))
			sp.Metrics().Counter(CtrMergeAttempts).Inc()
			sp.End()
		}(r)
	}
	wg.Wait()
	root.End()
	tr := rec.Trace()
	if got := len(tr.Spans[0].Children); got != 16 {
		t.Fatalf("children = %d, want 16", got)
	}
	if got := tr.Counters[CtrMergeAttempts]; got != 16 {
		t.Fatalf("merge counter = %d, want 16", got)
	}
}

func TestUnfinishedSpanMarked(t *testing.T) {
	rec := NewRecorder(nil)
	rec.StartSpan("open")
	tr := rec.Trace()
	if tr.Spans[0].DurationUS != -1 {
		t.Fatalf("unfinished span duration = %d, want -1", tr.Spans[0].DurationUS)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	rec := NewRecorder(nil)
	sp := rec.StartSpan("x")
	sp.End()
	d := rec.Trace().Spans[0].DurationUS
	sp.End()
	if got := rec.Trace().Spans[0].DurationUS; got != d {
		t.Fatalf("second End changed duration: %d -> %d", d, got)
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(reg)
	sp := rec.StartSpan("design", Int("queries", 2))
	child := sp.StartSpan("select")
	child.Event(EvSelectStep, String("vertex", "tmp2"), String("action", "materialize"), Float("cs", 123.5))
	child.End()
	sp.End()
	reg.Counter(CtrCandidates).Add(3)
	reg.Gauge("quality").Set(0.75)

	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.FindSpan("design") == nil || back.FindSpan("select") == nil {
		t.Fatalf("round-trip lost spans: %+v", back.Spans)
	}
	steps := back.EventsOfKind(EvSelectStep)
	if len(steps) != 1 || steps[0].Attrs["vertex"] != "tmp2" || steps[0].Attrs["cs"] != 123.5 {
		t.Fatalf("round-trip select.step = %+v", steps)
	}
	if back.Counters[CtrCandidates] != 3 {
		t.Fatalf("round-trip counters = %v", back.Counters)
	}
	if back.Gauges["quality"] != 0.75 {
		t.Fatalf("round-trip gauges = %v", back.Gauges)
	}
	// JSON attr numbers decode as float64; the trace helpers must still
	// find them (documented behaviour, asserted above via cs).
	if back.StartedAt.IsZero() {
		t.Fatal("round-trip lost start time")
	}
}

func TestLogObserver(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	o := NewLogObserver(logger, nil)
	sp := o.StartSpan("design", Int("queries", 4))
	child := sp.StartSpan("optimize")
	child.Event(EvPlanChosen, String("query", "Q1"))
	child.End()
	sp.Event(EvSafeguard, String("strategy", "all-virtual"))
	sp.End()

	out := buf.String()
	for _, want := range []string{
		"span=design", "span=design/optimize", "event=optimizer.plan",
		"event=design.safeguard", "duration=",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("log output missing %q:\n%s", want, out)
		}
	}

	// Info level suppresses spans and plan events but keeps safeguard/cost
	// summaries.
	buf.Reset()
	logger = slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelInfo}))
	o = NewLogObserver(logger, nil)
	sp = o.StartSpan("design")
	sp.Event(EvPlanChosen, String("query", "Q1"))
	sp.Event(EvSafeguard, String("strategy", "all-virtual"))
	sp.End()
	out = buf.String()
	if strings.Contains(out, "span start") || strings.Contains(out, "optimizer.plan") {
		t.Fatalf("info level leaked debug lines:\n%s", out)
	}
	if !strings.Contains(out, "design.safeguard") {
		t.Fatalf("info level lost the safeguard event:\n%s", out)
	}
}

func TestLogObserverNilLogger(t *testing.T) {
	if o := NewLogObserver(nil, nil); o != nil {
		t.Fatalf("NewLogObserver(nil) = %v, want nil", o)
	}
}

func TestMetricsOnly(t *testing.T) {
	reg := NewRegistry()
	o := MetricsOnly(reg)
	sp := Start(o, "design", Int("queries", 1))
	sp.Event(EvCosts, Float("total", 1))
	CounterOf(From(sp), CtrCandidates).Inc()
	sp.Annotate(Float("total", 1))
	End(sp)
	if got := reg.Counter(CtrCandidates).Value(); got != 1 {
		t.Fatalf("counter through metrics-only observer = %d, want 1", got)
	}
	if MetricsOnly(nil).Metrics() == nil {
		t.Fatal("MetricsOnly(nil) should own a fresh registry")
	}
}

func TestTee(t *testing.T) {
	if Tee() != nil || Tee(nil, nil) != nil {
		t.Fatal("empty tee should be nil")
	}
	rec := NewRecorder(nil)
	if got := Tee(nil, rec); got != Observer(rec) {
		t.Fatal("single-survivor tee should be the survivor itself")
	}

	reg := NewRegistry()
	a, b := NewRecorder(reg), NewRecorder(reg)
	o := Tee(a, b)
	sp := o.StartSpan("design")
	sp.Event(EvCosts, Float("total", 1))
	sp.StartSpan("child").End()
	sp.End()
	o.Event(EvCandidate)
	CounterOf(o, CtrCandidates).Inc()

	for name, r := range map[string]*Recorder{"a": a, "b": b} {
		tr := r.Trace()
		if tr.FindSpan("design") == nil || tr.FindSpan("child") == nil {
			t.Fatalf("recorder %s missing spans", name)
		}
		if len(tr.EventsOfKind(EvCosts)) != 1 || len(tr.EventsOfKind(EvCandidate)) != 1 {
			t.Fatalf("recorder %s missing events", name)
		}
		if tr.Counters[CtrCandidates] != 1 {
			t.Fatalf("recorder %s counters = %v", name, tr.Counters)
		}
	}
}
