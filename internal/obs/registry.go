package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotone atomic counter. The zero value is ready to use; a
// nil *Counter is a valid disabled counter whose Add/Inc are no-ops, so
// instrumented code can hold one unconditionally and pay only a nil check
// when observability is off.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 gauge. Like Counter, a nil *Gauge is a valid
// disabled gauge.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the gauge value. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current gauge value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry is a concurrency-safe name→counter/gauge registry. Lookup
// creates on first use; the returned pointers are stable, so hot paths
// resolve once and Add without further synchronization beyond the atomic.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Snapshot returns the current counter and gauge values.
func (r *Registry) Snapshot() (counters map[string]int64, gauges map[string]float64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	counters = make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges = make(map[string]float64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	return counters, gauges
}

// CounterNames returns the registered counter names, sorted.
func (r *Registry) CounterNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.counters))
	for name := range r.counters {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
