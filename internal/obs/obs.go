// Package obs is the observability layer of the MVPP designer: structured
// span tracing, typed events, and an atomic metrics registry, threaded
// through the whole design pipeline (per-query optimization, MVPP
// generation, view selection, cost evaluation, engine execution).
//
// The layer is zero-cost when disabled: a nil Observer is the off switch,
// every call site guards with a nil check (the package helpers Start, Emit
// and CounterOf encapsulate the guard), and a nil *Counter accepts Add as a
// no-op — so the hot paths pay one predictable branch and nothing else.
//
// Three Observer implementations ship with the package:
//
//   - NewLogObserver: renders spans and events through log/slog;
//   - NewRecorder: records the full span tree, events, and final counter
//     values, and serializes them as a JSON trace (WriteJSON/ParseTrace);
//   - Tee: fans out to several observers (log + trace at once).
package obs

// Attr is one key/value annotation on a span or event. Values should be
// strings, bools, or int64/float64-convertible numbers so every backend
// (slog, JSON) can render them faithfully.
type Attr struct {
	Key   string
	Value any
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, value int64) Attr { return Attr{Key: key, Value: value} }

// Float builds a float attribute.
func Float(key string, value float64) Attr { return Attr{Key: key, Value: value} }

// Bool builds a boolean attribute.
func Bool(key string, value bool) Attr { return Attr{Key: key, Value: value} }

// EventKind is the type tag of an event — the pipeline's event taxonomy.
type EventKind string

// The event taxonomy. Every event the pipeline emits carries one of these
// kinds; backends and tests can switch on them without string matching.
const (
	// EvPlanChosen fires once per query when the single-query optimizer
	// settles on a plan (attrs: query, relations, cost).
	EvPlanChosen EventKind = "optimizer.plan"
	// EvCandidate fires once per generated MVPP candidate (attrs: rotation,
	// seed_order, vertices, total, query_cost, maintenance_cost, views).
	EvCandidate EventKind = "generate.candidate"
	// EvCandidateDedup fires when a rotation's MVPP duplicates an earlier
	// signature and is dropped (attrs: rotation, seed_order).
	EvCandidateDedup EventKind = "generate.dedup"
	// EvSelectStep fires once per Figure 9 decision (attrs: vertex, action,
	// weight, cs, note) — the selection trace as events.
	EvSelectStep EventKind = "select.step"
	// EvSafeguard fires when a baseline strategy replaces the greedy choice
	// (attrs: strategy, greedy_total, baseline_total).
	EvSafeguard EventKind = "design.safeguard"
	// EvCosts fires once per design with the final cost breakdown (attrs:
	// query_cost, maintenance_cost, total, all_virtual, all_materialized).
	EvCosts EventKind = "design.costs"
	// EvEngineOp surfaces one executed operator's measured OpStats (attrs:
	// op, reads, writes, out_rows, out_blocks).
	EvEngineOp EventKind = "engine.op"
	// EvMaintPlan fires once per materialized view when delta maintenance
	// is enabled, reporting the winning refresh plan (attrs: vertex,
	// strategy, cm_recompute, cm_incremental).
	EvMaintPlan EventKind = "select.maintenance_plan"
	// EvServeEpoch fires once per serving-layer maintenance epoch (attrs:
	// epoch, delta_rows, refreshed, incremental, recomputed, reads,
	// writes).
	EvServeEpoch EventKind = "serve.epoch"
	// EvServeAdvice fires when the serving layer's advisor re-runs view
	// selection on observed frequencies (attrs: observed_queries, add,
	// drop, keep, current_total, proposed_total).
	EvServeAdvice EventKind = "serve.advice"
	// EvServeSwap fires when advice is applied to the live warehouse
	// (attrs: added, dropped, epoch).
	EvServeSwap EventKind = "serve.swap"
	// EvFault fires when the fault injector injects a failure (attrs:
	// site, kind — "error", "panic" or "delay").
	EvFault EventKind = "fault.injected"
	// EvServeRetry fires before each refresh retry attempt (attrs: target,
	// attempt, error).
	EvServeRetry EventKind = "serve.retry"
	// EvServeFallback fires when an incremental refresh exhausts its
	// retries and the scheduler falls back to full recomputation (attrs:
	// view, error).
	EvServeFallback EventKind = "serve.fallback"
	// EvServeBreaker fires on each per-view circuit-breaker transition
	// (attrs: view, from, to, reason).
	EvServeBreaker EventKind = "serve.breaker"
	// EvServeDegraded fires when a query degrades to the base-relation plan
	// because a view it would read is unhealthy or too stale (attrs:
	// views).
	EvServeDegraded EventKind = "serve.degraded"
	// EvServeJournal fires on delta-journal activity (attrs: action —
	// "replay" or "commit" — records, rows or lsn).
	EvServeJournal EventKind = "serve.journal"
	// EvServeQuery fires at each stage of a served query's lifecycle when
	// trace correlation is on (attrs: query_id, stage — "admit",
	// "cache_hit", "cache_miss", "execute", "degraded", "reply" — plus
	// query and, on reply, outcome detail). Every event of one query carries the same
	// query_id, so a whole lifecycle greps out of a trace by ID.
	EvServeQuery EventKind = "serve.query"
	// EvCostDrift fires when a cost-ledger entry's EWMA calibration ratio
	// first leaves the calibration band (attrs: kind, name, ratio,
	// predicted, actual).
	EvCostDrift EventKind = "costaudit.drift"
	// EvServeRecalibrated fires when drift triggers the advisor to re-run
	// view selection with recalibrated weights (attrs: views, applied,
	// current_total, proposed_total).
	EvServeRecalibrated EventKind = "serve.recalibrated"
	// EvServeIngest fires on CDC streaming-ingest activity (attrs: action —
	// "group_commit" with rows/entries/committed_seq, or "shed" with
	// table/rows when backpressure turned a caller away).
	EvServeIngest EventKind = "serve.ingest"
	// EvServeSLO fires when a view's freshness SLO flips state (attrs:
	// view, action — "violated" or "recovered" — lag_rows, stale_epochs).
	EvServeSLO EventKind = "serve.slo"
	// EvSnapshotCheckpoint fires once per durable snapshot checkpoint
	// (attrs: generation, epoch, watermark, tables, views, bytes,
	// aged_out) — and, with action "declined", when a trigger found
	// unlanded deltas and backed off.
	EvSnapshotCheckpoint EventKind = "snapshot.checkpoint"
	// EvSnapshotRecovery fires once per server boot that consulted the
	// snapshot store (attrs: generation, cold, restored, recomputed,
	// corrupt, bytes).
	EvSnapshotRecovery EventKind = "snapshot.recovery"
	// EvSnapshotCorrupt fires when a snapshot artifact fails validation —
	// a torn or bit-flipped segment, a malformed manifest — and recovery
	// falls back to recomputation instead of failing the boot (attrs:
	// artifact, error).
	EvSnapshotCorrupt EventKind = "snapshot.corrupt"
	// EvFlightDump fires when an episode (SLO breach, breaker open,
	// checkpoint error, recovery corruption) latches and the flight
	// recorder dumps its ring for post-hoc forensics (attrs: reason,
	// records, path).
	EvFlightDump EventKind = "obs.flight_dump"
)

// Canonical counter names. Call sites resolve them once via CounterOf (or
// Registry.Counter) and Add on the hot path.
const (
	// CtrPlansEnumerated counts join candidates priced by the single-query
	// optimizer's dynamic program.
	CtrPlansEnumerated = "optimizer.plans_enumerated"
	// CtrEstimatorCalls counts size/cost estimation requests.
	CtrEstimatorCalls = "cost.estimator_calls"
	// CtrMemoHits counts estimator requests answered from the memo table.
	CtrMemoHits = "cost.memo_hits"
	// CtrMergeAttempts counts join-skeleton merges tried during MVPP
	// generation (one per query per rotation).
	CtrMergeAttempts = "generate.merge_attempts"
	// CtrCandidates counts distinct MVPP candidates generated.
	CtrCandidates = "generate.candidates"
	// CtrGreedyIterations counts Figure 9 candidate-vertex iterations.
	CtrGreedyIterations = "select.greedy_iterations"
	// CtrSafeguardSubs counts baseline substitutions over the greedy choice.
	CtrSafeguardSubs = "design.safeguard_substitutions"
	// CtrEvaluateCalls counts full-MVPP cost evaluations.
	CtrEvaluateCalls = "core.evaluate_calls"
	// CtrEngineBlockReads / CtrEngineBlockWrites count the engine's measured
	// block I/O.
	CtrEngineBlockReads  = "engine.block_reads"
	CtrEngineBlockWrites = "engine.block_writes"
	// CtrIncrementalWins counts materialized views whose delta-propagation
	// plan beat recomputation.
	CtrIncrementalWins = "select.incremental_wins"
	// CtrServeQueries counts queries admitted to the serving layer.
	CtrServeQueries = "serve.queries"
	// CtrServeCacheHits / CtrServeCacheMisses count result-cache outcomes.
	CtrServeCacheHits   = "serve.cache_hits"
	CtrServeCacheMisses = "serve.cache_misses"
	// CtrServeRejected counts queries the admission controller turned away
	// (queue full and the caller's context expired first).
	CtrServeRejected = "serve.rejected"
	// CtrServeEpochs counts maintenance epochs the scheduler ran.
	CtrServeEpochs = "serve.epochs"
	// CtrServeDeltaRows counts base-table delta rows ingested.
	CtrServeDeltaRows = "serve.delta_rows"
	// CtrServeRefreshReads / CtrServeRefreshWrites count the block I/O the
	// scheduler's view refreshes spent.
	CtrServeRefreshReads  = "serve.refresh_reads"
	CtrServeRefreshWrites = "serve.refresh_writes"
	// CtrFaultsInjected counts faults the injector actually injected
	// (errors + panics + delays).
	CtrFaultsInjected = "fault.injected"
	// CtrServeRetries counts refresh retry attempts (beyond each first
	// attempt).
	CtrServeRetries = "serve.retries"
	// CtrServeRefreshFailures counts view refreshes that failed after
	// exhausting their retries.
	CtrServeRefreshFailures = "serve.refresh_failures"
	// CtrServeFallbacks counts incremental refreshes that fell back to full
	// recomputation after repeated delta-application failures.
	CtrServeFallbacks = "serve.fallbacks"
	// CtrServeBreakerTrips counts per-view circuit-breaker trips (closed or
	// half-open → open).
	CtrServeBreakerTrips = "serve.breaker_trips"
	// CtrServeDegraded counts queries answered from base relations because
	// a view they would read was unhealthy or past its staleness bound.
	CtrServeDegraded = "serve.degraded_queries"
	// CtrServePanics counts panics recovered in router workers and the
	// maintenance scheduler.
	CtrServePanics = "serve.panics_recovered"
	// CtrServeReplayedRows counts delta rows replayed from the journal at
	// server start.
	CtrServeReplayedRows = "serve.replayed_rows"
	// CtrCostObservations counts actuals recorded in the cost ledger.
	CtrCostObservations = "costaudit.observations"
	// CtrCostDrifts counts ledger entries newly flagged as drifted.
	CtrCostDrifts = "costaudit.drifts"
	// CtrServeRecalibrations counts drift-triggered advisor re-selections.
	CtrServeRecalibrations = "serve.recalibrations"
	// CtrServeStreamRows counts rows group-committed through the CDC
	// streaming ingest path; CtrServeStreamGroups counts the group commits.
	CtrServeStreamRows   = "serve.stream_rows"
	CtrServeStreamGroups = "serve.stream_groups"
	// CtrServeStreamShed counts StreamIngest calls shed with the typed
	// backpressure error after blocking past the deadline;
	// CtrServeStreamBlocked counts calls that had to block on the full feed
	// buffer at all.
	CtrServeStreamShed    = "serve.stream_shed"
	CtrServeStreamBlocked = "serve.stream_blocked"
	// CtrServeSLOViolations counts freshness-SLO violation episodes (one per
	// view entering the violated state).
	CtrServeSLOViolations = "serve.slo_violations"
	// CtrServeCheckpointDeclined counts snapshot checkpoints declined
	// mid-epoch (unlanded deltas); a climbing value means the warehouse
	// never reaches a landed state between triggers.
	CtrServeCheckpointDeclined = "serve.checkpoint_declined"
	// CtrServeFlightDumps counts flight-recorder dumps taken (one per
	// latched episode: SLO breach, breaker open, checkpoint error,
	// recovery corruption).
	CtrServeFlightDumps = "serve.flight_dumps"
	// CtrSnapshotCheckpoints counts durable snapshot checkpoints taken.
	CtrSnapshotCheckpoints = "snapshot.checkpoints"
	// CtrSnapshotCorrupt counts snapshot artifacts (segments, manifests)
	// that failed validation and were skipped during recovery.
	CtrSnapshotCorrupt = "snapshot.corrupt_artifacts"
	// CtrSnapshotRestoredViews counts views restored from snapshot segments
	// at boot without recomputation.
	CtrSnapshotRestoredViews = "snapshot.restored_views"
)

// Canonical gauge names for the serving layer.
const (
	// GaugeServeQueueDepth is the router's current admission-queue depth.
	GaugeServeQueueDepth = "serve.queue_depth"
	// GaugeServeStaleRows is the total number of ingested delta rows not yet
	// reflected in the materialized views.
	GaugeServeStaleRows = "serve.stale_rows"
	// GaugeServeUnhealthyViews is the number of views whose circuit breaker
	// is currently not closed.
	GaugeServeUnhealthyViews = "serve.unhealthy_views"
	// GaugeServeIngestBufferRows is the CDC change feed's current occupancy
	// (accepted rows awaiting their group commit).
	GaugeServeIngestBufferRows = "serve.ingest_buffer_rows"
	// GaugeSnapshotBytes is the byte size of the newest snapshot generation.
	GaugeSnapshotBytes = "snapshot.bytes"
	// GaugeSnapshotGeneration is the newest snapshot generation number.
	GaugeSnapshotGeneration = "snapshot.generation"
)

// Observer receives spans, events, and hosts the metrics registry. A nil
// Observer disables instrumentation; call sites must guard (or use the
// package helpers, which do).
type Observer interface {
	// StartSpan opens a timed region nested under this observer. The
	// returned Span is itself an Observer: pass it to callees so their
	// spans and events nest correctly, including across goroutines.
	StartSpan(name string, attrs ...Attr) Span
	// Event records one typed event.
	Event(kind EventKind, attrs ...Attr)
	// Metrics returns the observer's counter/gauge registry. All spans of
	// one observer share a single registry.
	Metrics() *Registry
}

// Span is a timed region of the pipeline. Spans nest: a Span is an
// Observer whose child spans and events attach under it.
type Span interface {
	Observer
	// Annotate attaches attributes to the span after it started.
	Annotate(attrs ...Attr)
	// End closes the span, fixing its duration. End is idempotent.
	End()
}

// Start opens a span when o is non-nil and returns nil otherwise, so call
// sites can write sp := obs.Start(o, ...); ...; obs.End(sp).
func Start(o Observer, name string, attrs ...Attr) Span {
	if o == nil {
		return nil
	}
	return o.StartSpan(name, attrs...)
}

// End closes a span from Start, tolerating nil.
func End(s Span) {
	if s != nil {
		s.End()
	}
}

// From converts a span into the observer to hand to callees, mapping nil
// to nil (keeping the disabled path a plain nil check all the way down).
func From(s Span) Observer {
	if s == nil {
		return nil
	}
	return s
}

// Emit records an event when o is non-nil.
func Emit(o Observer, kind EventKind, attrs ...Attr) {
	if o != nil {
		o.Event(kind, attrs...)
	}
}

// CounterOf resolves a named counter from the observer's registry, or nil
// when o is nil — and a nil *Counter accepts Add/Inc as no-ops, so hot
// loops can hold the result unconditionally.
func CounterOf(o Observer, name string) *Counter {
	if o == nil {
		return nil
	}
	return o.Metrics().Counter(name)
}

// RegistryOf returns the observer's registry, or nil when o is nil.
func RegistryOf(o Observer) *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics()
}

// Tee fans out to every non-nil observer. It returns nil when none
// remain and the sole survivor when only one does, so the disabled and
// single-backend paths keep their direct representation. The first
// observer's registry serves Metrics(); to keep counters consistent
// across backends, construct the backends over one shared Registry.
func Tee(observers ...Observer) Observer {
	var live []Observer
	for _, o := range observers {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return &tee{obs: live}
}

type tee struct {
	obs []Observer
}

func (t *tee) StartSpan(name string, attrs ...Attr) Span {
	spans := make([]Span, len(t.obs))
	for i, o := range t.obs {
		spans[i] = o.StartSpan(name, attrs...)
	}
	return &teeSpan{tee: tee{obs: spansAsObservers(spans)}, spans: spans}
}

func (t *tee) Event(kind EventKind, attrs ...Attr) {
	for _, o := range t.obs {
		o.Event(kind, attrs...)
	}
}

func (t *tee) Metrics() *Registry { return t.obs[0].Metrics() }

type teeSpan struct {
	tee
	spans []Span
}

func (s *teeSpan) Annotate(attrs ...Attr) {
	for _, sp := range s.spans {
		sp.Annotate(attrs...)
	}
}

func (s *teeSpan) End() {
	for _, sp := range s.spans {
		sp.End()
	}
}

func spansAsObservers(spans []Span) []Observer {
	out := make([]Observer, len(spans))
	for i, sp := range spans {
		out[i] = sp
	}
	return out
}

// MetricsOnly returns an Observer that records no spans or events but
// carries reg, so the pipeline's counters still accumulate — e.g. for the
// expvar export when neither a log nor a trace backend is active.
func MetricsOnly(reg *Registry) Observer {
	if reg == nil {
		reg = NewRegistry()
	}
	return &metricsObserver{reg: reg}
}

type metricsObserver struct{ reg *Registry }

func (m *metricsObserver) StartSpan(string, ...Attr) Span { return &metricsSpan{m} }
func (m *metricsObserver) Event(EventKind, ...Attr)       {}
func (m *metricsObserver) Metrics() *Registry             { return m.reg }

type metricsSpan struct{ *metricsObserver }

func (s *metricsSpan) Annotate(...Attr) {}
func (s *metricsSpan) End()             {}
