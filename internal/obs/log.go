package obs

import (
	"context"
	"log/slog"
	"sync/atomic"
	"time"
)

// logObserver renders spans and events through a slog.Logger. Span starts
// and ends log at Debug (ends carry the duration); events log at Debug
// except the design-level summaries (EvSafeguard, EvCosts), which log at
// Info so the default level surfaces what the designer decided.
type logObserver struct {
	logger *slog.Logger
	reg    *Registry
	nextID atomic.Int64
}

// NewLogObserver builds a slog-backed observer. reg may be nil, in which
// case the observer owns a fresh registry.
func NewLogObserver(logger *slog.Logger, reg *Registry) Observer {
	if logger == nil {
		return nil
	}
	if reg == nil {
		reg = NewRegistry()
	}
	return &logObserver{logger: logger, reg: reg}
}

func (l *logObserver) StartSpan(name string, attrs ...Attr) Span {
	return l.startSpan(name, "", attrs)
}

func (l *logObserver) startSpan(name, parentPath string, attrs []Attr) Span {
	path := name
	if parentPath != "" {
		path = parentPath + "/" + name
	}
	sp := &logSpan{root: l, path: path, start: time.Now()}
	l.logger.Debug("span start", logArgs(slog.String("span", path), attrs)...)
	return sp
}

func (l *logObserver) Event(kind EventKind, attrs ...Attr) { l.event("", kind, attrs) }

func (l *logObserver) event(path string, kind EventKind, attrs []Attr) {
	level := slog.LevelDebug
	if kind == EvSafeguard || kind == EvCosts {
		level = slog.LevelInfo
	}
	args := logArgs(slog.String("event", string(kind)), attrs)
	if path != "" {
		args = append(args, slog.String("span", path))
	}
	l.logger.Log(context.Background(), level, "event", args...)
}

func (l *logObserver) Metrics() *Registry { return l.reg }

type logSpan struct {
	root  *logObserver
	path  string
	start time.Time
	done  atomic.Bool
}

func (s *logSpan) StartSpan(name string, attrs ...Attr) Span {
	return s.root.startSpan(name, s.path, attrs)
}

func (s *logSpan) Event(kind EventKind, attrs ...Attr) { s.root.event(s.path, kind, attrs) }

func (s *logSpan) Metrics() *Registry { return s.root.reg }

func (s *logSpan) Annotate(attrs ...Attr) {
	s.root.logger.Debug("span annotate", logArgs(slog.String("span", s.path), attrs)...)
}

func (s *logSpan) End() {
	if !s.done.CompareAndSwap(false, true) {
		return
	}
	s.root.logger.Debug("span end",
		slog.String("span", s.path),
		slog.Duration("duration", time.Since(s.start)))
}

func logArgs(head slog.Attr, attrs []Attr) []any {
	args := make([]any, 0, len(attrs)+1)
	args = append(args, head)
	for _, a := range attrs {
		args = append(args, slog.Any(a.Key, a.Value))
	}
	return args
}
