// Package snapshot is the durable columnar snapshot store: it checkpoints
// base tables and materialized views as CRC-framed segment files (see
// internal/engine's segment format) under an atomically-committed JSON
// manifest, and recovers the newest consistent generation on restart.
//
// Layout under the store directory:
//
//	gen-0000000000000001/
//	    base_<table>.seg        one columnar segment per base table
//	    view_<view>.seg         one per materialized view
//	    MANIFEST.json           commit record — written last, fsync+rename
//	gen-0000000000000002/
//	    ...
//
// A generation without a manifest never happened: segments are written
// first, the manifest is staged to a temp file, fsynced, and renamed into
// place, and the directory is fsynced — so a crash at any point leaves
// either no manifest (the half-written generation is swept as debris) or a
// complete one. Recovery walks generations newest-first and uses the first
// one whose manifest parses; inside a chosen generation, base tables
// restore all-or-nothing while each view falls back to recomputation
// independently (definition-hash mismatch, corrupt segment, injected
// replay fault). Corruption is an event (obs.EvSnapshotCorrupt), never a
// failed boot.
package snapshot

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/catalog"
	"github.com/warehousekit/mvpp/internal/engine"
	"github.com/warehousekit/mvpp/internal/fault"
	"github.com/warehousekit/mvpp/internal/obs"
)

const (
	manifestName    = "MANIFEST.json"
	genPrefix       = "gen-"
	tmpSuffix       = ".tmp"
	manifestVersion = 1
)

// Segment is one persisted table's manifest entry.
type Segment struct {
	// Name is the base table (or view) name.
	Name string `json:"name"`
	// File is the segment's file name within the generation directory.
	File string `json:"file"`
	// Rows is the persisted row count (informational; the segment header
	// is authoritative).
	Rows int `json:"rows"`
	// Bytes is the segment file's size.
	Bytes int64 `json:"bytes"`
	// Stats is the table's derived catalog entry at checkpoint time, so
	// recovery primes the cost model without rescanning restored rows.
	// Advisory: a missing or implausible sidecar just means the stats are
	// recomputed lazily — never a corruption event.
	Stats *SegmentStats `json:"stats,omitempty"`
}

// SegmentStats is the statistics sidecar persisted with a segment: the
// exact engine.TableStats entry for the persisted rows, minus the schema
// (the restored table's live schema is re-attached on install).
type SegmentStats struct {
	Rows            float64                      `json:"rows"`
	Blocks          float64                      `json:"blocks"`
	UpdateFrequency float64                      `json:"update_frequency"`
	Attrs           map[string]catalog.AttrStats `json:"attrs"`
}

// statsOf captures a table's catalog entry as a manifest sidecar.
func statsOf(name string, t *engine.Table) *SegmentStats {
	rel := engine.TableStats(name, t)
	return &SegmentStats{
		Rows:            rel.Rows,
		Blocks:          rel.Blocks,
		UpdateFrequency: rel.UpdateFrequency,
		Attrs:           rel.Attrs,
	}
}

// install primes a restored table with the sidecar's statistics; the
// engine rejects entries that do not match the table's identity and sizes.
func (s *SegmentStats) install(name string, t *engine.Table) {
	if s == nil {
		return
	}
	t.InstallStats(&catalog.Relation{
		Name:            name,
		Rows:            s.Rows,
		Blocks:          s.Blocks,
		UpdateFrequency: s.UpdateFrequency,
		Attrs:           s.Attrs,
	})
}

// LineageMark is the lineage watermark a checkpoint stamps on a view
// segment: which epoch and journal LSN the persisted contents correspond
// to, and the order-insensitive fingerprint of those contents. Recovery
// hands the mark back to the serving layer, which seeds the restored
// view's lineage with it — so lineage survives a crash-restart and the
// restored rows can be verified against the recorded fingerprint.
type LineageMark struct {
	Epoch       uint64 `json:"epoch"`
	LSN         uint64 `json:"lsn"`
	Fingerprint string `json:"fingerprint,omitempty"`
}

// ViewSegment is a materialized view's manifest entry.
type ViewSegment struct {
	Segment
	// DefHash fingerprints the view's defining plan (structural key). A
	// restart whose live design hashes differently recomputes the view
	// instead of restoring rows that answer a different query.
	DefHash string `json:"def_hash"`
	// Epoch is the maintenance epoch the view had reached when persisted.
	Epoch uint64 `json:"epoch"`
	// Lineage fields: the epoch/LSN/fingerprint watermark of the persisted
	// contents (zero values on manifests written before lineage existed).
	LineageEpoch       uint64 `json:"lineage_epoch,omitempty"`
	LineageLSN         uint64 `json:"lineage_lsn,omitempty"`
	LineageFingerprint string `json:"lineage_fingerprint,omitempty"`
}

// Manifest is a generation's commit record.
type Manifest struct {
	Version    int       `json:"version"`
	Generation uint64    `json:"generation"`
	CreatedAt  time.Time `json:"created_at"`
	// Epoch is the serving layer's maintenance epoch at checkpoint time.
	Epoch uint64 `json:"epoch"`
	// Watermark is the highest journal LSN whose rows are contained in
	// this snapshot; recovery replays only records past it.
	Watermark uint64        `json:"watermark"`
	Tables    []Segment     `json:"tables"`
	Views     []ViewSegment `json:"views"`

	dir string // generation directory, set on load
}

// Dir returns the generation directory the manifest was loaded from
// (empty for manifests not yet committed).
func (m *Manifest) Dir() string { return m.dir }

// TotalBytes sums every segment size recorded in the manifest.
func (m *Manifest) TotalBytes() int64 {
	var n int64
	for _, s := range m.Tables {
		n += s.Bytes
	}
	for _, v := range m.Views {
		n += v.Bytes
	}
	return n
}

// View returns the manifest entry for one view, if present.
func (m *Manifest) View(name string) (ViewSegment, bool) {
	for _, v := range m.Views {
		if v.Name == name {
			return v, true
		}
	}
	return ViewSegment{}, false
}

// DefHash fingerprints a view's defining plan: the first 16 bytes of
// SHA-256 over its structural key, hex-encoded. Two plans share a hash
// iff they are structurally identical.
func DefHash(plan algebra.Node) string {
	sum := sha256.Sum256([]byte(algebra.StructuralKey(plan)))
	return hex.EncodeToString(sum[:16])
}

// Store is a snapshot store rooted at one directory. The zero value is not
// usable; call Open. Methods are not safe for concurrent use with each
// other — the serving layer serializes checkpoints under its maintenance
// lock, and recovery runs before the store is shared.
type Store struct {
	dir  string
	inj  *fault.Injector
	obsv obs.Observer

	ctrCheckpoints *obs.Counter
	ctrCorrupt     *obs.Counter
	ctrRestored    *obs.Counter
}

// Open creates (if needed) the store directory and returns a store over it.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("snapshot: store directory must not be empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapshot: creating store directory: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

// SetInjector arms fault injection at the store's crash-point sites
// (segment write, manifest write/rename, replay); nil disables.
func (st *Store) SetInjector(in *fault.Injector) { st.inj = in }

// SetObserver wires snapshot events and counters; nil disables.
func (st *Store) SetObserver(o obs.Observer) {
	st.obsv = o
	st.ctrCheckpoints = obs.CounterOf(o, obs.CtrSnapshotCheckpoints)
	st.ctrCorrupt = obs.CounterOf(o, obs.CtrSnapshotCorrupt)
	st.ctrRestored = obs.CounterOf(o, obs.CtrSnapshotRestoredViews)
}

func (st *Store) emitCorrupt(artifact string, err error) {
	st.ctrCorrupt.Inc()
	obs.Emit(st.obsv, obs.EvSnapshotCorrupt,
		obs.String("artifact", artifact), obs.String("error", err.Error()))
}

// ViewData is one materialized view handed to Checkpoint.
type ViewData struct {
	Name string
	Plan algebra.Node
	// Table is the view's current stored table (a consistent copy or the
	// live table — Checkpoint only reads it).
	Table *engine.Table
	// Epoch is the view's maintenance epoch at capture time.
	Epoch uint64
	// Lineage is the view's lineage watermark at capture time (zero when
	// the caller does not track lineage).
	Lineage LineageMark
}

// CheckpointInput is everything one checkpoint persists.
type CheckpointInput struct {
	// Epoch is the serving layer's maintenance epoch.
	Epoch uint64
	// Watermark is the highest journal LSN folded into the tables.
	Watermark uint64
	Tables    []*engine.Table
	Views     []ViewData
}

// CheckpointResult reports a committed checkpoint.
type CheckpointResult struct {
	Generation uint64
	Bytes      int64
	Duration   time.Duration
	// ViewBytes is each persisted view's segment size.
	ViewBytes map[string]int64
}

// nextGeneration scans existing generation directories and returns one
// past the highest (committed or not — debris still claims its number so
// a new generation never collides with a half-written directory).
func (st *Store) nextGeneration() (uint64, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return 0, fmt.Errorf("snapshot: listing store: %w", err)
	}
	var max uint64
	for _, e := range entries {
		var g uint64
		if _, err := fmt.Sscanf(e.Name(), genPrefix+"%d", &g); err == nil && g > max {
			max = g
		}
	}
	return max + 1, nil
}

func genDirName(g uint64) string { return fmt.Sprintf(genPrefix+"%016d", g) }

// writeSegment serializes one table to a file. The table is serialized to
// memory first so the SiteSnapshotSegmentWrite crash point can leave a
// *genuinely* torn file — half the real bytes — rather than a synthetic
// error with an intact file.
func (st *Store) writeSegment(path string, t *engine.Table) (int64, error) {
	var buf segBuffer
	if _, err := engine.WriteTableSegment(&buf, t); err != nil {
		return 0, err
	}
	data := buf.b
	if err := st.inj.Hit(fault.SiteSnapshotSegmentWrite); err != nil {
		// Simulated crash mid-write: flush a torn prefix and bail.
		_ = os.WriteFile(path, data[:len(data)/2], 0o644)
		return 0, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	return int64(len(data)), nil
}

type segBuffer struct{ b []byte }

func (s *segBuffer) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}

// Checkpoint persists one consistent generation: every segment first, then
// the manifest via stage-fsync-rename. It returns only after the commit is
// durable. On any error the half-written generation is left without a
// manifest — invisible to recovery, swept by the next GC.
func (st *Store) Checkpoint(in CheckpointInput) (*CheckpointResult, error) {
	start := time.Now()
	gen, err := st.nextGeneration()
	if err != nil {
		return nil, err
	}
	dir := filepath.Join(st.dir, genDirName(gen))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapshot: creating generation: %w", err)
	}
	m := &Manifest{
		Version:    manifestVersion,
		Generation: gen,
		CreatedAt:  time.Now().UTC(),
		Epoch:      in.Epoch,
		Watermark:  in.Watermark,
	}
	for _, t := range in.Tables {
		file := "base_" + t.Name + ".seg"
		n, err := st.writeSegment(filepath.Join(dir, file), t)
		if err != nil {
			return nil, fmt.Errorf("snapshot: writing segment for table %s: %w", t.Name, err)
		}
		m.Tables = append(m.Tables, Segment{
			Name: t.Name, File: file, Rows: t.NumRows(), Bytes: n,
			Stats: statsOf(t.Name, t),
		})
	}
	for _, v := range in.Views {
		file := "view_" + v.Name + ".seg"
		n, err := st.writeSegment(filepath.Join(dir, file), v.Table)
		if err != nil {
			return nil, fmt.Errorf("snapshot: writing segment for view %s: %w", v.Name, err)
		}
		m.Views = append(m.Views, ViewSegment{
			Segment: Segment{
				Name: v.Name, File: file, Rows: v.Table.NumRows(), Bytes: n,
				Stats: statsOf(v.Name, v.Table),
			},
			DefHash:            DefHash(v.Plan),
			Epoch:              v.Epoch,
			LineageEpoch:       v.Lineage.Epoch,
			LineageLSN:         v.Lineage.LSN,
			LineageFingerprint: v.Lineage.Fingerprint,
		})
	}
	if err := st.commitManifest(dir, m); err != nil {
		return nil, err
	}
	res := &CheckpointResult{
		Generation: gen,
		Bytes:      m.TotalBytes(),
		Duration:   time.Since(start),
		ViewBytes:  make(map[string]int64, len(m.Views)),
	}
	for _, v := range m.Views {
		res.ViewBytes[v.Name] = v.Bytes
	}
	st.ctrCheckpoints.Inc()
	return res, nil
}

// commitManifest stages the manifest JSON next to its final name, fsyncs,
// renames, and fsyncs the directory — the generation's atomic commit point.
func (st *Store) commitManifest(dir string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmpPath := filepath.Join(dir, manifestName+tmpSuffix)
	f, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("snapshot: staging manifest: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	// Crash point: manifest staged, commit rename not yet performed — the
	// generation is still invisible to recovery.
	if err := st.inj.Hit(fault.SiteSnapshotManifestWrite); err != nil {
		return err
	}
	if err := os.Rename(tmpPath, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("snapshot: committing manifest: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	if err := syncDir(st.dir); err != nil {
		return err
	}
	// Crash point: the commit landed but post-commit work (journal
	// truncation, GC) has not run — recovery must tolerate the overlap.
	if err := st.inj.Hit(fault.SiteSnapshotManifestRename); err != nil {
		return err
	}
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("snapshot: opening dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("snapshot: syncing dir: %w", err)
	}
	return nil
}

// generations lists generation numbers present on disk, ascending.
func (st *Store) generations() ([]uint64, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, fmt.Errorf("snapshot: listing store: %w", err)
	}
	var gens []uint64
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		var g uint64
		if _, err := fmt.Sscanf(e.Name(), genPrefix+"%d", &g); err == nil && g > 0 {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// GC removes committed generations beyond the newest `retain` and every
// uncommitted (manifest-less) generation directory older than the newest
// committed one — crash debris. Returns how many directories were removed.
func (st *Store) GC(retain int) (int, error) {
	if retain < 1 {
		retain = 1
	}
	gens, err := st.generations()
	if err != nil {
		return 0, err
	}
	// Find committed generations (those with a manifest file).
	var committed []uint64
	byGen := make(map[uint64]bool)
	for _, g := range gens {
		if _, err := os.Stat(filepath.Join(st.dir, genDirName(g), manifestName)); err == nil {
			committed = append(committed, g)
			byGen[g] = true
		}
	}
	removed := 0
	keepFloor := uint64(0)
	if len(committed) > retain {
		keepFloor = committed[len(committed)-retain]
	}
	var newestCommitted uint64
	if len(committed) > 0 {
		newestCommitted = committed[len(committed)-1]
	}
	for _, g := range gens {
		drop := false
		if byGen[g] {
			drop = g < keepFloor
		} else {
			// Manifest-less debris: only sweep it once a newer committed
			// generation exists, so an in-flight checkpoint's directory
			// (always the newest) is never pulled out from under it.
			drop = g < newestCommitted
		}
		if drop {
			if err := os.RemoveAll(filepath.Join(st.dir, genDirName(g))); err != nil {
				return removed, fmt.Errorf("snapshot: removing generation %d: %w", g, err)
			}
			removed++
		}
	}
	return removed, nil
}

// Manifest returns the newest loadable manifest, or nil if no committed
// generation exists. A manifest that fails to parse is reported as corrupt
// and skipped in favor of the next-older generation.
func (st *Store) Manifest() (*Manifest, error) {
	gens, err := st.generations()
	if err != nil {
		return nil, err
	}
	for i := len(gens) - 1; i >= 0; i-- {
		dir := filepath.Join(st.dir, genDirName(gens[i]))
		path := filepath.Join(dir, manifestName)
		data, err := os.ReadFile(path)
		if os.IsNotExist(err) {
			continue // uncommitted generation
		}
		if err != nil {
			st.emitCorrupt(path, err)
			continue
		}
		var m Manifest
		if err := json.Unmarshal(data, &m); err != nil {
			st.emitCorrupt(path, err)
			continue
		}
		m.dir = dir
		return &m, nil
	}
	return nil, nil
}

// loadSegment decodes one segment file; every failure (including an
// injected replay fault) wraps engine.ErrSegmentCorrupt semantics for the
// caller to treat as "recompute instead".
func (st *Store) loadSegment(path string) (*engine.Table, error) {
	if err := st.inj.Hit(fault.SiteSnapshotReplay); err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return engine.ReadTableSegment(f)
}

// LoadBase restores every base table in the manifest. All-or-nothing: one
// corrupt base segment fails the whole call (base tables feed every view;
// a partial base restore cannot produce a consistent warehouse).
func (st *Store) LoadBase(m *Manifest) ([]*engine.Table, error) {
	out := make([]*engine.Table, 0, len(m.Tables))
	for _, s := range m.Tables {
		path := filepath.Join(m.dir, s.File)
		t, err := st.loadSegment(path)
		if err != nil {
			st.emitCorrupt(path, err)
			return nil, fmt.Errorf("snapshot: base table %s: %w", s.Name, err)
		}
		s.Stats.install(s.Name, t)
		out = append(out, t)
	}
	return out, nil
}

// LoadView restores one view's table from the manifest's generation.
func (st *Store) LoadView(m *Manifest, name string) (*engine.Table, error) {
	vs, ok := m.View(name)
	if !ok {
		return nil, fmt.Errorf("snapshot: view %s not in manifest", name)
	}
	path := filepath.Join(m.dir, vs.File)
	t, err := st.loadSegment(path)
	if err != nil {
		st.emitCorrupt(path, err)
		return nil, err
	}
	vs.Stats.install(name, t)
	return t, nil
}

// DropViewSnapshot removes the named view's segment files and manifest
// entries from every committed generation, so a dropped view can never be
// restored. Each touched manifest is rewritten through the same
// stage-fsync-rename commit as a checkpoint. Implements
// engine.SnapshotDropper.
func (st *Store) DropViewSnapshot(name string) error {
	gens, err := st.generations()
	if err != nil {
		return err
	}
	for _, g := range gens {
		dir := filepath.Join(st.dir, genDirName(g))
		path := filepath.Join(dir, manifestName)
		data, err := os.ReadFile(path)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return err
		}
		var m Manifest
		if err := json.Unmarshal(data, &m); err != nil {
			// A corrupt manifest can't resurrect anything; leave it to GC.
			st.emitCorrupt(path, err)
			continue
		}
		var keep []ViewSegment
		var victims []string
		for _, v := range m.Views {
			if v.Name == name {
				victims = append(victims, v.File)
			} else {
				keep = append(keep, v)
			}
		}
		if len(victims) == 0 {
			continue
		}
		m.Views = keep
		// Rewrite the manifest before deleting segments: if we crash
		// between the two, the worst case is an orphaned segment file no
		// manifest references — dead bytes, not resurrected data.
		if err := st.commitManifest(dir, &m); err != nil {
			return err
		}
		for _, f := range victims {
			if err := os.Remove(filepath.Join(dir, f)); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
	}
	return nil
}
