package snapshot_test

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/engine"
	"github.com/warehousekit/mvpp/internal/obs"
	"github.com/warehousekit/mvpp/internal/snapshot"
)

// warehouse builds a tiny two-table warehouse with one selective view.
func warehouse(t *testing.T) (*engine.DB, algebra.Node) {
	t.Helper()
	db := engine.NewDB(4)
	pSchema := algebra.NewSchema(
		algebra.Column{Relation: "Product", Name: "Pid", Type: algebra.TypeInt},
		algebra.Column{Relation: "Product", Name: "name", Type: algebra.TypeString},
		algebra.Column{Relation: "Product", Name: "price", Type: algebra.TypeFloat},
	)
	pt, err := db.CreateTable("Product", pSchema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		name := algebra.StringVal("widget")
		if i%3 == 0 {
			name = algebra.StringVal("gadget")
		}
		if err := pt.Insert([]algebra.Value{
			algebra.IntVal(int64(i)), name, algebra.FloatVal(float64(i) * 1.5),
		}); err != nil {
			t.Fatal(err)
		}
	}
	dSchema := algebra.NewSchema(
		algebra.Column{Relation: "Division", Name: "Did", Type: algebra.TypeInt},
		algebra.Column{Relation: "Division", Name: "city", Type: algebra.TypeString},
	)
	dt, err := db.CreateTable("Division", dSchema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := dt.Insert([]algebra.Value{
			algebra.IntVal(int64(i)), algebra.StringVal("LA"),
		}); err != nil {
			t.Fatal(err)
		}
	}
	plan := algebra.NewSelect(algebra.NewScan("Product", pSchema),
		algebra.Eq(algebra.Ref("Product", "name"), algebra.StringVal("gadget")))
	return db, plan
}

// checkpointDB persists every table plus the named views of db.
func checkpointDB(t *testing.T, st *snapshot.Store, db *engine.DB, epoch, watermark uint64, views map[string]algebra.Node) *snapshot.CheckpointResult {
	t.Helper()
	in := snapshot.CheckpointInput{Epoch: epoch, Watermark: watermark}
	for _, name := range db.Tables() {
		tb, err := db.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		in.Tables = append(in.Tables, tb)
	}
	for name, plan := range views {
		v, err := db.View(name)
		if err != nil {
			t.Fatal(err)
		}
		in.Views = append(in.Views, snapshot.ViewData{Name: name, Plan: plan, Table: v.Table(), Epoch: epoch})
	}
	res, err := st.Checkpoint(in)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// tableRows renders a table's rows as sorted strings for bit-identity
// comparison.
func tableRows(t *testing.T, tb *engine.Table) []string {
	t.Helper()
	out := make([]string, 0, tb.NumRows())
	for i := 0; i < tb.NumRows(); i++ {
		out = append(out, tb.Row(i).String())
	}
	return out
}

func requireViewRows(t *testing.T, db *engine.DB, name string, want []string) {
	t.Helper()
	v, err := db.View(name)
	if err != nil {
		t.Fatal(err)
	}
	got := tableRows(t, v.Table())
	if len(got) != len(want) {
		t.Fatalf("view %s: %d rows, want %d", name, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("view %s row %d: %s, want %s", name, i, got[i], want[i])
		}
	}
}

func recoverWarehouse(t *testing.T, st *snapshot.Store, plan algebra.Node) (*engine.DB, *snapshot.RecoveryStats) {
	t.Helper()
	cold := func() (*engine.DB, error) {
		db, _ := warehouse(t)
		return db, nil
	}
	db, stats, err := snapshot.Recover(st, cold, nil,
		[]snapshot.ViewDef{{Name: "V", Plan: plan}},
		[]string{"Product", "Division"}, engine.DefaultBlockRows)
	if err != nil {
		t.Fatal(err)
	}
	return db, stats
}

func TestCheckpointRecoverRoundTrip(t *testing.T) {
	st, err := snapshot.Open(filepath.Join(t.TempDir(), "snaps"))
	if err != nil {
		t.Fatal(err)
	}
	db, plan := warehouse(t)
	if _, err := db.Materialize("V", plan); err != nil {
		t.Fatal(err)
	}
	v, _ := db.View("V")
	wantRows := tableRows(t, v.Table())

	res := checkpointDB(t, st, db, 3, 17, map[string]algebra.Node{"V": plan})
	if res.Generation != 1 {
		t.Errorf("first generation = %d, want 1", res.Generation)
	}
	if res.Bytes <= 0 || res.ViewBytes["V"] <= 0 {
		t.Errorf("checkpoint bytes = %d (view %d), want > 0", res.Bytes, res.ViewBytes["V"])
	}

	rdb, stats := recoverWarehouse(t, st, plan)
	if stats.Cold {
		t.Fatal("recovery went cold despite a committed snapshot")
	}
	if stats.Generation != 1 || stats.SnapshotEpoch != 3 || stats.Watermark != 17 {
		t.Errorf("stats = gen %d epoch %d watermark %d, want 1/3/17",
			stats.Generation, stats.SnapshotEpoch, stats.Watermark)
	}
	if stats.BaseRestored != 2 || stats.ViewsRestored != 1 || stats.ViewsRecomputed != 0 {
		t.Errorf("restored %d base, %d views, %d recomputed; want 2/1/0",
			stats.BaseRestored, stats.ViewsRestored, stats.ViewsRecomputed)
	}
	requireViewRows(t, rdb, "V", wantRows)
	for _, name := range []string{"Product", "Division"} {
		orig, _ := db.Table(name)
		got, err := rdb.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		if got.NumRows() != orig.NumRows() {
			t.Errorf("%s: restored %d rows, want %d", name, got.NumRows(), orig.NumRows())
		}
	}
}

func TestRecoverColdWithoutSnapshots(t *testing.T) {
	st, err := snapshot.Open(filepath.Join(t.TempDir(), "snaps"))
	if err != nil {
		t.Fatal(err)
	}
	_, plan := warehouse(t)
	db, stats := recoverWarehouse(t, st, plan)
	if !stats.Cold {
		t.Error("empty store must recover cold")
	}
	if stats.ViewsRecomputed != 1 {
		t.Errorf("recomputed = %d, want 1", stats.ViewsRecomputed)
	}
	if _, err := db.View("V"); err != nil {
		t.Errorf("cold boot did not materialize the view: %v", err)
	}
}

func TestDefinitionDriftRecomputes(t *testing.T) {
	st, err := snapshot.Open(filepath.Join(t.TempDir(), "snaps"))
	if err != nil {
		t.Fatal(err)
	}
	db, plan := warehouse(t)
	if _, err := db.Materialize("V", plan); err != nil {
		t.Fatal(err)
	}
	checkpointDB(t, st, db, 1, 1, map[string]algebra.Node{"V": plan})

	// The "new release" defines V differently: same name, different plan.
	pt, _ := db.Table("Product")
	drifted := algebra.NewSelect(algebra.NewScan("Product", pt.Schema),
		algebra.Eq(algebra.Ref("Product", "name"), algebra.StringVal("widget")))
	if snapshot.DefHash(drifted) == snapshot.DefHash(plan) {
		t.Fatal("test premise broken: plans hash identically")
	}
	rdb, stats := recoverWarehouse(t, st, drifted)
	if stats.Cold {
		t.Fatal("base restore should still succeed")
	}
	if stats.ViewsRestored != 0 || stats.ViewsRecomputed != 1 {
		t.Errorf("restored/recomputed = %d/%d, want 0/1", stats.ViewsRestored, stats.ViewsRecomputed)
	}
	if stats.CorruptArtifacts != 0 {
		t.Errorf("definition drift counted as corruption (%d artifacts)", stats.CorruptArtifacts)
	}
	// The recomputed view answers the *new* definition.
	v, err := rdb.View("V")
	if err != nil {
		t.Fatal(err)
	}
	if v.Table().NumRows() != 8 { // 12 products, 4 gadgets, 8 widgets
		t.Errorf("drifted view rows = %d, want 8", v.Table().NumRows())
	}
}

func TestGenerationSelectionAndGC(t *testing.T) {
	st, err := snapshot.Open(filepath.Join(t.TempDir(), "snaps"))
	if err != nil {
		t.Fatal(err)
	}
	db, plan := warehouse(t)
	if _, err := db.Materialize("V", plan); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 4; i++ {
		res := checkpointDB(t, st, db, i, i*10, map[string]algebra.Node{"V": plan})
		if res.Generation != i {
			t.Fatalf("generation %d on checkpoint %d", res.Generation, i)
		}
	}
	m, err := st.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || m.Generation != 4 || m.Watermark != 40 {
		t.Fatalf("newest manifest = %+v, want generation 4 watermark 40", m)
	}
	aged, err := st.GC(2)
	if err != nil {
		t.Fatal(err)
	}
	if aged != 2 {
		t.Errorf("GC removed %d generations, want 2", aged)
	}
	// The survivors still recover, newest first.
	_, stats := recoverWarehouse(t, st, plan)
	if stats.Generation != 4 {
		t.Errorf("recovered generation %d after GC, want 4", stats.Generation)
	}
	// GC with nothing to do is a no-op.
	if aged, err := st.GC(2); err != nil || aged != 0 {
		t.Errorf("idle GC = (%d, %v), want (0, nil)", aged, err)
	}
}

func TestDropViewSnapshotPreventsResurrection(t *testing.T) {
	st, err := snapshot.Open(filepath.Join(t.TempDir(), "snaps"))
	if err != nil {
		t.Fatal(err)
	}
	db, plan := warehouse(t)
	if _, err := db.Materialize("V", plan); err != nil {
		t.Fatal(err)
	}
	checkpointDB(t, st, db, 1, 1, map[string]algebra.Node{"V": plan})
	checkpointDB(t, st, db, 2, 2, map[string]algebra.Node{"V": plan})

	// Engine-integrated drop: DropView must scrub every generation.
	db.SetSnapshotStore(st)
	if err := db.DropView("V"); err != nil {
		t.Fatal(err)
	}

	m, err := st.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.View("V"); ok {
		t.Fatal("dropped view still in the newest manifest")
	}
	// Re-add the view (same name, same plan — the resurrection trap) and
	// recover: rows must be recomputed, not resurrected from old segments.
	_, stats := recoverWarehouse(t, st, plan)
	if stats.ViewsRestored != 0 || stats.ViewsRecomputed != 1 {
		t.Errorf("restored/recomputed = %d/%d after drop, want 0/1",
			stats.ViewsRestored, stats.ViewsRecomputed)
	}
	// The dead segment files are gone from every generation directory.
	matches, err := filepath.Glob(filepath.Join(st.Dir(), "gen-*", "view_V.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Errorf("dropped view's segment files survive: %v", matches)
	}
}

// corruptFile applies one byte-level mutation to a snapshot artifact.
func corruptFile(t *testing.T, path string, mutate func([]byte) []byte) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptionFallsBackPerArtifact(t *testing.T) {
	cases := []struct {
		name string
		// mutate damages the store after two committed generations.
		mutate func(t *testing.T, dir string)
		// wantCold: base damage in every generation forces a cold boot.
		wantCold bool
		// wantRecomputed: the view is rebuilt instead of restored.
		wantRecomputed bool
		// wantOlderGen: damage only to the newest generation falls back one.
		wantOlderGen bool
	}{
		{
			name: "bit-flipped view segment payload",
			mutate: func(t *testing.T, dir string) {
				for _, gen := range []string{"gen-0000000000000001", "gen-0000000000000002"} {
					corruptFile(t, filepath.Join(dir, gen, "view_V.seg"), func(b []byte) []byte {
						b[len(b)/2] ^= 0x01
						return b
					})
				}
			},
			wantRecomputed: true,
		},
		{
			name: "view segment truncated mid-frame",
			mutate: func(t *testing.T, dir string) {
				for _, gen := range []string{"gen-0000000000000001", "gen-0000000000000002"} {
					corruptFile(t, filepath.Join(dir, gen, "view_V.seg"), func(b []byte) []byte {
						return b[:len(b)*2/3]
					})
				}
			},
			wantRecomputed: true,
		},
		{
			name: "newest manifest deleted",
			mutate: func(t *testing.T, dir string) {
				if err := os.Remove(filepath.Join(dir, "gen-0000000000000002", "MANIFEST.json")); err != nil {
					t.Fatal(err)
				}
			},
			wantOlderGen: true,
		},
		{
			name: "newest manifest malformed",
			mutate: func(t *testing.T, dir string) {
				corruptFile(t, filepath.Join(dir, "gen-0000000000000002", "MANIFEST.json"), func(b []byte) []byte {
					return b[:len(b)/2]
				})
			},
			wantOlderGen: true,
		},
		{
			name: "base segment bit-flipped everywhere",
			mutate: func(t *testing.T, dir string) {
				for _, gen := range []string{"gen-0000000000000001", "gen-0000000000000002"} {
					corruptFile(t, filepath.Join(dir, gen, "base_Product.seg"), func(b []byte) []byte {
						b[len(b)-5] ^= 0x80
						return b
					})
				}
			},
			wantCold: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "snaps")
			st, err := snapshot.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			rec := obs.NewRecorder(nil)
			st.SetObserver(rec)
			db, plan := warehouse(t)
			if _, err := db.Materialize("V", plan); err != nil {
				t.Fatal(err)
			}
			checkpointDB(t, st, db, 1, 10, map[string]algebra.Node{"V": plan})
			checkpointDB(t, st, db, 2, 20, map[string]algebra.Node{"V": plan})
			tc.mutate(t, dir)

			// Boot never fails from corruption: the worst case is cold.
			rdb, stats := recoverWarehouse(t, st, plan)
			if stats.Cold != tc.wantCold {
				t.Errorf("cold = %v, want %v (stats %+v)", stats.Cold, tc.wantCold, stats)
			}
			if tc.wantRecomputed && (stats.ViewsRestored != 0 || stats.ViewsRecomputed != 1) {
				t.Errorf("restored/recomputed = %d/%d, want 0/1", stats.ViewsRestored, stats.ViewsRecomputed)
			}
			if tc.wantOlderGen && stats.Generation != 1 {
				t.Errorf("recovered generation %d, want fallback to 1", stats.Generation)
			}
			if tc.wantCold || tc.wantRecomputed {
				if stats.CorruptArtifacts == 0 {
					t.Error("corruption not counted in recovery stats")
				}
				found := false
				for _, ev := range rec.Trace().Events {
					if ev.Kind == obs.EvSnapshotCorrupt {
						found = true
					}
				}
				if !found {
					t.Error("no EvSnapshotCorrupt event emitted")
				}
			}
			// Whatever the damage, the view answers its definition.
			v, err := rdb.View("V")
			if err != nil {
				t.Fatal(err)
			}
			if v.Table().NumRows() != 4 {
				t.Errorf("view rows after recovery = %d, want 4", v.Table().NumRows())
			}
		})
	}
}

func TestManifestOnEmptyStore(t *testing.T) {
	st, err := snapshot.Open(filepath.Join(t.TempDir(), "fresh"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := st.Manifest()
	if err != nil || m != nil {
		t.Fatalf("empty store manifest = (%v, %v), want (nil, nil)", m, err)
	}
	if err := st.DropViewSnapshot("ghost"); err != nil {
		t.Errorf("dropping from an empty store: %v", err)
	}
}

func TestLoadViewMissing(t *testing.T) {
	st, err := snapshot.Open(filepath.Join(t.TempDir(), "snaps"))
	if err != nil {
		t.Fatal(err)
	}
	db, plan := warehouse(t)
	if _, err := db.Materialize("V", plan); err != nil {
		t.Fatal(err)
	}
	checkpointDB(t, st, db, 1, 1, nil)
	m, err := st.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.LoadView(m, "V"); err == nil {
		t.Error("loading a never-persisted view succeeded")
	} else if !errors.Is(err, engine.ErrSegmentCorrupt) && !strings.Contains(err.Error(), "no segment") {
		// Either sentinel is acceptable; the point is a clean error, not a
		// panic or a zero table.
		t.Logf("LoadView miss error: %v", err)
	}
}

// TestStatsSidecarRoundTrip: checkpoints persist each segment's derived
// catalog entry (the manifest's "stats" sidecar) and recovery installs it,
// so the restored warehouse prices queries from the snapshot's statistics
// instead of rescanning every restored table.
func TestStatsSidecarRoundTrip(t *testing.T) {
	st, err := snapshot.Open(filepath.Join(t.TempDir(), "snaps"))
	if err != nil {
		t.Fatal(err)
	}
	db, plan := warehouse(t)
	if _, err := db.Materialize("V", plan); err != nil {
		t.Fatal(err)
	}
	origCat, err := db.CatalogWithViews()
	if err != nil {
		t.Fatal(err)
	}
	checkpointDB(t, st, db, 1, 1, map[string]algebra.Node{"V": plan})

	m, err := st.Manifest()
	if err != nil || m == nil {
		t.Fatalf("manifest = (%v, %v)", m, err)
	}
	for _, s := range m.Tables {
		if s.Stats == nil || len(s.Stats.Attrs) == 0 {
			t.Fatalf("table %s persisted without a stats sidecar", s.Name)
		}
	}
	for _, v := range m.Views {
		if v.Stats == nil || len(v.Stats.Attrs) == 0 {
			t.Fatalf("view %s persisted without a stats sidecar", v.Name)
		}
	}

	// Doctor one sidecar value in the committed manifest: recovery trusting
	// the sidecar (rather than silently recomputing) must surface it.
	const doctored = 7777
	var product *snapshot.SegmentStats
	for _, s := range m.Tables {
		if s.Name == "Product" {
			product = s.Stats
		}
	}
	as := product.Attrs["Pid"]
	as.DistinctValues = doctored
	product.Attrs["Pid"] = as
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(m.Dir(), "MANIFEST.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}

	db2, rs := recoverWarehouse(t, st, plan)
	if rs.Cold || rs.ViewsRestored != 1 {
		t.Fatalf("recovery = %+v, want warm with the view restored", rs)
	}
	cat2, err := db2.CatalogWithViews()
	if err != nil {
		t.Fatal(err)
	}
	rel, err := cat2.Relation("Product")
	if err != nil {
		t.Fatal(err)
	}
	if got := rel.Attrs["Pid"].DistinctValues; got != doctored {
		t.Errorf("restored NDV(Pid) = %v, want the sidecar's %v (stats were recomputed, not installed)", got, doctored)
	}
	// Every other entry round-trips exactly.
	for _, name := range []string{"Division", "V"} {
		want, err := origCat.Relation(name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cat2.Relation(name)
		if err != nil {
			t.Fatal(err)
		}
		if got.Rows != want.Rows || got.Blocks != want.Blocks {
			t.Errorf("%s sizes = (%v, %v), want (%v, %v)", name, got.Rows, got.Blocks, want.Rows, want.Blocks)
		}
		for attr, w := range want.Attrs {
			g := got.Attrs[attr]
			if g.DistinctValues != w.DistinctValues || !g.Min.Equal(w.Min) || !g.Max.Equal(w.Max) {
				t.Errorf("%s.%s stats = %+v, want %+v", name, attr, g, w)
			}
			if len(g.Histogram) != len(w.Histogram) {
				t.Errorf("%s.%s histogram length %d, want %d", name, attr, len(g.Histogram), len(w.Histogram))
			}
		}
	}
}
