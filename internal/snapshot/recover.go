package snapshot

import (
	"fmt"
	"time"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/engine"
	"github.com/warehousekit/mvpp/internal/obs"
)

// ViewDef names one materialized view the live design wants, with its
// defining plan. Order matters: views are materialized (when they cannot be
// restored) in the given order, which must be topological if views are
// built over other views' relations.
type ViewDef struct {
	Name string
	Plan algebra.Node
	// Strategy is an opaque label carried through to the serving layer
	// (recompute/incremental); recovery does not interpret it.
	Strategy string
	// Policy is the view's refresh policy, another opaque label carried
	// through to the serving layer ("manual", "on-commit",
	// "scheduled:<interval>", "streaming"); recovery does not interpret it.
	Policy string
}

// RecoveryStats reports what one Recover call did — surfaced on /metrics
// and /views as the "last recovery" block.
type RecoveryStats struct {
	// Generation is the snapshot generation used, 0 on a cold boot.
	Generation uint64
	// SnapshotEpoch is the maintenance epoch the snapshot was taken at.
	SnapshotEpoch uint64
	// Watermark is the journal LSN floor recovery restored to; the caller
	// replays journal records past it.
	Watermark uint64
	// Cold reports a boot with no usable snapshot (first run, or base
	// segment corruption) — everything was built from scratch.
	Cold bool
	// BaseRestored counts base tables loaded from segments.
	BaseRestored int
	// ViewsRestored counts views loaded from segments.
	ViewsRestored int
	// ViewsRecomputed counts views rebuilt by executing their plans
	// (missing from the manifest, definition drift, or corruption).
	ViewsRecomputed int
	// CorruptArtifacts counts segments/manifests that failed validation.
	CorruptArtifacts int
	// Bytes is the total size of every restored segment.
	Bytes int64
	// Duration is wall-clock recovery time.
	Duration time.Duration
	// SnapshotCreatedAt is the used snapshot's commit time (zero when Cold).
	SnapshotCreatedAt time.Time
	// ViewLineage carries each restored view's lineage watermark from the
	// manifest, keyed by view name — the epoch, LSN, and fingerprint its
	// restored contents correspond to. Views recomputed during recovery
	// (and manifests predating lineage) have no entry.
	ViewLineage map[string]LineageMark
}

// Recover builds the warehouse from the newest consistent snapshot, falling
// back per-view (and wholesale, for base corruption) to recomputation:
//
//	cold      builds the full database from source when no snapshot is
//	          usable — typically synthetic generation or an ETL load. It
//	          must create every base table and leave views to Recover.
//	prep      configures a database before any view work (observer,
//	          injector, exec mode); called exactly once on whichever DB
//	          wins.
//	views     the live design's views in materialization order.
//	required  base relations the design needs; a manifest missing any of
//	          them forces a cold boot (the snapshot predates a schema
//	          change).
//
// The returned stats say how much was restored vs recomputed. Recovery
// never fails because of snapshot corruption — the worst outcome is a cold
// boot, exactly what a snapshotless system would do.
func Recover(st *Store, cold func() (*engine.DB, error), prep func(*engine.DB), views []ViewDef, required []string, blockRows int) (*engine.DB, *RecoveryStats, error) {
	start := time.Now()
	stats := &RecoveryStats{Cold: true}
	finish := func(db *engine.DB) (*engine.DB, *RecoveryStats, error) {
		stats.Duration = time.Since(start)
		if st != nil {
			obs.Emit(st.obsv, obs.EvSnapshotRecovery,
				obs.Int("generation", int64(stats.Generation)),
				obs.Bool("cold", stats.Cold),
				obs.Int("restored", int64(stats.ViewsRestored)),
				obs.Int("recomputed", int64(stats.ViewsRecomputed)),
				obs.Int("corrupt", int64(stats.CorruptArtifacts)),
				obs.Int("bytes", stats.Bytes))
		}
		return db, stats, nil
	}

	var m *Manifest
	if st != nil {
		var err error
		m, err = st.Manifest()
		if err != nil {
			return nil, nil, err
		}
	}
	var db *engine.DB
	if m != nil {
		db = st.tryRestoreBase(m, required, blockRows, stats)
	}
	if db == nil {
		// Cold boot: no snapshot, incomplete coverage, or base corruption.
		var err error
		db, err = cold()
		if err != nil {
			return nil, nil, err
		}
		if prep != nil {
			prep(db)
		}
		for _, v := range views {
			if _, err := db.Materialize(v.Name, v.Plan); err != nil {
				return nil, nil, fmt.Errorf("snapshot: materializing view %s on cold boot: %w", v.Name, err)
			}
			stats.ViewsRecomputed++
		}
		return finish(db)
	}
	if prep != nil {
		prep(db)
	}
	stats.Cold = false
	stats.Generation = m.Generation
	stats.SnapshotEpoch = m.Epoch
	stats.Watermark = m.Watermark
	stats.SnapshotCreatedAt = m.CreatedAt
	for _, v := range views {
		if st.tryRestoreView(db, m, v, stats) {
			continue
		}
		// Fallback: rebuild this one view from the (restored) base tables.
		if _, err := db.Materialize(v.Name, v.Plan); err != nil {
			return nil, nil, fmt.Errorf("snapshot: recomputing view %s: %w", v.Name, err)
		}
		stats.ViewsRecomputed++
	}
	return finish(db)
}

// tryRestoreBase loads every base table from the manifest into a fresh DB.
// It returns nil — demanding a cold boot — when the manifest is missing a
// required relation or any base segment fails to decode.
func (st *Store) tryRestoreBase(m *Manifest, required []string, blockRows int, stats *RecoveryStats) *engine.DB {
	have := make(map[string]bool, len(m.Tables))
	for _, s := range m.Tables {
		have[s.Name] = true
	}
	for _, r := range required {
		if !have[r] {
			return nil
		}
	}
	tables, err := st.LoadBase(m)
	if err != nil {
		stats.CorruptArtifacts++
		return nil
	}
	db := engine.NewDB(blockRows)
	for _, t := range tables {
		if err := db.RestoreTable(t); err != nil {
			return nil
		}
		stats.BaseRestored++
		stats.Bytes += segmentBytes(m, t.Name)
	}
	return db
}

// tryRestoreView restores one view if the manifest has a segment for it
// under a matching definition hash that decodes cleanly. Definition drift
// is silent (the design changed; nothing is corrupt); decode failures
// count as corruption.
func (st *Store) tryRestoreView(db *engine.DB, m *Manifest, v ViewDef, stats *RecoveryStats) bool {
	vs, ok := m.View(v.Name)
	if !ok {
		return false
	}
	if vs.DefHash != DefHash(v.Plan) {
		return false
	}
	t, err := st.LoadView(m, v.Name)
	if err != nil {
		stats.CorruptArtifacts++
		return false
	}
	if _, err := db.RestoreView(v.Name, v.Plan, t); err != nil {
		// Schema mismatch despite a matching hash — treat as corrupt.
		st.emitCorrupt(v.Name, err)
		stats.CorruptArtifacts++
		return false
	}
	st.ctrRestored.Inc()
	stats.ViewsRestored++
	stats.Bytes += vs.Bytes
	if vs.LineageEpoch > 0 || vs.LineageLSN > 0 || vs.LineageFingerprint != "" {
		if stats.ViewLineage == nil {
			stats.ViewLineage = make(map[string]LineageMark)
		}
		stats.ViewLineage[v.Name] = LineageMark{
			Epoch:       vs.LineageEpoch,
			LSN:         vs.LineageLSN,
			Fingerprint: vs.LineageFingerprint,
		}
	}
	return true
}

func segmentBytes(m *Manifest, name string) int64 {
	for _, s := range m.Tables {
		if s.Name == name {
			return s.Bytes
		}
	}
	return 0
}
