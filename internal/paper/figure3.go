package paper

import (
	"fmt"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/catalog"
)

// PlanSpec names a query plan.
type PlanSpec struct {
	Name string
	Freq float64
	Plan algebra.Node
}

// Figure3Plans builds the four query plans exactly as the paper's Figure 3
// MVPP structures them, so that merging them by common subexpression yields
// the paper's vertex set:
//
//	tmp1 = σ city="LA"(Division)           shared by Q1, Q2, Q3
//	tmp2 = Product ⋈ tmp1                  shared by Q1, Q2, Q3
//	tmp3 = tmp2 ⋈ Part                     Q2
//	tmp4 = Order ⋈ Customer                shared by Q3, Q4
//	tmp5 = σ date>7/1/96(tmp4)             Q3
//	tmp6 = tmp2 ⋈ tmp5                     Q3
//	tmp7 = σ quantity>100(tmp4)            Q4
//
// with each query's projection on top. The plans are built against the
// catalog's schemas; the Figure-3 reproduction and the core tests both load
// them.
func Figure3Plans(cat *catalog.Catalog) ([]PlanSpec, error) {
	scan := func(name string) (*algebra.Scan, error) { return cat.Scan(name) }
	pd, err := scan("Product")
	if err != nil {
		return nil, err
	}
	div, err := scan("Division")
	if err != nil {
		return nil, err
	}
	pt, err := scan("Part")
	if err != nil {
		return nil, err
	}
	ord, err := scan("Order")
	if err != nil {
		return nil, err
	}
	cust, err := scan("Customer")
	if err != nil {
		return nil, err
	}

	july1, err := algebra.ParseDate("7/1/96")
	if err != nil {
		return nil, err
	}

	tmp1 := algebra.NewSelect(div, algebra.Eq(algebra.Ref("Division", "city"), algebra.StringVal("LA")))
	pdDid := []algebra.JoinCond{{Left: algebra.Ref("Product", "Did"), Right: algebra.Ref("Division", "Did")}}
	tmp2 := algebra.NewJoin(pd, tmp1, pdDid)
	tmp3 := algebra.NewJoin(tmp2, pt, []algebra.JoinCond{{Left: algebra.Ref("Product", "Pid"), Right: algebra.Ref("Part", "Pid")}})
	tmp4 := algebra.NewJoin(ord, cust, []algebra.JoinCond{{Left: algebra.Ref("Order", "Cid"), Right: algebra.Ref("Customer", "Cid")}})
	tmp5 := algebra.NewSelect(tmp4, algebra.Compare(
		algebra.ColOperand(algebra.Ref("Order", "date")), algebra.OpGt, algebra.LitOperand(july1)))
	tmp6 := algebra.NewJoin(tmp2, tmp5, []algebra.JoinCond{{Left: algebra.Ref("Product", "Pid"), Right: algebra.Ref("Order", "Pid")}})
	tmp7 := algebra.NewSelect(tmp4, algebra.Compare(
		algebra.ColOperand(algebra.Ref("Order", "quantity")), algebra.OpGt, algebra.LitOperand(algebra.IntVal(100))))

	specs := []PlanSpec{
		{Q1, Frequencies[Q1], algebra.NewProject(tmp2, []algebra.ColumnRef{algebra.Ref("Product", "name")})},
		{Q2, Frequencies[Q2], algebra.NewProject(tmp3, []algebra.ColumnRef{algebra.Ref("Part", "name")})},
		{Q3, Frequencies[Q3], algebra.NewProject(tmp6, []algebra.ColumnRef{
			algebra.Ref("Customer", "name"), algebra.Ref("Product", "name"), algebra.Ref("Order", "quantity")})},
		{Q4, Frequencies[Q4], algebra.NewProject(tmp7, []algebra.ColumnRef{
			algebra.Ref("Customer", "city"), algebra.Ref("Order", "date")})},
	}
	for _, s := range specs {
		if err := algebra.Validate(s.Plan); err != nil {
			return nil, fmt.Errorf("paper: figure 3 plan %s: %w", s.Name, err)
		}
	}
	return specs, nil
}
