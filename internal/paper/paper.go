// Package paper encodes the running example of Yang, Karlapalem & Li: the
// five member-database relations with the statistics of Table 1, the four
// warehouse queries of §2 with their access frequencies, and the update
// frequencies of the base relations. Every experiment reproduction loads
// this package.
//
// The package is deliberately dependency-light (catalog + sqlparse only) so
// that any layer's tests can import it; figure/table regeneration lives in
// internal/repro.
package paper

import (
	"fmt"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/catalog"
	"github.com/warehousekit/mvpp/internal/sqlparse"
)

// Query names.
const (
	Q1 = "Q1"
	Q2 = "Q2"
	Q3 = "Q3"
	Q4 = "Q4"
)

// SQL holds the four warehouse queries of §2, written against the full
// relation names (the paper abbreviates Product as Pd etc.).
var SQL = map[string]string{
	Q1: `SELECT Product.name FROM Product, Division WHERE Division.city = 'LA' AND Product.Did = Division.Did`,
	Q2: `SELECT Part.name FROM Product, Part, Division WHERE Division.city = 'LA' AND Product.Did = Division.Did AND Part.Pid = Product.Pid`,
	Q3: `SELECT Customer.name, Product.name, quantity FROM Product, Division, Order, Customer WHERE Division.city = 'LA' AND Product.Did = Division.Did AND Product.Pid = Order.Pid AND Order.Cid = Customer.Cid AND date > 7/1/96`,
	Q4: `SELECT Customer.city, date FROM Order, Customer WHERE quantity > 100 AND Order.Cid = Customer.Cid`,
}

// QueryOrder lists the queries in paper order.
var QueryOrder = []string{Q1, Q2, Q3, Q4}

// Frequencies are the per-period query access frequencies fq (§2: "10 for
// query1, 0.5 for query2, 0.8 for query3, and 5 for query4").
var Frequencies = map[string]float64{
	Q1: 10,
	Q2: 0.5,
	Q3: 0.8,
	Q4: 5,
}

// Table1Row is one row of the paper's Table 1.
type Table1Row struct {
	Relation    string
	Rows        float64
	Blocks      float64
	Selectivity string // the paper's s / js column, as printed
}

// Table1 lists the statistics exactly as the paper's Table 1 prints them
// (including the join-result rows used as pinned sizes).
var Table1 = []Table1Row{
	{"Product", 30000, 3000, "js = 1/30k"},
	{"Division", 5000, 500, "s = 0.02"},
	{"Order", 50000, 6000, "js = 1/5k"},
	{"Customer", 20000, 2000, "s = 0.5"},
	{"Part", 80000, 10000, "js = 1/20k"},
	{"Product⋈Division", 30000, 5000, ""},
	{"Product⋈Division⋈Part", 80000, 20000, ""},
	{"Order⋈Customer", 25000, 5000, ""},
	{"Product⋈Division⋈Order⋈Customer", 25000, 5000, ""},
}

// NewCatalog builds the Table-1 catalog: relation sizes, attribute
// statistics consistent with the paper's selectivities, pinned predicate
// selectivities (s = 0.02 for city="LA", s = 0.5 for the Order range
// predicates), and pinned join-result sizes for paper-mode estimation.
// All base relations are updated once per period (fu = 1).
func NewCatalog() (*catalog.Catalog, error) {
	c := catalog.New()

	rels := []*catalog.Relation{
		{
			Name: "Product",
			Schema: algebra.NewSchema(
				algebra.Column{Relation: "Product", Name: "Pid", Type: algebra.TypeInt},
				algebra.Column{Relation: "Product", Name: "name", Type: algebra.TypeString},
				algebra.Column{Relation: "Product", Name: "Did", Type: algebra.TypeInt},
			),
			Rows: 30000, Blocks: 3000, UpdateFrequency: 1,
			Attrs: map[string]catalog.AttrStats{
				"Pid":  {DistinctValues: 30000},
				"Did":  {DistinctValues: 5000},
				"name": {DistinctValues: 25000},
			},
		},
		{
			Name: "Division",
			Schema: algebra.NewSchema(
				algebra.Column{Relation: "Division", Name: "Did", Type: algebra.TypeInt},
				algebra.Column{Relation: "Division", Name: "name", Type: algebra.TypeString},
				algebra.Column{Relation: "Division", Name: "city", Type: algebra.TypeString},
			),
			Rows: 5000, Blocks: 500, UpdateFrequency: 1,
			Attrs: map[string]catalog.AttrStats{
				"Did":  {DistinctValues: 5000},
				"name": {DistinctValues: 4000},
				"city": {DistinctValues: 50}, // 1/50 = the paper's s = 0.02
			},
		},
		{
			Name: "Order",
			Schema: algebra.NewSchema(
				algebra.Column{Relation: "Order", Name: "Pid", Type: algebra.TypeInt},
				algebra.Column{Relation: "Order", Name: "Cid", Type: algebra.TypeInt},
				algebra.Column{Relation: "Order", Name: "quantity", Type: algebra.TypeInt},
				algebra.Column{Relation: "Order", Name: "date", Type: algebra.TypeDate},
			),
			Rows: 50000, Blocks: 6000, UpdateFrequency: 1,
			Attrs: map[string]catalog.AttrStats{
				"Pid":      {DistinctValues: 30000},
				"Cid":      {DistinctValues: 20000},
				"quantity": {DistinctValues: 200, Min: algebra.IntVal(1), Max: algebra.IntVal(200)},
				"date":     {DistinctValues: 365},
			},
		},
		{
			Name: "Customer",
			Schema: algebra.NewSchema(
				algebra.Column{Relation: "Customer", Name: "Cid", Type: algebra.TypeInt},
				algebra.Column{Relation: "Customer", Name: "name", Type: algebra.TypeString},
				algebra.Column{Relation: "Customer", Name: "city", Type: algebra.TypeString},
			),
			Rows: 20000, Blocks: 2000, UpdateFrequency: 1,
			Attrs: map[string]catalog.AttrStats{
				"Cid":  {DistinctValues: 20000},
				"name": {DistinctValues: 18000},
				"city": {DistinctValues: 50},
			},
		},
		{
			Name: "Part",
			Schema: algebra.NewSchema(
				algebra.Column{Relation: "Part", Name: "Tid", Type: algebra.TypeInt},
				algebra.Column{Relation: "Part", Name: "name", Type: algebra.TypeString},
				algebra.Column{Relation: "Part", Name: "Pid", Type: algebra.TypeInt},
				algebra.Column{Relation: "Part", Name: "supplier", Type: algebra.TypeString},
			),
			Rows: 80000, Blocks: 10000, UpdateFrequency: 1,
			Attrs: map[string]catalog.AttrStats{
				"Tid":      {DistinctValues: 80000},
				"name":     {DistinctValues: 60000},
				"Pid":      {DistinctValues: 30000},
				"supplier": {DistinctValues: 500},
			},
		},
	}
	for _, r := range rels {
		if err := c.AddRelation(r); err != nil {
			return nil, fmt.Errorf("paper: %w", err)
		}
	}

	// Pinned selectivities, exactly as Table 1 states them.
	july1, err := algebra.ParseDate("7/1/96")
	if err != nil {
		return nil, fmt.Errorf("paper: %w", err)
	}
	pins := []struct {
		pred algebra.Predicate
		s    float64
	}{
		{algebra.Eq(algebra.Ref("Division", "city"), algebra.StringVal("LA")), 0.02},
		{algebra.Compare(algebra.ColOperand(algebra.Ref("Order", "date")), algebra.OpGt, algebra.LitOperand(july1)), 0.5},
		{algebra.Compare(algebra.ColOperand(algebra.Ref("Order", "quantity")), algebra.OpGt, algebra.LitOperand(algebra.IntVal(100))), 0.5},
	}
	for _, p := range pins {
		if err := c.SetPredicateSelectivity(p.pred, p.s); err != nil {
			return nil, fmt.Errorf("paper: %w", err)
		}
	}

	// Pinned join-result sizes from Table 1 (paper-mode estimation).
	sizes := []struct {
		rels []string
		sz   catalog.JoinSize
	}{
		{[]string{"Product", "Division"}, catalog.JoinSize{Rows: 30000, Blocks: 5000}},
		{[]string{"Product", "Division", "Part"}, catalog.JoinSize{Rows: 80000, Blocks: 20000}},
		{[]string{"Order", "Customer"}, catalog.JoinSize{Rows: 25000, Blocks: 5000}},
		{[]string{"Product", "Division", "Order", "Customer"}, catalog.JoinSize{Rows: 25000, Blocks: 5000}},
	}
	for _, s := range sizes {
		if err := c.PinJoinSize(s.rels, s.sz); err != nil {
			return nil, fmt.Errorf("paper: %w", err)
		}
	}
	return c, nil
}

// Queries binds the four warehouse queries against the catalog, in paper
// order.
func Queries(cat *catalog.Catalog) ([]*sqlparse.Query, error) {
	out := make([]*sqlparse.Query, 0, len(QueryOrder))
	for _, name := range QueryOrder {
		q, err := sqlparse.BindQuery(cat, name, SQL[name])
		if err != nil {
			return nil, fmt.Errorf("paper: %w", err)
		}
		out = append(out, q)
	}
	return out, nil
}

// Example bundles everything a reproduction needs.
type Example struct {
	Catalog     *catalog.Catalog
	Queries     []*sqlparse.Query
	Frequencies map[string]float64
}

// Load builds the complete paper example.
func Load() (*Example, error) {
	cat, err := NewCatalog()
	if err != nil {
		return nil, err
	}
	qs, err := Queries(cat)
	if err != nil {
		return nil, err
	}
	fq := make(map[string]float64, len(Frequencies))
	for k, v := range Frequencies {
		fq[k] = v
	}
	return &Example{Catalog: cat, Queries: qs, Frequencies: fq}, nil
}
