package paper

import (
	"testing"

	"github.com/warehousekit/mvpp/internal/algebra"
)

func TestNewCatalogRelationSizes(t *testing.T) {
	c, err := NewCatalog()
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name          string
		rows, blocks  float64
		schemaColumns int
	}{
		{"Product", 30000, 3000, 3},
		{"Division", 5000, 500, 3},
		{"Order", 50000, 6000, 4},
		{"Customer", 20000, 2000, 3},
		{"Part", 80000, 10000, 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rel, err := c.Relation(tt.name)
			if err != nil {
				t.Fatal(err)
			}
			if rel.Rows != tt.rows || rel.Blocks != tt.blocks {
				t.Errorf("size = %v rows / %v blocks, want %v / %v", rel.Rows, rel.Blocks, tt.rows, tt.blocks)
			}
			if rel.Schema.Len() != tt.schemaColumns {
				t.Errorf("schema width = %d, want %d", rel.Schema.Len(), tt.schemaColumns)
			}
			if rel.UpdateFrequency != 1 {
				t.Errorf("fu = %v, want 1", rel.UpdateFrequency)
			}
		})
	}
}

func TestPaperSelectivities(t *testing.T) {
	c, err := NewCatalog()
	if err != nil {
		t.Fatal(err)
	}
	la := algebra.Eq(algebra.Ref("Division", "city"), algebra.StringVal("LA"))
	if got := c.PredicateSelectivity(la); got != 0.02 {
		t.Errorf("s(city=LA) = %v, want 0.02", got)
	}
	q100 := algebra.Compare(
		algebra.ColOperand(algebra.Ref("Order", "quantity")), algebra.OpGt,
		algebra.LitOperand(algebra.IntVal(100)))
	if got := c.PredicateSelectivity(q100); got != 0.5 {
		t.Errorf("s(quantity>100) = %v, want 0.5", got)
	}
	july1, err := algebra.ParseDate("7/1/96")
	if err != nil {
		t.Fatal(err)
	}
	dt := algebra.Compare(
		algebra.ColOperand(algebra.Ref("Order", "date")), algebra.OpGt,
		algebra.LitOperand(july1))
	if got := c.PredicateSelectivity(dt); got != 0.5 {
		t.Errorf("s(date>7/1/96) = %v, want 0.5", got)
	}
}

func TestPaperJoinSelectivities(t *testing.T) {
	c, err := NewCatalog()
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		cond algebra.JoinCond
		want float64
	}{
		{"Product-Division", algebra.JoinCond{Left: algebra.Ref("Product", "Did"), Right: algebra.Ref("Division", "Did")}, 1.0 / 5000},
		{"Part-Product", algebra.JoinCond{Left: algebra.Ref("Part", "Pid"), Right: algebra.Ref("Product", "Pid")}, 1.0 / 30000},
		{"Order-Customer", algebra.JoinCond{Left: algebra.Ref("Order", "Cid"), Right: algebra.Ref("Customer", "Cid")}, 1.0 / 20000},
		{"Order-Product", algebra.JoinCond{Left: algebra.Ref("Order", "Pid"), Right: algebra.Ref("Product", "Pid")}, 1.0 / 30000},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := c.JoinSelectivity(tt.cond); got != tt.want {
				t.Errorf("js = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestPaperPinnedJoinSizes(t *testing.T) {
	c, err := NewCatalog()
	if err != nil {
		t.Fatal(err)
	}
	sz, ok := c.PinnedJoinSize([]string{"Division", "Product"})
	if !ok || sz.Blocks != 5000 || sz.Rows != 30000 {
		t.Errorf("Product⋈Division pin = %+v, %v", sz, ok)
	}
	sz, ok = c.PinnedJoinSize([]string{"Customer", "Order"})
	if !ok || sz.Blocks != 5000 || sz.Rows != 25000 {
		t.Errorf("Order⋈Customer pin = %+v, %v", sz, ok)
	}
}

func TestQueriesBind(t *testing.T) {
	ex, err := Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Queries) != 4 {
		t.Fatalf("queries = %d", len(ex.Queries))
	}
	wantRels := map[string]int{Q1: 2, Q2: 3, Q3: 4, Q4: 2}
	wantJoins := map[string]int{Q1: 1, Q2: 2, Q3: 3, Q4: 1}
	wantSels := map[string]int{Q1: 1, Q2: 1, Q3: 2, Q4: 1}
	for _, q := range ex.Queries {
		if got := len(q.Relations); got != wantRels[q.Name] {
			t.Errorf("%s relations = %d, want %d", q.Name, got, wantRels[q.Name])
		}
		if got := len(q.JoinConds); got != wantJoins[q.Name] {
			t.Errorf("%s join conds = %d, want %d", q.Name, got, wantJoins[q.Name])
		}
		if got := len(q.Selections); got != wantSels[q.Name] {
			t.Errorf("%s selections = %d, want %d", q.Name, got, wantSels[q.Name])
		}
	}
}

func TestFrequencies(t *testing.T) {
	ex, err := Load()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{Q1: 10, Q2: 0.5, Q3: 0.8, Q4: 5}
	for q, f := range want {
		if ex.Frequencies[q] != f {
			t.Errorf("fq(%s) = %v, want %v", q, ex.Frequencies[q], f)
		}
	}
	// Load copies the map: mutating the copy must not affect the package
	// variable.
	ex.Frequencies[Q1] = 999
	if Frequencies[Q1] != 10 {
		t.Error("Load aliases the package Frequencies map")
	}
}

func TestTable1RowsComplete(t *testing.T) {
	if len(Table1) != 9 {
		t.Errorf("Table1 rows = %d, want 9", len(Table1))
	}
	c, err := NewCatalog()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range Table1[:5] {
		rel, err := c.Relation(row.Relation)
		if err != nil {
			t.Errorf("Table1 row %s not in catalog: %v", row.Relation, err)
			continue
		}
		if rel.Rows != row.Rows || rel.Blocks != row.Blocks {
			t.Errorf("%s: catalog %v/%v, Table1 %v/%v", row.Relation, rel.Rows, rel.Blocks, row.Rows, row.Blocks)
		}
	}
}
