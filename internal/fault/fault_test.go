package fault

import (
	"errors"
	"testing"
	"time"
)

func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	if err := in.Hit(SiteEngineExecute); err != nil {
		t.Fatalf("nil injector returned %v", err)
	}
	if c := in.Total(); c != (Counts{}) {
		t.Fatalf("nil injector counts = %+v", c)
	}
	in.Disarm()
	in.SetRule(SiteEngineRefresh, Rule{ErrProb: 1})
}

func TestErrProbOneAlwaysFails(t *testing.T) {
	in := New(1, Plan{SiteEngineRefresh: {ErrProb: 1}})
	for i := 0; i < 10; i++ {
		err := in.Hit(SiteEngineRefresh)
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: err = %v, want ErrInjected", i, err)
		}
	}
	// Other sites are untouched.
	if err := in.Hit(SiteEngineExecute); err != nil {
		t.Fatalf("unconfigured site returned %v", err)
	}
	if c := in.SiteCounts(SiteEngineRefresh); c.Errors != 10 {
		t.Fatalf("site errors = %d, want 10", c.Errors)
	}
}

func TestPanicProbOnePanics(t *testing.T) {
	in := New(1, Plan{SiteServeWorker: {PanicProb: 1}})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected an injected panic")
		}
		if c := in.SiteCounts(SiteServeWorker); c.Panics != 1 {
			t.Fatalf("panics = %d, want 1", c.Panics)
		}
	}()
	in.Hit(SiteServeWorker)
}

func TestSlowProbDelays(t *testing.T) {
	in := New(1, Plan{SiteEngineExecute: {SlowProb: 1, Delay: 2 * time.Millisecond}})
	start := time.Now()
	if err := in.Hit(SiteEngineExecute); err != nil {
		t.Fatalf("slow-only rule returned %v", err)
	}
	if d := time.Since(start); d < 2*time.Millisecond {
		t.Fatalf("delay = %v, want ≥ 2ms", d)
	}
	if c := in.SiteCounts(SiteEngineExecute); c.Delays != 1 {
		t.Fatalf("delays = %d, want 1", c.Delays)
	}
}

func TestDeterministicAcrossSeeds(t *testing.T) {
	draw := func(seed int64) []bool {
		in := New(seed, Plan{SiteEngineRefresh: {ErrProb: 0.5}})
		out := make([]bool, 40)
		for i := range out {
			out[i] = in.Hit(SiteEngineRefresh) != nil
		}
		return out
	}
	a, b := draw(7), draw(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := draw(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestDisarmAndSetRule(t *testing.T) {
	in := New(1, Plan{SiteEngineRefresh: {ErrProb: 1}})
	if err := in.Hit(SiteEngineRefresh); err == nil {
		t.Fatal("armed injector did not fail")
	}
	in.Disarm()
	if err := in.Hit(SiteEngineRefresh); err != nil {
		t.Fatalf("disarmed injector returned %v", err)
	}
	in.SetRule(SiteEngineApplyDeltas, Rule{ErrProb: 1})
	if err := in.Hit(SiteEngineApplyDeltas); !errors.Is(err, ErrInjected) {
		t.Fatalf("SetRule site returned %v, want ErrInjected", err)
	}
	if total := in.Total(); total.Errors != 2 {
		t.Fatalf("total errors = %d, want 2", total.Errors)
	}
}
