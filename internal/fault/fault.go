// Package fault is a deterministic, seeded fault injector for the serving
// stack. It mirrors the nil-off hook discipline of internal/obs: components
// hold a *Injector that is nil when chaos is off, every injection site is a
// single nil-guarded call (Hit), and a nil injector costs one predictable
// branch.
//
// An Injector is armed with a Plan: a map from named Sites (fixed points in
// internal/engine and internal/serve) to Rules giving independent
// probabilities for three fault classes — injected errors, injected panics,
// and latency spikes. Draws come from one seeded math/rand source, so a
// single-goroutine call sequence is fully reproducible; under concurrency
// the per-call outcomes still follow the seeded stream, only their
// interleaving varies.
//
// The injector exists to *drive* fault tolerance, not to model it: tests
// and the chaos example arm rules with probability 1 to force a failure
// deterministically, then Disarm to watch the serving layer recover.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/warehousekit/mvpp/internal/obs"
)

// Site names one injection point. The constants below are every site the
// engine and serving layer expose; Hit on an unknown site is a no-op.
type Site string

// The injection sites.
const (
	// SiteEngineExecute fires on every DB.Execute — the query read path
	// (latency spikes here model slow scans; errors model failed reads).
	SiteEngineExecute Site = "engine.execute"
	// SiteEngineRefresh fires on DB.Refresh — full view recomputation.
	SiteEngineRefresh Site = "engine.refresh"
	// SiteEngineIncrementalRefresh fires on DB.IncrementalRefresh after the
	// incrementability gate — delta application to a view.
	SiteEngineIncrementalRefresh Site = "engine.incremental_refresh"
	// SiteEngineApplyDeltas fires on DB.ApplyDeltas — folding pending
	// deltas into the base tables.
	SiteEngineApplyDeltas Site = "engine.apply_deltas"
	// SiteServeWorker fires in a router worker just before it executes an
	// admitted request (panics here exercise worker pool recovery).
	SiteServeWorker Site = "serve.worker"
	// SiteServeEpoch fires at the top of a maintenance epoch.
	SiteServeEpoch Site = "serve.epoch"
	// SiteJournalAppend fires when the delta journal appends a record.
	SiteJournalAppend Site = "journal.append"
	// SiteJournalTruncate fires inside FileJournal.Truncate after the
	// compacted replacement file is written but before it is renamed over
	// the live journal — an injected error simulates a crash mid-compaction
	// (the original journal survives intact, a torn .compact file is left
	// behind).
	SiteJournalTruncate Site = "journal.truncate"
	// SiteSnapshotSegmentWrite fires once per columnar segment a snapshot
	// checkpoint writes — an injected error leaves a genuinely torn segment
	// file on disk (a half-written payload), simulating a crash mid-write.
	SiteSnapshotSegmentWrite Site = "snapshot.segment_write"
	// SiteSnapshotManifestWrite fires after a checkpoint's manifest is
	// staged to its temporary file but before the atomic rename — an
	// injected error simulates a crash just before the commit point (the
	// new generation stays invisible to recovery).
	SiteSnapshotManifestWrite Site = "snapshot.manifest_write"
	// SiteSnapshotManifestRename fires immediately after the manifest
	// rename — an injected error simulates a crash just after the commit
	// point, before the journal is compacted or old generations aged out.
	SiteSnapshotManifestRename Site = "snapshot.manifest_rename"
	// SiteSnapshotReplay fires once per segment decoded during snapshot
	// recovery — an injected error is treated like a corrupt segment and
	// exercises the per-view fallback to recomputation.
	SiteSnapshotReplay Site = "snapshot.replay"
)

// ErrInjected is the error every injected failure wraps; callers
// distinguish chaos from organic failures with errors.Is.
var ErrInjected = errors.New("fault: injected failure")

// Rule gives one site's independent fault probabilities, each in [0,1].
// The zero Rule injects nothing.
type Rule struct {
	// ErrProb is the probability Hit returns an injected error.
	ErrProb float64
	// PanicProb is the probability Hit panics (with a value wrapping the
	// site name), exercising the caller's recovery path.
	PanicProb float64
	// SlowProb is the probability Hit sleeps for Delay before returning —
	// a latency spike.
	SlowProb float64
	// Delay is the latency-spike duration (only meaningful with SlowProb).
	Delay time.Duration
}

// Plan maps sites to their rules. Sites absent from the plan never inject.
type Plan map[Site]Rule

// Counts tallies what one site (or the whole injector) has injected.
type Counts struct {
	Errors int64
	Panics int64
	Delays int64
}

// Injector evaluates rules at named sites. All methods are safe for
// concurrent use, and every method is a no-op on a nil receiver, so
// components hold an unconditional *Injector field.
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	plan   Plan
	counts map[Site]*Counts

	obsv obs.Observer
	ctr  *obs.Counter
}

// New builds an injector over a seeded random stream. The plan is copied.
func New(seed int64, plan Plan) *Injector {
	in := &Injector{
		rng:    rand.New(rand.NewSource(seed)),
		plan:   make(Plan, len(plan)),
		counts: make(map[Site]*Counts),
	}
	for site, rule := range plan {
		in.plan[site] = rule
	}
	return in
}

// SetObserver wires injection events (obs.EvFault) and the
// obs.CtrFaultsInjected counter into an observer; nil disables again.
func (in *Injector) SetObserver(o obs.Observer) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.obsv = o
	in.ctr = obs.CounterOf(o, obs.CtrFaultsInjected)
}

// SetRule replaces one site's rule (a zero Rule turns the site off).
func (in *Injector) SetRule(site Site, r Rule) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.plan[site] = r
}

// Disarm clears every rule: the injector stays wired but injects nothing,
// letting a chaos run switch to a recovery phase without rewiring hooks.
func (in *Injector) Disarm() {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.plan = make(Plan)
}

// SiteCounts returns what has been injected at one site.
func (in *Injector) SiteCounts(site Site) Counts {
	if in == nil {
		return Counts{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if c := in.counts[site]; c != nil {
		return *c
	}
	return Counts{}
}

// Total sums the injected counts over all sites.
func (in *Injector) Total() Counts {
	if in == nil {
		return Counts{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var t Counts
	for _, c := range in.counts {
		t.Errors += c.Errors
		t.Panics += c.Panics
		t.Delays += c.Delays
	}
	return t
}

// Hit evaluates the site's rule: it may sleep (latency spike), then panic,
// then return an injected error — or, on a nil injector, unknown site, or
// losing draws, do nothing and return nil. The mutex is released before
// sleeping or panicking, so a spike never blocks other sites.
func (in *Injector) Hit(site Site) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	rule, ok := in.plan[site]
	if !ok || (rule.ErrProb <= 0 && rule.PanicProb <= 0 && rule.SlowProb <= 0) {
		in.mu.Unlock()
		return nil
	}
	// Draw all three decisions in a fixed order so a given seed yields a
	// reproducible outcome stream.
	slow := rule.SlowProb > 0 && in.rng.Float64() < rule.SlowProb
	pan := rule.PanicProb > 0 && in.rng.Float64() < rule.PanicProb
	errd := rule.ErrProb > 0 && in.rng.Float64() < rule.ErrProb
	c := in.counts[site]
	if c == nil {
		c = &Counts{}
		in.counts[site] = c
	}
	if slow {
		c.Delays++
	}
	if pan {
		c.Panics++
	}
	if errd && !pan {
		c.Errors++
	}
	obsv, ctr := in.obsv, in.ctr
	in.mu.Unlock()

	if slow {
		ctr.Inc()
		obs.Emit(obsv, obs.EvFault, obs.String("site", string(site)), obs.String("kind", "delay"))
		time.Sleep(rule.Delay)
	}
	if pan {
		ctr.Inc()
		obs.Emit(obsv, obs.EvFault, obs.String("site", string(site)), obs.String("kind", "panic"))
		panic(fmt.Sprintf("fault: injected panic at %s", site))
	}
	if errd {
		ctr.Inc()
		obs.Emit(obsv, obs.EvFault, obs.String("site", string(site)), obs.String("kind", "error"))
		return fmt.Errorf("%w at %s", ErrInjected, site)
	}
	return nil
}
