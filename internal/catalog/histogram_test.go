package catalog

import (
	"math"
	"testing"

	"github.com/warehousekit/mvpp/internal/algebra"
)

func uniformHistogram() AttrStats {
	// 10 equi-depth buckets over a uniform 1..200 domain.
	hist := make([]float64, 10)
	for i := range hist {
		hist[i] = float64((i + 1) * 20)
	}
	return AttrStats{
		DistinctValues: 200,
		Min:            algebra.IntVal(1),
		Max:            algebra.IntVal(200),
		Histogram:      hist,
	}
}

func skewedHistogram() AttrStats {
	// 90% of rows below 10, the rest spread to 1000.
	return AttrStats{
		DistinctValues: 1000,
		Min:            algebra.IntVal(0),
		Max:            algebra.IntVal(1000),
		Histogram:      []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 1000},
	}
}

func TestHistogramSelectivityUniform(t *testing.T) {
	stats := uniformHistogram()
	tests := []struct {
		bound float64
		want  float64
	}{
		{0, 0},
		{20, 0.1},
		{100, 0.5},
		{200, 1},
		{500, 1},
		{10, 0.05},
	}
	for _, tt := range tests {
		got, ok := stats.HistogramSelectivity(tt.bound)
		if !ok {
			t.Fatalf("histogram missing for bound %v", tt.bound)
		}
		if math.Abs(got-tt.want) > 0.011 {
			t.Errorf("P(v ≤ %v) = %v, want ≈ %v", tt.bound, got, tt.want)
		}
	}
}

func TestHistogramSelectivitySkewed(t *testing.T) {
	stats := skewedHistogram()
	// min/max interpolation would say P(v ≤ 9) ≈ 0.009; the histogram knows
	// it is ≈ 0.9.
	got, ok := stats.HistogramSelectivity(9)
	if !ok {
		t.Fatal("histogram missing")
	}
	if got < 0.85 || got > 0.95 {
		t.Errorf("P(v ≤ 9) = %v, want ≈ 0.9", got)
	}
}

func TestHistogramMissing(t *testing.T) {
	var stats AttrStats
	if _, ok := stats.HistogramSelectivity(5); ok {
		t.Error("empty stats reported a histogram")
	}
}

func TestHistogramDrivesRangePredicates(t *testing.T) {
	c := New()
	err := c.AddRelation(&Relation{
		Name: "Events",
		Schema: algebra.NewSchema(
			algebra.Column{Relation: "Events", Name: "latency", Type: algebra.TypeInt},
		),
		Rows: 10000, Blocks: 1000,
		Attrs: map[string]AttrStats{"latency": skewedHistogram()},
	})
	if err != nil {
		t.Fatal(err)
	}
	gt := algebra.Compare(
		algebra.ColOperand(algebra.Ref("Events", "latency")), algebra.OpGt,
		algebra.LitOperand(algebra.IntVal(9)))
	got := c.PredicateSelectivity(gt)
	// The tail above 9 holds ~10% of rows; min/max interpolation would have
	// claimed ~99%.
	if got < 0.05 || got > 0.15 {
		t.Errorf("s(latency > 9) = %v, want ≈ 0.1 (histogram), not ≈ 0.99 (interpolation)", got)
	}
	lt := algebra.Compare(
		algebra.ColOperand(algebra.Ref("Events", "latency")), algebra.OpLt,
		algebra.LitOperand(algebra.IntVal(9)))
	if got := c.PredicateSelectivity(lt); got < 0.8 {
		t.Errorf("s(latency < 9) = %v, want ≈ 0.9", got)
	}
}
