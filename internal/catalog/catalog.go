// Package catalog holds the statistics the materialized-view design
// framework needs about base relations: cardinalities, block counts,
// per-attribute distinct-value counts, update frequencies, and selectivity
// overrides for specific predicates (the paper's Table 1 pins selectivities
// such as s = 0.02 for `city = "LA"` directly, so the catalog supports both
// derived and pinned selectivities).
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/warehousekit/mvpp/internal/algebra"
)

// AttrStats carries per-attribute statistics used for selectivity
// estimation.
type AttrStats struct {
	// DistinctValues is the number of distinct values (NDV) of the
	// attribute; 0 means unknown.
	DistinctValues float64
	// Min and Max bound the attribute's domain for range-selectivity
	// interpolation; invalid values mean unknown.
	Min, Max algebra.Value
	// Histogram holds equi-depth bucket boundaries for numeric attributes:
	// Histogram[i] is the upper bound of bucket i, each bucket holding
	// 1/len(Histogram) of the rows. When present it refines range
	// selectivities beyond min/max interpolation (skewed data). Optional.
	Histogram []float64
}

// HistogramSelectivity estimates the fraction of rows with value ≤ bound
// from the equi-depth histogram; ok is false when no histogram exists.
func (a AttrStats) HistogramSelectivity(bound float64) (float64, bool) {
	if len(a.Histogram) == 0 {
		return 0, false
	}
	n := len(a.Histogram)
	prev := bucketLow(a)
	for i, hi := range a.Histogram {
		if bound < hi {
			frac := float64(i) / float64(n)
			if hi > prev {
				frac += (bound - prev) / (hi - prev) / float64(n)
			}
			if frac < 0 {
				frac = 0
			}
			return frac, true
		}
		prev = hi
	}
	return 1, true
}

func bucketLow(a AttrStats) float64 {
	if a.Min.IsValid() {
		if f, ok := numeric(a.Min); ok {
			return f
		}
	}
	return a.Histogram[0]
}

// Relation describes one base relation of the member databases.
type Relation struct {
	Name   string
	Schema *algebra.Schema
	// Rows is the relation cardinality.
	Rows float64
	// Blocks is the number of disk blocks the relation occupies.
	Blocks float64
	// UpdateFrequency is the paper's fu: how many times the relation is
	// updated per costing period.
	UpdateFrequency float64
	// Attrs maps attribute name to its statistics.
	Attrs map[string]AttrStats
}

// RowWidth returns the fraction of a block one row occupies
// (blocks per row). Zero-row relations report zero width.
func (r *Relation) RowWidth() float64 {
	if r.Rows <= 0 {
		return 0
	}
	return r.Blocks / r.Rows
}

// Default selectivities used when no statistics or overrides apply. The
// constants follow the classic System-R conventions.
const (
	DefaultEqSelectivity    = 0.1
	DefaultRangeSelectivity = 1.0 / 3.0
	DefaultNotEqSelectivity = 0.9
)

// JoinSize pins the size of a join result identified by the set of base
// relations it covers, mirroring the paper's Table 1 rows such as
// "Product ⋈ Division: 30k records, 5k blocks".
type JoinSize struct {
	Rows   float64
	Blocks float64
}

// Catalog is the statistics store. The zero value is unusable; construct
// with New. A Catalog is safe for concurrent reads after construction;
// mutation methods are guarded for convenience during setup.
type Catalog struct {
	mu        sync.RWMutex
	relations map[string]*Relation
	order     []string
	predSel   map[string]float64 // canonical predicate → selectivity
	joinSel   map[string]float64 // canonical join condition → selectivity
	joinSizes map[string]JoinSize
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		relations: make(map[string]*Relation),
		predSel:   make(map[string]float64),
		joinSel:   make(map[string]float64),
		joinSizes: make(map[string]JoinSize),
	}
}

// AddRelation registers a base relation. Re-adding a name replaces the
// earlier definition.
func (c *Catalog) AddRelation(rel *Relation) error {
	if rel == nil || rel.Name == "" {
		return fmt.Errorf("catalog: relation must have a name")
	}
	if rel.Schema == nil || rel.Schema.Len() == 0 {
		return fmt.Errorf("catalog: relation %s has no schema", rel.Name)
	}
	if rel.Rows < 0 || rel.Blocks < 0 {
		return fmt.Errorf("catalog: relation %s has negative size", rel.Name)
	}
	if rel.Attrs == nil {
		rel.Attrs = make(map[string]AttrStats)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.relations[rel.Name]; !exists {
		c.order = append(c.order, rel.Name)
	}
	c.relations[rel.Name] = rel
	return nil
}

// Relation looks up a base relation by name.
func (c *Catalog) Relation(name string) (*Relation, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	rel, ok := c.relations[name]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown relation %q", name)
	}
	return rel, nil
}

// Relations returns the registered relation names in registration order.
func (c *Catalog) Relations() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// Schema returns the schema of a base relation.
func (c *Catalog) Schema(name string) (*algebra.Schema, error) {
	rel, err := c.Relation(name)
	if err != nil {
		return nil, err
	}
	return rel.Schema, nil
}

// Scan builds a scan node over a cataloged relation.
func (c *Catalog) Scan(name string) (*algebra.Scan, error) {
	rel, err := c.Relation(name)
	if err != nil {
		return nil, err
	}
	return algebra.NewScan(rel.Name, rel.Schema), nil
}

// SetPredicateSelectivity pins the selectivity of a specific predicate (by
// canonical form), as the paper's Table 1 does for its selections.
func (c *Catalog) SetPredicateSelectivity(p algebra.Predicate, s float64) error {
	if p == nil {
		return fmt.Errorf("catalog: nil predicate")
	}
	if s < 0 || s > 1 {
		return fmt.Errorf("catalog: selectivity %v out of [0,1]", s)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.predSel[p.String()] = s
	return nil
}

// SetJoinSelectivity pins the selectivity of a join condition (orientation
// insensitive).
func (c *Catalog) SetJoinSelectivity(left, right algebra.ColumnRef, s float64) error {
	if s < 0 || s > 1 {
		return fmt.Errorf("catalog: selectivity %v out of [0,1]", s)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.joinSel[condKey(left, right)] = s
	return nil
}

// PinJoinSize pins the result size of any join covering exactly the given
// set of base relations, regardless of join order (Table 1 mode).
func (c *Catalog) PinJoinSize(relations []string, size JoinSize) error {
	if len(relations) < 2 {
		return fmt.Errorf("catalog: join size pin needs at least two relations")
	}
	if size.Rows < 0 || size.Blocks < 0 {
		return fmt.Errorf("catalog: negative pinned size")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.joinSizes[leafSetKey(relations)] = size
	return nil
}

// PinnedJoinSize looks up a pinned size for a leaf set; ok is false when no
// pin exists.
func (c *Catalog) PinnedJoinSize(relations []string) (JoinSize, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	sz, ok := c.joinSizes[leafSetKey(relations)]
	return sz, ok
}

// UpdateFrequency returns fu for a base relation (0 when unknown).
func (c *Catalog) UpdateFrequency(name string) float64 {
	rel, err := c.Relation(name)
	if err != nil {
		return 0
	}
	return rel.UpdateFrequency
}

// PredicateSelectivity estimates the fraction of rows satisfying p.
// Resolution order: exact canonical-form pin; structural estimate from
// attribute statistics; System-R defaults.
func (c *Catalog) PredicateSelectivity(p algebra.Predicate) float64 {
	if p == nil {
		return 1
	}
	c.mu.RLock()
	pinned, ok := c.predSel[p.String()]
	c.mu.RUnlock()
	if ok {
		return pinned
	}
	switch v := p.(type) {
	case *algebra.Comparison:
		return c.comparisonSelectivity(v)
	case *algebra.And:
		s := 1.0
		for _, q := range v.Preds {
			s *= c.PredicateSelectivity(q)
		}
		return s
	case *algebra.Or:
		miss := 1.0
		for _, q := range v.Preds {
			miss *= 1 - c.PredicateSelectivity(q)
		}
		return 1 - miss
	case *algebra.Not:
		return 1 - c.PredicateSelectivity(v.Pred)
	default:
		return DefaultRangeSelectivity
	}
}

func (c *Catalog) comparisonSelectivity(cmp *algebra.Comparison) float64 {
	// Column-vs-column comparisons inside selections behave like join
	// predicates.
	if cmp.Left.IsColumn && cmp.Right.IsColumn {
		if cmp.Op == algebra.OpEq {
			return c.JoinSelectivity(algebra.JoinCond{Left: cmp.Left.Col, Right: cmp.Right.Col})
		}
		return DefaultRangeSelectivity
	}
	if !cmp.Left.IsColumn {
		return DefaultRangeSelectivity
	}
	stats, ok := c.attrStats(cmp.Left.Col)
	switch cmp.Op {
	case algebra.OpEq:
		if ok && stats.DistinctValues > 0 {
			return 1 / stats.DistinctValues
		}
		return DefaultEqSelectivity
	case algebra.OpNotEq:
		if ok && stats.DistinctValues > 0 {
			return 1 - 1/stats.DistinctValues
		}
		return DefaultNotEqSelectivity
	case algebra.OpLt, algebra.OpLe, algebra.OpGt, algebra.OpGe:
		if ok {
			if s, fromHist := histogramRange(stats, cmp.Op, cmp.Right.Lit); fromHist {
				return s
			}
			if s, interpolated := rangeInterpolate(stats, cmp.Op, cmp.Right.Lit); interpolated {
				return s
			}
		}
		return DefaultRangeSelectivity
	default:
		return DefaultRangeSelectivity
	}
}

// histogramRange estimates range selectivity from the attribute's
// equi-depth histogram when one is present.
func histogramRange(stats AttrStats, op algebra.CompareOp, lit algebra.Value) (float64, bool) {
	vf, ok := numeric(lit)
	if !ok {
		return 0, false
	}
	le, ok := stats.HistogramSelectivity(vf)
	if !ok {
		return 0, false
	}
	switch op {
	case algebra.OpLt, algebra.OpLe:
		return le, true
	case algebra.OpGt, algebra.OpGe:
		return 1 - le, true
	default:
		return 0, false
	}
}

// rangeInterpolate computes (v - min)/(max - min)-style selectivity when the
// attribute has numeric bounds.
func rangeInterpolate(stats AttrStats, op algebra.CompareOp, lit algebra.Value) (float64, bool) {
	lo, hi := stats.Min, stats.Max
	if !lo.IsValid() || !hi.IsValid() || !lit.IsValid() {
		return 0, false
	}
	lof, ok1 := numeric(lo)
	hif, ok2 := numeric(hi)
	vf, ok3 := numeric(lit)
	if !ok1 || !ok2 || !ok3 || hif <= lof {
		return 0, false
	}
	frac := (vf - lof) / (hif - lof)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	switch op {
	case algebra.OpLt, algebra.OpLe:
		return frac, true
	case algebra.OpGt, algebra.OpGe:
		return 1 - frac, true
	default:
		return 0, false
	}
}

func numeric(v algebra.Value) (float64, bool) {
	switch v.Kind {
	case algebra.TypeInt, algebra.TypeDate:
		return float64(v.Int), true
	case algebra.TypeFloat:
		return v.Float, true
	default:
		return 0, false
	}
}

// JoinSelectivity estimates the selectivity of an equi-join condition:
// pinned value if present, else 1/max(NDV(left), NDV(right)), else
// 1/max(rows) of the owning relations.
func (c *Catalog) JoinSelectivity(cond algebra.JoinCond) float64 {
	c.mu.RLock()
	pinned, ok := c.joinSel[condKey(cond.Left, cond.Right)]
	c.mu.RUnlock()
	if ok {
		return pinned
	}
	best := 0.0
	for _, ref := range []algebra.ColumnRef{cond.Left, cond.Right} {
		if stats, ok := c.attrStats(ref); ok && stats.DistinctValues > best {
			best = stats.DistinctValues
		}
	}
	if best > 0 {
		return 1 / best
	}
	for _, ref := range []algebra.ColumnRef{cond.Left, cond.Right} {
		if rel, err := c.Relation(ref.Relation); err == nil && rel.Rows > best {
			best = rel.Rows
		}
	}
	if best > 0 {
		return 1 / best
	}
	return DefaultEqSelectivity
}

// DistinctValues returns the distinct-value count of a (qualified) column,
// or ok=false when unknown.
func (c *Catalog) DistinctValues(ref algebra.ColumnRef) (float64, bool) {
	stats, ok := c.attrStats(ref)
	if !ok || stats.DistinctValues <= 0 {
		return 0, false
	}
	return stats.DistinctValues, true
}

// attrStats resolves a column reference to its attribute statistics; the
// reference must be qualified by a cataloged relation.
func (c *Catalog) attrStats(ref algebra.ColumnRef) (AttrStats, bool) {
	if ref.Relation == "" {
		return AttrStats{}, false
	}
	rel, err := c.Relation(ref.Relation)
	if err != nil {
		return AttrStats{}, false
	}
	stats, ok := rel.Attrs[ref.Name]
	return stats, ok
}

// condKey renders an orientation-insensitive key for a join condition.
func condKey(a, b algebra.ColumnRef) string {
	l, r := a.String(), b.String()
	if r < l {
		l, r = r, l
	}
	return l + "=" + r
}

// leafSetKey renders a canonical key for a set of relation names.
func leafSetKey(relations []string) string {
	cp := make([]string, len(relations))
	copy(cp, relations)
	sort.Strings(cp)
	return strings.Join(cp, "⋈")
}
