package catalog

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/warehousekit/mvpp/internal/algebra"
)

func testCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := New()
	div := &Relation{
		Name: "Division",
		Schema: algebra.NewSchema(
			algebra.Column{Relation: "Division", Name: "Did", Type: algebra.TypeInt},
			algebra.Column{Relation: "Division", Name: "name", Type: algebra.TypeString},
			algebra.Column{Relation: "Division", Name: "city", Type: algebra.TypeString},
		),
		Rows:            5000,
		Blocks:          500,
		UpdateFrequency: 1,
		Attrs: map[string]AttrStats{
			"Did":  {DistinctValues: 5000},
			"city": {DistinctValues: 50},
		},
	}
	ord := &Relation{
		Name: "Order",
		Schema: algebra.NewSchema(
			algebra.Column{Relation: "Order", Name: "Pid", Type: algebra.TypeInt},
			algebra.Column{Relation: "Order", Name: "quantity", Type: algebra.TypeInt},
		),
		Rows:            50000,
		Blocks:          6000,
		UpdateFrequency: 2,
		Attrs: map[string]AttrStats{
			"quantity": {DistinctValues: 200, Min: algebra.IntVal(0), Max: algebra.IntVal(200)},
		},
	}
	for _, r := range []*Relation{div, ord} {
		if err := c.AddRelation(r); err != nil {
			t.Fatalf("AddRelation(%s): %v", r.Name, err)
		}
	}
	return c
}

func TestAddRelationValidation(t *testing.T) {
	c := New()
	if err := c.AddRelation(nil); err == nil {
		t.Error("nil relation accepted")
	}
	if err := c.AddRelation(&Relation{Name: ""}); err == nil {
		t.Error("unnamed relation accepted")
	}
	if err := c.AddRelation(&Relation{Name: "R"}); err == nil {
		t.Error("schemaless relation accepted")
	}
	if err := c.AddRelation(&Relation{
		Name:   "R",
		Schema: algebra.NewSchema(algebra.Column{Relation: "R", Name: "x", Type: algebra.TypeInt}),
		Rows:   -1,
	}); err == nil {
		t.Error("negative rows accepted")
	}
}

func TestRelationLookupAndOrder(t *testing.T) {
	c := testCatalog(t)
	if _, err := c.Relation("Division"); err != nil {
		t.Errorf("Relation: %v", err)
	}
	if _, err := c.Relation("Nope"); err == nil || !strings.Contains(err.Error(), "unknown relation") {
		t.Errorf("missing relation error = %v", err)
	}
	names := c.Relations()
	if len(names) != 2 || names[0] != "Division" || names[1] != "Order" {
		t.Errorf("Relations() = %v", names)
	}
}

func TestReAddReplacesWithoutDuplicatingOrder(t *testing.T) {
	c := testCatalog(t)
	div, _ := c.Relation("Division")
	clone := *div
	clone.Rows = 9999
	if err := c.AddRelation(&clone); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Relation("Division"); got.Rows != 9999 {
		t.Errorf("replacement not applied: rows = %v", got.Rows)
	}
	if n := len(c.Relations()); n != 2 {
		t.Errorf("order list grew to %d", n)
	}
}

func TestScanConstruction(t *testing.T) {
	c := testCatalog(t)
	s, err := c.Scan("Division")
	if err != nil {
		t.Fatal(err)
	}
	if s.Relation != "Division" || s.Schema().Len() != 3 {
		t.Errorf("scan = %v over %s", s.Relation, s.Schema())
	}
	if _, err := c.Scan("Nope"); err == nil {
		t.Error("scan of unknown relation accepted")
	}
}

func TestRowWidth(t *testing.T) {
	c := testCatalog(t)
	div, _ := c.Relation("Division")
	if w := div.RowWidth(); w != 0.1 {
		t.Errorf("RowWidth = %v, want 0.1", w)
	}
	empty := &Relation{Rows: 0, Blocks: 10}
	if w := empty.RowWidth(); w != 0 {
		t.Errorf("empty RowWidth = %v", w)
	}
}

func TestPredicateSelectivityPinned(t *testing.T) {
	c := testCatalog(t)
	la := algebra.Eq(algebra.Ref("Division", "city"), algebra.StringVal("LA"))
	if err := c.SetPredicateSelectivity(la, 0.02); err != nil {
		t.Fatal(err)
	}
	if got := c.PredicateSelectivity(la); got != 0.02 {
		t.Errorf("pinned selectivity = %v", got)
	}
	// A canonically equal predicate constructed differently hits the pin.
	flipped := algebra.Compare(
		algebra.LitOperand(algebra.StringVal("LA")), algebra.OpEq,
		algebra.ColOperand(algebra.Ref("Division", "city")))
	if got := c.PredicateSelectivity(flipped); got != 0.02 {
		t.Errorf("pin not canonical: %v", got)
	}
}

func TestSetPredicateSelectivityValidation(t *testing.T) {
	c := testCatalog(t)
	if err := c.SetPredicateSelectivity(nil, 0.5); err == nil {
		t.Error("nil predicate accepted")
	}
	la := algebra.Eq(algebra.Ref("Division", "city"), algebra.StringVal("LA"))
	if err := c.SetPredicateSelectivity(la, 1.5); err == nil {
		t.Error("selectivity > 1 accepted")
	}
	if err := c.SetPredicateSelectivity(la, -0.1); err == nil {
		t.Error("negative selectivity accepted")
	}
}

func TestPredicateSelectivityFromNDV(t *testing.T) {
	c := testCatalog(t)
	eq := algebra.Eq(algebra.Ref("Division", "city"), algebra.StringVal("SF"))
	if got, want := c.PredicateSelectivity(eq), 1.0/50; got != want {
		t.Errorf("eq selectivity = %v, want %v", got, want)
	}
	ne := algebra.Compare(
		algebra.ColOperand(algebra.Ref("Division", "city")), algebra.OpNotEq,
		algebra.LitOperand(algebra.StringVal("SF")))
	if got, want := c.PredicateSelectivity(ne), 1-1.0/50; got != want {
		t.Errorf("noteq selectivity = %v, want %v", got, want)
	}
	// No stats → defaults.
	eqNoStats := algebra.Eq(algebra.Ref("Division", "name"), algebra.StringVal("Re"))
	if got := c.PredicateSelectivity(eqNoStats); got != DefaultEqSelectivity {
		t.Errorf("default eq selectivity = %v", got)
	}
}

func TestRangeSelectivityInterpolation(t *testing.T) {
	c := testCatalog(t)
	gt := algebra.Compare(
		algebra.ColOperand(algebra.Ref("Order", "quantity")), algebra.OpGt,
		algebra.LitOperand(algebra.IntVal(100)))
	if got := c.PredicateSelectivity(gt); got != 0.5 {
		t.Errorf("quantity>100 selectivity = %v, want 0.5 (interpolated)", got)
	}
	lt := algebra.Compare(
		algebra.ColOperand(algebra.Ref("Order", "quantity")), algebra.OpLt,
		algebra.LitOperand(algebra.IntVal(50)))
	if got := c.PredicateSelectivity(lt); got != 0.25 {
		t.Errorf("quantity<50 selectivity = %v, want 0.25", got)
	}
	// Out-of-range literals clamp.
	extreme := algebra.Compare(
		algebra.ColOperand(algebra.Ref("Order", "quantity")), algebra.OpGt,
		algebra.LitOperand(algebra.IntVal(1000)))
	if got := c.PredicateSelectivity(extreme); got != 0 {
		t.Errorf("clamped selectivity = %v, want 0", got)
	}
	// No bounds → default range selectivity.
	noBounds := algebra.Compare(
		algebra.ColOperand(algebra.Ref("Division", "city")), algebra.OpGt,
		algebra.LitOperand(algebra.StringVal("A")))
	if got := c.PredicateSelectivity(noBounds); got != DefaultRangeSelectivity {
		t.Errorf("default range selectivity = %v", got)
	}
}

func TestCompoundSelectivity(t *testing.T) {
	c := testCatalog(t)
	la := algebra.Eq(algebra.Ref("Division", "city"), algebra.StringVal("LA"))
	sf := algebra.Eq(algebra.Ref("Division", "city"), algebra.StringVal("SF"))
	if err := c.SetPredicateSelectivity(la, 0.02); err != nil {
		t.Fatal(err)
	}
	if err := c.SetPredicateSelectivity(sf, 0.04); err != nil {
		t.Fatal(err)
	}
	and := algebra.NewAnd(la, sf)
	if got, want := c.PredicateSelectivity(and), 0.02*0.04; !close(got, want) {
		t.Errorf("AND selectivity = %v, want %v", got, want)
	}
	or := algebra.NewOr(la, sf)
	if got, want := c.PredicateSelectivity(or), 1-(1-0.02)*(1-0.04); !close(got, want) {
		t.Errorf("OR selectivity = %v, want %v", got, want)
	}
	not := algebra.NewNot(la)
	if got, want := c.PredicateSelectivity(not), 0.98; !close(got, want) {
		t.Errorf("NOT selectivity = %v, want %v", got, want)
	}
	if got := c.PredicateSelectivity(nil); got != 1 {
		t.Errorf("nil predicate selectivity = %v, want 1", got)
	}
}

func TestJoinSelectivity(t *testing.T) {
	c := testCatalog(t)
	cond := algebra.JoinCond{Left: algebra.Ref("Order", "Did"), Right: algebra.Ref("Division", "Did")}
	// NDV(Division.Did) = 5000 → 1/5000.
	if got, want := c.JoinSelectivity(cond), 1.0/5000; got != want {
		t.Errorf("join selectivity = %v, want %v", got, want)
	}
	// Pin wins, orientation-insensitively.
	if err := c.SetJoinSelectivity(algebra.Ref("Division", "Did"), algebra.Ref("Order", "Did"), 0.001); err != nil {
		t.Fatal(err)
	}
	if got := c.JoinSelectivity(cond); got != 0.001 {
		t.Errorf("pinned join selectivity = %v", got)
	}
	// No stats anywhere → falls back to 1/max(rows).
	noStats := algebra.JoinCond{Left: algebra.Ref("Order", "Pid"), Right: algebra.Ref("Division", "name")}
	if got, want := c.JoinSelectivity(noStats), 1.0/50000; got != want {
		t.Errorf("row-fallback join selectivity = %v, want %v", got, want)
	}
}

func TestPinJoinSize(t *testing.T) {
	c := testCatalog(t)
	if err := c.PinJoinSize([]string{"Order"}, JoinSize{Rows: 1, Blocks: 1}); err == nil {
		t.Error("single-relation pin accepted")
	}
	if err := c.PinJoinSize([]string{"Order", "Division"}, JoinSize{Rows: -1}); err == nil {
		t.Error("negative pin accepted")
	}
	want := JoinSize{Rows: 25000, Blocks: 5000}
	if err := c.PinJoinSize([]string{"Order", "Division"}, want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.PinnedJoinSize([]string{"Division", "Order"}) // reversed order
	if !ok || got != want {
		t.Errorf("PinnedJoinSize = %v, %v", got, ok)
	}
	if _, ok := c.PinnedJoinSize([]string{"Division", "Customer"}); ok {
		t.Error("unexpected pin hit")
	}
}

func TestUpdateFrequency(t *testing.T) {
	c := testCatalog(t)
	if got := c.UpdateFrequency("Order"); got != 2 {
		t.Errorf("fu(Order) = %v", got)
	}
	if got := c.UpdateFrequency("Nope"); got != 0 {
		t.Errorf("fu(unknown) = %v", got)
	}
}

// Property: AND of two predicates is never more selective than min of
// the two (product rule keeps s in [0,1] and below both factors).
func TestAndSelectivityBound(t *testing.T) {
	c := testCatalog(t)
	f := func(s1, s2 float64) bool {
		// map random floats into [0,1]
		s1 = clamp01(s1)
		s2 = clamp01(s2)
		p1 := algebra.Eq(algebra.Ref("Division", "city"), algebra.StringVal("A"))
		p2 := algebra.Eq(algebra.Ref("Division", "name"), algebra.StringVal("B"))
		if err := c.SetPredicateSelectivity(p1, s1); err != nil {
			return false
		}
		if err := c.SetPredicateSelectivity(p2, s2); err != nil {
			return false
		}
		and := c.PredicateSelectivity(algebra.NewAnd(p1, p2))
		or := c.PredicateSelectivity(algebra.NewOr(p1, p2))
		return and <= s1+1e-12 && and <= s2+1e-12 &&
			or+1e-12 >= s1 && or+1e-12 >= s2 && or <= 1+1e-12 && and >= -1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func clamp01(x float64) float64 {
	if x != x || x < 0 { // NaN or negative
		return 0
	}
	if x > 1 {
		return 1 / x
	}
	return x
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-12
}
