package sqlparse

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzParse checks the parser never panics and that accepted statements
// satisfy basic shape invariants. `go test` runs the seed corpus; use
// `go test -fuzz=FuzzParse ./internal/sqlparse` for continuous fuzzing.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`SELECT Product.name FROM Product, Division WHERE Division.city = 'LA' AND Product.Did = Division.Did`,
		`SELECT x FROM R`,
		`SELECT a, b, c FROM R, S, T WHERE a = 1 OR b = 2 AND c = 3`,
		`SELECT COUNT(*) FROM R GROUP BY x`,
		`SELECT SUM(v) AS total, MIN(v), MAX(v), AVG(v) FROM R WHERE d > 7/1/96 GROUP BY g`,
		`select lower from keywords`,
		`SELECT x FROM R WHERE NOT (a = 1 OR NOT b = 2)`,
		`SELECT x FROM R AS alias WHERE alias.y <> 'q"uote'`,
		`SELECT`,
		`SELECT x FROM`,
		`'unterminated`,
		`SELECT x FROM R WHERE a = 1.5 AND b = 12/31/99`,
		`SELECT (((`,
		"SELECT x\tFROM\nR",
		`SELECT x FROM R WHERE a >= -`,
		`SELECT ☃ FROM ☃`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		stmt, err := Parse(sql)
		if err != nil {
			return // rejects are fine; panics are not
		}
		if len(stmt.Projections) == 0 {
			t.Errorf("accepted statement with no projections: %q", sql)
		}
		if len(stmt.From) == 0 {
			t.Errorf("accepted statement with no FROM: %q", sql)
		}
		for _, item := range stmt.Projections {
			if (item.Col == nil) == (item.Agg == nil) {
				t.Errorf("select item is neither column nor aggregate: %q", sql)
			}
			if !utf8.ValidString(item.String()) {
				t.Errorf("select item renders invalid UTF-8: %q", sql)
			}
		}
		for _, tr := range stmt.From {
			if strings.TrimSpace(tr.Name) == "" {
				t.Errorf("empty relation name accepted: %q", sql)
			}
		}
	})
}

// FuzzLex checks the lexer never panics and always terminates with EOF.
func FuzzLex(f *testing.F) {
	for _, s := range []string{
		"a = b", "1/2/96", "'str'", `"str"`, "<= >= <> != < >", "((()))",
		"100 2.5 0.", "ident_with_9", "*", "!", "#",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		toks, err := lex(input)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].kind != tokEOF {
			t.Errorf("token stream does not end with EOF: %q", input)
		}
		for _, tok := range toks[:len(toks)-1] {
			if tok.kind == tokEOF {
				t.Errorf("interior EOF token: %q", input)
			}
			if tok.pos < 0 || tok.pos > len(input) {
				t.Errorf("token position %d out of range: %q", tok.pos, input)
			}
		}
	})
}
