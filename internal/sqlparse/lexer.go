// Package sqlparse implements a small lexer, parser, and binder for the
// select-project-join SQL subset the paper's warehouse queries are written
// in:
//
//	SELECT Product.name, Order.quantity
//	FROM Product, Division, Order
//	WHERE Division.city = 'LA' AND Product.Did = Division.Did
//	  AND date > 7/1/96
//
// Supported: qualified and unqualified column references, FROM-list aliases
// (FROM Product AS Pd or FROM Product Pd), comparison operators
// (=, <>, !=, <, <=, >, >=), AND/OR/NOT with parentheses, integer, float,
// string ('...' or "...") and date (M/D/YY, M/D/YYYY, YYYY-MM-DD) literals.
// Binding resolves columns against a catalog and classifies conjuncts into
// selections and equi-join conditions, the form the optimizer consumes.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token categories.
type tokenKind int

const (
	tokEOF tokenKind = iota + 1
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokDate
	tokComma
	tokDot
	tokLParen
	tokRParen
	tokStar
	tokOp // comparison operators
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokKeyword:
		return "keyword"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokDate:
		return "date"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokStar:
		return "'*'"
	case tokOp:
		return "operator"
	default:
		return "token"
	}
}

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset in the input, for error messages
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true,
	"AND": true, "OR": true, "NOT": true, "AS": true,
	"GROUP": true, "BY": true,
}

// lex tokenizes the input. Keywords are case-insensitive and normalized to
// upper case; identifiers keep their spelling.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '.':
			toks = append(toks, token{tokDot, ".", i})
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == '=':
			toks = append(toks, token{tokOp, "=", i})
			i++
		case c == '<':
			switch {
			case i+1 < n && input[i+1] == '=':
				toks = append(toks, token{tokOp, "<=", i})
				i += 2
			case i+1 < n && input[i+1] == '>':
				toks = append(toks, token{tokOp, "<>", i})
				i += 2
			default:
				toks = append(toks, token{tokOp, "<", i})
				i++
			}
		case c == '>':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{tokOp, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tokOp, ">", i})
				i++
			}
		case c == '!':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{tokOp, "<>", i})
				i += 2
			} else {
				return nil, fmt.Errorf("sqlparse: unexpected '!' at offset %d", i)
			}
		case c == '\'' || c == '"':
			quote := c
			j := i + 1
			for j < n && input[j] != quote {
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("sqlparse: unterminated string starting at offset %d", i)
			}
			toks = append(toks, token{tokString, input[i+1 : j], i})
			i = j + 1
		case c >= '0' && c <= '9':
			start := i
			for i < n && (input[i] >= '0' && input[i] <= '9') {
				i++
			}
			// Date literal: digits '/' digits '/' digits.
			if i < n && input[i] == '/' {
				j := i + 1
				d2 := j
				for j < n && input[j] >= '0' && input[j] <= '9' {
					j++
				}
				if j > d2 && j < n && input[j] == '/' {
					k := j + 1
					d3 := k
					for k < n && input[k] >= '0' && input[k] <= '9' {
						k++
					}
					if k > d3 {
						toks = append(toks, token{tokDate, input[start:k], start})
						i = k
						continue
					}
				}
				return nil, fmt.Errorf("sqlparse: malformed date literal at offset %d", start)
			}
			// Float or ISO date (YYYY-MM-DD handled by parser via string form
			// is not produced here; ISO dates must be quoted).
			if i < n && input[i] == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9' {
				i++
				for i < n && input[i] >= '0' && input[i] <= '9' {
					i++
				}
			}
			toks = append(toks, token{tokNumber, input[start:i], start})
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(input[i])) {
				i++
			}
			word := input[start:i]
			if keywords[strings.ToUpper(word)] {
				toks = append(toks, token{tokKeyword, strings.ToUpper(word), start})
			} else {
				toks = append(toks, token{tokIdent, word, start})
			}
		default:
			return nil, fmt.Errorf("sqlparse: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
