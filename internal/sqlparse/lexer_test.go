package sqlparse

import (
	"strings"
	"testing"
)

func kinds(toks []token) []tokenKind {
	out := make([]tokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.kind
	}
	return out
}

func TestLexBasicQuery(t *testing.T) {
	toks, err := lex(`SELECT Pd.name FROM Product WHERE city = 'LA'`)
	if err != nil {
		t.Fatal(err)
	}
	want := []tokenKind{
		tokKeyword, tokIdent, tokDot, tokIdent, tokKeyword, tokIdent,
		tokKeyword, tokIdent, tokOp, tokString, tokEOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("token kinds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexKeywordCaseInsensitive(t *testing.T) {
	toks, err := lex("select x from y where z = 1")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != "SELECT" || toks[2].text != "FROM" || toks[4].text != "WHERE" {
		t.Errorf("keywords not normalized: %v %v %v", toks[0].text, toks[2].text, toks[4].text)
	}
	// identifiers keep case
	if toks[1].text != "x" {
		t.Errorf("identifier mangled: %q", toks[1].text)
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := lex("a = b <> c != d < e <= f > g >= h")
	if err != nil {
		t.Fatal(err)
	}
	var ops []string
	for _, tok := range toks {
		if tok.kind == tokOp {
			ops = append(ops, tok.text)
		}
	}
	want := []string{"=", "<>", "<>", "<", "<=", ">", ">="}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op %d = %q, want %q", i, ops[i], want[i])
		}
	}
}

func TestLexDateLiteral(t *testing.T) {
	toks, err := lex("date > 7/1/96")
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].kind != tokDate || toks[2].text != "7/1/96" {
		t.Errorf("date token = %v %q", toks[2].kind, toks[2].text)
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := lex("100 2.5 0")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != "100" || toks[1].text != "2.5" || toks[2].text != "0" {
		t.Errorf("numbers = %q %q %q", toks[0].text, toks[1].text, toks[2].text)
	}
}

func TestLexStringsBothQuotes(t *testing.T) {
	toks, err := lex(`'LA' "SF"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != "LA" || toks[1].text != "SF" {
		t.Errorf("strings = %q %q", toks[0].text, toks[1].text)
	}
}

func TestLexErrors(t *testing.T) {
	tests := []struct {
		name, in, wantErr string
	}{
		{"unterminated string", "'abc", "unterminated string"},
		{"bare bang", "a ! b", "unexpected '!'"},
		{"bad char", "a # b", "unexpected character"},
		{"malformed date", "7/x", "malformed date"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := lex(tt.in)
			if err == nil {
				t.Fatal("lex succeeded")
			}
			if !strings.Contains(err.Error(), tt.wantErr) {
				t.Errorf("error %q does not contain %q", err, tt.wantErr)
			}
		})
	}
}

func TestLexEmptyInput(t *testing.T) {
	toks, err := lex("   ")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 1 || toks[0].kind != tokEOF {
		t.Errorf("tokens = %v", toks)
	}
}
