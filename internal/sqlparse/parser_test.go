package sqlparse

import (
	"strings"
	"testing"
)

func TestParsePaperQuery1(t *testing.T) {
	stmt, err := Parse(`Select Pd.name From Product AS Pd, Division AS Div Where Div.city = 'LA' and Pd.Did = Div.Did`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Projections) != 1 || stmt.Projections[0].String() != "Pd.name" {
		t.Errorf("projections = %v", stmt.Projections)
	}
	if len(stmt.From) != 2 {
		t.Fatalf("from = %v", stmt.From)
	}
	if stmt.From[0].Name != "Product" || stmt.From[0].Alias != "Pd" {
		t.Errorf("from[0] = %+v", stmt.From[0])
	}
	bin, ok := stmt.Where.(*BinExpr)
	if !ok || bin.Op != "AND" {
		t.Fatalf("where = %#v", stmt.Where)
	}
}

func TestParseImplicitAlias(t *testing.T) {
	stmt, err := Parse(`SELECT name FROM Product Pd`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.From[0].Alias != "Pd" {
		t.Errorf("alias = %q", stmt.From[0].Alias)
	}
}

func TestParseMultipleProjections(t *testing.T) {
	stmt, err := Parse(`SELECT Cust.name, Pd.name, quantity FROM Cust, Pd, Ord`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Projections) != 3 {
		t.Fatalf("projections = %v", stmt.Projections)
	}
	if col := stmt.Projections[2].Col; col == nil || col.Qualifier != "" || col.Column != "quantity" {
		t.Errorf("unqualified projection = %+v", stmt.Projections[2])
	}
}

func TestParseNoWhere(t *testing.T) {
	stmt, err := Parse(`SELECT x FROM R`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Where != nil {
		t.Errorf("where = %#v", stmt.Where)
	}
}

func TestParsePrecedenceOrAnd(t *testing.T) {
	// a=1 OR b=2 AND c=3 must parse as a=1 OR (b=2 AND c=3)
	stmt, err := Parse(`SELECT x FROM R WHERE a = 1 OR b = 2 AND c = 3`)
	if err != nil {
		t.Fatal(err)
	}
	or, ok := stmt.Where.(*BinExpr)
	if !ok || or.Op != "OR" {
		t.Fatalf("root = %#v", stmt.Where)
	}
	and, ok := or.Right.(*BinExpr)
	if !ok || and.Op != "AND" {
		t.Fatalf("right = %#v", or.Right)
	}
}

func TestParseParenthesesOverridePrecedence(t *testing.T) {
	stmt, err := Parse(`SELECT x FROM R WHERE (a = 1 OR b = 2) AND c = 3`)
	if err != nil {
		t.Fatal(err)
	}
	and, ok := stmt.Where.(*BinExpr)
	if !ok || and.Op != "AND" {
		t.Fatalf("root = %#v", stmt.Where)
	}
	if or, ok := and.Left.(*BinExpr); !ok || or.Op != "OR" {
		t.Fatalf("left = %#v", and.Left)
	}
}

func TestParseNot(t *testing.T) {
	stmt, err := Parse(`SELECT x FROM R WHERE NOT a = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := stmt.Where.(*NotExpr); !ok {
		t.Fatalf("where = %#v", stmt.Where)
	}
}

func TestParseDateComparison(t *testing.T) {
	stmt, err := Parse(`SELECT x FROM R WHERE date > 7/1/96`)
	if err != nil {
		t.Fatal(err)
	}
	cmp, ok := stmt.Where.(*CmpExpr)
	if !ok {
		t.Fatalf("where = %#v", stmt.Where)
	}
	if cmp.Right.DateLit == nil || *cmp.Right.DateLit != "7/1/96" {
		t.Errorf("date literal = %+v", cmp.Right)
	}
}

func TestParseLiteralKinds(t *testing.T) {
	stmt, err := Parse(`SELECT x FROM R WHERE a = 100 AND b = 2.5 AND c = 'LA'`)
	if err != nil {
		t.Fatal(err)
	}
	var cmps []*CmpExpr
	var collect func(Expr)
	collect = func(e Expr) {
		switch v := e.(type) {
		case *BinExpr:
			collect(v.Left)
			collect(v.Right)
		case *CmpExpr:
			cmps = append(cmps, v)
		}
	}
	collect(stmt.Where)
	if len(cmps) != 3 {
		t.Fatalf("comparisons = %d", len(cmps))
	}
	if cmps[0].Right.IntLit == nil || *cmps[0].Right.IntLit != 100 {
		t.Errorf("int literal = %+v", cmps[0].Right)
	}
	if cmps[1].Right.FloatLit == nil || *cmps[1].Right.FloatLit != 2.5 {
		t.Errorf("float literal = %+v", cmps[1].Right)
	}
	if cmps[2].Right.StrLit == nil || *cmps[2].Right.StrLit != "LA" {
		t.Errorf("string literal = %+v", cmps[2].Right)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name, sql, wantErr string
	}{
		{"missing select", `FROM R`, "expected SELECT"},
		{"missing from", `SELECT x WHERE a = 1`, "expected FROM"},
		{"missing relation", `SELECT x FROM WHERE`, "expected relation name"},
		{"dangling comma", `SELECT x, FROM R`, "expected column reference"},
		{"bad operator position", `SELECT x FROM R WHERE a 1`, "expected comparison operator"},
		{"unclosed paren", `SELECT x FROM R WHERE (a = 1`, "expected ')'"},
		{"trailing garbage", `SELECT x FROM R extra junk`, "trailing input"},
		{"missing operand", `SELECT x FROM R WHERE a =`, "expected operand"},
		{"dot without column", `SELECT r. FROM R`, "expected column name"},
		{"alias missing after AS", `SELECT x FROM R AS`, "expected alias"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse(tt.sql)
			if err == nil {
				t.Fatal("Parse succeeded")
			}
			if !strings.Contains(err.Error(), tt.wantErr) {
				t.Errorf("error %q does not contain %q", err, tt.wantErr)
			}
		})
	}
}
