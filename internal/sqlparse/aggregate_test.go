package sqlparse

import (
	"strings"
	"testing"

	"github.com/warehousekit/mvpp/internal/algebra"
)

func TestParseAggregateSelectList(t *testing.T) {
	stmt, err := Parse(`SELECT Customer.city, SUM(quantity) AS total, COUNT(*) FROM Order, Customer
		WHERE Order.Cid = Customer.Cid GROUP BY Customer.city`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Projections) != 3 {
		t.Fatalf("projections = %d", len(stmt.Projections))
	}
	if stmt.Projections[0].Col == nil {
		t.Error("first item should be a plain column")
	}
	agg := stmt.Projections[1].Agg
	if agg == nil || agg.Func != "SUM" || agg.Alias != "total" || agg.Arg == nil {
		t.Errorf("SUM item = %+v", agg)
	}
	star := stmt.Projections[2].Agg
	if star == nil || star.Func != "COUNT" || star.Arg != nil {
		t.Errorf("COUNT(*) item = %+v", star)
	}
	if len(stmt.GroupBy) != 1 || stmt.GroupBy[0].String() != "Customer.city" {
		t.Errorf("GroupBy = %v", stmt.GroupBy)
	}
}

func TestParseAggregateCaseInsensitive(t *testing.T) {
	stmt, err := Parse(`SELECT avg(quantity) FROM Order`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Projections[0].Agg == nil || stmt.Projections[0].Agg.Func != "AVG" {
		t.Errorf("item = %+v", stmt.Projections[0])
	}
}

func TestParseAggregateErrors(t *testing.T) {
	tests := []struct {
		name, sql, wantErr string
	}{
		{"sum star", `SELECT SUM(*) FROM Order`, "only COUNT(*)"},
		{"unclosed", `SELECT SUM(quantity FROM Order`, "expected ')'"},
		{"group without by", `SELECT COUNT(*) FROM Order GROUP quantity`, "expected BY"},
		{"alias missing", `SELECT SUM(quantity) AS FROM Order`, "expected alias"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse(tt.sql)
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Errorf("error = %v, want %q", err, tt.wantErr)
			}
		})
	}
}

func TestParseAggNamedColumnStaysPlain(t *testing.T) {
	// An identifier named like a function but not followed by '(' is a
	// plain column.
	stmt, err := Parse(`SELECT count FROM R`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Projections[0].Col == nil {
		t.Errorf("item = %+v", stmt.Projections[0])
	}
}

func TestBindAggregateQuery(t *testing.T) {
	c := bindCatalog(t)
	q, err := BindQuery(c, "QA", `SELECT Customer.city, SUM(quantity) AS total, COUNT(*) AS n
		FROM Order, Customer WHERE Order.Cid = Customer.Cid GROUP BY Customer.city`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.IsAggregate() {
		t.Fatal("IsAggregate = false")
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0].String() != "Customer.city" {
		t.Errorf("GroupBy = %v", q.GroupBy)
	}
	if len(q.Aggregates) != 2 {
		t.Fatalf("Aggregates = %v", q.Aggregates)
	}
	if q.Aggregates[0].Func != algebra.AggSum || q.Aggregates[0].Alias != "total" {
		t.Errorf("agg[0] = %+v", q.Aggregates[0])
	}
	if q.Aggregates[1].Func != algebra.AggCount || q.Aggregates[1].Arg != (algebra.ColumnRef{}) {
		t.Errorf("agg[1] = %+v", q.Aggregates[1])
	}
	if q.Output != nil {
		t.Errorf("aggregate query Output = %v, want nil", q.Output)
	}
}

func TestBindAggregateDefaultAliases(t *testing.T) {
	c := bindCatalog(t)
	q, err := BindQuery(c, "QA", `SELECT SUM(quantity), COUNT(*), MIN(quantity) FROM Order`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"sum_quantity", "count_all", "min_quantity"}
	for i, a := range q.Aggregates {
		if a.Alias != want[i] {
			t.Errorf("alias[%d] = %q, want %q", i, a.Alias, want[i])
		}
	}
	// Duplicated derived aliases get numbered.
	q2, err := BindQuery(c, "QB", `SELECT SUM(quantity), SUM(quantity) FROM Order`)
	if err != nil {
		t.Fatal(err)
	}
	if q2.Aggregates[1].Alias != "sum_quantity_2" {
		t.Errorf("second alias = %q", q2.Aggregates[1].Alias)
	}
}

func TestBindAggregateValidation(t *testing.T) {
	c := bindCatalog(t)
	tests := []struct {
		name, sql, wantErr string
	}{
		{"ungrouped plain column", `SELECT Customer.name, COUNT(*) FROM Customer GROUP BY Customer.city`,
			"must appear in GROUP BY"},
		{"group without aggregates", `SELECT Customer.city FROM Customer GROUP BY Customer.city`,
			"GROUP BY without aggregate"},
		{"duplicate explicit alias", `SELECT SUM(quantity) AS x, COUNT(*) AS x FROM Order`,
			"duplicate aggregate alias"},
		{"bad arg column", `SELECT SUM(ghost) FROM Order`, "unknown column"},
		{"bad group column", `SELECT COUNT(*) FROM Order GROUP BY ghost`, "unknown column"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := BindQuery(c, "Q", tt.sql)
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Errorf("error = %v, want %q", err, tt.wantErr)
			}
		})
	}
}

func TestBindGlobalAggregate(t *testing.T) {
	c := bindCatalog(t)
	q, err := BindQuery(c, "QG", `SELECT COUNT(*) AS n FROM Order WHERE quantity > 100`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.IsAggregate() || len(q.GroupBy) != 0 {
		t.Errorf("global aggregate = %+v", q)
	}
	if len(q.Selections) != 1 {
		t.Errorf("selections = %v", q.Selections)
	}
}
