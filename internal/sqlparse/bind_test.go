package sqlparse

import (
	"strings"
	"testing"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/catalog"
)

// bindCatalog builds the full paper schema for binder tests.
func bindCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	add := func(name string, cols ...algebra.Column) {
		t.Helper()
		if err := c.AddRelation(&catalog.Relation{
			Name:   name,
			Schema: algebra.NewSchema(cols...),
			Rows:   1000, Blocks: 100,
		}); err != nil {
			t.Fatal(err)
		}
	}
	add("Product",
		algebra.Column{Relation: "Product", Name: "Pid", Type: algebra.TypeInt},
		algebra.Column{Relation: "Product", Name: "name", Type: algebra.TypeString},
		algebra.Column{Relation: "Product", Name: "Did", Type: algebra.TypeInt})
	add("Division",
		algebra.Column{Relation: "Division", Name: "Did", Type: algebra.TypeInt},
		algebra.Column{Relation: "Division", Name: "name", Type: algebra.TypeString},
		algebra.Column{Relation: "Division", Name: "city", Type: algebra.TypeString})
	add("Order",
		algebra.Column{Relation: "Order", Name: "Pid", Type: algebra.TypeInt},
		algebra.Column{Relation: "Order", Name: "Cid", Type: algebra.TypeInt},
		algebra.Column{Relation: "Order", Name: "quantity", Type: algebra.TypeInt},
		algebra.Column{Relation: "Order", Name: "date", Type: algebra.TypeDate})
	add("Customer",
		algebra.Column{Relation: "Customer", Name: "Cid", Type: algebra.TypeInt},
		algebra.Column{Relation: "Customer", Name: "name", Type: algebra.TypeString},
		algebra.Column{Relation: "Customer", Name: "city", Type: algebra.TypeString})
	return c
}

func TestBindPaperQuery1(t *testing.T) {
	c := bindCatalog(t)
	q, err := BindQuery(c, "Q1", `SELECT Product.name FROM Product, Division WHERE Division.city = 'LA' AND Product.Did = Division.Did`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "Q1" {
		t.Errorf("name = %q", q.Name)
	}
	if len(q.Relations) != 2 || q.Relations[0] != "Product" || q.Relations[1] != "Division" {
		t.Errorf("relations = %v", q.Relations)
	}
	if len(q.JoinConds) != 1 {
		t.Fatalf("join conds = %v", q.JoinConds)
	}
	if len(q.Selections) != 1 || q.Selections[0].String() != `Division.city = "LA"` {
		t.Errorf("selections = %v", q.Selections)
	}
	if len(q.Output) != 1 || q.Output[0].String() != "Product.name" {
		t.Errorf("output = %v", q.Output)
	}
}

func TestBindAliasesResolveToBaseNames(t *testing.T) {
	c := bindCatalog(t)
	q, err := BindQuery(c, "Q", `SELECT Pd.name FROM Product AS Pd, Division AS Div WHERE Div.city = 'LA' AND Pd.Did = Div.Did`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Output[0].Relation != "Product" {
		t.Errorf("alias not resolved: %v", q.Output[0])
	}
	if q.JoinConds[0].Left.Relation != "Product" || q.JoinConds[0].Right.Relation != "Division" {
		t.Errorf("join cond = %v", q.JoinConds[0])
	}
}

func TestBindUnqualifiedColumns(t *testing.T) {
	c := bindCatalog(t)
	q, err := BindQuery(c, "Q4", `SELECT Customer.city, date FROM Order, Customer WHERE quantity > 100 AND Order.Cid = Customer.Cid`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Output[1].Relation != "Order" || q.Output[1].Name != "date" {
		t.Errorf("unqualified date resolved to %v", q.Output[1])
	}
	if len(q.Selections) != 1 || q.Selections[0].String() != "Order.quantity > 100" {
		t.Errorf("selections = %v", q.Selections)
	}
}

func TestBindDateLiteralAgainstDateColumn(t *testing.T) {
	c := bindCatalog(t)
	q, err := BindQuery(c, "Q3", `SELECT Customer.name FROM Order, Customer WHERE date > 7/1/96 AND Order.Cid = Customer.Cid`)
	if err != nil {
		t.Fatal(err)
	}
	want := "Order.date > 1996-07-01"
	if len(q.Selections) != 1 || q.Selections[0].String() != want {
		t.Errorf("selections = %v, want %s", q.Selections, want)
	}
}

func TestBindStringDateCoercion(t *testing.T) {
	c := bindCatalog(t)
	q, err := BindQuery(c, "Q", `SELECT Customer.name FROM Order, Customer WHERE date > '1996-07-01' AND Order.Cid = Customer.Cid`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Selections[0].String() != "Order.date > 1996-07-01" {
		t.Errorf("selections = %v", q.Selections)
	}
}

func TestBindSameRelationEqualityIsSelection(t *testing.T) {
	c := bindCatalog(t)
	q, err := BindQuery(c, "Q", `SELECT Order.date FROM Order WHERE Order.Pid = Order.Cid`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.JoinConds) != 0 || len(q.Selections) != 1 {
		t.Errorf("joins = %v, selections = %v", q.JoinConds, q.Selections)
	}
}

func TestBindDisjunctionStaysSelection(t *testing.T) {
	c := bindCatalog(t)
	q, err := BindQuery(c, "Q", `SELECT Division.name FROM Division WHERE city = 'LA' OR city = 'SF'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Selections) != 1 {
		t.Fatalf("selections = %v", q.Selections)
	}
	if _, ok := q.Selections[0].(*algebra.Or); !ok {
		t.Errorf("selection = %T", q.Selections[0])
	}
}

func TestBindSelectionHelper(t *testing.T) {
	c := bindCatalog(t)
	q, err := BindQuery(c, "Q", `SELECT Division.name FROM Division WHERE city = 'LA' AND name = 'Re'`)
	if err != nil {
		t.Fatal(err)
	}
	sel := q.Selection()
	if _, ok := sel.(*algebra.And); !ok {
		t.Errorf("Selection() = %T", sel)
	}
	empty, err := BindQuery(c, "Q", `SELECT Division.name FROM Division`)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Selection() != nil {
		t.Errorf("Selection() of unrestricted query = %v", empty.Selection())
	}
}

func TestBindErrors(t *testing.T) {
	c := bindCatalog(t)
	tests := []struct {
		name, sql, wantErr string
	}{
		{"unknown relation", `SELECT x FROM Ghost`, "unknown relation"},
		{"self join", `SELECT Product.name FROM Product, Product`, "self-joins"},
		{"duplicate alias", `SELECT P.name FROM Product P, Division P`, "duplicate alias"},
		{"unknown qualifier", `SELECT Zz.name FROM Product`, "unknown relation or alias"},
		{"unknown column", `SELECT Product.nope FROM Product`, "unknown column"},
		{"ambiguous column", `SELECT name FROM Product, Division WHERE Product.Did = Division.Did`, "ambiguous column"},
		{"cartesian product", `SELECT Product.name FROM Product, Division`, "cartesian products"},
		{"unknown column in where", `SELECT Product.name FROM Product WHERE ghost = 1`, "unknown column"},
		{"literal vs literal", `SELECT Product.name FROM Product WHERE 1 = 1`, "two literals"},
		{"bad date string", `SELECT Order.date FROM Order WHERE date > 'bogus'`, "cannot parse date"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := BindQuery(c, "Q", tt.sql)
			if err == nil {
				t.Fatal("BindQuery succeeded")
			}
			if !strings.Contains(err.Error(), tt.wantErr) {
				t.Errorf("error %q does not contain %q", err, tt.wantErr)
			}
		})
	}
}

func TestBindNotPredicate(t *testing.T) {
	c := bindCatalog(t)
	q, err := BindQuery(c, "Q", `SELECT Division.name FROM Division WHERE NOT city = 'LA'`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q.Selections[0].(*algebra.Not); !ok {
		t.Errorf("selection = %T", q.Selections[0])
	}
}

func TestBindQueryNamePropagatesInErrors(t *testing.T) {
	c := bindCatalog(t)
	_, err := BindQuery(c, "Q7", `SELECT x FROM`)
	if err == nil || !strings.Contains(err.Error(), "Q7") {
		t.Errorf("error %v does not mention query name", err)
	}
}
