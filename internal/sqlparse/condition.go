package sqlparse

import (
	"fmt"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/catalog"
)

// ParseCondition parses and binds a bare WHERE-style condition (e.g.
// `city = 'LA' OR city = 'SF'`) against the given relations. The public
// facade uses this to let callers pin selectivities for predicates written
// as SQL text.
func ParseCondition(cat *catalog.Catalog, relations []string, cond string) (algebra.Predicate, error) {
	toks, err := lex(cond)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: cond}
	expr, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("trailing input after condition")
	}
	b := &binder{cat: cat, aliases: make(map[string]string)}
	for _, rel := range relations {
		if _, err := cat.Relation(rel); err != nil {
			return nil, err
		}
		if _, dup := b.aliases[rel]; dup {
			return nil, fmt.Errorf("sqlparse: relation %s listed twice", rel)
		}
		b.aliases[rel] = rel
		b.order = append(b.order, rel)
	}
	return b.toPredicate(expr)
}
