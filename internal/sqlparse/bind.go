package sqlparse

import (
	"fmt"
	"strings"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/catalog"
)

// Query is a bound SPJ query in the normal form the framework consumes: a
// set of base relations, equi-join conditions linking them, residual
// selection conjuncts, and an output projection. This is exactly the input
// shape of the single-query optimizer and, transitively, of MVPP
// construction.
type Query struct {
	// Name identifies the query in MVPPs and reports (e.g. "Q1").
	Name string
	// SQL preserves the original text.
	SQL string
	// Output is the projection list.
	Output []algebra.ColumnRef
	// Relations lists the distinct base relations, in FROM order.
	Relations []string
	// Selections holds the non-join conjuncts of WHERE.
	Selections []algebra.Predicate
	// JoinConds holds the cross-relation equality conjuncts.
	JoinConds []algebra.JoinCond
	// GroupBy and Aggregates describe a top-level aggregation (the paper's
	// future-work extension). Empty Aggregates means a pure SPJ query, in
	// which case Output carries the projection; for aggregation queries
	// the output schema is GroupBy columns followed by aggregate aliases
	// and Output is nil.
	GroupBy    []algebra.ColumnRef
	Aggregates []algebra.Aggregation
}

// IsAggregate reports whether the query has a top-level aggregation.
func (q *Query) IsAggregate() bool { return len(q.Aggregates) > 0 }

// Selection returns the conjunction of all selection predicates (nil when
// none).
func (q *Query) Selection() algebra.Predicate {
	return algebra.NewAnd(q.Selections...)
}

// binder resolves a parsed statement against a catalog.
type binder struct {
	cat     *catalog.Catalog
	aliases map[string]string // alias or relation name → relation name
	order   []string          // relation names in FROM order
}

// BindQuery parses and binds sql against the catalog, producing the named
// bound query.
func BindQuery(cat *catalog.Catalog, name, sql string) (*Query, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, fmt.Errorf("query %s: %w", name, err)
	}
	q, err := Bind(cat, stmt)
	if err != nil {
		return nil, fmt.Errorf("query %s: %w", name, err)
	}
	q.Name = name
	q.SQL = sql
	return q, nil
}

// Bind resolves the statement against the catalog.
func Bind(cat *catalog.Catalog, stmt *Stmt) (*Query, error) {
	b := &binder{cat: cat, aliases: make(map[string]string)}
	for _, tr := range stmt.From {
		if _, err := cat.Relation(tr.Name); err != nil {
			return nil, err
		}
		if _, dup := b.aliases[tr.Name]; dup {
			return nil, fmt.Errorf("sqlparse: relation %s appears twice in FROM (self-joins are not supported)", tr.Name)
		}
		b.aliases[tr.Name] = tr.Name
		if tr.Alias != "" {
			if _, dup := b.aliases[tr.Alias]; dup {
				return nil, fmt.Errorf("sqlparse: duplicate alias %s", tr.Alias)
			}
			b.aliases[tr.Alias] = tr.Name
		}
		b.order = append(b.order, tr.Name)
	}
	q := &Query{Relations: b.order}

	for _, ref := range stmt.GroupBy {
		resolved, err := b.resolveColumn(ref)
		if err != nil {
			return nil, err
		}
		q.GroupBy = append(q.GroupBy, resolved)
	}

	var plain []algebra.ColumnRef
	aliases := make(map[string]bool)
	for _, item := range stmt.Projections {
		if item.Agg == nil {
			ref, err := b.resolveColumn(*item.Col)
			if err != nil {
				return nil, err
			}
			plain = append(plain, ref)
			continue
		}
		agg, err := b.bindAggregate(*item.Agg, aliases)
		if err != nil {
			return nil, err
		}
		q.Aggregates = append(q.Aggregates, agg)
	}

	switch {
	case len(q.Aggregates) == 0 && len(q.GroupBy) > 0:
		return nil, fmt.Errorf("sqlparse: GROUP BY without aggregate functions is not supported")
	case len(q.Aggregates) == 0:
		q.Output = plain
	default:
		// SQL validity: plain select items must be grouping columns.
		inGroup := make(map[string]bool, len(q.GroupBy))
		for _, g := range q.GroupBy {
			inGroup[g.String()] = true
		}
		for _, ref := range plain {
			if !inGroup[ref.String()] {
				return nil, fmt.Errorf("sqlparse: column %s must appear in GROUP BY or an aggregate function", ref)
			}
		}
	}

	if stmt.Where != nil {
		if err := b.classify(stmt.Where, q); err != nil {
			return nil, err
		}
	}
	if len(q.Relations) > 1 && len(q.JoinConds) == 0 {
		return nil, fmt.Errorf("sqlparse: %d relations but no join conditions (cartesian products are not supported)", len(q.Relations))
	}
	return q, nil
}

// bindAggregate resolves one aggregate expression and assigns a unique
// alias when none was written.
func (b *binder) bindAggregate(e AggExpr, aliases map[string]bool) (algebra.Aggregation, error) {
	funcs := map[string]algebra.AggFunc{
		"COUNT": algebra.AggCount,
		"SUM":   algebra.AggSum,
		"MIN":   algebra.AggMin,
		"MAX":   algebra.AggMax,
		"AVG":   algebra.AggAvg,
	}
	f, ok := funcs[e.Func]
	if !ok {
		return algebra.Aggregation{}, fmt.Errorf("sqlparse: unknown aggregate function %q", e.Func)
	}
	agg := algebra.Aggregation{Func: f, Alias: e.Alias}
	if e.Arg != nil {
		ref, err := b.resolveColumn(*e.Arg)
		if err != nil {
			return algebra.Aggregation{}, err
		}
		agg.Arg = ref
	} else if f != algebra.AggCount {
		return algebra.Aggregation{}, fmt.Errorf("sqlparse: %s requires an argument", e.Func)
	}
	if agg.Alias == "" {
		base := strings.ToLower(e.Func)
		if e.Arg != nil {
			base += "_" + agg.Arg.Name
		} else {
			base += "_all"
		}
		alias := base
		for i := 2; aliases[alias]; i++ {
			alias = fmt.Sprintf("%s_%d", base, i)
		}
		agg.Alias = alias
	}
	if aliases[agg.Alias] {
		return algebra.Aggregation{}, fmt.Errorf("sqlparse: duplicate aggregate alias %q", agg.Alias)
	}
	aliases[agg.Alias] = true
	return agg, nil
}

// classify splits the top-level conjunction into join conditions and
// selections.
func (b *binder) classify(e Expr, q *Query) error {
	if bin, ok := e.(*BinExpr); ok && bin.Op == "AND" {
		if err := b.classify(bin.Left, q); err != nil {
			return err
		}
		return b.classify(bin.Right, q)
	}
	// A top-level equality between columns of two different relations is a
	// join condition.
	if cmp, ok := e.(*CmpExpr); ok && cmp.Op == "=" && cmp.Left.Col != nil && cmp.Right.Col != nil {
		l, err := b.resolveColumn(*cmp.Left.Col)
		if err != nil {
			return err
		}
		r, err := b.resolveColumn(*cmp.Right.Col)
		if err != nil {
			return err
		}
		if l.Relation != r.Relation {
			q.JoinConds = append(q.JoinConds, algebra.JoinCond{Left: l, Right: r})
			return nil
		}
	}
	pred, err := b.toPredicate(e)
	if err != nil {
		return err
	}
	q.Selections = append(q.Selections, pred)
	return nil
}

// toPredicate converts an expression subtree to an algebra predicate.
func (b *binder) toPredicate(e Expr) (algebra.Predicate, error) {
	switch v := e.(type) {
	case *BinExpr:
		l, err := b.toPredicate(v.Left)
		if err != nil {
			return nil, err
		}
		r, err := b.toPredicate(v.Right)
		if err != nil {
			return nil, err
		}
		if v.Op == "AND" {
			return algebra.NewAnd(l, r), nil
		}
		return algebra.NewOr(l, r), nil
	case *NotExpr:
		inner, err := b.toPredicate(v.Expr)
		if err != nil {
			return nil, err
		}
		return algebra.NewNot(inner), nil
	case *CmpExpr:
		return b.toComparison(v)
	default:
		return nil, fmt.Errorf("sqlparse: unsupported expression type %T", e)
	}
}

func (b *binder) toComparison(cmp *CmpExpr) (algebra.Predicate, error) {
	op, err := compareOp(cmp.Op)
	if err != nil {
		return nil, err
	}
	// Determine the column side first so literals can be coerced to its
	// type.
	var colType algebra.Type
	for _, o := range []Operand{cmp.Left, cmp.Right} {
		if o.Col == nil {
			continue
		}
		ref, err := b.resolveColumn(*o.Col)
		if err != nil {
			return nil, err
		}
		t, err := b.columnType(ref)
		if err != nil {
			return nil, err
		}
		colType = t
		break
	}
	left, err := b.toOperand(cmp.Left, colType)
	if err != nil {
		return nil, err
	}
	right, err := b.toOperand(cmp.Right, colType)
	if err != nil {
		return nil, err
	}
	if !left.IsColumn && !right.IsColumn {
		return nil, fmt.Errorf("sqlparse: comparison between two literals")
	}
	return algebra.Compare(left, op, right), nil
}

func (b *binder) toOperand(o Operand, colType algebra.Type) (algebra.Operand, error) {
	switch {
	case o.Col != nil:
		ref, err := b.resolveColumn(*o.Col)
		if err != nil {
			return algebra.Operand{}, err
		}
		return algebra.ColOperand(ref), nil
	case o.IntLit != nil:
		if colType == algebra.TypeDate {
			return algebra.LitOperand(algebra.DateVal(*o.IntLit)), nil
		}
		return algebra.LitOperand(algebra.IntVal(*o.IntLit)), nil
	case o.FloatLit != nil:
		return algebra.LitOperand(algebra.FloatVal(*o.FloatLit)), nil
	case o.StrLit != nil:
		if colType == algebra.TypeDate {
			v, err := algebra.ParseDate(*o.StrLit)
			if err != nil {
				return algebra.Operand{}, err
			}
			return algebra.LitOperand(v), nil
		}
		return algebra.LitOperand(algebra.StringVal(*o.StrLit)), nil
	case o.DateLit != nil:
		v, err := algebra.ParseDate(*o.DateLit)
		if err != nil {
			return algebra.Operand{}, err
		}
		return algebra.LitOperand(v), nil
	default:
		return algebra.Operand{}, fmt.Errorf("sqlparse: empty operand")
	}
}

// resolveColumn maps a possibly alias-qualified, possibly unqualified
// reference to a fully qualified base-relation reference.
func (b *binder) resolveColumn(ref ColRef) (algebra.ColumnRef, error) {
	if ref.Qualifier != "" {
		rel, ok := b.aliases[ref.Qualifier]
		if !ok {
			return algebra.ColumnRef{}, fmt.Errorf("sqlparse: unknown relation or alias %q", ref.Qualifier)
		}
		out := algebra.Ref(rel, ref.Column)
		if _, err := b.columnType(out); err != nil {
			return algebra.ColumnRef{}, err
		}
		return out, nil
	}
	var found algebra.ColumnRef
	matches := 0
	for _, rel := range b.order {
		schema, err := b.cat.Schema(rel)
		if err != nil {
			return algebra.ColumnRef{}, err
		}
		if schema.Has(algebra.Ref(rel, ref.Column)) {
			found = algebra.Ref(rel, ref.Column)
			matches++
		}
	}
	switch matches {
	case 0:
		return algebra.ColumnRef{}, fmt.Errorf("sqlparse: unknown column %q", ref.Column)
	case 1:
		return found, nil
	default:
		return algebra.ColumnRef{}, fmt.Errorf("sqlparse: ambiguous column %q (qualify it)", ref.Column)
	}
}

func (b *binder) columnType(ref algebra.ColumnRef) (algebra.Type, error) {
	schema, err := b.cat.Schema(ref.Relation)
	if err != nil {
		return 0, err
	}
	i, err := schema.Resolve(ref)
	if err != nil {
		return 0, fmt.Errorf("sqlparse: %w", err)
	}
	return schema.Columns[i].Type, nil
}

func compareOp(op string) (algebra.CompareOp, error) {
	switch op {
	case "=":
		return algebra.OpEq, nil
	case "<>":
		return algebra.OpNotEq, nil
	case "<":
		return algebra.OpLt, nil
	case "<=":
		return algebra.OpLe, nil
	case ">":
		return algebra.OpGt, nil
	case ">=":
		return algebra.OpGe, nil
	default:
		return 0, fmt.Errorf("sqlparse: unknown operator %q", op)
	}
}
