package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
)

// Stmt is the unbound parse tree of a SELECT statement.
type Stmt struct {
	// Projections lists the SELECT items (columns or aggregates).
	Projections []SelectItem
	// From lists the relations with optional aliases.
	From []TableRef
	// Where is the root of the predicate tree; nil when absent.
	Where Expr
	// GroupBy lists the GROUP BY columns; empty when absent.
	GroupBy []ColRef
}

// SelectItem is one entry of the SELECT list: a plain column or an
// aggregate expression.
type SelectItem struct {
	Col *ColRef
	Agg *AggExpr
}

// String renders the item.
func (s SelectItem) String() string {
	if s.Agg != nil {
		return s.Agg.String()
	}
	return s.Col.String()
}

// AggExpr is an aggregate-function call in the SELECT list.
type AggExpr struct {
	Func  string  // COUNT, SUM, MIN, MAX, AVG (upper case)
	Arg   *ColRef // nil means COUNT(*)
	Alias string  // empty when no AS clause
}

// String renders e.g. "SUM(quantity) AS total".
func (a AggExpr) String() string {
	arg := "*"
	if a.Arg != nil {
		arg = a.Arg.String()
	}
	out := a.Func + "(" + arg + ")"
	if a.Alias != "" {
		out += " AS " + a.Alias
	}
	return out
}

// ColRef is an unresolved column reference.
type ColRef struct {
	Qualifier string // relation or alias; empty when unqualified
	Column    string
}

// String renders the reference.
func (c ColRef) String() string {
	if c.Qualifier == "" {
		return c.Column
	}
	return c.Qualifier + "." + c.Column
}

// TableRef is one FROM-list entry.
type TableRef struct {
	Name  string
	Alias string // empty when unaliased
}

// Expr is an unbound predicate expression.
type Expr interface{ exprNode() }

// BinExpr is AND/OR over two subexpressions.
type BinExpr struct {
	Op    string // "AND" or "OR"
	Left  Expr
	Right Expr
}

// NotExpr negates a subexpression.
type NotExpr struct {
	Expr Expr
}

// CmpExpr is an atomic comparison.
type CmpExpr struct {
	Left  Operand
	Op    string // "=", "<>", "<", "<=", ">", ">="
	Right Operand
}

// Operand is either a column reference or a literal.
type Operand struct {
	Col      *ColRef
	IntLit   *int64
	FloatLit *float64
	StrLit   *string
	DateLit  *string // original spelling, e.g. "7/1/96"
}

func (*BinExpr) exprNode() {}
func (*NotExpr) exprNode() {}
func (*CmpExpr) exprNode() {}

type parser struct {
	toks []token
	pos  int
	src  string
}

// Parse parses one SELECT statement.
func Parse(sql string) (*Stmt, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: sql}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("trailing input after statement")
	}
	return stmt, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	t := p.peek()
	loc := fmt.Sprintf(" at offset %d", t.pos)
	if t.kind == tokEOF {
		loc = " at end of input"
	}
	return fmt.Errorf("sqlparse: "+format+loc, args...)
}

func (p *parser) expectKeyword(kw string) error {
	t := p.peek()
	if t.kind != tokKeyword || t.text != kw {
		return p.errorf("expected %s, found %q", kw, t.text)
	}
	p.next()
	return nil
}

func (p *parser) parseSelect() (*Stmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &Stmt{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Projections = append(stmt.Projections, item)
		if p.peek().kind != tokComma {
			break
		}
		p.next()
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokIdent {
			return nil, p.errorf("expected relation name, found %q", t.text)
		}
		p.next()
		tr := TableRef{Name: t.text}
		if p.peek().kind == tokKeyword && p.peek().text == "AS" {
			p.next()
			a := p.peek()
			if a.kind != tokIdent {
				return nil, p.errorf("expected alias after AS, found %q", a.text)
			}
			p.next()
			tr.Alias = a.text
		} else if p.peek().kind == tokIdent {
			tr.Alias = p.next().text
		}
		stmt.From = append(stmt.From, tr)
		if p.peek().kind != tokComma {
			break
		}
		p.next()
	}
	if p.peek().kind == tokKeyword && p.peek().text == "WHERE" {
		p.next()
		expr, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		stmt.Where = expr
	}
	if p.peek().kind == tokKeyword && p.peek().text == "GROUP" {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			ref, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, ref)
			if p.peek().kind != tokComma {
				break
			}
			p.next()
		}
	}
	return stmt, nil
}

// aggFuncs are the aggregate-function names recognized (case-insensitively)
// when followed by an opening parenthesis.
var aggFuncs = map[string]bool{
	"COUNT": true, "SUM": true, "MIN": true, "MAX": true, "AVG": true,
}

// parseSelectItem parses a plain column or an aggregate call with optional
// alias.
func (p *parser) parseSelectItem() (SelectItem, error) {
	t := p.peek()
	if t.kind == tokIdent && aggFuncs[strings.ToUpper(t.text)] && p.toks[p.pos+1].kind == tokLParen {
		p.next() // function name
		p.next() // (
		agg := &AggExpr{Func: strings.ToUpper(t.text)}
		if p.peek().kind == tokStar {
			p.next()
			if agg.Func != "COUNT" {
				return SelectItem{}, p.errorf("%s(*) is not valid; only COUNT(*)", agg.Func)
			}
		} else {
			ref, err := p.parseColRef()
			if err != nil {
				return SelectItem{}, err
			}
			agg.Arg = &ref
		}
		if p.peek().kind != tokRParen {
			return SelectItem{}, p.errorf("expected ')' after aggregate argument")
		}
		p.next()
		if p.peek().kind == tokKeyword && p.peek().text == "AS" {
			p.next()
			a := p.peek()
			if a.kind != tokIdent {
				return SelectItem{}, p.errorf("expected alias after AS, found %q", a.text)
			}
			p.next()
			agg.Alias = a.text
		}
		return SelectItem{Agg: agg}, nil
	}
	ref, err := p.parseColRef()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Col: &ref}, nil
}

func (p *parser) parseColRef() (ColRef, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return ColRef{}, p.errorf("expected column reference, found %q", t.text)
	}
	p.next()
	if p.peek().kind == tokDot {
		p.next()
		c := p.peek()
		if c.kind != tokIdent {
			return ColRef{}, p.errorf("expected column name after '.', found %q", c.text)
		}
		p.next()
		return ColRef{Qualifier: t.text, Column: c.text}, nil
	}
	return ColRef{Column: t.text}, nil
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokKeyword && p.peek().text == "OR" {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokKeyword && p.peek().text == "AND" {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.peek().kind == tokKeyword && p.peek().text == "NOT" {
		p.next()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &NotExpr{Expr: inner}, nil
	}
	if p.peek().kind == tokLParen {
		p.next()
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tokRParen {
			return nil, p.errorf("expected ')'")
		}
		p.next()
		return inner, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind != tokOp {
		return nil, p.errorf("expected comparison operator, found %q", t.text)
	}
	p.next()
	right, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return &CmpExpr{Left: left, Op: t.text, Right: right}, nil
}

func (p *parser) parseOperand() (Operand, error) {
	t := p.peek()
	switch t.kind {
	case tokIdent:
		ref, err := p.parseColRef()
		if err != nil {
			return Operand{}, err
		}
		return Operand{Col: &ref}, nil
	case tokNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return Operand{}, p.errorf("bad float literal %q", t.text)
			}
			return Operand{FloatLit: &f}, nil
		}
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Operand{}, p.errorf("bad integer literal %q", t.text)
		}
		return Operand{IntLit: &v}, nil
	case tokString:
		p.next()
		s := t.text
		return Operand{StrLit: &s}, nil
	case tokDate:
		p.next()
		d := t.text
		return Operand{DateLit: &d}, nil
	default:
		return Operand{}, p.errorf("expected operand, found %s", t.kind)
	}
}
