package optimizer_test

import (
	"testing"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/cost"
	"github.com/warehousekit/mvpp/internal/optimizer"
	"github.com/warehousekit/mvpp/internal/sqlparse"
)

// enumerateJoinTrees produces every join tree (all shapes, all
// orientations) over the given leaf plans, joining only connected subsets.
func enumerateJoinTrees(leaves map[string]algebra.Node, conds []algebra.JoinCond) []algebra.Node {
	names := make([]string, 0, len(leaves))
	for n := range leaves {
		names = append(names, n)
	}
	// memo by bitmask
	memo := map[uint][]algebra.Node{}
	var build func(mask uint) []algebra.Node
	build = func(mask uint) []algebra.Node {
		if got, ok := memo[mask]; ok {
			return got
		}
		var out []algebra.Node
		// single relation
		count := 0
		var only int
		for i := range names {
			if mask&(1<<uint(i)) != 0 {
				count++
				only = i
			}
		}
		if count == 1 {
			out = []algebra.Node{leaves[names[only]]}
			memo[mask] = out
			return out
		}
		// ordered splits
		for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
			other := mask ^ sub
			leftTrees := build(sub)
			rightTrees := build(other)
			for _, lt := range leftTrees {
				for _, rt := range rightTrees {
					var on []algebra.JoinCond
					for _, c := range conds {
						switch {
						case lt.Schema().Has(c.Left) && rt.Schema().Has(c.Right):
							on = append(on, c)
						case lt.Schema().Has(c.Right) && rt.Schema().Has(c.Left):
							on = append(on, algebra.JoinCond{Left: c.Right, Right: c.Left})
						}
					}
					if len(on) == 0 {
						continue
					}
					out = append(out, algebra.NewJoin(lt, rt, on))
				}
			}
		}
		memo[mask] = out
		return out
	}
	full := uint(1)<<uint(len(names)) - 1
	return build(full)
}

// TestOptimizerMatchesBruteForce verifies the join-order DP finds the true
// minimum over the full plan space for each paper query.
func TestOptimizerMatchesBruteForce(t *testing.T) {
	ex := loadExample(t)
	est := cost.NewEstimator(ex.Catalog, cost.PaperOptions())
	model := &cost.PaperModel{}
	opt := optimizer.New(est, model, optimizer.Options{KeepAllColumns: true})

	for _, q := range ex.Queries {
		_, optCost, err := opt.Optimize(q)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}

		// Brute force over the same plan space: leaf selections pushed,
		// residuals and the projection applied identically on top.
		leaves := map[string]algebra.Node{}
		var residual []algebra.Predicate
		leafPred := map[string][]algebra.Predicate{}
		for _, p := range q.Selections {
			rels := map[string]bool{}
			for _, ref := range p.Columns() {
				rels[ref.Relation] = true
			}
			if len(rels) == 1 {
				for rel := range rels {
					leafPred[rel] = append(leafPred[rel], p)
				}
				continue
			}
			residual = append(residual, p)
		}
		for _, rel := range q.Relations {
			scan, err := ex.Catalog.Scan(rel)
			if err != nil {
				t.Fatal(err)
			}
			var leaf algebra.Node = scan
			if pred := algebra.NewAnd(leafPred[rel]...); pred != nil {
				leaf = algebra.NewSelect(leaf, pred)
			}
			leaves[rel] = leaf
		}
		trees := enumerateJoinTrees(leaves, q.JoinConds)
		if len(trees) == 0 {
			t.Fatalf("%s: no brute-force plans", q.Name)
		}
		best := -1.0
		for _, tree := range trees {
			plan := tree
			if pred := algebra.NewAnd(residual...); pred != nil {
				plan = algebra.NewSelect(plan, pred)
			}
			if len(q.Output) > 0 {
				plan = algebra.NewProject(plan, q.Output)
			}
			c, err := est.PlanCost(model, plan)
			if err != nil {
				t.Fatal(err)
			}
			if best < 0 || c < best {
				best = c
			}
		}
		if optCost > best+1e-6 {
			t.Errorf("%s: optimizer cost %v, brute-force minimum %v over %d plans",
				q.Name, optCost, best, len(trees))
		}
		if optCost < best-1e-6 {
			t.Errorf("%s: optimizer cost %v below brute-force minimum %v — plan space mismatch",
				q.Name, optCost, best)
		}
	}
}

// TestOptimizerMatchesBruteForceDefaultMode repeats the check under the
// principled estimator, where sizes propagate through selectivities and
// orientation matters more.
func TestOptimizerMatchesBruteForceDefaultMode(t *testing.T) {
	ex := loadExample(t)
	est := cost.NewEstimator(ex.Catalog, cost.DefaultOptions())
	model := &cost.BlockNLJModel{}
	opt := optimizer.New(est, model, optimizer.Options{KeepAllColumns: true})

	q, err := sqlparse.BindQuery(ex.Catalog, "QX",
		`SELECT Customer.name, Product.name FROM Product, Division, Order, Customer
		 WHERE Division.city = 'LA' AND Product.Did = Division.Did
		   AND Product.Pid = Order.Pid AND Order.Cid = Customer.Cid`)
	if err != nil {
		t.Fatal(err)
	}
	_, optCost, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}

	leaves := map[string]algebra.Node{}
	for _, rel := range q.Relations {
		scan, err := ex.Catalog.Scan(rel)
		if err != nil {
			t.Fatal(err)
		}
		var leaf algebra.Node = scan
		if rel == "Division" {
			leaf = algebra.NewSelect(leaf, q.Selections[0])
		}
		leaves[rel] = leaf
	}
	best := -1.0
	for _, tree := range enumerateJoinTrees(leaves, q.JoinConds) {
		plan := algebra.NewProject(tree, q.Output)
		c, err := est.PlanCost(model, plan)
		if err != nil {
			t.Fatal(err)
		}
		if best < 0 || c < best {
			best = c
		}
	}
	if optCost > best+1e-6 || optCost < best-1e-6 {
		t.Errorf("optimizer %v vs brute force %v", optCost, best)
	}
}
