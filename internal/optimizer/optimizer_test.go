package optimizer_test

import (
	"strings"
	"testing"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/cost"
	"github.com/warehousekit/mvpp/internal/optimizer"
	"github.com/warehousekit/mvpp/internal/paper"
	"github.com/warehousekit/mvpp/internal/sqlparse"
)

func loadExample(t *testing.T) *paper.Example {
	t.Helper()
	ex, err := paper.Load()
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

func newOptimizer(t *testing.T, ex *paper.Example, opts optimizer.Options) *optimizer.Optimizer {
	t.Helper()
	est := cost.NewEstimator(ex.Catalog, cost.DefaultOptions())
	return optimizer.New(est, &cost.PaperModel{}, opts)
}

func queryByName(t *testing.T, ex *paper.Example, name string) *sqlparse.Query {
	t.Helper()
	for _, q := range ex.Queries {
		if q.Name == name {
			return q
		}
	}
	t.Fatalf("query %s not found", name)
	return nil
}

func TestOptimizeAllPaperQueriesProduceValidPlans(t *testing.T) {
	ex := loadExample(t)
	opt := newOptimizer(t, ex, optimizer.Options{})
	plans, costs, err := opt.OptimizeAll(ex.Queries)
	if err != nil {
		t.Fatal(err)
	}
	for i, plan := range plans {
		if err := algebra.Validate(plan); err != nil {
			t.Errorf("%s: invalid plan: %v", ex.Queries[i].Name, err)
		}
		if costs[i] <= 0 {
			t.Errorf("%s: cost = %v", ex.Queries[i].Name, costs[i])
		}
		// every base relation of the query appears in the plan
		leaves := algebra.Leaves(plan)
		if len(leaves) != len(ex.Queries[i].Relations) {
			t.Errorf("%s: leaves = %v, relations = %v", ex.Queries[i].Name, leaves, ex.Queries[i].Relations)
		}
	}
}

func TestOptimizePushesSelectionOntoDivision(t *testing.T) {
	ex := loadExample(t)
	opt := newOptimizer(t, ex, optimizer.Options{})
	plan, _, err := opt.Optimize(queryByName(t, ex, paper.Q1))
	if err != nil {
		t.Fatal(err)
	}
	// The city="LA" selection must sit directly above the Division scan.
	found := false
	algebra.Walk(plan, func(n algebra.Node) {
		if s, ok := n.(*algebra.Select); ok {
			if sc, ok := s.Input.(*algebra.Scan); ok && sc.Relation == "Division" {
				if strings.Contains(s.Pred.String(), `city = "LA"`) {
					found = true
				}
			}
		}
	})
	if !found {
		t.Errorf("selection not pushed to Division scan:\n%s", plan.Canonical())
	}
}

func TestOptimizeChoosesFilteredDivisionAsOuter(t *testing.T) {
	// Under the paper model (cost = b_outer × b_inner + b_out), the cheaper
	// orientation for Q1's join puts the 10-block filtered Division on the
	// outer side against the 3000-block Product.
	ex := loadExample(t)
	opt := newOptimizer(t, ex, optimizer.Options{})
	plan, _, err := opt.Optimize(queryByName(t, ex, paper.Q1))
	if err != nil {
		t.Fatal(err)
	}
	var join *algebra.Join
	algebra.Walk(plan, func(n algebra.Node) {
		if j, ok := n.(*algebra.Join); ok {
			join = j
		}
	})
	if join == nil {
		t.Fatal("no join in plan")
	}
	if got := algebra.Leaves(join.Left); len(got) != 1 || got[0] != "Division" {
		t.Errorf("outer side leaves = %v, want [Division]", got)
	}
}

func TestOptimizeCostIsMinimalAmongOrientations(t *testing.T) {
	// Hand-build both orientations of Q1's join and check the optimizer's
	// cost is no worse than either.
	ex := loadExample(t)
	est := cost.NewEstimator(ex.Catalog, cost.DefaultOptions())
	model := &cost.PaperModel{}
	opt := optimizer.New(est, model, optimizer.Options{})
	_, bestCost, err := opt.Optimize(queryByName(t, ex, paper.Q1))
	if err != nil {
		t.Fatal(err)
	}

	pd, _ := ex.Catalog.Scan("Product")
	div, _ := ex.Catalog.Scan("Division")
	sel := algebra.NewSelect(div, algebra.Eq(algebra.Ref("Division", "city"), algebra.StringVal("LA")))
	for _, plan := range []algebra.Node{
		algebra.NewProject(algebra.NewJoin(pd, sel,
			[]algebra.JoinCond{{Left: algebra.Ref("Product", "Did"), Right: algebra.Ref("Division", "Did")}}),
			[]algebra.ColumnRef{algebra.Ref("Product", "name")}),
		algebra.NewProject(algebra.NewJoin(sel, pd,
			[]algebra.JoinCond{{Left: algebra.Ref("Division", "Did"), Right: algebra.Ref("Product", "Did")}}),
			[]algebra.ColumnRef{algebra.Ref("Product", "name")}),
	} {
		c, err := est.PlanCost(model, plan)
		if err != nil {
			t.Fatal(err)
		}
		if bestCost > c+1e-9 {
			t.Errorf("optimizer cost %v worse than hand-built %v", bestCost, c)
		}
	}
}

func TestOptimizeLeftDeepOnly(t *testing.T) {
	ex := loadExample(t)
	opt := newOptimizer(t, ex, optimizer.Options{LeftDeepOnly: true})
	plan, _, err := opt.Optimize(queryByName(t, ex, paper.Q3))
	if err != nil {
		t.Fatal(err)
	}
	// In a left-deep tree, every join has at most one join child among its
	// two children... precisely: the right child contains no join, OR the
	// left child contains no join (we allow either orientation for the
	// single-relation side).
	algebra.Walk(plan, func(n algebra.Node) {
		if j, ok := n.(*algebra.Join); ok {
			leftJoins := countJoins(j.Left)
			rightJoins := countJoins(j.Right)
			if leftJoins > 0 && rightJoins > 0 {
				t.Errorf("bushy join found in left-deep mode:\n%s", plan.Canonical())
			}
		}
	})
}

func TestBushyNoWorseThanLeftDeep(t *testing.T) {
	ex := loadExample(t)
	for _, q := range ex.Queries {
		bushy := newOptimizer(t, ex, optimizer.Options{})
		deep := newOptimizer(t, ex, optimizer.Options{LeftDeepOnly: true})
		_, bc, err := bushy.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		_, dc, err := deep.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		if bc > dc+1e-9 {
			t.Errorf("%s: bushy cost %v > left-deep cost %v", q.Name, bc, dc)
		}
	}
}

func TestOptimizeSingleRelationQuery(t *testing.T) {
	ex := loadExample(t)
	q, err := sqlparse.BindQuery(ex.Catalog, "QS", `SELECT Division.name FROM Division WHERE city = 'LA'`)
	if err != nil {
		t.Fatal(err)
	}
	opt := newOptimizer(t, ex, optimizer.Options{})
	plan, c, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := algebra.Validate(plan); err != nil {
		t.Fatal(err)
	}
	// Half scan of Division (250) plus projecting the 10-block selection
	// result.
	if c != 260 {
		t.Errorf("cost = %v, want 260", c)
	}
}

func TestOptimizeKeepAllColumns(t *testing.T) {
	ex := loadExample(t)
	withPrune := newOptimizer(t, ex, optimizer.Options{})
	noPrune := newOptimizer(t, ex, optimizer.Options{KeepAllColumns: true})
	q := queryByName(t, ex, paper.Q1)
	p1, _, err := withPrune.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := noPrune.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if countProjects(p1) <= countProjects(p2) {
		t.Errorf("pruned plan has %d projections, unpruned %d", countProjects(p1), countProjects(p2))
	}
}

func TestOptimizeResidualCrossPredicate(t *testing.T) {
	// A non-equality cross-relation predicate must survive above the join.
	ex := loadExample(t)
	q, err := sqlparse.BindQuery(ex.Catalog, "QX",
		`SELECT Customer.name FROM Order, Customer WHERE Order.Cid = Customer.Cid AND Order.quantity > Customer.Cid`)
	if err != nil {
		t.Fatal(err)
	}
	opt := newOptimizer(t, ex, optimizer.Options{})
	plan, _, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	algebra.Walk(plan, func(n algebra.Node) {
		if s, ok := n.(*algebra.Select); ok {
			if strings.Contains(s.Pred.String(), "Order.quantity") && strings.Contains(s.Pred.String(), "Customer.Cid") {
				found = true
			}
		}
	})
	if !found {
		t.Errorf("cross predicate lost:\n%s", plan.Canonical())
	}
	if err := algebra.Validate(plan); err != nil {
		t.Errorf("plan invalid: %v", err)
	}
}

func TestOptimizeErrors(t *testing.T) {
	ex := loadExample(t)
	opt := newOptimizer(t, ex, optimizer.Options{})
	if _, _, err := opt.Optimize(&sqlparse.Query{Name: "empty"}); err == nil {
		t.Error("empty query accepted")
	}
	// Disconnected join graph: two relations, join condition referencing a
	// third.
	q := &sqlparse.Query{
		Name:      "disc",
		Relations: []string{"Order", "Customer"},
		JoinConds: []algebra.JoinCond{{Left: algebra.Ref("Order", "Pid"), Right: algebra.Ref("Product", "Pid")}},
		Output:    []algebra.ColumnRef{algebra.Ref("Order", "date")},
	}
	if _, _, err := opt.Optimize(q); err == nil {
		t.Error("disconnected query accepted")
	}
	// Too many relations.
	big := &sqlparse.Query{Name: "big", Relations: make([]string, optimizer.MaxRelations+1)}
	if _, _, err := opt.Optimize(big); err == nil || !strings.Contains(err.Error(), "maximum") {
		t.Errorf("oversized query error = %v", err)
	}
}

func TestOptimizerSharedEstimatorAcrossQueries(t *testing.T) {
	// Using one estimator for all four queries must give identical results
	// to fresh estimators per query (memoization must be semantically
	// transparent).
	ex := loadExample(t)
	shared := cost.NewEstimator(ex.Catalog, cost.DefaultOptions())
	sharedOpt := optimizer.New(shared, &cost.PaperModel{}, optimizer.Options{})
	for _, q := range ex.Queries {
		fresh := optimizer.New(cost.NewEstimator(ex.Catalog, cost.DefaultOptions()), &cost.PaperModel{}, optimizer.Options{})
		p1, c1, err := sharedOpt.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		p2, c2, err := fresh.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		if c1 != c2 || !algebra.Equal(p1, p2) {
			t.Errorf("%s: shared-estimator plan differs (cost %v vs %v)", q.Name, c1, c2)
		}
	}
}

func TestOptimizePaperModeCosts(t *testing.T) {
	// In paper-size mode, Q2's optimal cost should be near the paper's
	// 50.082m only if the optimizer is forced into the paper's join order;
	// the optimizer itself finds a cheaper order. Sanity-check both are
	// positive and the optimizer's choice is no worse.
	ex := loadExample(t)
	est := cost.NewEstimator(ex.Catalog, cost.PaperOptions())
	opt := optimizer.New(est, &cost.PaperModel{}, optimizer.Options{})
	_, c, err := opt.Optimize(queryByName(t, ex, paper.Q2))
	if err != nil {
		t.Fatal(err)
	}
	if c <= 0 || c > 50.082e6+1e-6 {
		t.Errorf("optimizer paper-mode Q2 cost = %v, want ≤ paper's 50.082m", c)
	}
}

func countJoins(n algebra.Node) int {
	count := 0
	algebra.Walk(n, func(m algebra.Node) {
		if _, ok := m.(*algebra.Join); ok {
			count++
		}
	})
	return count
}

func countProjects(n algebra.Node) int {
	count := 0
	algebra.Walk(n, func(m algebra.Node) {
		if _, ok := m.(*algebra.Project); ok {
			count++
		}
	})
	return count
}
