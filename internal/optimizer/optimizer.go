// Package optimizer implements the single-query optimizer the MVPP design
// framework builds on: for each bound SPJ query it enumerates join orders
// with dynamic programming over connected relation subsets, applies
// selection push-down and column pruning, and returns the cheapest plan
// under the configured cost model. These per-query optimal plans are the
// inputs to the multiple-MVPP generation algorithm (paper Figure 4, step 1).
package optimizer

import (
	"fmt"
	"math/bits"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/cost"
	"github.com/warehousekit/mvpp/internal/obs"
	"github.com/warehousekit/mvpp/internal/sqlparse"
)

// MaxRelations bounds the DP table size (2^n subsets).
const MaxRelations = 16

// Options configures plan enumeration.
type Options struct {
	// LeftDeepOnly restricts enumeration to left-deep trees (one base
	// relation joins the accumulated result at each step), the shape the
	// paper's Figure 5 plans have. Bushy plans are allowed when false.
	LeftDeepOnly bool
	// KeepAllColumns disables column pruning (projection push-down) on the
	// returned plan.
	KeepAllColumns bool
	// Obs receives a span per optimized query, an EvPlanChosen event for
	// the winning plan, and the plans-enumerated counter. Nil disables
	// instrumentation.
	Obs obs.Observer
}

// Optimizer chooses cheapest plans for bound queries.
type Optimizer struct {
	est   *cost.Estimator
	model cost.Model
	opts  Options
	// enumerated is resolved once at construction; Optimize runs per query
	// and its DP loop bumps the counter per candidate.
	enumerated *obs.Counter
}

// New builds an optimizer over the estimator and cost model.
func New(est *cost.Estimator, model cost.Model, opts Options) *Optimizer {
	return &Optimizer{
		est:        est,
		model:      model,
		opts:       opts,
		enumerated: obs.CounterOf(opts.Obs, obs.CtrPlansEnumerated),
	}
}

// candidate is a DP table entry.
type candidate struct {
	plan algebra.Node
	cost float64
}

// Optimize returns the cheapest plan for the query and its estimated cost
// (the paper's Ca of the query root).
func (o *Optimizer) Optimize(q *sqlparse.Query) (algebra.Node, float64, error) {
	if len(q.Relations) == 0 {
		return nil, 0, fmt.Errorf("optimizer: query %s has no relations", q.Name)
	}
	if len(q.Relations) > MaxRelations {
		return nil, 0, fmt.Errorf("optimizer: query %s joins %d relations; maximum is %d",
			q.Name, len(q.Relations), MaxRelations)
	}
	sp := obs.Start(o.opts.Obs, "optimize.query",
		obs.String("query", q.Name), obs.Int("relations", int64(len(q.Relations))))
	defer obs.End(sp)

	relIndex := make(map[string]int, len(q.Relations))
	for i, r := range q.Relations {
		relIndex[r] = i
	}

	// Partition selections into single-relation conjuncts (pushed onto
	// leaves before enumeration so they shape intermediate sizes) and
	// residual predicates applied after join enumeration.
	leafPreds := make([][]algebra.Predicate, len(q.Relations))
	var residual []algebra.Predicate
	for _, p := range q.Selections {
		rels := predRelations(p)
		if len(rels) == 1 {
			if i, ok := relIndex[rels[0]]; ok {
				leafPreds[i] = append(leafPreds[i], p)
				continue
			}
		}
		residual = append(residual, p)
	}

	// DP base: per-relation access paths.
	best := make(map[uint]candidate, 1<<len(q.Relations))
	for i, rel := range q.Relations {
		schema, err := o.est.Catalog().Schema(rel)
		if err != nil {
			return nil, 0, fmt.Errorf("optimizer: query %s: %w", q.Name, err)
		}
		var plan algebra.Node = algebra.NewScan(rel, schema)
		c := 0.0
		if pred := algebra.NewAnd(leafPreds[i]...); pred != nil {
			plan = algebra.NewSelect(plan, pred)
			oc, err := o.est.OpCost(o.model, plan)
			if err != nil {
				return nil, 0, err
			}
			c = oc
		}
		best[1<<uint(i)] = candidate{plan: plan, cost: c}
	}

	// Join conditions by the pair of relations they connect.
	type edge struct {
		cond        algebra.JoinCond
		left, right int
	}
	var edges []edge
	for _, c := range q.JoinConds {
		li, lok := relIndex[c.Left.Relation]
		ri, rok := relIndex[c.Right.Relation]
		if !lok || !rok {
			return nil, 0, fmt.Errorf("optimizer: query %s: join condition %s references unknown relation", q.Name, c)
		}
		edges = append(edges, edge{cond: c, left: li, right: ri})
	}

	full := uint(1)<<uint(len(q.Relations)) - 1
	// Enumerate subsets in increasing popcount order.
	for size := 2; size <= len(q.Relations); size++ {
		for mask := uint(1); mask <= full; mask++ {
			if bits.OnesCount(mask) != size {
				continue
			}
			var bestHere candidate
			bestOuter := 0.0
			found := false
			// Enumerate splits: sub iterates proper non-empty submasks.
			for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
				other := mask ^ sub
				if sub > other {
					continue // each unordered split once; orientation handled below
				}
				l, lok := best[sub]
				r, rok := best[other]
				if !lok || !rok {
					continue
				}
				if o.opts.LeftDeepOnly && bits.OnesCount(sub) > 1 && bits.OnesCount(other) > 1 {
					continue
				}
				// Collect conditions connecting the two sides, oriented for
				// a (sub=left, other=right) join.
				var onLR, onRL []algebra.JoinCond
				for _, e := range edges {
					lBit, rBit := uint(1)<<uint(e.left), uint(1)<<uint(e.right)
					switch {
					case sub&lBit != 0 && other&rBit != 0:
						onLR = append(onLR, e.cond)
						onRL = append(onRL, algebra.JoinCond{Left: e.cond.Right, Right: e.cond.Left})
					case sub&rBit != 0 && other&lBit != 0:
						onLR = append(onLR, algebra.JoinCond{Left: e.cond.Right, Right: e.cond.Left})
						onRL = append(onRL, e.cond)
					}
				}
				if len(onLR) == 0 {
					continue // not connected: skip cartesian plans
				}
				for _, orient := range []struct {
					outer, inner candidate
					on           []algebra.JoinCond
				}{
					{l, r, onLR},
					{r, l, onRL},
				} {
					o.enumerated.Add(1)
					j := algebra.NewJoin(orient.outer.plan, orient.inner.plan, orient.on)
					oc, err := o.est.OpCost(o.model, j)
					if err != nil {
						return nil, 0, err
					}
					outerEst, err := o.est.Estimate(orient.outer.plan)
					if err != nil {
						return nil, 0, err
					}
					total := orient.outer.cost + orient.inner.cost + oc
					// Deterministic tie-break: under orientation-symmetric
					// models (the paper's b_o·b_i), prefer the smaller outer.
					better := !found || total < bestHere.cost-1e-9 ||
						(total < bestHere.cost+1e-9 && outerEst.Blocks < bestOuter)
					if better {
						bestHere = candidate{plan: j, cost: total}
						bestOuter = outerEst.Blocks
						found = true
					}
				}
			}
			if found {
				best[mask] = bestHere
			}
		}
	}

	final, ok := best[full]
	if !ok {
		return nil, 0, fmt.Errorf("optimizer: query %s: join graph is disconnected", q.Name)
	}
	plan := final.plan

	// Residual (multi-relation) selections go on top, then sink as deep as
	// their column sets allow.
	if pred := algebra.NewAnd(residual...); pred != nil {
		plan = algebra.PushDownSelections(algebra.NewSelect(plan, pred))
	}
	switch {
	case q.IsAggregate():
		plan = algebra.NewAggregate(plan, q.GroupBy, q.Aggregates)
	case len(q.Output) > 0:
		plan = algebra.NewProject(plan, q.Output)
	}
	if !o.opts.KeepAllColumns {
		plan = algebra.PruneColumns(plan, nil)
	}
	plan = algebra.Normalize(plan)
	if err := algebra.Validate(plan); err != nil {
		return nil, 0, fmt.Errorf("optimizer: query %s produced invalid plan: %w", q.Name, err)
	}
	totalCost, err := o.est.PlanCost(o.model, plan)
	if err != nil {
		return nil, 0, err
	}
	if sp != nil {
		sp.Annotate(obs.Float("cost", totalCost))
		sp.Event(obs.EvPlanChosen, obs.String("query", q.Name),
			obs.Int("relations", int64(len(q.Relations))), obs.Float("cost", totalCost))
	}
	return plan, totalCost, nil
}

// OptimizeAll optimizes every query, returning plans in input order.
func (o *Optimizer) OptimizeAll(queries []*sqlparse.Query) ([]algebra.Node, []float64, error) {
	plans := make([]algebra.Node, len(queries))
	costs := make([]float64, len(queries))
	for i, q := range queries {
		p, c, err := o.Optimize(q)
		if err != nil {
			return nil, nil, err
		}
		plans[i] = p
		costs[i] = c
	}
	return plans, costs, nil
}

// predRelations returns the distinct relations a predicate references.
func predRelations(p algebra.Predicate) []string {
	seen := make(map[string]bool, 2)
	var out []string
	for _, ref := range p.Columns() {
		if ref.Relation != "" && !seen[ref.Relation] {
			seen[ref.Relation] = true
			out = append(out, ref.Relation)
		}
	}
	return out
}
