package engine

import (
	"math"
	"strings"

	"github.com/warehousekit/mvpp/internal/algebra"
)

// Vectorized joins. Both join operators produce their output by first
// collecting (left, right) row-index pairs in exactly the emission order
// of the row reference executor, then gathering every output column once
// — no per-row tuple allocation, no per-value interface dispatch on the
// typed fast paths.

// pairMatcher reports whether left row li matches right row ri under one
// resolved equi-condition.
type pairMatcher func(li, ri int) bool

// condMatcher builds the match kernel for one join condition. Typed
// non-null numeric columns compare through float64 with Value.Compare's
// exact three-way arithmetic — both orderings failing means "equal",
// which is how the row engine matches NaN against anything — and typed
// non-null string columns compare directly; anything else (nulls, mixed
// kinds, generic columns) falls back to Value.Equal per pair, which is
// also what makes nulls never match, same as the row engine.
func condMatcher(lc, rc *colvec) pairMatcher {
	ln, rn := numericCol(lc), numericCol(rc)
	switch {
	case ln && rn:
		lk, rk := lc.kind, rc.kind
		if lk != algebra.TypeFloat && rk != algebra.TypeFloat {
			return func(li, ri int) bool {
				return float64(lc.ints[li]) == float64(rc.ints[ri])
			}
		}
		return func(li, ri int) bool {
			x, y := lc.numAt(li), rc.numAt(ri)
			return !(x < y) && !(x > y)
		}
	case stringCol(lc) && stringCol(rc):
		return func(li, ri int) bool { return lc.strs[li] == rc.strs[ri] }
	default:
		return func(li, ri int) bool { return lc.valueAt(li).Equal(rc.valueAt(ri)) }
	}
}

// numericCol reports whether the column feeds the typed numeric kernels.
func numericCol(c *colvec) bool {
	if c.hasNulls() {
		return false
	}
	switch c.typedKind() {
	case algebra.TypeInt, algebra.TypeFloat, algebra.TypeDate:
		return true
	}
	return false
}

// equalityIndexable reports whether a column's join matching reduces to
// plain float64-image equality: typed numeric, no nulls, and — for float
// columns — no NaN lanes, since Value.Compare makes NaN "equal" to
// everything while map lookups would make it equal to nothing.
func equalityIndexable(c *colvec) bool {
	if !numericCol(c) {
		return false
	}
	if c.typedKind() == algebra.TypeFloat {
		for _, f := range c.floats[:c.n] {
			if math.IsNaN(f) {
				return false
			}
		}
	}
	return true
}

// stringCol reports whether the column feeds the typed string kernels.
func stringCol(c *colvec) bool {
	return !c.hasNulls() && c.typedKind() == algebra.TypeString
}

// numAt returns a typed numeric column's float64 image at row i.
func (c *colvec) numAt(i int) float64 {
	if c.kind == algebra.TypeFloat {
		return c.floats[i]
	}
	return float64(c.ints[i])
}

// joinOutput gathers the matched pairs into the result table: left
// columns by lidx, right columns by ridx, one pass per column.
func (db *DB) joinOutput(joined *algebra.Schema, left, right *Table, lidx, ridx []int32) *Table {
	out := &Table{Name: "", Schema: joined, BlockRows: db.BlockRows, nrows: len(lidx)}
	out.cols = make([]*colvec, 0, len(left.cols)+len(right.cols))
	for _, c := range left.cols {
		out.cols = append(out.cols, c.gather(lidx))
	}
	for _, c := range right.cols {
		out.cols = append(out.cols, c.gather(ridx))
	}
	return out
}

// batchJoin is the vectorized block nested-loop join. The loop order —
// outer block, then every inner row, then the rows of the outer block —
// is the reference executor's, so output rows land in the identical
// order; the I/O charge is the BlockNLJ model's blocks(outer) +
// blocks(outer)·blocks(inner).
func (db *DB) batchJoin(j *algebra.Join, left, right *Table, res *Result) (*Table, error) {
	joined := left.Schema.Concat(right.Schema)
	conds, err := resolveJoinConds(j, left, right)
	if err != nil {
		return nil, err
	}
	var lidx, ridx []int32
	outerBlocks := left.NumBlocks()
	nLeft, nRight := left.NumRows(), right.NumRows()
	if len(conds) == 1 && equalityIndexable(left.cols[conds[0].li]) && equalityIndexable(right.cols[conds[0].ri]) {
		// Single numeric condition with no NaN lanes: matching is plain
		// float64-image equality, so an equality index over the left rows
		// replaces the per-pair inner loop. Emission order is preserved —
		// each index list is ascending, and for every (outer block, right
		// row) the matches inside the block come out in row order, exactly
		// the triple loop's order.
		lc, rc := left.cols[conds[0].li], right.cols[conds[0].ri]
		idx := make(map[float64][]int32, nLeft)
		for li := 0; li < nLeft; li++ {
			k := lc.numAt(li)
			idx[k] = append(idx[k], int32(li))
		}
		rkeys := make([]float64, nRight)
		for ri := range rkeys {
			rkeys[ri] = rc.numAt(ri)
		}
		for ob := 0; ob < outerBlocks; ob++ {
			lo := ob * left.BlockRows
			hi := min(lo+left.BlockRows, nLeft)
			for ri := 0; ri < nRight; ri++ {
				lst := idx[rkeys[ri]]
				// First left match at or past the block start.
				p, q := 0, len(lst)
				for p < q {
					m := int(uint(p+q) >> 1)
					if int(lst[m]) < lo {
						p = m + 1
					} else {
						q = m
					}
				}
				for ; p < len(lst) && int(lst[p]) < hi; p++ {
					lidx = append(lidx, lst[p])
					ridx = append(ridx, int32(ri))
				}
			}
		}
	} else {
		matchers := make([]pairMatcher, len(conds))
		for i, ci := range conds {
			matchers[i] = condMatcher(left.cols[ci.li], right.cols[ci.ri])
		}
		for ob := 0; ob < outerBlocks; ob++ {
			lo := ob * left.BlockRows
			hi := min(lo+left.BlockRows, nLeft)
			for ri := 0; ri < nRight; ri++ {
				for li := lo; li < hi; li++ {
					match := true
					for _, m := range matchers {
						if !m(li, ri) {
							match = false
							break
						}
					}
					if match {
						lidx = append(lidx, int32(li))
						ridx = append(ridx, int32(ri))
					}
				}
			}
		}
	}
	out := db.joinOutput(joined, left, right, lidx, ridx)
	stats := OpStats{
		Label:     j.Label(),
		Reads:     int64(outerBlocks) + int64(outerBlocks)*int64(right.NumBlocks()),
		Writes:    int64(out.NumBlocks()),
		OutRows:   out.NumRows(),
		OutBlocks: out.NumBlocks(),
	}
	db.account(stats)
	res.Ops = append(res.Ops, stats)
	return out, nil
}

// batchHashJoin is the vectorized hash join: build over the right input
// in row order, probe with the left in row order — the reference
// executor's emission order. Single-condition joins over typed non-null
// int/date columns build a collision-free map[int64][]int32 directly on
// the payload slices; every other shape keys on the same hashKey string
// encoding the reference executor uses, so the two agree even on its
// equivalence classes (3 == 3.0 == date(3)).
func (db *DB) batchHashJoin(j *algebra.Join, left, right *Table, res *Result) (*Table, error) {
	joined := left.Schema.Concat(right.Schema)
	conds, err := resolveJoinConds(j, left, right)
	if err != nil {
		return nil, err
	}

	var lidx, ridx []int32
	if len(conds) == 1 && intCol(left.cols[conds[0].li]) && intCol(right.cols[conds[0].ri]) {
		lc, rc := left.cols[conds[0].li], right.cols[conds[0].ri]
		build := make(map[int64][]int32, right.NumRows())
		for ri, k := range rc.ints[:right.NumRows()] {
			build[k] = append(build[k], int32(ri))
		}
		for li, k := range lc.ints[:left.NumRows()] {
			for _, ri := range build[k] {
				lidx = append(lidx, int32(li))
				ridx = append(ridx, ri)
			}
		}
	} else {
		build := make(map[string][]int32, right.NumRows())
		for ri := 0; ri < right.NumRows(); ri++ {
			key := joinKeyString(right, conds, ri, false)
			build[key] = append(build[key], int32(ri))
		}
		for li := 0; li < left.NumRows(); li++ {
			for _, ri := range build[joinKeyString(left, conds, li, true)] {
				lidx = append(lidx, int32(li))
				ridx = append(ridx, ri)
			}
		}
	}

	out := db.joinOutput(joined, left, right, lidx, ridx)
	stats := OpStats{
		Label:     "hash " + j.Label(),
		Reads:     int64(left.NumBlocks()) + int64(right.NumBlocks()),
		Writes:    int64(out.NumBlocks()),
		OutRows:   out.NumRows(),
		OutBlocks: out.NumBlocks(),
	}
	db.account(stats)
	res.Ops = append(res.Ops, stats)
	return out, nil
}

// intCol reports whether the column is typed int/date with no nulls —
// the shapes whose hashKey classes are exactly int64 equality.
func intCol(c *colvec) bool {
	if c.hasNulls() {
		return false
	}
	k := c.typedKind()
	return k == algebra.TypeInt || k == algebra.TypeDate
}

// joinKeyString renders a row's join key with the reference executor's
// encoding (hashKey per condition, '|'-separated).
func joinKeyString(t *Table, conds []condIdx, row int, isLeft bool) string {
	var key strings.Builder
	for _, ci := range conds {
		col := ci.ri
		if isLeft {
			col = ci.li
		}
		key.WriteString(hashKey(t.cols[col].valueAt(row)))
		key.WriteByte('|')
	}
	return key.String()
}

// joinKey is the batch executor's canonical single-value join-key
// encoding: a normalized (tag, bits, string) triple whose equality is
// provably the same relation as hashKey-string equality. The int fast
// path above is the num-class specialization of this encoding; the fuzz
// target FuzzJoinKeyEncoding pins the equivalence.
type joinKey struct {
	tag byte // 'n' numeric-integral class, 'f' fractional float, 's' string
	num uint64
	str string
}

// joinKeyOf classifies a value exactly as hashKey does: ints, dates, and
// whole floats share the integral class; other floats key on their bits
// (NaNs collapse to one class, as "%g" renders every NaN "NaN"); strings
// and invalid values key on the string payload.
func joinKeyOf(v algebra.Value) joinKey {
	switch v.Kind {
	case algebra.TypeInt, algebra.TypeDate:
		return joinKey{tag: 'n', num: uint64(v.Int)}
	case algebra.TypeFloat:
		if v.Float == float64(int64(v.Float)) {
			return joinKey{tag: 'n', num: uint64(int64(v.Float))}
		}
		if math.IsNaN(v.Float) {
			return joinKey{tag: 'f', num: math.Float64bits(math.NaN())}
		}
		return joinKey{tag: 'f', num: math.Float64bits(v.Float)}
	default:
		return joinKey{tag: 's', str: v.Str}
	}
}
