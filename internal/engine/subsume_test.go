package engine_test

import (
	"testing"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/engine"
)

// subsumeDB materializes a Figure-8 style view: the Product⋈Division join
// filtered by the disjunction of two cities.
func subsumeDB(t *testing.T) (*engine.DB, algebra.Node) {
	t.Helper()
	db := smallPaperDB(t)
	pd, _ := db.Table("Product")
	div, _ := db.Table("Division")
	join := algebra.NewJoin(
		algebra.NewScan("Product", pd.Schema),
		algebra.NewScan("Division", div.Schema),
		[]algebra.JoinCond{{Left: algebra.Ref("Product", "Did"), Right: algebra.Ref("Division", "Did")}})
	shared := algebra.NewSelect(join, algebra.NewOr(
		algebra.Eq(algebra.Ref("Division", "city"), algebra.StringVal("LA")),
		algebra.Eq(algebra.Ref("Division", "city"), algebra.StringVal("SF")),
	))
	if _, err := db.Materialize("laSf", shared); err != nil {
		t.Fatal(err)
	}
	return db, join
}

func TestSubsumptionRewriteAnswersStrongerFilter(t *testing.T) {
	db, join := subsumeDB(t)
	// Ad-hoc query: only LA — strictly stronger than the view's filter.
	q := algebra.NewProject(
		algebra.NewSelect(algebra.Clone(join), algebra.Eq(algebra.Ref("Division", "city"), algebra.StringVal("LA"))),
		[]algebra.ColumnRef{algebra.Ref("Product", "name")})

	plain := db.RewriteWithViews(algebra.Clone(q))
	joins := countJoinNodes(plain)
	if joins == 0 {
		t.Fatal("exact rewrite should NOT have matched (different predicate)")
	}

	rewritten := db.RewriteWithViewsSubsuming(algebra.Clone(q))
	if countJoinNodes(rewritten) != 0 {
		t.Fatalf("subsuming rewrite did not use the view:\n%s", rewritten.Canonical())
	}

	direct, err := db.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := db.Execute(rewritten)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Table.NumRows() != fast.Table.NumRows() {
		t.Errorf("rows differ: direct %d, subsumed %d", direct.Table.NumRows(), fast.Table.NumRows())
	}
	if fast.TotalReads() >= direct.TotalReads() {
		t.Errorf("subsumed reads %d not below direct %d", fast.TotalReads(), direct.TotalReads())
	}
}

func TestSubsumptionRejectsWeakerFilter(t *testing.T) {
	db, join := subsumeDB(t)
	// A third city is NOT covered by the view; the rewrite must leave the
	// plan alone (and execution must stay correct).
	q := algebra.NewSelect(algebra.Clone(join),
		algebra.Eq(algebra.Ref("Division", "city"), algebra.StringVal("City07")))
	rewritten := db.RewriteWithViewsSubsuming(algebra.Clone(q))
	if countJoinNodes(rewritten) == 0 {
		t.Fatal("unsound rewrite: City07 is not within the view's filter")
	}
	direct, err := db.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	re, err := db.Execute(rewritten)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Table.NumRows() != re.Table.NumRows() {
		t.Error("rewrite changed results")
	}
}

func TestSubsumptionExactFilterUsesViewWithoutResidual(t *testing.T) {
	db, join := subsumeDB(t)
	// The exact disjunction: structural match → bare view scan.
	q := algebra.NewSelect(algebra.Clone(join), algebra.NewOr(
		algebra.Eq(algebra.Ref("Division", "city"), algebra.StringVal("LA")),
		algebra.Eq(algebra.Ref("Division", "city"), algebra.StringVal("SF")),
	))
	rewritten := db.RewriteWithViewsSubsuming(algebra.Clone(q))
	if _, ok := rewritten.(*algebra.Scan); !ok {
		t.Errorf("exact filter should collapse to a view scan, got %T", rewritten)
	}
}

func TestSubsumptionConjunctionResidual(t *testing.T) {
	db, join := subsumeDB(t)
	// LA plus an extra restriction on the product id: still implied (the
	// extra conjunct only strengthens), the whole filter re-applies above
	// the view.
	pred := algebra.NewAnd(
		algebra.Eq(algebra.Ref("Division", "city"), algebra.StringVal("LA")),
		algebra.Compare(algebra.ColOperand(algebra.Ref("Product", "Pid")), algebra.OpLt, algebra.LitOperand(algebra.IntVal(100))),
	)
	q := algebra.NewSelect(algebra.Clone(join), pred)
	rewritten := db.RewriteWithViewsSubsuming(algebra.Clone(q))
	if countJoinNodes(rewritten) != 0 {
		t.Fatalf("conjunction not subsumed:\n%s", rewritten.Canonical())
	}
	direct, err := db.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	re, err := db.Execute(rewritten)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Table.NumRows() != re.Table.NumRows() {
		t.Errorf("rows differ: %d vs %d", direct.Table.NumRows(), re.Table.NumRows())
	}
}

func countJoinNodes(n algebra.Node) int {
	count := 0
	algebra.Walk(n, func(m algebra.Node) {
		if _, ok := m.(*algebra.Join); ok {
			count++
		}
	})
	return count
}
