// Package engine is an executing in-memory relational engine with
// block-access accounting. It exists to validate the analytic cost model of
// the design framework against counted block I/O: plans execute
// operator-at-a-time over block-structured tables (exactly the evaluation
// discipline the paper's cost formulas assume — every operator reads stored
// input blocks and writes its result), and the engine reports block reads
// and writes per operator.
//
// The engine also manages materialized views: it can materialize any plan,
// refresh it by recomputation (the paper's maintenance policy), and rewrite
// incoming query plans to read matching views instead of recomputing them.
//
// # Concurrency contract
//
// A DB supports any number of concurrent readers (Execute, Table, Tables,
// Views, View, PendingDeltaRows, RewriteWithViews*, CatalogFor) alongside
// at most one maintainer at a time. The maintenance methods — CreateTable,
// Materialize, Refresh, RefreshAll, IncrementalRefresh(All), InsertDelta,
// ApplyDeltas, DropView — are safe against concurrent readers but must be
// serialized by the caller (e.g. a single maintenance goroutine, as the
// serve package's scheduler does); running two of them concurrently is a
// data race.
//
// Readers never hold a lock while iterating rows: every published table is
// immutable, and maintenance replaces tables wholesale (a copy-on-write
// pointer swap under the DB mutex for base tables, a per-view RWMutex swap
// for view tables), so a long-running query scans a consistent snapshot of
// each relation while refreshes build the next epoch beside it. The only
// mutable window is the setup phase: Table handles returned by CreateTable
// may be filled with Insert freely before the DB is shared across
// goroutines; afterwards all base-table growth must go through
// InsertDelta/ApplyDeltas.
package engine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/catalog"
	"github.com/warehousekit/mvpp/internal/fault"
	"github.com/warehousekit/mvpp/internal/obs"
)

// DefaultBlockRows is the default blocking factor (rows per block).
const DefaultBlockRows = 10

// Table is a block-structured stored relation. Storage is columnar: one
// typed column vector (with a null bitmap) per schema column — the layout
// the vectorized batch executor runs over directly. Block accounting is
// unchanged: a table of n rows occupies ⌈n/BlockRows⌉ blocks regardless of
// layout, so the §4.1 cost model and every measured I/O count are
// identical to the row-major representation this replaced.
type Table struct {
	Name      string
	Schema    *algebra.Schema
	BlockRows int
	cols      []*colvec
	nrows     int
	// stats caches this table's derived catalog entry. Published tables are
	// immutable (maintenance swaps whole *Table pointers), so a computed
	// entry stays valid for the table's lifetime; the only mutable window is
	// the pre-publication setup phase, which the row-count guard in
	// relationStats covers.
	stats atomic.Pointer[catalog.Relation]
}

// NewTable creates an empty table. blockRows ≤ 0 selects DefaultBlockRows.
func NewTable(name string, schema *algebra.Schema, blockRows int) *Table {
	if blockRows <= 0 {
		blockRows = DefaultBlockRows
	}
	t := &Table{Name: name, Schema: schema, BlockRows: blockRows}
	t.cols = make([]*colvec, schema.Len())
	for i := range t.cols {
		t.cols[i] = &colvec{}
	}
	return t
}

// Insert appends rows; each must match the schema width. Ingestion is
// column-at-a-time: every column vector grows by the whole batch before
// the next column is touched.
func (t *Table) Insert(rows ...[]algebra.Value) error {
	for _, r := range rows {
		if len(r) != t.Schema.Len() {
			return fmt.Errorf("engine: row width %d does not match schema width %d of %s",
				len(r), t.Schema.Len(), t.Name)
		}
	}
	for ci, c := range t.cols {
		for _, r := range rows {
			c.append(r[ci])
		}
	}
	t.nrows += len(rows)
	return nil
}

// NumRows returns the row count.
func (t *Table) NumRows() int { return t.nrows }

// NumBlocks returns the occupied block count (⌈rows/blockRows⌉).
func (t *Table) NumBlocks() int {
	return (t.nrows + t.BlockRows - 1) / t.BlockRows
}

// Row materializes row i as a Tuple bound to the table schema.
func (t *Table) Row(i int) *algebra.Tuple {
	return &algebra.Tuple{Schema: t.Schema, Values: t.rowValues(i)}
}

// rowValues materializes row i as a fresh value slice.
func (t *Table) rowValues(i int) []algebra.Value {
	vals := make([]algebra.Value, len(t.cols))
	for ci, c := range t.cols {
		vals[ci] = c.valueAt(i)
	}
	return vals
}

// materializeRows renders the whole table row-major — the representation
// the legacy row executor works over. One pass, one allocation per row.
func (t *Table) materializeRows() [][]algebra.Value {
	out := make([][]algebra.Value, t.nrows)
	for i := range out {
		out[i] = t.rowValues(i)
	}
	return out
}

// cloneAppendRows returns a fresh table holding the receiver's rows
// followed by the given rows. Columns are copied, never shared, so the
// original stays immutable for concurrent readers.
func (t *Table) cloneAppendRows(rows [][]algebra.Value) (*Table, error) {
	u := NewTable(t.Name, t.Schema, t.BlockRows)
	for ci, c := range t.cols {
		u.cols[ci] = c.clone()
	}
	u.nrows = t.nrows
	return u, u.Insert(rows...)
}

// cloneAppendTable returns a fresh table holding the receiver's rows
// followed by every row of o (schemas must be width-compatible).
func (t *Table) cloneAppendTable(o *Table) *Table {
	u := NewTable(t.Name, t.Schema, t.BlockRows)
	for ci, c := range t.cols {
		cc := c.clone()
		cc.appendCol(o.cols[ci])
		u.cols[ci] = cc
	}
	u.nrows = t.nrows + o.nrows
	return u
}

// sliceRows returns a table view of rows [lo, hi) — payloads shared
// (capacity-capped), the same discipline row-slice views had.
func (t *Table) sliceRows(lo, hi int) *Table {
	u := &Table{Name: t.Name, Schema: t.Schema, BlockRows: t.BlockRows, nrows: hi - lo}
	u.cols = make([]*colvec, len(t.cols))
	for ci, c := range t.cols {
		u.cols[ci] = c.slice(lo, hi)
	}
	return u
}

// appendTable appends every row of o to the receiver in place. Only for
// tables the caller owns (operator outputs still under construction) —
// published tables are immutable.
func (t *Table) appendTable(o *Table) {
	for ci, c := range t.cols {
		c.appendCol(o.cols[ci])
	}
	t.nrows += o.nrows
}

// gatherTable builds a table from the named rows of the receiver.
func (t *Table) gatherTable(name string, schema *algebra.Schema, idx []int32) *Table {
	u := &Table{Name: name, Schema: schema, BlockRows: t.BlockRows, nrows: len(idx)}
	u.cols = make([]*colvec, len(t.cols))
	for ci, c := range t.cols {
		u.cols[ci] = c.gather(idx)
	}
	return u
}

// Counter tallies block accesses. Reads and writes are independent atomics
// — per-operator accounting runs on every executed operator of every
// concurrent query, so the counter must not serialize the worker pool.
type Counter struct {
	reads  atomic.Int64
	writes atomic.Int64
}

// AddReads records n block reads.
func (c *Counter) AddReads(n int64) { c.reads.Add(n) }

// AddWrites records n block writes.
func (c *Counter) AddWrites(n int64) { c.writes.Add(n) }

// Reads returns total block reads.
func (c *Counter) Reads() int64 { return c.reads.Load() }

// Writes returns total block writes.
func (c *Counter) Writes() int64 { return c.writes.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() {
	c.reads.Store(0)
	c.writes.Store(0)
}

// DB is a collection of base tables and materialized views sharing one
// block-access counter. See the package documentation for the concurrency
// contract (many readers, one maintainer).
type DB struct {
	BlockRows int
	Counter   *Counter
	// mu guards the tables, views, deltas, and propagated maps: readers
	// take it briefly to resolve a name to a table pointer; the maintainer
	// takes it exclusively for pointer swaps and map mutations. It is never
	// held while rows are scanned.
	mu     sync.RWMutex
	tables map[string]*Table
	views  map[string]*MaterializedView
	// deltas holds each base table's pending inserted rows (see
	// InsertDelta); they become part of the table at ApplyDeltas.
	deltas map[string]*Table
	// propagated records, per view and base table, how many pending delta
	// rows IncrementalRefresh has already folded into the stored view, so
	// repeated refreshes within one epoch never double-apply a delta.
	// ApplyDeltas clears it (the deltas are base state from then on) and
	// DropView discards the dropped view's entry so a rematerialized view
	// of the same name starts from a clean watermark.
	propagated map[string]map[string]int
	joinAlgo   JoinAlgorithm
	execMode   ExecMode

	// obsv receives one EvEngineOp event per executed operator; blockReads
	// and blockWrites mirror the Counter into the observer's registry. All
	// nil (no-ops) when observability is off; see SetObserver.
	obsv        obs.Observer
	blockReads  *obs.Counter
	blockWrites *obs.Counter

	// inj, when armed via SetInjector, injects faults at the engine's named
	// sites (Execute, Refresh, IncrementalRefresh, ApplyDeltas). Nil — the
	// default — injects nothing, following the same nil-off discipline as
	// obsv.
	inj *fault.Injector

	// snapStore, when wired via SetSnapshotStore, lets DropView delete a
	// dropped view's durable snapshot segments. Nil when snapshots are off.
	snapStore SnapshotDropper
}

// SetObserver wires operator-level events and the block-access counters
// into the observer. A nil observer disables instrumentation again. Not
// safe to call concurrently with Execute.
func (db *DB) SetObserver(o obs.Observer) {
	db.obsv = o
	db.blockReads = obs.CounterOf(o, obs.CtrEngineBlockReads)
	db.blockWrites = obs.CounterOf(o, obs.CtrEngineBlockWrites)
}

// SetInjector arms fault injection at the engine's named sites (see
// internal/fault for the site list). A nil injector disables injection
// again. Like SetObserver, not safe to call concurrently with Execute.
func (db *DB) SetInjector(in *fault.Injector) { db.inj = in }

// NewDB creates an empty database with the given default blocking factor.
func NewDB(blockRows int) *DB {
	if blockRows <= 0 {
		blockRows = DefaultBlockRows
	}
	return &DB{
		BlockRows:  blockRows,
		Counter:    &Counter{},
		tables:     make(map[string]*Table),
		views:      make(map[string]*MaterializedView),
		deltas:     make(map[string]*Table),
		propagated: make(map[string]map[string]int),
	}
}

// CreateTable registers a new empty base table with the database's default
// blocking factor.
func (db *DB) CreateTable(name string, schema *algebra.Schema) (*Table, error) {
	return db.CreateSizedTable(name, schema, db.BlockRows)
}

// CreateSizedTable registers a new empty base table with its own blocking
// factor (rows per block), letting simulations reproduce per-relation row
// widths.
func (db *DB) CreateSizedTable(name string, schema *algebra.Schema, blockRows int) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("engine: table %s already exists", name)
	}
	t := NewTable(name, schema, blockRows)
	db.tables[name] = t
	return t, nil
}

// Table looks up a base table.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	t, ok := db.tables[name]
	db.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("engine: unknown table %q", name)
	}
	return t, nil
}

// Tables returns the base table names, sorted.
func (db *DB) Tables() []string {
	db.mu.RLock()
	out := make([]string, 0, len(db.tables))
	for name := range db.tables {
		out = append(out, name)
	}
	db.mu.RUnlock()
	sort.Strings(out)
	return out
}

// HistogramBuckets is the equi-depth bucket count CatalogFor builds for
// numeric attributes.
const HistogramBuckets = 10

// CatalogFor derives a statistics catalog from the actual stored data:
// exact row and block counts, exact per-attribute distinct-value counts,
// and equi-depth histograms on numeric attributes. With this catalog the
// analytic size estimates of the cost package match the engine's measured
// sizes (up to estimation error on predicates). Update frequencies default
// to 1.
func (db *DB) CatalogFor() (*catalog.Catalog, error) {
	cat := catalog.New()
	if err := db.addTableStats(cat); err != nil {
		return nil, err
	}
	return cat, nil
}

// CatalogWithViews derives the same statistics catalog as CatalogFor and
// additionally covers the materialized views, each described by its current
// epoch snapshot. Plans rewritten over the views scan them by name, so
// pricing a rewritten plan — as the cost-accountability ledger does —
// requires the views to be catalog relations like any base table.
func (db *DB) CatalogWithViews() (*catalog.Catalog, error) {
	cat := catalog.New()
	if err := db.addTableStats(cat); err != nil {
		return nil, err
	}
	for _, name := range db.Views() {
		v, err := db.View(name)
		if err != nil {
			return nil, err
		}
		if err := cat.AddRelation(relationStats(name, v.Table())); err != nil {
			return nil, err
		}
	}
	return cat, nil
}

func (db *DB) addTableStats(cat *catalog.Catalog) error {
	for _, name := range db.Tables() {
		t, err := db.Table(name)
		if err != nil {
			return err
		}
		if err := cat.AddRelation(relationStats(name, t)); err != nil {
			return err
		}
	}
	return nil
}

// TableStats returns the catalog entry describing one stored table — the
// same statistics CatalogFor derives, computed once per published table
// and cached (snapshot checkpoints persist the entry so recovery can prime
// restored tables without rescanning them).
func TableStats(name string, t *Table) *catalog.Relation {
	return relationStats(name, t)
}

// InstallStats primes the table's statistics cache with a precomputed
// entry — the restore-side half of snapshot stats persistence. The entry
// is rejected (returning false) unless it matches the table's identity and
// exact sizes; its schema is overwritten with the live one so downstream
// consumers never see a deserialized duplicate.
func (t *Table) InstallStats(rel *catalog.Relation) bool {
	if rel == nil || rel.Name != t.Name || len(rel.Attrs) != t.Schema.Len() {
		return false
	}
	if rel.Rows != float64(t.nrows) || rel.Blocks != float64(t.NumBlocks()) {
		return false
	}
	for _, col := range t.Schema.Columns {
		if _, ok := rel.Attrs[col.Name]; !ok {
			return false
		}
	}
	rel.Schema = t.Schema
	t.stats.Store(rel)
	return true
}

// relationStats returns the table's cached catalog entry, computing it on
// a miss: exact sizes, exact distinct-value counts, min/max, and
// equi-depth histograms on numeric attributes. The row-count guard drops a
// cache primed during the setup phase and then outgrown by Insert.
func relationStats(name string, t *Table) *catalog.Relation {
	if rel := t.stats.Load(); rel != nil && rel.Rows == float64(t.nrows) {
		if rel.Name == name {
			return rel
		}
		clone := *rel
		clone.Name = name
		return &clone
	}
	rel := computeRelationStats(name, t)
	t.stats.Store(rel)
	return rel
}

func computeRelationStats(name string, t *Table) *catalog.Relation {
	attrs := make(map[string]catalog.AttrStats, t.Schema.Len())
	for ci, col := range t.Schema.Columns {
		distinct := make(map[string]bool)
		var min, max algebra.Value
		var numericVals []float64
		numericCol := col.Type == algebra.TypeInt || col.Type == algebra.TypeFloat || col.Type == algebra.TypeDate
		cv := t.cols[ci]
		for ri := 0; ri < t.nrows; ri++ {
			v := cv.valueAt(ri)
			distinct[v.String()] = true
			if !min.IsValid() {
				min, max = v, v
			} else {
				if c, err := v.Compare(min); err == nil && c < 0 {
					min = v
				}
				if c, err := v.Compare(max); err == nil && c > 0 {
					max = v
				}
			}
			if numericCol {
				switch v.Kind {
				case algebra.TypeInt, algebra.TypeDate:
					numericVals = append(numericVals, float64(v.Int))
				case algebra.TypeFloat:
					numericVals = append(numericVals, v.Float)
				}
			}
		}
		attrs[col.Name] = catalog.AttrStats{
			DistinctValues: float64(len(distinct)),
			Min:            min,
			Max:            max,
			Histogram:      equiDepth(numericVals, HistogramBuckets),
		}
	}
	return &catalog.Relation{
		Name:            name,
		Schema:          t.Schema,
		Rows:            float64(t.NumRows()),
		Blocks:          float64(t.NumBlocks()),
		UpdateFrequency: 1,
		Attrs:           attrs,
	}
}

// equiDepth returns the upper bounds of equi-depth buckets over the values
// (nil when there are fewer values than buckets).
func equiDepth(vals []float64, buckets int) []float64 {
	if len(vals) < buckets || buckets < 1 {
		return nil
	}
	sort.Float64s(vals)
	out := make([]float64, buckets)
	for i := 1; i <= buckets; i++ {
		idx := i*len(vals)/buckets - 1
		out[i-1] = vals[idx]
	}
	return out
}
