package engine

import (
	"errors"
	"fmt"

	"github.com/warehousekit/mvpp/internal/algebra"
)

// ErrNotIncremental reports that a view's plan cannot be maintained by
// insert-only delta propagation (AVG aggregates, or an aggregate below the
// plan root); callers fall back to recomputation (Refresh).
var ErrNotIncremental = errors.New("engine: plan is not incrementally maintainable")

// InsertDelta records pending inserted rows for a base table. The rows are
// not yet visible to queries or refreshes: they form the delta that
// IncrementalRefresh propagates through view plans, and they join the base
// table when ApplyDeltas runs. Multiple calls accumulate.
func (db *DB) InsertDelta(table string, rows ...[]algebra.Value) error {
	t, err := db.Table(table)
	if err != nil {
		return err
	}
	d, ok := db.deltas[table]
	if !ok {
		d = NewTable(table+"+Δ", t.Schema, t.BlockRows)
		db.deltas[table] = d
	}
	return d.Insert(rows...)
}

// PendingDeltaRows returns how many inserted rows are pending for a table.
func (db *DB) PendingDeltaRows(table string) int {
	if d, ok := db.deltas[table]; ok {
		return d.NumRows()
	}
	return 0
}

// ApplyDeltas folds every pending delta into its base table and clears the
// delta buffers. Base-table writes are not metered: the warehouse pays
// them under every maintenance policy, so they cancel out of any
// recompute-vs-incremental comparison.
func (db *DB) ApplyDeltas() error {
	for _, name := range db.Tables() {
		d, ok := db.deltas[name]
		if !ok {
			continue
		}
		if err := db.tables[name].Insert(d.rows...); err != nil {
			return err
		}
		delete(db.deltas, name)
	}
	return nil
}

// incrementable mirrors the cost package's gate (cost.Incrementable): at
// most one aggregate, at the plan root, with mergeable functions.
func incrementable(plan algebra.Node) error {
	if agg, ok := plan.(*algebra.Aggregate); ok {
		for _, a := range agg.Aggs {
			if a.Func == algebra.AggAvg {
				return fmt.Errorf("%w: AVG is not mergeable under insert-only deltas", ErrNotIncremental)
			}
		}
		plan = agg.Input
	}
	var err error
	algebra.Walk(plan, func(n algebra.Node) {
		if _, ok := n.(*algebra.Aggregate); ok && err == nil {
			err = fmt.Errorf("%w: aggregate below the plan root", ErrNotIncremental)
		}
	})
	return err
}

// IncrementalRefresh maintains one view by delta propagation: the pending
// base-table deltas flow through the view's plan (Δσ(S) = σ(ΔS), Δπ(S) =
// π(ΔS), Δ(L⋈R) = ΔL⋈R_new ∪ L_old⋈ΔR) and the resulting Δview is applied
// to the stored view — appended for select-project-join plans, merged
// group-by-group for a root aggregate. Only the delta-path operators and
// the apply step are metered; the full operand relations a join delta
// pairs against are assumed available, the same convention under which
// the cost model's Ca and delta-propagation formulas charge operators.
// Returns ErrNotIncremental when the plan cannot be maintained this way.
func (db *DB) IncrementalRefresh(name string) (*Result, error) {
	v, ok := db.views[name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown view %q", name)
	}
	if err := incrementable(v.Plan); err != nil {
		return nil, err
	}
	res := &Result{}
	plan := v.Plan
	if agg, isAgg := plan.(*algebra.Aggregate); isAgg {
		din, err := db.deltaExec(agg.Input, res)
		if err != nil {
			return nil, err
		}
		dagg, err := db.execAggregate(agg, din, res)
		if err != nil {
			return nil, err
		}
		merged, err := db.mergeAggregate(v, agg, dagg, res)
		if err != nil {
			return nil, err
		}
		merged.Name = name
		v.table = merged
		res.Table = merged
		return res, nil
	}
	droot, err := db.deltaExec(plan, res)
	if err != nil {
		return nil, err
	}
	if err := v.table.Insert(droot.rows...); err != nil {
		return nil, err
	}
	stats := OpStats{
		Label:     "append " + name,
		Writes:    int64(droot.NumBlocks()),
		OutRows:   v.table.NumRows(),
		OutBlocks: v.table.NumBlocks(),
	}
	db.account(stats)
	res.Ops = append(res.Ops, stats)
	res.Table = v.table
	return res, nil
}

// IncrementalRefreshAll maintains every view for the pending deltas:
// incrementally maintainable plans refresh by delta propagation against
// the old base state; the rest recompute after the deltas are applied.
// Afterwards the deltas are part of the base tables and every view is
// consistent with the new state. Returns the per-view refresh I/O.
func (db *DB) IncrementalRefreshAll() (map[string]*Result, error) {
	out := make(map[string]*Result, len(db.views))
	var recompute []string
	for _, name := range db.Views() {
		res, err := db.IncrementalRefresh(name)
		if errors.Is(err, ErrNotIncremental) {
			recompute = append(recompute, name)
			continue
		}
		if err != nil {
			return nil, err
		}
		out[name] = res
	}
	if err := db.ApplyDeltas(); err != nil {
		return nil, err
	}
	for _, name := range recompute {
		res, err := db.Refresh(name)
		if err != nil {
			return nil, err
		}
		out[name] = res
	}
	return out, nil
}

// deltaExec computes the delta table of the relation at n under the
// pending base-table deltas. Select/project/join work on the delta stream
// is metered into res; operand relations (the full sides a delta joins
// against) are produced unmetered.
func (db *DB) deltaExec(n algebra.Node, res *Result) (*Table, error) {
	switch v := n.(type) {
	case *algebra.Scan:
		if d, ok := db.deltas[v.Relation]; ok {
			return d, nil
		}
		// No pending inserts: an empty delta with the scan's schema.
		return NewTable("", v.Schema(), db.BlockRows), nil
	case *algebra.Select:
		din, err := db.deltaExec(v.Input, res)
		if err != nil {
			return nil, err
		}
		return db.execSelect(v, din, res)
	case *algebra.Project:
		din, err := db.deltaExec(v.Input, res)
		if err != nil {
			return nil, err
		}
		return db.execProject(v, din, res)
	case *algebra.Join:
		dl, err := db.deltaExec(v.Left, res)
		if err != nil {
			return nil, err
		}
		dr, err := db.deltaExec(v.Right, res)
		if err != nil {
			return nil, err
		}
		rightNew, err := db.execUnmetered(v.Right, true)
		if err != nil {
			return nil, err
		}
		leftOld, err := db.execUnmetered(v.Left, false)
		if err != nil {
			return nil, err
		}
		part1, err := db.execJoin(v, dl, rightNew, res)
		if err != nil {
			return nil, err
		}
		part2, err := db.execJoin(v, leftOld, dr, res)
		if err != nil {
			return nil, err
		}
		if err := part1.Insert(part2.rows...); err != nil {
			return nil, err
		}
		return part1, nil
	default:
		return nil, fmt.Errorf("engine: cannot propagate deltas through node type %T", n)
	}
}

// execUnmetered evaluates a subplan without block accounting, resolving
// base-table scans against the new state (base ∪ delta) when newState is
// set and the old state otherwise.
func (db *DB) execUnmetered(n algebra.Node, newState bool) (*Table, error) {
	savedCounter, savedReads, savedWrites, savedObs := db.Counter, db.blockReads, db.blockWrites, db.obsv
	savedTables := db.tables
	db.Counter, db.blockReads, db.blockWrites, db.obsv = &Counter{}, nil, nil, nil
	if newState && len(db.deltas) > 0 {
		merged := make(map[string]*Table, len(savedTables))
		for name, t := range savedTables {
			d, ok := db.deltas[name]
			if !ok {
				merged[name] = t
				continue
			}
			u := NewTable(t.Name, t.Schema, t.BlockRows)
			u.rows = append(append([][]algebra.Value{}, t.rows...), d.rows...)
			merged[name] = u
		}
		db.tables = merged
	}
	defer func() {
		db.Counter, db.blockReads, db.blockWrites, db.obsv = savedCounter, savedReads, savedWrites, savedObs
		db.tables = savedTables
	}()
	var scratch Result
	return db.exec(n, &scratch)
}

// mergeAggregate folds the aggregated delta groups into the stored view:
// the stored view is read, matching groups combine (COUNT/SUM add, MIN/MAX
// compare), new groups append, and the merged view is rewritten.
func (db *DB) mergeAggregate(v *MaterializedView, agg *algebra.Aggregate, dagg *Table, res *Result) (*Table, error) {
	nKeys := len(agg.GroupBy)
	keyOf := func(row []algebra.Value) string {
		key := ""
		for i := 0; i < nKeys; i++ {
			key += row[i].String() + "|"
		}
		return key
	}
	out := NewTable("", v.table.Schema, v.table.BlockRows)
	byKey := make(map[string]int, v.table.NumRows())
	for _, row := range v.table.rows {
		cp := make([]algebra.Value, len(row))
		copy(cp, row)
		byKey[keyOf(cp)] = out.NumRows()
		if err := out.Insert(cp); err != nil {
			return nil, err
		}
	}
	for _, drow := range dagg.rows {
		key := keyOf(drow)
		idx, ok := byKey[key]
		if !ok {
			cp := make([]algebra.Value, len(drow))
			copy(cp, drow)
			byKey[key] = out.NumRows()
			if err := out.Insert(cp); err != nil {
				return nil, err
			}
			continue
		}
		stored := out.rows[idx]
		for i, a := range agg.Aggs {
			col := nKeys + i
			combined, err := combineAgg(a.Func, stored[col], drow[col])
			if err != nil {
				return nil, err
			}
			stored[col] = combined
		}
	}
	stats := OpStats{
		Label:     "merge " + v.Name,
		Reads:     int64(v.table.NumBlocks()),
		Writes:    int64(out.NumBlocks()),
		OutRows:   out.NumRows(),
		OutBlocks: out.NumBlocks(),
	}
	db.account(stats)
	res.Ops = append(res.Ops, stats)
	return out, nil
}

// combineAgg merges a delta group's aggregate value into the stored one.
func combineAgg(fn algebra.AggFunc, stored, delta algebra.Value) (algebra.Value, error) {
	switch fn {
	case algebra.AggCount, algebra.AggSum:
		if stored.Kind == algebra.TypeFloat || delta.Kind == algebra.TypeFloat {
			return algebra.FloatVal(numeric(stored) + numeric(delta)), nil
		}
		return algebra.IntVal(stored.Int + delta.Int), nil
	case algebra.AggMin:
		c, err := delta.Compare(stored)
		if err != nil {
			return algebra.Value{}, err
		}
		if c < 0 {
			return delta, nil
		}
		return stored, nil
	case algebra.AggMax:
		c, err := delta.Compare(stored)
		if err != nil {
			return algebra.Value{}, err
		}
		if c > 0 {
			return delta, nil
		}
		return stored, nil
	default:
		return algebra.Value{}, fmt.Errorf("%w: cannot merge %s", ErrNotIncremental, fn)
	}
}

func numeric(v algebra.Value) float64 {
	if v.Kind == algebra.TypeFloat {
		return v.Float
	}
	return float64(v.Int)
}
