package engine

import (
	"errors"
	"fmt"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/fault"
)

// ErrNotIncremental reports that a view's plan cannot be maintained by
// insert-only delta propagation (AVG aggregates, or an aggregate below the
// plan root); callers fall back to recomputation (Refresh).
var ErrNotIncremental = errors.New("engine: plan is not incrementally maintainable")

// InsertDelta records pending inserted rows for a base table. The rows are
// not yet visible to queries or refreshes: they form the delta that
// IncrementalRefresh propagates through view plans, and they join the base
// table when ApplyDeltas runs. Multiple calls accumulate; each call
// appends its whole batch column-at-a-time.
func (db *DB) InsertDelta(table string, rows ...[]algebra.Value) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[table]
	if !ok {
		return fmt.Errorf("engine: unknown table %q", table)
	}
	d, ok := db.deltas[table]
	if !ok {
		d = NewTable(table+"+Δ", t.Schema, t.BlockRows)
		db.deltas[table] = d
	}
	return d.Insert(rows...)
}

// PendingDeltaRows returns how many inserted rows are pending for a table.
func (db *DB) PendingDeltaRows(table string) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if d, ok := db.deltas[table]; ok {
		return d.NumRows()
	}
	return 0
}

// ApplyDeltas folds every pending delta into its base table and clears the
// delta buffers, along with every view's propagation watermark (the rows
// are base state from now on). The fold is copy-on-write: each affected
// base table is republished as a fresh table — one columnar payload copy
// plus the delta appended — so concurrent readers keep scanning the
// snapshot they resolved. Base-table writes are not metered: the
// warehouse pays them under every maintenance policy, so they cancel out
// of any recompute-vs-incremental comparison.
func (db *DB) ApplyDeltas() error {
	if err := db.inj.Hit(fault.SiteEngineApplyDeltas); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	for name, d := range db.deltas {
		db.tables[name] = db.tables[name].cloneAppendTable(d)
	}
	db.deltas = make(map[string]*Table)
	db.propagated = make(map[string]map[string]int)
	return nil
}

// incrementable mirrors the cost package's gate (cost.Incrementable): at
// most one aggregate, at the plan root, with mergeable functions.
func incrementable(plan algebra.Node) error {
	if agg, ok := plan.(*algebra.Aggregate); ok {
		for _, a := range agg.Aggs {
			if a.Func == algebra.AggAvg {
				return fmt.Errorf("%w: AVG is not mergeable under insert-only deltas", ErrNotIncremental)
			}
		}
		plan = agg.Input
	}
	var err error
	algebra.Walk(plan, func(n algebra.Node) {
		if _, ok := n.(*algebra.Aggregate); ok && err == nil {
			err = fmt.Errorf("%w: aggregate below the plan root", ErrNotIncremental)
		}
	})
	return err
}

// deltaState is one view's frozen picture of the pending deltas: the rows
// it has not propagated yet (fresh), the rows it already folded in during
// an earlier refresh this epoch (oldExtra — part of the view's old state),
// and every pending row (allPending — the new state each join delta pairs
// against). seen records the per-table watermark to commit on success.
type deltaState struct {
	fresh      map[string]*Table
	oldExtra   map[string]*Table
	allPending map[string]*Table
	seen       map[string]int
}

// deltaSnapshot freezes the pending deltas and the view's watermarks under
// the read lock. The slices are capacity-capped column views, so later
// InsertDelta appends never leak into a propagation already underway.
func (db *DB) deltaSnapshot(view string) *deltaState {
	ds := &deltaState{
		fresh:      make(map[string]*Table),
		oldExtra:   make(map[string]*Table),
		allPending: make(map[string]*Table),
		seen:       make(map[string]int),
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	marks := db.propagated[view]
	for name, d := range db.deltas {
		n := d.NumRows()
		k := marks[name]
		if k > n {
			k = n
		}
		ds.seen[name] = n
		ds.allPending[name] = d.sliceRows(0, n)
		ds.oldExtra[name] = d.sliceRows(0, k)
		ds.fresh[name] = d.sliceRows(k, n)
	}
	return ds
}

// markPropagated commits a successful propagation's watermarks.
func (db *DB) markPropagated(view string, seen map[string]int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	m := db.propagated[view]
	if m == nil {
		m = make(map[string]int, len(seen))
		db.propagated[view] = m
	}
	for name, n := range seen {
		m[name] = n
	}
}

// IncrementalRefresh maintains one view by delta propagation: the pending
// base-table deltas flow through the view's plan (Δσ(S) = σ(ΔS), Δπ(S) =
// π(ΔS), Δ(L⋈R) = ΔL⋈R_new ∪ L_old⋈ΔR) and the resulting Δview is applied
// to the stored view — appended for select-project-join plans, merged
// group-by-group for a root aggregate. The apply is an epoch swap: a new
// table replaces the stored one, so concurrent readers never see a
// half-applied delta. A per-view watermark records how much of the pending
// delta has been folded in, so calling IncrementalRefresh again before
// ApplyDeltas propagates only rows that arrived since. Only the delta-path
// operators and the apply step are metered; the full operand relations a
// join delta pairs against are assumed available, the same convention
// under which the cost model's Ca and delta-propagation formulas charge
// operators. Returns ErrNotIncremental when the plan cannot be maintained
// this way.
func (db *DB) IncrementalRefresh(name string) (*Result, error) {
	v, err := db.View(name)
	if err != nil {
		return nil, err
	}
	if err := incrementable(v.Plan); err != nil {
		return nil, err
	}
	// The injection site sits after the incrementability gate, so injected
	// failures model delta application going wrong — ErrNotIncremental still
	// reaches callers undisturbed for their design-time fallback.
	if err := db.inj.Hit(fault.SiteEngineIncrementalRefresh); err != nil {
		return nil, err
	}
	ds := db.deltaSnapshot(name)
	res := &Result{}
	plan := v.Plan
	if agg, isAgg := plan.(*algebra.Aggregate); isAgg {
		din, err := db.deltaExec(agg.Input, ds, res)
		if err != nil {
			return nil, err
		}
		dagg, err := db.opAggregate(agg, din, res)
		if err != nil {
			return nil, err
		}
		merged, err := db.mergeAggregate(v, agg, dagg, res)
		if err != nil {
			return nil, err
		}
		merged.Name = name
		v.setTable(merged)
		db.markPropagated(name, ds.seen)
		res.Table = merged
		return res, nil
	}
	droot, err := db.deltaExec(plan, ds, res)
	if err != nil {
		return nil, err
	}
	cur := v.Table()
	next := cur.cloneAppendTable(droot)
	next.Name = name
	stats := OpStats{
		Label:     "append " + name,
		Writes:    int64(droot.NumBlocks()),
		OutRows:   next.NumRows(),
		OutBlocks: next.NumBlocks(),
	}
	db.account(stats)
	res.Ops = append(res.Ops, stats)
	v.setTable(next)
	db.markPropagated(name, ds.seen)
	res.Table = next
	return res, nil
}

// IncrementalRefreshAll maintains every view for the pending deltas:
// incrementally maintainable plans refresh by delta propagation against
// the old base state; the rest recompute after the deltas are applied.
// Afterwards the deltas are part of the base tables and every view is
// consistent with the new state. Returns the per-view refresh I/O.
func (db *DB) IncrementalRefreshAll() (map[string]*Result, error) {
	names := db.Views()
	out := make(map[string]*Result, len(names))
	var recompute []string
	for _, name := range names {
		res, err := db.IncrementalRefresh(name)
		if errors.Is(err, ErrNotIncremental) {
			recompute = append(recompute, name)
			continue
		}
		if err != nil {
			return nil, err
		}
		out[name] = res
	}
	if err := db.ApplyDeltas(); err != nil {
		return nil, err
	}
	for _, name := range recompute {
		res, err := db.Refresh(name)
		if err != nil {
			return nil, err
		}
		out[name] = res
	}
	return out, nil
}

// deltaExec computes the delta table of the relation at n under the
// snapshot ds. Select/project/join work on the delta stream is metered
// into res; operand relations (the full sides a delta joins against) are
// produced unmetered. Joins on the delta path are always block
// nested-loop — the delta-propagation cost formulas assume BlockNLJ — in
// both execution modes.
func (db *DB) deltaExec(n algebra.Node, ds *deltaState, res *Result) (*Table, error) {
	switch v := n.(type) {
	case *algebra.Scan:
		if d, ok := ds.fresh[v.Relation]; ok {
			return d, nil
		}
		// No pending inserts: an empty delta with the scan's schema.
		return NewTable("", v.Schema(), db.BlockRows), nil
	case *algebra.Select:
		din, err := db.deltaExec(v.Input, ds, res)
		if err != nil {
			return nil, err
		}
		return db.opSelect(v, din, res)
	case *algebra.Project:
		din, err := db.deltaExec(v.Input, ds, res)
		if err != nil {
			return nil, err
		}
		return db.opProject(v, din, res)
	case *algebra.Join:
		dl, err := db.deltaExec(v.Left, ds, res)
		if err != nil {
			return nil, err
		}
		dr, err := db.deltaExec(v.Right, ds, res)
		if err != nil {
			return nil, err
		}
		rightNew, err := db.execUnmetered(v.Right, ds.allPending)
		if err != nil {
			return nil, err
		}
		leftOld, err := db.execUnmetered(v.Left, ds.oldExtra)
		if err != nil {
			return nil, err
		}
		part1, err := db.opNLJoin(v, dl, rightNew, res)
		if err != nil {
			return nil, err
		}
		part2, err := db.opNLJoin(v, leftOld, dr, res)
		if err != nil {
			return nil, err
		}
		part1.appendTable(part2)
		return part1, nil
	default:
		return nil, fmt.Errorf("engine: cannot propagate deltas through node type %T", n)
	}
}

// execUnmetered evaluates a subplan without block accounting against the
// base tables extended by the given extra rows (nil extras = the old
// state; the all-pending extras = the new state). It runs on a shadow
// database value — the receiver is never mutated, so concurrent readers
// of the real DB are undisturbed.
func (db *DB) execUnmetered(n algebra.Node, extra map[string]*Table) (*Table, error) {
	db.mu.RLock()
	tables := make(map[string]*Table, len(db.tables))
	for name, t := range db.tables {
		x := extra[name]
		if x == nil || x.NumRows() == 0 {
			tables[name] = t
			continue
		}
		tables[name] = t.cloneAppendTable(x)
	}
	views := db.views
	db.mu.RUnlock()
	shadow := &DB{
		BlockRows:  db.BlockRows,
		Counter:    &Counter{},
		tables:     tables,
		views:      views,
		deltas:     make(map[string]*Table),
		propagated: make(map[string]map[string]int),
		joinAlgo:   db.joinAlgo,
		execMode:   db.execMode,
	}
	var scratch Result
	return shadow.exec(n, &scratch)
}

// mergeAggregate folds the aggregated delta groups into the stored view:
// the stored view is read, matching groups combine (COUNT/SUM add, MIN/MAX
// compare), new groups append, and the merged table is returned for the
// epoch swap. The merge itself is executor-independent: the stored view
// and the delta groups are both materialized once, combined row-wise, and
// re-ingested as one batch.
func (db *DB) mergeAggregate(v *MaterializedView, agg *algebra.Aggregate, dagg *Table, res *Result) (*Table, error) {
	nKeys := len(agg.GroupBy)
	keyOf := func(row []algebra.Value) string {
		key := ""
		for i := 0; i < nKeys; i++ {
			key += row[i].String() + "|"
		}
		return key
	}
	cur := v.Table()
	rows := cur.materializeRows()
	byKey := make(map[string]int, len(rows))
	for i, row := range rows {
		byKey[keyOf(row)] = i
	}
	for _, drow := range dagg.materializeRows() {
		key := keyOf(drow)
		idx, ok := byKey[key]
		if !ok {
			byKey[key] = len(rows)
			rows = append(rows, drow)
			continue
		}
		stored := rows[idx]
		for i, a := range agg.Aggs {
			col := nKeys + i
			combined, err := combineAgg(a.Func, stored[col], drow[col])
			if err != nil {
				return nil, err
			}
			stored[col] = combined
		}
	}
	out := NewTable("", cur.Schema, cur.BlockRows)
	if err := out.Insert(rows...); err != nil {
		return nil, err
	}
	stats := OpStats{
		Label:     "merge " + v.Name,
		Reads:     int64(cur.NumBlocks()),
		Writes:    int64(out.NumBlocks()),
		OutRows:   out.NumRows(),
		OutBlocks: out.NumBlocks(),
	}
	db.account(stats)
	res.Ops = append(res.Ops, stats)
	return out, nil
}

// combineAgg merges a delta group's aggregate value into the stored one.
func combineAgg(fn algebra.AggFunc, stored, delta algebra.Value) (algebra.Value, error) {
	switch fn {
	case algebra.AggCount, algebra.AggSum:
		if stored.Kind == algebra.TypeFloat || delta.Kind == algebra.TypeFloat {
			return algebra.FloatVal(numeric(stored) + numeric(delta)), nil
		}
		return algebra.IntVal(stored.Int + delta.Int), nil
	case algebra.AggMin:
		c, err := delta.Compare(stored)
		if err != nil {
			return algebra.Value{}, err
		}
		if c < 0 {
			return delta, nil
		}
		return stored, nil
	case algebra.AggMax:
		c, err := delta.Compare(stored)
		if err != nil {
			return algebra.Value{}, err
		}
		if c > 0 {
			return delta, nil
		}
		return stored, nil
	default:
		return algebra.Value{}, fmt.Errorf("%w: cannot merge %s", ErrNotIncremental, fn)
	}
}

func numeric(v algebra.Value) float64 {
	if v.Kind == algebra.TypeFloat {
		return v.Float
	}
	return float64(v.Int)
}
