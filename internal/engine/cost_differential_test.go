package engine_test

import (
	"math/rand"
	"testing"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/cost"
	"github.com/warehousekit/mvpp/internal/datagen"
	"github.com/warehousekit/mvpp/internal/engine"
)

// opTolerance is the stated per-operator agreement bound between the
// BlockNLJ analytic model and the engine's counted block accesses: each
// operator must agree within a factor of 2.5, with an absolute slack of 8
// blocks for tiny operators where rounding to whole blocks dominates.
const (
	opToleranceFactor = 2.5
	opToleranceSlack  = 8.0
)

// withinTolerance applies the stated bound.
func withinTolerance(predicted, measured float64) bool {
	diff := predicted - measured
	if diff < 0 {
		diff = -diff
	}
	if diff <= opToleranceSlack {
		return true
	}
	if measured == 0 || predicted == 0 {
		return false
	}
	ratio := predicted / measured
	return ratio >= 1/opToleranceFactor && ratio <= opToleranceFactor
}

// postOrderOps lists a plan's non-scan operators in execution (post)
// order, matching the order the engine accounts OpStats.
func postOrderOps(n algebra.Node) []algebra.Node {
	var out []algebra.Node
	var walk func(algebra.Node)
	walk = func(node algebra.Node) {
		for _, c := range node.Children() {
			walk(c)
		}
		if _, isScan := node.(*algebra.Scan); !isScan {
			out = append(out, node)
		}
	}
	walk(n)
	return out
}

// TestPerOperatorCostDifferential executes a battery of plans and checks
// every operator's estimator-predicted cost (BlockNLJ model over a catalog
// derived from the actual data) against the engine's measured block
// accesses, operator by operator.
func TestPerOperatorCostDifferential(t *testing.T) {
	db, err := datagen.PaperDB(10, 0.04, 7)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := db.CatalogFor()
	if err != nil {
		t.Fatal(err)
	}
	bridge := newEstimator(cat)

	ord, _ := db.Table("Order")
	cust, _ := db.Table("Customer")
	plans := map[string]algebra.Node{
		"select-join-project": q1Plan(t, db),
		"fk-join": algebra.NewJoin(
			algebra.NewScan("Order", ord.Schema),
			algebra.NewScan("Customer", cust.Schema),
			[]algebra.JoinCond{{Left: algebra.Ref("Order", "Cid"), Right: algebra.Ref("Customer", "Cid")}}),
		"aggregate": algebra.NewAggregate(
			algebra.NewScan("Order", ord.Schema),
			[]algebra.ColumnRef{algebra.Ref("Order", "Cid")},
			[]algebra.Aggregation{{Func: algebra.AggSum, Arg: algebra.Ref("Order", "quantity"), Alias: "total"}}),
	}
	for name, plan := range plans {
		res, err := db.Execute(plan)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ops := postOrderOps(plan)
		if len(ops) != len(res.Ops) {
			t.Fatalf("%s: %d plan operators vs %d measured ops", name, len(ops), len(res.Ops))
		}
		for i, node := range ops {
			predicted, err := bridge.est.OpCost(bridge.model, node)
			if err != nil {
				t.Fatalf("%s op %d: %v", name, i, err)
			}
			measured := float64(res.Ops[i].Reads + res.Ops[i].Writes)
			if !withinTolerance(predicted, measured) {
				t.Errorf("%s op %d (%s): predicted %.1f vs measured %.0f blocks",
					name, i, res.Ops[i].Label, predicted, measured)
			}
		}
	}
}

// sampleDeltas inserts round(fraction·rows) delta rows per relation, drawn
// from the existing rows so the deltas follow the base data's value
// distribution (the assumption under which the estimator scales sizes).
// Key columns that must stay unique get fresh values.
func sampleDeltas(t *testing.T, db *engine.DB, fraction float64, seed int64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	fresh := int64(1_000_000)
	// keyCol maps each relation to the index of its synthetic-key column.
	keyCol := map[string]int{"Product": 0, "Division": 0, "Customer": 0, "Part": 0}
	for _, name := range db.Tables() {
		tb, err := db.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		n := int(fraction*float64(tb.NumRows()) + 0.5)
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			src := tb.Row(r.Intn(tb.NumRows()))
			row := make([]algebra.Value, len(src.Values))
			copy(row, src.Values)
			if ki, ok := keyCol[name]; ok {
				fresh++
				row[ki] = algebra.IntVal(fresh)
			}
			if err := db.InsertDelta(name, row); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestDeltaMaintenanceDifferential closes the loop on the incremental
// maintenance cost model: the DeltaEstimator's predicted maintenance cost
// for a view must agree with the engine's measured delta-propagation I/O
// within a factor of 3, for both a join view and a root-aggregate view —
// and both sides must agree that incremental maintenance beats recompute.
func TestDeltaMaintenanceDifferential(t *testing.T) {
	const fraction = 0.05
	db, err := datagen.PaperDB(10, 0.04, 7)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := db.CatalogFor()
	if err != nil {
		t.Fatal(err)
	}
	bridge := newEstimator(cat)
	de := cost.NewDeltaEstimator(bridge.est, cost.DeltaSpec{DefaultFraction: fraction})

	ord, _ := db.Table("Order")
	views := map[string]algebra.Node{
		"tmp2": laJoinPlan(t, db),
		"ordersum": algebra.NewAggregate(
			algebra.NewScan("Order", ord.Schema),
			[]algebra.ColumnRef{algebra.Ref("Order", "Cid")},
			[]algebra.Aggregation{{Func: algebra.AggSum, Arg: algebra.Ref("Order", "quantity"), Alias: "total"}}),
	}
	for name, plan := range views {
		if _, err := db.Materialize(name, plan); err != nil {
			t.Fatal(err)
		}
	}
	sampleDeltas(t, db, fraction, 99)

	incMeasured := map[string]float64{}
	for name, plan := range views {
		predicted, ok, err := de.MaintenanceCost(bridge.model, plan)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !ok {
			t.Fatalf("%s: unexpectedly not incrementable", name)
		}
		res, err := db.IncrementalRefresh(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		measured := float64(res.TotalReads() + res.TotalWrites())
		incMeasured[name] = measured
		if measured == 0 {
			t.Fatalf("%s: no measured I/O", name)
		}
		if ratio := predicted / measured; ratio < 1.0/3 || ratio > 3 {
			t.Errorf("%s: predicted maintenance %.1f vs measured %.0f blocks (ratio %.2f) — delta model diverges",
				name, predicted, measured, ratio)
		}
	}

	// After folding the deltas in, a full recompute must measure far above
	// the incremental path — the engine-side counterpart of Cm(incremental)
	// < Cm(recompute) on this workload.
	if err := db.ApplyDeltas(); err != nil {
		t.Fatal(err)
	}
	for name := range views {
		full, err := db.Refresh(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fullIO := float64(full.TotalReads() + full.TotalWrites())
		if incMeasured[name] >= fullIO {
			t.Errorf("%s: incremental %.0f blocks not below recompute %.0f", name, incMeasured[name], fullIO)
		}
	}
}
