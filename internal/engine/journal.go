package engine

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/fault"
)

// DeltaRecord is one journaled batch of inserted rows for a base table.
type DeltaRecord struct {
	// LSN is the record's log sequence number; the journal assigns them
	// densely from 1.
	LSN uint64
	// Table is the base table the rows belong to.
	Table string
	// Rows are the inserted rows, schema-width as ingested.
	Rows [][]algebra.Value
	// Source labels the ingestion path that journaled the batch ("" for
	// direct ingestion, "stream" for the CDC change feed). Replay does not
	// interpret it; it makes a replayed journal attributable.
	Source string
}

// SourceAppender is the optional journal extension for source-tagged
// appends. Both built-in journals implement it; a custom DeltaJournal
// without it simply journals untagged records.
type SourceAppender interface {
	// AppendSource journals one batch tagged with its ingestion source and
	// returns its LSN.
	AppendSource(table, source string, rows [][]algebra.Value) (uint64, error)
}

// DeltaJournal is a write-ahead log for base-table deltas: the serving
// layer appends every ingested batch *before* buffering it, acknowledges
// (Commit) only after a maintenance epoch has landed the rows in the base
// tables, and on restart replays the unacknowledged suffix — so no ingested
// delta is ever lost to a crash between ingestion and its epoch.
//
// Implementations must be safe for concurrent use. Append must be durable
// (for the file journal: flushed and synced) before it returns.
type DeltaJournal interface {
	// Append journals one batch and returns its LSN.
	Append(table string, rows [][]algebra.Value) (uint64, error)
	// Commit acknowledges every record with LSN ≤ lsn; acknowledged records
	// are never replayed again.
	Commit(lsn uint64) error
	// Pending returns the unacknowledged records in LSN order.
	Pending() ([]DeltaRecord, error)
	// RecordsSince returns every retained record with LSN > lsn in LSN
	// order — acknowledged or not. Snapshot recovery replays the suffix
	// past a snapshot's watermark with it; Truncate bounds how far back
	// it can reach.
	RecordsSince(lsn uint64) ([]DeltaRecord, error)
	// Truncate drops every record with LSN ≤ lsn (they are captured by a
	// durable snapshot and will never be replayed). LSN assignment
	// continues from where it was — truncation never reissues sequence
	// numbers.
	Truncate(lsn uint64) error
	// Close releases the journal's resources.
	Close() error
}

// MemJournal is the in-memory DeltaJournal: it survives a simulated crash
// (abandoning a Server and building a new one over the same journal) but
// not a process exit. Tests and examples use it; production-shaped runs use
// the file journal.
type MemJournal struct {
	mu        sync.Mutex
	records   []DeltaRecord
	nextLSN   uint64
	committed uint64
}

// NewMemJournal creates an empty in-memory journal.
func NewMemJournal() *MemJournal { return &MemJournal{nextLSN: 1} }

// Append journals one batch. The rows are copied shallowly (row slices are
// shared; the serving layer never mutates ingested rows).
func (j *MemJournal) Append(table string, rows [][]algebra.Value) (uint64, error) {
	return j.AppendSource(table, "", rows)
}

// AppendSource journals one batch tagged with its ingestion source.
func (j *MemJournal) AppendSource(table, source string, rows [][]algebra.Value) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	lsn := j.nextLSN
	j.nextLSN++
	j.records = append(j.records, DeltaRecord{LSN: lsn, Table: table, Rows: append([][]algebra.Value(nil), rows...), Source: source})
	return lsn, nil
}

// Commit acknowledges records up to lsn. Acknowledged records are retained
// (for snapshot recovery's RecordsSince) until Truncate discards them.
func (j *MemJournal) Commit(lsn uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if lsn > j.committed {
		j.committed = lsn
	}
	return nil
}

// Pending returns the unacknowledged records in LSN order.
func (j *MemJournal) Pending() ([]DeltaRecord, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []DeltaRecord
	for _, r := range j.records {
		if r.LSN > j.committed {
			out = append(out, r)
		}
	}
	return out, nil
}

// RecordsSince returns every retained record with LSN > lsn.
func (j *MemJournal) RecordsSince(lsn uint64) ([]DeltaRecord, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []DeltaRecord
	for _, r := range j.records {
		if r.LSN > lsn {
			out = append(out, r)
		}
	}
	return out, nil
}

// Truncate drops records with LSN ≤ lsn; sequence numbering continues.
func (j *MemJournal) Truncate(lsn uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	keep := j.records[:0]
	for _, r := range j.records {
		if r.LSN > lsn {
			keep = append(keep, r)
		}
	}
	j.records = keep
	if lsn > j.committed {
		j.committed = lsn
	}
	return nil
}

// Close is a no-op for the in-memory journal.
func (j *MemJournal) Close() error { return nil }

// journal file format: one JSON object per line, either a delta record
// ({"t":"d","lsn":N,"table":...,"rows":[[...]]}) or a commit mark
// ({"t":"c","lsn":N}). Values serialize as {k,i,f,s} with zero fields
// omitted. The format is append-only; a torn final line (crash mid-append)
// is detected by its parse failure and discarded on open.
type journalLine struct {
	T     string          `json:"t"`
	LSN   uint64          `json:"lsn"`
	Table string          `json:"table,omitempty"`
	Src   string          `json:"src,omitempty"`
	Rows  [][]journaleVal `json:"rows,omitempty"`
}

type journaleVal struct {
	K int     `json:"k"`
	I int64   `json:"i,omitempty"`
	F float64 `json:"f,omitempty"`
	S string  `json:"s,omitempty"`
}

func encodeRow(row []algebra.Value) []journaleVal {
	out := make([]journaleVal, len(row))
	for i, v := range row {
		out[i] = journaleVal{K: int(v.Kind), I: v.Int, F: v.Float, S: v.Str}
	}
	return out
}

func decodeRow(row []journaleVal) []algebra.Value {
	out := make([]algebra.Value, len(row))
	for i, v := range row {
		out[i] = algebra.Value{Kind: algebra.Type(v.K), Int: v.I, Float: v.F, Str: v.S}
	}
	return out
}

// FileJournal is the file-backed DeltaJournal: an append-only line-JSON log
// that is fsynced on every append and commit, and whose open path tolerates
// a torn final line — the crash-safe write-ahead log proper. Committed
// records stay in the file (for snapshot recovery's RecordsSince) until
// Truncate compacts it.
type FileJournal struct {
	mu        sync.Mutex
	path      string
	f         *os.File
	nextLSN   uint64
	committed uint64
	pending   []DeltaRecord
	inj       *fault.Injector
}

// journalScan is the result of reading one journal file front to back.
type journalScan struct {
	records   []DeltaRecord // every delta record, in file order
	committed uint64        // highest commit mark
	maxLSN    uint64        // highest LSN on any line (delta or commit)
	goodBytes int64         // bytes before the first malformed (torn) line
}

// scanJournalFile parses a journal file, stopping (without error) at the
// first malformed line — the torn tail of a crashed append.
func scanJournalFile(f *os.File) (journalScan, error) {
	var s journalScan
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	for sc.Scan() {
		raw := sc.Bytes()
		var line journalLine
		if err := json.Unmarshal(raw, &line); err != nil {
			// A torn tail from a crash mid-append: everything before it is
			// intact; the tail is discarded by the caller.
			break
		}
		s.goodBytes += int64(len(raw)) + 1
		if line.LSN > s.maxLSN {
			s.maxLSN = line.LSN
		}
		switch line.T {
		case "d":
			rows := make([][]algebra.Value, len(line.Rows))
			for i, r := range line.Rows {
				rows[i] = decodeRow(r)
			}
			s.records = append(s.records, DeltaRecord{LSN: line.LSN, Table: line.Table, Rows: rows, Source: line.Src})
		case "c":
			if line.LSN > s.committed {
				s.committed = line.LSN
			}
		}
	}
	if err := sc.Err(); err != nil {
		return s, fmt.Errorf("engine: reading delta journal: %w", err)
	}
	return s, nil
}

// OpenFileJournal opens (or creates) the journal at path and recovers its
// state: records after the last commit mark are pending and will be
// returned by Pending; a malformed final line — a torn write from a crash —
// is discarded. A stale compaction temp file (crash mid-Truncate) is
// removed: the original journal is still complete, so the half-written
// replacement is just debris.
func OpenFileJournal(path string) (*FileJournal, error) {
	if err := os.Remove(path + compactSuffix); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("engine: removing stale journal compaction file: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("engine: opening delta journal: %w", err)
	}
	s, err := scanJournalFile(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	// nextLSN must clear every LSN the file has ever named — including a
	// truncation's commit mark, which may be the only surviving line.
	// Restarting the sequence lower would reissue LSNs below a snapshot
	// watermark and make RecordsSince silently skip live deltas.
	j := &FileJournal{path: path, f: f, nextLSN: s.maxLSN + 1, committed: s.committed, pending: s.records}
	if j.nextLSN < 1 {
		j.nextLSN = 1
	}
	if err := f.Truncate(s.goodBytes); err != nil {
		f.Close()
		return nil, fmt.Errorf("engine: truncating torn journal tail: %w", err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, err
	}
	j.dropCommitted()
	return j, nil
}

// SetInjector arms fault injection at the journal's sites (currently
// SiteJournalTruncate); nil disables.
func (j *FileJournal) SetInjector(in *fault.Injector) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.inj = in
}

func (j *FileJournal) dropCommitted() {
	keep := j.pending[:0]
	for _, r := range j.pending {
		if r.LSN > j.committed {
			keep = append(keep, r)
		}
	}
	j.pending = keep
}

func (j *FileJournal) appendLine(line journalLine) error {
	data, err := json.Marshal(line)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if _, err := j.f.Write(data); err != nil {
		return fmt.Errorf("engine: appending to delta journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("engine: syncing delta journal: %w", err)
	}
	return nil
}

// Append journals one batch durably (write + fsync) before returning.
func (j *FileJournal) Append(table string, rows [][]algebra.Value) (uint64, error) {
	return j.AppendSource(table, "", rows)
}

// AppendSource journals one batch durably, tagged with its ingestion source.
func (j *FileJournal) AppendSource(table, source string, rows [][]algebra.Value) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	lsn := j.nextLSN
	enc := make([][]journaleVal, len(rows))
	for i, r := range rows {
		enc[i] = encodeRow(r)
	}
	if err := j.appendLine(journalLine{T: "d", LSN: lsn, Table: table, Src: source, Rows: enc}); err != nil {
		return 0, err
	}
	j.nextLSN++
	j.pending = append(j.pending, DeltaRecord{LSN: lsn, Table: table, Rows: rows, Source: source})
	return lsn, nil
}

// Commit appends a durable commit mark acknowledging records up to lsn.
func (j *FileJournal) Commit(lsn uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if lsn <= j.committed {
		return nil
	}
	if err := j.appendLine(journalLine{T: "c", LSN: lsn}); err != nil {
		return err
	}
	j.committed = lsn
	j.dropCommitted()
	return nil
}

// Pending returns the unacknowledged records in LSN order.
func (j *FileJournal) Pending() ([]DeltaRecord, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]DeltaRecord(nil), j.pending...), nil
}

// RecordsSince re-reads the journal file and returns every record with
// LSN > lsn, acknowledged or not — the snapshot recovery path's view of
// the suffix past a watermark.
func (j *FileJournal) RecordsSince(lsn uint64) ([]DeltaRecord, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	f, err := os.Open(j.path)
	if err != nil {
		return nil, fmt.Errorf("engine: reopening delta journal: %w", err)
	}
	defer f.Close()
	s, err := scanJournalFile(f)
	if err != nil {
		return nil, err
	}
	var out []DeltaRecord
	for _, r := range s.records {
		if r.LSN > lsn {
			out = append(out, r)
		}
	}
	return out, nil
}

// compactSuffix names the temporary replacement file Truncate stages next
// to the journal before atomically renaming it into place.
const compactSuffix = ".compact"

// Truncate rewrites the journal keeping only records with LSN > lsn. The
// rewrite is torn-tail safe: the survivors are staged to a temp file, led
// by a commit mark that both preserves the ack floor and pins the LSN
// sequence (so a reopened journal never reissues numbers ≤ lsn), fsynced,
// and renamed over the live journal. A crash at any point leaves either
// the complete old file or the complete new one.
func (j *FileJournal) Truncate(lsn uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	tmpPath := j.path + compactSuffix
	if err := os.Remove(tmpPath); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("engine: removing stale journal compaction file: %w", err)
	}
	rf, err := os.Open(j.path)
	if err != nil {
		return fmt.Errorf("engine: reopening delta journal for compaction: %w", err)
	}
	s, err := scanJournalFile(rf)
	rf.Close()
	if err != nil {
		return err
	}
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("engine: staging journal compaction: %w", err)
	}
	mark := j.committed
	if lsn > mark {
		mark = lsn
	}
	writeLine := func(line journalLine) error {
		data, err := json.Marshal(line)
		if err != nil {
			return err
		}
		_, err = tmp.Write(append(data, '\n'))
		return err
	}
	werr := writeLine(journalLine{T: "c", LSN: mark})
	for _, r := range s.records {
		if werr != nil {
			break
		}
		if r.LSN <= lsn {
			continue
		}
		enc := make([][]journaleVal, len(r.Rows))
		for i, row := range r.Rows {
			enc[i] = encodeRow(row)
		}
		werr = writeLine(journalLine{T: "d", LSN: r.LSN, Table: r.Table, Src: r.Source, Rows: enc})
	}
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("engine: writing journal compaction: %w", werr)
	}
	// Crash point: the replacement is staged but not yet live. An injected
	// error here abandons the compaction — the original journal is intact
	// and the temp file is swept on the next open or Truncate.
	if err := j.inj.Hit(fault.SiteJournalTruncate); err != nil {
		return err
	}
	if err := os.Rename(tmpPath, j.path); err != nil {
		return fmt.Errorf("engine: committing journal compaction: %w", err)
	}
	if err := syncDir(filepath.Dir(j.path)); err != nil {
		return err
	}
	// Swap the write handle to the new file and drop truncated records
	// from the in-memory pending set.
	nf, err := os.OpenFile(j.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("engine: reopening compacted journal: %w", err)
	}
	if _, err := nf.Seek(0, 2); err != nil {
		nf.Close()
		return err
	}
	j.f.Close()
	j.f = nf
	j.committed = mark
	if mark >= j.nextLSN {
		j.nextLSN = mark + 1
	}
	j.dropCommitted()
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("engine: opening dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("engine: syncing dir: %w", err)
	}
	return nil
}

// Close closes the underlying file.
func (j *FileJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
