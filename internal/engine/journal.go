package engine

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"github.com/warehousekit/mvpp/internal/algebra"
)

// DeltaRecord is one journaled batch of inserted rows for a base table.
type DeltaRecord struct {
	// LSN is the record's log sequence number; the journal assigns them
	// densely from 1.
	LSN uint64
	// Table is the base table the rows belong to.
	Table string
	// Rows are the inserted rows, schema-width as ingested.
	Rows [][]algebra.Value
}

// DeltaJournal is a write-ahead log for base-table deltas: the serving
// layer appends every ingested batch *before* buffering it, acknowledges
// (Commit) only after a maintenance epoch has landed the rows in the base
// tables, and on restart replays the unacknowledged suffix — so no ingested
// delta is ever lost to a crash between ingestion and its epoch.
//
// Implementations must be safe for concurrent use. Append must be durable
// (for the file journal: flushed and synced) before it returns.
type DeltaJournal interface {
	// Append journals one batch and returns its LSN.
	Append(table string, rows [][]algebra.Value) (uint64, error)
	// Commit acknowledges every record with LSN ≤ lsn; acknowledged records
	// are never replayed again.
	Commit(lsn uint64) error
	// Pending returns the unacknowledged records in LSN order.
	Pending() ([]DeltaRecord, error)
	// Close releases the journal's resources.
	Close() error
}

// MemJournal is the in-memory DeltaJournal: it survives a simulated crash
// (abandoning a Server and building a new one over the same journal) but
// not a process exit. Tests and examples use it; production-shaped runs use
// the file journal.
type MemJournal struct {
	mu        sync.Mutex
	records   []DeltaRecord
	nextLSN   uint64
	committed uint64
}

// NewMemJournal creates an empty in-memory journal.
func NewMemJournal() *MemJournal { return &MemJournal{nextLSN: 1} }

// Append journals one batch. The rows are copied shallowly (row slices are
// shared; the serving layer never mutates ingested rows).
func (j *MemJournal) Append(table string, rows [][]algebra.Value) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	lsn := j.nextLSN
	j.nextLSN++
	j.records = append(j.records, DeltaRecord{LSN: lsn, Table: table, Rows: append([][]algebra.Value(nil), rows...)})
	return lsn, nil
}

// Commit acknowledges records up to lsn and drops them.
func (j *MemJournal) Commit(lsn uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if lsn > j.committed {
		j.committed = lsn
	}
	keep := j.records[:0]
	for _, r := range j.records {
		if r.LSN > j.committed {
			keep = append(keep, r)
		}
	}
	j.records = keep
	return nil
}

// Pending returns the unacknowledged records in LSN order.
func (j *MemJournal) Pending() ([]DeltaRecord, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]DeltaRecord(nil), j.records...), nil
}

// Close is a no-op for the in-memory journal.
func (j *MemJournal) Close() error { return nil }

// journal file format: one JSON object per line, either a delta record
// ({"t":"d","lsn":N,"table":...,"rows":[[...]]}) or a commit mark
// ({"t":"c","lsn":N}). Values serialize as {k,i,f,s} with zero fields
// omitted. The format is append-only; a torn final line (crash mid-append)
// is detected by its parse failure and discarded on open.
type journalLine struct {
	T     string          `json:"t"`
	LSN   uint64          `json:"lsn"`
	Table string          `json:"table,omitempty"`
	Rows  [][]journaleVal `json:"rows,omitempty"`
}

type journaleVal struct {
	K int     `json:"k"`
	I int64   `json:"i,omitempty"`
	F float64 `json:"f,omitempty"`
	S string  `json:"s,omitempty"`
}

func encodeRow(row []algebra.Value) []journaleVal {
	out := make([]journaleVal, len(row))
	for i, v := range row {
		out[i] = journaleVal{K: int(v.Kind), I: v.Int, F: v.Float, S: v.Str}
	}
	return out
}

func decodeRow(row []journaleVal) []algebra.Value {
	out := make([]algebra.Value, len(row))
	for i, v := range row {
		out[i] = algebra.Value{Kind: algebra.Type(v.K), Int: v.I, Float: v.F, Str: v.S}
	}
	return out
}

// FileJournal is the file-backed DeltaJournal: an append-only line-JSON log
// that is fsynced on every append and commit, and whose open path tolerates
// a torn final line — the crash-safe write-ahead log proper.
type FileJournal struct {
	mu        sync.Mutex
	f         *os.File
	nextLSN   uint64
	committed uint64
	pending   []DeltaRecord
}

// OpenFileJournal opens (or creates) the journal at path and recovers its
// state: records after the last commit mark are pending and will be
// returned by Pending; a malformed final line — a torn write from a crash —
// is discarded.
func OpenFileJournal(path string) (*FileJournal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("engine: opening delta journal: %w", err)
	}
	j := &FileJournal{f: f, nextLSN: 1}
	var goodBytes int64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	for sc.Scan() {
		raw := sc.Bytes()
		var line journalLine
		if err := json.Unmarshal(raw, &line); err != nil {
			// A torn tail from a crash mid-append: everything before it is
			// intact; the tail is discarded (truncated below).
			break
		}
		goodBytes += int64(len(raw)) + 1
		switch line.T {
		case "d":
			rows := make([][]algebra.Value, len(line.Rows))
			for i, r := range line.Rows {
				rows[i] = decodeRow(r)
			}
			j.pending = append(j.pending, DeltaRecord{LSN: line.LSN, Table: line.Table, Rows: rows})
			if line.LSN >= j.nextLSN {
				j.nextLSN = line.LSN + 1
			}
		case "c":
			if line.LSN > j.committed {
				j.committed = line.LSN
			}
		}
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("engine: reading delta journal: %w", err)
	}
	if err := f.Truncate(goodBytes); err != nil {
		f.Close()
		return nil, fmt.Errorf("engine: truncating torn journal tail: %w", err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, err
	}
	j.dropCommitted()
	return j, nil
}

func (j *FileJournal) dropCommitted() {
	keep := j.pending[:0]
	for _, r := range j.pending {
		if r.LSN > j.committed {
			keep = append(keep, r)
		}
	}
	j.pending = keep
}

func (j *FileJournal) appendLine(line journalLine) error {
	data, err := json.Marshal(line)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if _, err := j.f.Write(data); err != nil {
		return fmt.Errorf("engine: appending to delta journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("engine: syncing delta journal: %w", err)
	}
	return nil
}

// Append journals one batch durably (write + fsync) before returning.
func (j *FileJournal) Append(table string, rows [][]algebra.Value) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	lsn := j.nextLSN
	enc := make([][]journaleVal, len(rows))
	for i, r := range rows {
		enc[i] = encodeRow(r)
	}
	if err := j.appendLine(journalLine{T: "d", LSN: lsn, Table: table, Rows: enc}); err != nil {
		return 0, err
	}
	j.nextLSN++
	j.pending = append(j.pending, DeltaRecord{LSN: lsn, Table: table, Rows: rows})
	return lsn, nil
}

// Commit appends a durable commit mark acknowledging records up to lsn.
func (j *FileJournal) Commit(lsn uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if lsn <= j.committed {
		return nil
	}
	if err := j.appendLine(journalLine{T: "c", LSN: lsn}); err != nil {
		return err
	}
	j.committed = lsn
	j.dropCommitted()
	return nil
}

// Pending returns the unacknowledged records in LSN order.
func (j *FileJournal) Pending() ([]DeltaRecord, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]DeltaRecord(nil), j.pending...), nil
}

// Close closes the underlying file.
func (j *FileJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
