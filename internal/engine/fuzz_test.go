package engine

import (
	"encoding/binary"
	"math"
	"reflect"
	"testing"

	"github.com/warehousekit/mvpp/internal/algebra"
)

// Fuzz targets for the batch executor's two trickiest contracts: the
// select kernel's error-and-result parity with the row engine, and the
// equivalence of joinKeyOf's typed key encoding with the legacy hashKey
// string classes.

// fuzzValue decodes one value from a (selector, int, float, string)
// tuple, covering every storage class including the canonical null and a
// non-canonical invalid value (unknown kind with payload bits set).
func fuzzValue(sel uint8, i int64, f float64, s string) algebra.Value {
	switch sel % 6 {
	case 0:
		return algebra.Value{}
	case 1:
		return algebra.IntVal(i)
	case 2:
		return algebra.FloatVal(f)
	case 3:
		return algebra.StringVal(s)
	case 4:
		return algebra.DateVal(i)
	default:
		return algebra.Value{Kind: algebra.Type(200), Int: i, Float: f, Str: s}
	}
}

// fuzzRows decodes a byte string into a column of values, 9 bytes per
// row: a class selector plus 8 payload bytes read as both int64 and
// float64 bits (the tail also doubles as a string payload).
func fuzzRows(data []byte) []algebra.Value {
	var out []algebra.Value
	for len(data) >= 9 && len(out) < 64 {
		sel := data[0]
		bits := binary.LittleEndian.Uint64(data[1:9])
		str := ""
		if n := int(sel % 7); n > 0 && n <= 8 {
			str = string(data[1 : 1+n])
		}
		out = append(out, fuzzValue(sel, int64(bits), math.Float64frombits(bits), str))
		data = data[9:]
	}
	return out
}

// FuzzBatchSelectPredicate runs the same selection in batch and row mode
// over a fuzzed column and requires identical outcomes: the same error
// text, or the same rows in the same order with the same operator stats.
func FuzzBatchSelectPredicate(f *testing.F) {
	// Seeds from the paper workload's value domains: small ints,
	// epoch-day dates around 1996 (9496..9861), whole and fractional
	// floats, specials, and strings containing the hash-class sigils.
	seed := func(rows []byte, op, litSel uint8, litInt int64, litFloat float64, litStr string, negate bool) {
		f.Add(rows, op, litSel, litInt, litFloat, litStr, negate)
	}
	enc := func(sel uint8, bits uint64) []byte {
		b := make([]byte, 9)
		b[0] = sel
		binary.LittleEndian.PutUint64(b[1:], bits)
		return b
	}
	negSeven := int64(-7)
	ints := append(enc(1, 100), enc(1, uint64(negSeven))...)
	dates := append(enc(4, 9496), enc(4, 9861)...)
	floats := append(enc(2, math.Float64bits(100.0)), enc(2, math.Float64bits(99.5))...)
	specials := append(enc(2, math.Float64bits(math.NaN())), enc(2, math.Float64bits(math.Inf(1)))...)
	strs := append(enc(3, 0x7c73), enc(0, 0)...) // "s|" prefix bytes and a null
	seed(ints, 4, 1, 50, 0, "", false)
	seed(dates, 2, 4, 9600, 0, "", true)
	seed(floats, 0, 2, 0, 100.0, "", false)
	seed(specials, 5, 2, 0, math.NaN(), "", false)
	seed(strs, 0, 3, 0, 0, "s|", false)

	schema := algebra.NewSchema(algebra.Column{Relation: "T", Name: "v", Type: algebra.TypeInt})
	f.Fuzz(func(t *testing.T, rowData []byte, op, litSel uint8, litInt int64, litFloat float64, litStr string, negate bool) {
		vals := fuzzRows(rowData)
		dbs := make([]*DB, 2)
		for i, mode := range []ExecMode{ExecBatch, ExecRow} {
			db := NewDB(4)
			tab, err := db.CreateTable("T", schema)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range vals {
				if err := tab.Insert([]algebra.Value{v}); err != nil {
					t.Fatal(err)
				}
			}
			db.SetExecMode(mode)
			dbs[i] = db
		}
		lit := fuzzValue(litSel, litInt, litFloat, litStr)
		var pred algebra.Predicate = algebra.Compare(
			algebra.ColOperand(algebra.Ref("T", "v")),
			algebra.CompareOp(int(op)%6+1),
			algebra.LitOperand(lit))
		if negate {
			pred = algebra.NewNot(pred)
		}
		plan := algebra.NewSelect(algebra.NewScan("T", schema), pred)

		bres, berr := dbs[0].Execute(plan)
		rres, rerr := dbs[1].Execute(plan)
		if (berr == nil) != (rerr == nil) || (berr != nil && berr.Error() != rerr.Error()) {
			t.Fatalf("select %s over %d rows: executor errors diverge\nbatch: %v\nrow:   %v",
				pred, len(vals), berr, rerr)
		}
		if berr != nil {
			return
		}
		if bres.Table.NumRows() != rres.Table.NumRows() {
			t.Fatalf("select %s: batch kept %d rows, row kept %d",
				pred, bres.Table.NumRows(), rres.Table.NumRows())
		}
		for i := 0; i < bres.Table.NumRows(); i++ {
			// Compare rendered rows (NaN payloads defeat ==) plus the raw
			// float bits, which String folds together.
			b, r := bres.Table.Row(i), rres.Table.Row(i)
			if b.String() != r.String() {
				t.Fatalf("select %s row %d: batch %v vs row %v", pred, i, b.Values, r.Values)
			}
			for ci := range b.Values {
				bv, rv := b.Values[ci], r.Values[ci]
				if math.Float64bits(bv.Float) != math.Float64bits(rv.Float) {
					t.Fatalf("select %s row %d col %d: float bits diverge %x vs %x",
						pred, i, ci, math.Float64bits(bv.Float), math.Float64bits(rv.Float))
				}
			}
		}
		if !reflect.DeepEqual(bres.Ops, rres.Ops) {
			t.Fatalf("select %s: op stats diverge\nbatch: %+v\nrow:   %+v", pred, bres.Ops, rres.Ops)
		}
	})
}

// FuzzJoinKeyEncoding pins the equivalence the batch hash join is built
// on: two values collide under the typed joinKey encoding exactly when
// they collide under the row engine's hashKey string.
func FuzzJoinKeyEncoding(f *testing.F) {
	add := func(selA uint8, intA int64, floatA float64, strA string, selB uint8, intB int64, floatB float64, strB string) {
		f.Add(selA, intA, floatA, strA, selB, intB, floatB, strB)
	}
	// Known collision classes: int 100 vs whole float 100.0, date vs int
	// on the same epoch day, NaN payload variants, string "x" vs an
	// invalid value carrying Str "x", and the ±0 fold.
	add(1, 100, 0, "", 2, 0, 100.0, "")
	add(4, 9496, 0, "", 1, 9496, 0, "")
	add(2, 0, math.NaN(), "", 2, 0, math.Float64frombits(0x7ff8000000000001), "")
	add(3, 0, 0, "x", 5, 7, 1.5, "x")
	add(2, 0, math.Copysign(0, -1), "", 1, 0, 0, "")
	add(0, 0, 0, "", 3, 0, 0, "")
	add(2, 0, 99.5, "", 2, 0, 99.5, "")

	f.Fuzz(func(t *testing.T, selA uint8, intA int64, floatA float64, strA string, selB uint8, intB int64, floatB float64, strB string) {
		a := fuzzValue(selA, intA, floatA, strA)
		b := fuzzValue(selB, intB, floatB, strB)
		typedEq := joinKeyOf(a) == joinKeyOf(b)
		legacyEq := hashKey(a) == hashKey(b)
		if typedEq != legacyEq {
			t.Fatalf("key encodings disagree for %#v vs %#v: joinKey equal=%v (%+v, %+v) but hashKey equal=%v (%q, %q)",
				a, b, typedEq, joinKeyOf(a), joinKeyOf(b), legacyEq, hashKey(a), hashKey(b))
		}
	})
}
