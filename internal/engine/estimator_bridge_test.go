package engine_test

import (
	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/catalog"
	"github.com/warehousekit/mvpp/internal/cost"
)

// estBridge wraps the cost estimator with the BlockNLJ model (the model the
// engine's physical operators implement) for validation tests.
type estBridge struct {
	est   *cost.Estimator
	model cost.Model
}

func newEstimator(cat *catalog.Catalog) *estBridge {
	return &estBridge{
		est:   cost.NewEstimator(cat, cost.DefaultOptions()),
		model: &cost.BlockNLJModel{},
	}
}

func (b *estBridge) planCost(plan algebra.Node) (float64, error) {
	return b.est.PlanCost(b.model, plan)
}
