package engine_test

import (
	"math"
	"testing"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/engine"
)

// aggDB builds a small table with known contents.
func aggDB(t *testing.T) (*engine.DB, *engine.Table) {
	t.Helper()
	db := engine.NewDB(4)
	schema := algebra.NewSchema(
		algebra.Column{Relation: "T", Name: "grp", Type: algebra.TypeString},
		algebra.Column{Relation: "T", Name: "v", Type: algebra.TypeInt},
	)
	tb, err := db.CreateTable("T", schema)
	if err != nil {
		t.Fatal(err)
	}
	rows := []struct {
		g string
		v int64
	}{
		{"a", 10}, {"b", 5}, {"a", 20}, {"b", 7}, {"a", 30}, {"c", 1},
	}
	for _, r := range rows {
		if err := tb.Insert([]algebra.Value{algebra.StringVal(r.g), algebra.IntVal(r.v)}); err != nil {
			t.Fatal(err)
		}
	}
	return db, tb
}

func TestExecuteAggregateGrouped(t *testing.T) {
	db, tb := aggDB(t)
	plan := algebra.NewAggregate(
		algebra.NewScan("T", tb.Schema),
		[]algebra.ColumnRef{algebra.Ref("T", "grp")},
		[]algebra.Aggregation{
			{Func: algebra.AggSum, Arg: algebra.Ref("T", "v"), Alias: "total"},
			{Func: algebra.AggCount, Alias: "n"},
			{Func: algebra.AggMin, Arg: algebra.Ref("T", "v"), Alias: "lo"},
			{Func: algebra.AggMax, Arg: algebra.Ref("T", "v"), Alias: "hi"},
			{Func: algebra.AggAvg, Arg: algebra.Ref("T", "v"), Alias: "mean"},
		})
	res, err := db.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 3 {
		t.Fatalf("groups = %d", res.Table.NumRows())
	}
	want := map[string]struct {
		total, n, lo, hi int64
		mean             float64
	}{
		"a": {60, 3, 10, 30, 20},
		"b": {12, 2, 5, 7, 6},
		"c": {1, 1, 1, 1, 1},
	}
	for i := 0; i < res.Table.NumRows(); i++ {
		row := res.Table.Row(i)
		g, _ := row.ColumnValue(algebra.Ref("T", "grp"))
		w := want[g.Str]
		total, _ := row.ColumnValue(algebra.Ref("", "total"))
		n, _ := row.ColumnValue(algebra.Ref("", "n"))
		lo, _ := row.ColumnValue(algebra.Ref("", "lo"))
		hi, _ := row.ColumnValue(algebra.Ref("", "hi"))
		mean, _ := row.ColumnValue(algebra.Ref("", "mean"))
		if total.Int != w.total || n.Int != w.n || lo.Int != w.lo || hi.Int != w.hi {
			t.Errorf("group %s: got total=%d n=%d lo=%d hi=%d, want %+v", g.Str, total.Int, n.Int, lo.Int, hi.Int, w)
		}
		if math.Abs(mean.Float-w.mean) > 1e-9 {
			t.Errorf("group %s: mean = %v, want %v", g.Str, mean.Float, w.mean)
		}
	}
	// One pass over the input.
	if res.Ops[len(res.Ops)-1].Reads != int64(tb.NumBlocks()) {
		t.Errorf("aggregate reads = %d, want %d", res.Ops[len(res.Ops)-1].Reads, tb.NumBlocks())
	}
}

func TestExecuteAggregateGlobal(t *testing.T) {
	db, tb := aggDB(t)
	plan := algebra.NewAggregate(
		algebra.NewScan("T", tb.Schema),
		nil,
		[]algebra.Aggregation{{Func: algebra.AggCount, Alias: "n"}})
	res, err := db.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 1 {
		t.Fatalf("rows = %d", res.Table.NumRows())
	}
	n, _ := res.Table.Row(0).ColumnValue(algebra.Ref("", "n"))
	if n.Int != 6 {
		t.Errorf("COUNT(*) = %d, want 6", n.Int)
	}
}

func TestExecuteAggregateOverSelection(t *testing.T) {
	db, tb := aggDB(t)
	sel := algebra.NewSelect(algebra.NewScan("T", tb.Schema),
		algebra.Compare(algebra.ColOperand(algebra.Ref("T", "v")), algebra.OpGt, algebra.LitOperand(algebra.IntVal(6))))
	plan := algebra.NewAggregate(sel,
		[]algebra.ColumnRef{algebra.Ref("T", "grp")},
		[]algebra.Aggregation{{Func: algebra.AggSum, Arg: algebra.Ref("T", "v"), Alias: "total"}})
	res, err := db.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	// v > 6 keeps a:{10,20,30}, b:{7} → two groups.
	if res.Table.NumRows() != 2 {
		t.Fatalf("groups = %d", res.Table.NumRows())
	}
}

func TestMaterializeAggregateViewAndRewrite(t *testing.T) {
	db, tb := aggDB(t)
	plan := algebra.NewAggregate(
		algebra.NewScan("T", tb.Schema),
		[]algebra.ColumnRef{algebra.Ref("T", "grp")},
		[]algebra.Aggregation{{Func: algebra.AggSum, Arg: algebra.Ref("T", "v"), Alias: "total"}})
	if _, err := db.Materialize("summary", plan); err != nil {
		t.Fatal(err)
	}
	rewritten := db.RewriteWithViews(algebra.Clone(plan))
	if _, ok := rewritten.(*algebra.Scan); !ok {
		t.Fatalf("rewritten = %T, want scan of summary view", rewritten)
	}
	direct, err := db.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := db.Execute(rewritten)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Table.NumRows() != fast.Table.NumRows() {
		t.Errorf("rows differ: %d vs %d", direct.Table.NumRows(), fast.Table.NumRows())
	}
	if fast.TotalReads() >= direct.TotalReads() {
		t.Errorf("summary view not cheaper: %d vs %d", fast.TotalReads(), direct.TotalReads())
	}
	// Refresh after base change.
	if err := tb.Insert([]algebra.Value{algebra.StringVal("a"), algebra.IntVal(100)}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Refresh("summary"); err != nil {
		t.Fatal(err)
	}
	refreshed, err := db.Execute(rewritten)
	if err != nil {
		t.Fatal(err)
	}
	foundA := false
	for i := 0; i < refreshed.Table.NumRows(); i++ {
		row := refreshed.Table.Row(i)
		g, _ := row.ColumnValue(algebra.Ref("T", "grp"))
		if g.Str == "a" {
			total, _ := row.ColumnValue(algebra.Ref("", "total"))
			if total.Int != 160 {
				t.Errorf("refreshed total(a) = %d, want 160", total.Int)
			}
			foundA = true
		}
	}
	if !foundA {
		t.Error("group a missing after refresh")
	}
}

func TestExecuteAggregateErrors(t *testing.T) {
	db, tb := aggDB(t)
	bad := algebra.NewAggregate(
		algebra.NewScan("T", tb.Schema),
		[]algebra.ColumnRef{algebra.Ref("T", "ghost")},
		[]algebra.Aggregation{{Func: algebra.AggCount, Alias: "n"}})
	if _, err := db.Execute(bad); err == nil {
		t.Error("bad group column executed")
	}
}
