package engine

import (
	"fmt"
	"sort"
	"sync"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/fault"
)

// MaterializedView is a stored query result with its defining plan. The
// stored table is replaced wholesale on refresh — an epoch swap guarded by
// a per-view RWMutex — so readers always scan a complete, immutable
// snapshot and never observe a half-refreshed view.
type MaterializedView struct {
	Name string
	Plan algebra.Node
	// Key is the structural key of the defining plan, used for rewriting.
	Key string

	mu    sync.RWMutex
	table *Table
}

// Table exposes the stored contents: the current epoch's immutable
// snapshot. Safe to call concurrently with refreshes.
func (v *MaterializedView) Table() *Table {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.table
}

// setTable swaps in the next epoch's table.
func (v *MaterializedView) setTable(t *Table) {
	v.mu.Lock()
	v.table = t
	v.mu.Unlock()
}

// Materialize executes the plan and stores the result under the given name
// (reads and the final write are counted on the database counter).
func (db *DB) Materialize(name string, plan algebra.Node) (*MaterializedView, error) {
	if name == "" {
		return nil, fmt.Errorf("engine: view must have a name")
	}
	db.mu.RLock()
	_, dupView := db.views[name]
	_, dupTable := db.tables[name]
	db.mu.RUnlock()
	if dupView {
		return nil, fmt.Errorf("engine: view %s already exists", name)
	}
	if dupTable {
		return nil, fmt.Errorf("engine: view %s collides with a base table", name)
	}
	res, err := db.Execute(plan)
	if err != nil {
		return nil, err
	}
	res.Table.Name = name
	v := &MaterializedView{
		Name:  name,
		Plan:  plan,
		Key:   algebra.StructuralKey(plan),
		table: res.Table,
	}
	db.mu.Lock()
	db.views[name] = v
	// A fresh view is computed from the base tables without pending
	// deltas, so its delta watermark starts at zero rows propagated.
	delete(db.propagated, name)
	db.mu.Unlock()
	return v, nil
}

// Refresh recomputes a view from base tables (the paper's maintenance
// policy) and reports the I/O spent. The recomputation runs beside
// concurrent readers; only the final table swap synchronizes with them.
func (db *DB) Refresh(name string) (*Result, error) {
	v, err := db.View(name)
	if err != nil {
		return nil, err
	}
	if err := db.inj.Hit(fault.SiteEngineRefresh); err != nil {
		return nil, err
	}
	res, err := db.Execute(v.Plan)
	if err != nil {
		return nil, err
	}
	res.Table.Name = name
	v.setTable(res.Table)
	// The recompute read the base tables without pending deltas, so any
	// partially propagated deltas are unpropagated again.
	db.mu.Lock()
	delete(db.propagated, name)
	db.mu.Unlock()
	return res, nil
}

// RefreshAll refreshes every view, sharing nothing (each view recomputes
// from base tables); returns total I/O per view.
func (db *DB) RefreshAll() (map[string]*Result, error) {
	names := db.Views()
	out := make(map[string]*Result, len(names))
	for _, name := range names {
		res, err := db.Refresh(name)
		if err != nil {
			return nil, err
		}
		out[name] = res
	}
	return out, nil
}

// Views lists view names, sorted.
func (db *DB) Views() []string {
	db.mu.RLock()
	out := make([]string, 0, len(db.views))
	for name := range db.views {
		out = append(out, name)
	}
	db.mu.RUnlock()
	sort.Strings(out)
	return out
}

// View looks up a materialized view.
func (db *DB) View(name string) (*MaterializedView, error) {
	db.mu.RLock()
	v, ok := db.views[name]
	db.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("engine: unknown view %q", name)
	}
	return v, nil
}

// SnapshotDropper is the durable-store hook DropView calls so a dropped
// view's persisted segments die with it. internal/snapshot's Store
// implements it; the indirection keeps engine free of a snapshot import.
type SnapshotDropper interface {
	// DropViewSnapshot removes every persisted segment and manifest entry
	// for the named view across all snapshot generations.
	DropViewSnapshot(name string) error
}

// SetSnapshotStore wires the durable snapshot store (nil disables). Call
// during setup, before the DB is shared.
func (db *DB) SetSnapshotStore(s SnapshotDropper) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.snapStore = s
}

// DropView removes a materialized view, including its pending-delta
// watermark — a later view materialized under the same name must start
// from a clean slate, or it would silently skip deltas the dropped view
// had already consumed and serve stale rows forever. When a snapshot store
// is wired, the view's persisted segments are deleted too, so a
// dropped-then-readded view cannot resurrect stale rows on restart.
func (db *DB) DropView(name string) error {
	db.mu.Lock()
	if _, ok := db.views[name]; !ok {
		db.mu.Unlock()
		return fmt.Errorf("engine: unknown view %q", name)
	}
	delete(db.views, name)
	delete(db.propagated, name)
	snap := db.snapStore
	db.mu.Unlock()
	if snap != nil {
		if err := snap.DropViewSnapshot(name); err != nil {
			return fmt.Errorf("engine: dropping snapshot of view %s: %w", name, err)
		}
	}
	return nil
}

// viewSnapshot captures the current view set (pointers plus each view's
// current table) under the read lock, so rewriting works on a consistent
// epoch while maintenance proceeds.
type viewSnapshot struct {
	view  *MaterializedView
	table *Table
}

func (db *DB) snapshotViews() []viewSnapshot {
	db.mu.RLock()
	names := make([]string, 0, len(db.views))
	for name := range db.views {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]viewSnapshot, 0, len(names))
	for _, name := range names {
		v := db.views[name]
		out = append(out, viewSnapshot{view: v, table: v.Table()})
	}
	db.mu.RUnlock()
	return out
}

// RewriteWithViewsSubsuming extends RewriteWithViews with predicate
// subsumption: a subtree σp(S) can be answered from a view σq(S') when S
// and S' compute the same relation and p implies q — the query re-applies
// its own filter over the (smaller) stored view. This is how ad-hoc
// queries profit from the Figure-8 style shared disjunctive filters
// (σ city='LA' is answerable from a stored σ city='LA' ∨ city='SF').
// Safe to call concurrently with maintenance: it rewrites against a
// snapshot of the view set.
func (db *DB) RewriteWithViewsSubsuming(plan algebra.Node) algebra.Node {
	snaps := db.snapshotViews()
	exact := make(map[string]viewSnapshot, len(snaps))
	for _, s := range snaps {
		exact[s.view.Key] = s
	}
	var rewrite func(n algebra.Node) algebra.Node
	rewrite = func(n algebra.Node) algebra.Node {
		if s, ok := exact[algebra.StructuralKey(n)]; ok {
			return algebra.NewScan(s.view.Name, s.table.Schema)
		}
		if repl, ok := subsumeSelect(snaps, n); ok {
			return repl
		}
		switch t := n.(type) {
		case *algebra.Select:
			return algebra.NewSelect(rewrite(t.Input), t.Pred)
		case *algebra.Project:
			return algebra.NewProject(rewrite(t.Input), t.Cols)
		case *algebra.Join:
			return algebra.NewJoin(rewrite(t.Left), rewrite(t.Right), t.On)
		case *algebra.Aggregate:
			return algebra.NewAggregate(rewrite(t.Input), t.GroupBy, t.Aggs)
		default:
			return n
		}
	}
	return rewrite(plan)
}

// subsumeSelect tries to answer σp(S) (or a bare S) from a view σq(S') with
// p ⇒ q. The query's full filter is re-applied over the view, which is
// always sound.
func subsumeSelect(snaps []viewSnapshot, n algebra.Node) (algebra.Node, bool) {
	var pred algebra.Predicate
	input := n
	if sel, ok := n.(*algebra.Select); ok {
		pred = sel.Pred
		input = sel.Input
	}
	inputKey := algebra.SemanticKey(input)
	for _, s := range snaps {
		vSel, ok := s.view.Plan.(*algebra.Select)
		if !ok {
			continue
		}
		if algebra.SemanticKey(vSel.Input) != inputKey {
			continue
		}
		if !algebra.Implies(pred, vSel.Pred) {
			continue
		}
		if !n.Schema().Equal(s.table.Schema) {
			continue
		}
		scan := algebra.NewScan(s.view.Name, s.table.Schema)
		if pred == nil {
			// p ⇒ q with p = true means q = true as well; the view is the
			// whole input.
			return scan, true
		}
		return algebra.NewSelect(scan, pred), true
	}
	return nil, false
}

// RewriteWithViews returns an equivalent plan in which every subtree whose
// structural key matches a materialized view is replaced by a scan of that
// view. Matching is top-down, so the largest materialized subtree wins.
// Safe to call concurrently with maintenance.
func (db *DB) RewriteWithViews(plan algebra.Node) algebra.Node {
	snaps := db.snapshotViews()
	byKey := make(map[string]viewSnapshot, len(snaps))
	for _, s := range snaps {
		byKey[s.view.Key] = s
	}
	var rewrite func(n algebra.Node) algebra.Node
	rewrite = func(n algebra.Node) algebra.Node {
		if s, ok := byKey[algebra.StructuralKey(n)]; ok {
			return algebra.NewScan(s.view.Name, s.table.Schema)
		}
		switch t := n.(type) {
		case *algebra.Select:
			return algebra.NewSelect(rewrite(t.Input), t.Pred)
		case *algebra.Project:
			return algebra.NewProject(rewrite(t.Input), t.Cols)
		case *algebra.Join:
			return algebra.NewJoin(rewrite(t.Left), rewrite(t.Right), t.On)
		default:
			return n
		}
	}
	return rewrite(plan)
}
