package engine

import (
	"fmt"
	"sort"

	"github.com/warehousekit/mvpp/internal/algebra"
)

// MaterializedView is a stored query result with its defining plan.
type MaterializedView struct {
	Name string
	Plan algebra.Node
	// Key is the structural key of the defining plan, used for rewriting.
	Key   string
	table *Table
}

// Table exposes the stored contents.
func (v *MaterializedView) Table() *Table { return v.table }

// Materialize executes the plan and stores the result under the given name
// (reads and the final write are counted on the database counter).
func (db *DB) Materialize(name string, plan algebra.Node) (*MaterializedView, error) {
	if name == "" {
		return nil, fmt.Errorf("engine: view must have a name")
	}
	if _, dup := db.views[name]; dup {
		return nil, fmt.Errorf("engine: view %s already exists", name)
	}
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("engine: view %s collides with a base table", name)
	}
	res, err := db.Execute(plan)
	if err != nil {
		return nil, err
	}
	res.Table.Name = name
	v := &MaterializedView{
		Name:  name,
		Plan:  plan,
		Key:   algebra.StructuralKey(plan),
		table: res.Table,
	}
	db.views[name] = v
	return v, nil
}

// Refresh recomputes a view from base tables (the paper's maintenance
// policy) and reports the I/O spent.
func (db *DB) Refresh(name string) (*Result, error) {
	v, ok := db.views[name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown view %q", name)
	}
	res, err := db.Execute(v.Plan)
	if err != nil {
		return nil, err
	}
	res.Table.Name = name
	v.table = res.Table
	return res, nil
}

// RefreshAll refreshes every view, sharing nothing (each view recomputes
// from base tables); returns total I/O per view.
func (db *DB) RefreshAll() (map[string]*Result, error) {
	out := make(map[string]*Result, len(db.views))
	for _, name := range db.Views() {
		res, err := db.Refresh(name)
		if err != nil {
			return nil, err
		}
		out[name] = res
	}
	return out, nil
}

// Views lists view names, sorted.
func (db *DB) Views() []string {
	out := make([]string, 0, len(db.views))
	for name := range db.views {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// View looks up a materialized view.
func (db *DB) View(name string) (*MaterializedView, error) {
	v, ok := db.views[name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown view %q", name)
	}
	return v, nil
}

// DropView removes a materialized view.
func (db *DB) DropView(name string) error {
	if _, ok := db.views[name]; !ok {
		return fmt.Errorf("engine: unknown view %q", name)
	}
	delete(db.views, name)
	return nil
}

// RewriteWithViewsSubsuming extends RewriteWithViews with predicate
// subsumption: a subtree σp(S) can be answered from a view σq(S') when S
// and S' compute the same relation and p implies q — the query re-applies
// its own filter over the (smaller) stored view. This is how ad-hoc
// queries profit from the Figure-8 style shared disjunctive filters
// (σ city='LA' is answerable from a stored σ city='LA' ∨ city='SF').
func (db *DB) RewriteWithViewsSubsuming(plan algebra.Node) algebra.Node {
	exact := make(map[string]*MaterializedView, len(db.views))
	for _, v := range db.views {
		exact[v.Key] = v
	}
	var rewrite func(n algebra.Node) algebra.Node
	rewrite = func(n algebra.Node) algebra.Node {
		if v, ok := exact[algebra.StructuralKey(n)]; ok {
			return algebra.NewScan(v.Name, v.table.Schema)
		}
		if repl, ok := db.subsumeSelect(n); ok {
			return repl
		}
		switch t := n.(type) {
		case *algebra.Select:
			return algebra.NewSelect(rewrite(t.Input), t.Pred)
		case *algebra.Project:
			return algebra.NewProject(rewrite(t.Input), t.Cols)
		case *algebra.Join:
			return algebra.NewJoin(rewrite(t.Left), rewrite(t.Right), t.On)
		case *algebra.Aggregate:
			return algebra.NewAggregate(rewrite(t.Input), t.GroupBy, t.Aggs)
		default:
			return n
		}
	}
	return rewrite(plan)
}

// subsumeSelect tries to answer σp(S) (or a bare S) from a view σq(S') with
// p ⇒ q. The query's full filter is re-applied over the view, which is
// always sound.
func (db *DB) subsumeSelect(n algebra.Node) (algebra.Node, bool) {
	var pred algebra.Predicate
	input := n
	if sel, ok := n.(*algebra.Select); ok {
		pred = sel.Pred
		input = sel.Input
	}
	inputKey := algebra.SemanticKey(input)
	for _, name := range db.Views() {
		v := db.views[name]
		vSel, ok := v.Plan.(*algebra.Select)
		if !ok {
			continue
		}
		if algebra.SemanticKey(vSel.Input) != inputKey {
			continue
		}
		if !algebra.Implies(pred, vSel.Pred) {
			continue
		}
		if !n.Schema().Equal(v.table.Schema) {
			continue
		}
		scan := algebra.NewScan(v.Name, v.table.Schema)
		if pred == nil {
			// p ⇒ q with p = true means q = true as well; the view is the
			// whole input.
			return scan, true
		}
		return algebra.NewSelect(scan, pred), true
	}
	return nil, false
}

// RewriteWithViews returns an equivalent plan in which every subtree whose
// structural key matches a materialized view is replaced by a scan of that
// view. Matching is top-down, so the largest materialized subtree wins.
func (db *DB) RewriteWithViews(plan algebra.Node) algebra.Node {
	byKey := make(map[string]*MaterializedView, len(db.views))
	for _, v := range db.views {
		byKey[v.Key] = v
	}
	var rewrite func(n algebra.Node) algebra.Node
	rewrite = func(n algebra.Node) algebra.Node {
		if v, ok := byKey[algebra.StructuralKey(n)]; ok {
			return algebra.NewScan(v.Name, v.table.Schema)
		}
		switch t := n.(type) {
		case *algebra.Select:
			return algebra.NewSelect(rewrite(t.Input), t.Pred)
		case *algebra.Project:
			return algebra.NewProject(rewrite(t.Input), t.Cols)
		case *algebra.Join:
			return algebra.NewJoin(rewrite(t.Left), rewrite(t.Right), t.On)
		default:
			return n
		}
	}
	return rewrite(plan)
}
