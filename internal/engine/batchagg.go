package engine

import (
	"math"
	"strings"

	"github.com/warehousekit/mvpp/internal/algebra"
)

// batchAggregate is the vectorized hash aggregation: a first pass assigns
// every row a group id (first-seen group order, same as the reference
// executor), then each aggregate runs as a typed column loop over the
// group-id vector. Columns that carry nulls or mixed kinds fall back to
// the reference accumulator value-at-a-time, which keeps error behavior
// (e.g. SUM over a non-numeric value) bit-identical.
func (db *DB) batchAggregate(agg *algebra.Aggregate, in *Table, res *Result) (*Table, error) {
	groupIdx, argIdx, err := resolveAggregate(agg, in)
	if err != nil {
		return nil, err
	}
	n := in.NumRows()
	gids, firstRow := assignGroups(in, groupIdx)
	nGroups := len(firstRow)

	// Group sizes serve COUNT directly (the accumulator counts every row,
	// nulls included) and AVG denominators.
	sizes := make([]int64, nGroups)
	for _, g := range gids {
		sizes[g]++
	}

	type aggState struct {
		sumI  []int64
		sumF  []float64
		isF   bool
		minI  []int64 // MIN/MAX payloads for typed numeric/string columns
		maxI  []int64
		minF  []float64
		maxF  []float64
		minS  []string
		maxS  []string
		seen  []bool
		accs  []*accumulator // value-at-a-time fallback
		kind  algebra.Type
		typed bool
	}
	states := make([]*aggState, len(agg.Aggs))
	var fallback []int // agg positions evaluated row-at-a-time, in order
	for i, a := range agg.Aggs {
		st := &aggState{}
		states[i] = st
		if argIdx[i] < 0 || a.Func == algebra.AggCount {
			continue // served by sizes
		}
		col := in.cols[argIdx[i]]
		k := col.typedKind()
		vectorizable := !col.hasNulls() &&
			(k == algebra.TypeInt || k == algebra.TypeDate || k == algebra.TypeFloat ||
				(k == algebra.TypeString && (a.Func == algebra.AggMin || a.Func == algebra.AggMax)))
		if !vectorizable {
			st.accs = make([]*accumulator, nGroups)
			for g := range st.accs {
				st.accs[g] = &accumulator{fn: a.Func}
			}
			fallback = append(fallback, i)
			continue
		}
		st.typed, st.kind = true, k
		switch a.Func {
		case algebra.AggSum, algebra.AggAvg:
			st.sumI = make([]int64, nGroups)
			st.sumF = make([]float64, nGroups)
			st.isF = k == algebra.TypeFloat
		case algebra.AggMin, algebra.AggMax:
			st.seen = make([]bool, nGroups)
			switch k {
			case algebra.TypeInt, algebra.TypeDate:
				st.minI = make([]int64, nGroups)
				st.maxI = make([]int64, nGroups)
			case algebra.TypeFloat:
				st.minF = make([]float64, nGroups)
				st.maxF = make([]float64, nGroups)
			case algebra.TypeString:
				st.minS = make([]string, nGroups)
				st.maxS = make([]string, nGroups)
			}
		}
	}

	// Typed accumulation: one pass per vectorized aggregate.
	for i, a := range agg.Aggs {
		st := states[i]
		if !st.typed {
			continue
		}
		col := in.cols[argIdx[i]]
		switch a.Func {
		case algebra.AggSum, algebra.AggAvg:
			if st.kind == algebra.TypeFloat {
				for r, g := range gids {
					st.sumF[g] += col.floats[r]
				}
			} else {
				for r, g := range gids {
					st.sumI[g] += col.ints[r]
					st.sumF[g] += float64(col.ints[r])
				}
			}
		case algebra.AggMin, algebra.AggMax:
			accumMinMax(st.seen, st.minI, st.maxI, st.minF, st.maxF, st.minS, st.maxS, col, gids)
		}
	}

	// Fallback accumulation: rows in order, aggregates in order within the
	// row — the reference executor's loop nest, so the first error matches.
	if len(fallback) > 0 {
		for r := 0; r < n; r++ {
			g := gids[r]
			for _, i := range fallback {
				v := in.cols[argIdx[i]].valueAt(r)
				if err := states[i].accs[g].add(v); err != nil {
					return nil, err
				}
			}
		}
	}

	out := NewTable("", agg.Schema(), db.BlockRows)
	for g := 0; g < nGroups; g++ {
		row := make([]algebra.Value, 0, len(groupIdx)+len(agg.Aggs))
		for _, gi := range groupIdx {
			row = append(row, in.cols[gi].valueAt(int(firstRow[g])))
		}
		for i, a := range agg.Aggs {
			st := states[i]
			switch {
			case argIdx[i] < 0 || a.Func == algebra.AggCount:
				row = append(row, algebra.IntVal(sizes[g]))
			case st.typed && (a.Func == algebra.AggSum):
				if st.isF {
					row = append(row, algebra.FloatVal(st.sumF[g]))
				} else {
					row = append(row, algebra.IntVal(st.sumI[g]))
				}
			case st.typed && a.Func == algebra.AggAvg:
				if sizes[g] == 0 {
					row = append(row, algebra.FloatVal(0))
				} else {
					row = append(row, algebra.FloatVal(st.sumF[g]/float64(sizes[g])))
				}
			case st.typed && a.Func == algebra.AggMin:
				row = append(row, minMaxValue(st.kind, st.minI, st.minF, st.minS, g))
			case st.typed && a.Func == algebra.AggMax:
				row = append(row, minMaxValue(st.kind, st.maxI, st.maxF, st.maxS, g))
			default:
				row = append(row, st.accs[g].result())
			}
		}
		if err := out.Insert(row); err != nil {
			return nil, err
		}
	}
	stats := OpStats{
		Label:     agg.Label(),
		Reads:     int64(in.NumBlocks()),
		Writes:    int64(out.NumBlocks()),
		OutRows:   out.NumRows(),
		OutBlocks: out.NumBlocks(),
	}
	db.account(stats)
	res.Ops = append(res.Ops, stats)
	return out, nil
}

// accumMinMax folds one typed column into per-group min/max payloads.
// Comparisons are strict (replace only on <, resp. >), matching the
// accumulator's keep-first-on-ties behavior; numeric columns compare
// through float64 exactly as Value.Compare does.
func accumMinMax(seen []bool, minI, maxI []int64, minF, maxF []float64, minS, maxS []string, col *colvec, gids []int32) {
	switch {
	case minI != nil:
		for r, g := range gids {
			v := col.ints[r]
			if !seen[g] {
				seen[g], minI[g], maxI[g] = true, v, v
				continue
			}
			if float64(v) < float64(minI[g]) {
				minI[g] = v
			}
			if float64(v) > float64(maxI[g]) {
				maxI[g] = v
			}
		}
	case minF != nil:
		for r, g := range gids {
			v := col.floats[r]
			if !seen[g] {
				seen[g], minF[g], maxF[g] = true, v, v
				continue
			}
			if v < minF[g] {
				minF[g] = v
			}
			if v > maxF[g] {
				maxF[g] = v
			}
		}
	case minS != nil:
		for r, g := range gids {
			v := col.strs[r]
			if !seen[g] {
				seen[g], minS[g], maxS[g] = true, v, v
				continue
			}
			if v < minS[g] {
				minS[g] = v
			}
			if v > maxS[g] {
				maxS[g] = v
			}
		}
	}
}

// minMaxValue rebuilds the stored min/max payload as a Value of the
// column's kind — identical to the original value the accumulator would
// have retained, since typed columns are kind-uniform.
func minMaxValue(kind algebra.Type, ints []int64, floats []float64, strs []string, g int) algebra.Value {
	switch kind {
	case algebra.TypeFloat:
		return algebra.Value{Kind: algebra.TypeFloat, Float: floats[g]}
	case algebra.TypeString:
		return algebra.Value{Kind: algebra.TypeString, Str: strs[g]}
	default:
		return algebra.Value{Kind: kind, Int: ints[g]}
	}
}

// assignGroups computes each row's group id in first-seen order and the
// first row index of every group (whose values become the output key
// columns, as in the reference executor). Single typed non-null key
// columns partition on the raw payload — injective with respect to the
// reference executor's Value.String() keys because a typed column is
// kind-uniform; every other shape uses the String() keys themselves.
func assignGroups(in *Table, groupIdx []int) ([]int32, []int32) {
	n := in.NumRows()
	gids := make([]int32, n)
	var firstRow []int32
	if len(groupIdx) == 0 {
		// Global aggregate: every row is the single group (the reference
		// executor's empty string key).
		if n > 0 {
			firstRow = append(firstRow, 0)
		}
		return gids, firstRow
	}
	if len(groupIdx) == 1 {
		col := in.cols[groupIdx[0]]
		if !col.hasNulls() {
			switch col.typedKind() {
			case algebra.TypeInt, algebra.TypeDate:
				byKey := make(map[int64]int32, 64)
				for r := 0; r < n; r++ {
					k := col.ints[r]
					g, ok := byKey[k]
					if !ok {
						g = int32(len(firstRow))
						byKey[k] = g
						firstRow = append(firstRow, int32(r))
					}
					gids[r] = g
				}
				return gids, firstRow
			case algebra.TypeFloat:
				byKey := make(map[uint64]int32, 64)
				for r := 0; r < n; r++ {
					f := col.floats[r]
					if math.IsNaN(f) {
						// Every NaN renders "NaN", one group.
						f = math.NaN()
					}
					k := math.Float64bits(f)
					g, ok := byKey[k]
					if !ok {
						g = int32(len(firstRow))
						byKey[k] = g
						firstRow = append(firstRow, int32(r))
					}
					gids[r] = g
				}
				return gids, firstRow
			case algebra.TypeString:
				byKey := make(map[string]int32, 64)
				for r := 0; r < n; r++ {
					k := col.strs[r]
					g, ok := byKey[k]
					if !ok {
						g = int32(len(firstRow))
						byKey[k] = g
						firstRow = append(firstRow, int32(r))
					}
					gids[r] = g
				}
				return gids, firstRow
			}
		}
	}
	byKey := make(map[string]int32, 64)
	var key strings.Builder
	for r := 0; r < n; r++ {
		key.Reset()
		for _, gi := range groupIdx {
			key.WriteString(in.cols[gi].valueAt(r).String())
			key.WriteByte('|')
		}
		k := key.String()
		g, ok := byKey[k]
		if !ok {
			g = int32(len(firstRow))
			byKey[k] = g
			firstRow = append(firstRow, int32(r))
		}
		gids[r] = g
	}
	return gids, firstRow
}
