package engine

import (
	"fmt"
	"strings"

	"github.com/warehousekit/mvpp/internal/algebra"
)

// rowHashJoin is the reference hash join: it builds an in-memory hash
// table on the right (inner) input and probes it with the left —
// blocks(left) + blocks(right) reads. It is the physical counterpart of
// the HashJoinModel used by the ablation benchmarks; batchHashJoin is the
// vectorized default and must agree with this implementation bit for bit.
func (db *DB) rowHashJoin(j *algebra.Join, left, right *Table, res *Result) (*Table, error) {
	joined := left.Schema.Concat(right.Schema)
	conds, err := resolveJoinConds(j, left, right)
	if err != nil {
		return nil, err
	}

	leftRows := left.materializeRows()
	rightRows := right.materializeRows()

	// Build side: inner rows keyed by their join values.
	build := make(map[string][]int, right.NumRows())
	for ri, rrow := range rightRows {
		var key strings.Builder
		for _, ci := range conds {
			key.WriteString(hashKey(rrow[ci.ri]))
			key.WriteByte('|')
		}
		build[key.String()] = append(build[key.String()], ri)
	}

	out := NewTable("", joined, db.BlockRows)
	for _, lrow := range leftRows {
		var key strings.Builder
		for _, ci := range conds {
			key.WriteString(hashKey(lrow[ci.li]))
			key.WriteByte('|')
		}
		for _, ri := range build[key.String()] {
			rrow := rightRows[ri]
			vals := make([]algebra.Value, 0, len(lrow)+len(rrow))
			vals = append(vals, lrow...)
			vals = append(vals, rrow...)
			if err := out.Insert(vals); err != nil {
				return nil, err
			}
		}
	}
	stats := OpStats{
		Label:     "hash " + j.Label(),
		Reads:     int64(left.NumBlocks()) + int64(right.NumBlocks()),
		Writes:    int64(out.NumBlocks()),
		OutRows:   out.NumRows(),
		OutBlocks: out.NumBlocks(),
	}
	db.account(stats)
	res.Ops = append(res.Ops, stats)
	return out, nil
}

// hashKey normalizes a value for hash-join key comparison consistently
// with Value.Compare's numeric semantics (3 == 3.0 == date(3)).
func hashKey(v algebra.Value) string {
	switch v.Kind {
	case algebra.TypeInt, algebra.TypeDate:
		return fmt.Sprintf("n%d", v.Int)
	case algebra.TypeFloat:
		if v.Float == float64(int64(v.Float)) {
			return fmt.Sprintf("n%d", int64(v.Float))
		}
		return fmt.Sprintf("f%g", v.Float)
	default:
		return "s" + v.Str
	}
}
