package engine

import (
	"fmt"
	"strings"

	"github.com/warehousekit/mvpp/internal/algebra"
)

// accumulator folds one aggregation's values for one group.
type accumulator struct {
	fn    algebra.AggFunc
	count int64
	sumI  int64
	sumF  float64
	isF   bool
	minV  algebra.Value
	maxV  algebra.Value
}

func (a *accumulator) add(v algebra.Value) error {
	a.count++
	switch a.fn {
	case algebra.AggCount:
		return nil
	case algebra.AggSum, algebra.AggAvg:
		switch v.Kind {
		case algebra.TypeInt, algebra.TypeDate:
			a.sumI += v.Int
			a.sumF += float64(v.Int)
		case algebra.TypeFloat:
			a.isF = true
			a.sumF += v.Float
		default:
			return fmt.Errorf("engine: %s over non-numeric value %s", a.fn, v)
		}
		return nil
	case algebra.AggMin, algebra.AggMax:
		if !a.minV.IsValid() {
			a.minV, a.maxV = v, v
			return nil
		}
		if c, err := v.Compare(a.minV); err != nil {
			return err
		} else if c < 0 {
			a.minV = v
		}
		if c, err := v.Compare(a.maxV); err != nil {
			return err
		} else if c > 0 {
			a.maxV = v
		}
		return nil
	default:
		return fmt.Errorf("engine: unknown aggregate function %v", a.fn)
	}
}

func (a *accumulator) result() algebra.Value {
	switch a.fn {
	case algebra.AggCount:
		return algebra.IntVal(a.count)
	case algebra.AggSum:
		if a.isF {
			return algebra.FloatVal(a.sumF)
		}
		return algebra.IntVal(a.sumI)
	case algebra.AggAvg:
		if a.count == 0 {
			return algebra.FloatVal(0)
		}
		return algebra.FloatVal(a.sumF / float64(a.count))
	case algebra.AggMin:
		return a.minV
	case algebra.AggMax:
		return a.maxV
	default:
		return algebra.Value{}
	}
}

// resolveAggregate resolves an aggregation's group-by and argument
// columns against the input schema (argIdx -1 marks COUNT(*)).
func resolveAggregate(agg *algebra.Aggregate, in *Table) (groupIdx, argIdx []int, err error) {
	groupIdx = make([]int, len(agg.GroupBy))
	for i, ref := range agg.GroupBy {
		j, err := in.Schema.Resolve(ref)
		if err != nil {
			return nil, nil, fmt.Errorf("engine: GROUP BY: %w", err)
		}
		groupIdx[i] = j
	}
	argIdx = make([]int, len(agg.Aggs))
	for i, a := range agg.Aggs {
		if a.Arg == (algebra.ColumnRef{}) {
			argIdx[i] = -1 // COUNT(*)
			continue
		}
		j, err := in.Schema.Resolve(a.Arg)
		if err != nil {
			return nil, nil, fmt.Errorf("engine: aggregate %s: %w", a.Func, err)
		}
		argIdx[i] = j
	}
	return groupIdx, argIdx, nil
}

// rowAggregate is the reference hash aggregation: one pass over the
// input, one accumulator row per group, groups emitted in first-seen
// order.
func (db *DB) rowAggregate(agg *algebra.Aggregate, in *Table, res *Result) (*Table, error) {
	groupIdx, argIdx, err := resolveAggregate(agg, in)
	if err != nil {
		return nil, err
	}

	type group struct {
		keyVals []algebra.Value
		accs    []*accumulator
	}
	byKey := make(map[string]*group)
	var order []*group
	for _, row := range in.materializeRows() {
		var key strings.Builder
		for _, gi := range groupIdx {
			key.WriteString(row[gi].String())
			key.WriteByte('|')
		}
		g, ok := byKey[key.String()]
		if !ok {
			g = &group{keyVals: make([]algebra.Value, len(groupIdx)), accs: make([]*accumulator, len(agg.Aggs))}
			for i, gi := range groupIdx {
				g.keyVals[i] = row[gi]
			}
			for i, a := range agg.Aggs {
				g.accs[i] = &accumulator{fn: a.Func}
			}
			byKey[key.String()] = g
			order = append(order, g)
		}
		for i := range agg.Aggs {
			if argIdx[i] < 0 {
				g.accs[i].count++
				continue
			}
			if err := g.accs[i].add(row[argIdx[i]]); err != nil {
				return nil, err
			}
		}
	}

	out := NewTable("", agg.Schema(), db.BlockRows)
	for _, g := range order {
		row := make([]algebra.Value, 0, len(g.keyVals)+len(g.accs))
		row = append(row, g.keyVals...)
		for _, acc := range g.accs {
			row = append(row, acc.result())
		}
		if err := out.Insert(row); err != nil {
			return nil, err
		}
	}
	stats := OpStats{
		Label:     agg.Label(),
		Reads:     int64(in.NumBlocks()),
		Writes:    int64(out.NumBlocks()),
		OutRows:   out.NumRows(),
		OutBlocks: out.NumBlocks(),
	}
	db.account(stats)
	res.Ops = append(res.Ops, stats)
	return out, nil
}
