package engine

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/warehousekit/mvpp/internal/algebra"
)

func journalRow(vals ...int64) []algebra.Value {
	out := make([]algebra.Value, len(vals))
	for i, v := range vals {
		out[i] = algebra.IntVal(v)
	}
	return out
}

func TestMemJournalAppendCommitPending(t *testing.T) {
	j := NewMemJournal()
	lsn1, err := j.Append("sales", [][]algebra.Value{journalRow(1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	lsn2, err := j.Append("customer", [][]algebra.Value{journalRow(3, 4), journalRow(5, 6)})
	if err != nil {
		t.Fatal(err)
	}
	if lsn1 != 1 || lsn2 != 2 {
		t.Fatalf("LSNs = %d, %d; want 1, 2", lsn1, lsn2)
	}
	pend, _ := j.Pending()
	if len(pend) != 2 {
		t.Fatalf("pending = %d records, want 2", len(pend))
	}
	if err := j.Commit(lsn1); err != nil {
		t.Fatal(err)
	}
	pend, _ = j.Pending()
	if len(pend) != 1 || pend[0].LSN != lsn2 || pend[0].Table != "customer" {
		t.Fatalf("after commit(1): pending = %+v, want only LSN 2", pend)
	}
	if err := j.Commit(lsn2); err != nil {
		t.Fatal(err)
	}
	if pend, _ := j.Pending(); len(pend) != 0 {
		t.Fatalf("after commit(2): pending = %+v, want empty", pend)
	}
}

func TestFileJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "deltas.wal")
	j, err := OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]algebra.Value{
		{algebra.IntVal(7), algebra.FloatVal(1.5), algebra.StringVal("LA"), algebra.DateVal(20260101)},
	}
	if _, err := j.Append("sales", rows); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append("customer", [][]algebra.Value{journalRow(9)}); err != nil {
		t.Fatal(err)
	}
	if err := j.Commit(1); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: only the uncommitted record survives, values intact.
	j2, err := OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	pend, err := j2.Pending()
	if err != nil {
		t.Fatal(err)
	}
	if len(pend) != 1 || pend[0].LSN != 2 || pend[0].Table != "customer" {
		t.Fatalf("pending after reopen = %+v, want only LSN 2 (customer)", pend)
	}
	if got := pend[0].Rows[0][0]; !got.Equal(algebra.IntVal(9)) {
		t.Fatalf("replayed value = %v, want 9", got)
	}
	// LSNs continue past the highest journaled record.
	lsn, err := j2.Append("sales", rows)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 3 {
		t.Fatalf("LSN after reopen = %d, want 3", lsn)
	}
}

func TestFileJournalValueFidelity(t *testing.T) {
	path := filepath.Join(t.TempDir(), "deltas.wal")
	j, err := OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []algebra.Value{
		algebra.IntVal(-42),
		algebra.FloatVal(3.25),
		algebra.StringVal("São Paulo"),
		algebra.DateVal(20251231),
	}
	if _, err := j.Append("t", [][]algebra.Value{want}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, err := OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	pend, _ := j2.Pending()
	if len(pend) != 1 {
		t.Fatalf("pending = %d records, want 1", len(pend))
	}
	got := pend[0].Rows[0]
	if len(got) != len(want) {
		t.Fatalf("row width = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Kind != want[i].Kind || !got[i].Equal(want[i]) {
			t.Fatalf("col %d: got %#v, want %#v", i, got[i], want[i])
		}
	}
}

func TestFileJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "deltas.wal")
	j, err := OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append("sales", [][]algebra.Value{journalRow(1)}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Simulate a crash mid-append: a truncated, unparseable final line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"d","lsn":2,"table":"sal`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenFileJournal(path)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	pend, _ := j2.Pending()
	if len(pend) != 1 || pend[0].LSN != 1 {
		t.Fatalf("pending = %+v, want only the intact LSN 1", pend)
	}
	// The torn bytes were truncated away: a new append lands on a clean
	// tail and survives another reopen.
	if lsn, err := j2.Append("sales", [][]algebra.Value{journalRow(2)}); err != nil || lsn != 2 {
		t.Fatalf("append after torn-tail recovery: lsn=%d err=%v", lsn, err)
	}
	j2.Close()
	j3, err := OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	pend, _ = j3.Pending()
	if len(pend) != 2 {
		t.Fatalf("pending after recovery append = %d records, want 2", len(pend))
	}
}
