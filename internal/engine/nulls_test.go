package engine_test

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/engine"
)

// Null-bitmap and batch-shape edge cases. The row engine never had these
// shapes as first-class states — a null was just a zero Value in a row
// slice — so every case here runs both executors and requires identical
// behavior, then pins the behavior itself.

// nullsSchema is a two-column scratch schema: an int key and a payload.
func nullsSchema(payloadType algebra.Type) *algebra.Schema {
	return algebra.NewSchema(
		algebra.Column{Relation: "T", Name: "k", Type: algebra.TypeInt},
		algebra.Column{Relation: "T", Name: "v", Type: payloadType},
	)
}

// dualScratch builds one table of the given rows in a batch DB and a row
// DB.
func dualScratch(t *testing.T, blockRows int, schema *algebra.Schema, rows [][]algebra.Value) (bdb, rdb *engine.DB) {
	t.Helper()
	for _, mode := range []engine.ExecMode{engine.ExecBatch, engine.ExecRow} {
		db := engine.NewDB(blockRows)
		tab, err := db.CreateTable("T", schema)
		if err != nil {
			t.Fatal(err)
		}
		if err := tab.Insert(rows...); err != nil {
			t.Fatal(err)
		}
		db.SetExecMode(mode)
		if mode == engine.ExecBatch {
			bdb = db
		} else {
			rdb = db
		}
	}
	return bdb, rdb
}

// runBoth executes the same plan on both databases and requires
// identical outcomes — same error text or same ordered rows and stats.
func runBoth(t *testing.T, label string, bdb, rdb *engine.DB, plan algebra.Node) (*engine.Result, *engine.Result) {
	t.Helper()
	bres, berr := bdb.Execute(plan)
	rres, rerr := rdb.Execute(plan)
	if (berr == nil) != (rerr == nil) || (berr != nil && berr.Error() != rerr.Error()) {
		t.Fatalf("%s: executor errors diverge\nbatch: %v\nrow:   %v", label, berr, rerr)
	}
	if berr != nil {
		return nil, nil
	}
	assertResultsIdentical(t, label, bres, rres)
	return bres, rres
}

// TestAllNullColumnParity drives an entirely-null payload column through
// select, project, join, and every aggregate, asserting both executors
// agree; nulls never satisfy a comparison, never match a join key, and
// poison SUM/AVG/MIN identically.
func TestAllNullColumnParity(t *testing.T) {
	schema := nullsSchema(algebra.TypeInt)
	rows := make([][]algebra.Value, 13)
	for i := range rows {
		rows[i] = []algebra.Value{algebra.IntVal(int64(i % 3)), {}}
	}
	bdb, rdb := dualScratch(t, 4, schema, rows)
	scan := func(db *engine.DB) algebra.Node {
		tab, err := db.Table("T")
		if err != nil {
			t.Fatal(err)
		}
		return algebra.NewScan("T", tab.Schema)
	}

	// Comparisons against a null lane are evaluation errors in both modes.
	sel := algebra.NewSelect(scan(bdb),
		algebra.Compare(algebra.ColOperand(algebra.Ref("T", "v")), algebra.OpGt,
			algebra.LitOperand(algebra.IntVal(0))))
	if _, err := bdb.Execute(sel); err == nil {
		t.Fatal("expected comparison against an all-null column to fail")
	}
	runBoth(t, "select over all-null column", bdb, rdb, sel)

	// Projection carries nulls through untouched.
	proj := algebra.NewProject(scan(bdb), []algebra.ColumnRef{algebra.Ref("T", "v")})
	bres, _ := runBoth(t, "project all-null column", bdb, rdb, proj)
	if got := bres.Table.Row(0).Values[0]; got.IsValid() {
		t.Fatalf("projected null became %v", got)
	}

	// A self-join keyed on the null column. The two algorithms have always
	// disagreed on null semantics: nested-loop matches via Value.Equal
	// (false on comparison errors, so nulls match nothing), while the hash
	// join keys by hashKey, which folds every invalid value into one "s"
	// class — so under hashing all nulls match each other. The batch
	// executor must replicate both behaviors exactly.
	join := algebra.NewJoin(scan(bdb), scan(bdb),
		[]algebra.JoinCond{{Left: algebra.Ref("T", "v"), Right: algebra.Ref("T", "v")}})
	for _, c := range []struct {
		algo engine.JoinAlgorithm
		want int
	}{
		{engine.JoinNestedLoop, 0},
		{engine.JoinHash, 13 * 13},
	} {
		bdb.SetJoinAlgorithm(c.algo)
		rdb.SetJoinAlgorithm(c.algo)
		bres, _ := runBoth(t, fmt.Sprintf("null-key join algo=%d", c.algo), bdb, rdb, join)
		if bres.Table.NumRows() != c.want {
			t.Fatalf("join on all-null key (algo=%d) matched %d rows, want %d",
				c.algo, bres.Table.NumRows(), c.want)
		}
	}
	bdb.SetJoinAlgorithm(engine.JoinNestedLoop)
	rdb.SetJoinAlgorithm(engine.JoinNestedLoop)

	// COUNT counts null rows; SUM and AVG over nulls fail; grouping BY the
	// null column groups all nulls together. All identical across modes.
	for _, c := range []struct {
		name string
		fn   algebra.AggFunc
		arg  algebra.ColumnRef
	}{
		{"count-star", algebra.AggCount, algebra.ColumnRef{}},
		{"count-col", algebra.AggCount, algebra.Ref("T", "v")},
		{"sum", algebra.AggSum, algebra.Ref("T", "v")},
		{"avg", algebra.AggAvg, algebra.Ref("T", "v")},
		{"min", algebra.AggMin, algebra.Ref("T", "v")},
	} {
		agg := algebra.NewAggregate(scan(bdb),
			[]algebra.ColumnRef{algebra.Ref("T", "k")},
			[]algebra.Aggregation{{Func: c.fn, Arg: c.arg, Alias: "a"}})
		runBoth(t, "aggregate "+c.name, bdb, rdb, agg)
	}
	nullGroup := algebra.NewAggregate(scan(bdb),
		[]algebra.ColumnRef{algebra.Ref("T", "v")},
		[]algebra.Aggregation{{Func: algebra.AggCount, Alias: "n"}})
	bres, _ = runBoth(t, "group by all-null column", bdb, rdb, nullGroup)
	if bres.Table.NumRows() != 1 {
		t.Fatalf("grouping by an all-null column built %d groups, want 1", bres.Table.NumRows())
	}
	if got := bres.Table.Row(0).Values[1]; got != algebra.IntVal(13) {
		t.Fatalf("null group counted %s, want 13", got)
	}
}

// TestMixedNullColumnParity interleaves nulls with typed values — the
// shape that forces the batch executor off its typed fast paths lane by
// lane — and checks select/join/aggregate parity plus the values
// themselves.
func TestMixedNullColumnParity(t *testing.T) {
	schema := nullsSchema(algebra.TypeInt)
	var rows [][]algebra.Value
	for i := 0; i < 23; i++ {
		v := algebra.Value{}
		if i%3 != 0 {
			v = algebra.IntVal(int64(i * 10))
		}
		rows = append(rows, []algebra.Value{algebra.IntVal(int64(i % 4)), v})
	}
	bdb, rdb := dualScratch(t, 4, schema, rows)
	tab, err := bdb.Table("T")
	if err != nil {
		t.Fatal(err)
	}
	scan := algebra.NewScan("T", tab.Schema)

	// Equality against a literal: null lanes error out of the comparison,
	// identically in both modes (the row engine hits the error on the
	// first null row).
	sel := algebra.NewSelect(scan,
		algebra.Compare(algebra.ColOperand(algebra.Ref("T", "v")), algebra.OpGe,
			algebra.LitOperand(algebra.IntVal(0))))
	runBoth(t, "select over mixed nulls", bdb, rdb, sel)

	// Joining on the mixed column. Valid values are all distinct, so they
	// contribute exactly the diagonal; null rows match nothing under
	// nested-loop but all pair up under hashing (every invalid value hashes
	// to the single "s" key class — the row engine's long-standing
	// behavior, which the batch executor replicates).
	valid, nulls := 0, 0
	for i := 0; i < 23; i++ {
		if i%3 != 0 {
			valid++
		} else {
			nulls++
		}
	}
	join := algebra.NewJoin(algebra.Clone(scan), algebra.Clone(scan),
		[]algebra.JoinCond{{Left: algebra.Ref("T", "v"), Right: algebra.Ref("T", "v")}})
	for _, c := range []struct {
		algo engine.JoinAlgorithm
		want int
	}{
		{engine.JoinNestedLoop, valid},
		{engine.JoinHash, valid + nulls*nulls},
	} {
		bdb.SetJoinAlgorithm(c.algo)
		rdb.SetJoinAlgorithm(c.algo)
		bres, _ := runBoth(t, fmt.Sprintf("mixed-null join algo=%d", c.algo), bdb, rdb, join)
		if bres.Table.NumRows() != c.want {
			t.Fatalf("mixed-null self-join (algo=%d) matched %d rows, want %d",
				c.algo, bres.Table.NumRows(), c.want)
		}
	}
	bdb.SetJoinAlgorithm(engine.JoinNestedLoop)
	rdb.SetJoinAlgorithm(engine.JoinNestedLoop)

	// COUNT per group counts null rows too; MIN errors when a null follows
	// a valid value — identically.
	count := algebra.NewAggregate(algebra.Clone(scan),
		[]algebra.ColumnRef{algebra.Ref("T", "k")},
		[]algebra.Aggregation{{Func: algebra.AggCount, Arg: algebra.Ref("T", "v"), Alias: "n"}})
	runBoth(t, "count over mixed nulls", bdb, rdb, count)
	min := algebra.NewAggregate(algebra.Clone(scan),
		[]algebra.ColumnRef{algebra.Ref("T", "k")},
		[]algebra.Aggregation{{Func: algebra.AggMin, Arg: algebra.Ref("T", "v"), Alias: "m"}})
	runBoth(t, "min over mixed nulls", bdb, rdb, min)
}

// TestEmptyBatchParity drives zero-row tables through every operator in
// both modes: empty in, empty out, zero write blocks, no spurious groups.
func TestEmptyBatchParity(t *testing.T) {
	schema := nullsSchema(algebra.TypeString)
	bdb, rdb := dualScratch(t, 4, schema, nil)
	tab, err := bdb.Table("T")
	if err != nil {
		t.Fatal(err)
	}
	scan := algebra.NewScan("T", tab.Schema)

	sel := algebra.NewSelect(scan,
		algebra.Eq(algebra.Ref("T", "v"), algebra.StringVal("x")))
	bres, _ := runBoth(t, "select on empty", bdb, rdb, sel)
	if bres.Table.NumRows() != 0 || bres.Ops[0].Writes != 0 {
		t.Fatalf("empty select produced rows=%d writes=%d", bres.Table.NumRows(), bres.Ops[0].Writes)
	}
	proj := algebra.NewProject(algebra.Clone(scan), []algebra.ColumnRef{algebra.Ref("T", "v")})
	runBoth(t, "project on empty", bdb, rdb, proj)
	join := algebra.NewJoin(algebra.Clone(scan), algebra.Clone(scan),
		[]algebra.JoinCond{{Left: algebra.Ref("T", "k"), Right: algebra.Ref("T", "k")}})
	for _, algo := range []engine.JoinAlgorithm{engine.JoinNestedLoop, engine.JoinHash} {
		bdb.SetJoinAlgorithm(algo)
		rdb.SetJoinAlgorithm(algo)
		runBoth(t, fmt.Sprintf("join on empty algo=%d", algo), bdb, rdb, join)
	}
	agg := algebra.NewAggregate(algebra.Clone(scan), nil,
		[]algebra.Aggregation{{Func: algebra.AggCount, Alias: "n"}})
	bres, _ = runBoth(t, "global aggregate on empty", bdb, rdb, agg)
	if bres.Table.NumRows() != 0 {
		t.Fatalf("global aggregate over zero rows emitted %d rows, want 0 (no input groups)", bres.Table.NumRows())
	}
}

// TestBatchBoundaryDeltasParity exercises delta batches whose sizes land
// exactly on, one under, and one over the block boundary, including an
// empty refresh (no pending deltas) and null-bearing delta rows. Both
// executors must agree on every refresh result and the final view.
func TestBatchBoundaryDeltasParity(t *testing.T) {
	const blockRows = 4
	schema := nullsSchema(algebra.TypeInt)
	seed := make([][]algebra.Value, blockRows) // exactly one full block
	for i := range seed {
		seed[i] = []algebra.Value{algebra.IntVal(int64(i)), algebra.IntVal(int64(100 + i))}
	}
	bdb, rdb := dualScratch(t, blockRows, schema, seed)
	for _, db := range []*engine.DB{bdb, rdb} {
		tab, err := db.Table("T")
		if err != nil {
			t.Fatal(err)
		}
		plan := algebra.NewSelect(algebra.NewScan("T", tab.Schema),
			algebra.Compare(algebra.ColOperand(algebra.Ref("T", "k")), algebra.OpGe,
				algebra.LitOperand(algebra.IntVal(0))))
		if _, err := db.Materialize("mv", plan); err != nil {
			t.Fatal(err)
		}
	}

	refreshBoth := func(label string) {
		t.Helper()
		bres, berr := bdb.IncrementalRefresh("mv")
		rres, rerr := rdb.IncrementalRefresh("mv")
		if (berr == nil) != (rerr == nil) {
			t.Fatalf("%s: refresh errors diverge: %v vs %v", label, berr, rerr)
		}
		if berr == nil {
			assertResultsIdentical(t, label, bres, rres)
		}
	}

	// No pending deltas at all: an empty refresh.
	refreshBoth("empty refresh")

	// Delta sizes straddling the block boundary: blockRows-1, blockRows,
	// blockRows+1, and a lone row — applying each immediately.
	for _, n := range []int{blockRows - 1, blockRows, blockRows + 1, 1} {
		rows := make([][]algebra.Value, n)
		for i := range rows {
			v := algebra.IntVal(int64(1000*n + i))
			if i == 0 && n == blockRows {
				v = algebra.Value{} // null landing exactly on a block boundary
			}
			rows[i] = []algebra.Value{algebra.IntVal(int64(n)), v}
		}
		for _, db := range []*engine.DB{bdb, rdb} {
			if err := db.InsertDelta("T", rows...); err != nil {
				t.Fatal(err)
			}
		}
		refreshBoth(fmt.Sprintf("delta of %d rows", n))
		if err := bdb.ApplyDeltas(); err != nil {
			t.Fatal(err)
		}
		if err := rdb.ApplyDeltas(); err != nil {
			t.Fatal(err)
		}
		assertTablesIdentical(t, fmt.Sprintf("after %d-row delta", n), bdb, rdb, "T")
	}

	bv, err := bdb.View("mv")
	if err != nil {
		t.Fatal(err)
	}
	rv, err := rdb.View("mv")
	if err != nil {
		t.Fatal(err)
	}
	b, r := orderedRows(bv.Table()), orderedRows(rv.Table())
	if strings.Join(b, "\n") != strings.Join(r, "\n") {
		t.Fatalf("maintained views diverge:\nbatch:\n%s\nrow:\n%s",
			strings.Join(b, "\n"), strings.Join(r, "\n"))
	}
	// 4 seed rows + (3+4+5+1) delta rows, all satisfying k >= 0.
	if len(b) != 17 {
		t.Fatalf("maintained view has %d rows, want 17", len(b))
	}
}

// TestFloatJoinSpecialValuesParity pins join matching on NaN, infinities,
// and signed zero. Value.Compare reports cmp 0 when either side is NaN —
// both orderings fail — so under nested loop a NaN key matches *every*
// row, while the hash join folds every NaN into the single "fNaN" class,
// so there NaN matches only NaN. Signed zeros compare equal everywhere.
// The batch executor (including its equality-index fast path, which must
// refuse NaN-bearing columns) has to replicate each algorithm exactly.
func TestFloatJoinSpecialValuesParity(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	mkRows := func(vals ...float64) [][]algebra.Value {
		rows := make([][]algebra.Value, len(vals))
		for i, f := range vals {
			rows[i] = []algebra.Value{algebra.IntVal(int64(i)), algebra.FloatVal(f)}
		}
		return rows
	}
	for _, tc := range []struct {
		name     string
		vals     []float64
		wantNLJ  int
		wantHash int
	}{
		{
			// 5 non-NaN rows: 1.5 pairs 2*2, Inf, -Inf, 2.5 each 1 -> 7
			// matches; every pair touching a NaN row matches under nested
			// loop (49 total - 25 NaN-free = 24). Hash: NaN class 2*2 plus
			// the 7 exact classes.
			name:     "nan and infinities",
			vals:     []float64{1.5, nan, inf, -inf, 2.5, nan, 1.5},
			wantNLJ:  7 + 24,
			wantHash: 4 + 7,
		},
		{
			// ±0.0 compare equal and hash into the same whole-float class,
			// so both algorithms agree: a 2x2 zero block plus 1.0.
			name:     "signed zero",
			vals:     []float64{0, math.Copysign(0, -1), 1},
			wantNLJ:  5,
			wantHash: 5,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			schema := nullsSchema(algebra.TypeFloat)
			bdb, rdb := dualScratch(t, 3, schema, mkRows(tc.vals...))
			tab, err := bdb.Table("T")
			if err != nil {
				t.Fatal(err)
			}
			scan := algebra.NewScan("T", tab.Schema)
			join := algebra.NewJoin(scan, scan,
				[]algebra.JoinCond{{Left: algebra.Ref("T", "v"), Right: algebra.Ref("T", "v")}})
			for _, c := range []struct {
				algo engine.JoinAlgorithm
				want int
			}{
				{engine.JoinNestedLoop, tc.wantNLJ},
				{engine.JoinHash, tc.wantHash},
			} {
				bdb.SetJoinAlgorithm(c.algo)
				rdb.SetJoinAlgorithm(c.algo)
				bres, _ := runBoth(t, fmt.Sprintf("%s algo=%d", tc.name, c.algo), bdb, rdb, join)
				if got := bres.Table.NumRows(); got != c.want {
					t.Fatalf("self-join (%s, algo=%d) matched %d rows, want %d",
						tc.name, c.algo, got, c.want)
				}
			}
		})
	}
}
