package engine

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/fault"
)

func lsnsOf(recs []DeltaRecord) []uint64 {
	out := make([]uint64, len(recs))
	for i, r := range recs {
		out[i] = r.LSN
	}
	return out
}

func sameLSNs(got []DeltaRecord, want ...uint64) bool {
	if len(got) != len(want) {
		return false
	}
	for i, r := range got {
		if r.LSN != want[i] {
			return false
		}
	}
	return true
}

func TestMemJournalRecordsSinceAndTruncate(t *testing.T) {
	j := NewMemJournal()
	for i := 0; i < 5; i++ {
		if _, err := j.Append("t", [][]algebra.Value{journalRow(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Commit(3); err != nil {
		t.Fatal(err)
	}
	// Commit retains records: RecordsSince sees the acked prefix too.
	if recs, _ := j.RecordsSince(1); !sameLSNs(recs, 2, 3, 4, 5) {
		t.Fatalf("RecordsSince(1) = %v, want [2 3 4 5]", lsnsOf(recs))
	}
	if err := j.Truncate(3); err != nil {
		t.Fatal(err)
	}
	if recs, _ := j.RecordsSince(0); !sameLSNs(recs, 4, 5) {
		t.Fatalf("after Truncate(3): RecordsSince(0) = %v, want [4 5]", lsnsOf(recs))
	}
	// Sequence numbering continues past the truncation.
	lsn, err := j.Append("t", [][]algebra.Value{journalRow(9)})
	if err != nil || lsn != 6 {
		t.Fatalf("append after truncate: lsn=%d err=%v, want 6", lsn, err)
	}
}

func TestFileJournalTruncateCompacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "deltas.wal")
	j, err := OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := j.Append("t", [][]algebra.Value{journalRow(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Commit(2); err != nil {
		t.Fatal(err)
	}
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Truncate(3); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Errorf("compaction did not shrink the journal: %d -> %d bytes", before.Size(), after.Size())
	}
	if recs, _ := j.RecordsSince(0); !sameLSNs(recs, 4, 5) {
		t.Fatalf("RecordsSince(0) = %v, want [4 5]", lsnsOf(recs))
	}
	// The truncation raised the ack floor to the watermark.
	if recs, _ := j.Pending(); !sameLSNs(recs, 4, 5) {
		t.Fatalf("Pending = %v, want [4 5]", lsnsOf(recs))
	}
	// Appends continue on the compacted file and survive a reopen.
	if lsn, err := j.Append("t", [][]algebra.Value{journalRow(9)}); err != nil || lsn != 6 {
		t.Fatalf("append after truncate: lsn=%d err=%v, want 6", lsn, err)
	}
	j.Close()
	j2, err := OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if recs, _ := j2.RecordsSince(3); !sameLSNs(recs, 4, 5, 6) {
		t.Fatalf("after reopen: RecordsSince(3) = %v, want [4 5 6]", lsnsOf(recs))
	}
}

// TestFileJournalTruncateCrashLosesNothing is the compaction crash
// regression: a truncation that dies before its atomic rename must leave
// the original journal complete — replay after truncate+crash loses no
// record — and the next open sweeps the staged debris.
func TestFileJournalTruncateCrashLosesNothing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "deltas.wal")
	j, err := OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := j.Append("t", [][]algebra.Value{journalRow(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Commit(3); err != nil {
		t.Fatal(err)
	}
	// Crash point: the replacement file is fully staged, the rename never
	// happens.
	j.SetInjector(fault.New(1, fault.Plan{fault.SiteJournalTruncate: {ErrProb: 1}}))
	if err := j.Truncate(3); err == nil {
		t.Fatal("injected truncate crash did not surface")
	}
	if _, err := os.Stat(path + compactSuffix); err != nil {
		t.Fatalf("staged compaction file missing after simulated crash: %v", err)
	}
	// The live journal is untouched: every record is still replayable.
	if recs, _ := j.RecordsSince(0); !sameLSNs(recs, 1, 2, 3, 4, 5, 6) {
		t.Fatalf("RecordsSince(0) after crashed truncate = %v, want all six", lsnsOf(recs))
	}
	j.Close()

	// Restart: the debris is swept, nothing was lost, LSNs continue.
	j2, err := OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if _, err := os.Stat(path + compactSuffix); !os.IsNotExist(err) {
		t.Errorf("stale compaction file not removed on reopen: %v", err)
	}
	if recs, _ := j2.RecordsSince(0); !sameLSNs(recs, 1, 2, 3, 4, 5, 6) {
		t.Fatalf("RecordsSince(0) after restart = %v, want all six", lsnsOf(recs))
	}
	if recs, _ := j2.Pending(); !sameLSNs(recs, 4, 5, 6) {
		t.Fatalf("Pending after restart = %v, want [4 5 6]", lsnsOf(recs))
	}
	// A clean retry now succeeds.
	if err := j2.Truncate(3); err != nil {
		t.Fatal(err)
	}
	if recs, _ := j2.RecordsSince(0); !sameLSNs(recs, 4, 5, 6) {
		t.Fatalf("RecordsSince(0) after retried truncate = %v, want [4 5 6]", lsnsOf(recs))
	}
}

// TestFileJournalTruncateAllPinsLSNSequence: truncating every record leaves
// only the commit mark, and a reopened journal must continue the sequence
// above it — reissuing LSNs below a snapshot watermark would make
// RecordsSince silently skip live deltas.
func TestFileJournalTruncateAllPinsLSNSequence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "deltas.wal")
	j, err := OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := j.Append("t", [][]algebra.Value{journalRow(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Commit(4); err != nil {
		t.Fatal(err)
	}
	if err := j.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if recs, _ := j.RecordsSince(0); len(recs) != 0 {
		t.Fatalf("RecordsSince(0) after full truncate = %v, want empty", lsnsOf(recs))
	}
	j.Close()

	j2, err := OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	lsn, err := j2.Append("t", [][]algebra.Value{journalRow(99)})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 5 {
		t.Fatalf("LSN after full truncate + reopen = %d, want 5 (sequence must not restart)", lsn)
	}
	// The new record is visible past the old watermark — exactly what
	// snapshot recovery will ask for.
	if recs, _ := j2.RecordsSince(4); !sameLSNs(recs, 5) {
		t.Fatalf("RecordsSince(4) = %v, want [5]", lsnsOf(recs))
	}
}
