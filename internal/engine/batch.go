package engine

import (
	"fmt"

	"github.com/warehousekit/mvpp/internal/algebra"
)

// This file holds the vectorized select/project operators and the
// lane-masked predicate kernels they run on. The batch executor is the
// default (ExecMode ExecBatch); its contract, enforced by the
// differential harness, is bit-identical behavior with the row reference
// executor in rowexec.go — same output rows in the same order, same
// per-operator stats, and the same error for the same plan. Errors are the
// subtle part: the row engine evaluates rows in order and stops at the
// first row that fails, with AND/OR short-circuiting within the row. The
// kernels reproduce that by evaluating conjuncts column-at-a-time over an
// active-lane mask and recording the first error per lane; the operator
// then fails with the error of the lowest-indexed failed lane, which is
// exactly the error the row loop would have hit first.

// laneErrs records at most one (the first) evaluation error per row lane.
type laneErrs struct {
	errs map[int]error
}

func (e *laneErrs) set(i int, err error) {
	if e.errs == nil {
		e.errs = make(map[int]error)
	}
	if _, dup := e.errs[i]; !dup {
		e.errs[i] = err
	}
}

func (e *laneErrs) has(i int) bool {
	_, ok := e.errs[i]
	return ok
}

// first returns the error of the lowest-indexed failed lane — the error
// the row-at-a-time loop would have returned.
func (e *laneErrs) first() error {
	if len(e.errs) == 0 {
		return nil
	}
	min := -1
	for i := range e.errs {
		if min < 0 || i < min {
			min = i
		}
	}
	return e.errs[min]
}

// batchSelect filters by a vectorized predicate pass producing a keep
// mask, then compacts every column once. I/O accounting is identical to
// the row executor: every input block is read, every output block
// written.
func (db *DB) batchSelect(sel *algebra.Select, in *Table, res *Result) (*Table, error) {
	n := in.NumRows()
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	mask := make([]bool, n)
	var e laneErrs
	evalPredBatch(sel.Pred, in, active, mask, &e)
	if err := e.first(); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	count := 0
	for _, keep := range mask {
		if keep {
			count++
		}
	}
	out := NewTable("", sel.Schema(), db.BlockRows)
	for ci, c := range in.cols {
		out.cols[ci] = c.compact(mask, count)
	}
	out.nrows = count
	stats := OpStats{
		Label:     sel.Label(),
		Reads:     int64(in.NumBlocks()),
		Writes:    int64(out.NumBlocks()),
		OutRows:   out.NumRows(),
		OutBlocks: out.NumBlocks(),
	}
	db.account(stats)
	res.Ops = append(res.Ops, stats)
	return out, nil
}

// batchProject re-binds whole columns to the output schema — zero copies,
// zero per-row work. Published tables are immutable, so sharing the
// column vectors is safe; only the accounting touches the block counts.
func (db *DB) batchProject(p *algebra.Project, in *Table, res *Result) (*Table, error) {
	outSchema, idx, err := resolveProjection(p, in)
	if err != nil {
		return nil, err
	}
	out := &Table{Name: "", Schema: outSchema, BlockRows: db.BlockRows, nrows: in.nrows}
	out.cols = make([]*colvec, len(idx))
	for i, j := range idx {
		out.cols[i] = in.cols[j]
	}
	stats := OpStats{
		Label:     p.Label(),
		Reads:     int64(in.NumBlocks()),
		Writes:    int64(out.NumBlocks()),
		OutRows:   out.NumRows(),
		OutBlocks: out.NumBlocks(),
	}
	db.account(stats)
	res.Ops = append(res.Ops, stats)
	return out, nil
}

// evalPredBatch evaluates p over the active lanes of tab, writing each
// lane's truth into out and recording per-lane errors in e. Lanes outside
// the active mask (or already failed) are never touched.
func evalPredBatch(p algebra.Predicate, tab *Table, active, out []bool, e *laneErrs) {
	switch v := p.(type) {
	case *algebra.Comparison:
		evalCompareBatch(v, tab, active, out, e)
	case *algebra.And:
		cur := make([]bool, len(active))
		copy(cur, active)
		for i := range cur {
			if cur[i] {
				out[i] = true
			}
		}
		sub := make([]bool, len(active))
		for _, c := range v.Preds {
			for i := range sub {
				sub[i] = false
			}
			evalPredBatch(c, tab, cur, sub, e)
			for i := range cur {
				if !cur[i] {
					continue
				}
				if e.has(i) {
					cur[i] = false
					continue
				}
				if !sub[i] {
					cur[i], out[i] = false, false
				}
			}
		}
	case *algebra.Or:
		cur := make([]bool, len(active))
		copy(cur, active)
		for i := range cur {
			if cur[i] {
				out[i] = false
			}
		}
		sub := make([]bool, len(active))
		for _, c := range v.Preds {
			for i := range sub {
				sub[i] = false
			}
			evalPredBatch(c, tab, cur, sub, e)
			for i := range cur {
				if !cur[i] {
					continue
				}
				if e.has(i) {
					cur[i] = false
					continue
				}
				if sub[i] {
					cur[i], out[i] = false, true
				}
			}
		}
	case *algebra.Not:
		sub := make([]bool, len(active))
		evalPredBatch(v.Pred, tab, active, sub, e)
		for i := range active {
			if active[i] && !e.has(i) {
				out[i] = !sub[i]
			}
		}
	default:
		err := fmt.Errorf("engine: cannot evaluate predicate type %T", p)
		for i := range active {
			if active[i] {
				e.set(i, err)
			}
		}
	}
}

// cmpHolds mirrors algebra.CompareOp.holds over a three-way comparison.
func cmpHolds(op algebra.CompareOp, cmp int) bool {
	switch op {
	case algebra.OpEq:
		return cmp == 0
	case algebra.OpNotEq:
		return cmp != 0
	case algebra.OpLt:
		return cmp < 0
	case algebra.OpLe:
		return cmp <= 0
	case algebra.OpGt:
		return cmp > 0
	case algebra.OpGe:
		return cmp >= 0
	default:
		return false
	}
}

// cmpSide is one resolved comparison operand: either a literal or a
// column of the input table.
type cmpSide struct {
	col *colvec // nil for a literal
	lit algebra.Value
}

// value returns the operand's value for lane i.
func (s cmpSide) value(i int) algebra.Value {
	if s.col == nil {
		return s.lit
	}
	return s.col.valueAt(i)
}

// numericSide reports whether the operand is numeric on every lane
// (numeric literal, or a typed non-null int/float/date column) and can
// feed the float64 fast kernel.
func (s cmpSide) numericSide() bool {
	if s.col == nil {
		switch s.lit.Kind {
		case algebra.TypeInt, algebra.TypeFloat, algebra.TypeDate:
			return true
		}
		return false
	}
	if s.col.hasNulls() {
		return false
	}
	switch s.col.typedKind() {
	case algebra.TypeInt, algebra.TypeFloat, algebra.TypeDate:
		return true
	}
	return false
}

// stringSide reports whether the operand is a string on every lane.
func (s cmpSide) stringSide() bool {
	if s.col == nil {
		return s.lit.Kind == algebra.TypeString
	}
	return !s.col.hasNulls() && s.col.typedKind() == algebra.TypeString
}

// num returns the operand's float64 image for lane i (numeric sides
// only). Ints and dates convert through float64 exactly as Value.Compare
// does, so comparisons agree with the row engine bit for bit.
func (s cmpSide) num(i int) float64 {
	if s.col == nil {
		if s.lit.Kind == algebra.TypeFloat {
			return s.lit.Float
		}
		return float64(s.lit.Int)
	}
	switch s.col.kind {
	case algebra.TypeFloat:
		return s.col.floats[i]
	default:
		return float64(s.col.ints[i])
	}
}

// str returns the operand's string for lane i (string sides only).
func (s cmpSide) str(i int) string {
	if s.col == nil {
		return s.lit.Str
	}
	return s.col.strs[i]
}

// evalCompareBatch evaluates one comparison over the active lanes.
func evalCompareBatch(c *algebra.Comparison, tab *Table, active, out []bool, e *laneErrs) {
	left, ok := resolveSide(c.Left, tab, active, e)
	if !ok {
		return
	}
	right, ok := resolveSide(c.Right, tab, active, e)
	if !ok {
		return
	}
	switch {
	case left.numericSide() && right.numericSide():
		for i := range active {
			if !active[i] || e.has(i) {
				continue
			}
			a, b := left.num(i), right.num(i)
			cmp := 0
			if a < b {
				cmp = -1
			} else if a > b {
				cmp = 1
			}
			out[i] = cmpHolds(c.Op, cmp)
		}
	case left.stringSide() && right.stringSide():
		for i := range active {
			if !active[i] || e.has(i) {
				continue
			}
			a, b := left.str(i), right.str(i)
			cmp := 0
			if a < b {
				cmp = -1
			} else if a > b {
				cmp = 1
			}
			out[i] = cmpHolds(c.Op, cmp)
		}
	default:
		// Mixed, null-bearing, or generic lanes: evaluate value-at-a-time,
		// wrapping comparison errors exactly as Comparison.Eval does.
		for i := range active {
			if !active[i] || e.has(i) {
				continue
			}
			cmp, err := left.value(i).Compare(right.value(i))
			if err != nil {
				e.set(i, fmt.Errorf("algebra: evaluating %s: %w", c, err))
				continue
			}
			out[i] = cmpHolds(c.Op, cmp)
		}
	}
}

// resolveSide binds one comparison operand against the table. An unbound
// column reference fails every active lane with the same error the
// row-at-a-time Operand.eval produces, and reports !ok so the caller
// skips the right operand, mirroring the row engine's left-then-right
// evaluation order.
func resolveSide(o algebra.Operand, tab *Table, active []bool, e *laneErrs) (cmpSide, bool) {
	if !o.IsColumn {
		return cmpSide{lit: o.Lit}, true
	}
	// Predicates resolve through Binding.ColumnValue, which uses the
	// first-match IndexOf rule, not the ambiguity-checking Resolve.
	idx := tab.Schema.IndexOf(o.Col)
	if idx < 0 {
		err := fmt.Errorf("algebra: unbound column %s", o.Col)
		for i := range active {
			if active[i] {
				e.set(i, err)
			}
		}
		return cmpSide{}, false
	}
	return cmpSide{col: tab.cols[idx]}, true
}
