package engine_test

import (
	"strings"
	"testing"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/datagen"
	"github.com/warehousekit/mvpp/internal/engine"
)

func smallPaperDB(t *testing.T) *engine.DB {
	t.Helper()
	db, err := datagen.PaperDB(10, 0.01, 42)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func q1Plan(t *testing.T, db *engine.DB) algebra.Node {
	t.Helper()
	pd, err := db.Table("Product")
	if err != nil {
		t.Fatal(err)
	}
	div, err := db.Table("Division")
	if err != nil {
		t.Fatal(err)
	}
	sel := algebra.NewSelect(algebra.NewScan("Division", div.Schema),
		algebra.Eq(algebra.Ref("Division", "city"), algebra.StringVal("LA")))
	join := algebra.NewJoin(algebra.NewScan("Product", pd.Schema), sel,
		[]algebra.JoinCond{{Left: algebra.Ref("Product", "Did"), Right: algebra.Ref("Division", "Did")}})
	return algebra.NewProject(join, []algebra.ColumnRef{algebra.Ref("Product", "name")})
}

func TestTableBasics(t *testing.T) {
	schema := algebra.NewSchema(
		algebra.Column{Relation: "R", Name: "a", Type: algebra.TypeInt},
		algebra.Column{Relation: "R", Name: "b", Type: algebra.TypeString},
	)
	tb := engine.NewTable("R", schema, 4)
	if err := tb.Insert([]algebra.Value{algebra.IntVal(1), algebra.StringVal("x")}); err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert([]algebra.Value{algebra.IntVal(1)}); err == nil {
		t.Error("short row accepted")
	}
	for i := 0; i < 8; i++ {
		if err := tb.Insert([]algebra.Value{algebra.IntVal(int64(i)), algebra.StringVal("y")}); err != nil {
			t.Fatal(err)
		}
	}
	if tb.NumRows() != 9 {
		t.Errorf("rows = %d", tb.NumRows())
	}
	if tb.NumBlocks() != 3 { // ceil(9/4)
		t.Errorf("blocks = %d, want 3", tb.NumBlocks())
	}
}

func TestDBTableManagement(t *testing.T) {
	db := engine.NewDB(10)
	schema := algebra.NewSchema(algebra.Column{Relation: "R", Name: "a", Type: algebra.TypeInt})
	if _, err := db.CreateTable("R", schema); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("R", schema); err == nil {
		t.Error("duplicate table accepted")
	}
	if _, err := db.Table("missing"); err == nil {
		t.Error("missing table lookup succeeded")
	}
	if got := db.Tables(); len(got) != 1 || got[0] != "R" {
		t.Errorf("Tables = %v", got)
	}
}

func TestExecuteSelectCorrectness(t *testing.T) {
	db := smallPaperDB(t)
	div, _ := db.Table("Division")
	plan := algebra.NewSelect(algebra.NewScan("Division", div.Schema),
		algebra.Eq(algebra.Ref("Division", "city"), algebra.StringVal("LA")))
	res, err := db.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	// Verify against a direct check.
	want := 0
	for i := 0; i < div.NumRows(); i++ {
		v, _ := div.Row(i).ColumnValue(algebra.Ref("Division", "city"))
		if v.Str == "LA" {
			want++
		}
	}
	if res.Table.NumRows() != want {
		t.Errorf("selected %d rows, want %d", res.Table.NumRows(), want)
	}
	// Reads = all input blocks.
	if res.TotalReads() != int64(div.NumBlocks()) {
		t.Errorf("reads = %d, want %d", res.TotalReads(), div.NumBlocks())
	}
}

func TestExecuteJoinMatchesNestedLoopSemantics(t *testing.T) {
	db := smallPaperDB(t)
	res, err := db.Execute(q1Plan(t, db))
	if err != nil {
		t.Fatal(err)
	}
	// Reference: count product rows whose division is in LA.
	pd, _ := db.Table("Product")
	div, _ := db.Table("Division")
	la := map[string]bool{}
	for i := 0; i < div.NumRows(); i++ {
		row := div.Row(i)
		city, _ := row.ColumnValue(algebra.Ref("Division", "city"))
		did, _ := row.ColumnValue(algebra.Ref("Division", "Did"))
		if city.Str == "LA" {
			la[did.String()] = true
		}
	}
	want := 0
	for i := 0; i < pd.NumRows(); i++ {
		did, _ := pd.Row(i).ColumnValue(algebra.Ref("Product", "Did"))
		if la[did.String()] {
			want++
		}
	}
	if res.Table.NumRows() != want {
		t.Errorf("join produced %d rows, want %d", res.Table.NumRows(), want)
	}
	if got := res.Table.Schema.Len(); got != 1 {
		t.Errorf("projected schema width = %d", got)
	}
}

// TestJoinBlockAccountingMatchesModel verifies the engine's counted reads
// equal the block nested-loop formula blocks(outer) +
// blocks(outer)·blocks(inner) exactly.
func TestJoinBlockAccountingMatchesModel(t *testing.T) {
	db := smallPaperDB(t)
	ord, _ := db.Table("Order")
	cust, _ := db.Table("Customer")
	join := algebra.NewJoin(
		algebra.NewScan("Order", ord.Schema),
		algebra.NewScan("Customer", cust.Schema),
		[]algebra.JoinCond{{Left: algebra.Ref("Order", "Cid"), Right: algebra.Ref("Customer", "Cid")}})
	res, err := db.Execute(join)
	if err != nil {
		t.Fatal(err)
	}
	bo, bi := int64(ord.NumBlocks()), int64(cust.NumBlocks())
	if len(res.Ops) != 1 {
		t.Fatalf("ops = %d", len(res.Ops))
	}
	if res.Ops[0].Reads != bo+bo*bi {
		t.Errorf("join reads = %d, want %d", res.Ops[0].Reads, bo+bo*bi)
	}
	if res.Ops[0].Writes != int64(res.Table.NumBlocks()) {
		t.Errorf("join writes = %d, want %d", res.Ops[0].Writes, res.Table.NumBlocks())
	}
}

// TestAnalyticCostTracksMeasuredIO is the cost-model validation: with a
// catalog derived from the actual data, the BlockNLJ analytic plan cost
// must be within a small factor of the engine's measured I/O.
func TestAnalyticCostTracksMeasuredIO(t *testing.T) {
	db := smallPaperDB(t)
	cat, err := db.CatalogFor()
	if err != nil {
		t.Fatal(err)
	}
	plan := q1Plan(t, db)
	res, err := db.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	measured := float64(res.TotalReads() + res.TotalWrites())

	est := newEstimator(cat)
	analytic, err := est.planCost(plan)
	if err != nil {
		t.Fatal(err)
	}
	ratio := analytic / measured
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("analytic %v vs measured %v (ratio %.2f) — model diverges", analytic, measured, ratio)
	}
}

func TestMaterializeAndRewrite(t *testing.T) {
	db := smallPaperDB(t)
	pd, _ := db.Table("Product")
	div, _ := db.Table("Division")
	sel := algebra.NewSelect(algebra.NewScan("Division", div.Schema),
		algebra.Eq(algebra.Ref("Division", "city"), algebra.StringVal("LA")))
	tmp2 := algebra.NewJoin(algebra.NewScan("Product", pd.Schema), sel,
		[]algebra.JoinCond{{Left: algebra.Ref("Product", "Did"), Right: algebra.Ref("Division", "Did")}})

	if _, err := db.Materialize("tmp2", tmp2); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Materialize("tmp2", tmp2); err == nil {
		t.Error("duplicate view accepted")
	}

	q1 := algebra.NewProject(tmp2, []algebra.ColumnRef{algebra.Ref("Product", "name")})
	rewritten := db.RewriteWithViews(q1)
	// The join subtree must have been replaced by a view scan.
	joins := 0
	algebra.Walk(rewritten, func(n algebra.Node) {
		if _, ok := n.(*algebra.Join); ok {
			joins++
		}
	})
	if joins != 0 {
		t.Errorf("rewritten plan still contains %d joins:\n%s", joins, rewritten.Canonical())
	}

	// Running the rewritten plan gives the same rows much cheaper.
	direct, err := db.Execute(q1)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := db.Execute(rewritten)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Table.NumRows() != fast.Table.NumRows() {
		t.Errorf("rows differ: direct %d vs rewritten %d", direct.Table.NumRows(), fast.Table.NumRows())
	}
	if fast.TotalReads() >= direct.TotalReads() {
		t.Errorf("rewritten reads %d not below direct %d", fast.TotalReads(), direct.TotalReads())
	}
}

func TestRefreshRecomputes(t *testing.T) {
	db := smallPaperDB(t)
	div, _ := db.Table("Division")
	sel := algebra.NewSelect(algebra.NewScan("Division", div.Schema),
		algebra.Eq(algebra.Ref("Division", "city"), algebra.StringVal("LA")))
	if _, err := db.Materialize("laDivs", sel); err != nil {
		t.Fatal(err)
	}
	before, _ := db.View("laDivs")
	nBefore := before.Table().NumRows()

	// Mutate the base table: add one more LA division.
	if err := div.Insert([]algebra.Value{
		algebra.IntVal(999999), algebra.StringVal("division-new"), algebra.StringVal("LA"),
	}); err != nil {
		t.Fatal(err)
	}
	res, err := db.Refresh("laDivs")
	if err != nil {
		t.Fatal(err)
	}
	after, _ := db.View("laDivs")
	if after.Table().NumRows() != nBefore+1 {
		t.Errorf("refreshed view has %d rows, want %d", after.Table().NumRows(), nBefore+1)
	}
	if res.TotalReads() == 0 {
		t.Error("refresh reported no I/O")
	}
	if _, err := db.Refresh("ghost"); err == nil {
		t.Error("refresh of unknown view succeeded")
	}
}

func TestRefreshAllAndDrop(t *testing.T) {
	db := smallPaperDB(t)
	div, _ := db.Table("Division")
	a := algebra.NewSelect(algebra.NewScan("Division", div.Schema),
		algebra.Eq(algebra.Ref("Division", "city"), algebra.StringVal("LA")))
	b := algebra.NewSelect(algebra.NewScan("Division", div.Schema),
		algebra.Eq(algebra.Ref("Division", "city"), algebra.StringVal("SF")))
	if _, err := db.Materialize("la", a); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Materialize("sf", b); err != nil {
		t.Fatal(err)
	}
	results, err := db.RefreshAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Errorf("refreshed %d views", len(results))
	}
	if err := db.DropView("la"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropView("la"); err == nil {
		t.Error("double drop succeeded")
	}
	if got := db.Views(); len(got) != 1 || got[0] != "sf" {
		t.Errorf("Views = %v", got)
	}
}

func TestCounterAccumulates(t *testing.T) {
	db := smallPaperDB(t)
	db.Counter.Reset()
	div, _ := db.Table("Division")
	plan := algebra.NewSelect(algebra.NewScan("Division", div.Schema),
		algebra.Eq(algebra.Ref("Division", "city"), algebra.StringVal("LA")))
	if _, err := db.Execute(plan); err != nil {
		t.Fatal(err)
	}
	first := db.Counter.Reads()
	if first == 0 {
		t.Fatal("no reads counted")
	}
	if _, err := db.Execute(plan); err != nil {
		t.Fatal(err)
	}
	if db.Counter.Reads() != 2*first {
		t.Errorf("reads = %d, want %d", db.Counter.Reads(), 2*first)
	}
}

func TestExecuteErrors(t *testing.T) {
	db := smallPaperDB(t)
	ghost := algebra.NewScan("Ghost", algebra.NewSchema(
		algebra.Column{Relation: "Ghost", Name: "x", Type: algebra.TypeInt}))
	if _, err := db.Execute(ghost); err == nil || !strings.Contains(err.Error(), "unknown table") {
		t.Errorf("ghost scan error = %v", err)
	}
	div, _ := db.Table("Division")
	bad := algebra.NewSelect(algebra.NewScan("Division", div.Schema),
		algebra.Eq(algebra.Ref("Division", "city"), algebra.IntVal(1)))
	if _, err := db.Execute(bad); err == nil {
		t.Error("type-mismatched predicate executed")
	}
}

func TestCatalogForDerivesExactStats(t *testing.T) {
	db := smallPaperDB(t)
	cat, err := db.CatalogFor()
	if err != nil {
		t.Fatal(err)
	}
	div, _ := db.Table("Division")
	rel, err := cat.Relation("Division")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Rows != float64(div.NumRows()) || rel.Blocks != float64(div.NumBlocks()) {
		t.Errorf("catalog %v/%v vs table %d/%d", rel.Rows, rel.Blocks, div.NumRows(), div.NumBlocks())
	}
	if rel.Attrs["Did"].DistinctValues != float64(div.NumRows()) {
		t.Errorf("NDV(Did) = %v, want %d (sequence column)", rel.Attrs["Did"].DistinctValues, div.NumRows())
	}
	// quantity stats: Min/Max present for Order.
	ordRel, err := cat.Relation("Order")
	if err != nil {
		t.Fatal(err)
	}
	q := ordRel.Attrs["quantity"]
	if !q.Min.IsValid() || !q.Max.IsValid() {
		t.Error("quantity bounds missing")
	}
	// Numeric attributes carry equi-depth histograms from the data.
	if len(q.Histogram) != engine.HistogramBuckets {
		t.Errorf("quantity histogram buckets = %d, want %d", len(q.Histogram), engine.HistogramBuckets)
	}
	// Uniform quantity in [1,200]: the median bucket boundary sits near
	// 100, so P(q ≤ 100) ≈ 0.5.
	if s, ok := q.Histogram, true; !ok || s[len(s)/2-1] < 60 || s[len(s)/2-1] > 140 {
		t.Errorf("median boundary = %v, want near 100", q.Histogram)
	}
	// String columns have no histogram.
	custRel, err := cat.Relation("Customer")
	if err != nil {
		t.Fatal(err)
	}
	if len(custRel.Attrs["city"].Histogram) != 0 {
		t.Error("string column grew a histogram")
	}
}
