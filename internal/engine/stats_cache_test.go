package engine

import (
	"testing"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/catalog"
)

func statsScratch(t *testing.T) *Table {
	t.Helper()
	schema := algebra.NewSchema(
		algebra.Column{Relation: "R", Name: "a", Type: algebra.TypeInt},
		algebra.Column{Relation: "R", Name: "b", Type: algebra.TypeString},
	)
	tb := NewTable("R", schema, 4)
	for i := 0; i < 6; i++ {
		if err := tb.Insert([]algebra.Value{
			algebra.IntVal(int64(i % 3)), algebra.StringVal("x"),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func TestTableStatsCaches(t *testing.T) {
	tb := statsScratch(t)
	first := TableStats("R", tb)
	if first.Attrs["a"].DistinctValues != 3 {
		t.Fatalf("NDV(a) = %v, want 3", first.Attrs["a"].DistinctValues)
	}
	if second := TableStats("R", tb); second != first {
		t.Error("second TableStats call recomputed instead of returning the cache")
	}
	// A different requested name clones the identity but shares the stats.
	aliased := TableStats("Alias", tb)
	if aliased == first || aliased.Name != "Alias" {
		t.Errorf("aliased entry = %+v", aliased)
	}
	if aliased.Attrs["a"].DistinctValues != 3 {
		t.Error("aliased entry lost the attribute stats")
	}
	// Setup-phase growth invalidates: the row-count guard must drop the
	// cache rather than serve stats for six rows against eight.
	if err := tb.Insert(
		[]algebra.Value{algebra.IntVal(77), algebra.StringVal("y")},
		[]algebra.Value{algebra.IntVal(78), algebra.StringVal("y")},
	); err != nil {
		t.Fatal(err)
	}
	grown := TableStats("R", tb)
	if grown == first {
		t.Fatal("stale cache served after Insert")
	}
	if grown.Rows != 8 || grown.Attrs["a"].DistinctValues != 5 {
		t.Errorf("recomputed entry = rows %v, NDV(a) %v; want 8, 5", grown.Rows, grown.Attrs["a"].DistinctValues)
	}
}

func TestInstallStatsValidation(t *testing.T) {
	tb := statsScratch(t)
	good := func() *catalog.Relation {
		return &catalog.Relation{
			Name: "R", Rows: 6, Blocks: 2, UpdateFrequency: 1,
			Attrs: map[string]catalog.AttrStats{
				"a": {DistinctValues: 3},
				"b": {DistinctValues: 1},
			},
		}
	}
	cases := []struct {
		name   string
		mutate func(*catalog.Relation)
		want   bool
	}{
		{"exact match", func(r *catalog.Relation) {}, true},
		{"wrong name", func(r *catalog.Relation) { r.Name = "S" }, false},
		{"wrong rows", func(r *catalog.Relation) { r.Rows = 7 }, false},
		{"wrong blocks", func(r *catalog.Relation) { r.Blocks = 9 }, false},
		{"missing attr", func(r *catalog.Relation) { delete(r.Attrs, "b") }, false},
		{"foreign attr", func(r *catalog.Relation) {
			delete(r.Attrs, "b")
			r.Attrs["zz"] = catalog.AttrStats{}
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rel := good()
			tc.mutate(rel)
			if got := tb.InstallStats(rel); got != tc.want {
				t.Errorf("InstallStats = %v, want %v", got, tc.want)
			}
		})
	}
	if tb.InstallStats(nil) {
		t.Error("nil entry installed")
	}
	// An installed entry is what TableStats then serves, schema re-attached.
	rel := good()
	rel.Attrs["a"] = catalog.AttrStats{DistinctValues: 42}
	if !tb.InstallStats(rel) {
		t.Fatal("valid entry rejected")
	}
	got := TableStats("R", tb)
	if got != rel || got.Schema != tb.Schema {
		t.Errorf("TableStats after install = %p (schema %p), want the installed entry with the live schema", got, got.Schema)
	}
	if got.Attrs["a"].DistinctValues != 42 {
		t.Error("installed stats not served")
	}
}
