package engine

import (
	"github.com/warehousekit/mvpp/internal/algebra"
)

// colvec is one column's storage: a typed payload slice (the batch
// executor's unit of work) plus a null bitmap. A column whose values all
// share one kind stores bare payloads — []int64 for ints and dates,
// []float64, []string — and kernels run typed loops over them; a column
// that ever receives heterogeneous kinds demotes itself to a generic
// []algebra.Value representation that the executors fall back to
// value-at-a-time. The zero algebra.Value is the canonical null: it is
// recorded in the bitmap, not the payload. Any other invalid value (an
// unknown Kind with payload bits set) also demotes to generic so it
// round-trips verbatim.
//
// Columns follow a copy-on-write discipline: operators only append to
// columns of tables still under construction, and every derived column
// (gather, compact, slice-with-copy) owns fresh payload slices — except
// project, which shares whole immutable columns, and slice, which shares
// payload backing the way row slices used to share backing arrays.
type colvec struct {
	// kind is the uniform kind of every non-null value appended so far;
	// 0 while the column is empty or all-null, and meaningless once the
	// column is generic.
	kind algebra.Type
	// Typed payloads; exactly one is non-nil in typed state (nulls hold a
	// zero placeholder so indices stay aligned).
	ints   []int64 // TypeInt and TypeDate payloads
	floats []float64
	strs   []string
	// vals, when non-nil, is the authoritative generic representation.
	vals []algebra.Value
	// nulls marks rows holding the canonical null (the zero Value); nil
	// when the column has none.
	nulls    []uint64
	numNulls int
	n        int
}

// bit helpers for the null bitmap.

func bitGet(bm []uint64, i int) bool {
	if bm == nil {
		return false
	}
	return bm[i>>6]&(1<<(uint(i)&63)) != 0
}

func bitSet(bm []uint64, i int) []uint64 {
	for len(bm) <= i>>6 {
		bm = append(bm, 0)
	}
	bm[i>>6] |= 1 << (uint(i) & 63)
	return bm
}

// hasNulls reports whether any row of the column is null.
func (c *colvec) hasNulls() bool { return c.numNulls > 0 }

// typedKind returns the column's uniform kind when the typed fast paths
// apply (typed state, at least implicitly typed); 0 when the column is
// generic or still kindless.
func (c *colvec) typedKind() algebra.Type {
	if c.vals != nil {
		return 0
	}
	return c.kind
}

// append adds one value to the column.
func (c *colvec) append(v algebra.Value) {
	if c.vals != nil {
		c.vals = append(c.vals, v)
		if !v.IsValid() {
			c.nulls = bitSet(c.nulls, c.n)
			c.numNulls++
		}
		c.n++
		return
	}
	if v == (algebra.Value{}) {
		c.nulls = bitSet(c.nulls, c.n)
		c.numNulls++
		c.appendPlaceholder()
		c.n++
		return
	}
	if !v.IsValid() {
		// A non-canonical invalid value: only the generic representation
		// preserves it verbatim.
		c.demote()
		c.append(v)
		return
	}
	if c.kind == 0 {
		c.adoptKind(v.Kind)
	}
	if !sameStorageKind(c.kind, v.Kind) {
		c.demote()
		c.append(v)
		return
	}
	switch c.kind {
	case algebra.TypeInt, algebra.TypeDate:
		c.ints = append(c.ints, v.Int)
	case algebra.TypeFloat:
		c.floats = append(c.floats, v.Float)
	case algebra.TypeString:
		c.strs = append(c.strs, v.Str)
	}
	c.n++
}

// sameStorageKind reports whether a value of kind v stores losslessly in a
// column of kind k. Int and date share an int64 payload but render and
// group differently, so they do not mix in one typed column.
func sameStorageKind(k, v algebra.Type) bool { return k == v }

// adoptKind fixes the column's kind after a kindless (all-null) prefix,
// backfilling zero placeholders for the nulls already recorded.
func (c *colvec) adoptKind(k algebra.Type) {
	c.kind = k
	switch k {
	case algebra.TypeInt, algebra.TypeDate:
		c.ints = make([]int64, c.n, c.n+1)
	case algebra.TypeFloat:
		c.floats = make([]float64, c.n, c.n+1)
	case algebra.TypeString:
		c.strs = make([]string, c.n, c.n+1)
	}
}

// appendPlaceholder keeps the typed payload index-aligned under a null.
func (c *colvec) appendPlaceholder() {
	switch c.kind {
	case algebra.TypeInt, algebra.TypeDate:
		c.ints = append(c.ints, 0)
	case algebra.TypeFloat:
		c.floats = append(c.floats, 0)
	case algebra.TypeString:
		c.strs = append(c.strs, "")
	}
}

// demote rewrites the column into the generic representation.
func (c *colvec) demote() {
	if c.vals != nil {
		return
	}
	vals := make([]algebra.Value, c.n)
	for i := 0; i < c.n; i++ {
		vals[i] = c.valueAt(i)
	}
	c.vals = vals
	c.ints, c.floats, c.strs = nil, nil, nil
}

// valueAt reconstructs row i's value.
func (c *colvec) valueAt(i int) algebra.Value {
	if c.vals != nil {
		return c.vals[i]
	}
	if bitGet(c.nulls, i) {
		return algebra.Value{}
	}
	switch c.kind {
	case algebra.TypeInt, algebra.TypeDate:
		return algebra.Value{Kind: c.kind, Int: c.ints[i]}
	case algebra.TypeFloat:
		return algebra.Value{Kind: algebra.TypeFloat, Float: c.floats[i]}
	case algebra.TypeString:
		return algebra.Value{Kind: algebra.TypeString, Str: c.strs[i]}
	default:
		return algebra.Value{}
	}
}

// clone returns an independent deep-enough copy: payload slices are
// copied, so appends to the clone never touch the original.
func (c *colvec) clone() *colvec {
	out := &colvec{kind: c.kind, numNulls: c.numNulls, n: c.n}
	if c.ints != nil {
		out.ints = append(make([]int64, 0, c.n), c.ints...)
	}
	if c.floats != nil {
		out.floats = append(make([]float64, 0, c.n), c.floats...)
	}
	if c.strs != nil {
		out.strs = append(make([]string, 0, c.n), c.strs...)
	}
	if c.vals != nil {
		out.vals = append(make([]algebra.Value, 0, c.n), c.vals...)
	}
	if c.nulls != nil {
		out.nulls = append(make([]uint64, 0, len(c.nulls)), c.nulls...)
	}
	return out
}

// appendCol appends every row of o to the (owned, cloned) receiver.
func (c *colvec) appendCol(o *colvec) {
	for i := 0; i < o.n; i++ {
		c.append(o.valueAt(i))
	}
}

// slice returns rows [lo, hi) as a column view. Typed payloads share
// backing arrays with the parent, capacity-capped so parent appends can
// never write into the view (the same discipline row slices had); the
// null bitmap, which cannot be sliced at a bit offset, is rebuilt.
func (c *colvec) slice(lo, hi int) *colvec {
	out := &colvec{kind: c.kind, n: hi - lo}
	if c.vals != nil {
		out.vals = c.vals[lo:hi:hi]
	}
	if c.ints != nil {
		out.ints = c.ints[lo:hi:hi]
	}
	if c.floats != nil {
		out.floats = c.floats[lo:hi:hi]
	}
	if c.strs != nil {
		out.strs = c.strs[lo:hi:hi]
	}
	if c.numNulls > 0 {
		for i := lo; i < hi; i++ {
			if bitGet(c.nulls, i) {
				out.nulls = bitSet(out.nulls, i-lo)
				out.numNulls++
			}
		}
	}
	return out
}

// gather returns a fresh column holding the rows named by idx, in order.
func (c *colvec) gather(idx []int32) *colvec {
	out := &colvec{kind: c.kind, n: len(idx)}
	switch {
	case c.vals != nil:
		out.vals = make([]algebra.Value, len(idx))
		for o, i := range idx {
			out.vals[o] = c.vals[i]
			if !out.vals[o].IsValid() {
				out.nulls = bitSet(out.nulls, o)
				out.numNulls++
			}
		}
	case c.ints != nil:
		out.ints = make([]int64, len(idx))
		for o, i := range idx {
			out.ints[o] = c.ints[i]
		}
	case c.floats != nil:
		out.floats = make([]float64, len(idx))
		for o, i := range idx {
			out.floats[o] = c.floats[i]
		}
	case c.strs != nil:
		out.strs = make([]string, len(idx))
		for o, i := range idx {
			out.strs[o] = c.strs[i]
		}
	}
	if c.numNulls > 0 && c.vals == nil {
		for o, i := range idx {
			if bitGet(c.nulls, int(i)) {
				out.nulls = bitSet(out.nulls, o)
				out.numNulls++
			}
		}
	}
	return out
}

// compact returns a fresh column holding the rows where keep is true.
func (c *colvec) compact(keep []bool, count int) *colvec {
	out := &colvec{kind: c.kind, n: count}
	switch {
	case c.vals != nil:
		out.vals = make([]algebra.Value, 0, count)
	case c.ints != nil:
		out.ints = make([]int64, 0, count)
	case c.floats != nil:
		out.floats = make([]float64, 0, count)
	case c.strs != nil:
		out.strs = make([]string, 0, count)
	}
	o := 0
	for i := 0; i < c.n; i++ {
		if !keep[i] {
			continue
		}
		switch {
		case c.vals != nil:
			out.vals = append(out.vals, c.vals[i])
			if !c.vals[i].IsValid() {
				out.nulls = bitSet(out.nulls, o)
				out.numNulls++
			}
		case c.ints != nil:
			out.ints = append(out.ints, c.ints[i])
		case c.floats != nil:
			out.floats = append(out.floats, c.floats[i])
		case c.strs != nil:
			out.strs = append(out.strs, c.strs[i])
		}
		if c.vals == nil && bitGet(c.nulls, i) {
			out.nulls = bitSet(out.nulls, o)
			out.numNulls++
		}
		o++
	}
	return out
}
