package engine_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/datagen"
	"github.com/warehousekit/mvpp/internal/engine"
)

// The differential harness: generate random plans over the paper schema,
// execute them and their rewritten forms on real data, and require
// identical result multisets. This checks, end to end, that every rewrite
// the framework performs (selection push-down, column pruning,
// normalization, decompose/compose, view rewriting) preserves semantics.

// planGen builds random SPJ(+aggregate) plans over a database.
type planGen struct {
	r  *rand.Rand
	db *engine.DB
}

// joinEdges lists the schema's legal equi-join edges.
var joinEdges = []struct {
	lRel, lCol, rRel, rCol string
}{
	{"Product", "Did", "Division", "Did"},
	{"Part", "Pid", "Product", "Pid"},
	{"Order", "Pid", "Product", "Pid"},
	{"Order", "Cid", "Customer", "Cid"},
}

// randomPlan builds a random valid plan: a connected join subgraph with
// random selections and a random projection (or aggregation).
func (g *planGen) randomPlan(t *testing.T) algebra.Node {
	t.Helper()
	// Pick a connected relation set by growing from a random edge.
	edges := g.r.Perm(len(joinEdges))
	rels := map[string]bool{}
	var conds []algebra.JoinCond
	want := 1 + g.r.Intn(3) // 1..3 joins
	for _, ei := range edges {
		e := joinEdges[ei]
		if len(conds) >= want {
			break
		}
		if len(rels) > 0 && !rels[e.lRel] && !rels[e.rRel] {
			continue // keep it connected
		}
		rels[e.lRel] = true
		rels[e.rRel] = true
		conds = append(conds, algebra.JoinCond{
			Left:  algebra.Ref(e.lRel, e.lCol),
			Right: algebra.Ref(e.rRel, e.rCol),
		})
	}
	if len(rels) == 0 {
		rels["Order"] = true
	}

	// Scans, left-deep join in arbitrary order respecting connectivity.
	var plan algebra.Node
	pending := map[string]bool{}
	for rel := range rels {
		pending[rel] = true
	}
	usable := func(c algebra.JoinCond, joined map[string]bool) (string, bool) {
		l, r := c.Left.Relation, c.Right.Relation
		if joined[l] && pending[r] {
			return r, true
		}
		if joined[r] && pending[l] {
			return l, true
		}
		return "", false
	}
	scan := func(rel string) algebra.Node {
		tb, err := g.db.Table(rel)
		if err != nil {
			t.Fatal(err)
		}
		return algebra.NewScan(rel, tb.Schema)
	}
	joined := map[string]bool{}
	// start anywhere
	for rel := range pending {
		plan = scan(rel)
		joined[rel] = true
		delete(pending, rel)
		break
	}
	for len(pending) > 0 {
		progressed := false
		for _, c := range conds {
			next, ok := usable(c, joined)
			if !ok {
				continue
			}
			// orient the condition so Left resolves in the current plan
			cond := c
			if cond.Left.Relation == next {
				cond = algebra.JoinCond{Left: c.Right, Right: c.Left}
			}
			plan = algebra.NewJoin(plan, scan(next), []algebra.JoinCond{cond})
			joined[next] = true
			delete(pending, next)
			progressed = true
		}
		if !progressed {
			t.Fatalf("disconnected random plan: %v pending", pending)
		}
	}

	// Random selections.
	preds := g.randomPredicates(joined)
	if p := algebra.NewAnd(preds...); p != nil {
		plan = algebra.NewSelect(plan, p)
	}

	// Random head: projection or aggregation.
	schema := plan.Schema()
	if g.r.Intn(4) == 0 {
		// aggregate on a random group column
		gi := g.r.Intn(schema.Len())
		gcol := schema.Columns[gi]
		plan = algebra.NewAggregate(plan,
			[]algebra.ColumnRef{algebra.Ref(gcol.Relation, gcol.Name)},
			[]algebra.Aggregation{{Func: algebra.AggCount, Alias: "n"}})
	} else {
		n := 1 + g.r.Intn(3)
		perm := g.r.Perm(schema.Len())
		var cols []algebra.ColumnRef
		seen := map[string]bool{}
		for _, i := range perm[:n] {
			c := schema.Columns[i]
			ref := algebra.Ref(c.Relation, c.Name)
			if !seen[ref.String()] {
				seen[ref.String()] = true
				cols = append(cols, ref)
			}
		}
		plan = algebra.NewProject(plan, cols)
	}
	if err := algebra.Validate(plan); err != nil {
		t.Fatalf("random plan invalid: %v\n%s", err, plan.Canonical())
	}
	return plan
}

// randomPredicates picks 0..3 predicates over the joined relations.
func (g *planGen) randomPredicates(rels map[string]bool) []algebra.Predicate {
	var candidates []algebra.Predicate
	if rels["Division"] {
		candidates = append(candidates,
			algebra.Eq(algebra.Ref("Division", "city"), algebra.StringVal("LA")),
			algebra.Eq(algebra.Ref("Division", "city"), algebra.StringVal("SF")))
	}
	if rels["Order"] {
		candidates = append(candidates,
			algebra.Compare(algebra.ColOperand(algebra.Ref("Order", "quantity")), algebra.OpGt, algebra.LitOperand(algebra.IntVal(100))),
			algebra.Compare(algebra.ColOperand(algebra.Ref("Order", "quantity")), algebra.OpLe, algebra.LitOperand(algebra.IntVal(50))))
	}
	if rels["Customer"] {
		candidates = append(candidates,
			algebra.Eq(algebra.Ref("Customer", "city"), algebra.StringVal("LA")))
	}
	if rels["Part"] {
		candidates = append(candidates,
			algebra.Compare(algebra.ColOperand(algebra.Ref("Part", "Tid")), algebra.OpLt, algebra.LitOperand(algebra.IntVal(400))))
	}
	if len(candidates) == 0 {
		return nil
	}
	n := g.r.Intn(3)
	if n > len(candidates) {
		n = len(candidates)
	}
	perm := g.r.Perm(len(candidates))
	var out []algebra.Predicate
	for _, i := range perm[:n] {
		// occasionally wrap in OR with another candidate
		if g.r.Intn(4) == 0 {
			j := perm[(i+1)%len(perm)]
			out = append(out, algebra.NewOr(candidates[i], candidates[j]))
			continue
		}
		out = append(out, candidates[i])
	}
	return out
}

// resultKey renders a result multiset as a sorted string for comparison.
// Column order may differ between plan variants, so each row's values are
// matched by resolved column identity of the ORIGINAL plan's schema.
func resultKey(t *testing.T, res *engine.Result, schema *algebra.Schema) string {
	t.Helper()
	rows := make([]string, 0, res.Table.NumRows())
	for i := 0; i < res.Table.NumRows(); i++ {
		row := res.Table.Row(i)
		vals := make([]string, schema.Len())
		for ci, col := range schema.Columns {
			v, ok := row.ColumnValue(algebra.Ref(col.Relation, col.Name))
			if !ok {
				t.Fatalf("column %s missing from rewritten result", col.QualifiedName())
			}
			vals[ci] = v.String()
		}
		rows = append(rows, fmt.Sprint(vals))
	}
	sort.Strings(rows)
	return fmt.Sprint(rows)
}

// TestRewritesPreserveSemanticsDifferential is the harness entry point.
func TestRewritesPreserveSemanticsDifferential(t *testing.T) {
	db, err := datagen.PaperDB(8, 0.004, 20260704)
	if err != nil {
		t.Fatal(err)
	}
	g := &planGen{r: rand.New(rand.NewSource(99)), db: db}

	rewrites := []struct {
		name string
		fn   func(algebra.Node) (algebra.Node, error)
	}{
		{"pushdown-selections", func(n algebra.Node) (algebra.Node, error) {
			return algebra.PushDownSelections(n), nil
		}},
		{"prune-columns", func(n algebra.Node) (algebra.Node, error) {
			return algebra.PruneColumns(n, nil), nil
		}},
		{"normalize", func(n algebra.Node) (algebra.Node, error) {
			return algebra.Normalize(n), nil
		}},
		{"full-pipeline", func(n algebra.Node) (algebra.Node, error) {
			return algebra.Normalize(algebra.PruneColumns(algebra.PushDownSelections(n), nil)), nil
		}},
		{"decompose-compose", func(n algebra.Node) (algebra.Node, error) {
			d, err := algebra.Decompose(n)
			if err != nil {
				return nil, err
			}
			return d.Compose(), nil
		}},
	}

	const trials = 60
	for trial := 0; trial < trials; trial++ {
		plan := g.randomPlan(t)
		base, err := db.Execute(plan)
		if err != nil {
			t.Fatalf("trial %d: executing original: %v\n%s", trial, err, plan.Canonical())
		}
		baseKey := resultKey(t, base, plan.Schema())
		for _, rw := range rewrites {
			got, err := rw.fn(algebra.Clone(plan))
			if err != nil {
				t.Fatalf("trial %d %s: %v\n%s", trial, rw.name, err, plan.Canonical())
			}
			if err := algebra.Validate(got); err != nil {
				t.Fatalf("trial %d %s produced invalid plan: %v\n%s", trial, rw.name, err, got.Canonical())
			}
			res, err := db.Execute(got)
			if err != nil {
				t.Fatalf("trial %d %s: executing rewritten: %v\n%s", trial, rw.name, err, got.Canonical())
			}
			if key := resultKey(t, res, plan.Schema()); key != baseKey {
				t.Fatalf("trial %d: %s changed results\noriginal:  %s\nrewritten: %s",
					trial, rw.name, plan.Canonical(), got.Canonical())
			}
		}
	}
}

// TestViewRewritePreservesSemanticsDifferential materializes a random
// plan's join subtree as a view and checks the rewritten execution matches.
func TestViewRewritePreservesSemanticsDifferential(t *testing.T) {
	const trials = 25
	for trial := 0; trial < trials; trial++ {
		db, err := datagen.PaperDB(8, 0.004, int64(3000+trial))
		if err != nil {
			t.Fatal(err)
		}
		g := &planGen{r: rand.New(rand.NewSource(int64(500 + trial))), db: db}
		plan := g.randomPlan(t)

		// Pick a random join subtree to materialize.
		var joins []algebra.Node
		algebra.Walk(plan, func(n algebra.Node) {
			if _, ok := n.(*algebra.Join); ok {
				joins = append(joins, n)
			}
		})
		if len(joins) == 0 {
			continue
		}
		sub := joins[g.r.Intn(len(joins))]
		if _, err := db.Materialize("mv", algebra.Clone(sub)); err != nil {
			t.Fatalf("trial %d: materialize: %v", trial, err)
		}

		direct, err := db.Execute(plan)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rewritten := db.RewriteWithViews(plan)
		res, err := db.Execute(rewritten)
		if err != nil {
			t.Fatalf("trial %d: rewritten: %v\n%s", trial, err, rewritten.Canonical())
		}
		if resultKey(t, direct, plan.Schema()) != resultKey(t, res, plan.Schema()) {
			t.Fatalf("trial %d: view rewrite changed results\nplan: %s\nview: %s",
				trial, plan.Canonical(), sub.Canonical())
		}
	}
}
