package engine

import (
	"fmt"

	"github.com/warehousekit/mvpp/internal/algebra"
)

// This file is the row-at-a-time reference executor: the operators the
// engine shipped with before the vectorized batch executor replaced them
// as the default. They are kept — selected by SetExecMode(ExecRow) — as
// the semantics oracle for the differential harness
// (TestBatchVsRowDifferential), which asserts the two executors produce
// bit-identical result rows, per-operator stats, and journal state. Each
// operator materializes its columnar input row-major exactly once and then
// evaluates value-at-a-time with per-row interface dispatch, the
// evaluation discipline the original implementation had.

// rowSelect filters by linear scan: every input block is read once.
func (db *DB) rowSelect(sel *algebra.Select, in *Table, res *Result) (*Table, error) {
	rows := in.materializeRows()
	out := NewTable("", sel.Schema(), db.BlockRows)
	for _, row := range rows {
		ok, err := sel.Pred.Eval(&algebra.Tuple{Schema: in.Schema, Values: row})
		if err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
		if ok {
			if err := out.Insert(row); err != nil {
				return nil, err
			}
		}
	}
	stats := OpStats{
		Label:     sel.Label(),
		Reads:     int64(in.NumBlocks()),
		Writes:    int64(out.NumBlocks()),
		OutRows:   out.NumRows(),
		OutBlocks: out.NumBlocks(),
	}
	db.account(stats)
	res.Ops = append(res.Ops, stats)
	return out, nil
}

// rowProject streams the input once.
func (db *DB) rowProject(p *algebra.Project, in *Table, res *Result) (*Table, error) {
	outSchema, idx, err := resolveProjection(p, in)
	if err != nil {
		return nil, err
	}
	rows := in.materializeRows()
	out := NewTable("", outSchema, db.BlockRows)
	for _, row := range rows {
		vals := make([]algebra.Value, len(idx))
		for i, j := range idx {
			vals[i] = row[j]
		}
		if err := out.Insert(vals); err != nil {
			return nil, err
		}
	}
	stats := OpStats{
		Label:     p.Label(),
		Reads:     int64(in.NumBlocks()),
		Writes:    int64(out.NumBlocks()),
		OutRows:   out.NumRows(),
		OutBlocks: out.NumBlocks(),
	}
	db.account(stats)
	res.Ops = append(res.Ops, stats)
	return out, nil
}

// rowJoin is a block nested-loop join with a one-block buffer: the outer
// is read once, the inner once per outer block — blocks(outer) +
// blocks(outer)·blocks(inner) reads, matching the BlockNLJ cost model.
func (db *DB) rowJoin(j *algebra.Join, left, right *Table, res *Result) (*Table, error) {
	joined := left.Schema.Concat(right.Schema)
	conds, err := resolveJoinConds(j, left, right)
	if err != nil {
		return nil, err
	}
	leftRows := left.materializeRows()
	rightRows := right.materializeRows()
	out := NewTable("", joined, db.BlockRows)
	outerBlocks := left.NumBlocks()
	for ob := 0; ob < outerBlocks; ob++ {
		lo := ob * left.BlockRows
		hi := lo + left.BlockRows
		if hi > left.NumRows() {
			hi = left.NumRows()
		}
		for _, rrow := range rightRows {
			for li := lo; li < hi; li++ {
				lrow := leftRows[li]
				match := true
				for _, ci := range conds {
					if !lrow[ci.li].Equal(rrow[ci.ri]) {
						match = false
						break
					}
				}
				if !match {
					continue
				}
				vals := make([]algebra.Value, 0, len(lrow)+len(rrow))
				vals = append(vals, lrow...)
				vals = append(vals, rrow...)
				if err := out.Insert(vals); err != nil {
					return nil, err
				}
			}
		}
	}
	stats := OpStats{
		Label:     j.Label(),
		Reads:     int64(outerBlocks) + int64(outerBlocks)*int64(right.NumBlocks()),
		Writes:    int64(out.NumBlocks()),
		OutRows:   out.NumRows(),
		OutBlocks: out.NumBlocks(),
	}
	db.account(stats)
	res.Ops = append(res.Ops, stats)
	return out, nil
}
