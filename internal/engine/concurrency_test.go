package engine_test

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/warehousekit/mvpp/internal/algebra"
)

// deltaProductRow builds one synthetic Product delta row.
func deltaProductRow(i int64, did int64) []algebra.Value {
	return []algebra.Value{algebra.IntVal(900000 + i), algebra.StringVal("product-Δ"), algebra.IntVal(did)}
}

// TestConcurrentExecuteVsRefresh runs readers through a materialized view
// while a maintainer recomputes it in a tight loop: every read must see a
// complete epoch (constant row count, since the base data never changes)
// and no read or refresh may fail. Run with -race to check the epoch swap.
func TestConcurrentExecuteVsRefresh(t *testing.T) {
	db := smallPaperDB(t)
	plan := laJoinPlan(t, db)
	if _, err := db.Materialize("tmp2", plan); err != nil {
		t.Fatal(err)
	}
	base, err := db.Execute(db.RewriteWithViews(plan))
	if err != nil {
		t.Fatal(err)
	}
	wantRows := base.Table.NumRows()

	const readers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := db.Execute(db.RewriteWithViews(plan))
				if err != nil {
					errs <- err
					return
				}
				if res.Table.NumRows() != wantRows {
					errs <- errors.New("read a half-refreshed view epoch")
					return
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		if _, err := db.Refresh("tmp2"); err != nil {
			errs <- err
			break
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentExecuteVsIncrementalEpochs drives full maintenance epochs
// (InsertDelta → IncrementalRefresh → ApplyDeltas) from one maintainer
// goroutine while readers execute view-rewritten and base-table plans.
// Readers must only ever observe whole epochs: the view's row count must
// be one of the per-epoch counts the maintainer published.
func TestConcurrentExecuteVsIncrementalEpochs(t *testing.T) {
	db := smallPaperDB(t)
	plan := laJoinPlan(t, db)
	if _, err := db.Materialize("tmp2", plan); err != nil {
		t.Fatal(err)
	}

	var epochRows sync.Map // row count → true, for every published epoch
	res, err := db.Execute(db.RewriteWithViews(plan))
	if err != nil {
		t.Fatal(err)
	}
	epochRows.Store(res.Table.NumRows(), true)

	const readers = 6
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := db.Execute(db.RewriteWithViews(plan))
				if err != nil {
					errs <- err
					return
				}
				if _, ok := epochRows.Load(res.Table.NumRows()); !ok {
					errs <- errors.New("view row count matches no published epoch")
					return
				}
			}
		}()
	}

	// Maintainer: each epoch inserts one Product row joining an existing
	// LA division (did=1 exists in the paper data generator), refreshes
	// incrementally, publishes the new epoch's row count, then folds the
	// delta into the base table.
	for i := int64(0); i < 30; i++ {
		if err := db.InsertDelta("Product", deltaProductRow(i, 1)); err != nil {
			errs <- err
			break
		}
		ref, err := db.IncrementalRefresh("tmp2")
		if err != nil {
			errs <- err
			break
		}
		epochRows.Store(ref.Table.NumRows(), true)
		if err := db.ApplyDeltas(); err != nil {
			errs <- err
			break
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Final state check: the maintained view equals a recompute.
	got, err := db.Execute(db.RewriteWithViews(plan))
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if tableKey(got.Table) != tableKey(want.Table) {
		t.Error("maintained view diverged from recompute after concurrent epochs")
	}
}

// TestConcurrentRewriteVsViewChurn races RewriteWithViewsSubsuming +
// Execute against a maintainer that drops and rematerializes the view.
// A reader may lose the race between rewriting and executing (the view it
// rewrote onto was dropped) — that surfaces as a clean "unknown table"
// error, never a torn read or a crash.
func TestConcurrentRewriteVsViewChurn(t *testing.T) {
	db := smallPaperDB(t)
	plan := laJoinPlan(t, db)
	if _, err := db.Materialize("tmp2", plan); err != nil {
		t.Fatal(err)
	}
	want, err := db.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := want.Table.NumRows()

	const readers = 6
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var lostRace atomic.Int64
	errs := make(chan error, readers+1)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := db.Execute(db.RewriteWithViewsSubsuming(plan))
				if err != nil {
					if strings.Contains(err.Error(), "unknown table") {
						lostRace.Add(1)
						continue
					}
					errs <- err
					return
				}
				if res.Table.NumRows() != wantRows {
					errs <- errors.New("rewritten execution returned a torn result")
					return
				}
			}
		}()
	}
	for i := 0; i < 40; i++ {
		if err := db.DropView("tmp2"); err != nil {
			errs <- err
			break
		}
		if _, err := db.Materialize("tmp2", plan); err != nil {
			errs <- err
			break
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestIncrementalRefreshTwiceNoDoubleApply is the watermark regression:
// refreshing a view twice for the same pending delta must propagate it
// exactly once.
func TestIncrementalRefreshTwiceNoDoubleApply(t *testing.T) {
	db := smallPaperDB(t)
	if _, err := db.Materialize("tmp2", laJoinPlan(t, db)); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertDelta("Product", deltaProductRow(1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.IncrementalRefresh("tmp2"); err != nil {
		t.Fatal(err)
	}
	first := viewKey(t, db, "tmp2")
	if _, err := db.IncrementalRefresh("tmp2"); err != nil {
		t.Fatal(err)
	}
	if second := viewKey(t, db, "tmp2"); second != first {
		t.Errorf("second refresh for the same delta changed the view\n got: %s\nwas: %s", second, first)
	}

	if err := db.ApplyDeltas(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Materialize("ref", laJoinPlan(t, db)); err != nil {
		t.Fatal(err)
	}
	if want := viewKey(t, db, "ref"); first != want {
		t.Errorf("maintained view diverges from recompute\n got: %s\nwant: %s", first, want)
	}
}

// TestIncrementalRefreshStagedBatches checks partial-batch watermarks: a
// view refreshed mid-epoch must propagate only the rows that arrived since
// its last refresh, and its old state for join deltas must include the
// rows it already consumed.
func TestIncrementalRefreshStagedBatches(t *testing.T) {
	db := smallPaperDB(t)
	if _, err := db.Materialize("tmp2", laJoinPlan(t, db)); err != nil {
		t.Fatal(err)
	}
	// Batch 1: a product joining an existing division, and a new LA
	// division.
	if err := db.InsertDelta("Product", deltaProductRow(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertDelta("Division",
		[]algebra.Value{algebra.IntVal(999991), algebra.StringVal("division-x"), algebra.StringVal("LA")}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.IncrementalRefresh("tmp2"); err != nil {
		t.Fatal(err)
	}
	// Batch 2: a product joining the batch-1 delta division — its join
	// partner lives in the already-propagated prefix, so this is the
	// L_old ⋈ ΔR path across staged batches.
	if err := db.InsertDelta("Product", deltaProductRow(2, 999991)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.IncrementalRefresh("tmp2"); err != nil {
		t.Fatal(err)
	}
	maintained := viewKey(t, db, "tmp2")

	if err := db.ApplyDeltas(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Materialize("ref", laJoinPlan(t, db)); err != nil {
		t.Fatal(err)
	}
	if want := viewKey(t, db, "ref"); maintained != want {
		t.Errorf("staged batches diverge from recompute\n got: %s\nwant: %s", maintained, want)
	}
}

// TestDropViewClearsDeltaWatermark is the satellite regression: dropping a
// view must discard its propagation watermark, or a rematerialized view of
// the same name would skip the deltas its predecessor had consumed and
// stay stale forever.
func TestDropViewClearsDeltaWatermark(t *testing.T) {
	db := smallPaperDB(t)
	if _, err := db.Materialize("tmp2", laJoinPlan(t, db)); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertDelta("Product", deltaProductRow(1, 1)); err != nil {
		t.Fatal(err)
	}
	// The first view consumes the delta, advancing its watermark.
	if _, err := db.IncrementalRefresh("tmp2"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropView("tmp2"); err != nil {
		t.Fatal(err)
	}
	// Rematerialize under the same name: the view is computed from the
	// base tables WITHOUT the still-pending delta, so the delta must be
	// propagated again for this new view.
	if _, err := db.Materialize("tmp2", laJoinPlan(t, db)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.IncrementalRefresh("tmp2"); err != nil {
		t.Fatal(err)
	}
	maintained := viewKey(t, db, "tmp2")

	if err := db.ApplyDeltas(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Materialize("ref", laJoinPlan(t, db)); err != nil {
		t.Fatal(err)
	}
	if want := viewKey(t, db, "ref"); maintained != want {
		t.Errorf("rematerialized view inherited the dropped view's watermark\n got: %s\nwant: %s",
			maintained, want)
	}
}
