package engine

import (
	"bytes"
	"errors"
	"testing"

	"github.com/warehousekit/mvpp/internal/algebra"
)

func segScratchTable(t *testing.T, blockRows int, schema *algebra.Schema, rows [][]algebra.Value) *Table {
	t.Helper()
	tb := NewTable("T", schema, blockRows)
	if len(rows) > 0 {
		if err := tb.Insert(rows...); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

// requireSameTable asserts two tables are bit-identical: same name, blocking
// factor, schema, and every value (kind included) in every row.
func requireSameTable(t *testing.T, got, want *Table) {
	t.Helper()
	if got.Name != want.Name || got.BlockRows != want.BlockRows {
		t.Fatalf("identity: got (%s, block %d), want (%s, block %d)",
			got.Name, got.BlockRows, want.Name, want.BlockRows)
	}
	if !got.Schema.Equal(want.Schema) {
		t.Fatalf("schema: got %v, want %v", got.Schema, want.Schema)
	}
	if got.NumRows() != want.NumRows() {
		t.Fatalf("rows: got %d, want %d", got.NumRows(), want.NumRows())
	}
	for i := 0; i < want.NumRows(); i++ {
		g, w := got.rowValues(i), want.rowValues(i)
		for c := range w {
			if g[c].Kind != w[c].Kind {
				t.Fatalf("row %d col %d: got %#v, want %#v", i, c, g[c], w[c])
			}
			if !g[c].IsValid() && !w[c].IsValid() {
				continue // NULL = NULL only for identity checks like this one
			}
			if !g[c].Equal(w[c]) {
				t.Fatalf("row %d col %d: got %#v, want %#v", i, c, g[c], w[c])
			}
		}
	}
}

func segRoundTrip(t *testing.T, tb *Table) *Table {
	t.Helper()
	var buf bytes.Buffer
	n, err := WriteTableSegment(&buf, tb)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTableSegment reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadTableSegment(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestSegmentRoundTripTyped(t *testing.T) {
	schema := algebra.NewSchema(
		algebra.Column{Relation: "R", Name: "id", Type: algebra.TypeInt},
		algebra.Column{Relation: "R", Name: "price", Type: algebra.TypeFloat},
		algebra.Column{Relation: "R", Name: "city", Type: algebra.TypeString},
		algebra.Column{Relation: "R", Name: "day", Type: algebra.TypeDate},
	)
	var rows [][]algebra.Value
	for i := 0; i < 23; i++ {
		row := []algebra.Value{
			algebra.IntVal(int64(i - 5)),
			algebra.FloatVal(float64(i) * 1.25),
			algebra.StringVal("São Paulo"),
			algebra.DateVal(20260101 + int64(i)),
		}
		if i%5 == 0 {
			row[1] = algebra.Value{} // null floats, including row 0
		}
		if i%7 == 3 {
			row[2] = algebra.Value{} // null strings off-phase from the floats
		}
		rows = append(rows, row)
	}
	tb := segScratchTable(t, 4, schema, rows)
	requireSameTable(t, segRoundTrip(t, tb), tb)
}

func TestSegmentRoundTripGeneric(t *testing.T) {
	// Heterogeneous kinds in one column demote it to the generic
	// representation; the segment must carry that verbatim.
	schema := algebra.NewSchema(
		algebra.Column{Relation: "R", Name: "k", Type: algebra.TypeInt},
		algebra.Column{Relation: "R", Name: "v", Type: algebra.TypeString},
	)
	rows := [][]algebra.Value{
		{algebra.IntVal(1), algebra.StringVal("a")},
		{algebra.IntVal(2), algebra.IntVal(99)}, // kind clash → generic column
		{algebra.IntVal(3), algebra.Value{}},
		{algebra.IntVal(4), algebra.FloatVal(2.5)},
	}
	tb := segScratchTable(t, 2, schema, rows)
	if tb.cols[1].vals == nil {
		t.Fatal("test premise broken: column v did not demote to generic")
	}
	got := segRoundTrip(t, tb)
	if got.cols[1].vals == nil {
		t.Error("generic column decoded as typed")
	}
	requireSameTable(t, got, tb)
}

func TestSegmentRoundTripEmptyAndAllNull(t *testing.T) {
	schema := algebra.NewSchema(
		algebra.Column{Relation: "R", Name: "a", Type: algebra.TypeInt},
		algebra.Column{Relation: "R", Name: "b", Type: algebra.TypeString},
	)
	t.Run("empty", func(t *testing.T) {
		tb := segScratchTable(t, 4, schema, nil)
		requireSameTable(t, segRoundTrip(t, tb), tb)
	})
	t.Run("all-null column", func(t *testing.T) {
		// A column that only ever saw nulls is kindless (kind 0, no payload).
		rows := [][]algebra.Value{
			{algebra.IntVal(1), algebra.Value{}},
			{algebra.IntVal(2), algebra.Value{}},
		}
		tb := segScratchTable(t, 4, schema, rows)
		requireSameTable(t, segRoundTrip(t, tb), tb)
	})
}

// TestSegmentCorruptionExhaustive flips every bit-position's byte and cuts
// the segment at every length: each mutation must surface as
// ErrSegmentCorrupt — never a panic, never a silently wrong table.
func TestSegmentCorruptionExhaustive(t *testing.T) {
	schema := algebra.NewSchema(
		algebra.Column{Relation: "R", Name: "id", Type: algebra.TypeInt},
		algebra.Column{Relation: "R", Name: "name", Type: algebra.TypeString},
	)
	rows := [][]algebra.Value{
		{algebra.IntVal(1), algebra.StringVal("alpha")},
		{algebra.IntVal(2), algebra.Value{}},
		{algebra.IntVal(3), algebra.StringVal("gamma")},
	}
	tb := segScratchTable(t, 2, schema, rows)
	var buf bytes.Buffer
	if _, err := WriteTableSegment(&buf, tb); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("bit flips", func(t *testing.T) {
		for off := 0; off < len(good); off++ {
			mut := append([]byte(nil), good...)
			mut[off] ^= 0x40
			if _, err := ReadTableSegment(bytes.NewReader(mut)); err == nil {
				t.Fatalf("bit flip at offset %d went undetected", off)
			} else if !errors.Is(err, ErrSegmentCorrupt) {
				t.Fatalf("bit flip at offset %d: error %v does not wrap ErrSegmentCorrupt", off, err)
			}
		}
	})
	t.Run("truncations", func(t *testing.T) {
		for n := 0; n < len(good); n++ {
			if _, err := ReadTableSegment(bytes.NewReader(good[:n])); err == nil {
				t.Fatalf("truncation to %d bytes went undetected", n)
			} else if !errors.Is(err, ErrSegmentCorrupt) {
				t.Fatalf("truncation to %d bytes: error %v does not wrap ErrSegmentCorrupt", n, err)
			}
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		mut := append(append([]byte(nil), good...), 0xEE)
		if _, err := ReadTableSegment(bytes.NewReader(mut)); !errors.Is(err, ErrSegmentCorrupt) {
			t.Fatalf("trailing byte: got %v, want ErrSegmentCorrupt", err)
		}
	})
}

func TestRestoreTableAndView(t *testing.T) {
	schema := algebra.NewSchema(
		algebra.Column{Relation: "R", Name: "a", Type: algebra.TypeInt},
	)
	tb := segScratchTable(t, 4, schema, [][]algebra.Value{{algebra.IntVal(7)}})
	tb.Name = "R"

	db := NewDB(4)
	if err := db.RestoreTable(tb); err != nil {
		t.Fatal(err)
	}
	if err := db.RestoreTable(tb); err == nil {
		t.Error("duplicate RestoreTable accepted")
	}
	if err := db.RestoreTable(nil); err == nil {
		t.Error("nil RestoreTable accepted")
	}

	plan := algebra.NewScan("R", schema)
	vt := segRoundTrip(t, tb)
	if _, err := db.RestoreView("V", plan, vt); err != nil {
		t.Fatal(err)
	}
	v, err := db.View("V")
	if err != nil {
		t.Fatal(err)
	}
	if v.Table().NumRows() != 1 {
		t.Errorf("restored view rows = %d, want 1", v.Table().NumRows())
	}
	if _, err := db.RestoreView("V", plan, vt); err == nil {
		t.Error("duplicate RestoreView accepted")
	}
	// Schema mismatch: a segment that does not belong to this definition.
	other := algebra.NewSchema(
		algebra.Column{Relation: "R", Name: "z", Type: algebra.TypeString},
	)
	ot := segScratchTable(t, 4, other, nil)
	if _, err := db.RestoreView("W", plan, ot); err == nil {
		t.Error("schema-mismatched RestoreView accepted")
	}
}
