package engine_test

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/engine"
)

// tableKey renders a table's row multiset as a sorted string, for comparing
// an incrementally maintained view against a recomputed reference.
func tableKey(tb *engine.Table) string {
	rows := make([]string, 0, tb.NumRows())
	for i := 0; i < tb.NumRows(); i++ {
		row := tb.Row(i)
		vals := make([]string, len(row.Values))
		for ci, v := range row.Values {
			vals[ci] = v.String()
		}
		rows = append(rows, fmt.Sprint(vals))
	}
	sort.Strings(rows)
	return fmt.Sprint(rows)
}

func viewKey(t *testing.T, db *engine.DB, name string) string {
	t.Helper()
	v, err := db.View(name)
	if err != nil {
		t.Fatal(err)
	}
	return tableKey(v.Table())
}

// laJoinPlan is Product ⋈ σ(city='LA')(Division): the paper's tmp2.
func laJoinPlan(t *testing.T, db *engine.DB) algebra.Node {
	t.Helper()
	pd, err := db.Table("Product")
	if err != nil {
		t.Fatal(err)
	}
	div, err := db.Table("Division")
	if err != nil {
		t.Fatal(err)
	}
	sel := algebra.NewSelect(algebra.NewScan("Division", div.Schema),
		algebra.Eq(algebra.Ref("Division", "city"), algebra.StringVal("LA")))
	return algebra.NewJoin(algebra.NewScan("Product", pd.Schema), sel,
		[]algebra.JoinCond{{Left: algebra.Ref("Product", "Did"), Right: algebra.Ref("Division", "Did")}})
}

// TestIncrementalRefreshSPJMatchesRecompute checks the delta-propagation
// rules on a select-project-join view: after inserting deltas that join
// both delta⋈old and delta⋈delta, the incrementally maintained view equals
// a from-scratch recomputation over the new base state.
func TestIncrementalRefreshSPJMatchesRecompute(t *testing.T) {
	db := smallPaperDB(t)
	if _, err := db.Materialize("tmp2", laJoinPlan(t, db)); err != nil {
		t.Fatal(err)
	}

	// A new LA division plus products pointing at it (Δ⋈Δ) and at
	// existing divisions (Δ⋈old).
	if err := db.InsertDelta("Division",
		[]algebra.Value{algebra.IntVal(999991), algebra.StringVal("division-x"), algebra.StringVal("LA")},
		[]algebra.Value{algebra.IntVal(999992), algebra.StringVal("division-y"), algebra.StringVal("SF")},
	); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertDelta("Product",
		[]algebra.Value{algebra.IntVal(999901), algebra.StringVal("product-x"), algebra.IntVal(999991)},
		[]algebra.Value{algebra.IntVal(999902), algebra.StringVal("product-y"), algebra.IntVal(1)},
		[]algebra.Value{algebra.IntVal(999903), algebra.StringVal("product-z"), algebra.IntVal(2)},
	); err != nil {
		t.Fatal(err)
	}
	if got := db.PendingDeltaRows("Product"); got != 3 {
		t.Fatalf("pending product deltas = %d", got)
	}

	res, err := db.IncrementalRefresh("tmp2")
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalReads()+res.TotalWrites() == 0 {
		t.Error("incremental refresh reported no I/O")
	}
	incremental := viewKey(t, db, "tmp2")

	// Reference: recompute over the base state with the deltas applied.
	if err := db.ApplyDeltas(); err != nil {
		t.Fatal(err)
	}
	if got := db.PendingDeltaRows("Product"); got != 0 {
		t.Fatalf("deltas not cleared: %d pending", got)
	}
	if _, err := db.Materialize("ref", laJoinPlan(t, db)); err != nil {
		t.Fatal(err)
	}
	if want := viewKey(t, db, "ref"); incremental != want {
		t.Errorf("incrementally maintained view diverges from recompute\n got: %s\nwant: %s",
			incremental, want)
	}
}

// TestIncrementalRefreshCheaperThanRecompute checks the point of the whole
// subsystem on the engine side: maintaining a join view for a small delta
// costs far fewer block accesses than recomputing it.
func TestIncrementalRefreshCheaperThanRecompute(t *testing.T) {
	db := smallPaperDB(t)
	if _, err := db.Materialize("tmp2", laJoinPlan(t, db)); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertDelta("Product",
		[]algebra.Value{algebra.IntVal(999901), algebra.StringVal("product-x"), algebra.IntVal(1)},
	); err != nil {
		t.Fatal(err)
	}
	inc, err := db.IncrementalRefresh("tmp2")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.ApplyDeltas(); err != nil {
		t.Fatal(err)
	}
	full, err := db.Refresh("tmp2")
	if err != nil {
		t.Fatal(err)
	}
	incIO := inc.TotalReads() + inc.TotalWrites()
	fullIO := full.TotalReads() + full.TotalWrites()
	if incIO >= fullIO {
		t.Errorf("incremental I/O %d not below recompute I/O %d", incIO, fullIO)
	}
}

// TestIncrementalRefreshAggregateMergesGroups checks the root-aggregate
// merge: delta rows update existing groups (COUNT/SUM add, MIN/MAX
// compare) and create new ones.
func TestIncrementalRefreshAggregateMergesGroups(t *testing.T) {
	db, tb := aggDB(t)
	plan := algebra.NewAggregate(
		algebra.NewScan("T", tb.Schema),
		[]algebra.ColumnRef{algebra.Ref("T", "grp")},
		[]algebra.Aggregation{
			{Func: algebra.AggSum, Arg: algebra.Ref("T", "v"), Alias: "total"},
			{Func: algebra.AggCount, Alias: "n"},
			{Func: algebra.AggMin, Arg: algebra.Ref("T", "v"), Alias: "lo"},
			{Func: algebra.AggMax, Arg: algebra.Ref("T", "v"), Alias: "hi"},
		})
	if _, err := db.Materialize("summary", plan); err != nil {
		t.Fatal(err)
	}
	// Group a grows, group d is new.
	if err := db.InsertDelta("T",
		[]algebra.Value{algebra.StringVal("a"), algebra.IntVal(100)},
		[]algebra.Value{algebra.StringVal("a"), algebra.IntVal(1)},
		[]algebra.Value{algebra.StringVal("d"), algebra.IntVal(2)},
	); err != nil {
		t.Fatal(err)
	}
	if _, err := db.IncrementalRefresh("summary"); err != nil {
		t.Fatal(err)
	}
	incremental := viewKey(t, db, "summary")

	if err := db.ApplyDeltas(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Materialize("ref", algebra.Clone(plan)); err != nil {
		t.Fatal(err)
	}
	if want := viewKey(t, db, "ref"); incremental != want {
		t.Errorf("merged aggregate view diverges from recompute\n got: %s\nwant: %s",
			incremental, want)
	}

	// Spot-check group a: 10+20+30 base plus 100+1 delta.
	v, _ := db.View("summary")
	found := false
	for i := 0; i < v.Table().NumRows(); i++ {
		row := v.Table().Row(i)
		g, _ := row.ColumnValue(algebra.Ref("T", "grp"))
		if g.Str != "a" {
			continue
		}
		found = true
		total, _ := row.ColumnValue(algebra.Ref("", "total"))
		n, _ := row.ColumnValue(algebra.Ref("", "n"))
		hi, _ := row.ColumnValue(algebra.Ref("", "hi"))
		if total.Int != 161 || n.Int != 5 || hi.Int != 100 {
			t.Errorf("group a: total=%d n=%d hi=%d, want 161/5/100", total.Int, n.Int, hi.Int)
		}
	}
	if !found {
		t.Error("group a missing from merged view")
	}
}

// TestIncrementalRefreshRejectsNonIncremental: AVG and non-root aggregates
// must fall back to recomputation via ErrNotIncremental.
func TestIncrementalRefreshRejectsNonIncremental(t *testing.T) {
	db, tb := aggDB(t)
	avg := algebra.NewAggregate(
		algebra.NewScan("T", tb.Schema),
		[]algebra.ColumnRef{algebra.Ref("T", "grp")},
		[]algebra.Aggregation{{Func: algebra.AggAvg, Arg: algebra.Ref("T", "v"), Alias: "mean"}})
	if _, err := db.Materialize("avgview", avg); err != nil {
		t.Fatal(err)
	}
	count := algebra.NewAggregate(
		algebra.NewScan("T", tb.Schema),
		[]algebra.ColumnRef{algebra.Ref("T", "grp")},
		[]algebra.Aggregation{{Func: algebra.AggCount, Alias: "n"}})
	buried := algebra.NewProject(count, []algebra.ColumnRef{algebra.Ref("T", "grp")})
	if _, err := db.Materialize("buried", buried); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertDelta("T", []algebra.Value{algebra.StringVal("a"), algebra.IntVal(9)}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.IncrementalRefresh("avgview"); !errors.Is(err, engine.ErrNotIncremental) {
		t.Errorf("AVG view error = %v, want ErrNotIncremental", err)
	}
	if _, err := db.IncrementalRefresh("buried"); !errors.Is(err, engine.ErrNotIncremental) {
		t.Errorf("buried aggregate error = %v, want ErrNotIncremental", err)
	}
	if _, err := db.IncrementalRefresh("ghost"); err == nil {
		t.Error("unknown view refreshed")
	}
}

// TestIncrementalRefreshAllMixed: maintainable views propagate deltas, the
// rest recompute, and afterwards every view matches the new base state.
func TestIncrementalRefreshAllMixed(t *testing.T) {
	db, tb := aggDB(t)
	spj := algebra.NewSelect(algebra.NewScan("T", tb.Schema),
		algebra.Compare(algebra.ColOperand(algebra.Ref("T", "v")), algebra.OpGt,
			algebra.LitOperand(algebra.IntVal(6))))
	avg := algebra.NewAggregate(
		algebra.NewScan("T", tb.Schema),
		[]algebra.ColumnRef{algebra.Ref("T", "grp")},
		[]algebra.Aggregation{{Func: algebra.AggAvg, Arg: algebra.Ref("T", "v"), Alias: "mean"}})
	if _, err := db.Materialize("big", spj); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Materialize("avgview", avg); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertDelta("T",
		[]algebra.Value{algebra.StringVal("a"), algebra.IntVal(50)},
		[]algebra.Value{algebra.StringVal("e"), algebra.IntVal(3)},
	); err != nil {
		t.Fatal(err)
	}
	results, err := db.IncrementalRefreshAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("refreshed %d views, want 2", len(results))
	}
	if db.PendingDeltaRows("T") != 0 {
		t.Error("deltas still pending after IncrementalRefreshAll")
	}
	for name, plan := range map[string]algebra.Node{"big": spj, "avgview": avg} {
		ref, err := db.Execute(algebra.Clone(plan))
		if err != nil {
			t.Fatal(err)
		}
		if got, want := viewKey(t, db, name), tableKey(ref.Table); got != want {
			t.Errorf("%s inconsistent with new base state\n got: %s\nwant: %s", name, got, want)
		}
	}
}
