package engine

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"github.com/warehousekit/mvpp/internal/algebra"
)

// Columnar segment file format (the snapshot store's on-disk unit):
//
//	magic "MVSEGv1\n"
//	frame(header JSON)            name, blocking factor, row count, schema
//	frame(column 0 payload)       one frame per schema column
//	...
//	frame(column k-1 payload)
//
// Every frame is length-prefixed and checksummed —
//
//	uint32le length | payload | uint32le CRC32C(payload)
//
// — so a torn write (crash mid-frame) is detected by the short read and a
// bit flip anywhere in a payload by the checksum. Column payloads serialize
// the colvec representation directly: typed columns write their bare
// int64/float64/string payload (plus the null bitmap when any row is null),
// generic columns write each algebra.Value verbatim. Decoding rebuilds the
// exact colvec state, so a restored table is bit-identical to the
// checkpointed one — including null placement and generic demotion.

const segMagic = "MVSEGv1\n"

// maxFrameBytes bounds a single frame so a corrupt length prefix cannot ask
// the decoder to allocate gigabytes.
const maxFrameBytes = 1 << 30

// ErrSegmentCorrupt marks every decode failure that means the segment's
// bytes cannot be trusted — torn frames, checksum mismatches, malformed
// headers. Recovery treats it (like any other decode error) as "recompute
// instead".
var ErrSegmentCorrupt = errors.New("engine: corrupt table segment")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrSegmentCorrupt, fmt.Sprintf(format, args...))
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// segHeader is the JSON payload of a segment's first frame.
type segHeader struct {
	Name      string   `json:"name"`
	BlockRows int      `json:"block_rows"`
	Rows      int      `json:"rows"`
	Columns   []segCol `json:"columns"`
}

type segCol struct {
	Relation string `json:"rel,omitempty"`
	Name     string `json:"name"`
	Type     int    `json:"type"`
}

func writeFrame(w io.Writer, payload []byte) (int64, error) {
	var pre [4]byte
	binary.LittleEndian.PutUint32(pre[:], uint32(len(payload)))
	if _, err := w.Write(pre[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.Checksum(payload, castagnoli))
	if _, err := w.Write(sum[:]); err != nil {
		return 0, err
	}
	return int64(8 + len(payload)), nil
}

func readFrame(r io.Reader) ([]byte, error) {
	var pre [4]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return nil, corruptf("truncated frame length: %v", err)
	}
	n := binary.LittleEndian.Uint32(pre[:])
	if n > maxFrameBytes {
		return nil, corruptf("frame length %d exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, corruptf("truncated frame payload: %v", err)
	}
	var sum [4]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return nil, corruptf("truncated frame checksum: %v", err)
	}
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(sum[:]); got != want {
		return nil, corruptf("frame checksum mismatch (crc %08x, stored %08x)", got, want)
	}
	return payload, nil
}

// WriteTableSegment serializes the table to w in the columnar segment
// format and returns the number of bytes written.
func WriteTableSegment(w io.Writer, t *Table) (int64, error) {
	total := int64(0)
	n, err := io.WriteString(w, segMagic)
	total += int64(n)
	if err != nil {
		return total, err
	}
	hdr := segHeader{Name: t.Name, BlockRows: t.BlockRows, Rows: t.nrows,
		Columns: make([]segCol, t.Schema.Len())}
	for i, c := range t.Schema.Columns {
		hdr.Columns[i] = segCol{Relation: c.Relation, Name: c.Name, Type: int(c.Type)}
	}
	hb, err := json.Marshal(hdr)
	if err != nil {
		return total, err
	}
	fn, err := writeFrame(w, hb)
	total += fn
	if err != nil {
		return total, err
	}
	for ci, c := range t.cols {
		payload, err := encodeColumn(c)
		if err != nil {
			return total, fmt.Errorf("engine: encoding column %s of %s: %w",
				t.Schema.Columns[ci].Name, t.Name, err)
		}
		fn, err := writeFrame(w, payload)
		total += fn
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ReadTableSegment decodes a columnar segment written by WriteTableSegment.
// Any structural damage — torn frames, checksum mismatches, malformed
// headers, payload/row-count disagreements — returns an error wrapping
// ErrSegmentCorrupt.
func ReadTableSegment(r io.Reader) (*Table, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, corruptf("missing magic: %v", err)
	}
	if string(magic) != segMagic {
		return nil, corruptf("bad magic %q", magic)
	}
	hb, err := readFrame(br)
	if err != nil {
		return nil, err
	}
	var hdr segHeader
	if err := json.Unmarshal(hb, &hdr); err != nil {
		return nil, corruptf("malformed header: %v", err)
	}
	if hdr.Rows < 0 || hdr.BlockRows <= 0 || hdr.Name == "" {
		return nil, corruptf("implausible header (rows %d, block_rows %d, name %q)",
			hdr.Rows, hdr.BlockRows, hdr.Name)
	}
	cols := make([]algebra.Column, len(hdr.Columns))
	for i, c := range hdr.Columns {
		cols[i] = algebra.Column{Relation: c.Relation, Name: c.Name, Type: algebra.Type(c.Type)}
	}
	t := &Table{
		Name:      hdr.Name,
		Schema:    algebra.NewSchema(cols...),
		BlockRows: hdr.BlockRows,
		nrows:     hdr.Rows,
		cols:      make([]*colvec, len(cols)),
	}
	for ci := range t.cols {
		payload, err := readFrame(br)
		if err != nil {
			return nil, err
		}
		cv, err := decodeColumn(payload, hdr.Rows)
		if err != nil {
			return nil, fmt.Errorf("%w (column %s of %s)", err, hdr.Columns[ci].Name, hdr.Name)
		}
		t.cols[ci] = cv
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, corruptf("trailing bytes after last column frame")
	}
	return t, nil
}

// Column payload layout. Byte 0 is the representation tag:
//
//	0 (typed)    varint kind | uvarint numNulls
//	             [⌈n/64⌉ uint64le bitmap words, when numNulls > 0]
//	             payload: n × int64le (int/date), n × float64 bits (float),
//	             n × (uvarint len + bytes) (string), nothing (kindless)
//	1 (generic)  n × (varint kind | varint int | float64 bits |
//	             uvarint len + bytes) — every Value field, verbatim
const (
	colReprTyped   = 0
	colReprGeneric = 1
)

func encodeColumn(c *colvec) ([]byte, error) {
	if c.vals != nil {
		buf := make([]byte, 0, 1+16*c.n)
		buf = append(buf, colReprGeneric)
		for _, v := range c.vals {
			buf = binary.AppendVarint(buf, int64(v.Kind))
			buf = binary.AppendVarint(buf, v.Int)
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Float))
			buf = binary.AppendUvarint(buf, uint64(len(v.Str)))
			buf = append(buf, v.Str...)
		}
		return buf, nil
	}
	buf := make([]byte, 0, 16+9*c.n)
	buf = append(buf, colReprTyped)
	buf = binary.AppendVarint(buf, int64(c.kind))
	buf = binary.AppendUvarint(buf, uint64(c.numNulls))
	if c.numNulls > 0 {
		words := (c.n + 63) / 64
		for i := 0; i < words; i++ {
			var w uint64
			if i < len(c.nulls) {
				w = c.nulls[i]
			}
			buf = binary.LittleEndian.AppendUint64(buf, w)
		}
	}
	switch c.kind {
	case 0:
		// Kindless: empty or all-null; the bitmap is the whole payload.
	case algebra.TypeInt, algebra.TypeDate:
		if len(c.ints) != c.n {
			return nil, fmt.Errorf("int payload length %d != rows %d", len(c.ints), c.n)
		}
		for _, v := range c.ints {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
		}
	case algebra.TypeFloat:
		if len(c.floats) != c.n {
			return nil, fmt.Errorf("float payload length %d != rows %d", len(c.floats), c.n)
		}
		for _, v := range c.floats {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	case algebra.TypeString:
		if len(c.strs) != c.n {
			return nil, fmt.Errorf("string payload length %d != rows %d", len(c.strs), c.n)
		}
		for _, s := range c.strs {
			buf = binary.AppendUvarint(buf, uint64(len(s)))
			buf = append(buf, s...)
		}
	default:
		return nil, fmt.Errorf("unsupported typed column kind %d", c.kind)
	}
	return buf, nil
}

// byteCursor walks a column payload with corruption-typed errors.
type byteCursor struct {
	b   []byte
	off int
}

func (r *byteCursor) varint() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, corruptf("truncated varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *byteCursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, corruptf("truncated uvarint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *byteCursor) uint64() (uint64, error) {
	if r.off+8 > len(r.b) {
		return 0, corruptf("truncated uint64 at offset %d", r.off)
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

func (r *byteCursor) bytes(n uint64) ([]byte, error) {
	if n > uint64(len(r.b)-r.off) {
		return nil, corruptf("truncated byte run (%d wanted) at offset %d", n, r.off)
	}
	out := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return out, nil
}

func decodeColumn(payload []byte, rows int) (*colvec, error) {
	if len(payload) == 0 {
		return nil, corruptf("empty column payload")
	}
	cur := &byteCursor{b: payload, off: 1}
	switch payload[0] {
	case colReprGeneric:
		c := &colvec{}
		for i := 0; i < rows; i++ {
			kind, err := cur.varint()
			if err != nil {
				return nil, err
			}
			iv, err := cur.varint()
			if err != nil {
				return nil, err
			}
			bits, err := cur.uint64()
			if err != nil {
				return nil, err
			}
			slen, err := cur.uvarint()
			if err != nil {
				return nil, err
			}
			sb, err := cur.bytes(slen)
			if err != nil {
				return nil, err
			}
			v := algebra.Value{Kind: algebra.Type(kind), Int: iv,
				Float: math.Float64frombits(bits), Str: string(sb)}
			c.vals = append(c.vals, v)
			if !v.IsValid() {
				c.nulls = bitSet(c.nulls, c.n)
				c.numNulls++
			}
			c.n++
		}
		if cur.off != len(payload) {
			return nil, corruptf("trailing bytes in generic column payload")
		}
		return c, nil
	case colReprTyped:
		kind, err := cur.varint()
		if err != nil {
			return nil, err
		}
		numNulls, err := cur.uvarint()
		if err != nil {
			return nil, err
		}
		if numNulls > uint64(rows) {
			return nil, corruptf("null count %d exceeds row count %d", numNulls, rows)
		}
		c := &colvec{kind: algebra.Type(kind), n: rows, numNulls: int(numNulls)}
		if numNulls > 0 {
			words := (rows + 63) / 64
			c.nulls = make([]uint64, words)
			for i := 0; i < words; i++ {
				w, err := cur.uint64()
				if err != nil {
					return nil, err
				}
				c.nulls[i] = w
			}
			set := 0
			for i := 0; i < rows; i++ {
				if bitGet(c.nulls, i) {
					set++
				}
			}
			if set != int(numNulls) {
				return nil, corruptf("null bitmap population %d != recorded count %d", set, numNulls)
			}
		}
		switch c.kind {
		case 0:
			if int(numNulls) != rows {
				return nil, corruptf("kindless column with %d non-null rows", rows-int(numNulls))
			}
		case algebra.TypeInt, algebra.TypeDate:
			c.ints = make([]int64, rows)
			for i := range c.ints {
				v, err := cur.uint64()
				if err != nil {
					return nil, err
				}
				c.ints[i] = int64(v)
			}
		case algebra.TypeFloat:
			c.floats = make([]float64, rows)
			for i := range c.floats {
				v, err := cur.uint64()
				if err != nil {
					return nil, err
				}
				c.floats[i] = math.Float64frombits(v)
			}
		case algebra.TypeString:
			c.strs = make([]string, rows)
			for i := range c.strs {
				slen, err := cur.uvarint()
				if err != nil {
					return nil, err
				}
				sb, err := cur.bytes(slen)
				if err != nil {
					return nil, err
				}
				c.strs[i] = string(sb)
			}
		default:
			return nil, corruptf("unknown typed column kind %d", kind)
		}
		if cur.off != len(payload) {
			return nil, corruptf("trailing bytes in typed column payload")
		}
		return c, nil
	default:
		return nil, corruptf("unknown column representation %d", payload[0])
	}
}

// RestoreTable installs a decoded base table wholesale — the snapshot
// recovery path's replacement for CreateTable + Insert. Like CreateTable it
// belongs to the setup phase: call it before the DB is shared.
func (db *DB) RestoreTable(t *Table) error {
	if t == nil || t.Name == "" {
		return fmt.Errorf("engine: cannot restore an unnamed table")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[t.Name]; dup {
		return fmt.Errorf("engine: table %s already exists", t.Name)
	}
	db.tables[t.Name] = t
	return nil
}

// RestoreView installs a decoded view table under its defining plan without
// executing the plan — the snapshot recovery path's replacement for
// Materialize. The table's schema must match the plan's (a mismatch means
// the segment does not belong to this definition; recompute instead).
func (db *DB) RestoreView(name string, plan algebra.Node, t *Table) (*MaterializedView, error) {
	if name == "" {
		return nil, fmt.Errorf("engine: view must have a name")
	}
	if !plan.Schema().Equal(t.Schema) {
		return nil, fmt.Errorf("engine: restored table schema %v does not match plan schema %v of view %s",
			t.Schema, plan.Schema(), name)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.views[name]; dup {
		return nil, fmt.Errorf("engine: view %s already exists", name)
	}
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("engine: view %s collides with a base table", name)
	}
	t.Name = name
	v := &MaterializedView{
		Name:  name,
		Plan:  plan,
		Key:   algebra.StructuralKey(plan),
		table: t,
	}
	db.views[name] = v
	delete(db.propagated, name)
	return v, nil
}
