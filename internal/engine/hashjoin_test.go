package engine_test

import (
	"testing"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/datagen"
	"github.com/warehousekit/mvpp/internal/engine"
)

func TestHashJoinMatchesNestedLoopResults(t *testing.T) {
	db := smallPaperDB(t)
	plan := q1Plan(t, db)

	db.SetJoinAlgorithm(engine.JoinNestedLoop)
	nlj, err := db.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	db.SetJoinAlgorithm(engine.JoinHash)
	hash, err := db.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if nlj.Table.NumRows() != hash.Table.NumRows() {
		t.Errorf("row counts differ: nlj %d, hash %d", nlj.Table.NumRows(), hash.Table.NumRows())
	}
	// Hash join reads each input once — far fewer block reads.
	if hash.TotalReads() >= nlj.TotalReads() {
		t.Errorf("hash join reads %d not below NLJ %d", hash.TotalReads(), nlj.TotalReads())
	}
}

func TestHashJoinReadAccounting(t *testing.T) {
	db := smallPaperDB(t)
	db.SetJoinAlgorithm(engine.JoinHash)
	ord, _ := db.Table("Order")
	cust, _ := db.Table("Customer")
	join := algebra.NewJoin(
		algebra.NewScan("Order", ord.Schema),
		algebra.NewScan("Customer", cust.Schema),
		[]algebra.JoinCond{{Left: algebra.Ref("Order", "Cid"), Right: algebra.Ref("Customer", "Cid")}})
	res, err := db.Execute(join)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(ord.NumBlocks() + cust.NumBlocks())
	if res.Ops[0].Reads != want {
		t.Errorf("hash join reads = %d, want %d", res.Ops[0].Reads, want)
	}
}

// TestHashJoinAblationMeasured demonstrates the analytic ablation finding
// physically: under hash joins the I/O gap between direct execution and
// view-based execution collapses relative to nested loops.
func TestHashJoinAblationMeasured(t *testing.T) {
	build := func(algo engine.JoinAlgorithm) (direct, withViews int64) {
		t.Helper()
		db, err := datagen.PaperDB(10, 0.01, 42)
		if err != nil {
			t.Fatal(err)
		}
		db.SetJoinAlgorithm(algo)
		plan := q1Plan(t, db)
		d, err := db.Execute(plan)
		if err != nil {
			t.Fatal(err)
		}
		// Materialize the join subtree.
		proj := plan.(*algebra.Project)
		if _, err := db.Materialize("mv", proj.Input); err != nil {
			t.Fatal(err)
		}
		r, err := db.Execute(db.RewriteWithViews(plan))
		if err != nil {
			t.Fatal(err)
		}
		return d.TotalReads(), r.TotalReads()
	}
	nljDirect, nljView := build(engine.JoinNestedLoop)
	hashDirect, hashView := build(engine.JoinHash)

	nljGain := float64(nljDirect) / float64(nljView)
	hashGain := float64(hashDirect) / float64(hashView)
	if nljGain <= hashGain {
		t.Errorf("view gain should shrink under hash joins: nlj %.1fx vs hash %.1fx", nljGain, hashGain)
	}
}
