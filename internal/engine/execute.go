package engine

import (
	"fmt"

	"github.com/warehousekit/mvpp/internal/algebra"
	"github.com/warehousekit/mvpp/internal/fault"
	"github.com/warehousekit/mvpp/internal/obs"
)

// OpStats records the measured I/O of one operator execution.
type OpStats struct {
	Label     string
	Reads     int64 // block reads performed by the operator
	Writes    int64 // block writes of the operator's result
	OutRows   int
	OutBlocks int
}

// Result is an executed plan's output plus per-operator measurements.
type Result struct {
	Table *Table // anonymous result table
	Ops   []OpStats
}

// Rows returns the result rows.
func (r *Result) Rows() [][]algebra.Value { return r.Table.rows }

// TotalReads sums block reads over all operators.
func (r *Result) TotalReads() int64 {
	var n int64
	for _, op := range r.Ops {
		n += op.Reads
	}
	return n
}

// TotalWrites sums block writes over all operators.
func (r *Result) TotalWrites() int64 {
	var n int64
	for _, op := range r.Ops {
		n += op.Writes
	}
	return n
}

// JoinAlgorithm selects the physical join operator.
type JoinAlgorithm int

// Physical join operators.
const (
	// JoinNestedLoop is the block nested-loop join the paper's cost model
	// assumes: blocks(outer) + blocks(outer)·blocks(inner) reads.
	JoinNestedLoop JoinAlgorithm = iota
	// JoinHash builds a hash table on the inner input: blocks(outer) +
	// blocks(inner) reads. Used to measure the hash-join ablation
	// physically.
	JoinHash
)

// SetJoinAlgorithm switches the physical join operator for subsequent
// executions.
func (db *DB) SetJoinAlgorithm(a JoinAlgorithm) { db.joinAlgo = a }

// Execute runs a plan operator-at-a-time: every operator reads its stored
// input block by block and writes its result to a fresh temporary table,
// exactly as the paper's cost formulas assume. Scans resolve base tables
// and materialized views by name. The database counter accumulates across
// calls; per-operator numbers are returned in the Result.
func (db *DB) Execute(plan algebra.Node) (*Result, error) {
	if err := db.inj.Hit(fault.SiteEngineExecute); err != nil {
		return nil, err
	}
	if err := algebra.Validate(plan); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	res := &Result{}
	out, err := db.exec(plan, res)
	if err != nil {
		return nil, err
	}
	// A plan that is just a scan (e.g. a query answered entirely by one
	// materialized view) still costs one pass over the stored result.
	if s, ok := plan.(*algebra.Scan); ok {
		stats := OpStats{
			Label:     "read " + s.Relation,
			Reads:     int64(out.NumBlocks()),
			OutRows:   out.NumRows(),
			OutBlocks: out.NumBlocks(),
		}
		db.account(stats)
		res.Ops = append(res.Ops, stats)
	}
	res.Table = out
	return res, nil
}

// resolveRelation maps a scan's relation name to the current table: a
// materialized view's current epoch snapshot, or the base table. The DB
// lock is held only for the lookup; the returned table is immutable.
func (db *DB) resolveRelation(name string) (*Table, error) {
	db.mu.RLock()
	view, isView := db.views[name]
	t, isTable := db.tables[name]
	db.mu.RUnlock()
	if isView {
		return view.Table(), nil
	}
	if !isTable {
		return nil, fmt.Errorf("engine: unknown table %q", name)
	}
	return t, nil
}

func (db *DB) exec(n algebra.Node, res *Result) (*Table, error) {
	switch v := n.(type) {
	case *algebra.Scan:
		return db.resolveRelation(v.Relation)
	case *algebra.Select:
		in, err := db.exec(v.Input, res)
		if err != nil {
			return nil, err
		}
		return db.execSelect(v, in, res)
	case *algebra.Project:
		in, err := db.exec(v.Input, res)
		if err != nil {
			return nil, err
		}
		return db.execProject(v, in, res)
	case *algebra.Join:
		left, err := db.exec(v.Left, res)
		if err != nil {
			return nil, err
		}
		right, err := db.exec(v.Right, res)
		if err != nil {
			return nil, err
		}
		if db.joinAlgo == JoinHash {
			return db.execHashJoin(v, left, right, res)
		}
		return db.execJoin(v, left, right, res)
	case *algebra.Aggregate:
		in, err := db.exec(v.Input, res)
		if err != nil {
			return nil, err
		}
		return db.execAggregate(v, in, res)
	default:
		return nil, fmt.Errorf("engine: cannot execute node type %T", n)
	}
}

// execSelect filters by linear scan: every input block is read once.
func (db *DB) execSelect(sel *algebra.Select, in *Table, res *Result) (*Table, error) {
	out := NewTable("", sel.Schema(), db.BlockRows)
	for i := 0; i < in.NumRows(); i++ {
		ok, err := sel.Pred.Eval(in.Row(i))
		if err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
		if ok {
			if err := out.Insert(in.rows[i]); err != nil {
				return nil, err
			}
		}
	}
	stats := OpStats{
		Label:     sel.Label(),
		Reads:     int64(in.NumBlocks()),
		Writes:    int64(out.NumBlocks()),
		OutRows:   out.NumRows(),
		OutBlocks: out.NumBlocks(),
	}
	db.account(stats)
	res.Ops = append(res.Ops, stats)
	return out, nil
}

// execProject streams the input once.
func (db *DB) execProject(p *algebra.Project, in *Table, res *Result) (*Table, error) {
	outSchema, err := in.Schema.Project(p.Cols)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	idx := make([]int, len(p.Cols))
	for i, ref := range p.Cols {
		j, err := in.Schema.Resolve(ref)
		if err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
		idx[i] = j
	}
	out := NewTable("", outSchema, db.BlockRows)
	for _, row := range in.rows {
		vals := make([]algebra.Value, len(idx))
		for i, j := range idx {
			vals[i] = row[j]
		}
		if err := out.Insert(vals); err != nil {
			return nil, err
		}
	}
	stats := OpStats{
		Label:     p.Label(),
		Reads:     int64(in.NumBlocks()),
		Writes:    int64(out.NumBlocks()),
		OutRows:   out.NumRows(),
		OutBlocks: out.NumBlocks(),
	}
	db.account(stats)
	res.Ops = append(res.Ops, stats)
	return out, nil
}

// execJoin is a block nested-loop join with a one-block buffer: the outer
// is read once, the inner once per outer block — blocks(outer) +
// blocks(outer)·blocks(inner) reads, matching the BlockNLJ cost model.
func (db *DB) execJoin(j *algebra.Join, left, right *Table, res *Result) (*Table, error) {
	joined := left.Schema.Concat(right.Schema)
	type condIdx struct{ li, ri int }
	conds := make([]condIdx, len(j.On))
	for i, c := range j.On {
		li, err := left.Schema.Resolve(c.Left)
		if err != nil {
			return nil, fmt.Errorf("engine: join condition %s: %w", c, err)
		}
		ri, err := right.Schema.Resolve(c.Right)
		if err != nil {
			return nil, fmt.Errorf("engine: join condition %s: %w", c, err)
		}
		conds[i] = condIdx{li, ri}
	}
	out := NewTable("", joined, db.BlockRows)
	outerBlocks := left.NumBlocks()
	for ob := 0; ob < outerBlocks; ob++ {
		lo := ob * left.BlockRows
		hi := lo + left.BlockRows
		if hi > left.NumRows() {
			hi = left.NumRows()
		}
		for _, rrow := range right.rows {
			for li := lo; li < hi; li++ {
				lrow := left.rows[li]
				match := true
				for _, ci := range conds {
					if !lrow[ci.li].Equal(rrow[ci.ri]) {
						match = false
						break
					}
				}
				if !match {
					continue
				}
				vals := make([]algebra.Value, 0, len(lrow)+len(rrow))
				vals = append(vals, lrow...)
				vals = append(vals, rrow...)
				if err := out.Insert(vals); err != nil {
					return nil, err
				}
			}
		}
	}
	stats := OpStats{
		Label:     j.Label(),
		Reads:     int64(outerBlocks) + int64(outerBlocks)*int64(right.NumBlocks()),
		Writes:    int64(out.NumBlocks()),
		OutRows:   out.NumRows(),
		OutBlocks: out.NumBlocks(),
	}
	db.account(stats)
	res.Ops = append(res.Ops, stats)
	return out, nil
}

func (db *DB) account(s OpStats) {
	db.Counter.AddReads(s.Reads)
	db.Counter.AddWrites(s.Writes)
	db.blockReads.Add(s.Reads)
	db.blockWrites.Add(s.Writes)
	obs.Emit(db.obsv, obs.EvEngineOp,
		obs.String("op", s.Label),
		obs.Int("reads", s.Reads),
		obs.Int("writes", s.Writes),
		obs.Int("out_rows", int64(s.OutRows)),
		obs.Int("out_blocks", int64(s.OutBlocks)))
}
